package clockwork_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"clockwork"
)

// newMultiSystem builds an EnginePerShard system with one worker per
// shard and models "m0".."m<n-1>" registered round-robin, then starts
// the live driver.
func newMultiSystem(t *testing.T, shards, models int, speed float64) (*clockwork.System, *clockwork.Live) {
	t.Helper()
	sys, err := clockwork.New(clockwork.Config{
		Workers:        shards,
		Shards:         shards,
		EnginePerShard: true,
		ExactTiming:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < models; i++ {
		if err := sys.RegisterModel(fmt.Sprintf("m%d", i), "resnet50_v1b"); err != nil {
			t.Fatal(err)
		}
	}
	live := sys.StartLive(speed)
	t.Cleanup(live.Stop)
	return sys, live
}

// TestMultiLiveSubmitAllShards drives requests at every model of a
// 4-shard engine-per-shard system through shard-routed injection and
// waits for each outcome — the end-to-end path of the multi-core
// serving plane.
func TestMultiLiveSubmitAllShards(t *testing.T) {
	const shards, models, perModel = 4, 8, 5
	sys, live := newMultiSystem(t, shards, models, 1000)

	if !live.MultiEngine() {
		t.Fatal("EnginePerShard system did not start a multi-engine driver")
	}

	handles := make(chan clockwork.Handle, models*perModel)
	for i := 0; i < models; i++ {
		model := fmt.Sprintf("m%d", i)
		shard, ok := sys.OwnerShard(model)
		if !ok {
			t.Fatalf("OwnerShard(%q) unknown", model)
		}
		for j := 0; j < perModel; j++ {
			if !live.InjectOn(shard, func() {
				h, err := sys.SubmitRequestOn(shard, clockwork.Request{Model: model, SLO: time.Second}, nil)
				if err != nil {
					t.Errorf("SubmitRequestOn(%d, %s): %v", shard, model, err)
					handles <- clockwork.Handle{}
					return
				}
				handles <- h
			}) {
				t.Fatalf("InjectOn(%d) refused while driver running", shard)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	succeeded := 0
	for i := 0; i < models*perModel; i++ {
		select {
		case h := <-handles:
			if h == (clockwork.Handle{}) {
				continue
			}
			res, err := h.Wait(ctx)
			if err != nil {
				t.Fatalf("Wait: %v", err)
			}
			if res.Success {
				succeeded++
			}
		case <-ctx.Done():
			t.Fatal("timed out collecting handles")
		}
	}
	if succeeded == 0 {
		t.Fatal("no request succeeded on the multi-engine system")
	}

	// A barrier snapshot sees consistent whole-cluster metrics.
	var sum clockwork.Summary
	if err := live.Do(func() { sum = sys.Summary() }); err != nil {
		t.Fatal(err)
	}
	if sum.Requests != models*perModel {
		t.Fatalf("Summary.Requests = %d, want %d", sum.Requests, models*perModel)
	}
	if sum.Succeeded != uint64(succeeded) {
		t.Fatalf("Summary.Succeeded = %d, client saw %d", sum.Succeeded, succeeded)
	}
}

// TestMultiLiveStaleShardForwards submits on the WRONG shard on
// purpose: the submission must be forwarded to the owner cross-shard
// and still complete (this is the path a stale routing hint takes after
// a migration).
func TestMultiLiveStaleShardForwards(t *testing.T) {
	sys, live := newMultiSystem(t, 2, 2, 1000)

	shard, ok := sys.OwnerShard("m0")
	if !ok {
		t.Fatal("OwnerShard(m0) unknown")
	}
	wrong := 1 - shard

	hc := make(chan clockwork.Handle, 1)
	if !live.InjectOn(wrong, func() {
		h, err := sys.SubmitRequestOn(wrong, clockwork.Request{Model: "m0", SLO: time.Second}, nil)
		if err != nil {
			t.Errorf("SubmitRequestOn(wrong shard): %v", err)
			hc <- clockwork.Handle{}
			return
		}
		hc <- h
	}) {
		t.Fatal("InjectOn refused while driver running")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	h := <-hc
	if h == (clockwork.Handle{}) {
		t.FailNow()
	}
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !res.Success {
		t.Fatalf("forwarded submission failed: %+v", res)
	}
}

// TestMultiLiveInjectAfterStop: injection on a stopped multi-engine
// driver reports refusal instead of silently dropping the function, and
// Do reports ErrLiveStopped.
func TestMultiLiveInjectAfterStop(t *testing.T) {
	_, live := newMultiSystem(t, 2, 0, 1000)
	live.Stop()
	if live.InjectOn(1, func() { t.Error("fn ran after Stop") }) {
		t.Fatal("InjectOn reported accepted after Stop")
	}
	aborted := false
	live.InjectOrAbortOn(0, func() { t.Error("fn ran after Stop") }, func() { aborted = true })
	if !aborted {
		t.Fatal("InjectOrAbortOn after Stop did not run the abort hook")
	}
	if err := live.Do(func() {}); err != clockwork.ErrLiveStopped {
		t.Fatalf("Do after Stop: %v, want ErrLiveStopped", err)
	}
}

// TestMultiLiveRunForPanics: the simulation entry points are rejected
// on an engine-per-shard system — there is no single deterministic
// clock to step.
func TestMultiLiveRunForPanics(t *testing.T) {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, Shards: 2, EnginePerShard: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RunFor on an EnginePerShard system did not panic")
		}
	}()
	sys.RunFor(time.Second)
}

// TestMultiLiveRebalance concentrates every model on shard 0 (a
// barrier-protected whole-cluster mutation), drives sustained load at
// them, and expects the wall-clock rebalancer to migrate models back
// toward the idle shard under the barrier (Migrations grow past the
// manual ones).
func TestMultiLiveRebalance(t *testing.T) {
	sys, err := clockwork.New(clockwork.Config{
		Workers:        2,
		Shards:         2,
		EnginePerShard: true,
		ExactTiming:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const models = 6
	names := make([]string, models)
	for i := 0; i < models; i++ {
		names[i] = fmt.Sprintf("m%d", i)
		if err := sys.RegisterModel(names[i], "resnet50_v1b"); err != nil {
			t.Fatal(err)
		}
	}
	live := sys.StartLive(20)
	defer live.Stop()

	// Pile every model onto shard 0 so demand skews maximally.
	var manual uint64
	if err := live.Do(func() {
		for _, name := range names {
			if merr := sys.MigrateModel(name, 0); merr != nil {
				t.Errorf("MigrateModel(%s, 0): %v", name, merr)
			}
		}
		manual = sys.Migrations()
	}); err != nil {
		t.Fatal(err)
	}

	// 60s is generous headroom for the race detector on a loaded 1-core
	// machine; unloaded, migration happens within the first few ticks.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		migrated := uint64(0)
		if err := live.Do(func() { migrated = sys.Migrations() }); err != nil {
			t.Fatalf("Do: %v", err)
		}
		if migrated > manual {
			return // the wall-clock rebalancer moved a model off the hot shard
		}
		// Keep shard 0's queues deep: demand is summed over queued work.
		live.InjectOn(0, func() {
			for _, name := range names {
				for k := 0; k < 20; k++ {
					_, _ = sys.SubmitRequestOn(0, clockwork.Request{Model: name, SLO: 30 * time.Second}, nil)
				}
			}
		})
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("rebalancer never migrated a model on the multi-engine system")
}
