package clockwork_test

// Public-API round-trip coverage: every registered policy served
// through clockwork.System only, per-request options, the runtime
// control plane, and a determinism test for mid-run reconfiguration.
// Deliberately imports nothing from clockwork/internal.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"clockwork"
)

func mustSys(t *testing.T, cfg clockwork.Config) *clockwork.System {
	t.Helper()
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestEveryRegisteredPolicyServes round-trips one request through every
// policy in the registry — the paper's scheduler, its ablation variant,
// both baselines, and anything registered by other tests.
func TestEveryRegisteredPolicyServes(t *testing.T) {
	policies := clockwork.Policies()
	if len(policies) < 4 {
		t.Fatalf("registry too small: %v", policies)
	}
	for _, p := range policies {
		p := p
		t.Run(string(p), func(t *testing.T) {
			sys := mustSys(t, clockwork.Config{Policy: p, ExactTiming: true, Seed: 1})
			if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
				t.Fatal(err)
			}
			var got clockwork.Result
			if _, err := sys.SubmitRequest(clockwork.Request{
				Model: "m", SLO: 500 * time.Millisecond, Tenant: "t0",
			}, func(r clockwork.Result) { got = r }); err != nil {
				t.Fatal(err)
			}
			sys.RunFor(time.Second)
			if !got.Success {
				t.Fatalf("policy %s failed to serve: %+v", p, got)
			}
			if got.Tenant != "t0" || got.Model != "m" {
				t.Fatalf("result lost request labels: %+v", got)
			}
			if _, ok := clockwork.PolicyDescription(p); !ok {
				t.Fatalf("policy %s has no registry entry", p)
			}
		})
	}
}

// fifoScheduler is a deliberately naive external policy: one
// outstanding batch-1 INFER at a time on GPU 0, loading on demand. It
// exists to prove third-party schedulers can be written and registered
// against the public surface alone.
type fifoScheduler struct {
	c *clockwork.Controller
}

func (s *fifoScheduler) Attach(c *clockwork.Controller)           { s.c = c }
func (s *fifoScheduler) OnCancel(*clockwork.ControllerRequest)    {}
func (s *fifoScheduler) OnResult(res clockwork.ActionResult)      { s.pump() }
func (s *fifoScheduler) OnRequest(r *clockwork.ControllerRequest) { s.pump() }

func (s *fifoScheduler) pump() {
	g := s.c.GPUs()[0]
	for mi := range s.c.ActiveModels() {
		readyAt, resident := g.Resident(mi.Name())
		if !resident {
			s.c.SendLoad(g, mi, s.c.Now(), clockwork.MaxVirtualTime)
			continue
		}
		if g.InFlight(mi.Name()) > 0 || mi.QueuedCount() == 0 {
			continue
		}
		earliest := s.c.Now()
		if readyAt > earliest {
			earliest = readyAt
		}
		reqs := mi.PopBatch(1)
		s.c.SendInfer(g, mi, 1, reqs, earliest, clockwork.MaxVirtualTime)
	}
}

func TestRegisterExternalPolicy(t *testing.T) {
	err := clockwork.RegisterPolicy("test-fifo", clockwork.PolicySpec{
		New:                     func() clockwork.Scheduler { return &fifoScheduler{} },
		DisableAdmissionControl: true,
		Description:             "test-only naive FIFO scheduler",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := clockwork.RegisterPolicy("test-fifo", clockwork.PolicySpec{
		New: func() clockwork.Scheduler { return &fifoScheduler{} },
	}); !errors.Is(err, clockwork.ErrDuplicatePolicy) {
		t.Fatalf("want ErrDuplicatePolicy, got %v", err)
	}

	sys := mustSys(t, clockwork.Config{Policy: "test-fifo", ExactTiming: true})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	served := 0
	for i := 0; i < 5; i++ {
		if err := sys.Submit("m", time.Second, func(r clockwork.Result) {
			if r.Success {
				served++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.RunFor(2 * time.Second)
	if served != 5 {
		t.Fatalf("external policy served %d/5", served)
	}
}

func TestMaxBatchSizeCapsBatches(t *testing.T) {
	sys := mustSys(t, clockwork.Config{ExactTiming: true, Seed: 2})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	// Warm the model so the burst has latitude to batch.
	sys.Submit("m", 100*time.Millisecond, nil)
	sys.RunFor(100 * time.Millisecond)

	batches := map[int]int{}
	for i := 0; i < 8; i++ {
		if _, err := sys.SubmitRequest(clockwork.Request{
			Model: "m", SLO: 100 * time.Millisecond, MaxBatchSize: 1,
		}, func(r clockwork.Result) {
			if r.Success {
				batches[r.Batch]++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.RunFor(300 * time.Millisecond)
	if batches[1] != 8 || len(batches) != 1 {
		t.Fatalf("MaxBatchSize=1 violated: batches=%v", batches)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	sys := mustSys(t, clockwork.Config{ExactTiming: true, Seed: 3})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	sys.Submit("m", 100*time.Millisecond, nil) // warm
	sys.RunFor(100 * time.Millisecond)

	var order []string
	submit := func(tag string, prio int) {
		if _, err := sys.SubmitRequest(clockwork.Request{
			Model: "m", SLO: 200 * time.Millisecond, Priority: prio,
		}, func(r clockwork.Result) {
			if r.Success {
				order = append(order, tag)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A filler to occupy the GPU, then low-priority before high-priority
	// in submission order; the high-priority requests must jump the
	// queue ahead of still-queued low-priority ones.
	submit("filler", 0)
	for i := 0; i < 4; i++ {
		submit(fmt.Sprintf("low%d", i), 0)
	}
	for i := 0; i < 4; i++ {
		submit(fmt.Sprintf("high%d", i), 5)
	}
	sys.RunFor(time.Second)
	if len(order) != 9 {
		t.Fatalf("served %d/9: %v", len(order), order)
	}
	lastHigh := 0
	lowAfter := 0
	for i, tag := range order {
		if strings.HasPrefix(tag, "high") {
			lastHigh = i
		}
	}
	for _, tag := range order[lastHigh+1:] {
		if strings.HasPrefix(tag, "low") {
			lowAfter++
		}
	}
	// At least two of the four low-priority requests must have been
	// overtaken by every high-priority request (the first low ones may
	// have been dispatched before the high ones arrived).
	if lowAfter < 2 {
		t.Fatalf("priority had no effect: completion order %v", order)
	}
}

func TestHandleCancelAndOutcome(t *testing.T) {
	sys := mustSys(t, clockwork.Config{ExactTiming: true, Seed: 4})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	var got clockwork.Result
	h, err := sys.SubmitRequest(clockwork.Request{Model: "m", SLO: 100 * time.Millisecond},
		func(r clockwork.Result) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if h.Done() {
		t.Fatal("handle done before the clock moved")
	}
	if !h.Cancel() {
		t.Fatal("in-transit cancel should be accepted")
	}
	sys.RunFor(200 * time.Millisecond)
	if got.Success || got.Reason != clockwork.ReasonCancelled {
		t.Fatalf("want cancelled, got %+v", got)
	}
	res, ok := h.Outcome()
	if !ok || res.Reason != clockwork.ReasonCancelled {
		t.Fatalf("handle outcome: %+v ok=%v", res, ok)
	}
	if h.Cancel() {
		t.Fatal("cancelling a finished request should report false")
	}

	// A completed request's handle reports its outcome.
	h2, err := sys.SubmitRequest(clockwork.Request{Model: "m", SLO: 100 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunFor(200 * time.Millisecond)
	res2, ok := h2.Outcome()
	if !ok || !res2.Success || res2.Latency <= 0 || h2.ID() == 0 {
		t.Fatalf("handle outcome: %+v ok=%v id=%d", res2, ok, h2.ID())
	}
}

func TestControlPlaneWorkerLifecycle(t *testing.T) {
	sys := mustSys(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 5})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	// Serve once on worker 0.
	ok := false
	sys.Submit("m", 100*time.Millisecond, func(r clockwork.Result) { ok = r.Success })
	sys.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("baseline serve failed")
	}

	// Scale out, then drain worker 0: traffic must continue on the new
	// worker, which received every registered model at AddWorker time.
	id := sys.AddWorker()
	if id != 1 || sys.Workers() != 2 {
		t.Fatalf("AddWorker id=%d workers=%d", id, sys.Workers())
	}
	if err := sys.DrainWorker(0); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.WorkerStateOf(0); st != clockwork.WorkerDraining {
		t.Fatalf("worker 0 state = %v", st)
	}
	if err := sys.DrainWorker(0); !errors.Is(err, clockwork.ErrWorkerDown) {
		t.Fatalf("double drain: want ErrWorkerDown, got %v", err)
	}
	served := 0
	for i := 0; i < 10; i++ {
		sys.Submit("m", 100*time.Millisecond, func(r clockwork.Result) {
			if r.Success {
				served++
			}
		})
		sys.RunFor(20 * time.Millisecond)
	}
	if served != 10 {
		t.Fatalf("served %d/10 after drain+scale-out", served)
	}

	// Error paths.
	if err := sys.DrainWorker(99); !errors.Is(err, clockwork.ErrNoSuchWorker) {
		t.Fatalf("want ErrNoSuchWorker, got %v", err)
	}
	if err := sys.InjectDisturbance(0, 7, time.Millisecond); !errors.Is(err, clockwork.ErrNoSuchWorker) {
		t.Fatalf("want ErrNoSuchWorker for bad GPU, got %v", err)
	}
	if err := sys.InjectDisturbance(1, 0, time.Millisecond); err != nil {
		t.Fatalf("valid disturbance injection failed: %v", err)
	}
}

func TestFailWorkerFailsInFlight(t *testing.T) {
	sys := mustSys(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 6})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	sys.Submit("m", 100*time.Millisecond, nil) // warm
	sys.RunFor(100 * time.Millisecond)

	outcomes := map[clockwork.Reason]int{}
	for i := 0; i < 6; i++ {
		sys.Submit("m", 50*time.Millisecond, func(r clockwork.Result) {
			outcomes[r.Reason]++
		})
	}
	// Let the first action(s) reach the worker, then kill it.
	sys.RunFor(time.Millisecond)
	if err := sys.FailWorker(0); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.WorkerStateOf(0); st != clockwork.WorkerFailed {
		t.Fatalf("worker state = %v", st)
	}
	sys.RunFor(time.Second)

	if outcomes[clockwork.ReasonNone] != 0 {
		t.Fatalf("requests succeeded on a failed worker: %v", outcomes)
	}
	if outcomes[clockwork.ReasonWorkerFailed] == 0 {
		t.Fatalf("no in-flight work was lost to the failure: %v", outcomes)
	}
	total := 0
	for _, n := range outcomes {
		total += n
	}
	if total != 6 {
		t.Fatalf("only %d/6 requests reached an outcome: %v", total, outcomes)
	}
}

func TestUnregisterModel(t *testing.T) {
	sys := mustSys(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 7})
	if err := sys.RegisterModel("keep", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModel("drop", "googlenet"); err != nil {
		t.Fatal(err)
	}
	// Serve both, then retire "drop" at quiescence.
	for _, m := range []string{"keep", "drop"} {
		sys.Submit(m, 100*time.Millisecond, nil)
	}
	sys.RunFor(200 * time.Millisecond)

	if err := sys.UnregisterModel("ghost"); !errors.Is(err, clockwork.ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	if err := sys.UnregisterModel("drop"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit("drop", time.Second, nil); !errors.Is(err, clockwork.ErrUnknownModel) {
		t.Fatalf("submitting to an unregistered model: want ErrUnknownModel, got %v", err)
	}
	// "keep" is unaffected.
	ok := false
	sys.Submit("keep", 100*time.Millisecond, func(r clockwork.Result) { ok = r.Success })
	sys.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("surviving model stopped serving")
	}
	// The name can be reused.
	if err := sys.RegisterModel("drop", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	ok = false
	sys.Submit("drop", 100*time.Millisecond, func(r clockwork.Result) { ok = r.Success })
	sys.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("re-registered model failed to serve")
	}
}

func TestUnregisterFailsQueuedRequests(t *testing.T) {
	sys := mustSys(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 8})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	// With the only worker drained, requests queue with nowhere to go.
	if err := sys.DrainWorker(0); err != nil {
		t.Fatal(err)
	}
	var got clockwork.Result
	sys.Submit("m", 10*time.Second, func(r clockwork.Result) { got = r })
	sys.RunFor(10 * time.Millisecond) // request reaches the controller queue
	if err := sys.UnregisterModel("m"); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(100 * time.Millisecond)
	if got.Success || got.Reason != clockwork.ReasonUnregistered {
		t.Fatalf("queued request: want ReasonUnregistered, got %+v", got)
	}
}

// TestUnregisterBusyOnDrainedWorker: drain promises that in-flight
// results are honoured, so a model with work in flight on a drained
// worker must refuse to unregister until that work drains.
func TestUnregisterBusyOnDrainedWorker(t *testing.T) {
	sys := mustSys(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 11})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	sys.Submit("m", 100*time.Millisecond, nil) // warm
	sys.RunFor(100 * time.Millisecond)

	var got clockwork.Result
	sys.Submit("m", 100*time.Millisecond, func(r clockwork.Result) { got = r })
	sys.RunFor(time.Millisecond) // INFER now in flight
	if err := sys.DrainWorker(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.UnregisterModel("m"); !errors.Is(err, clockwork.ErrModelBusy) {
		t.Fatalf("unregister with in-flight work on a drained worker: want ErrModelBusy, got %v", err)
	}
	sys.RunFor(200 * time.Millisecond)
	if !got.Success {
		t.Fatalf("drained worker's in-flight result was not honoured: %+v", got)
	}
	if err := sys.UnregisterModel("m"); err != nil {
		t.Fatalf("unregister after drain quiesced: %v", err)
	}
}

// TestCancelInTransitBeatsDispatch: a cancel issued while the request
// is on the wire must win even when a warm model and a free GPU would
// let the scheduler dispatch the request the instant it arrives.
func TestCancelInTransitBeatsDispatch(t *testing.T) {
	sys := mustSys(t, clockwork.Config{ExactTiming: true, Seed: 12})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	sys.Submit("m", 100*time.Millisecond, nil) // warm; GPU idle afterwards
	sys.RunFor(100 * time.Millisecond)

	var got clockwork.Result
	h, err := sys.SubmitRequest(clockwork.Request{Model: "m", SLO: 100 * time.Millisecond},
		func(r clockwork.Result) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Fatal("in-transit cancel should be accepted")
	}
	sys.RunFor(200 * time.Millisecond)
	if got.Success || got.Reason != clockwork.ReasonCancelled {
		t.Fatalf("in-transit cancel lost to dispatch: %+v", got)
	}
}

func TestModelAndTenantStats(t *testing.T) {
	sys := mustSys(t, clockwork.Config{ExactTiming: true, Seed: 9})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sys.SubmitRequest(clockwork.Request{
			Model: "m", SLO: 100 * time.Millisecond, Tenant: "acme",
		}, nil)
		sys.RunFor(50 * time.Millisecond)
	}
	// One provably unmeetable request for the failure taxonomy.
	sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Millisecond, Tenant: "acme"}, nil)
	sys.RunFor(100 * time.Millisecond)

	ms, ok := sys.ModelStats("m")
	if !ok {
		t.Fatal("no model stats")
	}
	if ms.Requests != 5 || ms.Succeeded != 4 || ms.Cancelled != 1 || ms.ColdStarts != 1 {
		t.Fatalf("model stats: %+v", ms)
	}
	if ms.P50 <= 0 || ms.Max < ms.P50 || ms.GoodputMean <= 0 {
		t.Fatalf("model latency stats: %+v", ms)
	}
	ts, ok := sys.TenantStats("acme")
	if !ok || ts.Requests != 5 || ts.Succeeded != 4 {
		t.Fatalf("tenant stats: %+v ok=%v", ts, ok)
	}
	if _, ok := sys.ModelStats("ghost"); ok {
		t.Fatal("stats for unknown model")
	}
	if _, ok := sys.TenantStats("ghost"); ok {
		t.Fatal("stats for unknown tenant")
	}
}

// TestControlPlaneDeterminism replays a scenario with mid-run AddWorker
// and DrainWorker twice and requires bit-identical per-request outcomes
// — the clock-determinism promise must survive live reconfiguration.
func TestControlPlaneDeterminism(t *testing.T) {
	run := func() string {
		sys := mustSys(t, clockwork.Config{Workers: 1, GPUsPerWorker: 1, Seed: 1234})
		if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
			t.Fatal(err)
		}
		var sig strings.Builder
		var loop func(i int)
		loop = func(i int) {
			if i >= 300 {
				return
			}
			sys.SubmitRequest(clockwork.Request{Model: "m", SLO: 25 * time.Millisecond},
				func(r clockwork.Result) {
					fmt.Fprintf(&sig, "%d:%v:%v:%d;", r.RequestID, r.Success, r.Latency, r.Batch)
				})
			sys.After(2*time.Millisecond, func() { loop(i + 1) })
		}
		loop(0)
		sys.After(100*time.Millisecond, func() { sys.AddWorker() })
		sys.After(300*time.Millisecond, func() {
			if err := sys.DrainWorker(0); err != nil {
				t.Error(err)
			}
		})
		sys.RunFor(2 * time.Second)
		s := sys.Summary()
		fmt.Fprintf(&sig, "|ok=%d fail=%d max=%v", s.Succeeded, s.Failed, s.Max)
		if s.Succeeded < 200 {
			t.Fatalf("reconfiguration broke serving: %+v", s)
		}
		return sig.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("mid-run AddWorker/DrainWorker is nondeterministic:\n%.200s\nvs\n%.200s", a, b)
	}
}

// TestShardedPublicAPI round-trips the sharded control plane through
// the public surface alone: construction with Shards, ownership
// lookup, per-shard stats, manual migration and rebalancing, and the
// geometry validation error.
func TestShardedPublicAPI(t *testing.T) {
	sys := mustSys(t, clockwork.Config{Workers: 4, GPUsPerWorker: 1, Shards: 2, Seed: 1})
	if sys.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d", sys.ShardCount())
	}
	names, err := sys.RegisterCopies("resnet", "resnet50_v1b", 8)
	if err != nil {
		t.Fatal(err)
	}
	succeeded := 0
	for round := 0; round < 5; round++ {
		for _, n := range names {
			if err := sys.Submit(n, 250*time.Millisecond, func(r clockwork.Result) {
				if r.Success {
					succeeded++
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		sys.RunFor(100 * time.Millisecond)
	}
	sys.RunFor(time.Second)
	if succeeded == 0 {
		t.Fatal("no request succeeded on the sharded system")
	}
	sum := sys.Summary()
	var binned uint64
	for i := 0; i < sys.ShardCount(); i++ {
		st, err := sys.ShardStats(i)
		if err != nil {
			t.Fatal(err)
		}
		binned += st.Requests
	}
	if binned != sum.Requests {
		t.Fatalf("shard bins sum to %d, Summary.Requests = %d", binned, sum.Requests)
	}
	if _, err := sys.ShardStats(7); !errors.Is(err, clockwork.ErrNoSuchShard) {
		t.Fatalf("want ErrNoSuchShard, got %v", err)
	}

	// Manual migration through the public API.
	from, ok := sys.ShardOf(names[0])
	if !ok {
		t.Fatal("ShardOf unknown for a registered model")
	}
	if err := sys.MigrateModel(names[0], (from+1)%2); err != nil {
		t.Fatal(err)
	}
	if s, _ := sys.ShardOf(names[0]); s != (from+1)%2 {
		t.Fatalf("ShardOf after migrate = %d", s)
	}
	if sys.Migrations() == 0 {
		t.Fatal("Migrations() did not count the manual move")
	}
	sys.Rebalance() // must not panic or disturb serving
	ok2 := false
	sys.Submit(names[0], time.Second, func(r clockwork.Result) { ok2 = r.Success })
	sys.RunFor(2 * time.Second)
	if !ok2 {
		t.Fatal("migrated model stopped serving")
	}

	// Geometry validation: more shards than workers is a construction
	// error, not a panic.
	if _, err := clockwork.New(clockwork.Config{Workers: 1, Shards: 4}); err == nil {
		t.Fatal("want error for Shards > Workers")
	}
}

// TestShardedSummaryMatchesUnshardedWorkload: the same deterministic
// workload must complete fully on 1 and 2 shards; outcome totals may
// differ (different scheduling domains) but both must account for
// every request exactly once.
func TestShardedSummaryMatchesUnshardedWorkload(t *testing.T) {
	run := func(shards int) clockwork.Summary {
		sys := mustSys(t, clockwork.Config{Workers: 2, GPUsPerWorker: 1, Shards: shards, Seed: 9})
		names, err := sys.RegisterCopies("m", "resnet50_v1b", 6)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			for _, n := range names {
				sys.Submit(n, 200*time.Millisecond, nil)
			}
			sys.RunFor(50 * time.Millisecond)
		}
		sys.RunFor(time.Second)
		return sys.Summary()
	}
	for _, shards := range []int{1, 2} {
		s := run(shards)
		if s.Requests != 60 {
			t.Fatalf("shards=%d: %d of 60 requests accounted", shards, s.Requests)
		}
		if s.Succeeded+s.Failed != 60 {
			t.Fatalf("shards=%d: outcomes %d+%d don't cover 60", shards, s.Succeeded, s.Failed)
		}
	}
}
