package clockwork

import (
	"fmt"

	"clockwork/internal/modelir"
	"clockwork/internal/modelzoo"
)

// RegisterModel makes a model instance servable. zooModel names an entry
// of the embedded catalogue (see ZooModels); instanceName is the name
// requests refer to. Unknown catalogue entries return ErrUnknownModel;
// duplicate instance names return ErrDuplicateModel.
func (s *System) RegisterModel(instanceName, zooModel string) error {
	m, ok := modelzoo.ByName(zooModel)
	if !ok {
		return fmt.Errorf("%w: no zoo model %q", ErrUnknownModel, zooModel)
	}
	return s.cluster.RegisterModel(instanceName, m)
}

// Graph re-exports the model-definition IR so callers can describe
// custom architectures (the role ONNX plays in the paper, §5.1) and
// serve them alongside catalogue models.
type Graph = modelir.Graph

// Layer constructors for custom Graphs.
type (
	// Conv2D is a 2D convolution with "same" padding.
	Conv2D = modelir.Conv2D
	// Pool2D is spatial pooling.
	Pool2D = modelir.Pool2D
	// Dense is a fully connected layer.
	Dense = modelir.Dense
	// Activation is an elementwise nonlinearity.
	Activation = modelir.Activation
	// GlobalPool collapses spatial dimensions.
	GlobalPool = modelir.GlobalPool
	// TensorShape is a (channels, height, width) shape.
	TensorShape = modelir.Shape
	// ModelLayer is the operator interface custom layers implement.
	ModelLayer = modelir.Layer
)

// RegisterCustomModel compiles a user-defined graph (§5.1: weights blob,
// per-batch kernels, memory metadata, profiling seed — all derived from
// the abstract definition) and registers it under the graph's name.
func (s *System) RegisterCustomModel(g *Graph) error {
	m, err := modelir.Compile(g, modelir.DefaultCalibration)
	if err != nil {
		return err
	}
	return s.cluster.RegisterModel(m.Name, m)
}

// RegisterCopies registers n instances of zooModel named "<base>#i" and
// returns their instance names. Unknown zoo models are ErrUnknownModel;
// a name collision is ErrDuplicateModel.
func (s *System) RegisterCopies(base, zooModel string, n int) ([]string, error) {
	m, ok := modelzoo.ByName(zooModel)
	if !ok {
		return nil, fmt.Errorf("%w: no zoo model %q", ErrUnknownModel, zooModel)
	}
	return s.cluster.RegisterCopies(base, m, n)
}

// Models returns the currently registered model instance names in
// registration order — the live inventory, as opposed to ZooModels
// (the static catalogue instances are created from). In live mode call
// it through Live.Do.
func (s *System) Models() []string { return s.cluster.ModelNames() }

// ModelCount returns the number of registered model instances without
// copying the name list.
func (s *System) ModelCount() int { return s.cluster.ModelCount() }

// ZooModels returns the names of the embedded model catalogue
// (the paper's Appendix A, Table 1).
func ZooModels() []string {
	all := modelzoo.All()
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name
	}
	return names
}

// ZooFamilies returns the catalogue's model families.
func ZooFamilies() []string { return modelzoo.Families() }

// ModelSpec describes one catalogue entry.
type ModelSpec struct {
	Name       string
	Family     string
	WeightsMB  float64
	InputKB    float64
	OutputKB   float64
	TransferMs float64
	// ExecMs holds execution latency at batch sizes 1, 2, 4, 8, 16.
	ExecMs [5]float64
}

func specOf(m *modelzoo.Model) ModelSpec {
	return ModelSpec{
		Name:       m.Name,
		Family:     m.Family,
		WeightsMB:  m.WeightsMB,
		InputKB:    m.InputKB,
		OutputKB:   m.OutputKB,
		TransferMs: m.TransferMs,
		ExecMs:     m.ExecMs,
	}
}

// ZooInfo returns the catalogue entry for name.
func ZooInfo(name string) (ModelSpec, bool) {
	m, ok := modelzoo.ByName(name)
	if !ok {
		return ModelSpec{}, false
	}
	return specOf(m), true
}

// ZooSpecs returns catalogue entries, optionally filtered by family
// (empty string = all), in catalogue order.
func ZooSpecs(family string) []ModelSpec {
	models := modelzoo.All()
	if family != "" {
		models = modelzoo.ByFamily(family)
	}
	specs := make([]ModelSpec, len(models))
	for i, m := range models {
		specs[i] = specOf(m)
	}
	return specs
}
