package clockwork_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the DESIGN.md ablations. These run scaled-down
// variants (the full-size runs replay hours of trace; see EXPERIMENTS.md
// for the correspondence) and report the figure's headline quantity as
// a custom benchmark metric — goodput, satisfaction, tail latency —
// alongside the usual ns/op of one whole experiment run.

import (
	"fmt"
	"testing"
	"time"

	"clockwork"

	"clockwork/experiments"
	"clockwork/internal/modelzoo"
	"clockwork/internal/runner"
)

// BenchmarkFig2a regenerates Fig 2a (isolated inference latency CDF).
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2a(experiments.Fig2aConfig{Inferences: 200_000, Seed: uint64(i)})
		b.ReportMetric(r.RelSpread9999*100, "p99.99-spread-%")
		b.ReportMetric(float64(r.Median)/1e6, "median-ms")
	}
}

// BenchmarkFig2b regenerates Fig 2b (concurrency throughput/latency).
func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2b(experiments.Fig2bConfig{Duration: 10 * time.Second, Seed: uint64(i)})
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.Throughput/first.Throughput, "throughput-gain-x")
		b.ReportMetric(float64(last.Max)/float64(first.P50), "tail-blowup-x")
	}
}

// BenchmarkFig5 regenerates Fig 5 (goodput vs SLO for all three
// systems) at two representative SLOs.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(experiments.Fig5Config{
			SLOs:     []time.Duration{25 * time.Millisecond, 500 * time.Millisecond},
			Duration: 6 * time.Second,
			Warmup:   2 * time.Second,
			Seed:     uint64(i),
		})
		for _, c := range r.Cells {
			if c.System == experiments.SystemClockwork && c.SLO == 25*time.Millisecond {
				b.ReportMetric(c.Goodput, "clockwork-25ms-goodput")
			}
			if c.System == experiments.SystemClipper && c.SLO == 25*time.Millisecond {
				b.ReportMetric(c.Goodput, "clipper-25ms-goodput")
			}
		}
	}
}

// BenchmarkFig6 regenerates Fig 6 (thousands of models on one worker).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6(experiments.Fig6Config{
			TotalModels: 300, PreRun: time.Minute, Duration: 6 * time.Minute,
			PageCacheBytes: 100 * 7 * 16 * 1024 * 1024,
			Seed:           uint64(i),
		})
		b.ReportMetric(float64(r.MaxLatency)/1e6, "max-latency-ms")
		last := r.Minutes[len(r.Minutes)-1]
		b.ReportMetric(100*last.ColdStartFrac, "late-cold-%")
	}
}

// BenchmarkFig7 regenerates Fig 7 left (workload satisfaction sweep).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7(experiments.Fig7Config{
			Workers: 2, Models: 4, TotalRate: 400,
			Epoch: 3 * time.Second, Seed: uint64(i),
		})
		b.ReportMetric(r.Rows[len(r.Rows)-1].Satisfaction, "satisfaction@86.5x")
		// First multiplier with ≥99% satisfaction: the paper's
		// "how low can Clockwork go" answer.
		for _, row := range r.Rows {
			if row.Satisfaction >= 0.99 {
				b.ReportMetric(row.Multiplier, "min-99%-multiplier")
				break
			}
		}
	}
}

// BenchmarkFig7Isolation regenerates Fig 7 right (LS/BC isolation).
func BenchmarkFig7Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7Isolation(experiments.Fig7IsoConfig{
			Workers: 3, LSModels: 3, LSRate: 100,
			BCModels: 6, BCConc: 8,
			Epoch: 3 * time.Second, Multipliers: []float64{11.4, 25.6, 86.5},
			Seed: uint64(i),
		})
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.LSSatisfaction, "ls-satisfaction")
		b.ReportMetric(last.BCThroughput, "bc-throughput")
	}
}

// BenchmarkFig8 regenerates Fig 8 (MAF trace replay).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig8(experiments.Fig8Config{
			Workers: 1, GPUsPerWorker: 2,
			Copies: 2, Functions: 400, Minutes: 5, Seed: uint64(i),
		})
		b.ReportMetric(r.Goodput, "goodput-r/s")
		b.ReportMetric(float64(r.MaxLatency)/1e6, "max-latency-ms")
		b.ReportMetric(100*r.ColdRequests, "cold-requests-%")
	}
}

// BenchmarkFig9 regenerates Fig 9 (prediction error CDFs).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(experiments.Fig8Config{
			Workers: 1, GPUsPerWorker: 2,
			Copies: 2, Functions: 300, Minutes: 4, Seed: uint64(i),
		})
		b.ReportMetric(float64(r.InferUnder.Percentile(99))/1e3, "infer-under-p99-µs")
		b.ReportMetric(float64(r.LoadUnder.Percentile(99))/1e3, "load-under-p99-µs")
	}
}

// BenchmarkSLOScaleTable regenerates the §6.5 tighter-SLOs table.
func BenchmarkSLOScaleTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunSLOScale(experiments.SLOScaleConfig{
			Workers: 2, GPUsPerWorker: 2,
			Functions: 400, Minutes: 3, Copies: 2, Seed: uint64(i),
		})
		b.ReportMetric(r.Rows[0].Goodput, "goodput-100ms")
		b.ReportMetric(r.Rows[1].Goodput, "goodput-25ms")
	}
}

// BenchmarkModelZoo regenerates Table 1 lookups (catalogue access and
// batch interpolation cost).
func BenchmarkModelZoo(b *testing.B) {
	models := modelzoo.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := models[i%len(models)]
		_ = m.ExecLatency(1 + i%32)
		_ = m.Pages(16 * 1024 * 1024)
	}
}

// BenchmarkAblationSerialExec quantifies the serial-vs-concurrent EXEC
// choice (DESIGN.md ablation; Fig 2b's data in ablation form).
func BenchmarkAblationSerialExec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2b(experiments.Fig2bConfig{
			Concurrencies: []int{1, 16},
			Duration:      10 * time.Second,
			Seed:          uint64(i),
		})
		serial, conc := r.Rows[0], r.Rows[1]
		b.ReportMetric(conc.Throughput/serial.Throughput, "concurrent-throughput-x")
		b.ReportMetric(float64(conc.Max)/float64(serial.Max), "concurrent-max-latency-x")
	}
}

// BenchmarkAblationLookahead sweeps the 5ms scheduler lookahead.
func BenchmarkAblationLookahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationLookahead(5*time.Second, uint64(i))
		for _, row := range r.Rows {
			if row.Label == "5ms" {
				b.ReportMetric(row.Goodput, "goodput-5ms-lookahead")
			}
		}
	}
}

// BenchmarkAblationPredictor sweeps the rolling-profile window size.
func BenchmarkAblationPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationPredictor(5*time.Second, uint64(i))
		for _, row := range r.Rows {
			if row.Label == "window=10" {
				b.ReportMetric(float64(row.Rejected), "rejected-window-10")
			}
		}
	}
}

// BenchmarkAblationLoadPolicy compares Appendix B LOAD priority against
// naive oldest-first selection.
func BenchmarkAblationLoadPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationLoadPolicy(5*time.Second, uint64(i))
		b.ReportMetric(r.Rows[0].Goodput, "goodput-priority")
		b.ReportMetric(r.Rows[1].Goodput, "goodput-oldest-first")
	}
}

// BenchmarkAblationPaging compares 16MB paging against first-fit
// allocation under churn.
func BenchmarkAblationPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationPaging(5_000, uint64(i))
		for _, row := range r.Rows {
			switch row.Allocator {
			case "16MB paging":
				b.ReportMetric(100*row.FailureRate, "paging-failure-%")
			case "first-fit":
				b.ReportMetric(100*row.FailureRate, "firstfit-failure-%")
			}
		}
	}
}

// BenchmarkRunnerSweep measures scenario-runner throughput: a 16-cell
// sweep of small Fig 2a experiments executed serially (workers=1, the
// reference the parallel path must reproduce bit-identically) versus on
// the full worker pool. On a multi-core machine the parallel variant's
// ns/op should approach serial divided by core count; EXPERIMENTS.md
// records measured numbers.
func BenchmarkRunnerSweep(b *testing.B) {
	cells := make([]int, 16)
	for i := range cells {
		cells[i] = i
	}
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner.MapN(workers, cells, func(c int) time.Duration {
					r := experiments.RunFig2a(experiments.Fig2aConfig{
						Inferences: 20_000,
						Seed:       runner.Seed(uint64(i), fmt.Sprintf("cell-%d", c)),
					})
					return r.Median
				})
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkEngineThroughput measures raw event throughput of the
// discrete-event engine — the simulator's own speed limit.
func BenchmarkEngineThroughput(b *testing.B) {
	sys, _ := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Submit("m", 100*time.Millisecond, nil)
		sys.RunFor(3 * time.Millisecond)
	}
}
