package clockwork

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"clockwork/internal/core"
)

// Reason classifies why a request did not succeed; ReasonNone means it
// did. It replaces the magic strings "cancelled"/"rejected"/"timeout"
// of the first API: String() still renders those words, so printed
// output is unchanged, but callers now switch on constants.
type Reason = core.Reason

// The failure taxonomy, from earliest to latest point of failure.
const (
	// ReasonNone: the request succeeded.
	ReasonNone = core.ReasonNone
	// ReasonCancelled: admission control determined the SLO unmeetable
	// and rejected the request in advance (§4.1), or the client
	// cancelled it via Handle.Cancel while it was still queued.
	ReasonCancelled = core.ReasonCancelled
	// ReasonRejected: a worker could not honour the schedule (a timing
	// misprediction) and cancelled the action.
	ReasonRejected = core.ReasonRejected
	// ReasonTimeout: the deadline passed while the request was in
	// flight; the client learns of the failure at the deadline.
	ReasonTimeout = core.ReasonTimeout
	// ReasonWorkerFailed: the executing worker was failed via
	// FailWorker; its in-flight work is lost.
	ReasonWorkerFailed = core.ReasonWorkerFailed
	// ReasonUnregistered: the model was unregistered while the request
	// was in transit or queued.
	ReasonUnregistered = core.ReasonUnregistered
)

// Typed errors returned by the public API; match with errors.Is.
var (
	ErrUnknownModel   = core.ErrUnknownModel
	ErrDuplicateModel = core.ErrDuplicateModel
	ErrModelBusy      = core.ErrModelBusy
	ErrUnknownPolicy  = core.ErrUnknownPolicy
	ErrNoSuchWorker   = core.ErrNoSuchWorker
	ErrWorkerDown     = core.ErrWorkerDown
	ErrInvalidRequest = core.ErrInvalidRequest
	ErrNoSuchShard    = core.ErrNoSuchShard
)

// Request describes one inference submission. Model and SLO are
// required; the remaining fields are optional per-request choices the
// controller folds into its global plan (the paper's thesis: every
// performance-relevant choice is consolidated centrally — this struct
// is how clients state theirs).
type Request struct {
	// Model is the registered instance name to serve.
	Model string
	// SLO is the end-to-end latency objective for this request.
	SLO time.Duration
	// Priority orders requests within a model's queue: higher values
	// are served first, FIFO within a level. Default 0.
	Priority int
	// Tenant labels the request for per-tenant accounting (see
	// TenantStats). Optional.
	Tenant string
	// MaxBatchSize, if > 0, caps the batch this request may execute in
	// (1 forces solo execution).
	MaxBatchSize int
	// OnResult, if non-nil, is invoked exactly once with the final
	// outcome, before SubmitRequest's onDone argument (both may be set;
	// both fire). Like every completion callback it runs on the engine
	// goroutine — in live mode keep it short and non-blocking, and hand
	// heavy work to another goroutine. Prefer Handle.Wait when a
	// goroutine just needs to block until completion.
	OnResult func(Result)
}

// Result is the client-observed outcome of one inference request.
type Result struct {
	// RequestID is the controller-assigned request identifier.
	RequestID uint64
	// Model and Tenant echo the submission, for shared callbacks.
	Model  string
	Tenant string
	// Success reports whether the inference executed and returned.
	Success bool
	// Reason is ReasonNone on success; otherwise it explains the
	// failure (see the Reason constants).
	Reason Reason
	// Latency is the end-to-end client-observed latency.
	Latency time.Duration
	// Batch is the batch size the request executed in.
	Batch int
	// ColdStart reports whether the model was not GPU-resident when the
	// request arrived.
	ColdStart bool
}

// ErrHandleReleased is returned by Handle.Wait on a handle that was
// released (or never initialised): the underlying slot may already
// belong to another request, so there is nothing to wait for.
var ErrHandleReleased = errors.New("clockwork: handle released")

// Handle tracks one submitted request from the client side. In
// simulation mode, inspect or cancel between Run calls. In live mode
// (see System.StartLive), Done, Outcome, ID and Wait are safe from any
// goroutine; Cancel must run on the engine goroutine (via Live.Do).
//
// Handle is a small value: copy it freely, there is no per-handle
// allocation. The underlying slot recycles through a pool when Release
// is called; the captured generation makes every method on a stale copy
// (one that outlived its Release) a deterministic no-op instead of an
// accidental observation of the slot's next occupant. The zero Handle
// is valid and behaves like a released one.
type Handle struct {
	h *core.Handle
	// gen is the slot's generation when this handle was minted; a
	// mismatch later proves the slot was recycled.
	gen uint64
}

// valid reports whether the handle still refers to its own request.
func (h Handle) valid() bool { return h.h != nil && h.h.Gen() == h.gen }

// Release returns the handle's underlying slot to the pool. Call it
// when no goroutine will use this handle (or any copy of it) again —
// after Wait has returned, typically. Releasing a zero or already-
// released handle is a no-op; methods on surviving copies become
// deterministic no-ops.
func (h Handle) Release() {
	if h.valid() {
		h.h.Release()
	}
}

// ID returns the controller-assigned request ID (0 while the request is
// still in transit to the controller, or after Release).
func (h Handle) ID() uint64 {
	if !h.valid() {
		return 0
	}
	return h.h.ID()
}

// Done reports whether the request has reached a final outcome (false
// after Release).
func (h Handle) Done() bool {
	return h.valid() && h.h.Done()
}

// Outcome returns the final result; ok is false while pending and after
// Release.
func (h Handle) Outcome() (Result, bool) {
	if !h.valid() {
		return Result{}, false
	}
	resp, latency, done := h.h.Outcome()
	if !done {
		return Result{}, false
	}
	return resultOf(resp, latency), true
}

// Wait blocks until the request reaches a final outcome or ctx is
// cancelled — the completion-notification primitive that replaces
// busy-polling Done. Something else must be advancing the clock: a
// RealtimeDriver started with System.StartLive, or (in tests) another
// goroutine calling RunFor. A ctx cancellation abandons the wait, not
// the request: the request still runs to its normal outcome. Waiting on
// a released (or zero) handle returns ErrHandleReleased immediately.
func (h Handle) Wait(ctx context.Context) (Result, error) {
	if !h.valid() {
		return Result{}, ErrHandleReleased
	}
	resp, latency, err := h.h.Wait(ctx)
	if err != nil {
		return Result{}, err
	}
	return resultOf(resp, latency), nil
}

// Cancel requests cancellation and reports whether it took effect:
// still-queued requests cancel immediately, in-transit requests cancel
// deterministically on arrival at the controller. Only a request
// already handed to a worker cannot be clawed back (§4.2); then Cancel
// reports false, and so does a cancel on a released handle.
func (h Handle) Cancel() bool {
	return h.valid() && h.h.Cancel()
}

func resultOf(r core.Response, l time.Duration) Result {
	return Result{
		RequestID: r.RequestID,
		Model:     r.Model,
		Tenant:    r.Tenant,
		Success:   r.Success,
		Reason:    r.Reason,
		Latency:   l,
		Batch:     r.Batch,
		ColdStart: r.ColdStart,
	}
}

// SubmitRequest issues an inference request with full per-request
// options and returns a client-side handle. onDone (may be nil) runs
// when the response reaches the client. Unknown models and malformed
// specs are typed errors (ErrUnknownModel, ErrInvalidRequest) — the
// submission path no longer silently accepts unregistered names.
func (s *System) SubmitRequest(req Request, onDone func(Result)) (Handle, error) {
	spec, cb := req.lower(onDone)
	h, err := s.cluster.SubmitRequest(spec, cb)
	if err != nil {
		return Handle{}, err
	}
	return Handle{h: h, gen: h.Gen()}, nil
}

// SubmitRequestOn is SubmitRequest entered on a specific shard — the
// routed form for Config.EnginePerShard systems, where the caller must
// already be on shard's engine goroutine (via Live.InjectOn with the
// shard from OwnerShard). If shard turns out not to own the model —
// the routing hint was a migration stale — the submission is forwarded
// to the real owner over the cross-shard network, costing one extra
// hop. Out-of-range shards are ErrNoSuchShard. On a single-engine
// system it is identical to SubmitRequest with the shard ignored (all
// shards live on one engine).
func (s *System) SubmitRequestOn(shard int, req Request, onDone func(Result)) (Handle, error) {
	spec, cb := req.lower(onDone)
	h, err := s.cluster.SubmitRequestOn(shard, spec, cb)
	if err != nil {
		return Handle{}, err
	}
	return Handle{h: h, gen: h.Gen()}, nil
}

// ResultSink receives a request's final outcome — the interface-shaped
// alternative to the OnResult callback for callers that pool their
// per-request state. OnResult runs on the engine goroutine, exactly once
// per accepted submission; keep it short and non-blocking.
type ResultSink interface {
	OnResult(Result)
}

// sinkLower adapts a public ResultSink to the core response interface.
// It recycles itself through a pool the moment the response fires, so
// the sink path stays allocation-free in steady state.
type sinkLower struct {
	sink ResultSink
}

var sinkLowerPool = sync.Pool{New: func() any { return new(sinkLower) }}

func (b *sinkLower) OnResponse(r core.Response, l time.Duration) {
	sink := b.sink
	b.sink = nil
	sinkLowerPool.Put(b)
	sink.OnResult(resultOf(r, l))
}

// SubmitRequestSink is the fire-and-forget submission path: no Handle is
// minted (nothing to Wait on, nothing to Release), and the outcome is
// delivered to sink's OnResult exactly once. shard has SubmitRequestOn's
// semantics (ignored on a single-engine system; the caller must be on
// that shard's engine goroutine otherwise). req.OnResult must be nil —
// the sink IS the completion callback (ErrInvalidRequest otherwise).
// This is the serving path for callers that keep per-request state in
// pools of their own: nothing is allocated per request on the way down.
func (s *System) SubmitRequestSink(shard int, req Request, sink ResultSink) error {
	if req.OnResult != nil {
		return fmt.Errorf("%w: SubmitRequestSink with both OnResult and a sink", ErrInvalidRequest)
	}
	spec := core.SubmitSpec{
		Model:    req.Model,
		SLO:      req.SLO,
		Priority: req.Priority,
		Tenant:   req.Tenant,
		MaxBatch: req.MaxBatchSize,
	}
	var cs core.ResponseSink
	var b *sinkLower
	if sink != nil {
		b = sinkLowerPool.Get().(*sinkLower)
		b.sink = sink
		cs = b
	}
	err := s.cluster.SubmitRequestSinkOn(shard, spec, cs)
	if err != nil && b != nil {
		b.sink = nil
		sinkLowerPool.Put(b)
	}
	return err
}

// lower translates the public request into the core submission spec and
// completion callback.
func (req Request) lower(onDone func(Result)) (core.SubmitSpec, func(core.Response, time.Duration)) {
	spec := core.SubmitSpec{
		Model:    req.Model,
		SLO:      req.SLO,
		Priority: req.Priority,
		Tenant:   req.Tenant,
		MaxBatch: req.MaxBatchSize,
	}
	var cb func(core.Response, time.Duration)
	if onDone != nil || req.OnResult != nil {
		onResult := req.OnResult
		cb = func(r core.Response, l time.Duration) {
			res := resultOf(r, l)
			if onResult != nil {
				onResult(res)
			}
			if onDone != nil {
				onDone(res)
			}
		}
	}
	return spec, cb
}

// Submit issues an inference request with default options — the
// convenience path for plain (model, SLO) submissions. onDone (may be
// nil) runs when the response reaches the client.
func (s *System) Submit(model string, slo time.Duration, onDone func(Result)) error {
	_, err := s.SubmitRequest(Request{Model: model, SLO: slo}, onDone)
	return err
}
