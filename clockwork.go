package clockwork

import (
	"time"

	_ "clockwork/internal/baseline" // registers the clipper/infaas policies
	"clockwork/internal/core"
	"clockwork/trace"
)

// Config configures a serving system. The zero value is a single
// Clockwork worker with one GPU and the paper's defaults.
type Config struct {
	// Workers is the number of worker machines (default 1).
	Workers int
	// GPUsPerWorker is the number of GPUs per worker (default 1).
	GPUsPerWorker int
	// Shards partitions the control plane into this many scheduler
	// shards (default 1 — the paper's centralized controller, which its
	// §8 names as the scaling bottleneck). Each shard schedules a
	// disjoint slice of the workers and a disjoint subset of the
	// models; a periodic rebalancer migrates models between shards when
	// demand skews. Requires Workers >= Shards. See ARCHITECTURE.md.
	Shards int
	// RebalanceInterval is the cross-shard rebalancer's virtual-time
	// period (default 1s; meaningful only with Shards > 1).
	RebalanceInterval time.Duration
	// EnginePerShard gives every scheduler shard its own event engine
	// and, in live mode, its own pacing goroutine — an N-shard control
	// plane can then use N cores. The shards' virtual clocks stay within
	// a bounded skew window of each other (see SkewBound); cross-shard
	// interactions travel through synchronised handoffs and
	// whole-cluster operations run under a stop-the-world barrier
	// (Live.Do). Simulation entry points (RunFor/RunUntil) are
	// unavailable: an EnginePerShard system must be driven live via
	// StartLive. Bit-exact reproducibility is a single-engine property —
	// with EnginePerShard the cross-shard interleaving is wall-clock
	// dependent, exactly like injection timing in live mode.
	EnginePerShard bool
	// SkewBound caps how far one shard's virtual clock may run ahead of
	// a lagging sibling's in EnginePerShard mode (the conservative-PDES
	// lookahead). Zero derives it from the cross-shard interaction
	// floor: no shard can affect another in under one network latency,
	// widened so an OS scheduling quantum at high speed multipliers does
	// not throttle healthy shards. Ignored without EnginePerShard.
	SkewBound time.Duration
	// Policy selects the scheduler by registry name (default
	// PolicyClockwork). See RegisterPolicy and Policies.
	Policy Policy
	// Seed makes runs reproducible; equal seeds give identical runs.
	Seed uint64
	// Lookahead is the controller's scheduling horizon (default 5ms).
	Lookahead time.Duration
	// ProfileWindow is the controller's rolling measurement window per
	// action key (default: the paper's 10 actions).
	ProfileWindow int
	// PageCacheBytes overrides per-GPU weight-cache capacity
	// (default: 32GB device memory minus workspace and IO staging).
	PageCacheBytes int64
	// ExactTiming disables the hardware noise model, making action
	// durations exactly equal to their profiles (useful in tests).
	ExactTiming bool
	// MetricsInterval buckets the time-series metrics (default 1min).
	MetricsInterval time.Duration
	// ZeroLengthInputs reproduces the §6.5 scale experiment: clients
	// send zero-length inputs and workers generate inputs on arrival.
	ZeroLengthInputs bool
}

// System is a fully wired serving deployment on a virtual clock.
type System struct {
	cluster *core.Cluster
}

// New constructs a serving system. The configured policy is resolved
// through the registry; an unknown name returns an error listing every
// registered policy (it does not panic).
func New(cfg Config) (*System, error) {
	ccfg := core.ClusterConfig{
		Workers:           cfg.Workers,
		GPUsPerWorker:     cfg.GPUsPerWorker,
		Shards:            cfg.Shards,
		RebalanceInterval: cfg.RebalanceInterval,
		EnginePerShard:    cfg.EnginePerShard,
		SkewBound:         cfg.SkewBound,
		Seed:              cfg.Seed,
		PageCacheBytes:    cfg.PageCacheBytes,
		NoNoise:           cfg.ExactTiming,
		MetricsInterval:   cfg.MetricsInterval,
		ZeroLengthInputs:  cfg.ZeroLengthInputs,
		Controller: core.Config{
			Lookahead:     cfg.Lookahead,
			ProfileWindow: cfg.ProfileWindow,
		},
	}
	cl, err := core.NewClusterWithPolicy(string(cfg.Policy), ccfg)
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl}, nil
}

// RunFor advances virtual time by d, executing everything due in that
// span. Panics with Config.EnginePerShard: a multi-engine system has no
// single deterministic clock to step — drive it live via StartLive.
func (s *System) RunFor(d time.Duration) { s.cluster.RunFor(d) }

// RunUntil advances virtual time to instant t (measured from the run's
// start); a t in the past is a no-op.
func (s *System) RunUntil(t time.Duration) {
	if d := t - s.Now(); d > 0 {
		s.cluster.RunFor(d)
	}
}

// Now returns the elapsed virtual time. With Config.EnginePerShard this
// is shard 0's clock (the shards stay within the skew bound of each
// other); while a live driver is pacing, read it from inside Live.Do or
// an engine-side callback, not from an arbitrary goroutine.
func (s *System) Now() time.Duration { return s.cluster.Eng.Now().Duration() }

// After schedules fn at now+d on the virtual clock — the hook workload
// generators use to pace themselves. With Config.EnginePerShard it
// schedules on shard 0's engine and must run on that engine's goroutine
// (inside Live.Do, or a callback already on shard 0).
func (s *System) After(d time.Duration, fn func()) {
	s.cluster.Eng.After(d, fn)
}

// AttachFlightRecorder wires the per-request flight recorder r into the
// control plane: every subsequent request's lifecycle (admission,
// scheduling decision, load, execution, response) is recorded into r's
// per-shard ring buffers. Attach before the system runs (RunFor /
// StartLive); the recorder is a pure observer — it never schedules
// events or consumes randomness, so runs with and without it are
// bit-identical. Attaching nil detaches. See the clockwork/trace
// package.
func (s *System) AttachFlightRecorder(r *trace.Recorder) {
	s.cluster.SetFlightRecorder(r)
}

// FlightRecorder returns the attached flight recorder, or nil.
func (s *System) FlightRecorder() *trace.Recorder { return s.cluster.FlightRecorder() }

// Summary condenses the run's client-observed metrics.
type Summary struct {
	Requests  uint64
	Succeeded uint64
	Failed    uint64
	// SLOMisses counts successful responses that exceeded their SLO.
	SLOMisses uint64
	// Cancelled counts requests rejected in advance by admission
	// control; Rejected counts worker-side schedule misses.
	Cancelled uint64
	Rejected  uint64

	P50, P99, P9999, Max time.Duration
	// GoodputMean is within-SLO responses per second over the run.
	GoodputMean float64
	// ColdStarts counts requests whose model was not resident.
	ColdStarts uint64
}

// Summary returns current aggregate metrics, summed across all
// scheduler shards.
func (s *System) Summary() Summary {
	m := s.cluster.Metrics
	st := s.cluster.Stats()
	elapsed := s.Now().Seconds()
	var goodput float64
	if elapsed > 0 {
		goodput = float64(m.Goodput.TotalCount()) / elapsed
	}
	return Summary{
		Requests:    st.Requests,
		Succeeded:   st.Succeeded,
		Failed:      m.Failures.Value(),
		SLOMisses:   m.SLOMisses.Value(),
		Cancelled:   st.Cancelled,
		Rejected:    st.Rejected,
		P50:         m.LatencyAll.Percentile(50),
		P99:         m.LatencyAll.Percentile(99),
		P9999:       m.LatencyAll.Percentile(99.99),
		Max:         m.LatencyAll.Max(),
		GoodputMean: goodput,
		ColdStarts:  st.ColdStart,
	}
}

// LatencyPercentile returns the client-observed latency at percentile p
// (0–100) across all requests so far.
func (s *System) LatencyPercentile(p float64) time.Duration {
	return s.cluster.Metrics.LatencyAll.Percentile(p)
}

// Cluster exposes the underlying cluster.
//
// Deprecated: this is an escape hatch for experiment harnesses that
// need raw telemetry (per-bucket time series, the controller's
// prediction-error trackers). Application code should use the public
// control-plane API instead — Submit/SubmitRequest, AddWorker/
// DrainWorker/FailWorker, UnregisterModel, Summary, ModelStats/
// TenantStats/ShardStats, and the shard operations ShardOf/
// MigrateModel/Rebalance — which covers everything the paper's API
// exposes (see ARCHITECTURE.md). Note that on a sharded system the
// returned cluster's Ctl field is shard 0's controller only; the
// accessor will eventually be unexported.
func (s *System) Cluster() *core.Cluster { return s.cluster }
