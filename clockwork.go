// Package clockwork is a Go reproduction of "Serving DNNs like
// Clockwork: Performance Predictability from the Bottom Up" (Gujarati et
// al., OSDI 2020): a distributed model serving system that consolidates
// every performance-relevant choice in a central controller so that DNN
// inference's natural determinism survives all the way to the client,
// yielding tail latencies that track SLOs at the 99.99th+ percentile.
//
// The hardware substrate (GPU execution, PCIe transfers, cluster
// network) is simulated and calibrated against the paper's published
// profiles (Appendix A), and the whole system runs on a deterministic
// virtual clock: an 8-hour trace replays in seconds, bit-identically for
// a given seed. See DESIGN.md for the substitution rationale and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	sys := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1})
//	sys.RegisterModel("my-resnet", "resnet50_v1b")
//	sys.Submit("my-resnet", 100*time.Millisecond, func(r clockwork.Result) {
//		fmt.Println(r.Success, r.Latency)
//	})
//	sys.RunFor(time.Second)
package clockwork

import (
	"fmt"
	"time"

	"clockwork/internal/baseline"
	"clockwork/internal/core"
	"clockwork/internal/modelir"
	"clockwork/internal/modelzoo"
)

// Policy selects the serving policy.
type Policy string

// Available policies: the paper's system and its two baselines (§6.1).
const (
	PolicyClockwork Policy = "clockwork"
	PolicyClipper   Policy = "clipper"
	PolicyINFaaS    Policy = "infaas"
)

// Config configures a serving system. The zero value is a single
// Clockwork worker with one GPU and the paper's defaults.
type Config struct {
	// Workers is the number of worker machines (default 1).
	Workers int
	// GPUsPerWorker is the number of GPUs per worker (default 1).
	GPUsPerWorker int
	// Policy selects the scheduler (default PolicyClockwork).
	Policy Policy
	// Seed makes runs reproducible; equal seeds give identical runs.
	Seed uint64
	// Lookahead is the controller's scheduling horizon (default 5ms).
	Lookahead time.Duration
	// PageCacheBytes overrides per-GPU weight-cache capacity
	// (default: 32GB device memory minus workspace and IO staging).
	PageCacheBytes int64
	// ExactTiming disables the hardware noise model, making action
	// durations exactly equal to their profiles (useful in tests).
	ExactTiming bool
	// MetricsInterval buckets the time-series metrics (default 1min).
	MetricsInterval time.Duration
}

// Result is the client-observed outcome of one inference request.
type Result struct {
	// Success reports whether the inference executed and returned.
	Success bool
	// Reason explains failures: "cancelled" (admission control
	// determined the SLO unmeetable), "rejected" (a worker could not
	// honour the schedule), or "timeout".
	Reason string
	// Latency is the end-to-end client-observed latency.
	Latency time.Duration
	// Batch is the batch size the request executed in.
	Batch int
	// ColdStart reports whether the model was not GPU-resident when the
	// request arrived.
	ColdStart bool
}

// System is a fully wired serving deployment on a virtual clock.
type System struct {
	cluster *core.Cluster
}

// New constructs a serving system.
func New(cfg Config) *System {
	ccfg := core.ClusterConfig{
		Workers:         cfg.Workers,
		GPUsPerWorker:   cfg.GPUsPerWorker,
		Seed:            cfg.Seed,
		PageCacheBytes:  cfg.PageCacheBytes,
		NoNoise:         cfg.ExactTiming,
		MetricsInterval: cfg.MetricsInterval,
		Controller:      core.Config{Lookahead: cfg.Lookahead},
	}
	switch cfg.Policy {
	case "", PolicyClockwork:
		// default scheduler
	case PolicyClipper, PolicyINFaaS:
		// The baselines live in internal/baseline; wire through the
		// same helper the experiments use.
		return &System{cluster: newBaselineCluster(string(cfg.Policy), ccfg)}
	default:
		panic(fmt.Sprintf("clockwork: unknown policy %q", cfg.Policy))
	}
	return &System{cluster: core.NewCluster(ccfg)}
}

// RegisterModel makes a model instance servable. zooModel names an entry
// of the embedded catalogue (see ZooModels); instanceName is the name
// requests refer to. It returns an error for unknown catalogue entries.
func (s *System) RegisterModel(instanceName, zooModel string) error {
	m, ok := modelzoo.ByName(zooModel)
	if !ok {
		return fmt.Errorf("clockwork: unknown zoo model %q", zooModel)
	}
	s.cluster.RegisterModel(instanceName, m)
	return nil
}

// Graph re-exports the model-definition IR so callers can describe
// custom architectures (the role ONNX plays in the paper, §5.1) and
// serve them alongside catalogue models.
type Graph = modelir.Graph

// Layer constructors for custom Graphs.
type (
	// Conv2D is a 2D convolution with "same" padding.
	Conv2D = modelir.Conv2D
	// Pool2D is spatial pooling.
	Pool2D = modelir.Pool2D
	// Dense is a fully connected layer.
	Dense = modelir.Dense
	// Activation is an elementwise nonlinearity.
	Activation = modelir.Activation
	// GlobalPool collapses spatial dimensions.
	GlobalPool = modelir.GlobalPool
	// TensorShape is a (channels, height, width) shape.
	TensorShape = modelir.Shape
	// ModelLayer is the operator interface custom layers implement.
	ModelLayer = modelir.Layer
)

// RegisterCustomModel compiles a user-defined graph (§5.1: weights blob,
// per-batch kernels, memory metadata, profiling seed — all derived from
// the abstract definition) and registers it under the graph's name.
func (s *System) RegisterCustomModel(g *Graph) error {
	m, err := modelir.Compile(g, modelir.DefaultCalibration)
	if err != nil {
		return err
	}
	s.cluster.RegisterModel(m.Name, m)
	return nil
}

// RegisterCopies registers n instances of zooModel named "<base>#i" and
// returns their instance names.
func (s *System) RegisterCopies(base, zooModel string, n int) ([]string, error) {
	m, ok := modelzoo.ByName(zooModel)
	if !ok {
		return nil, fmt.Errorf("clockwork: unknown zoo model %q", zooModel)
	}
	return s.cluster.RegisterCopies(base, m, n), nil
}

// Submit issues an inference request with the given SLO. onDone (may be
// nil) runs when the response reaches the client.
func (s *System) Submit(model string, slo time.Duration, onDone func(Result)) {
	s.cluster.Submit(model, slo, func(r core.Response, l time.Duration) {
		if onDone == nil {
			return
		}
		onDone(Result{
			Success:   r.Success,
			Reason:    r.Reason,
			Latency:   l,
			Batch:     r.Batch,
			ColdStart: r.ColdStart,
		})
	})
}

// RunFor advances virtual time by d, executing everything due in that
// span.
func (s *System) RunFor(d time.Duration) { s.cluster.RunFor(d) }

// Now returns the elapsed virtual time.
func (s *System) Now() time.Duration { return s.cluster.Eng.Now().Duration() }

// After schedules fn at now+d on the virtual clock — the hook workload
// generators use to pace themselves.
func (s *System) After(d time.Duration, fn func()) {
	s.cluster.Eng.After(d, fn)
}

// Summary condenses the run's client-observed metrics.
type Summary struct {
	Requests  uint64
	Succeeded uint64
	Failed    uint64
	// SLOMisses counts successful responses that exceeded their SLO.
	SLOMisses uint64
	// Cancelled counts requests rejected in advance by admission
	// control; Rejected counts worker-side schedule misses.
	Cancelled uint64
	Rejected  uint64

	P50, P99, P9999, Max time.Duration
	// GoodputMean is within-SLO responses per second over the run.
	GoodputMean float64
	// ColdStarts counts requests whose model was not resident.
	ColdStarts uint64
}

// Summary returns current aggregate metrics.
func (s *System) Summary() Summary {
	m := s.cluster.Metrics
	st := s.cluster.Ctl.Stats()
	elapsed := s.Now().Seconds()
	var goodput float64
	if elapsed > 0 {
		goodput = float64(m.Goodput.TotalCount()) / elapsed
	}
	return Summary{
		Requests:    st.Requests,
		Succeeded:   st.Succeeded,
		Failed:      m.Failures.Value(),
		SLOMisses:   m.SLOMisses.Value(),
		Cancelled:   st.Cancelled,
		Rejected:    st.Rejected,
		P50:         m.LatencyAll.Percentile(50),
		P99:         m.LatencyAll.Percentile(99),
		P9999:       m.LatencyAll.Percentile(99.99),
		Max:         m.LatencyAll.Max(),
		GoodputMean: goodput,
		ColdStarts:  st.ColdStart,
	}
}

// LatencyPercentile returns the client-observed latency at percentile p
// (0–100) across all requests so far.
func (s *System) LatencyPercentile(p float64) time.Duration {
	return s.cluster.Metrics.LatencyAll.Percentile(p)
}

// Cluster exposes the underlying cluster for advanced use (experiment
// harnesses); most callers never need it.
func (s *System) Cluster() *core.Cluster { return s.cluster }

// ZooModels returns the names of the embedded model catalogue
// (the paper's Appendix A, Table 1).
func ZooModels() []string {
	all := modelzoo.All()
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name
	}
	return names
}

// ModelSpec describes one catalogue entry.
type ModelSpec struct {
	Name       string
	Family     string
	WeightsMB  float64
	InputKB    float64
	OutputKB   float64
	TransferMs float64
	// ExecMs holds execution latency at batch sizes 1, 2, 4, 8, 16.
	ExecMs [5]float64
}

// ZooInfo returns the catalogue entry for name.
func ZooInfo(name string) (ModelSpec, bool) {
	m, ok := modelzoo.ByName(name)
	if !ok {
		return ModelSpec{}, false
	}
	return ModelSpec{
		Name:       m.Name,
		Family:     m.Family,
		WeightsMB:  m.WeightsMB,
		InputKB:    m.InputKB,
		OutputKB:   m.OutputKB,
		TransferMs: m.TransferMs,
		ExecMs:     m.ExecMs,
	}, true
}

// newBaselineCluster wires a baseline policy into a cluster: baselines
// disable admission control, and the Clipper-like system additionally
// runs workers in best-effort (concurrent EXEC) mode.
func newBaselineCluster(policy string, cfg core.ClusterConfig) *core.Cluster {
	cfg.Controller.DisableAdmissionControl = true
	switch policy {
	case string(PolicyClipper):
		cfg.Scheduler = baseline.NewClipper()
		cfg.WorkerBestEffort = true
	case string(PolicyINFaaS):
		cfg.Scheduler = baseline.NewINFaaS()
	}
	return core.NewCluster(cfg)
}
