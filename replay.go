package clockwork

import (
	"fmt"
	"time"

	"clockwork/internal/core"
	"clockwork/internal/simclock"
)

// This file is the deterministic-replay surface of the public API: the
// hooks the journal package uses to (a) stamp live injections with
// their engine position and (b) re-execute a recorded run step-for-step
// through the simulator. The determinism argument: a single-engine
// System is a pure function of (seed, the sequence of injected
// closures, each closure's virtual instant and step position). The live
// recorder captures exactly that triple; Replay.Apply restores it —
// running internal events up to the recorded position, re-entering the
// closure ahead of same-instant ties, and verifying the engine landed
// where the recording says it did, so divergence is detected rather
// than silently accumulated. See ARCHITECTURE.md, "Durability &
// replay".

// EngineSteps returns the number of engine events executed so far —
// with Live pacing the system, call it only from inside an injected
// closure or an engine-side callback (like Now, it is an engine-side
// read). Together with Now it is the stamp the injection journal
// records per entry. With Config.EnginePerShard it reads shard 0's
// engine; journaling is a single-engine feature.
func (s *System) EngineSteps() uint64 { return s.cluster.Eng.Steps() }

// ZooOf returns the catalogue name a registered instance was created
// from — what a control-plane snapshot stores so recovery can
// re-register the instance. ok is false for unknown instances and for
// custom-compiled models (whose catalogue name does not resolve; they
// cannot be restored from a snapshot and are rejected at journal
// attach).
func (s *System) ZooOf(instance string) (string, bool) {
	return s.cluster.ZooNameOf(instance)
}

// ProfileEntry is one measured action-profile window of a model — the
// §5.3 rolling estimator state a snapshot carries so a restored
// control plane predicts like the one that crashed.
type ProfileEntry = core.ProfileEntry

// ExportModelProfile returns name's measured profile windows (empty
// for a model that has not executed yet). Engine-side read.
func (s *System) ExportModelProfile(name string) ([]ProfileEntry, error) {
	return s.cluster.ExportProfile(name)
}

// ImportModelProfile replays measured windows into name's estimators,
// on top of the catalogue seeds registration installed. Engine-side
// call; use it only while restoring a snapshot, before live traffic.
func (s *System) ImportModelProfile(name string, entries []ProfileEntry) error {
	return s.cluster.ImportProfile(name, entries)
}

// Replay drives a single-engine System one recorded injection at a
// time. It is the execution half of deterministic record/replay: the
// journal package decodes what to apply, Replay controls where in the
// event stream it lands. The System must not be live (no StartLive) —
// Replay owns the engine the way RunFor does.
type Replay struct {
	sys *System
}

// Replay returns the step-granular replay driver. It panics on an
// EnginePerShard system: bit-exact replay is a single-engine property,
// the same boundary RunFor enforces.
func (s *System) Replay() *Replay {
	if s.cluster.EnginePerShard() {
		panic("clockwork: Replay on an EnginePerShard system; journaling and replay are single-engine features")
	}
	return &Replay{sys: s}
}

// Steps returns the number of engine events executed so far.
func (r *Replay) Steps() uint64 { return r.sys.cluster.Eng.Steps() }

// StepTo executes internal events until exactly step events have run.
// It errors if the event queue drains first — the recording then claims
// activity this engine never produced, i.e. the journal and the system
// configuration do not match.
func (r *Replay) StepTo(step uint64) error {
	eng := r.sys.cluster.Eng
	if eng.Steps() > step {
		return fmt.Errorf("clockwork: replay already at step %d, past target %d", eng.Steps(), step)
	}
	for eng.Steps() < step {
		if !eng.Step() {
			return fmt.Errorf("clockwork: replay event queue drained at step %d (target %d): journal does not match this configuration", eng.Steps(), step)
		}
	}
	return nil
}

// Apply re-executes one recorded injection: internal events run up to
// step-1, fn enters the engine at virtual instant at — ahead of
// same-instant queued events, exactly where the live driver's transfer
// placed it — and executes as step number step. A landing mismatch
// (wrong step count or instant) is a detected divergence, not a silent
// drift.
func (r *Replay) Apply(step uint64, at time.Duration, fn func()) error {
	if step == 0 {
		return fmt.Errorf("clockwork: replay record stamped at step 0 (stamps count the injection's own step)")
	}
	if err := r.StepTo(step - 1); err != nil {
		return err
	}
	eng := r.sys.cluster.Eng
	if now := eng.Now().Duration(); now > at {
		return fmt.Errorf("clockwork: replay clock %v already past recorded instant %v at step %d", now, at, step)
	}
	eng.ScheduleFront(simclock.Time(at), fn)
	if !eng.Step() {
		return fmt.Errorf("clockwork: replay engine refused the injected step %d", step)
	}
	if got := eng.Steps(); got != step {
		return fmt.Errorf("clockwork: replay divergence: injection landed at step %d, recorded %d", got, step)
	}
	if now := eng.Now().Duration(); now != at {
		return fmt.Errorf("clockwork: replay divergence at step %d: clock %v, recorded %v", step, now, at)
	}
	return nil
}

// RunQuiescent executes remaining internal events until either the
// queue drains or maxSteps more events have run — the post-record tail
// that lets in-flight requests reach their outcomes. The step bound
// keeps a periodic timer (a sharded system's rebalancer) from making
// the tail infinite.
func (r *Replay) RunQuiescent(maxSteps uint64) {
	eng := r.sys.cluster.Eng
	limit := eng.Steps() + maxSteps
	for eng.Steps() < limit && eng.Step() {
	}
}
