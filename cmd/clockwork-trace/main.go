// Command clockwork-trace renders a flight-recorder dump — the
// Perfetto/Chrome trace-event JSON served at GET /v1/admin/trace or
// written by clockwork-replay -trace — as a terminal report: run
// summary, SLO-miss provenance table, and the slowest (or all
// violating) request lifecycles with their per-stage latency
// decomposition.
//
//	curl -s localhost:8400/v1/admin/trace | clockwork-trace
//	clockwork-trace -in incident.json -violations -n 20
//
// The JSON itself loads unmodified into https://ui.perfetto.dev for
// interactive inspection; this command is the quick look.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
)

// event is the subset of a trace-event the renderer consumes.
type event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Args  map[string]any `json:"args"`
}

type dump struct {
	TraceEvents []event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// request is one reassembled lifecycle: the parent span's args plus
// the stage children found on the same (pid, tid) track.
type request struct {
	id        uint64
	model     string
	tenant    string
	shard     int
	success   bool
	reason    string
	violation bool
	cause     string
	cold      bool
	batch     int
	latencyMS float64
	sloMS     float64
	stages    map[string]float64 // stage name -> ms
}

var stageOrder = []string{"admit", "queue", "load", "exec", "deliver"}

func main() {
	var (
		in         = flag.String("in", "", "trace JSON file (empty = stdin)")
		topN       = flag.Int("n", 15, "show the N slowest requests (0 = all)")
		violations = flag.Bool("violations", false, "show only SLO-violating requests")
		model      = flag.String("model", "", "only requests for this model")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("clockwork-trace: %v", err)
		}
		defer f.Close()
		r = f
	}
	var d dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		log.Fatalf("clockwork-trace: parsing trace JSON: %v", err)
	}

	reqs := reassemble(&d)
	fmt.Printf("trace: %d request lifecycles", len(reqs))
	if vnow, ok := num(d.OtherData, "virtual_now_us"); ok {
		fmt.Printf(", virtual time %.3fs", vnow/1e6)
	}
	if rate, ok := num(d.OtherData, "sample_rate"); ok {
		fmt.Printf(", sample rate %g", rate)
	}
	fmt.Println()

	if prov, ok := d.OtherData["provenance"].([]any); ok && len(prov) > 0 {
		fmt.Println("\nSLO-miss provenance:")
		for _, p := range prov {
			m, _ := p.(map[string]any)
			if m == nil {
				continue
			}
			cnt, _ := num(m, "count")
			fmt.Printf("  %-16s model=%-20s tenant=%-10s %6.0f\n",
				str(m, "cause"), str(m, "model"), orDash(str(m, "tenant")), cnt)
		}
	}

	show := reqs[:0:0]
	for _, q := range reqs {
		if *violations && !q.violation {
			continue
		}
		if *model != "" && q.model != *model {
			continue
		}
		show = append(show, q)
	}
	sort.Slice(show, func(i, j int) bool { return show[i].latencyMS > show[j].latencyMS })
	if *topN > 0 && len(show) > *topN {
		show = show[:*topN]
	}
	if len(show) == 0 {
		return
	}
	fmt.Printf("\n%d slowest matching requests:\n", len(show))
	for _, q := range show {
		outcome := "ok"
		if !q.success {
			outcome = "FAIL:" + q.reason
		} else if q.violation {
			outcome = "ok(late)"
		}
		line := fmt.Sprintf("  #%-6d %-20s shard%-2d b%-2d %-16s lat=%8.2fms slo=%8.2fms",
			q.id, q.model, q.shard, q.batch, outcome, q.latencyMS, q.sloMS)
		if q.violation {
			line += " cause=" + q.cause
		}
		if q.cold {
			line += " cold"
		}
		fmt.Println(line)
		decomp := "          "
		for _, st := range stageOrder {
			if ms, ok := q.stages[st]; ok {
				decomp += fmt.Sprintf("%s=%.2fms ", st, ms)
			}
		}
		fmt.Println(decomp)
	}
}

// reassemble pairs each request parent span with the stage spans on
// its (pid, tid) track.
func reassemble(d *dump) []request {
	type track struct {
		pid int
		tid uint64
	}
	stages := make(map[track]map[string]float64)
	for _, ev := range d.TraceEvents {
		if str(ev.Args, "kind") != "stage" {
			continue
		}
		k := track{ev.PID, ev.TID}
		if stages[k] == nil {
			stages[k] = make(map[string]float64)
		}
		stages[k][ev.Name] += ev.Dur / 1e3 // µs → ms
	}
	var out []request
	for _, ev := range d.TraceEvents {
		if str(ev.Args, "kind") != "request" {
			continue
		}
		id, _ := num(ev.Args, "id")
		shard, _ := num(ev.Args, "shard")
		batch, _ := num(ev.Args, "batch")
		lat, _ := num(ev.Args, "latency_ms")
		slo, _ := num(ev.Args, "slo_ms")
		q := request{
			id:        uint64(id),
			model:     str(ev.Args, "model"),
			tenant:    str(ev.Args, "tenant"),
			shard:     int(shard),
			success:   ev.Args["success"] == true,
			reason:    str(ev.Args, "reason"),
			violation: ev.Args["violation"] == true,
			cause:     str(ev.Args, "cause"),
			cold:      ev.Args["cold_start"] == true,
			batch:     int(batch),
			latencyMS: lat,
			sloMS:     slo,
			stages:    stages[track{ev.PID, ev.TID}],
		}
		out = append(out, q)
	}
	return out
}

func num(m map[string]any, key string) (float64, bool) {
	v, ok := m[key].(float64)
	return v, ok
}

func str(m map[string]any, key string) string {
	s, _ := m[key].(string)
	return s
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
