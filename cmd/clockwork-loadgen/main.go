// Command clockwork-loadgen drives wall-clock load at a clockworkd
// daemon and reports goodput, SLO-violation rate, shed rate, and the
// wall/virtual latency tails (p50–p99.9). It runs closed-loop by
// default (a fixed number of outstanding requests) and open-loop with
// -rate (Poisson arrivals at a fixed request rate, the §6.3 arrival
// process).
//
// -transport selects the front door: "http" (the JSON API) or
// "stream" (the binary stream transport; point -addr at the daemon's
// -stream-addr). With -transport stream, -batch N pipelines closed-loop
// submissions in batches of N through one write, and -stream-conns
// sets how many multiplexed connections to spread load over.
//
// Examples:
//
//	clockwork-loadgen -addr 127.0.0.1:8400 -duration 2s -concurrency 8
//	clockwork-loadgen -addr 127.0.0.1:8401 -transport stream -batch 32
//	clockwork-loadgen -addr 127.0.0.1:8400 -rate 500 -slo 100ms
//	clockwork-loadgen -addr 127.0.0.1:8401 -transport stream -requests 100000
//
// Without -models it targets every model registered on the server,
// round-robin. The exit status encodes the run's health: 1 for usage or
// transport-level failure, 2 if any response was lost or duplicated, 3
// if goodput fell below -min-goodput.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"clockwork/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8400", "clockworkd address (the daemon's -stream-addr when -transport stream)")
		transport   = flag.String("transport", "http", "front door to drive: http or stream")
		streamConns = flag.Int("stream-conns", 2, "multiplexed connections (stream transport)")
		batch       = flag.Int("batch", 0, "closed-loop pipelined batch size (stream transport; 0/1 = unbatched)")
		models      = flag.String("models", "", "comma-separated instance names (empty = all registered)")
		slo         = flag.Duration("slo", 250*time.Millisecond, "per-request SLO (virtual clock)")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers / open-loop outstanding cap")
		rate        = flag.Float64("rate", 0, "open-loop Poisson arrivals per second (0 = closed loop)")
		duration    = flag.Duration("duration", 2*time.Second, "wall-clock run length")
		requests    = flag.Uint64("requests", 0, "stop after this many submissions (0 = until -duration)")
		seed        = flag.Uint64("seed", 42, "arrival-process seed (open loop)")
		minGoodput  = flag.Float64("min-goodput", 0, "exit 3 unless goodput (req/s) reaches this")
		timeout     = flag.Duration("timeout", 10*time.Second, "server readiness timeout")
	)
	flag.Parse()

	cfg := serve.LoadConfig{
		SLO:         *slo,
		Concurrency: *concurrency,
		Rate:        *rate,
		Duration:    *duration,
		MaxRequests: *requests,
		Seed:        *seed,
		Batch:       *batch,
	}
	readyCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	switch *transport {
	case "http":
		client := serve.NewClient(*addr, nil)
		if err := client.WaitReady(readyCtx); err != nil {
			log.Fatalf("clockwork-loadgen: server %s not ready: %v", *addr, err)
		}
		cfg.Client = client
	case "stream":
		// The stream listener has no health endpoint; readiness is a
		// successful dial, retried until the timeout.
		for {
			sc, err := serve.DialStream(*addr, serve.StreamOptions{Conns: *streamConns})
			if err == nil {
				cfg.Transport = sc
				defer sc.Close()
				break
			}
			select {
			case <-readyCtx.Done():
				log.Fatalf("clockwork-loadgen: stream server %s not ready: %v", *addr, err)
			case <-time.After(20 * time.Millisecond):
			}
		}
	default:
		log.Fatalf("clockwork-loadgen: unknown -transport %q (want http or stream)", *transport)
	}
	cancel()

	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			if m = strings.TrimSpace(m); m != "" {
				cfg.Models = append(cfg.Models, m)
			}
		}
	}
	// A -requests bound without an explicit -duration shouldn't be cut
	// short by the 2s default: stretch the window and let the request
	// budget terminate the run. An explicit -duration always wins.
	durationSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "duration" {
			durationSet = true
		}
	})
	if *requests > 0 && !durationSet {
		cfg.Duration = time.Hour
	}

	rep, err := serve.RunLoad(context.Background(), cfg)
	if err != nil {
		log.Fatalf("clockwork-loadgen: %v", err)
	}
	fmt.Print(rep.String())

	lost := rep.Sent - rep.Completed - rep.Errors - rep.Shed
	if lost != 0 || rep.Duplicates != 0 {
		fmt.Fprintf(os.Stderr, "clockwork-loadgen: INTEGRITY FAILURE lost=%d duplicates=%d\n", lost, rep.Duplicates)
		os.Exit(2)
	}
	if rep.Goodput < *minGoodput {
		fmt.Fprintf(os.Stderr, "clockwork-loadgen: goodput %.1f below required %.1f\n", rep.Goodput, *minGoodput)
		os.Exit(3)
	}
}
