// Command clockworkd is the live serving daemon: it wires a clockwork
// System to the wall clock and serves the HTTP/JSON API from package
// serve — inference on POST /v1/infer, model registration, the
// worker/shard admin plane, and Prometheus metrics on GET /metrics —
// plus, with -stream-addr, the binary stream transport (length-prefixed
// frames over TCP with connection multiplexing and batched submission),
// the fast path that cuts per-request overhead several-fold.
// SIGINT/SIGTERM triggers a graceful drain: in-flight requests run to
// their outcome before the daemon exits.
//
// Examples:
//
//	clockworkd -addr :8400 -workers 2 -gpus 2 -preload resnet50_v1b:4
//	clockworkd -addr 127.0.0.1:8400 -stream-addr 127.0.0.1:8401 \
//	    -workers 8 -shards 4 -speed 100 -preload resnet50_v1b:8,densenet161:4
//	clockworkd -addr :8400 -stream-addr :8401 -max-inflight 1024
//	clockworkd -addr :8400 -workers 8 -shards 4 -multicore
//	clockworkd -addr :8400 -journal /var/lib/clockwork/journal \
//	    -snapshot-interval 30s -preload resnet50_v1b:4
//
// The -speed flag scales virtual time against wall time: 1 serves in
// real time on the paper's simulated hardware; 100 runs the simulated
// cluster a hundredfold faster, for load tests that don't want to wait.
// -max-inflight bounds the admission window shared by both transports:
// beyond it HTTP answers 429 (Retry-After) and the stream answers typed
// overloaded error frames. -multicore runs each scheduler shard on its
// own engine and goroutine, synchronised within a bounded virtual-clock
// skew (-skew-bound), so an N-shard daemon can use N cores.
//
// -autoscale closes the control loop: a periodic engine-side policy
// re-derives the admission window from observed SLO headroom (shrink
// on violations, grow on sustained p99 headroom, with hysteresis) and
// — when -autoscale-max-workers raises the ceiling — adds or drains
// workers against sustained demand. Status and manual overrides live
// at GET/POST /v1/admin/autoscaler. The loop composes with -journal
// (decisions are recorded and replayed) and with -multicore (each
// tick runs under the stop-the-world barrier).
//
// -trace attaches the flight recorder from boot: every sampled
// request's lifecycle (admission → scheduling decision → load → exec →
// response) is retained in per-shard ring buffers and exported as
// Perfetto-loadable JSON at GET /v1/admin/trace; SLO violations are
// always retained regardless of -trace-sample. Tracing is a pure
// observer (outcomes are bit-identical at any rate) and can also be
// toggled at runtime via POST /v1/admin/trace — the recorder is
// attached even without -trace, just disabled. The latency
// decomposition and SLO-miss provenance series on /metrics are exact
// regardless of the sample rate.
//
// -pprof starts a net/http/pprof side listener (serving only the
// profiling endpoints, never the inference API) for CPU/heap profiles
// of the live daemon.
//
// -journal enables the durable control plane (package journal): every
// externally-sourced injection is appended to a write-ahead log and the
// control-plane state is snapshotted on -snapshot-interval (plus on
// POST /v1/admin/snapshot). On restart with the same -journal dir the
// daemon recovers: latest snapshot, plus the recorded mutations after
// it — no registered model and no acknowledged request is lost. The
// recovered run opens a new journal epoch; cmd/clockwork-replay can
// re-execute any recorded epoch deterministically. Journaling is
// single-engine: -journal with -multicore is a boot error. The geometry
// flags (-workers, -shards, …) and -preload are ignored on recovery —
// the journal's state wins.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clockwork"
	"clockwork/journal"
	"clockwork/serve"
	"clockwork/trace"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8400", "HTTP listen address")
		streamAddr   = flag.String("stream-addr", "", "binary stream-transport listen address (empty = disabled)")
		maxInFlight  = flag.Int("max-inflight", 0, "admission window: max unanswered requests across transports (0 = unbounded)")
		workers      = flag.Int("workers", 1, "worker machines")
		gpus         = flag.Int("gpus", 1, "GPUs per worker")
		shards       = flag.Int("shards", 1, "control-plane scheduler shards")
		multicore    = flag.Bool("multicore", false, "one engine+goroutine per shard (bounded-skew sync; needs -shards > 1 to matter)")
		skewBound    = flag.Duration("skew-bound", 0, "max virtual-clock skew between shard engines with -multicore (0 = derive from network latency and speed)")
		policy       = flag.String("policy", string(clockwork.PolicyClockwork), "serving policy (see -list-policies)")
		listPolicies = flag.Bool("list-policies", false, "print registered policies and exit")
		speed        = flag.Float64("speed", 1.0, "virtual-vs-wall clock multiplier")
		seed         = flag.Uint64("seed", 42, "engine RNG seed")
		preload      = flag.String("preload", "", "models to register at startup: zoo[:copies] comma-separated (e.g. resnet50_v1b:4)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")

		autoscaleOn   = flag.Bool("autoscale", false, "close the control loop: adapt the admission window to SLO headroom and scale workers against demand")
		ascPeriod     = flag.Duration("autoscale-period", time.Second, "autoscaler control period (virtual time)")
		ascMinWindow  = flag.Int("autoscale-min-window", 0, "admission-window floor (0 = default 8)")
		ascMaxWindow  = flag.Int("autoscale-max-window", 0, "admission-window ceiling (0 = default 4096)")
		ascMinWorkers = flag.Int("autoscale-min-workers", 0, "active-worker floor (0 = default 1)")
		ascMaxWorkers = flag.Int("autoscale-max-workers", 0, "active-worker ceiling (0 = window-only: no worker scaling)")

		traceOn     = flag.Bool("trace", false, "start the flight recorder enabled (per-request lifecycle tracing; dump at GET /v1/admin/trace)")
		traceSample = flag.Float64("trace-sample", trace.DefaultSampleRate, "head-based trace sampling probability in [0,1]; SLO violations are always retained")
		pprofAddr   = flag.String("pprof", "", "net/http/pprof side listener address (empty = disabled)")

		journalDir   = flag.String("journal", "", "journal directory: enable the durable control plane (snapshot + injection log; single-engine only)")
		journalFsync = flag.String("journal-fsync", "interval", "journal fsync policy: interval, always or never")
		journalEvery = flag.Duration("journal-fsync-interval", 100*time.Millisecond, "background fsync cadence with -journal-fsync interval")
		snapEvery    = flag.Duration("snapshot-interval", 0, "periodic control-plane snapshot cadence (0 = only on POST /v1/admin/snapshot)")
		retain       = flag.String("journal-retain", "all", "journal retention: all (keeps deterministic replay) or snapshot (prune segments behind the latest snapshot)")
		segBytes     = flag.Int64("journal-segment-bytes", 64<<20, "rotate write-ahead segments at this size")
	)
	flag.Parse()

	if *listPolicies {
		for _, p := range clockwork.Policies() {
			fmt.Println(p)
		}
		return
	}
	if *journalDir != "" && *multicore {
		log.Fatalf("clockworkd: -journal requires a single engine; it cannot be combined with -multicore (bit-exact replay is a single-engine property)")
	}
	fsyncPolicy, err := journal.ParseFsyncPolicy(*journalFsync)
	if err != nil {
		log.Fatalf("clockworkd: %v", err)
	}
	retention := journal.RetainAll
	switch *retain {
	case "all":
	case "snapshot":
		retention = journal.RetainToSnapshot
	default:
		log.Fatalf("clockworkd: unknown -journal-retain %q (want all or snapshot)", *retain)
	}

	cfg := clockwork.Config{
		Workers:        *workers,
		GPUsPerWorker:  *gpus,
		Shards:         *shards,
		EnginePerShard: *multicore,
		SkewBound:      *skewBound,
		Policy:         clockwork.Policy(*policy),
		Seed:           *seed,
	}
	jopts := journal.Options{
		Fsync:           fsyncPolicy,
		FsyncEvery:      *journalEvery,
		MaxSegmentBytes: *segBytes,
		SnapshotEvery:   *snapEvery,
		Retain:          retention,
		Speed:           *speed,
		MaxInFlight:     *maxInFlight,
	}

	// Boot the system: recover from the journal when it has a prior
	// epoch (the journal's recorded state wins over the geometry and
	// preload flags), build fresh otherwise.
	var sys *clockwork.System
	var rec *journal.Recorder
	var names []string
	recovered := false
	if *journalDir != "" {
		if _, ok, err := journal.LatestEpoch(*journalDir); err != nil {
			log.Fatalf("clockworkd: journal: %v", err)
		} else if ok {
			ep, err := journal.Load(*journalDir)
			if err != nil {
				log.Fatalf("clockworkd: journal: %v", err)
			}
			rsys, carry, report, err := ep.Rebuild()
			if err != nil {
				log.Fatalf("clockworkd: journal recovery: %v", err)
			}
			sys = rsys
			cfg = carry.Config
			jopts.Speed = carry.Speed
			jopts.MaxInFlight = carry.MaxInFlight
			jopts.PriorRequests = carry.PriorRequests
			jopts.PriorAcked = carry.PriorAcked
			*speed = carry.Speed
			*maxInFlight = carry.MaxInFlight
			recovered = true
			base := "genesis"
			if report.UsedSnapshot {
				base = "snapshot"
			}
			log.Printf("clockworkd: recovered epoch %d from %s: %d models, %d workers, %d ops re-applied; %d requests this epoch (%d acked, %d in-flight dropped); lifetime %d requests / %d acked",
				report.Epoch, base, report.Models, report.Workers, report.AppliedOps,
				report.EpochRequests, report.EpochAcked, report.Unacked,
				report.TotalRequests, report.TotalAcked)
			if report.Truncated {
				log.Printf("clockworkd: journal tail truncated: %s", report.TruncatedNote)
			}
			names = sys.Models()
		}
	}
	if sys == nil {
		sys, err = clockwork.New(cfg)
		if err != nil {
			log.Fatalf("clockworkd: %v", err)
		}
		names, err = preloadModels(sys, *preload)
		if err != nil {
			log.Fatalf("clockworkd: %v", err)
		}
	}
	if *journalDir != "" {
		rec, err = journal.Create(*journalDir, sys, cfg, jopts)
		if err != nil {
			log.Fatalf("clockworkd: journal: %v", err)
		}
		verb := "journaling"
		if recovered {
			verb = "recovered; journaling"
		}
		log.Printf("clockworkd: %s to %s (epoch %d, fsync=%s, retain=%s)", verb, *journalDir, rec.Epoch(), fsyncPolicy, *retain)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("clockworkd: %v", err)
	}
	var ascCfg *serve.AutoscaleConfig
	if *autoscaleOn {
		ascCfg = &serve.AutoscaleConfig{
			Period:     *ascPeriod,
			MinWindow:  *ascMinWindow,
			MaxWindow:  *ascMaxWindow,
			MinWorkers: *ascMinWorkers,
			MaxWorkers: *ascMaxWorkers,
		}
	}
	if *traceSample < 0 || *traceSample > 1 {
		log.Fatalf("clockworkd: -trace-sample must be in [0, 1], got %g", *traceSample)
	}
	srv := serve.New(sys, serve.Options{
		Speed:       *speed,
		MaxInFlight: *maxInFlight,
		Journal:     rec,
		Autoscale:   ascCfg,
		Trace:       &serve.TraceConfig{Enabled: *traceOn, SampleRate: *traceSample},
	})
	if *traceOn {
		log.Printf("clockworkd: flight recorder on (sample=%g; dump at GET /v1/admin/trace)", *traceSample)
	}
	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serve it from a
		// side listener so profiling never shares a port with the API.
		go func() {
			log.Printf("clockworkd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("clockworkd: pprof: %v", err)
			}
		}()
	}
	if ascCfg != nil {
		rcfg := ascCfg.WithDefaults()
		log.Printf("clockworkd: autoscaler on (period=%v window=[%d,%d] workers=[%d,%d])",
			rcfg.Period, rcfg.MinWindow, rcfg.MaxWindow, rcfg.MinWorkers, rcfg.MaxWorkers)
	}
	log.Printf("clockworkd: listening on %s (workers=%d gpus=%d shards=%d multicore=%v policy=%s speed=%gx models=%d max-inflight=%d)",
		ln.Addr(), cfg.Workers, cfg.GPUsPerWorker, cfg.Shards, *multicore, string(cfg.Policy), srv.Live().Speed(), len(names), *maxInFlight)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	if *streamAddr != "" {
		sln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			log.Fatalf("clockworkd: %v", err)
		}
		log.Printf("clockworkd: stream transport on %s", sln.Addr())
		go func() {
			if err := srv.ServeStream(sln); err != nil {
				log.Printf("clockworkd: stream transport: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("clockworkd: %v — draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("clockworkd: drain: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			log.Fatalf("clockworkd: %v", err)
		}
	}

	// The live driver is stopped, so the engine is quiescent and a
	// direct Summary read is safe.
	st := sys.Summary()
	log.Printf("clockworkd: served %d requests (%d succeeded, %d SLO misses), virtual time %v",
		st.Requests, st.Succeeded, st.SLOMisses, sys.Now().Round(time.Millisecond))
	log.Printf("clockworkd: drained cleanly")
}

// preloadModels parses "zoo[:copies],zoo[:copies],…" and registers the
// instances. A bare zoo name registers one instance named after the
// zoo entry; with copies the instances are "<zoo>#0" … .
func preloadModels(sys *clockwork.System, spec string) ([]string, error) {
	var names []string
	if spec == "" {
		return names, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		zoo, copies := part, 0
		if i := strings.LastIndex(part, ":"); i >= 0 {
			n, err := strconv.Atoi(part[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad preload spec %q (want zoo[:copies])", part)
			}
			zoo, copies = part[:i], n
		}
		if copies == 0 {
			if err := sys.RegisterModel(zoo, zoo); err != nil {
				return nil, err
			}
			names = append(names, zoo)
			continue
		}
		instances, err := sys.RegisterCopies(zoo, zoo, copies)
		if err != nil {
			return nil, err
		}
		names = append(names, instances...)
	}
	return names, nil
}
