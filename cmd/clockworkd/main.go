// Command clockworkd is the live serving daemon: it wires a clockwork
// System to the wall clock and serves the HTTP/JSON API from package
// serve — inference on POST /v1/infer, model registration, the
// worker/shard admin plane, and Prometheus metrics on GET /metrics —
// plus, with -stream-addr, the binary stream transport (length-prefixed
// frames over TCP with connection multiplexing and batched submission),
// the fast path that cuts per-request overhead several-fold.
// SIGINT/SIGTERM triggers a graceful drain: in-flight requests run to
// their outcome before the daemon exits.
//
// Examples:
//
//	clockworkd -addr :8400 -workers 2 -gpus 2 -preload resnet50_v1b:4
//	clockworkd -addr 127.0.0.1:8400 -stream-addr 127.0.0.1:8401 \
//	    -workers 8 -shards 4 -speed 100 -preload resnet50_v1b:8,densenet161:4
//	clockworkd -addr :8400 -stream-addr :8401 -max-inflight 1024
//	clockworkd -addr :8400 -workers 8 -shards 4 -multicore
//
// The -speed flag scales virtual time against wall time: 1 serves in
// real time on the paper's simulated hardware; 100 runs the simulated
// cluster a hundredfold faster, for load tests that don't want to wait.
// -max-inflight bounds the admission window shared by both transports:
// beyond it HTTP answers 429 (Retry-After) and the stream answers typed
// overloaded error frames. -multicore runs each scheduler shard on its
// own engine and goroutine, synchronised within a bounded virtual-clock
// skew (-skew-bound), so an N-shard daemon can use N cores.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clockwork"
	"clockwork/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8400", "HTTP listen address")
		streamAddr   = flag.String("stream-addr", "", "binary stream-transport listen address (empty = disabled)")
		maxInFlight  = flag.Int("max-inflight", 0, "admission window: max unanswered requests across transports (0 = unbounded)")
		workers      = flag.Int("workers", 1, "worker machines")
		gpus         = flag.Int("gpus", 1, "GPUs per worker")
		shards       = flag.Int("shards", 1, "control-plane scheduler shards")
		multicore    = flag.Bool("multicore", false, "one engine+goroutine per shard (bounded-skew sync; needs -shards > 1 to matter)")
		skewBound    = flag.Duration("skew-bound", 0, "max virtual-clock skew between shard engines with -multicore (0 = derive from network latency and speed)")
		policy       = flag.String("policy", string(clockwork.PolicyClockwork), "serving policy (see -list-policies)")
		listPolicies = flag.Bool("list-policies", false, "print registered policies and exit")
		speed        = flag.Float64("speed", 1.0, "virtual-vs-wall clock multiplier")
		seed         = flag.Uint64("seed", 42, "engine RNG seed")
		preload      = flag.String("preload", "", "models to register at startup: zoo[:copies] comma-separated (e.g. resnet50_v1b:4)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	)
	flag.Parse()

	if *listPolicies {
		for _, p := range clockwork.Policies() {
			fmt.Println(p)
		}
		return
	}

	sys, err := clockwork.New(clockwork.Config{
		Workers:        *workers,
		GPUsPerWorker:  *gpus,
		Shards:         *shards,
		EnginePerShard: *multicore,
		SkewBound:      *skewBound,
		Policy:         clockwork.Policy(*policy),
		Seed:           *seed,
	})
	if err != nil {
		log.Fatalf("clockworkd: %v", err)
	}
	names, err := preloadModels(sys, *preload)
	if err != nil {
		log.Fatalf("clockworkd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("clockworkd: %v", err)
	}
	srv := serve.New(sys, serve.Options{Speed: *speed, MaxInFlight: *maxInFlight})
	log.Printf("clockworkd: listening on %s (workers=%d gpus=%d shards=%d multicore=%v policy=%s speed=%gx models=%d max-inflight=%d)",
		ln.Addr(), *workers, *gpus, *shards, *multicore, *policy, srv.Live().Speed(), len(names), *maxInFlight)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	if *streamAddr != "" {
		sln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			log.Fatalf("clockworkd: %v", err)
		}
		log.Printf("clockworkd: stream transport on %s", sln.Addr())
		go func() {
			if err := srv.ServeStream(sln); err != nil {
				log.Printf("clockworkd: stream transport: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("clockworkd: %v — draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("clockworkd: drain: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			log.Fatalf("clockworkd: %v", err)
		}
	}

	// The live driver is stopped, so the engine is quiescent and a
	// direct Summary read is safe.
	st := sys.Summary()
	log.Printf("clockworkd: served %d requests (%d succeeded, %d SLO misses), virtual time %v",
		st.Requests, st.Succeeded, st.SLOMisses, sys.Now().Round(time.Millisecond))
	log.Printf("clockworkd: drained cleanly")
}

// preloadModels parses "zoo[:copies],zoo[:copies],…" and registers the
// instances. A bare zoo name registers one instance named after the
// zoo entry; with copies the instances are "<zoo>#0" … .
func preloadModels(sys *clockwork.System, spec string) ([]string, error) {
	var names []string
	if spec == "" {
		return names, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		zoo, copies := part, 0
		if i := strings.LastIndex(part, ":"); i >= 0 {
			n, err := strconv.Atoi(part[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad preload spec %q (want zoo[:copies])", part)
			}
			zoo, copies = part[:i], n
		}
		if copies == 0 {
			if err := sys.RegisterModel(zoo, zoo); err != nil {
				return nil, err
			}
			names = append(names, zoo)
			continue
		}
		instances, err := sys.RegisterCopies(zoo, zoo, copies)
		if err != nil {
			return nil, err
		}
		names = append(names, instances...)
	}
	return names, nil
}
