// Command clockwork-bench is the repo's perf-trajectory recorder: it
// runs the serving-plane benchmarks (engine floor, HTTP round trip,
// stream round trip, batched stream) and loopback closed-loop goodput
// runs over both transports in-process, measures the journal's
// record-path overhead (off vs interval fsync vs fsync-per-ack) and
// cold-recovery wall time, runs the deterministic autoscale sweep
// (static {workers, window} grid vs the closed control loop on
// identical replayed load), optionally shells out to the
// scheduler benchmarks, and writes the results as machine-readable
// JSON (BENCH_serve.json by convention) so future PRs can diff
// performance against a committed baseline instead of prose.
//
// Examples:
//
//	clockwork-bench -out BENCH_serve.json
//	clockwork-bench -quick -skip-scheduler -out /tmp/bench.json
//
// The figures are wall-clock measurements: machine-dependent, and
// reproducible in distribution rather than bit-for-bit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"clockwork"
	"clockwork/experiments"
	"clockwork/journal"
	"clockwork/serve"
)

// benchEntry is one benchmark's figures.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// loadEntry is one loopback load run's figures.
type loadEntry struct {
	Transport     string  `json:"transport"`
	Concurrency   int     `json:"concurrency"`
	Batch         int     `json:"batch,omitempty"`
	Goodput       float64 `json:"goodput_req_per_sec"`
	Sent          uint64  `json:"sent"`
	Lost          uint64  `json:"lost"`
	Duplicates    uint64  `json:"duplicates"`
	ViolationRate float64 `json:"violation_rate"`
	WallP50Ns     int64   `json:"wall_p50_ns"`
	WallP99Ns     int64   `json:"wall_p99_ns"`
}

// journalEntry is one journal-overhead run: the stream loopback shape
// with the durable control plane off, recording with interval fsync
// (the -journal default), or recording with fsync on every ack.
type journalEntry struct {
	Mode           string  `json:"mode"`
	Goodput        float64 `json:"goodput_req_per_sec"`
	Sent           uint64  `json:"sent"`
	Lost           uint64  `json:"lost"`
	ViolationRate  float64 `json:"violation_rate"`
	WallP50Ns      int64   `json:"wall_p50_ns"`
	WallP99Ns      int64   `json:"wall_p99_ns"`
	JournalRecords uint64  `json:"journal_records,omitempty"`
	JournalBytes   int64   `json:"journal_bytes,omitempty"`
}

// recoveryEntry times cold recovery (Load + Rebuild — what clockworkd
// does on boot) of a synthetic journal.
type recoveryEntry struct {
	Records   int   `json:"records"`
	Bytes     int64 `json:"bytes"`
	LoadNs    int64 `json:"load_wall_ns"`
	RebuildNs int64 `json:"rebuild_wall_ns"`
}

// scalingEntry is one multi-core scaling run: the same stream workload
// against an N-shard control plane, single-engine vs one engine per
// shard (-multicore in clockworkd terms).
type scalingEntry struct {
	Shards        int     `json:"shards"`
	Multicore     bool    `json:"multicore"`
	Goodput       float64 `json:"goodput_req_per_sec"`
	Sent          uint64  `json:"sent"`
	Lost          uint64  `json:"lost"`
	ViolationRate float64 `json:"violation_rate"`
	WallP50Ns     int64   `json:"wall_p50_ns"`
	WallP99Ns     int64   `json:"wall_p99_ns"`
}

// autoscaleEntry is one cell of the static-vs-closed-loop comparison:
// identical replayed load, scored on end-to-end SLO violations against
// the GPU-seconds the cell kept active.
type autoscaleEntry struct {
	Family        string  `json:"family"`
	Cell          string  `json:"cell"`
	PeakWorkers   int     `json:"peak_workers"`
	FinalWindow   int     `json:"final_window"`
	Violations    uint64  `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	GPUSeconds    float64 `json:"gpu_seconds"`
}

// traceEntry is one flight-recorder overhead run: the stream loopback
// shape with the recorder disabled (baseline) or enabled at a given
// head-sampling rate. Overhead is goodput loss relative to disabled.
type traceEntry struct {
	Mode          string  `json:"mode"`
	Goodput       float64 `json:"goodput_req_per_sec"`
	Sent          uint64  `json:"sent"`
	Lost          uint64  `json:"lost"`
	ViolationRate float64 `json:"violation_rate"`
	WallP50Ns     int64   `json:"wall_p50_ns"`
	WallP99Ns     int64   `json:"wall_p99_ns"`
	Finalized     uint64  `json:"traces_finalized,omitempty"`
	Sampled       uint64  `json:"traces_sampled,omitempty"`
	OverheadPct   float64 `json:"overhead_pct"`
}

// allocsEntry pins one path's steady-state allocation figures — the
// machine-independent face of the benchmarks section. ns/op moves with
// the host and its load; allocs/op is a property of the code alone, so
// this is the section to diff across PRs (and the one the CI perf
// smoke asserts on).
type allocsEntry struct {
	Path        string `json:"path"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// report is the BENCH_serve.json schema.
type report struct {
	Generated     string           `json:"generated"`
	GoVersion     string           `json:"go_version"`
	Cores         int              `json:"cores"`
	Note          string           `json:"note"`
	Benchmarks    []benchEntry     `json:"benchmarks"`
	Allocs        []allocsEntry    `json:"allocs,omitempty"`
	AllocsNote    string           `json:"allocs_note,omitempty"`
	Load          []loadEntry      `json:"load"`
	Scaling       []scalingEntry   `json:"scaling,omitempty"`
	ScalingNote   string           `json:"scaling_note,omitempty"`
	Journal       []journalEntry   `json:"journal,omitempty"`
	Recovery      *recoveryEntry   `json:"journal_recovery,omitempty"`
	Autoscale     []autoscaleEntry `json:"autoscale,omitempty"`
	AutoscaleNote string           `json:"autoscale_note,omitempty"`
	Trace         []traceEntry     `json:"trace,omitempty"`
	TraceNote     string           `json:"trace_note,omitempty"`
	Scheduler     []benchEntry     `json:"scheduler,omitempty"`
}

func main() {
	var (
		out           = flag.String("out", "BENCH_serve.json", "output path")
		quick         = flag.Bool("quick", false, "shorter runs (CI smoke); figures are noisier")
		skipBench     = flag.Bool("skip-bench", false, "skip the in-process round-trip benchmarks (and the allocs section derived from them)")
		skipScheduler = flag.Bool("skip-scheduler", false, "skip the go-test scheduler benchmarks")
		skipScaling   = flag.Bool("skip-scaling", false, "skip the multi-core shard-scaling runs")
		skipJournal   = flag.Bool("skip-journal", false, "skip the journal record-overhead and recovery runs")
		skipAutoscale = flag.Bool("skip-autoscale", false, "skip the autoscale static-vs-closed-loop sweep")
		skipTrace     = flag.Bool("skip-trace", false, "skip the flight-recorder overhead runs")
		loadDur       = flag.Duration("load-duration", 2*time.Second, "wall length of each goodput run")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the whole bench run here")
		memprofile    = flag.String("memprofile", "", "write a heap profile (post-GC, at exit) here")
		traceOne      = flag.String("trace-one", "", "internal: run ONE flight-recorder goodput run for the named mode and print the entry as JSON")
	)
	flag.Parse()

	if *quick {
		*loadDur = 500 * time.Millisecond
	}

	if *traceOne != "" {
		tc, ok := traceShapes()[*traceOne]
		if !ok {
			log.Fatalf("clockwork-bench: -trace-one: unknown mode %q", *traceOne)
		}
		e, err := runTraceLoad(*traceOne, tc, *loadDur)
		if err != nil {
			log.Fatalf("clockwork-bench: trace %s: %v", *traceOne, err)
		}
		buf, err := json.Marshal(e)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(buf, '\n'))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("clockwork-bench: -cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("clockwork-bench: -cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("clockwork-bench: -memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("clockwork-bench: -memprofile: %v", err)
		}
	}()

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Cores:     runtime.NumCPU(),
		Note: "wall-clock serving-plane baseline; regenerate with cmd/clockwork-bench " +
			"on comparable hardware before comparing across PRs",
	}

	if !*skipBench {
		log.Printf("clockwork-bench: benchmarks")
		rep.Benchmarks = append(rep.Benchmarks,
			runBench("LiveRoundTrip(engine floor)", benchLive),
			runBench("ServeRoundTrip(HTTP)", benchHTTP),
			runBench("StreamRoundTrip", benchStream),
			runBench("StreamBatchRoundTrip(batch=64)", benchStreamBatch),
		)
		for _, b := range rep.Benchmarks {
			log.Printf("clockwork-bench:   %-32s %10.0f ns/op  %6d B/op  %4d allocs/op",
				b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
		}

		// The allocs section restates the benchmark rows keyed by path
		// name: the engine floor every transport pays, then each
		// transport's full round trip. Deterministic across hosts,
		// unlike ns/op.
		for _, p := range []struct{ path, bench string }{
			{"engine_floor", "LiveRoundTrip(engine floor)"},
			{"http", "ServeRoundTrip(HTTP)"},
			{"stream", "StreamRoundTrip"},
			{"stream_batch", "StreamBatchRoundTrip(batch=64)"},
		} {
			for _, b := range rep.Benchmarks {
				if b.Name == p.bench {
					rep.Allocs = append(rep.Allocs, allocsEntry{
						Path: p.path, AllocsPerOp: b.AllocsPerOp, BytesPerOp: b.BytesPerOp,
					})
				}
			}
		}
		rep.AllocsNote = "steady-state allocations per request; engine_floor is the no-transport " +
			"Inject+Wait+Release cycle (0 in steady state — requests, handles, actions and timers " +
			"recycle through free lists), http remainder is net/http+encoding/json internals. " +
			"serve/alloc_test.go and internal/core/alloc_test.go ratchet these ceilings in CI"
	}

	log.Printf("clockwork-bench: loopback goodput runs (%v each)", *loadDur)
	for _, shape := range []struct {
		transport string
		batch     int
	}{{"http", 0}, {"stream", 0}, {"stream", 32}} {
		e, err := runLoad(shape.transport, shape.batch, *loadDur)
		if err != nil {
			log.Fatalf("clockwork-bench: %s load: %v", shape.transport, err)
		}
		rep.Load = append(rep.Load, e)
		log.Printf("clockwork-bench:   %-6s batch=%-3d goodput=%9.1f req/s  lost=%d dup=%d",
			e.Transport, e.Batch, e.Goodput, e.Lost, e.Duplicates)
	}

	if !*skipScaling {
		log.Printf("clockwork-bench: multi-core shard scaling (%v each)", *loadDur)
		for _, shape := range []struct {
			shards    int
			multicore bool
		}{{1, false}, {4, false}, {4, true}} {
			e, err := runScaling(shape.shards, shape.multicore, *loadDur)
			if err != nil {
				log.Fatalf("clockwork-bench: scaling shards=%d multicore=%v: %v",
					shape.shards, shape.multicore, err)
			}
			rep.Scaling = append(rep.Scaling, e)
			log.Printf("clockwork-bench:   shards=%d multicore=%-5v goodput=%9.1f req/s  lost=%d",
				e.Shards, e.Multicore, e.Goodput, e.Lost)
		}
		rep.ScalingNote = fmt.Sprintf(
			"multicore runs one engine goroutine per shard; speedup needs >= shards physical cores "+
				"(this host has %d — on a single core the figures measure sync-protocol overhead, "+
				"expect parity at best, not the >=2.5x a 4-core host shows)", runtime.NumCPU())
	}

	if !*skipJournal {
		log.Printf("clockwork-bench: journal record overhead (%v each)", *loadDur)
		for _, mode := range []string{"off", "record", "fsync-always"} {
			e, err := runJournalLoad(mode, *loadDur)
			if err != nil {
				log.Fatalf("clockwork-bench: journal %s: %v", mode, err)
			}
			rep.Journal = append(rep.Journal, e)
			log.Printf("clockwork-bench:   %-12s goodput=%9.1f req/s  records=%d bytes=%d",
				e.Mode, e.Goodput, e.JournalRecords, e.JournalBytes)
		}
		recov, err := runJournalRecovery(100_000)
		if err != nil {
			log.Fatalf("clockwork-bench: journal recovery: %v", err)
		}
		rep.Recovery = &recov
		log.Printf("clockwork-bench:   recovery of %d records (%d bytes): load=%v rebuild=%v",
			recov.Records, recov.Bytes,
			time.Duration(recov.LoadNs).Round(time.Millisecond),
			time.Duration(recov.RebuildNs).Round(time.Millisecond))
	}

	if !*skipAutoscale {
		dur := 5 * time.Minute // virtual horizon, not wall time
		if *quick {
			dur = 90 * time.Second
		}
		log.Printf("clockwork-bench: autoscale static-vs-closed sweep (%v virtual horizon per family)", dur)
		for _, family := range []string{"diurnal", "flash"} {
			r := experiments.RunAutoscale(experiments.AutoscaleConfig{Family: family, Seed: 42, Duration: dur})
			for _, cell := range r.Cells {
				rep.Autoscale = append(rep.Autoscale, autoscaleEntry{
					Family:        family,
					Cell:          cell.Name,
					PeakWorkers:   cell.PeakWorkers,
					FinalWindow:   cell.FinalWindow,
					Violations:    cell.Violations,
					ViolationRate: cell.ViolationRate,
					GPUSeconds:    cell.GPUSeconds,
				})
				log.Printf("clockwork-bench:   %-7s %-20s viol=%7.3f%%  gpu-sec=%6.0f",
					family, cell.Name, 100*cell.ViolationRate, cell.GPUSeconds)
			}
		}
		rep.AutoscaleNote = "virtual-time sim, deterministic for equal seeds: every cell replays the " +
			"identical arrival schedule; closed-loop rows should Pareto-dominate the statics " +
			"(fewer violations AND fewer GPU-seconds) at the full 5m horizon"
	}

	if !*skipTrace {
		// Differential goodput on a small machine needs care: a
		// single 2s wall run swings ±10% from OS-scheduler jitter and
		// GC pacing against in-process heap history. Countermeasures:
		// every run happens in a FRESH subprocess (this binary
		// re-exec'd with -trace-one: identical heap state each time);
		// runs are 4s (within-run averaging beats more short runs);
		// the schedule interleaves modes with the order rotated per
		// repetition, and visits the disabled baseline twice per
		// cycle — the baseline enters every differential, so it gets
		// double the data; each mode's overhead compares pooled
		// goodput across all its runs vs the pooled baseline.
		traceDur := 4 * time.Second
		reps := 10
		if *quick {
			traceDur = 500 * time.Millisecond
			reps = 1
		}
		schedule := []string{"disabled", "rate=0", "rate=0.01", "disabled", "rate=1"}
		modes := []string{"disabled", "rate=0", "rate=0.01", "rate=1"}
		log.Printf("clockwork-bench: flight-recorder overhead (%v each)", traceDur)
		self, err := os.Executable()
		if err != nil {
			log.Fatalf("clockwork-bench: os.Executable: %v", err)
		}
		type traceRun struct {
			seq int
			e   traceEntry
		}
		byMode := make(map[string][]traceRun)
		var baseline []traceRun // chronological disabled runs
		seq := 0
		for r := 0; r < reps; r++ {
			for k := range schedule {
				m := schedule[(r+k)%len(schedule)]
				cmd := exec.Command(self, "-trace-one", m, "-load-duration", traceDur.String())
				cmd.Stderr = os.Stderr
				outBuf, err := cmd.Output()
				if err != nil {
					log.Fatalf("clockwork-bench: trace %s: %v", m, err)
				}
				var e traceEntry
				if err := json.Unmarshal(outBuf, &e); err != nil {
					log.Fatalf("clockwork-bench: trace %s: bad child output: %v", m, err)
				}
				tr := traceRun{seq: seq, e: e}
				byMode[m] = append(byMode[m], tr)
				if m == "disabled" {
					baseline = append(baseline, tr)
				}
				seq++
			}
		}
		// Local baseline for a run: the mean of the nearest disabled
		// runs before and after it in the schedule. Machine slowness
		// episodes (which on this class of box outlast a rotation
		// cycle) hit a run and its neighbours alike, so the ratio to
		// the local baseline cancels them where a pooled mean cannot.
		localBase := func(s int) float64 {
			lo, hi := -1, -1
			for i, b := range baseline {
				if b.seq <= s {
					lo = i
				}
				if b.seq > s {
					hi = i
					break
				}
			}
			switch {
			case lo >= 0 && hi >= 0:
				return (baseline[lo].e.Goodput + baseline[hi].e.Goodput) / 2
			case lo >= 0:
				return baseline[lo].e.Goodput
			default:
				return baseline[hi].e.Goodput
			}
		}
		for i, m := range modes {
			runs := byMode[m]
			var ratios []float64
			for _, tr := range runs {
				if b := localBase(tr.seq); b > 0 {
					ratios = append(ratios, tr.e.Goodput/b)
				}
			}
			sort.Float64s(ratios)
			// Representative entry: the rep with the median goodput
			// (keeps sent/sampled/percentiles coherent); overhead_pct
			// is the median of the per-run local ratios.
			sort.Slice(runs, func(a, b int) bool { return runs[a].e.Goodput < runs[b].e.Goodput })
			ent := runs[len(runs)/2].e
			if i > 0 && len(ratios) > 0 {
				ent.OverheadPct = 100 * (1 - ratios[len(ratios)/2])
			}
			rep.Trace = append(rep.Trace, ent)
			log.Printf("clockwork-bench:   %-10s goodput=%9.1f req/s  sampled=%-6d overhead=%+.1f%%",
				ent.Mode, ent.Goodput, ent.Sampled, ent.OverheadPct)
		}
		rep.TraceNote = "overhead_pct is the median, over 10 order-rotated 4s repetitions in fresh " +
			"subprocesses, of each run's goodput ratio to its nearest-in-time recorder-disabled runs " +
			"(2 baseline slots per 5-run cycle): slow-machine episodes hit neighbouring runs alike and " +
			"cancel, where a pooled mean cannot. goodput/sent/percentiles are the median repetition. " +
			"The bar is <=5% at the default 0.01 rate (-quick runs once per mode and is too noisy to read)"
	}

	if !*skipScheduler {
		sched, err := runSchedulerBenches(*quick)
		if err != nil {
			log.Printf("clockwork-bench: scheduler benches skipped: %v", err)
		} else {
			rep.Scheduler = sched
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("clockwork-bench: wrote %s", *out)
}

func runBench(name string, fn func(b *testing.B)) benchEntry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return benchEntry{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// newSystem builds the benchmark geometry: 1 worker × 2 GPUs, one
// warm ResNet50 — the same shape serve/bench_test.go measures.
func newSystem() (*clockwork.System, error) {
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 2})
	if err != nil {
		return nil, err
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		return nil, err
	}
	return sys, nil
}

func benchLive(b *testing.B) {
	sys, err := newSystem()
	if err != nil {
		b.Fatal(err)
	}
	live := sys.StartLive(10_000)
	defer live.Stop()
	ctx := context.Background()
	// The submit closure is hoisted so the measured loop allocates
	// nothing of its own: handles are values, and the slot recycles
	// through Release.
	var h clockwork.Handle
	var serr error
	submit := func() {
		h, serr = sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	}
	fire := func() {
		if doErr := live.Do(submit); doErr != nil {
			b.Fatal(doErr)
		}
		if serr != nil {
			b.Fatal(serr)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
	fire()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fire()
	}
}

func benchHTTP(b *testing.B) {
	sys, err := newSystem()
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.New(sys, serve.Options{Speed: 10_000})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer shutdown(srv)
	client := serve.NewClient(ln.Addr().String(), nil)
	ctx := context.Background()
	if err := client.WaitReady(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStream(b *testing.B) {
	srv, client := streamPair(b, 1)
	defer shutdown(srv)
	defer client.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Infer(ctx, clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStreamBatch(b *testing.B) {
	srv, client := streamPair(b, 1)
	defer shutdown(srv)
	defer client.Close()
	ctx := context.Background()
	const batch = 64
	reqs := make([]clockwork.Request, batch)
	for i := range reqs {
		reqs[i] = clockwork.Request{Model: "m", SLO: time.Second, MaxBatchSize: 16}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		outs, err := client.SubmitBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func streamPair(b *testing.B, conns int) (*serve.Server, *serve.StreamClient) {
	sys, err := newSystem()
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.New(sys, serve.Options{Speed: 10_000})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.ServeStream(ln) }()
	client, err := serve.DialStream(ln.Addr().String(), serve.StreamOptions{Conns: conns})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Infer(context.Background(), clockwork.Request{Model: "m", SLO: time.Second}); err != nil {
		b.Fatal(err)
	}
	return srv, client
}

func shutdown(srv *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// runLoad reproduces the EXPERIMENTS.md loopback shape (2×2 GPUs,
// 4 ResNet50 copies, speed 500, 16-way closed loop, 500ms SLO) over
// the chosen transport, in-process.
func runLoad(transport string, batch int, dur time.Duration) (loadEntry, error) {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, GPUsPerWorker: 2})
	if err != nil {
		return loadEntry{}, err
	}
	if _, err := sys.RegisterCopies("res", "resnet50_v1b", 4); err != nil {
		return loadEntry{}, err
	}
	srv := serve.New(sys, serve.Options{Speed: 500})
	defer shutdown(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadEntry{}, err
	}
	cfg := serve.LoadConfig{
		SLO:         500 * time.Millisecond,
		Concurrency: 16,
		Duration:    dur,
		Batch:       batch,
	}
	switch transport {
	case "http":
		go func() { _ = srv.Serve(ln) }()
		cfg.Client = serve.NewClient(ln.Addr().String(), nil)
	case "stream":
		go func() { _ = srv.ServeStream(ln) }()
		sc, err := serve.DialStream(ln.Addr().String(), serve.StreamOptions{Conns: 2})
		if err != nil {
			return loadEntry{}, err
		}
		defer sc.Close()
		cfg.Transport = sc
	default:
		return loadEntry{}, fmt.Errorf("unknown transport %q", transport)
	}
	rep, err := serve.RunLoad(context.Background(), cfg)
	if err != nil {
		return loadEntry{}, err
	}
	return loadEntry{
		Transport:     transport,
		Concurrency:   cfg.Concurrency,
		Batch:         batch,
		Goodput:       rep.Goodput,
		Sent:          rep.Sent,
		Lost:          rep.Sent - rep.Completed - rep.Errors - rep.Shed,
		Duplicates:    rep.Duplicates,
		ViolationRate: rep.ViolationRate,
		WallP50Ns:     rep.Wall.P50.Nanoseconds(),
		WallP99Ns:     rep.Wall.P99.Nanoseconds(),
	}, nil
}

// runJournalLoad measures the durable control plane's record-path tax:
// the stream loopback shape (the fastest transport, where per-request
// overhead is most visible) with journaling off, recording under the
// default interval fsync, and recording with an fsync per ack. The
// acceptance bar is record (interval) goodput within 15% of off;
// fsync-always pays for its machine-crash durability and is reported,
// not bounded.
func runJournalLoad(mode string, dur time.Duration) (journalEntry, error) {
	cfg := clockwork.Config{Workers: 2, GPUsPerWorker: 2}
	sys, err := clockwork.New(cfg)
	if err != nil {
		return journalEntry{}, err
	}
	if _, err := sys.RegisterCopies("res", "resnet50_v1b", 4); err != nil {
		return journalEntry{}, err
	}
	var rec *journal.Recorder
	if mode != "off" {
		dir, err := os.MkdirTemp("", "clockwork-bench-journal")
		if err != nil {
			return journalEntry{}, err
		}
		defer os.RemoveAll(dir)
		fsync := journal.FsyncInterval
		if mode == "fsync-always" {
			fsync = journal.FsyncAlways
		}
		rec, err = journal.Create(dir, sys, cfg, journal.Options{Fsync: fsync, Speed: 500})
		if err != nil {
			return journalEntry{}, err
		}
	}
	srv := serve.New(sys, serve.Options{Speed: 500, Journal: rec})
	defer shutdown(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return journalEntry{}, err
	}
	go func() { _ = srv.ServeStream(ln) }()
	sc, err := serve.DialStream(ln.Addr().String(), serve.StreamOptions{Conns: 2})
	if err != nil {
		return journalEntry{}, err
	}
	defer sc.Close()
	lrep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		SLO:         500 * time.Millisecond,
		Concurrency: 16,
		Duration:    dur,
		Batch:       32,
		Transport:   sc,
	})
	if err != nil {
		return journalEntry{}, err
	}
	e := journalEntry{
		Mode:          mode,
		Goodput:       lrep.Goodput,
		Sent:          lrep.Sent,
		Lost:          lrep.Sent - lrep.Completed - lrep.Errors - lrep.Shed,
		ViolationRate: lrep.ViolationRate,
		WallP50Ns:     lrep.Wall.P50.Nanoseconds(),
		WallP99Ns:     lrep.Wall.P99.Nanoseconds(),
	}
	if rec != nil {
		st := rec.Status()
		e.JournalRecords = st.Records
		e.JournalBytes = st.Bytes
	}
	return e, nil
}

// runJournalRecovery times what clockworkd does on boot — Load the
// epoch, Rebuild the control plane — against a synthetic journal of n
// records (alternating submission and acknowledgement, the live mix).
// The records are appended through the real Recorder on a quiescent
// engine, so the bytes on disk are exactly what a live run writes.
func runJournalRecovery(n int) (recoveryEntry, error) {
	dir, err := os.MkdirTemp("", "clockwork-bench-recovery")
	if err != nil {
		return recoveryEntry{}, err
	}
	defer os.RemoveAll(dir)
	cfg := clockwork.Config{Workers: 2, GPUsPerWorker: 2}
	sys, err := clockwork.New(cfg)
	if err != nil {
		return recoveryEntry{}, err
	}
	if _, err := sys.RegisterCopies("res", "resnet50_v1b", 4); err != nil {
		return recoveryEntry{}, err
	}
	rec, err := journal.Create(dir, sys, cfg, journal.Options{Fsync: journal.FsyncNever, Speed: 500})
	if err != nil {
		return recoveryEntry{}, err
	}
	for i := 0; i < n/2; i++ {
		corr := rec.Infer(0, "res#0", 250*time.Millisecond, 0, "bench", 0)
		rec.Ack(corr, clockwork.Result{
			RequestID: uint64(i + 1), Success: true,
			Latency: 5 * time.Millisecond, Batch: 1,
		})
	}
	if err := rec.Close(); err != nil {
		return recoveryEntry{}, err
	}

	start := time.Now()
	ep, err := journal.Load(dir)
	if err != nil {
		return recoveryEntry{}, err
	}
	loadNs := time.Since(start).Nanoseconds()
	start = time.Now()
	if _, _, _, err := ep.Rebuild(); err != nil {
		return recoveryEntry{}, err
	}
	return recoveryEntry{
		Records:   len(ep.Records),
		Bytes:     ep.Bytes,
		LoadNs:    loadNs,
		RebuildNs: time.Since(start).Nanoseconds(),
	}, nil
}

// runScaling measures the shard-scaling shape: 4 workers, 8 model
// copies, stream transport with 32-deep client batches, N scheduler
// shards — single-engine vs one engine per shard. On a host with >=
// shards cores the multicore figure should scale with the shard count;
// on fewer cores it measures the bounded-skew sync protocol's overhead.
func runScaling(shards int, multicore bool, dur time.Duration) (scalingEntry, error) {
	sys, err := clockwork.New(clockwork.Config{
		Workers:        4,
		GPUsPerWorker:  1,
		Shards:         shards,
		EnginePerShard: multicore,
	})
	if err != nil {
		return scalingEntry{}, err
	}
	if _, err := sys.RegisterCopies("res", "resnet50_v1b", 8); err != nil {
		return scalingEntry{}, err
	}
	srv := serve.New(sys, serve.Options{Speed: 500})
	defer shutdown(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return scalingEntry{}, err
	}
	go func() { _ = srv.ServeStream(ln) }()
	sc, err := serve.DialStream(ln.Addr().String(), serve.StreamOptions{Conns: 2})
	if err != nil {
		return scalingEntry{}, err
	}
	defer sc.Close()
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		SLO:         500 * time.Millisecond,
		Concurrency: 16,
		Duration:    dur,
		Batch:       32,
		Transport:   sc,
	})
	if err != nil {
		return scalingEntry{}, err
	}
	return scalingEntry{
		Shards:        shards,
		Multicore:     multicore,
		Goodput:       rep.Goodput,
		Sent:          rep.Sent,
		Lost:          rep.Sent - rep.Completed - rep.Errors - rep.Shed,
		ViolationRate: rep.ViolationRate,
		WallP50Ns:     rep.Wall.P50.Nanoseconds(),
		WallP99Ns:     rep.Wall.P99.Nanoseconds(),
	}, nil
}

// runTraceLoad measures the flight recorder's serving-path tax: the
// stream loopback shape with the recorder left disabled (every hook is
// one atomic load) or enabled at a head-sampling rate. Rate 0 isolates
// the aggregate layer (stage histograms + provenance run for every
// request); rate 1 adds full lifecycle capture into the rings.
// traceShapes maps the flight-recorder mode names (used by the trace
// section and the -trace-one child runs) to their recorder configs.
func traceShapes() map[string]*serve.TraceConfig {
	return map[string]*serve.TraceConfig{
		"disabled":  nil,
		"rate=0":    {Enabled: true, SampleRate: 0},
		"rate=0.01": {Enabled: true, SampleRate: 0.01},
		"rate=1":    {Enabled: true, SampleRate: 1},
	}
}

func runTraceLoad(mode string, tc *serve.TraceConfig, dur time.Duration) (traceEntry, error) {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, GPUsPerWorker: 2})
	if err != nil {
		return traceEntry{}, err
	}
	if _, err := sys.RegisterCopies("res", "resnet50_v1b", 4); err != nil {
		return traceEntry{}, err
	}
	srv := serve.New(sys, serve.Options{Speed: 500, Trace: tc})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		shutdown(srv)
		return traceEntry{}, err
	}
	go func() { _ = srv.ServeStream(ln) }()
	sc, err := serve.DialStream(ln.Addr().String(), serve.StreamOptions{Conns: 2})
	if err != nil {
		shutdown(srv)
		return traceEntry{}, err
	}
	lrep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		SLO:         500 * time.Millisecond,
		Concurrency: 16,
		Duration:    dur,
		Batch:       32,
		Transport:   sc,
	})
	sc.Close()
	shutdown(srv) // stops the engines: Aggregate below reads quiescent rings
	if err != nil {
		return traceEntry{}, err
	}
	e := traceEntry{
		Mode:          mode,
		Goodput:       lrep.Goodput,
		Sent:          lrep.Sent,
		Lost:          lrep.Sent - lrep.Completed - lrep.Errors - lrep.Shed,
		ViolationRate: lrep.ViolationRate,
		WallP50Ns:     lrep.Wall.P50.Nanoseconds(),
		WallP99Ns:     lrep.Wall.P99.Nanoseconds(),
	}
	if flight := sys.FlightRecorder(); flight != nil {
		st := flight.Aggregate().Stats
		e.Finalized = st.Finalized
		e.Sampled = st.SampledKept
	}
	return e, nil
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op`)

// runSchedulerBenches shells out to go test for the virtual-clock
// scheduler benchmarks; callers tolerate failure (no toolchain, no
// source tree).
func runSchedulerBenches(quick bool) ([]benchEntry, error) {
	benchtime := "1000x"
	if quick {
		benchtime = "100x"
	}
	cmd := exec.Command("go", "test", "./internal/core", "-run", "xxx",
		"-bench", "BenchmarkSchedulerPass", "-benchtime", benchtime)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("%v: %s", err, strings.TrimSpace(string(out)))
	}
	var entries []benchEntry
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		entries = append(entries, benchEntry{Name: m[1], NsPerOp: ns})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines in go test output")
	}
	return entries, nil
}
