// Command tracegen synthesises a Microsoft-Azure-Functions-like trace
// (the §6.5 workload) through the public workload package and prints
// its shape: per-class function counts, aggregate request rate per
// minute, and summary statistics.
package main

import (
	"flag"
	"fmt"

	"clockwork/workload"
)

func main() {
	var (
		functions = flag.Int("functions", 1000, "number of function workloads")
		minutes   = flag.Int("minutes", 60, "trace duration in minutes")
		seed      = flag.Uint64("seed", 42, "RNG seed")
		scale     = flag.Float64("scale", 1.0, "rate multiplier")
	)
	flag.Parse()

	tr := workload.SynthesizeMAF(*seed, workload.MAFConfig{
		Functions: *functions,
		Minutes:   *minutes,
		RateScale: *scale,
	})

	fmt.Printf("MAF-like trace: %d functions × %d minutes (seed %d, ×%.2f)\n",
		*functions, *minutes, *seed, *scale)
	counts := tr.KindCounts()
	for _, k := range []workload.FunctionKind{
		workload.KindHeavy, workload.KindCold, workload.KindBursty, workload.KindPeriodic,
	} {
		fmt.Printf("  %-9s %6d functions\n", k, counts[k])
	}
	fmt.Printf("mean rate %.1f r/s\n\n", tr.TotalRate())
	fmt.Println("minute  r/s")
	for m := 0; m < tr.Minutes; m++ {
		fmt.Printf("%6d  %.1f\n", m, tr.RateAtMinute(m))
	}
}
