// Command clockwork-replay re-executes a recorded journal epoch
// through the deterministic simulator and checks that the replayed
// acknowledgement stream hashes identically to the recorded one — the
// proof that a live run (and any incident inside it) reproduces
// bit-for-bit from its journal.
//
//	clockwork-replay -journal /var/lib/clockwork/journal
//	clockwork-replay -journal dir -epoch 2 -json
//	clockwork-replay -journal dir -trace incident.json
//
// -trace replays with the flight recorder attached at sample rate 1.0
// and writes every replayed request's lifecycle as Perfetto-loadable
// trace-event JSON — post-hoc tracing: a journaled incident yields a
// full per-request trace even though the live run recorded none. The
// recorder is a pure observer, so the outcome hash still matches the
// recording.
//
// Exit status: 0 when the outcome hashes match, 1 on mismatch, 2 on a
// replay error (divergence, unreadable journal, pruned genesis).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"clockwork/journal"
	"clockwork/trace"
)

func main() {
	var (
		dir      = flag.String("journal", "", "journal directory to replay (required)")
		epoch    = flag.Int("epoch", -1, "epoch to replay (-1 = latest)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON")
		traceOut = flag.String("trace", "", "replay with tracing at sample rate 1.0 and write Perfetto JSON here")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ep *journal.EpochData
	var err error
	if *epoch >= 0 {
		ep, err = journal.LoadEpoch(*dir, *epoch)
	} else {
		ep, err = journal.Load(*dir)
	}
	if err != nil {
		log.Fatalf("clockwork-replay: %v", err)
	}
	if ep.Truncated {
		log.Printf("clockwork-replay: note: journal tail truncated (%s); replaying the durable prefix", ep.TruncatedNote)
	}

	var flight *trace.Recorder
	if *traceOut != "" {
		flight = trace.New(trace.Options{SampleRate: 1, Enabled: true})
	}
	start := time.Now()
	res, err := journal.ReplayEpochTraced(ep, flight)
	if err != nil {
		log.Fatalf("clockwork-replay: epoch %d: %v", ep.Epoch, err)
	}
	wall := time.Since(start)
	if flight != nil {
		// The replayed engine is quiescent; snapshot the rings and dump
		// them for ui.perfetto.dev.
		snap := flight.Snapshot()
		snap.VirtualNow = res.FinalVT
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("clockwork-replay: %v", err)
		}
		if err := trace.WritePerfetto(f, snap); err != nil {
			log.Fatalf("clockwork-replay: writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("clockwork-replay: %v", err)
		}
		if !*jsonOut {
			fmt.Printf("trace: %d request lifecycles -> %s\n", len(snap.Requests), *traceOut)
		}
	}

	if *jsonOut {
		out := struct {
			Epoch int `json:"epoch"`
			*journal.ReplayResult
			Records  int           `json:"records"`
			WallTime time.Duration `json:"wall_time_ns"`
		}{ep.Epoch, res, len(ep.Records), wall}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	} else {
		fmt.Printf("epoch %d: %d records, %d requests, %d recorded acks\n", ep.Epoch, len(ep.Records), res.Requests, res.RecordedAcks)
		fmt.Printf("recorded hash: %s\n", res.RecordedHash)
		fmt.Printf("replayed hash: %s\n", res.ReplayedHash)
		fmt.Printf("replayed %d acks over %d engine steps to virtual %v in %v wall\n",
			res.ReplayedAcks, res.FinalStep, res.FinalVT.Round(time.Millisecond), wall.Round(time.Millisecond))
		if res.Match {
			fmt.Println("MATCH: the replay reproduced the recorded run bit-for-bit")
		} else {
			fmt.Println("MISMATCH: the replayed outcomes differ from the recording")
		}
	}
	if !res.Match {
		os.Exit(1)
	}
}
