// Command modelzoo prints the embedded model catalogue — the paper's
// Appendix A, Table 1 — optionally filtered by family, through the
// public zoo accessors.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"clockwork"
)

func main() {
	family := flag.String("family", "", "print only this model family")
	flag.Parse()

	models := clockwork.ZooSpecs(*family)
	if len(models) == 0 {
		fmt.Fprintf(os.Stderr, "no models in family %q; families: %v\n", *family, clockwork.ZooFamilies())
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintln(w, "family\tmodel\tin kB\tout kB\tweights MB\ttransfer ms\tB1\tB2\tB4\tB8\tB16")
	for _, m := range models {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.2f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			m.Family, m.Name, m.InputKB, m.OutputKB, m.WeightsMB, m.TransferMs,
			m.ExecMs[0], m.ExecMs[1], m.ExecMs[2], m.ExecMs[3], m.ExecMs[4])
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\n%d models, %d families\n", len(models), len(clockwork.ZooFamilies()))
}
