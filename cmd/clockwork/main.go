// Command clockwork regenerates the paper's tables and figures on the
// simulated cluster and prints their data, driving the public
// experiment catalogue (clockwork/experiments). Independent experiments
// and sweep cells fan out across cores; output is printed in a fixed
// order regardless of completion order, so a run's output is identical
// to a serial one.
//
// Examples:
//
//	clockwork -exp fig2a
//	clockwork -exp fig5 -dur 20s
//	clockwork -exp fig6 -models 3600 -minutes 60
//	clockwork -exp fig8 -minutes 60 -functions 17000 -copies 66 -workers 6
//	clockwork -exp sloscale
//	clockwork -exp scale -shards 1,4,16
//	clockwork -exp ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"clockwork/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment: fig2a fig2b fig5 fig6 fig7 fig7iso fig8 fig9 sloscale scale ablations all")
		seed      = flag.Uint64("seed", 42, "experiment RNG seed")
		dur       = flag.Duration("dur", 0, "per-cell duration for fig5/ablations (0 = default)")
		minutes   = flag.Int("minutes", 0, "trace minutes for fig6/fig8/fig9/sloscale (0 = default)")
		models    = flag.Int("models", 0, "model count for fig6/fig7/scale (0 = default)")
		functions = flag.Int("functions", 0, "MAF function count for fig8/fig9/sloscale (0 = default)")
		copies    = flag.Int("copies", 0, "instances per zoo model for fig8/fig9/sloscale (0 = default)")
		workers   = flag.Int("workers", 0, "worker machines (0 = default)")
		gpus      = flag.Int("gpus", 0, "GPUs per worker (0 = default)")
		rate      = flag.Float64("rate", 0, "total rate for fig7/scale (0 = default)")
		rateScale = flag.Float64("ratescale", 0, "MAF trace rate multiplier (0 = default)")
		requests  = flag.Int("requests", 0, "total submissions per scale cell (0 = default)")
		shards    = flag.String("shards", "", "comma-separated shard counts for scale (empty = 1,4,16)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	out, err := experiments.Render(*exp, experiments.CLIFlags{
		Seed:      *seed,
		Dur:       time.Duration(*dur),
		Minutes:   *minutes,
		Models:    *models,
		Functions: *functions,
		Copies:    *copies,
		Workers:   *workers,
		GPUs:      *gpus,
		Rate:      *rate,
		RateScale: *rateScale,
		Requests:  *requests,
		Shards:    parseShards(*shards),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(out)
}

// parseShards turns "1,4,16" into shard-count cells; malformed entries
// are fatal rather than silently dropped.
func parseShards(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad -shards entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
