// Command clockwork regenerates the paper's tables and figures on the
// simulated cluster and prints their data. Independent experiments and
// sweep cells fan out across cores via internal/runner; output is
// printed in a fixed order regardless of completion order, so a run's
// output is identical to a serial one.
//
// Examples:
//
//	clockwork -exp fig2a
//	clockwork -exp fig5 -dur 20s
//	clockwork -exp fig6 -models 3600 -minutes 60
//	clockwork -exp fig8 -minutes 60 -functions 17000 -copies 66 -workers 6
//	clockwork -exp scale
//	clockwork -exp ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clockwork/internal/experiments"
	"clockwork/internal/runner"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment: fig2a fig2b fig5 fig6 fig7 fig7iso fig8 fig9 scale ablations all")
		seed      = flag.Uint64("seed", 42, "experiment RNG seed")
		dur       = flag.Duration("dur", 0, "per-cell duration for fig5/ablations (0 = default)")
		minutes   = flag.Int("minutes", 0, "trace minutes for fig6/fig8/fig9/scale (0 = default)")
		models    = flag.Int("models", 0, "model count for fig6/fig7 (0 = default)")
		functions = flag.Int("functions", 0, "MAF function count for fig8/fig9/scale (0 = default)")
		copies    = flag.Int("copies", 0, "instances per zoo model for fig8/fig9/scale (0 = default)")
		workers   = flag.Int("workers", 0, "worker machines (0 = default)")
		gpus      = flag.Int("gpus", 0, "GPUs per worker (0 = default)")
		rate      = flag.Float64("rate", 0, "total rate for fig7 (0 = default)")
		rateScale = flag.Float64("ratescale", 0, "MAF trace rate multiplier (0 = default)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	// render produces one experiment's full output; every case is a
	// pure function of the flags, so "all" can run them concurrently
	// and still print in catalogue order.
	var render func(name string) string
	render = func(name string) string {
		switch name {
		case "fig2a":
			return fmt.Sprintln(experiments.RunFig2a(experiments.Fig2aConfig{Seed: *seed}))
		case "fig2b":
			return fmt.Sprintln(experiments.RunFig2b(experiments.Fig2bConfig{Seed: *seed, Duration: *dur}))
		case "fig5":
			return fmt.Sprintln(experiments.RunFig5(experiments.Fig5Config{
				Seed: *seed, Duration: *dur, Models: *models,
			}))
		case "fig6":
			cfg := experiments.Fig6Config{Seed: *seed, TotalModels: *models}
			if *minutes > 0 {
				cfg.Duration = time.Duration(*minutes) * time.Minute
			}
			return fmt.Sprintln(experiments.RunFig6(cfg))
		case "fig7":
			sweep := []struct {
				n int
				r float64
			}{{12, 600}, {12, 1200}, {12, 2400}, {48, 600}, {48, 1200}, {48, 2400}}
			if *models > 0 || *rate > 0 {
				sweep = sweep[:1] // single custom configuration
			}
			outs := runner.Map(sweep, func(nr struct {
				n int
				r float64
			}) string {
				cfg := experiments.Fig7Config{Seed: *seed, Models: nr.n, TotalRate: nr.r, Workers: *workers}
				if *models > 0 {
					cfg.Models = *models
				}
				if *rate > 0 {
					cfg.TotalRate = *rate
				}
				return fmt.Sprintln(experiments.RunFig7(cfg))
			})
			return strings.Join(outs, "")
		case "fig7iso":
			sweep := []struct{ m, c int }{{0, 0}, {12, 16}, {48, 4}}
			outs := runner.Map(sweep, func(mc struct{ m, c int }) string {
				return fmt.Sprintln(experiments.RunFig7Isolation(experiments.Fig7IsoConfig{
					Seed: *seed, BCModels: mc.m, BCConc: mc.c, Workers: *workers,
				}))
			})
			return strings.Join(outs, "")
		case "fig8":
			return fmt.Sprintln(experiments.RunFig8(fig8Config(*seed, *workers, *gpus, *copies, *functions, *minutes, *rateScale)))
		case "fig9":
			return fmt.Sprintln(experiments.RunFig9(fig8Config(*seed, *workers, *gpus, *copies, *functions, *minutes, *rateScale)))
		case "scale":
			return fmt.Sprintln(experiments.RunScale(experiments.ScaleConfig{
				Seed: *seed, Workers: *workers, GPUsPerWorker: *gpus,
				Functions: *functions, Minutes: *minutes, Copies: *copies,
				RateScale: *rateScale,
			}))
		case "ablations":
			outs := runner.Run([]func() string{
				func() string { return fmt.Sprintln(experiments.RunAblationLookahead(*dur, *seed)) },
				func() string { return fmt.Sprintln(experiments.RunAblationPredictor(*dur, *seed)) },
				func() string { return fmt.Sprintln(experiments.RunAblationLoadPolicy(*dur, *seed)) },
				func() string { return fmt.Sprintln(experiments.RunAblationPaging(0, *seed)) },
			})
			return strings.Join(outs, "")
		case "all":
			names := []string{"fig2a", "fig2b", "fig5", "fig6", "fig7", "fig7iso", "fig8", "fig9", "scale", "ablations"}
			return strings.Join(runner.Map(names, render), "")
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
			return ""
		}
	}
	fmt.Print(render(*exp))
}

func fig8Config(seed uint64, workers, gpus, copies, functions, minutes int, rateScale float64) experiments.Fig8Config {
	return experiments.Fig8Config{
		Seed: seed, Workers: workers, GPUsPerWorker: gpus,
		Copies: copies, Functions: functions, Minutes: minutes,
		RateScale: rateScale,
	}
}
