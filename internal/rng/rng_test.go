package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamsAreDeterministic(t *testing.T) {
	a := NewSource(42).Stream("gpu0")
	b := NewSource(42).Stream("gpu0")
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStreamsAreIndependentByName(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("gpu0")
	b := src.Stream("gpu1")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different names look identical (%d collisions)", same)
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewStream(7)
	const n = 200_000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %v", std)
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(7)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3.5)
	}
	if got := sum / n; math.Abs(got-3.5) > 0.08 {
		t.Fatalf("exp mean = %v, want ≈3.5", got)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := NewStream(7)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Poisson(2.5))
	}
	if got := sum / n; math.Abs(got-2.5) > 0.05 {
		t.Fatalf("poisson mean = %v, want ≈2.5", got)
	}
}

func TestPoissonLargeMeanUsesApproximation(t *testing.T) {
	s := NewStream(7)
	const n = 50_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Poisson(500))
	}
	if got := sum / n; math.Abs(got-500) > 2 {
		t.Fatalf("poisson(500) mean = %v", got)
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	s := NewStream(7)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	s := NewStream(7)
	z := s.Zipf(1.2, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100_000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("rank 0 (%d) should dominate rank 500 (%d)", counts[0], counts[500])
	}
}

func TestZipfClampsSkew(t *testing.T) {
	s := NewStream(7)
	z := s.Zipf(0.5, 10) // invalid skew is clamped, must not panic
	for i := 0; i < 100; i++ {
		if v := z.Draw(); v < 0 || v >= 10 {
			t.Fatalf("draw out of range: %d", v)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStream(7).Zipf(1.1, 0)
}

func TestBernoulliProbability(t *testing.T) {
	s := NewStream(7)
	hits := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("bernoulli rate = %v", p)
	}
}

// Property: Intn always lands in range; Perm is a permutation.
func TestIntnPermProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := NewStream(seed)
		for i := 0; i < 32; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSeedStream(t *testing.T) {
	s := NewStream(0) // must not panic; remapped internally
	_ = s.Float64()
}
