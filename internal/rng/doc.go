// Package rng provides deterministic, named random-number streams.
//
// Every stochastic element of an experiment (per-client arrival
// process, per-GPU timing noise, trace synthesis) draws from its own
// stream derived from (seed, name), so adding a new consumer never
// perturbs the draws seen by existing ones and whole experiments
// replay bit-identically.
//
// Stream names are chosen to be invariant over deployment shape:
// worker streams embed the worker ID ("w3.g1.exec"), never the
// scheduler shard that happens to own the worker, which is why a
// sharded control plane replays the same hardware behaviour as an
// unsharded one.
package rng
