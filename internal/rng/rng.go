package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source derives independent streams from a root seed.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Stream returns the deterministic stream for name. Calling Stream twice
// with the same name returns streams that produce identical sequences.
func (s *Source) Stream(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	mixed := h.Sum64() ^ s.seed*0x9E3779B97F4A7C15
	if mixed == 0 {
		mixed = 1
	}
	return &Stream{r: rand.New(rand.NewSource(int64(mixed)))}
}

// Stream is a deterministic RNG with distribution helpers used across the
// simulator. It is not safe for concurrent use; each consumer owns one.
type Stream struct {
	r *rand.Rand
}

// NewStream returns a stream seeded directly (mostly for tests).
func NewStream(seed int64) *Stream {
	if seed == 0 {
		seed = 1
	}
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n). n must be > 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Normal returns a draw from N(mean, stddev²).
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma²)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Exp returns a draw from an exponential distribution with the given
// mean (NOT rate). Exp(m) has mean m.
func (s *Stream) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Poisson returns a Poisson-distributed count with the given mean,
// using inversion for small means and a normal approximation for large.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; clamped at 0.
		v := s.Normal(mean, math.Sqrt(mean)) + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10_000 {
			return k // defensive: cannot happen for mean ≤ 64
		}
	}
}

// Zipf returns a sampler over [0, n) with exponent skew (>1 means skewed;
// values near 1.0001 approximate classic Zipf). Panics if n <= 0.
func (s *Stream) Zipf(skew float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with n <= 0")
	}
	if skew <= 1 {
		skew = 1.0001
	}
	return &Zipf{z: rand.NewZipf(s.r, skew, 1, uint64(n-1))}
}

// Zipf samples Zipf-distributed ranks.
type Zipf struct {
	z *rand.Zipf
}

// Draw returns the next rank.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.r.Float64() < p }
