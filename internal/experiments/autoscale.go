package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/autoscale"
	"clockwork/internal/rng"
	"clockwork/internal/runner"
	"clockwork/internal/workload"
	"clockwork/trace"
)

// The autoscale scenario judges the closed control loop against every
// static {workers, admission window} configuration in a sweep, under
// time-varying load — a diurnal cycle or a flash crowd — replayed
// bit-identically in every cell (the arrival instants and model picks
// are materialised once from the scenario seed). Each cell pays for
// the GPU-seconds it keeps active, sheds above its admission window
// (a shed counts as an SLO violation: the client got nothing by the
// deadline), and is scored on end-to-end violations. The claim under
// test: the closed loop violates less than every static cell while
// holding no more GPU-seconds — adaptation beats any fixed point of
// the {capacity, admission} trade-off when load moves.

// AutoscaleConfig parameterises the scenario.
type AutoscaleConfig struct {
	// Family picks the load shape: "diurnal" (one sharpened sinusoidal
	// day over the run) or "flash" (flat base with one ramped spike).
	Family string
	// Models is the registered instance count (zoo varieties cycled).
	Models int
	// GPUsPerWorker fixes the worker geometry (default 2).
	GPUsPerWorker int
	// SLO is every request's latency objective (default 100ms).
	SLO time.Duration
	// Duration is the arrival horizon of virtual time (default 5m;
	// cells run on until every admitted request has its outcome).
	Duration time.Duration
	// Period is the closed loop's control interval (default 1s).
	Period time.Duration
	// BaseRate is the envelope-1 arrival rate in r/s (default 150);
	// PeakMult the envelope's peak multiplier (default 12).
	BaseRate float64
	PeakMult float64
	// StaticWorkers × StaticWindows is the static sweep grid
	// (defaults {2, 3} × {64, 1024}).
	StaticWorkers []int
	StaticWindows []int
	// MinWorkers/MaxWorkers and MinWindow/MaxWindow bound the closed
	// loop (defaults 1/6 and 8/1024). The closed cell starts at
	// MinWorkers with the window at MaxWindow.
	MinWorkers int
	MaxWorkers int
	MinWindow  int
	MaxWindow  int
	Seed       uint64
	// FlightRecorder, when set, is called once per cell and the result
	// attached to that cell's system (cells run in parallel, so they
	// cannot share one recorder); a pure observer (see Fig5Config).
	FlightRecorder func() *trace.Recorder
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Family == "" {
		c.Family = "diurnal"
	}
	if c.Models <= 0 {
		c.Models = 8
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 2
	}
	if c.SLO <= 0 {
		c.SLO = 100 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Minute
	}
	if c.Period <= 0 {
		c.Period = time.Second
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 400
	}
	if c.PeakMult <= 0 {
		c.PeakMult = 12
	}
	if len(c.StaticWorkers) == 0 {
		c.StaticWorkers = []int{2, 3}
	}
	if len(c.StaticWindows) == 0 {
		c.StaticWindows = []int{64, 1024}
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 6
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 8
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 1024
	}
	return c
}

// envelope resolves the family's rate shape.
func (c AutoscaleConfig) envelope() workload.Envelope {
	switch c.Family {
	case "flash":
		return workload.FlashCrowd(1, workload.Spike{
			Start: c.Duration * 4 / 10,
			Ramp:  c.Duration * 8 / 100,
			Hold:  c.Duration * 12 / 100,
			Mult:  c.PeakMult,
		})
	default:
		// Sharpness 6: a short rush hour over a long quiet baseline —
		// the regime where a static provision must choose between
		// paying for the peak all day and violating through it.
		return workload.Diurnal(c.Duration, 1, c.PeakMult, 6)
	}
}

// AutoscaleCell is one configuration's row.
type AutoscaleCell struct {
	Name string
	// StartWorkers/PeakWorkers bracket the cell's worker count over
	// the run (equal for static cells).
	StartWorkers int
	PeakWorkers  int
	// StartWindow/FinalWindow bracket the admission window (equal for
	// static cells; 0 = unbounded).
	StartWindow int
	FinalWindow int
	Arrivals    uint64
	// Shed counts arrivals refused at the admission window; Violations
	// is the end-to-end total: shed + failed + over-SLO responses.
	Shed          uint64
	Violations    uint64
	ViolationRate float64
	P99           time.Duration
	// GPUSeconds integrates active workers × GPUs over the cell's full
	// virtual run — the resource bill adaptation is judged against.
	GPUSeconds float64
}

// AutoscaleResult is the sweep comparison.
type AutoscaleResult struct {
	Config AutoscaleConfig
	// Cells lists the static grid in sweep order, then the closed loop
	// last.
	Cells []AutoscaleCell
}

// Closed returns the closed-loop cell.
func (r *AutoscaleResult) Closed() AutoscaleCell { return r.Cells[len(r.Cells)-1] }

// Static returns the static cells.
func (r *AutoscaleResult) Static() []AutoscaleCell { return r.Cells[:len(r.Cells)-1] }

type ascCellSpec struct {
	name    string
	workers int
	window  int
	closed  bool
}

// RunAutoscale runs the sweep: the arrival schedule and model picks
// are drawn once from the seed, then every cell replays them.
func RunAutoscale(cfg AutoscaleConfig) *AutoscaleResult {
	cfg = cfg.withDefaults()
	src := rng.NewSource(cfg.Seed)
	arrivals := workload.ArrivalSchedule(src.Stream("autoscale.arrivals"),
		cfg.BaseRate, cfg.PeakMult, cfg.envelope(), cfg.Duration)
	pick := src.Stream("autoscale.models")
	picks := make([]int, len(arrivals))
	for i := range picks {
		picks[i] = pick.Intn(cfg.Models)
	}

	var specs []ascCellSpec
	for _, w := range cfg.StaticWorkers {
		for _, win := range cfg.StaticWindows {
			specs = append(specs, ascCellSpec{
				name:    fmt.Sprintf("static w=%d win=%d", w, win),
				workers: w,
				window:  win,
			})
		}
	}
	specs = append(specs, ascCellSpec{name: "closed-loop", workers: cfg.MinWorkers, closed: true})

	return &AutoscaleResult{Config: cfg, Cells: runner.Map(specs, func(spec ascCellSpec) AutoscaleCell {
		return runAutoscaleCell(cfg, arrivals, picks, spec)
	})}
}

func runAutoscaleCell(cfg AutoscaleConfig, arrivals []time.Duration, picks []int, spec ascCellSpec) AutoscaleCell {
	sys, err := clockwork.New(clockwork.Config{
		Workers:         spec.workers,
		GPUsPerWorker:   cfg.GPUsPerWorker,
		Seed:            cfg.Seed,
		MetricsInterval: time.Minute,
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}
	if cfg.FlightRecorder != nil {
		sys.AttachFlightRecorder(cfg.FlightRecorder())
	}
	names := registerScaleModels(sys, cfg.Models)

	window := spec.window
	startWindow := window
	if spec.closed {
		window = cfg.MaxWindow
		startWindow = window
	}

	// Client-side admission: the sim equivalent of the serve layer's
	// window. seen counts every arrival, admitted the submitted subset.
	var seen, admitted, finished int
	var shed, shedPeriod uint64
	inflight := 0

	// GPU-seconds integral: worker-seconds accumulated at every
	// membership change, folded with the GPU geometry at the end.
	active := spec.workers
	peak := active
	lastAt := time.Duration(0)
	workerSec := 0.0
	account := func() {
		now := sys.Now()
		workerSec += float64(active) * (now - lastAt).Seconds()
		lastAt = now
	}

	for i, at := range arrivals {
		model := names[picks[i]]
		sys.After(at, func() {
			seen++
			if window > 0 && inflight >= window {
				shed++
				shedPeriod++
				return
			}
			inflight++
			admitted++
			if _, err := sys.SubmitRequest(clockwork.Request{Model: model, SLO: cfg.SLO},
				func(clockwork.Result) { inflight--; finished++ }); err != nil {
				panic("experiments: " + err.Error())
			}
		})
	}

	if spec.closed {
		// The same signal → decision → actuator path the daemon runs,
		// evaluated at virtual instants instead of wall ticks. The
		// experiment shortens the hysteresis to one period: a spike is
		// short, and the cooldown still spaces worker actions out.
		ctl := autoscale.New(autoscale.Config{
			Period:      cfg.Period,
			MinWindow:   cfg.MinWindow,
			MaxWindow:   cfg.MaxWindow,
			MinWorkers:  cfg.MinWorkers,
			MaxWorkers:  cfg.MaxWorkers,
			GrowSustain: 1, WorkerSustain: 1, Cooldown: 1,
		})
		var tick func()
		tick = func() {
			rs := sys.DrainRecentStats()
			var demand time.Duration
			gpus := 0
			for _, sd := range sys.DemandSnapshot() {
				demand += sd.Demand
				gpus += sd.SchedulableGPUs
			}
			d := ctl.Evaluate(autoscale.Signals{
				Completed:       rs.Completed,
				Violations:      rs.Violations,
				Shed:            shedPeriod,
				P99:             rs.P99,
				SLO:             rs.MinSLO,
				Demand:          demand,
				SchedulableGPUs: gpus,
				ActiveWorkers:   sys.ActiveWorkers(),
				Window:          window,
			})
			shedPeriod = 0
			window = d.Window
			for k := 0; k < d.AddWorkers; k++ {
				account()
				sys.AddWorker()
				active++
				if active > peak {
					peak = active
				}
			}
			if d.DrainWorker {
				if id := highestActiveWorker(sys); id >= 0 && sys.DrainWorker(id) == nil {
					account()
					active--
				}
			}
			if seen < len(arrivals) || finished < admitted {
				sys.After(cfg.Period, tick)
			}
		}
		sys.After(cfg.Period, tick)
	}

	for seen < len(arrivals) || finished < admitted {
		sys.RunFor(time.Second)
	}
	account()

	sum := sys.Summary()
	cell := AutoscaleCell{
		Name:         spec.name,
		StartWorkers: spec.workers,
		PeakWorkers:  peak,
		StartWindow:  startWindow,
		FinalWindow:  window,
		Arrivals:     uint64(len(arrivals)),
		Shed:         shed,
		Violations:   shed + sum.Failed + sum.SLOMisses,
		P99:          sum.P99,
		GPUSeconds:   workerSec * float64(cfg.GPUsPerWorker),
	}
	if cell.Arrivals > 0 {
		cell.ViolationRate = float64(cell.Violations) / float64(cell.Arrivals)
	}
	return cell
}

// highestActiveWorker returns the largest worker ID still active, or
// -1 — the deterministic drain-target convention the serve layer's
// actuator shares.
func highestActiveWorker(sys *clockwork.System) int {
	for id := sys.Workers() - 1; id >= 0; id-- {
		if st, err := sys.WorkerStateOf(id); err == nil && st == clockwork.WorkerActive {
			return id
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (r *AutoscaleResult) String() string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "Closed-loop autoscaling — %s load, base %.0f r/s ×%.0f peak over %v, %d models, SLO %v, control period %v\n",
		c.Family, c.BaseRate, c.PeakMult, c.Duration, c.Models, c.SLO, c.Period)
	rows := make([][]string, 0, len(r.Cells))
	for _, cell := range r.Cells {
		rows = append(rows, []string{
			cell.Name,
			fmt.Sprintf("%d→%d", cell.StartWorkers, cell.PeakWorkers),
			fmt.Sprintf("%d→%d", cell.StartWindow, cell.FinalWindow),
			fmt.Sprintf("%d", cell.Arrivals),
			fmt.Sprintf("%d", cell.Shed),
			fmt.Sprintf("%d", cell.Violations),
			fmt.Sprintf("%.3f%%", 100*cell.ViolationRate),
			fmtMS(cell.P99),
			fmt.Sprintf("%.0f", cell.GPUSeconds),
		})
	}
	b.WriteString(table([]string{"cell", "workers", "window", "arrivals", "shed", "violations", "viol rate", "p99", "gpu-sec"}, rows))
	return b.String()
}
