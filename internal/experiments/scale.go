package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/runner"
	"clockwork/trace"
)

// ScaleConfig parameterises the control-plane scale scenario: one
// Zipf-skewed open-loop workload driven at ≥16k model instances and
// ≥1M requests, replayed identically over different shard counts so
// the rows isolate what partitioning the control plane changes —
// client-observed throughput, the SLO-violation rate, and how evenly
// ownership spreads. The workload streams are cluster-independent, so
// every cell sees the same arrival instants and model choices.
type ScaleConfig struct {
	// Shards lists the cells to compare (default 1, 4, 16).
	Shards []int
	// Models is the instance count (default 16384 — zoo varieties
	// cycled with #copy suffixes).
	Models int
	// Requests is the total submission count per cell (default
	// 1,000,000).
	Requests int
	// Rate is the aggregate Poisson arrival rate in r/s (default
	// 12,000 — ≈2.5× the paper's §6.5 trace, sized for Workers×GPUs).
	Rate float64
	// ZipfExp skews model popularity, weight ∝ 1/(rank+1)^ZipfExp
	// (default 0.9, MAF-like: a hot head with a long cold tail).
	ZipfExp float64
	// Workers and GPUsPerWorker fix the substrate (default 32×2; the
	// worker count must be ≥ the largest shard cell).
	Workers       int
	GPUsPerWorker int
	// SLO is every request's latency objective (default 100ms).
	SLO time.Duration
	// RebalanceInterval paces the cross-shard rebalancer (default 1s).
	RebalanceInterval time.Duration
	Seed              uint64
	// FlightRecorder, when set, is called once per shard cell and the
	// result attached to that cell's system (cells run in parallel
	// with different shard counts, so they cannot share one recorder);
	// a pure observer (see Fig5Config).
	FlightRecorder func() *trace.Recorder
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 16}
	}
	if c.Models <= 0 {
		c.Models = 16384
	}
	if c.Requests <= 0 {
		c.Requests = 1_000_000
	}
	if c.Rate <= 0 {
		c.Rate = 12_000
	}
	if c.ZipfExp <= 0 {
		c.ZipfExp = 0.9
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 2
	}
	if c.SLO <= 0 {
		c.SLO = 100 * time.Millisecond
	}
	if c.RebalanceInterval <= 0 {
		c.RebalanceInterval = time.Second
	}
	return c
}

// ScaleCell is one shard count's row.
type ScaleCell struct {
	Shards     int
	Requests   uint64
	Goodput    float64 // within-SLO responses per second
	Throughput float64 // all responses per second
	// ViolationRate is the fraction of requests that missed their SLO
	// end to end: failed (cancelled/rejected/timed out) plus successes
	// over the objective.
	ViolationRate   float64
	P50, P99, P9999 time.Duration
	Migrations      uint64
	ColdStarts      uint64
	// MinShare/MaxShare are the smallest and largest per-shard slices
	// of completed requests — the ownership-balance signal.
	MinShare, MaxShare uint64
}

// ScaleResult is the shard-count comparison.
type ScaleResult struct {
	Config ScaleConfig
	Cells  []ScaleCell
}

// RunScale runs the scenario: one independent simulation per shard
// count, fanned out across cores, each replaying the identical
// workload.
func RunScale(cfg ScaleConfig) *ScaleResult {
	cfg = cfg.withDefaults()
	return &ScaleResult{Config: cfg, Cells: runner.Map(cfg.Shards, func(shards int) ScaleCell {
		return runScaleCell(cfg, shards)
	})}
}

func runScaleCell(cfg ScaleConfig, shards int) ScaleCell {
	sys, err := clockwork.New(clockwork.Config{
		Workers:           cfg.Workers,
		GPUsPerWorker:     cfg.GPUsPerWorker,
		Shards:            shards,
		RebalanceInterval: cfg.RebalanceInterval,
		Seed:              cfg.Seed,
		MetricsInterval:   time.Minute,
		ZeroLengthInputs:  true, // §6.5's scale methodology
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}
	if cfg.FlightRecorder != nil {
		sys.AttachFlightRecorder(cfg.FlightRecorder())
	}
	names := registerScaleModels(sys, cfg.Models)
	pickModel := zipfPicker(cfg.Models, cfg.ZipfExp, names)

	// The workload streams hang off the scenario seed alone, so every
	// cell draws the identical arrival/model sequence.
	src := rng.NewSource(cfg.Seed)
	arrive := src.Stream("scale.arrivals")
	pick := src.Stream("scale.models")
	mean := float64(time.Second) / cfg.Rate

	submitted, done := 0, 0
	var step func()
	step = func() {
		if _, err := sys.SubmitRequest(clockwork.Request{Model: pickModel(pick), SLO: cfg.SLO},
			func(clockwork.Result) { done++ }); err != nil {
			panic("experiments: " + err.Error())
		}
		submitted++
		if submitted >= cfg.Requests {
			return
		}
		sys.After(time.Duration(arrive.Exp(mean)), step)
	}
	sys.After(time.Duration(arrive.Exp(mean)), step)

	// Run until every submission has an outcome (arrivals stop by
	// themselves once the request budget is spent).
	for done < cfg.Requests {
		sys.RunFor(time.Second)
	}

	sum2 := sys.Summary()
	elapsed := sys.Now().Seconds()
	cell := ScaleCell{
		Shards:     shards,
		Requests:   sum2.Requests,
		P50:        sum2.P50,
		P99:        sum2.P99,
		P9999:      sum2.P9999,
		Migrations: sys.Migrations(),
		ColdStarts: sum2.ColdStarts,
	}
	cell.Goodput = sum2.GoodputMean
	if elapsed > 0 {
		cell.Throughput = float64(sum2.Requests) / elapsed
	}
	if sum2.Requests > 0 {
		cell.ViolationRate = float64(sum2.Failed+sum2.SLOMisses) / float64(sum2.Requests)
	}
	for i := 0; i < sys.ShardCount(); i++ {
		st, _ := sys.ShardStats(i)
		if i == 0 || st.Requests < cell.MinShare {
			cell.MinShare = st.Requests
		}
		if st.Requests > cell.MaxShare {
			cell.MaxShare = st.Requests
		}
	}
	return cell
}

// registerScaleModels registers n instances named "<zoo>#<copy>",
// cycling the zoo varieties — the scenario's and its benchmark's
// shared model population (they must measure the same workload).
func registerScaleModels(sys *clockwork.System, n int) []string {
	zoo := modelzoo.All()
	names := make([]string, n)
	for i := range names {
		m := zoo[i%len(zoo)]
		names[i] = fmt.Sprintf("%s#%d", m.Name, i/len(zoo))
		if err := sys.RegisterModel(names[i], m.Name); err != nil {
			panic("experiments: " + err.Error())
		}
	}
	return names
}

// zipfPicker precomputes the Zipf(exp) CDF over n ranks and returns a
// sampler mapping one stream draw to a model name.
func zipfPicker(n int, exp float64, names []string) func(*rng.Stream) string {
	cdf := make([]float64, n)
	sum := 0.0
	for i := range cdf {
		sum += 1 / math.Pow(float64(i+1), exp)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return func(s *rng.Stream) string {
		idx := sort.SearchFloat64s(cdf, s.Float64())
		if idx >= len(names) {
			idx = len(names) - 1
		}
		return names[idx]
	}
}

// String implements fmt.Stringer.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Control-plane scale — %d requests, %d models, %d workers × %d GPUs, %.0f r/s, SLO %v\n",
		r.Config.Requests, r.Config.Models, r.Config.Workers, r.Config.GPUsPerWorker,
		r.Config.Rate, r.Config.SLO)
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Shards),
			fmt.Sprintf("%d", c.Requests),
			fmt.Sprintf("%.0f", c.Throughput),
			fmt.Sprintf("%.0f", c.Goodput),
			fmt.Sprintf("%.3f%%", 100*c.ViolationRate),
			fmtMS(c.P50), fmtMS(c.P99), fmtMS(c.P9999),
			fmt.Sprintf("%d", c.ColdStarts),
			fmt.Sprintf("%d", c.Migrations),
			fmt.Sprintf("%d/%d", c.MinShare, c.MaxShare),
		})
	}
	b.WriteString(table([]string{"shards", "requests", "t'put r/s", "goodput r/s", "violations", "p50", "p99", "p99.99", "cold", "migrations", "share min/max"}, rows))
	return b.String()
}
