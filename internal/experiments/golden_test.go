package experiments

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"
)

// Golden output hashes for fig2b/fig5/fig8 at fixed test-scale
// configs, captured on the pre-shard control plane (PR 2's single
// centralized controller). A Shards=1 system must reproduce these
// byte-for-byte: the sharded control plane degenerates to exactly the
// old code path when unsharded (one controller, IDStart 0 / IDStride
// 1, no rebalancer armed), and these hashes prove it — any divergence
// in scheduling order, ID assignment, RNG stream consumption or
// output formatting trips them.
//
// Regenerating (only after an INTENDED behaviour change — never to
// paper over an unexplained diff): print the three String() outputs
// below, hash with sha256, and update the constants, noting the cause
// in the commit message.
const (
	goldenFig2b = "4500b0ff59d7f99ce7f1894789fc7b0a1453a959107113520f1b331df087afa6"
	goldenFig5  = "496d464d0454315790a9082975b4ae92822636cf1839d59328465d3c066eb032"
	goldenFig8  = "7df88821a6093fb491f8c418b1a12d4f9a580566cd39203e255c6fcb2d878fd9"
)

func sha(s string) string { return fmt.Sprintf("%x", sha256.Sum256([]byte(s))) }

func TestGoldenFig2bPreShardBitIdentical(t *testing.T) {
	t.Parallel()
	out := RunFig2b(Fig2bConfig{Duration: 10 * time.Second, Seed: 1}).String()
	if got := sha(out); got != goldenFig2b {
		t.Fatalf("fig2b output diverged from the pre-shard golden\n got %s\nwant %s\noutput:\n%s", got, goldenFig2b, out)
	}
}

func TestGoldenFig5PreShardBitIdentical(t *testing.T) {
	t.Parallel()
	out := RunFig5(Fig5Config{
		SLOs:     []time.Duration{25 * time.Millisecond, 500 * time.Millisecond},
		Duration: 6 * time.Second,
		Warmup:   2 * time.Second,
		Seed:     1,
	}).String()
	if got := sha(out); got != goldenFig5 {
		t.Fatalf("fig5 output diverged from the pre-shard golden\n got %s\nwant %s\noutput:\n%s", got, goldenFig5, out)
	}
}

func TestGoldenFig8PreShardBitIdentical(t *testing.T) {
	t.Parallel()
	out := RunFig8(Fig8Config{
		Workers: 1, GPUsPerWorker: 2,
		Copies: 2, Functions: 400, Minutes: 6, Seed: 1,
	}).String()
	if got := sha(out); got != goldenFig8 {
		t.Fatalf("fig8 output diverged from the pre-shard golden\n got %s\nwant %s\noutput:\n%s", got, goldenFig8, out)
	}
}

// goldenScale pins the PR-3 control-plane scale scenario at a small
// fixed config: shard-count sweep over an identical replayed workload.
// Sharding the control plane is pure partitioning — any drift in shard
// routing, ID assignment or rebalance cadence shows up here first.
const goldenScale = "5ce88e55f70e91b2c16abfd46ffb441250681fd7c59a40bc0b87a52ec0b38c39"

func TestGoldenScaleShardSweepBitIdentical(t *testing.T) {
	t.Parallel()
	out := RunScale(ScaleConfig{
		Shards:            []int{1, 2, 4},
		Models:            128,
		Requests:          8_000,
		Rate:              3_000,
		Workers:           8,
		GPUsPerWorker:     2,
		Seed:              7,
		RebalanceInterval: 500 * time.Millisecond,
	}).String()
	if got := sha(out); got != goldenScale {
		t.Fatalf("scale output diverged from the golden\n got %s\nwant %s\noutput:\n%s", got, goldenScale, out)
	}
}
