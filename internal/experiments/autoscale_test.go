package experiments

import (
	"testing"
)

// Golden output hashes for the autoscale sweep at its default config
// (seed 42, 5-minute horizon, base 400 r/s ×12 peak, statics {2,3} ×
// {64,1024}). The closed loop's decisions are a pure function of the
// replayed arrival schedule, so the whole sweep — every cell's shed
// counts, violation totals and GPU-second bills — must reproduce
// byte-for-byte. Regenerate only after an INTENDED policy or scenario
// change, noting the cause in the commit message.
const (
	goldenAutoscaleDiurnal = "366d31dc7daf393004a0a9b4945ee36da17a9291d8e13e25d92f781afe200e9a"
	goldenAutoscaleFlash   = "156070cca7986b706790adcd7459ef63a57a23a45fa57cbcb65f8f07420212b1"
)

// checkClosedDominates asserts the scenario's headline claim: the
// closed loop strictly beats EVERY static cell on end-to-end SLO
// violations while holding strictly fewer GPU-seconds — adaptation
// Pareto-dominates every fixed point of the sweep.
func checkClosedDominates(t *testing.T, r *AutoscaleResult) {
	t.Helper()
	closed := r.Closed()
	for _, s := range r.Static() {
		if closed.Violations >= s.Violations {
			t.Errorf("%s family: closed loop (%d violations) does not beat %q (%d)",
				r.Config.Family, closed.Violations, s.Name, s.Violations)
		}
		if closed.GPUSeconds >= s.GPUSeconds {
			t.Errorf("%s family: closed loop (%.0f gpu-sec) costs no less than %q (%.0f)",
				r.Config.Family, closed.GPUSeconds, s.Name, s.GPUSeconds)
		}
	}
	if closed.PeakWorkers <= closed.StartWorkers {
		t.Errorf("%s family: closed loop never scaled up (workers %d→%d)",
			r.Config.Family, closed.StartWorkers, closed.PeakWorkers)
	}
}

func TestAutoscaleDiurnalClosedLoopDominates(t *testing.T) {
	t.Parallel()
	r := RunAutoscale(AutoscaleConfig{Family: "diurnal", Seed: 42})
	checkClosedDominates(t, r)
	out := r.String()
	if got := sha(out); got != goldenAutoscaleDiurnal {
		t.Errorf("diurnal sweep diverged from golden\n got %s\nwant %s\noutput:\n%s", got, goldenAutoscaleDiurnal, out)
	}
}

func TestAutoscaleFlashCrowdClosedLoopDominates(t *testing.T) {
	t.Parallel()
	r := RunAutoscale(AutoscaleConfig{Family: "flash", Seed: 42})
	checkClosedDominates(t, r)
	out := r.String()
	if got := sha(out); got != goldenAutoscaleFlash {
		t.Errorf("flash sweep diverged from golden\n got %s\nwant %s\noutput:\n%s", got, goldenAutoscaleFlash, out)
	}
}
