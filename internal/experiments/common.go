package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/core"
)

// System names accepted by the comparison experiments. They are policy
// registry names; see clockwork.Policies.
const (
	SystemClockwork = string(clockwork.PolicyClockwork)
	SystemClipper   = string(clockwork.PolicyClipper)
	SystemINFaaS    = string(clockwork.PolicyINFaaS)
)

// Systems lists the three systems of Fig 5.
var Systems = []string{SystemClockwork, SystemClipper, SystemINFaaS}

// newSystemCluster builds a cluster running the named system's policy
// through the public API (the registry resolves the scheduler and the
// baseline switches); the returned *core.Cluster is the experiment
// harness's telemetry escape hatch into the same System.
func newSystemCluster(system string, cfg clockwork.Config) *core.Cluster {
	cfg.Policy = clockwork.Policy(system)
	sys, err := clockwork.New(cfg)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return sys.Cluster()
}

// fmtMS renders a duration as milliseconds with two decimals.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// table renders rows of columns with aligned padding.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
