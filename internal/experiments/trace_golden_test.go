package experiments

// The flight recorder's pure-observer contract at experiment scale:
// attaching a recorder at sample rate 1.0 to the golden scenarios must
// leave every output hash bit-identical to the untraced run. Fig2b has
// no control plane (it drives a bare GPU device), so there is nothing
// to attach there; these tests cover the cluster-backed goldens —
// fig5, fig8, the shard-scale sweep, and the autoscale closed loop —
// and then prove the recorder actually captured the runs it observed
// (a disabled recorder would also leave hashes unchanged, vacuously).

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"clockwork/trace"
)

// recorderTap hands each parallel cell its own rate-1.0 recorder and
// keeps them all for post-run inspection.
type recorderTap struct {
	mu   sync.Mutex
	recs []*trace.Recorder
}

func (tap *recorderTap) factory() *trace.Recorder {
	r := trace.New(trace.Options{SampleRate: 1, Enabled: true})
	tap.mu.Lock()
	tap.recs = append(tap.recs, r)
	tap.mu.Unlock()
	return r
}

// finalized sums finalized lifecycles across every cell's recorder.
// The engines are quiescent once the Run* call returns, so Aggregate
// is safe here.
func (tap *recorderTap) finalized() uint64 {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	var n uint64
	for _, r := range tap.recs {
		n += r.Aggregate().Stats.Finalized
	}
	return n
}

func TestGoldenFig5TracedBitIdentical(t *testing.T) {
	t.Parallel()
	tap := &recorderTap{}
	out := RunFig5(Fig5Config{
		SLOs:           []time.Duration{25 * time.Millisecond, 500 * time.Millisecond},
		Duration:       6 * time.Second,
		Warmup:         2 * time.Second,
		Seed:           1,
		FlightRecorder: tap.factory,
	}).String()
	if got := sha(out); got != goldenFig5 {
		t.Errorf("fig5 with rate-1.0 tracing diverged from the golden — the recorder is not a pure observer\n got %s\nwant %s", got, goldenFig5)
	}
	if n := tap.finalized(); n == 0 {
		t.Fatalf("no lifecycles recorded across %d cells — the observer observed nothing", len(tap.recs))
	}
}

func TestGoldenFig8TracedBitIdentical(t *testing.T) {
	t.Parallel()
	tap := &recorderTap{}
	out := RunFig8(Fig8Config{
		Workers: 1, GPUsPerWorker: 2,
		Copies: 2, Functions: 400, Minutes: 6, Seed: 1,
		FlightRecorder: tap.factory,
	}).String()
	if got := sha(out); got != goldenFig8 {
		t.Errorf("fig8 with rate-1.0 tracing diverged from the golden — the recorder is not a pure observer\n got %s\nwant %s", got, goldenFig8)
	}
	if tap.finalized() == 0 {
		t.Fatal("no lifecycles recorded")
	}

	// The same run doubles as the scenario trace dump: the snapshot
	// must export as well-formed Perfetto JSON carrying the replayed
	// lifecycles.
	var buf bytes.Buffer
	if err := trace.WritePerfetto(&buf, tap.recs[0].Snapshot()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var dump struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	requests := 0
	for _, ev := range dump.TraceEvents {
		if ev.Args["kind"] == "request" {
			requests++
		}
	}
	if requests == 0 {
		t.Fatalf("exported trace has no request spans (%d events)", len(dump.TraceEvents))
	}
}

func TestGoldenScaleTracedBitIdentical(t *testing.T) {
	t.Parallel()
	tap := &recorderTap{}
	out := RunScale(ScaleConfig{
		Shards:            []int{1, 2, 4},
		Models:            128,
		Requests:          8_000,
		Rate:              3_000,
		Workers:           8,
		GPUsPerWorker:     2,
		Seed:              7,
		RebalanceInterval: 500 * time.Millisecond,
		FlightRecorder:    tap.factory,
	}).String()
	if got := sha(out); got != goldenScale {
		t.Errorf("scale sweep with rate-1.0 tracing diverged from the golden — the recorder is not a pure observer\n got %s\nwant %s", got, goldenScale)
	}
	if tap.finalized() == 0 {
		t.Fatal("no lifecycles recorded")
	}
}

func TestAutoscaleTracedBitIdentical(t *testing.T) {
	t.Parallel()
	// The full 5-minute-horizon sweep is the expensive test in this
	// package; prove the observer property on a shortened horizon by
	// running the identical config twice, untraced vs traced, and
	// requiring byte-equal sweeps.
	cfg := AutoscaleConfig{Family: "flash", Seed: 42, Duration: 90 * time.Second}
	plain := RunAutoscale(cfg).String()
	tap := &recorderTap{}
	cfg.FlightRecorder = tap.factory
	traced := RunAutoscale(cfg).String()
	if plain != traced {
		t.Errorf("autoscale sweep changed under rate-1.0 tracing\nuntraced:\n%s\ntraced:\n%s", plain, traced)
	}
	if tap.finalized() == 0 {
		t.Fatal("no lifecycles recorded")
	}
}
