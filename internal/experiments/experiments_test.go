package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig2aPredictability(t *testing.T) {
	t.Parallel()
	r := RunFig2a(Fig2aConfig{Inferences: 50_000, Seed: 1})
	if r.Median < 2700*time.Microsecond || r.Median > 2900*time.Microsecond {
		t.Fatalf("median = %v, want ≈2.77ms", r.Median)
	}
	// Paper: p99.99 within 0.03% of the median.
	if r.RelSpread9999 > 0.0006 {
		t.Fatalf("p99.99 spread %.4f%% too wide", 100*r.RelSpread9999)
	}
	if !strings.Contains(r.String(), "Fig 2a") {
		t.Fatal("missing header")
	}
}

func TestFig2bShape(t *testing.T) {
	t.Parallel()
	r := RunFig2b(Fig2bConfig{Duration: 10 * time.Second, Seed: 1})
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	gain := last.Throughput/first.Throughput - 1
	if gain < 0.08 || gain > 0.40 {
		t.Fatalf("throughput gain at conc 16 = %.0f%%, want ≈25%%", gain*100)
	}
	if last.Max < 20*first.P50 {
		t.Fatalf("conc-16 max latency %v should dwarf serial median %v", last.Max, first.P50)
	}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5ClockworkBeatsBaselinesAtTightSLO(t *testing.T) {
	t.Parallel()
	r := RunFig5(Fig5Config{
		SLOs:     []time.Duration{25 * time.Millisecond, 500 * time.Millisecond},
		Duration: 6 * time.Second,
		Warmup:   2 * time.Second,
		Seed:     1,
	})
	good := map[string]map[time.Duration]float64{}
	for _, c := range r.Cells {
		if good[c.System] == nil {
			good[c.System] = map[time.Duration]float64{}
		}
		good[c.System][c.SLO] = c.Goodput
	}
	tight := 25 * time.Millisecond
	loose := 500 * time.Millisecond
	// At a tight SLO, Clockwork must dominate both baselines (Fig 5:
	// baseline goodput collapses below 100ms).
	if good[SystemClockwork][tight] < 2*good[SystemClipper][tight] {
		t.Fatalf("clockwork %.0f vs clipper %.0f at 25ms — no collapse",
			good[SystemClockwork][tight], good[SystemClipper][tight])
	}
	if good[SystemClockwork][tight] < 1.5*good[SystemINFaaS][tight] {
		t.Fatalf("clockwork %.0f vs infaas %.0f at 25ms", good[SystemClockwork][tight], good[SystemINFaaS][tight])
	}
	// At 500ms, INFaaS-like serving is competitive (within 2×).
	if good[SystemINFaaS][loose] < good[SystemClockwork][loose]/2 {
		t.Fatalf("infaas %.0f should be competitive with clockwork %.0f at 500ms",
			good[SystemINFaaS][loose], good[SystemClockwork][loose])
	}
	if !strings.Contains(r.String(), "Fig 5") {
		t.Fatal("missing header")
	}
}

func TestFig6ShiftingBottleneck(t *testing.T) {
	t.Parallel()
	r := RunFig6(Fig6Config{
		TotalModels:      400,
		ActivationPeriod: time.Second,
		MajorRate:        1000,
		MinorRate:        200,
		PreRun:           time.Minute,
		Duration:         8 * time.Minute,
		Seed:             1,
		// Capacity ≈100 ResNet50s so the swap regime starts early.
		PageCacheBytes: 100 * 7 * 16 * 1024 * 1024,
	})
	// The SLO must never be violated (Fig 6b: max latency ≤ 100ms).
	if r.MaxLatency > 100*time.Millisecond {
		t.Fatalf("max latency %v exceeded the SLO", r.MaxLatency)
	}
	// Cold starts must dominate late in the run (Fig 6c).
	last := r.Minutes[len(r.Minutes)-1]
	if last.ColdStartFrac < 0.5 {
		t.Fatalf("late cold-start fraction = %.2f, want most requests cold", last.ColdStartFrac)
	}
	// PCIe becomes the bottleneck: utilisation near the end should be
	// high (Fig 6d).
	if last.PCIUtil < 0.5 {
		t.Fatalf("late PCIe utilisation = %.2f, want high", last.PCIUtil)
	}
	// Minor workload keeps serving throughout (Fig 6a).
	if last.MinorGoodput < 100 {
		t.Fatalf("minor goodput fell to %.0f r/s", last.MinorGoodput)
	}
	if !strings.Contains(r.String(), "Fig 6") {
		t.Fatal("missing header")
	}
}

func TestFig7SatisfactionRises(t *testing.T) {
	t.Parallel()
	r := RunFig7(Fig7Config{
		Workers: 2, Models: 4, TotalRate: 400,
		Epoch: 4 * time.Second, Seed: 1,
	})
	if len(r.Rows) != len(SLOMultipliers) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Satisfaction at multiplier 1.0 is near zero (impossible), and at
	// large multipliers near one.
	if r.Rows[0].Satisfaction > 0.2 {
		t.Fatalf("satisfaction at 1.0× = %.2f, want ≈0", r.Rows[0].Satisfaction)
	}
	lastRow := r.Rows[len(r.Rows)-1]
	if lastRow.Satisfaction < 0.95 {
		t.Fatalf("satisfaction at 86.5× = %.2f, want ≈1", lastRow.Satisfaction)
	}
	// Monotone-ish rise: the max over the second half beats the first
	// half's max.
	firstMax, secondMax := 0.0, 0.0
	for i, row := range r.Rows {
		if i < len(r.Rows)/2 {
			if row.Satisfaction > firstMax {
				firstMax = row.Satisfaction
			}
		} else if row.Satisfaction > secondMax {
			secondMax = row.Satisfaction
		}
	}
	if secondMax < firstMax {
		t.Fatal("satisfaction did not improve with looser SLOs")
	}
	if !strings.Contains(r.String(), "Fig 7") {
		t.Fatal("missing header")
	}
}

func TestFig7IsolationLSUnaffectedByBC(t *testing.T) {
	t.Parallel()
	mult := []float64{11.4, 25.6, 86.5}
	base := RunFig7Isolation(Fig7IsoConfig{
		Workers: 3, LSModels: 3, LSRate: 100,
		BCModels: 0, Epoch: 4 * time.Second, Multipliers: mult, Seed: 1,
	})
	shared := RunFig7Isolation(Fig7IsoConfig{
		Workers: 3, LSModels: 3, LSRate: 100,
		BCModels: 6, BCConc: 8, Epoch: 4 * time.Second, Multipliers: mult, Seed: 1,
	})
	for i := range mult {
		if shared.Rows[i].LSSatisfaction < base.Rows[i].LSSatisfaction-0.10 {
			t.Fatalf("mult %.1f: LS satisfaction dropped from %.2f to %.2f with BC load",
				mult[i], base.Rows[i].LSSatisfaction, shared.Rows[i].LSSatisfaction)
		}
	}
	// BC clients make progress when there is idle capacity.
	var bcTotal float64
	for _, row := range shared.Rows {
		bcTotal += row.BCThroughput
	}
	if bcTotal == 0 {
		t.Fatal("BC clients starved entirely")
	}
	if !strings.Contains(shared.String(), "Fig 7") {
		t.Fatal("missing header")
	}
}

func TestFig8TraceReplay(t *testing.T) {
	t.Parallel()
	r := RunFig8(Fig8Config{
		Workers: 1, GPUsPerWorker: 2,
		Copies: 2, Functions: 400, Minutes: 6, Seed: 1,
	})
	if r.Requests == 0 {
		t.Fatal("no requests replayed")
	}
	// Goodput ≈ throughput (Fig 8a: 4,860.5 of 4,860.6 r/s).
	if r.Goodput < 0.98*r.Throughput {
		t.Fatalf("goodput %.1f ≪ throughput %.1f", r.Goodput, r.Throughput)
	}
	// No response may exceed the SLO by more than the return-path
	// margin (paper: "No request exceeded 100ms").
	if r.MaxLatency > r.Config.SLO {
		t.Fatalf("max latency %v exceeded SLO %v", r.MaxLatency, r.Config.SLO)
	}
	if len(r.Minutes) != 6 {
		t.Fatalf("minutes = %d", len(r.Minutes))
	}
	if !strings.Contains(r.String(), "Fig 8") {
		t.Fatal("missing header")
	}
}

func TestFig9PredictionErrorsSmall(t *testing.T) {
	t.Parallel()
	r := RunFig9(Fig8Config{
		Workers: 1, GPUsPerWorker: 2,
		Copies: 2, Functions: 300, Minutes: 5, Seed: 1,
	})
	if r.InferPredictions == 0 || r.LoadPredicted == 0 {
		t.Fatal("no predictions tracked")
	}
	// Fig 9: INFER duration error p99 ≈ 250µs — ours should be of that
	// order (well under 1ms) since noise is ~0.01%.
	if p := r.InferUnder.Percentile(99); p > time.Millisecond {
		t.Fatalf("INFER underprediction p99 = %v", p)
	}
	if p := r.InferOver.Percentile(99); p > time.Millisecond {
		t.Fatalf("INFER overprediction p99 = %v", p)
	}
	if !strings.Contains(r.String(), "Fig 9") {
		t.Fatal("missing header")
	}
}

func TestSLOScaleTable(t *testing.T) {
	t.Parallel()
	r := RunSLOScale(SLOScaleConfig{
		Workers: 2, GPUsPerWorker: 2,
		Functions: 400, Minutes: 4, Copies: 2, Seed: 1,
	})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	hundred, twentyFive := r.Rows[0], r.Rows[1]
	// Both SLOs sustain nearly the same goodput (§6.5: 6,174 vs 6,060).
	if twentyFive.Goodput < 0.9*hundred.Goodput {
		t.Fatalf("25ms goodput %.0f collapsed vs 100ms %.0f", twentyFive.Goodput, hundred.Goodput)
	}
	// The tighter SLO rejects more requests in advance.
	if twentyFive.TimedOut < hundred.TimedOut {
		t.Fatalf("expected more timeouts at 25ms (%d) than 100ms (%d)", twentyFive.TimedOut, hundred.TimedOut)
	}
	if !strings.Contains(r.String(), "6.5") {
		t.Fatal("missing header")
	}
}
