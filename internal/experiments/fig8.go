package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/runner"
	"clockwork/internal/simclock"
	"clockwork/internal/telemetry"
	"clockwork/internal/workload"
	"clockwork/trace"
)

// Fig8Config parameterises the MAF trace replay (§6.5). The paper's
// full-size run is 17,000 functions over 4,026 model instances (61 zoo
// varieties × 66 copies) on 6 workers × 2 GPUs for 8 hours at
// ≈4,860 r/s; the defaults here are a proportionally scaled-down slice
// that preserves the workload mixture (see EXPERIMENTS.md).
type Fig8Config struct {
	Workers       int
	GPUsPerWorker int
	Copies        int // instances per zoo variety (paper: 66)
	Functions     int
	Minutes       int
	RateScale     float64
	SLO           time.Duration
	Seed          uint64
	// ZeroLengthInputs and the remaining knobs support the §6.5 scale
	// table variant.
	ZeroLengthInputs bool
	// FlightRecorder, when set, is called once per run and the result
	// attached to the cluster; a pure observer (see Fig5Config).
	FlightRecorder func() *trace.Recorder
}

func (c Fig8Config) withDefaults() Fig8Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 2
	}
	if c.Copies <= 0 {
		c.Copies = 6
	}
	if c.Functions <= 0 {
		c.Functions = 1800
	}
	if c.Minutes <= 0 {
		c.Minutes = 16
	}
	if c.RateScale <= 0 {
		c.RateScale = 1
	}
	if c.SLO <= 0 {
		c.SLO = 100 * time.Millisecond
	}
	return c
}

// Fig8Minute is one minute of the Fig 8 panels.
type Fig8Minute struct {
	Minute        int
	Throughput    float64
	Goodput       float64
	P50           time.Duration
	P99           time.Duration
	Max           time.Duration
	MeanBatch     float64
	ColdModels    int
	ColdStartRate float64
}

// Fig8Result summarises the replay.
type Fig8Result struct {
	Config Fig8Config

	Requests     uint64
	Throughput   float64 // mean r/s over the run
	Goodput      float64
	Failed       uint64 // rejected / cancelled / timed out
	SLOExceeded  uint64 // successful responses over the SLO
	MaxLatency   time.Duration
	MeanBatch    float64
	ColdRequests float64 // fraction of requests that were cold starts
	Minutes      []Fig8Minute

	// Cluster is kept for follow-on analyses (Fig 9 reads the
	// controller's prediction-error trackers).
	Cluster *core.Cluster
}

// RunFig8 reproduces Fig 8: replaying a Microsoft-Azure-Functions-like
// trace over Clockwork.
func RunFig8(cfg Fig8Config) *Fig8Result {
	cfg = cfg.withDefaults()
	cl := newSystemCluster(SystemClockwork, clockwork.Config{
		Workers:          cfg.Workers,
		GPUsPerWorker:    cfg.GPUsPerWorker,
		Seed:             cfg.Seed,
		MetricsInterval:  time.Minute,
		ZeroLengthInputs: cfg.ZeroLengthInputs,
	})
	if cfg.FlightRecorder != nil {
		cl.SetFlightRecorder(cfg.FlightRecorder())
	}
	// 61+ zoo varieties × Copies instances (§6.5 / Appendix A).
	var names []string
	for _, m := range modelzoo.All() {
		for c := 0; c < cfg.Copies; c++ {
			name := fmt.Sprintf("%s#%d", m.Name, c)
			cl.RegisterModel(name, m)
			names = append(names, name)
		}
	}

	src := rng.NewSource(cfg.Seed)
	trace := workload.SynthesizeMAF(src.Stream("fig8.trace"), workload.MAFConfig{
		Functions: cfg.Functions,
		Minutes:   cfg.Minutes,
		RateScale: cfg.RateScale,
	})
	rp := workload.NewReplayer(cl, src.Stream("fig8.replay"), trace, names, cfg.SLO)
	rp.Start()

	end := simclock.Time(time.Duration(cfg.Minutes) * time.Minute)
	cl.RunUntil(end.Add(2 * cfg.SLO))

	m := cl.Metrics
	res := &Fig8Result{
		Config:      cfg,
		Requests:    cl.Ctl.Stats().Requests,
		Throughput:  float64(m.Throughput.TotalCount()) / (float64(cfg.Minutes) * 60),
		Goodput:     float64(m.Goodput.TotalCount()) / (float64(cfg.Minutes) * 60),
		Failed:      m.Failures.Value(),
		SLOExceeded: m.SLOMisses.Value(),
		MaxLatency:  m.LatencyAll.Max(),
		Cluster:     cl,
	}
	if n := m.Batch.TotalCount(); n > 0 {
		res.MeanBatch = m.Batch.TotalSum() / float64(n)
	}
	if res.Requests > 0 {
		res.ColdRequests = float64(cl.Ctl.Stats().ColdStart) / float64(res.Requests)
	}
	for i := 0; i < cfg.Minutes; i++ {
		row := Fig8Minute{
			Minute:        i,
			Throughput:    m.Throughput.Rate(i),
			Goodput:       m.Goodput.Rate(i),
			MeanBatch:     m.Batch.Mean(i),
			ColdModels:    m.ColdModels(i),
			ColdStartRate: m.ColdStartThroughput.Rate(i),
		}
		if i < len(m.LatencySeries) && m.LatencySeries[i].Count() > 0 {
			h := m.LatencySeries[i]
			row.P50 = h.Percentile(50)
			row.P99 = h.Percentile(99)
			row.Max = h.Max()
		}
		res.Minutes = append(res.Minutes, row)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 — MAF-like trace over Clockwork (%d functions, %d instances, %d min, %d GPUs)\n",
		r.Config.Functions, r.Config.Copies*modelzoo.Count(), r.Config.Minutes,
		r.Config.Workers*r.Config.GPUsPerWorker)
	fmt.Fprintf(&b, "requests=%d throughput=%.1f r/s goodput=%.1f r/s failed=%d overSLO=%d max=%v\n",
		r.Requests, r.Throughput, r.Goodput, r.Failed, r.SLOExceeded, r.MaxLatency)
	fmt.Fprintf(&b, "mean batch=%.2f cold-start requests=%.2f%%\n", r.MeanBatch, 100*r.ColdRequests)
	rows := make([][]string, 0, len(r.Minutes))
	for _, m := range r.Minutes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.Minute),
			fmt.Sprintf("%.0f", m.Throughput),
			fmt.Sprintf("%.0f", m.Goodput),
			fmtMS(m.P50), fmtMS(m.P99), fmtMS(m.Max),
			fmt.Sprintf("%.2f", m.MeanBatch),
			fmt.Sprintf("%d", m.ColdModels),
			fmt.Sprintf("%.1f", m.ColdStartRate),
		})
	}
	b.WriteString(table([]string{"min", "t'put", "goodput", "p50", "p99", "max", "batch", "cold models", "cold r/s"}, rows))
	return b.String()
}

// Fig9Result presents the prediction-error telemetry of a trace replay
// (Fig 9): action-duration and completion-time errors, split into over-
// and underpredictions.
type Fig9Result struct {
	InferOver, InferUnder           *telemetry.Histogram
	LoadOver, LoadUnder             *telemetry.Histogram
	InferCompOver, InferCompUnder   *telemetry.Histogram
	LoadCompOver, LoadCompUnder     *telemetry.Histogram
	InferPredictions, LoadPredicted uint64
}

// RunFig9 runs the Fig 8 workload and extracts Fig 9's prediction-error
// distributions from the controller.
func RunFig9(cfg Fig8Config) *Fig9Result {
	f8 := RunFig8(cfg)
	ctl := f8.Cluster.Ctl
	return &Fig9Result{
		InferOver:        ctl.InferDuration.Over,
		InferUnder:       ctl.InferDuration.Under,
		LoadOver:         ctl.LoadDuration.Over,
		LoadUnder:        ctl.LoadDuration.Under,
		InferCompOver:    ctl.InferCompletion.Over,
		InferCompUnder:   ctl.InferCompletion.Under,
		LoadCompOver:     ctl.LoadCompletion.Over,
		LoadCompUnder:    ctl.LoadCompletion.Under,
		InferPredictions: ctl.InferDuration.Count(),
		LoadPredicted:    ctl.LoadDuration.Count(),
	}
}

// String implements fmt.Stringer.
func (r *Fig9Result) String() string {
	row := func(name string, h *telemetry.Histogram) []string {
		return []string{name,
			fmt.Sprintf("%d", h.Count()),
			h.Percentile(50).String(), h.Percentile(99).String(), h.Max().String()}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 — prediction errors (%d INFER, %d LOAD predictions)\n", r.InferPredictions, r.LoadPredicted)
	b.WriteString(table([]string{"error kind", "n", "p50", "p99", "max"}, [][]string{
		row("INFER duration overpredict", r.InferOver),
		row("INFER duration underpredict", r.InferUnder),
		row("LOAD  duration overpredict", r.LoadOver),
		row("LOAD  duration underpredict", r.LoadUnder),
		row("INFER completion overpredict", r.InferCompOver),
		row("INFER completion underpredict", r.InferCompUnder),
		row("LOAD  completion overpredict", r.LoadCompOver),
		row("LOAD  completion underpredict", r.LoadCompUnder),
	}))
	return b.String()
}

// SLOScaleConfig parameterises the §6.5 "tighter SLOs at larger scale"
// table: 10 workers × 2 GPUs, the trace scaled up 1.5×, zero-length
// inputs, compared at 100ms and 25ms SLOs.
type SLOScaleConfig struct {
	Workers       int
	GPUsPerWorker int
	Functions     int
	Minutes       int
	RateScale     float64
	Copies        int
	SLOs          []time.Duration
	Seed          uint64
}

func (c SLOScaleConfig) withDefaults() SLOScaleConfig {
	if c.Workers <= 0 {
		c.Workers = 10
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 2
	}
	if c.Functions <= 0 {
		c.Functions = 3000
	}
	if c.Minutes <= 0 {
		c.Minutes = 10
	}
	if c.RateScale <= 0 {
		c.RateScale = 1.5
	}
	if c.Copies <= 0 {
		c.Copies = 6
	}
	if len(c.SLOs) == 0 {
		c.SLOs = []time.Duration{100 * time.Millisecond, 25 * time.Millisecond}
	}
	return c
}

// SLOScaleRow is one SLO's row of the §6.5 table.
type SLOScaleRow struct {
	SLO       time.Duration
	Goodput   float64
	MissedSLO uint64 // admitted but exceeded the SLO
	TimedOut  uint64 // rejected/cancelled without executing
	P50       time.Duration
	P9999     time.Duration
	Max       time.Duration
}

// SLOScaleResult is the §6.5 table.
type SLOScaleResult struct {
	Config SLOScaleConfig
	Rows   []SLOScaleRow
}

// RunSLOScale reproduces the §6.5 scale table; each SLO's replay is an
// independent simulation and runs concurrently.
func RunSLOScale(cfg SLOScaleConfig) *SLOScaleResult {
	cfg = cfg.withDefaults()
	return &SLOScaleResult{Config: cfg, Rows: runner.Map(cfg.SLOs, func(slo time.Duration) SLOScaleRow {
		f8 := RunFig8(Fig8Config{
			Workers:          cfg.Workers,
			GPUsPerWorker:    cfg.GPUsPerWorker,
			Copies:           cfg.Copies,
			Functions:        cfg.Functions,
			Minutes:          cfg.Minutes,
			RateScale:        cfg.RateScale,
			SLO:              slo,
			Seed:             cfg.Seed,
			ZeroLengthInputs: true,
		})
		h := f8.Cluster.Metrics.LatencyGood
		return SLOScaleRow{
			SLO:       slo,
			Goodput:   f8.Goodput,
			MissedSLO: f8.SLOExceeded,
			TimedOut:  f8.Failed,
			P50:       h.Percentile(50),
			P9999:     h.Percentile(99.99),
			Max:       f8.MaxLatency,
		}
	})}
}

// String implements fmt.Stringer.
func (r *SLOScaleResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmtMS(row.SLO),
			fmt.Sprintf("%.0f", row.Goodput),
			fmt.Sprintf("%d", row.MissedSLO),
			fmt.Sprintf("%d", row.TimedOut),
			fmtMS(row.P50), fmtMS(row.P9999), fmtMS(row.Max),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "§6.5 table — tighter SLOs at larger scale (%d workers × %d GPUs, trace ×%.1f)\n",
		r.Config.Workers, r.Config.GPUsPerWorker, r.Config.RateScale)
	b.WriteString(table([]string{"slo", "goodput r/s", "missed slo", "timed out", "p50", "p99.99", "max"}, rows))
	return b.String()
}
