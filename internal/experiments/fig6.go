package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
	"clockwork/internal/telemetry"
)

// Fig6Config parameterises the single-worker scale-up experiment (§6.2):
// a Minor workload (one model, steady 200 r/s) runs throughout; from t=0
// the Major workload activates one additional model per ActivationPeriod
// and spreads MajorRate evenly across all active models, driving the
// worker from GPU-bound to PCIe-bound.
type Fig6Config struct {
	TotalModels      int           // Major models (paper: 3,600)
	ActivationPeriod time.Duration // one new model per period (paper: 1s)
	MajorRate        float64       // total Major r/s (paper: 1,000)
	MinorRate        float64       // Minor r/s (paper: 200)
	PreRun           time.Duration // Minor-only lead-in (paper: 15 min)
	Duration         time.Duration // Major phase (paper: 60 min)
	SLO              time.Duration // paper: 100ms
	// PageCacheBytes defaults to 201 ResNet50s' worth (the capacity at
	// which the paper's worker starts swapping, t≈3.5 min).
	PageCacheBytes int64
	Seed           uint64
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.TotalModels <= 0 {
		c.TotalModels = 3600
	}
	if c.ActivationPeriod <= 0 {
		c.ActivationPeriod = time.Second
	}
	if c.MajorRate <= 0 {
		c.MajorRate = 1000
	}
	if c.MinorRate <= 0 {
		c.MinorRate = 200
	}
	if c.PreRun <= 0 {
		c.PreRun = 2 * time.Minute
	}
	if c.Duration <= 0 {
		c.Duration = time.Duration(c.TotalModels)*c.ActivationPeriod + 2*time.Minute
	}
	if c.SLO <= 0 {
		c.SLO = 100 * time.Millisecond
	}
	if c.PageCacheBytes <= 0 {
		pages := int64(modelzoo.ResNet50().Pages(16 * 1024 * 1024))
		c.PageCacheBytes = 201 * pages * 16 * 1024 * 1024
	}
	return c
}

// Fig6Minute is one minute of the experiment's five panels.
type Fig6Minute struct {
	Minute        int
	MinorGoodput  float64
	MajorGoodput  float64
	MinorP99      time.Duration
	MajorP99      time.Duration
	MaxLatency    time.Duration
	ColdStartFrac float64 // fraction of Major requests that were cold
	PCIUtil       float64
	GPUUtil       float64
}

// Fig6Result is the experiment output.
type Fig6Result struct {
	Config       Fig6Config
	Minutes      []Fig6Minute
	MaxLatency   time.Duration
	SLOViolated  uint64 // successful responses exceeding the SLO
	ActiveModels int
}

// RunFig6 reproduces Fig 6: serving thousands of models from one worker.
func RunFig6(cfg Fig6Config) *Fig6Result {
	cfg = cfg.withDefaults()
	cl := newSystemCluster(SystemClockwork, clockwork.Config{
		Workers: 1, GPUsPerWorker: 1,
		PageCacheBytes:  cfg.PageCacheBytes,
		Seed:            cfg.Seed,
		MetricsInterval: time.Minute,
	})
	minorName := "minor"
	cl.RegisterModel(minorName, modelzoo.ResNet50())
	majorNames, _ := cl.RegisterCopies("major", modelzoo.ResNet50(), cfg.TotalModels)

	src := rng.NewSource(cfg.Seed)
	minorStream := src.Stream("fig6.minor")
	majorStream := src.Stream("fig6.major")

	start := simclock.Time(cfg.PreRun) // Major activation starts here
	end := start.Add(cfg.Duration)

	// Per-minute, per-class telemetry.
	minorGood := telemetry.NewTimeSeries(time.Minute)
	majorGood := telemetry.NewTimeSeries(time.Minute)
	minorLat := map[int]*telemetry.Histogram{}
	majorLat := map[int]*telemetry.Histogram{}
	majorCold := telemetry.NewTimeSeries(time.Minute)
	majorTotal := telemetry.NewTimeSeries(time.Minute)
	latAt := func(m map[int]*telemetry.Histogram, idx int) *telemetry.Histogram {
		h, ok := m[idx]
		if !ok {
			h = telemetry.NewHistogram()
			m[idx] = h
		}
		return h
	}
	var maxLatency time.Duration
	var violated uint64

	submit := func(model string, minor bool) {
		cl.Submit(model, cfg.SLO, func(r core.Response, l time.Duration) {
			now := cl.Eng.Now()
			idx := int(int64(now) / int64(time.Minute))
			if l > maxLatency {
				maxLatency = l
			}
			if r.Success && l > cfg.SLO {
				violated++
			}
			if minor {
				latAt(minorLat, idx).Observe(l)
				if r.Success && l <= cfg.SLO {
					minorGood.Incr(now)
				}
				return
			}
			latAt(majorLat, idx).Observe(l)
			majorTotal.Incr(now)
			if r.ColdStart {
				majorCold.Incr(now)
			}
			if r.Success && l <= cfg.SLO {
				majorGood.Incr(now)
			}
		})
	}

	// Minor workload: Poisson at MinorRate for the whole experiment.
	var minorArrival func()
	minorArrival = func() {
		gap := time.Duration(minorStream.Exp(1.0/cfg.MinorRate) * float64(time.Second))
		cl.Eng.After(gap, func() {
			if cl.Eng.Now() >= end {
				return
			}
			submit(minorName, true)
			minorArrival()
		})
	}
	minorArrival()

	// Major workload: aggregate Poisson at MajorRate, each arrival
	// uniformly targeting one of the currently active models.
	active := 0
	var majorArrival func()
	majorArrival = func() {
		gap := time.Duration(majorStream.Exp(1.0/cfg.MajorRate) * float64(time.Second))
		cl.Eng.After(gap, func() {
			if cl.Eng.Now() >= end {
				return
			}
			if active > 0 {
				submit(majorNames[majorStream.Intn(active)], false)
			}
			majorArrival()
		})
	}
	cl.Eng.At(start, func() {
		majorArrival()
	})
	// Activation chain: one more Major model per period.
	var activate func()
	activate = func() {
		if active >= cfg.TotalModels || cl.Eng.Now() >= end {
			return
		}
		active++
		cl.Eng.After(cfg.ActivationPeriod, activate)
	}
	cl.Eng.At(start, activate)

	cl.RunUntil(end.Add(2 * cfg.SLO))

	res := &Fig6Result{Config: cfg, MaxLatency: maxLatency, SLOViolated: violated, ActiveModels: active}
	// Only whole minutes inside the run; the drain window after `end`
	// would otherwise appear as a near-empty trailing bucket.
	minutes := int(int64(end) / int64(time.Minute))
	for m := 0; m < minutes; m++ {
		row := Fig6Minute{
			Minute:       m - int(cfg.PreRun/time.Minute), // paper's t=0 is Major start
			MinorGoodput: minorGood.Rate(m),
			MajorGoodput: majorGood.Rate(m),
			PCIUtil:      cl.Metrics.PCIUtilFraction(m),
			GPUUtil:      cl.Metrics.GPUUtilFraction(m),
		}
		if h := minorLat[m]; h != nil {
			row.MinorP99 = h.Percentile(99)
		}
		if h := majorLat[m]; h != nil {
			row.MajorP99 = h.Percentile(99)
			row.MaxLatency = h.Max()
		}
		if total := majorTotal.Sum(m); total > 0 {
			row.ColdStartFrac = majorCold.Sum(m) / total
		}
		res.Minutes = append(res.Minutes, row)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Fig6Result) String() string {
	rows := make([][]string, 0, len(r.Minutes))
	for _, m := range r.Minutes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.Minute),
			fmt.Sprintf("%.0f", m.MinorGoodput),
			fmt.Sprintf("%.0f", m.MajorGoodput),
			fmtMS(m.MinorP99), fmtMS(m.MajorP99),
			fmt.Sprintf("%.0f%%", 100*m.ColdStartFrac),
			fmt.Sprintf("%.0f%%", 100*m.PCIUtil),
			fmt.Sprintf("%.0f%%", 100*m.GPUUtil),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6 — scale-up to %d models on one worker (SLO %v)\n", r.Config.TotalModels, r.Config.SLO)
	fmt.Fprintf(&b, "max latency %v; %d successful responses exceeded the SLO\n", r.MaxLatency, r.SLOViolated)
	b.WriteString(table([]string{"min", "minor r/s", "major r/s", "minor p99", "major p99", "cold", "pci", "gpu"}, rows))
	return b.String()
}
