package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// SLOMultipliers are the paper's sweep points (×1.5 every epoch, from
// 1.0× the batch-1 ResNet50 execution latency up to ≈86.5×, i.e. 250ms).
var SLOMultipliers = []float64{1.0, 1.5, 2.2, 3.4, 5.1, 7.6, 11.4, 17.1, 25.6, 38.4, 57.7, 86.5}

// Fig7Config parameterises the "how low can Clockwork go" sweep (§6.3):
// N ResNet50 instances at cumulative rate R on 6 workers, with the SLO
// increasing every Epoch.
type Fig7Config struct {
	Workers     int
	Models      int     // N
	TotalRate   float64 // R, requests/second across all models
	Epoch       time.Duration
	Multipliers []float64
	Seed        uint64
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Workers <= 0 {
		c.Workers = 6
	}
	if c.Models <= 0 {
		c.Models = 12
	}
	if c.TotalRate <= 0 {
		c.TotalRate = 600
	}
	if c.Epoch <= 0 {
		c.Epoch = 10 * time.Second
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = SLOMultipliers
	}
	return c
}

// Fig7Row is one epoch's workload satisfaction.
type Fig7Row struct {
	Multiplier   float64
	SLO          time.Duration
	Sent         uint64
	Satisfied    uint64
	Satisfaction float64
}

// Fig7Result is one configuration's sweep.
type Fig7Result struct {
	Config Fig7Config
	Rows   []Fig7Row
}

// RunFig7 reproduces Fig 7 (left) for one (N, R) configuration.
func RunFig7(cfg Fig7Config) *Fig7Result {
	cfg = cfg.withDefaults()
	cl := newSystemCluster(SystemClockwork, clockwork.Config{
		Workers: cfg.Workers, GPUsPerWorker: 1,
		Seed:            cfg.Seed,
		MetricsInterval: time.Second,
	})
	names, _ := cl.RegisterCopies("resnet50", modelzoo.ResNet50(), cfg.Models)
	base := modelzoo.ResNet50().ExecLatency(1)
	perModel := cfg.TotalRate / float64(cfg.Models)
	src := rng.NewSource(cfg.Seed)

	res := &Fig7Result{Config: cfg}
	type epochCounters struct{ sent, ok uint64 }
	counters := make([]epochCounters, len(cfg.Multipliers))

	// One Poisson arrival chain per model; the SLO and target counter
	// change as epochs advance.
	epochOf := func(t simclock.Time) int {
		e := int(int64(t) / int64(cfg.Epoch))
		if e >= len(cfg.Multipliers) {
			return -1
		}
		return e
	}
	sloOf := func(e int) time.Duration {
		return time.Duration(float64(base) * cfg.Multipliers[e])
	}
	endAt := simclock.Time(time.Duration(len(cfg.Multipliers)) * cfg.Epoch)

	for i, name := range names {
		stream := src.Stream(fmt.Sprintf("fig7.%d", i))
		model := name
		var arrival func()
		arrival = func() {
			gap := time.Duration(stream.Exp(1.0/perModel) * float64(time.Second))
			cl.Eng.After(gap, func() {
				now := cl.Eng.Now()
				if now >= endAt {
					return
				}
				e := epochOf(now)
				if e >= 0 {
					slo := sloOf(e)
					counters[e].sent++
					cl.Submit(model, slo, func(r core.Response, l time.Duration) {
						if r.Success && l <= slo {
							counters[e].ok++
						}
					})
				}
				arrival()
			})
		}
		arrival()
	}
	cl.RunUntil(endAt.Add(time.Second))

	for e, m := range cfg.Multipliers {
		row := Fig7Row{Multiplier: m, SLO: sloOf(e), Sent: counters[e].sent, Satisfied: counters[e].ok}
		if row.Sent > 0 {
			row.Satisfaction = float64(row.Satisfied) / float64(row.Sent)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Fig7Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", row.Multiplier),
			fmtMS(row.SLO),
			fmt.Sprintf("%d", row.Sent),
			fmt.Sprintf("%.3f", row.Satisfaction),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7 (left) — workload satisfaction, N=%d R=%.0f r/s on %d workers\n",
		r.Config.Models, r.Config.TotalRate, r.Config.Workers)
	b.WriteString(table([]string{"mult", "slo", "sent", "satisfaction"}, rows))
	return b.String()
}

// Fig7IsoConfig parameterises the isolation experiment (§6.4): 6
// latency-sensitive (LS) instances at 200 r/s each share the cluster
// with M batch clients (BC) of concurrency C and no meaningful SLO.
type Fig7IsoConfig struct {
	Workers     int
	LSModels    int
	LSRate      float64 // per LS model, r/s
	BCModels    int     // M
	BCConc      int     // C
	Epoch       time.Duration
	Multipliers []float64
	Seed        uint64
}

func (c Fig7IsoConfig) withDefaults() Fig7IsoConfig {
	if c.Workers <= 0 {
		c.Workers = 6
	}
	if c.LSModels <= 0 {
		c.LSModels = 6
	}
	if c.LSRate <= 0 {
		c.LSRate = 200
	}
	if c.BCConc <= 0 && c.BCModels > 0 {
		c.BCConc = 16
	}
	if c.Epoch <= 0 {
		c.Epoch = 10 * time.Second
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = SLOMultipliers
	}
	return c
}

// Fig7IsoRow is one epoch of the isolation experiment.
type Fig7IsoRow struct {
	Multiplier     float64
	SLO            time.Duration
	LSSatisfaction float64
	BCThroughput   float64 // r/s
}

// Fig7IsoResult is the sweep for one (M, C) scenario.
type Fig7IsoResult struct {
	Config Fig7IsoConfig
	Rows   []Fig7IsoRow
}

// RunFig7Isolation reproduces Fig 7 (right): LS workload satisfaction
// and BC throughput as the LS SLO sweeps upward.
func RunFig7Isolation(cfg Fig7IsoConfig) *Fig7IsoResult {
	cfg = cfg.withDefaults()
	cl := newSystemCluster(SystemClockwork, clockwork.Config{
		Workers: cfg.Workers, GPUsPerWorker: 1,
		Seed:            cfg.Seed,
		MetricsInterval: time.Second,
	})
	lsNames, _ := cl.RegisterCopies("ls", modelzoo.ResNet50(), cfg.LSModels)
	bcNames, _ := cl.RegisterCopies("bc", modelzoo.ResNet50(), cfg.BCModels)
	base := modelzoo.ResNet50().ExecLatency(1)
	src := rng.NewSource(cfg.Seed)

	endAt := simclock.Time(time.Duration(len(cfg.Multipliers)) * cfg.Epoch)
	type counters struct{ lsSent, lsOK, bcDone uint64 }
	epochs := make([]counters, len(cfg.Multipliers))
	epochOf := func(t simclock.Time) int {
		e := int(int64(t) / int64(cfg.Epoch))
		if e >= len(cfg.Multipliers) {
			return -1
		}
		return e
	}
	sloOf := func(e int) time.Duration {
		return time.Duration(float64(base) * cfg.Multipliers[e])
	}

	// LS: open-loop Poisson per model, SLO following the sweep.
	for i, name := range lsNames {
		stream := src.Stream(fmt.Sprintf("fig7iso.ls.%d", i))
		model := name
		var arrival func()
		arrival = func() {
			gap := time.Duration(stream.Exp(1.0/cfg.LSRate) * float64(time.Second))
			cl.Eng.After(gap, func() {
				now := cl.Eng.Now()
				if now >= endAt {
					return
				}
				if e := epochOf(now); e >= 0 {
					slo := sloOf(e)
					epochs[e].lsSent++
					cl.Submit(model, slo, func(r core.Response, l time.Duration) {
						if r.Success && l <= slo {
							epochs[e].lsOK++
						}
					})
				}
				arrival()
			})
		}
		arrival()
	}

	// BC: closed-loop clients with an effectively unbounded SLO.
	const bcSLO = 60 * time.Second
	for _, name := range bcNames {
		model := name
		var inFlight func()
		inFlight = func() {
			if cl.Eng.Now() >= endAt {
				return
			}
			cl.Submit(model, bcSLO, func(r core.Response, _ time.Duration) {
				if r.Success {
					if e := epochOf(r.CompletedAt); e >= 0 {
						epochs[e].bcDone++
					}
				}
				inFlight()
			})
		}
		for i := 0; i < cfg.BCConc; i++ {
			inFlight()
		}
	}

	cl.RunUntil(endAt.Add(time.Second))

	res := &Fig7IsoResult{Config: cfg}
	for e, m := range cfg.Multipliers {
		row := Fig7IsoRow{
			Multiplier:   m,
			SLO:          sloOf(e),
			BCThroughput: float64(epochs[e].bcDone) / cfg.Epoch.Seconds(),
		}
		if epochs[e].lsSent > 0 {
			row.LSSatisfaction = float64(epochs[e].lsOK) / float64(epochs[e].lsSent)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String implements fmt.Stringer.
func (r *Fig7IsoResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", row.Multiplier),
			fmtMS(row.SLO),
			fmt.Sprintf("%.3f", row.LSSatisfaction),
			fmt.Sprintf("%.0f", row.BCThroughput),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7 (right) — isolation: %d LS @%.0f r/s vs M=%d BC (C=%d) on %d workers\n",
		r.Config.LSModels, r.Config.LSRate, r.Config.BCModels, r.Config.BCConc, r.Config.Workers)
	b.WriteString(table([]string{"mult", "slo", "LS satisfaction", "BC r/s"}, rows))
	return b.String()
}
