package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/modelzoo"
	"clockwork/internal/runner"
	"clockwork/internal/simclock"
	"clockwork/internal/telemetry"
	"clockwork/internal/workload"
	"clockwork/trace"
)

// Fig5Config parameterises the system comparison (§6.1): 15 copies of
// ResNet50 on one worker with one GPU, 16 closed-loop clients per copy,
// swept across target SLOs.
type Fig5Config struct {
	Systems    []string
	SLOs       []time.Duration
	Models     int
	ClientsPer int
	Duration   time.Duration // measured window per (system, SLO)
	Warmup     time.Duration
	Seed       uint64
	// FlightRecorder, when set, is called once per cell and the
	// returned recorder attached to that cell's cluster (cells run in
	// parallel, so they cannot share one recorder). Tracing is a pure
	// observer: results are bit-identical with or without it.
	FlightRecorder func() *trace.Recorder
}

func (c Fig5Config) withDefaults() Fig5Config {
	if len(c.Systems) == 0 {
		c.Systems = Systems
	}
	if len(c.SLOs) == 0 {
		c.SLOs = []time.Duration{
			10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
			100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		}
	}
	if c.Models <= 0 {
		c.Models = 15
	}
	if c.ClientsPer <= 0 {
		c.ClientsPer = 16
	}
	if c.Duration <= 0 {
		c.Duration = 20 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 5 * time.Second
	}
	return c
}

// Fig5Cell is one (system, SLO) measurement.
type Fig5Cell struct {
	System  string
	SLO     time.Duration
	Goodput float64 // within-SLO responses per second
	// CDF is the latency distribution across ALL requests, including
	// failed/rejected ones (matching the paper's CDFs).
	CDF []telemetry.CDFPoint
	P50 time.Duration
	P99 time.Duration
	Max time.Duration
}

// Fig5Result is the full sweep.
type Fig5Result struct {
	Cells []Fig5Cell
}

// RunFig5 reproduces Fig 5: goodput and latency CDFs for Clockwork,
// Clipper-like, and INFaaS-like serving under tightening SLOs. Every
// (system, SLO) cell is an independent simulation, so the sweep fans
// out across cores; the runner returns cells in sweep order, keeping
// the output identical to a serial run.
func RunFig5(cfg Fig5Config) *Fig5Result {
	cfg = cfg.withDefaults()
	type cellKey struct {
		system string
		slo    time.Duration
	}
	keys := make([]cellKey, 0, len(cfg.Systems)*len(cfg.SLOs))
	for _, system := range cfg.Systems {
		for _, slo := range cfg.SLOs {
			keys = append(keys, cellKey{system, slo})
		}
	}
	return &Fig5Result{Cells: runner.Map(keys, func(k cellKey) Fig5Cell {
		return runFig5Cell(cfg, k.system, k.slo)
	})}
}

func runFig5Cell(cfg Fig5Config, system string, slo time.Duration) Fig5Cell {
	cl := newSystemCluster(system, clockwork.Config{
		Workers: 1, GPUsPerWorker: 1,
		Seed:            cfg.Seed,
		MetricsInterval: time.Second,
	})
	if cfg.FlightRecorder != nil {
		cl.SetFlightRecorder(cfg.FlightRecorder())
	}
	names, _ := cl.RegisterCopies("resnet50", modelzoo.ResNet50(), cfg.Models)

	stop := simclock.Time(cfg.Warmup + cfg.Duration)
	for _, name := range names {
		c := workload.NewClosedLoop(cl, name, slo, cfg.ClientsPer)
		c.StopAt(stop)
		c.Start()
	}
	cl.RunUntil(stop)
	// Drain in-flight work.
	cl.RunFor(2 * slo)

	// Goodput over the measured window, excluding warmup buckets.
	warmBuckets := int(cfg.Warmup / cl.Metrics.Interval())
	var good float64
	for i := warmBuckets; i < cl.Metrics.Goodput.Buckets(); i++ {
		good += cl.Metrics.Goodput.Sum(i)
	}
	hist := cl.Metrics.LatencyAll
	return Fig5Cell{
		System:  system,
		SLO:     slo,
		Goodput: good / cfg.Duration.Seconds(),
		CDF:     hist.CDF(0, 50, 90, 99, 99.9, 99.99, 100),
		P50:     hist.Percentile(50),
		P99:     hist.Percentile(99),
		Max:     hist.Max(),
	}
}

// String implements fmt.Stringer.
func (r *Fig5Result) String() string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.System, fmtMS(c.SLO),
			fmt.Sprintf("%.0f", c.Goodput),
			fmtMS(c.P50), fmtMS(c.P99), fmtMS(c.Max),
		})
	}
	var b strings.Builder
	b.WriteString("Fig 5 — goodput and latency vs SLO (15×ResNet50, 1 GPU, 16 closed-loop clients each)\n")
	b.WriteString(table([]string{"system", "slo", "goodput r/s", "p50", "p99", "max"}, rows))
	return b.String()
}
