// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) on the simulated substrate, plus the
// repo-grown scenarios that go beyond the paper: the §6.5
// tighter-SLOs table ("sloscale") and the control-plane scale
// comparison ("scale", ≥1M requests over 1/4/16 scheduler shards).
//
// Each experiment has a Config with paper-faithful defaults plus
// Scale/Duration knobs (the full-size runs replay hours of trace;
// benchmarks use scaled-down variants and EXPERIMENTS.md records
// which scale produced which numbers), and returns a typed result
// whose String() prints the same rows/series the paper reports.
// Every experiment is a pure function of its config: equal configs
// give byte-identical output, enforced by golden-hash tests
// (golden_test.go) that also pin Shards=1 to the pre-shard control
// plane's exact behaviour.
package experiments
