package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestScaleShardComparison runs a scaled-down control-plane scale
// scenario (the CLI defaults are 1M requests / 16k models; see
// EXPERIMENTS.md for full-size numbers) and checks the cells are
// comparable: every cell completes the identical request budget, the
// sharded cells spread completions across shards, and service quality
// does not collapse when the control plane is partitioned.
func TestScaleShardComparison(t *testing.T) {
	t.Parallel()
	cfg := ScaleConfig{
		Shards:            []int{1, 4},
		Models:            256,
		Requests:          12_000,
		Rate:              3_000,
		Workers:           8,
		GPUsPerWorker:     2,
		Seed:              1,
		RebalanceInterval: 500 * time.Millisecond,
	}
	r := RunScale(cfg)
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	one, four := r.Cells[0], r.Cells[1]
	if one.Shards != 1 || four.Shards != 4 {
		t.Fatalf("cell order: %d, %d", one.Shards, four.Shards)
	}
	for _, c := range r.Cells {
		if c.Requests != uint64(cfg.Requests) {
			t.Fatalf("shards=%d completed %d of %d requests", c.Shards, c.Requests, cfg.Requests)
		}
	}
	// Partitioning must not wreck service quality: the sharded cell's
	// violation rate may differ (fewer GPUs per scheduling domain) but
	// not collapse.
	if four.ViolationRate > one.ViolationRate+0.15 {
		t.Fatalf("sharding degraded violations %.3f -> %.3f", one.ViolationRate, four.ViolationRate)
	}
	// Completions spread across all four shards.
	if four.MinShare == 0 {
		t.Fatal("a shard completed zero requests")
	}
	if !strings.Contains(r.String(), "Control-plane scale") {
		t.Fatal("missing header")
	}
}

// TestScaleDeterminism: equal configs render byte-identical output,
// including across the concurrent runner.
func TestScaleDeterminism(t *testing.T) {
	t.Parallel()
	cfg := ScaleConfig{
		Shards:   []int{1, 2},
		Models:   64,
		Requests: 2_000,
		Rate:     2_000,
		Workers:  4,
		Seed:     3,
	}
	a := RunScale(cfg).String()
	b := RunScale(cfg).String()
	if a != b {
		t.Fatalf("scale scenario not deterministic:\n%s\nvs\n%s", a, b)
	}
}
