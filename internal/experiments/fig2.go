package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork/internal/gpu"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/runner"
	"clockwork/internal/simclock"
	"clockwork/internal/telemetry"
)

// Fig2aConfig parameterises the isolated-inference latency experiment
// (the paper executes 11 million ResNet50 inferences; Inferences scales
// that down for quick runs).
type Fig2aConfig struct {
	Inferences int
	Seed       uint64
}

// Fig2aResult is the latency distribution of isolated serial inference.
type Fig2aResult struct {
	Inferences int
	Median     time.Duration
	P9999      time.Duration
	Max        time.Duration
	// RelSpread9999 is (p99.99 − median)/median; the paper reports
	// "within 0.03%".
	RelSpread9999 float64
	CDF           []telemetry.CDFPoint
}

// RunFig2a reproduces Fig 2a: the latency CDF of isolated, serial DNN
// inference on one GPU.
func RunFig2a(cfg Fig2aConfig) *Fig2aResult {
	if cfg.Inferences <= 0 {
		cfg.Inferences = 1_000_000
	}
	eng := simclock.NewEngine()
	dev := gpu.NewDevice(eng, rng.NewSource(cfg.Seed).Stream("fig2a"), gpu.DefaultNoise)
	base := modelzoo.ResNet50().ExecLatency(1)
	// The paper's point is sub-0.1% spread, far below the log-bucket
	// histogram resolution, so this experiment keeps exact samples and
	// computes exact order statistics.
	samples := make([]time.Duration, 0, cfg.Inferences)

	var run func()
	run = func() {
		dev.Exec(base, func(actual time.Duration) {
			samples = append(samples, actual)
			if len(samples) < cfg.Inferences {
				run()
			}
		})
	}
	run()
	eng.Run()

	telemetry.SortDurations(samples)
	exact := func(p float64) time.Duration {
		idx := int(p / 100 * float64(len(samples)-1))
		return samples[idx]
	}
	med := exact(50)
	p9999 := exact(99.99)
	cdf := make([]telemetry.CDFPoint, 0, 8)
	for _, p := range []float64{0, 50, 90, 99, 99.9, 99.99, 99.999, 100} {
		cdf = append(cdf, telemetry.CDFPoint{Percentile: p, Value: exact(p)})
	}
	return &Fig2aResult{
		Inferences:    cfg.Inferences,
		Median:        med,
		P9999:         p9999,
		Max:           samples[len(samples)-1],
		RelSpread9999: float64(p9999-med) / float64(med),
		CDF:           cdf,
	}
}

// String implements fmt.Stringer.
func (r *Fig2aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2a — isolated inference latency (%d inferences)\n", r.Inferences)
	fmt.Fprintf(&b, "median=%v p99.99=%v max=%v  (p99.99−median)/median=%.4f%%\n",
		r.Median, r.P9999, r.Max, 100*r.RelSpread9999)
	b.WriteString(telemetry.FormatCDF(r.CDF))
	return b.String()
}

// Fig2bConfig parameterises the concurrency experiment.
type Fig2bConfig struct {
	Concurrencies []int
	Duration      time.Duration // simulated time per concurrency level
	Seed          uint64
}

// Fig2bRow is one concurrency level's throughput and latency shape.
type Fig2bRow struct {
	Concurrency int
	Throughput  float64 // r/s
	P50         time.Duration
	P99         time.Duration
	Max         time.Duration
}

// Fig2bResult holds the sweep.
type Fig2bResult struct {
	Rows []Fig2bRow
}

// RunFig2b reproduces Fig 2b: inference throughput and latency when the
// GPU executes kernels concurrently. Throughput rises up to ~25% while
// latency becomes wildly variable.
func RunFig2b(cfg Fig2bConfig) *Fig2bResult {
	if len(cfg.Concurrencies) == 0 {
		cfg.Concurrencies = []int{1, 2, 4, 8, 16}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	base := modelzoo.ResNet50().ExecLatency(1)
	// Each concurrency level is a self-contained simulation with its own
	// engine and rng stream; run the sweep on the scenario runner.
	return &Fig2bResult{Rows: runner.Map(cfg.Concurrencies, func(conc int) Fig2bRow {
		eng := simclock.NewEngine()
		dev := gpu.NewDevice(eng, rng.NewSource(cfg.Seed).Stream(fmt.Sprintf("fig2b-%d", conc)), gpu.DefaultNoise)
		hist := telemetry.NewHistogram()
		horizon := simclock.Time(cfg.Duration)
		completed := 0
		var submit func()
		submit = func() {
			dev.Submit(base, func(actual time.Duration) {
				hist.Observe(actual)
				completed++
				if eng.Now() < horizon {
					submit()
				}
			})
		}
		for i := 0; i < conc; i++ {
			submit()
		}
		eng.RunUntil(horizon)
		return Fig2bRow{
			Concurrency: conc,
			Throughput:  float64(completed) / cfg.Duration.Seconds(),
			P50:         hist.Percentile(50),
			P99:         hist.Percentile(99),
			Max:         hist.Max(),
		}
	})}
}

// String implements fmt.Stringer.
func (r *Fig2bResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Concurrency),
			fmt.Sprintf("%.0f", row.Throughput),
			fmtMS(row.P50), fmtMS(row.P99), fmtMS(row.Max),
		})
	}
	return "Fig 2b — concurrency vs throughput/latency\n" +
		table([]string{"conc", "r/s", "p50", "p99", "max"}, rows)
}
