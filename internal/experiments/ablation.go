package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"clockwork"
	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/runner"
	"clockwork/internal/simclock"
	"clockwork/internal/workload"
)

// This file holds ablations of the design choices DESIGN.md calls out:
// scheduler lookahead, predictor window size, LOAD selection policy, and
// paged vs first-fit GPU memory allocation. (The serial-vs-concurrent
// EXEC ablation is Fig 2b itself.)

// AblationRow is one configuration's outcome under a common workload.
type AblationRow struct {
	Label     string
	Goodput   float64
	P99       time.Duration
	Max       time.Duration
	Rejected  uint64 // worker-cancelled actions' requests
	Cancelled uint64 // controller-cancelled requests
}

// AblationResult is a labelled sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// String implements fmt.Stringer.
func (r *AblationResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			fmt.Sprintf("%.0f", row.Goodput),
			fmtMS(row.P99), fmtMS(row.Max),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%d", row.Cancelled),
		})
	}
	return fmt.Sprintf("Ablation — %s\n", r.Name) +
		table([]string{"config", "goodput r/s", "p99", "max", "rejected", "cancelled"}, rows)
}

// ablationWorkload runs a standard contended workload (8 ResNet50
// copies, 8 closed-loop clients each, 50ms SLO, one GPU) against a
// cluster and summarises it.
func ablationWorkload(label string, cl *core.Cluster, dur time.Duration) AblationRow {
	names, _ := cl.RegisterCopies("resnet50", modelzoo.ResNet50(), 8)
	stop := simclock.Time(dur)
	const slo = 50 * time.Millisecond
	for _, n := range names {
		c := workload.NewClosedLoop(cl, n, slo, 8)
		c.StopAt(stop)
		c.Start()
	}
	cl.RunUntil(stop.Add(time.Second))
	st := cl.Ctl.Stats()
	return AblationRow{
		Label:     label,
		Goodput:   float64(cl.Metrics.Goodput.TotalCount()) / dur.Seconds(),
		P99:       cl.Metrics.LatencyAll.Percentile(99),
		Max:       cl.Metrics.LatencyAll.Max(),
		Rejected:  st.Rejected,
		Cancelled: st.Cancelled,
	}
}

// RunAblationLookahead sweeps the controller's scheduling lookahead
// (§5.3 defaults to 5ms): too little starves the executors between
// wake-ups; much more commits work too early without improving goodput.
func RunAblationLookahead(dur time.Duration, seed uint64) *AblationResult {
	if dur <= 0 {
		dur = 10 * time.Second
	}
	sweep := []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	return &AblationResult{
		Name: "scheduler lookahead",
		Rows: runner.Map(sweep, func(la time.Duration) AblationRow {
			cl := newSystemCluster(SystemClockwork, clockwork.Config{
				Workers: 1, GPUsPerWorker: 1, Seed: seed,
				Lookahead: la,
			})
			return ablationWorkload(la.String(), cl, dur)
		}),
	}
}

// RunAblationPredictor sweeps the rolling profile window (§5.3 uses the
// past 10 actions). A window of 1 tracks the last sample only and
// underpredicts whenever noise spikes; a window of 100 adapts slowly.
func RunAblationPredictor(dur time.Duration, seed uint64) *AblationResult {
	if dur <= 0 {
		dur = 10 * time.Second
	}
	return &AblationResult{
		Name: "predictor window",
		Rows: runner.Map([]int{1, 10, 100}, func(w int) AblationRow {
			cl := newSystemCluster(SystemClockwork, clockwork.Config{
				Workers: 1, GPUsPerWorker: 1, Seed: seed,
				ProfileWindow: w,
			})
			return ablationWorkload(fmt.Sprintf("window=%d", w), cl, dur)
		}),
	}
}

// RunAblationLoadPolicy compares Appendix B's demand-priority LOAD
// selection against naive oldest-deadline-first selection under memory
// pressure (32 models on a cache that fits 10).
func RunAblationLoadPolicy(dur time.Duration, seed uint64) *AblationResult {
	if dur <= 0 {
		dur = 10 * time.Second
	}
	// The ablation variant is a registered policy of its own, so the
	// sweep resolves both schedulers by name through the public API.
	policies := []string{SystemClockwork, "clockwork-oldest-load"}
	return &AblationResult{
		Name: "LOAD selection policy",
		Rows: runner.Map(policies, func(policy string) AblationRow {
			label := "priority (paper)"
			if policy != SystemClockwork {
				label = "oldest-first"
			}
			cl := newSystemCluster(policy, clockwork.Config{
				Workers: 1, GPUsPerWorker: 1, Seed: seed,
				PageCacheBytes: 10 * 7 * 16 * 1024 * 1024,
			})
			names, _ := cl.RegisterCopies("resnet50", modelzoo.ResNet50(), 32)
			src := rng.NewSource(seed)
			stop := simclock.Time(dur)
			const slo = 100 * time.Millisecond
			// Zipf-skewed open-loop load across 32 models at 600 r/s.
			stream := src.Stream("ablation.load")
			zipf := stream.Zipf(1.3, len(names))
			var arrival func()
			arrival = func() {
				gap := time.Duration(stream.Exp(1.0/600) * float64(time.Second))
				cl.Eng.After(gap, func() {
					if cl.Eng.Now() >= stop {
						return
					}
					cl.Submit(names[zipf.Draw()], slo, nil)
					arrival()
				})
			}
			arrival()
			cl.RunUntil(stop.Add(time.Second))
			st := cl.Ctl.Stats()
			return AblationRow{
				Label:     label,
				Goodput:   float64(cl.Metrics.Goodput.TotalCount()) / dur.Seconds(),
				P99:       cl.Metrics.LatencyAll.Percentile(99),
				Max:       cl.Metrics.LatencyAll.Max(),
				Rejected:  st.Rejected,
				Cancelled: st.Cancelled,
			}
		}),
	}
}

// --- paging vs first-fit allocation ---

// firstFitAllocator is a byte-granular allocator over a contiguous
// address space, used only as the ablation counterfactual to the paper's
// 16MB paging: it suffers external fragmentation, so identical workloads
// hit allocation failures that paging provably cannot.
type firstFitAllocator struct {
	capacity int64
	// spans, sorted by offset.
	spans []span
}

type span struct {
	off, size int64
	key       string
}

func newFirstFit(capacity int64) *firstFitAllocator {
	return &firstFitAllocator{capacity: capacity}
}

func (a *firstFitAllocator) alloc(key string, size int64) bool {
	prevEnd := int64(0)
	for i, s := range a.spans {
		if s.off-prevEnd >= size {
			a.insert(i, span{off: prevEnd, size: size, key: key})
			return true
		}
		prevEnd = s.off + s.size
	}
	if a.capacity-prevEnd >= size {
		a.spans = append(a.spans, span{off: prevEnd, size: size, key: key})
		return true
	}
	return false
}

func (a *firstFitAllocator) insert(i int, s span) {
	a.spans = append(a.spans, span{})
	copy(a.spans[i+1:], a.spans[i:])
	a.spans[i] = s
}

func (a *firstFitAllocator) free(key string) bool {
	for i, s := range a.spans {
		if s.key == key {
			a.spans = append(a.spans[:i], a.spans[i+1:]...)
			return true
		}
	}
	return false
}

func (a *firstFitAllocator) used() int64 {
	var u int64
	for _, s := range a.spans {
		u += s.size
	}
	return u
}

// PagingRow is one allocator's failure behaviour under churn.
type PagingRow struct {
	Allocator    string
	Attempts     int
	Failures     int
	FailureRate  float64
	OccupancyPct float64 // mean occupancy at failure-free steady state
}

// PagingResult compares allocators.
type PagingResult struct {
	Rows []PagingRow
}

// RunAblationPaging subjects a 16MB-page cache and a first-fit byte
// allocator to the same random model load/unload churn at ~85% target
// occupancy and counts allocation failures. Paging trades a little
// internal fragmentation for zero external fragmentation — the property
// that lets the controller summarise memory as a single free-page count.
func RunAblationPaging(operations int, seed uint64) *PagingResult {
	if operations <= 0 {
		operations = 20_000
	}
	const capacity = int64(8) * 1024 * 1024 * 1024
	const pageSize = int64(16) * 1024 * 1024

	models := modelzoo.All()

	type resident struct {
		key string
		zoo *modelzoo.Model
	}
	run := func(usePaging bool) PagingRow {
		// Each allocator's churn sequence draws from its own stream so
		// the two scenarios are independent (and can run concurrently).
		stream := rng.NewSource(seed).Stream(fmt.Sprintf("ablation.paging.%v", usePaging))
		pageCache := newPagedCounter(capacity, pageSize)
		ff := newFirstFit(capacity)
		var live []resident
		attempts, failures := 0, 0
		var occSum float64
		occN := 0
		for op := 0; op < operations; op++ {
			// Target ~85% occupancy: load when below, randomly mix.
			var occupied int64
			if usePaging {
				occupied = pageCache.usedBytes()
			} else {
				occupied = ff.used()
			}
			occSum += float64(occupied) / float64(capacity)
			occN++
			loading := float64(occupied)/float64(capacity) < 0.85 || stream.Bernoulli(0.4)
			if loading {
				m := models[stream.Intn(len(models))]
				key := fmt.Sprintf("m%d", op)
				attempts++
				var ok bool
				if usePaging {
					ok = pageCache.alloc(key, m)
				} else {
					ok = ff.alloc(key, m.WeightsBytes())
				}
				if !ok {
					failures++
					// Evict one victim and retry once (as the real
					// system would UNLOAD).
					if len(live) > 0 {
						v := stream.Intn(len(live))
						if usePaging {
							pageCache.free(live[v].key)
						} else {
							ff.free(live[v].key)
						}
						live = append(live[:v], live[v+1:]...)
					}
					continue
				}
				live = append(live, resident{key: key, zoo: m})
			} else if len(live) > 0 {
				v := stream.Intn(len(live))
				if usePaging {
					pageCache.free(live[v].key)
				} else {
					ff.free(live[v].key)
				}
				live = append(live[:v], live[v+1:]...)
			}
		}
		name := "first-fit"
		if usePaging {
			name = "16MB paging"
		}
		return PagingRow{
			Allocator:    name,
			Attempts:     attempts,
			Failures:     failures,
			FailureRate:  float64(failures) / float64(attempts),
			OccupancyPct: 100 * occSum / float64(occN),
		}
	}
	return &PagingResult{Rows: runner.Map([]bool{true, false}, run)}
}

// pagedCounter is a minimal page-count allocator (the controller's view
// of PageCache) for the ablation.
type pagedCounter struct {
	pageSize  int64
	freePages int
	total     int
	held      map[string]int
}

func newPagedCounter(capacity, pageSize int64) *pagedCounter {
	total := int(capacity / pageSize)
	return &pagedCounter{pageSize: pageSize, freePages: total, total: total, held: map[string]int{}}
}

func (p *pagedCounter) alloc(key string, m *modelzoo.Model) bool {
	n := m.Pages(p.pageSize)
	if n > p.freePages {
		return false
	}
	p.freePages -= n
	p.held[key] = n
	return true
}

func (p *pagedCounter) free(key string) {
	p.freePages += p.held[key]
	delete(p.held, key)
}

func (p *pagedCounter) usedBytes() int64 {
	return int64(p.total-p.freePages) * p.pageSize
}

// String implements fmt.Stringer.
func (r *PagingResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].Allocator < r.Rows[j].Allocator })
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Allocator,
			fmt.Sprintf("%d", row.Attempts),
			fmt.Sprintf("%d", row.Failures),
			fmt.Sprintf("%.2f%%", 100*row.FailureRate),
			fmt.Sprintf("%.0f%%", row.OccupancyPct),
		})
	}
	var b strings.Builder
	b.WriteString("Ablation — paging vs first-fit allocation under churn\n")
	b.WriteString(table([]string{"allocator", "allocs", "failures", "failure rate", "mean occupancy"}, rows))
	return b.String()
}
