package experiments

import (
	"fmt"
	"strings"
	"time"

	"clockwork/internal/runner"
)

// CLIFlags carries the command-line knobs of `cmd/clockwork` into the
// experiment catalogue; zero values select each experiment's defaults.
type CLIFlags struct {
	Seed      uint64
	Dur       time.Duration // per-cell duration for fig5/ablations
	Minutes   int           // trace minutes for fig6/fig8/fig9/sloscale
	Models    int           // model count for fig6/fig7/scale
	Functions int           // MAF function count for fig8/fig9/sloscale
	Copies    int           // instances per zoo model for fig8/fig9/sloscale
	Workers   int
	GPUs      int
	Rate      float64 // total rate for fig7/scale
	RateScale float64 // MAF trace rate multiplier

	// Scale-scenario knobs (the 1/4/16-shard comparison).
	Requests int   // total submissions per cell
	Shards   []int // shard counts to compare
}

// CLIExperiments lists the catalogue names Render accepts, in render
// order for "all".
var CLIExperiments = []string{
	"fig2a", "fig2b", "fig5", "fig6", "fig7", "fig7iso", "fig8", "fig9", "sloscale", "scale", "autoscale", "ablations",
}

// Render produces one experiment's full printed output (or "all" of
// them, fanned out across cores and printed in catalogue order). Every
// experiment is a pure function of the flags, so equal flags give
// byte-identical output.
func Render(name string, f CLIFlags) (string, error) {
	switch name {
	case "fig2a":
		return fmt.Sprintln(RunFig2a(Fig2aConfig{Seed: f.Seed})), nil
	case "fig2b":
		return fmt.Sprintln(RunFig2b(Fig2bConfig{Seed: f.Seed, Duration: f.Dur})), nil
	case "fig5":
		return fmt.Sprintln(RunFig5(Fig5Config{
			Seed: f.Seed, Duration: f.Dur, Models: f.Models,
		})), nil
	case "fig6":
		cfg := Fig6Config{Seed: f.Seed, TotalModels: f.Models}
		if f.Minutes > 0 {
			cfg.Duration = time.Duration(f.Minutes) * time.Minute
		}
		return fmt.Sprintln(RunFig6(cfg)), nil
	case "fig7":
		sweep := []struct {
			n int
			r float64
		}{{12, 600}, {12, 1200}, {12, 2400}, {48, 600}, {48, 1200}, {48, 2400}}
		if f.Models > 0 || f.Rate > 0 {
			sweep = sweep[:1] // single custom configuration
		}
		outs := runner.Map(sweep, func(nr struct {
			n int
			r float64
		}) string {
			cfg := Fig7Config{Seed: f.Seed, Models: nr.n, TotalRate: nr.r, Workers: f.Workers}
			if f.Models > 0 {
				cfg.Models = f.Models
			}
			if f.Rate > 0 {
				cfg.TotalRate = f.Rate
			}
			return fmt.Sprintln(RunFig7(cfg))
		})
		return strings.Join(outs, ""), nil
	case "fig7iso":
		sweep := []struct{ m, c int }{{0, 0}, {12, 16}, {48, 4}}
		outs := runner.Map(sweep, func(mc struct{ m, c int }) string {
			return fmt.Sprintln(RunFig7Isolation(Fig7IsoConfig{
				Seed: f.Seed, BCModels: mc.m, BCConc: mc.c, Workers: f.Workers,
			}))
		})
		return strings.Join(outs, ""), nil
	case "fig8":
		return fmt.Sprintln(RunFig8(f.fig8Config())), nil
	case "fig9":
		return fmt.Sprintln(RunFig9(f.fig8Config())), nil
	case "sloscale":
		return fmt.Sprintln(RunSLOScale(SLOScaleConfig{
			Seed: f.Seed, Workers: f.Workers, GPUsPerWorker: f.GPUs,
			Functions: f.Functions, Minutes: f.Minutes, Copies: f.Copies,
			RateScale: f.RateScale,
		})), nil
	case "scale":
		return fmt.Sprintln(RunScale(ScaleConfig{
			Seed: f.Seed, Workers: f.Workers, GPUsPerWorker: f.GPUs,
			Models: f.Models, Requests: f.Requests, Rate: f.Rate,
			Shards: f.Shards,
		})), nil
	case "autoscale":
		outs := runner.Map([]string{"diurnal", "flash"}, func(fam string) string {
			return fmt.Sprintln(RunAutoscale(AutoscaleConfig{
				Family: fam, Seed: f.Seed, Duration: f.Dur, Models: f.Models,
			}))
		})
		return strings.Join(outs, ""), nil
	case "ablations":
		outs := runner.Run([]func() string{
			func() string { return fmt.Sprintln(RunAblationLookahead(f.Dur, f.Seed)) },
			func() string { return fmt.Sprintln(RunAblationPredictor(f.Dur, f.Seed)) },
			func() string { return fmt.Sprintln(RunAblationLoadPolicy(f.Dur, f.Seed)) },
			func() string { return fmt.Sprintln(RunAblationPaging(0, f.Seed)) },
		})
		return strings.Join(outs, ""), nil
	case "all":
		type rendered struct {
			out string
			err error
		}
		outs := runner.Map(CLIExperiments, func(n string) rendered {
			out, err := Render(n, f)
			return rendered{out: out, err: err}
		})
		var b strings.Builder
		var firstErr error
		for _, r := range outs {
			b.WriteString(r.out)
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		}
		return b.String(), firstErr
	default:
		return "", fmt.Errorf("unknown experiment %q (have %s, all)",
			name, strings.Join(CLIExperiments, ", "))
	}
}

func (f CLIFlags) fig8Config() Fig8Config {
	return Fig8Config{
		Seed: f.Seed, Workers: f.Workers, GPUsPerWorker: f.GPUs,
		Copies: f.Copies, Functions: f.Functions, Minutes: f.Minutes,
		RateScale: f.RateScale,
	}
}
