package experiments

import (
	"fmt"
	"testing"
	"time"

	"clockwork"
	"clockwork/internal/rng"
)

// BenchmarkShardedSchedulerThroughput is the BenchmarkSchedulerPass-
// style measurement behind the scale scenario's headline: per-request
// control-plane cost at 16,384 models on a 32×2-GPU cluster, as a
// function of shard count. Each iteration submits one Zipf-drawn
// request and the engine is paced so queues stay realistic; the
// dominant cost at one shard is the scheduler walking all 64 GPU
// mirrors (and their load-priority descents) per event, which sharding
// divides by N. EXPERIMENTS.md records the measured ratios.
//
// Run with:
//
//	go test ./internal/experiments -run xxx -bench ShardedSchedulerThroughput -benchtime 20000x
func BenchmarkShardedSchedulerThroughput(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			benchShardedSubmit(b, shards, 16384, 32, 2)
		})
	}
}

func benchShardedSubmit(b *testing.B, shards, models, workers, gpus int) {
	sys, err := clockwork.New(clockwork.Config{
		Workers:          workers,
		GPUsPerWorker:    gpus,
		Shards:           shards,
		Seed:             1,
		ExactTiming:      true,
		ZeroLengthInputs: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	names := registerScaleModels(sys, models)
	pickModel := zipfPicker(models, 0.9, names)
	pick := rng.NewSource(1).Stream("bench.models")
	submit := func() {
		sys.SubmitRequest(clockwork.Request{Model: pickModel(pick), SLO: 100 * time.Millisecond}, nil)
	}
	// Warm the page caches and profile windows before measuring.
	for i := 0; i < 2000; i++ {
		submit()
		if (i+1)%100 == 0 {
			sys.RunFor(25 * time.Millisecond)
		}
	}
	sys.RunFor(time.Second)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
		// Pace at 4,000 r/s of virtual time so the measured loop is the
		// steady-state submit+schedule+execute path, not unbounded
		// queue growth.
		if (i+1)%100 == 0 {
			sys.RunFor(25 * time.Millisecond)
		}
	}
	b.StopTimer()
	sys.RunFor(time.Second)
}
