package experiments

import (
	"testing"
	"time"
)

// TestParallelSweepMatchesSerial guards the virtual-clock
// reproducibility promise (clockwork.go: "bit-identically for a given
// seed") across the parallel scenario runner: the same sweep run twice
// through the runner, and once as a plain serial loop over the same
// cells, must render byte-identical telemetry/goodput output.
func TestParallelSweepMatchesSerial(t *testing.T) {
	t.Parallel()
	cfg := Fig5Config{
		Systems:  Systems,
		SLOs:     []time.Duration{25 * time.Millisecond, 250 * time.Millisecond},
		Duration: 2 * time.Second,
		Warmup:   time.Second,
		Seed:     7,
	}

	// Serial reference: the exact loop the seed implementation ran.
	scfg := cfg.withDefaults()
	serial := &Fig5Result{}
	for _, system := range scfg.Systems {
		for _, slo := range scfg.SLOs {
			serial.Cells = append(serial.Cells, runFig5Cell(scfg, system, slo))
		}
	}

	first := RunFig5(cfg).String()
	second := RunFig5(cfg).String()
	if first != second {
		t.Fatalf("two parallel runs diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if first != serial.String() {
		t.Fatalf("parallel run diverged from serial reference:\n--- parallel ---\n%s\n--- serial ---\n%s", first, serial.String())
	}
}

// TestAblationDeterminism covers the runner conversion of the ablation
// sweeps: repeated runs must be bit-identical.
func TestAblationDeterminism(t *testing.T) {
	t.Parallel()
	a := RunAblationLookahead(2*time.Second, 3).String()
	b := RunAblationLookahead(2*time.Second, 3).String()
	if a != b {
		t.Fatalf("lookahead ablation not deterministic:\n%s\nvs\n%s", a, b)
	}
	p1 := RunAblationPaging(4000, 3).String()
	p2 := RunAblationPaging(4000, 3).String()
	if p1 != p2 {
		t.Fatalf("paging ablation not deterministic:\n%s\nvs\n%s", p1, p2)
	}
}
