package runner

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	got := Map(items, func(i int) int {
		runtime.Gosched() // encourage out-of-order completion
		return i * i
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out := Map(nil, func(int) int { return 1 }); out != nil {
		t.Fatalf("empty input should return nil, got %v", out)
	}
	if out := Map([]int{7}, func(i int) int { return i + 1 }); len(out) != 1 || out[0] != 8 {
		t.Fatalf("single-item map wrong: %v", out)
	}
}

// simScenario runs a self-contained simulation: 200 exponential arrival
// gaps on a private engine, returning the final virtual instant. It
// follows the determinism contract, so every worker count must
// reproduce it exactly.
func simScenario(i int) string {
	eng := simclock.NewEngine()
	stream := rng.NewSource(Seed(42, fmt.Sprintf("scenario-%d", i))).Stream("arrivals")
	n := 0
	var arrival func()
	arrival = func() {
		n++
		if n >= 200 {
			return
		}
		gap := time.Duration(stream.Exp(0.001) * float64(time.Second))
		eng.After(gap, arrival)
	}
	arrival()
	eng.Run()
	return fmt.Sprintf("%d:%v", i, eng.Now())
}

func TestMapNMatchesSerial(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	serial := MapN(1, items, simScenario)
	for _, workers := range []int{2, 4, 8} {
		parallel := MapN(workers, items, simScenario)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: item %d diverged: %q vs %q", workers, i, serial[i], parallel[i])
			}
		}
	}
}

func TestMapRunsAllItemsOnce(t *testing.T) {
	var calls atomic.Int64
	items := make([]int, 97) // not a multiple of any worker count
	Map(items, func(int) int {
		calls.Add(1)
		return 0
	})
	if calls.Load() != 97 {
		t.Fatalf("fn called %d times, want 97", calls.Load())
	}
}

func TestMapPanicPropagatesLowestIndex(t *testing.T) {
	// The parallel pool must surface the same panic value a serial
	// loop would: the original value of the lowest-indexed failure.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if msg := fmt.Sprint(r); msg != "boom-3" {
			t.Fatalf("panic = %q, want the lowest-index original value %q", msg, "boom-3")
		}
	}()
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	MapN(4, items, func(i int) int {
		if i >= 3 {
			panic(fmt.Sprintf("boom-%d", i))
		}
		return i
	})
}

func TestRunThunks(t *testing.T) {
	out := Run([]func() string{
		func() string { return "a" },
		func() string { return "b" },
		func() string { return "c" },
	})
	if len(out) != 3 || out[0] != "a" || out[1] != "b" || out[2] != "c" {
		t.Fatalf("Run order wrong: %v", out)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	if Seed(1, "x") != Seed(1, "x") {
		t.Fatal("Seed not deterministic")
	}
	if Seed(1, "x") == Seed(1, "y") {
		t.Fatal("distinct labels should give distinct seeds")
	}
	if Seed(1, "x") == Seed(2, "x") {
		t.Fatal("distinct bases should give distinct seeds")
	}
	if Seed(0, "") == 0 {
		t.Fatal("Seed must never return 0 (rng sources reject it)")
	}
}
