package runner

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn over every item on a worker pool sized to the machine
// (GOMAXPROCS, capped at len(items)) and returns the results in item
// order. It blocks until every scenario finishes. If any scenario
// panics, Map re-panics with the original panic value of the
// lowest-indexed failing item after all workers have stopped — the
// same value a serial loop would have surfaced, so a parallel failure
// is as reproducible (and as recoverable) as a serial one.
func Map[In, Out any](items []In, fn func(In) Out) []Out {
	return MapN(0, items, fn)
}

// MapN is Map with an explicit worker count: 1 forces a serial run (the
// reference behaviour parallel runs must reproduce), 0 or negative
// selects GOMAXPROCS.
func MapN[In, Out any](workers int, items []In, fn func(In) Out) []Out {
	n := len(items)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]Out, n)
	if workers == 1 {
		for i, item := range items {
			out[i] = fn(item)
		}
		return out
	}

	var (
		next     atomic.Int64 // next unclaimed item index
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked []scenarioPanic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if p, ok := runOne(&out[i], items[i], fn); !ok {
					panicMu.Lock()
					panicked = append(panicked, scenarioPanic{index: i, value: p})
					panicMu.Unlock()
					// Keep draining: other workers may be mid-scenario
					// and the caller needs the lowest failing index.
				}
			}
		}()
	}
	wg.Wait()
	if len(panicked) > 0 {
		first := panicked[0]
		for _, p := range panicked[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(first.value)
	}
	return out
}

// Run executes a slice of heterogeneous scenario thunks concurrently and
// returns their results in slice order — the same contract as Map for
// sweeps whose per-point setup differs by more than a config value.
func Run[Out any](tasks []func() Out) []Out {
	return Map(tasks, func(t func() Out) Out { return t() })
}

// scenarioPanic records a panic raised inside a scenario function.
type scenarioPanic struct {
	index int
	value any
}

// runOne invokes fn for one item, converting a panic into a value so the
// pool can keep claiming work deterministically.
func runOne[In, Out any](dst *Out, item In, fn func(In) Out) (p any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p, ok = r, false
		}
	}()
	*dst = fn(item)
	return nil, true
}

// Seed derives a per-run seed from a base seed and a scenario label,
// using the same FNV mixing as rng.Source so equal (base, label) pairs
// always yield the same seed and distinct labels yield independent ones.
// Sweeps that run many instances of one scenario should seed instance i
// from Seed(base, fmt.Sprintf("name-%d", i)) rather than base+i, so
// adding sweep points never shifts the draws of existing ones.
func Seed(base uint64, label string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	mixed := h.Sum64() ^ base*0x9E3779B97F4A7C15
	if mixed == 0 {
		mixed = 1
	}
	return mixed
}
