// Package runner executes independent simulation scenarios concurrently
// on a bounded worker pool while keeping output deterministic.
//
// Every experiment in this repository is a sweep: the same scenario shape
// evaluated at many points (SLOs, concurrency levels, systems,
// configurations). Each point builds its own simclock.Engine and derives
// its own rng streams, so points share no mutable state and can run on
// any OS thread in any order. The runner exploits that: it fans a sweep
// out across cores and collects the typed results back in submission
// order, so a parallel sweep's output is bit-identical to a serial run.
//
// Determinism contract (see DESIGN.md):
//
//  1. A scenario function must not read or write state shared with any
//     other scenario — it constructs every engine, cluster, and rng
//     stream it uses, seeded only from its input value.
//  2. Scenario randomness must come from rng streams derived from the
//     scenario's own seed (use Seed to derive per-run seeds), never from
//     global sources, time.Now, or map iteration order.
//  3. Results are returned in input order, regardless of completion
//     order. Under these rules Map(items, fn) with any worker count
//     returns exactly what a serial loop would.
package runner
