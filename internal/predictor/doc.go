// Package predictor implements Clockwork's action-duration estimation
// (§5.3): a rolling window of the most recent measurements per
// (operation, model, batch size), whose estimate is the window maximum —
// the paper's "rolling 99th percentile" over a window of 10, which biases
// towards slight overprediction (idle GPU time) rather than
// underprediction (SLO violations).
//
// Every scheduling decision in the lifecycle — batch feasibility,
// LOAD ETAs, admission control's last-chance instant — reads these
// estimates; workers' measured durations flow back in as observations.
package predictor
