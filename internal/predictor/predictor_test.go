package predictor

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEstimatorEmpty(t *testing.T) {
	e := NewEstimator(10)
	if e.Estimate() != 0 || e.Count() != 0 {
		t.Fatal("empty estimator should estimate 0")
	}
}

func TestEstimatorSeedUsedUntilMeasured(t *testing.T) {
	e := NewEstimator(10)
	e.Seed(5 * time.Millisecond)
	if e.Estimate() != 5*time.Millisecond {
		t.Fatal("seed not used")
	}
	// A measurement below the seed: stay conservative while the window
	// is not full.
	e.Observe(3 * time.Millisecond)
	if e.Estimate() != 5*time.Millisecond {
		t.Fatalf("partial window should not drop below seed: %v", e.Estimate())
	}
	// Fill the window with real measurements; the seed no longer caps.
	for i := 0; i < 10; i++ {
		e.Observe(3 * time.Millisecond)
	}
	if e.Estimate() != 3*time.Millisecond {
		t.Fatalf("full window should use measurements: %v", e.Estimate())
	}
}

func TestEstimatorIsWindowMax(t *testing.T) {
	e := NewEstimator(3)
	e.Observe(1 * time.Millisecond)
	e.Observe(9 * time.Millisecond)
	e.Observe(2 * time.Millisecond)
	if e.Estimate() != 9*time.Millisecond {
		t.Fatalf("estimate = %v", e.Estimate())
	}
	// The 9ms sample ages out after 3 more observations.
	e.Observe(2 * time.Millisecond)
	if e.Estimate() != 9*time.Millisecond {
		t.Fatal("9ms should still be in window")
	}
	e.Observe(2 * time.Millisecond)
	if e.Estimate() != 2*time.Millisecond {
		t.Fatalf("9ms should have aged out: %v", e.Estimate())
	}
}

func TestEstimatorNegativeClamped(t *testing.T) {
	e := NewEstimator(2)
	e.Observe(-time.Second)
	if e.Estimate() != 0 {
		t.Fatal("negative observation should clamp")
	}
}

func TestEstimatorPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEstimator(0)
}

func TestKeyString(t *testing.T) {
	k := Key{Op: "exec", Model: "resnet50", Batch: 4}
	if k.String() != "exec/resnet50/b4" {
		t.Fatalf("got %q", k.String())
	}
	k2 := Key{Op: "load", Model: "resnet50"}
	if k2.String() != "load/resnet50" {
		t.Fatalf("got %q", k2.String())
	}
}

func TestProfileRouting(t *testing.T) {
	p := NewProfile(0) // 0 → DefaultWindow
	ka := Key{Op: "exec", Model: "a", Batch: 1}
	kb := Key{Op: "exec", Model: "b", Batch: 1}
	p.Observe(ka, 2*time.Millisecond)
	p.Observe(kb, 7*time.Millisecond)
	if p.Estimate(ka) != 2*time.Millisecond || p.Estimate(kb) != 7*time.Millisecond {
		t.Fatal("keys not isolated")
	}
	if p.Estimate(Key{Op: "load", Model: "c"}) != 0 {
		t.Fatal("unknown key should estimate 0")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	p.Seed(Key{Op: "load", Model: "c"}, time.Millisecond)
	if p.Estimate(Key{Op: "load", Model: "c"}) != time.Millisecond {
		t.Fatal("seed through profile failed")
	}
}

func TestErrorTracker(t *testing.T) {
	et := NewErrorTracker()
	et.Record(10*time.Millisecond, 8*time.Millisecond)  // over by 2ms
	et.Record(10*time.Millisecond, 11*time.Millisecond) // under by 1ms
	et.Record(10*time.Millisecond, 10*time.Millisecond) // exact → under bucket with 0
	if et.Over.Count() != 1 || et.Under.Count() != 2 {
		t.Fatalf("over=%d under=%d", et.Over.Count(), et.Under.Count())
	}
	if et.Count() != 3 {
		t.Fatalf("count=%d", et.Count())
	}
	if et.Over.Max() != 2*time.Millisecond {
		t.Fatalf("over max = %v", et.Over.Max())
	}
}

// Property: the estimate is always ≥ every duration still in the window
// (never underpredicts the recent past), and equals one of the observed
// values once the window is full.
func TestEstimateDominatesWindowProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEstimator(10)
		for _, v := range raw {
			e.Observe(time.Duration(v) * time.Microsecond)
		}
		// Recompute expected max over last ≤10 observations.
		start := len(raw) - 10
		if start < 0 {
			start = 0
		}
		var max time.Duration
		for _, v := range raw[start:] {
			d := time.Duration(v) * time.Microsecond
			if d > max {
				max = d
			}
		}
		return e.Estimate() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
