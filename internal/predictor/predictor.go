package predictor

import (
	"fmt"
	"sort"
	"time"

	"clockwork/internal/telemetry"
)

// DefaultWindow is the paper's measurement window ("past 10 actions").
const DefaultWindow = 10

// Estimator tracks a rolling window of durations for one key.
type Estimator struct {
	window []time.Duration
	idx    int
	n      int
	seeded bool
	seed   time.Duration
}

// NewEstimator returns an estimator over the given window size.
func NewEstimator(windowSize int) *Estimator {
	if windowSize <= 0 {
		panic("predictor: non-positive window")
	}
	return &Estimator{window: make([]time.Duration, windowSize)}
}

// Seed installs a profiling-derived initial estimate, used until real
// measurements arrive (Clockwork profiles each model at load time, §5.1).
func (e *Estimator) Seed(d time.Duration) {
	e.seeded = true
	e.seed = d
}

// Observe records a measured duration.
func (e *Estimator) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.window[e.idx] = d
	e.idx = (e.idx + 1) % len(e.window)
	if e.n < len(e.window) {
		e.n++
	}
}

// Count returns the number of measurements in the window.
func (e *Estimator) Count() int { return e.n }

// Export returns the window's measurements oldest-first — the order
// that, replayed through Observe, reconstructs the estimator exactly
// (snapshot/restore of the control plane rides this).
func (e *Estimator) Export() []time.Duration {
	out := make([]time.Duration, 0, e.n)
	start := 0
	if e.n == len(e.window) {
		start = e.idx
	}
	for i := 0; i < e.n; i++ {
		out = append(out, e.window[(start+i)%len(e.window)])
	}
	return out
}

// Estimate returns the current prediction: the maximum over the window
// (a p99-style upper estimate), or the profiling seed before any
// measurement, or 0 if neither exists.
func (e *Estimator) Estimate() time.Duration {
	if e.n == 0 {
		if e.seeded {
			return e.seed
		}
		return 0
	}
	var max time.Duration
	for i := 0; i < e.n; i++ {
		if e.window[i] > max {
			max = e.window[i]
		}
	}
	// Until the window has filled, stay conservative: never estimate
	// below the profiling seed.
	if e.n < len(e.window) && e.seeded && e.seed > max {
		return e.seed
	}
	return max
}

// Key identifies one estimator: an operation ("exec", "load"), the model,
// and the batch size (0 for non-batched operations).
type Key struct {
	Op    string
	Model string
	Batch int
}

// String implements fmt.Stringer.
func (k Key) String() string {
	if k.Batch > 0 {
		return fmt.Sprintf("%s/%s/b%d", k.Op, k.Model, k.Batch)
	}
	return fmt.Sprintf("%s/%s", k.Op, k.Model)
}

// Profile is the controller's collection of estimators, one per key.
type Profile struct {
	window int
	m      map[Key]*Estimator
}

// NewProfile returns an empty profile using the given window size per key.
func NewProfile(windowSize int) *Profile {
	if windowSize <= 0 {
		windowSize = DefaultWindow
	}
	return &Profile{window: windowSize, m: make(map[Key]*Estimator)}
}

func (p *Profile) get(k Key) *Estimator {
	e, ok := p.m[k]
	if !ok {
		e = NewEstimator(p.window)
		p.m[k] = e
	}
	return e
}

// Seed installs a profiling-derived estimate for k.
func (p *Profile) Seed(k Key, d time.Duration) { p.get(k).Seed(d) }

// Observe records a measurement for k.
func (p *Profile) Observe(k Key, d time.Duration) { p.get(k).Observe(d) }

// Estimate returns the prediction for k (0 when nothing is known).
func (p *Profile) Estimate(k Key) time.Duration {
	if e, ok := p.m[k]; ok {
		return e.Estimate()
	}
	return 0
}

// Len returns the number of keys tracked.
func (p *Profile) Len() int { return len(p.m) }

// ExportKey returns k's measured window oldest-first (nil when the key
// is untracked or unmeasured). The profiling seed is not exported: it
// re-derives from the model catalogue at registration.
func (p *Profile) ExportKey(k Key) []time.Duration {
	e, ok := p.m[k]
	if !ok || e.n == 0 {
		return nil
	}
	return e.Export()
}

// Keys returns every tracked key sorted by (Model, Op, Batch), so
// exports serialize deterministically regardless of map iteration.
func (p *Profile) Keys() []Key {
	keys := make([]Key, 0, len(p.m))
	for k := range p.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Model != keys[j].Model {
			return keys[i].Model < keys[j].Model
		}
		if keys[i].Op != keys[j].Op {
			return keys[i].Op < keys[j].Op
		}
		return keys[i].Batch < keys[j].Batch
	})
	return keys
}

// ErrorTracker accumulates prediction-error telemetry for Fig 9:
// overpredictions (actual < predicted) and underpredictions
// (actual > predicted), for both action durations and completion times.
type ErrorTracker struct {
	Over  *telemetry.Histogram
	Under *telemetry.Histogram
}

// NewErrorTracker returns an empty tracker.
func NewErrorTracker() *ErrorTracker {
	return &ErrorTracker{Over: telemetry.NewHistogram(), Under: telemetry.NewHistogram()}
}

// Record files the signed error of one prediction.
func (t *ErrorTracker) Record(predicted, actual time.Duration) {
	if actual < predicted {
		t.Over.Observe(predicted - actual)
	} else {
		t.Under.Observe(actual - predicted)
	}
}

// Count returns the total number of recorded predictions.
func (t *ErrorTracker) Count() uint64 { return t.Over.Count() + t.Under.Count() }
