package network

import (
	"testing"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

func TestSendDeliversAfterLatency(t *testing.T) {
	eng := simclock.NewEngine()
	l := NewLink(eng)
	var at simclock.Time
	l.Send(0, func() { at = eng.Now() })
	eng.Run()
	if at != simclock.Time(DefaultLatency) {
		t.Fatalf("delivered at %v, want %v", at, DefaultLatency)
	}
	if l.Sent() != 1 || l.BytesSent() != 0 {
		t.Fatal("counters wrong")
	}
}

func TestSendSerialisationDelay(t *testing.T) {
	eng := simclock.NewEngine()
	l := NewLink(eng)
	l.Latency = 0
	// 1.25 MB at 1.25 GB/s = 1ms.
	var at simclock.Time
	l.Send(1_250_000, func() { at = eng.Now() })
	eng.Run()
	if at != simclock.Time(time.Millisecond) {
		t.Fatalf("delivered at %v, want 1ms", at)
	}
}

func TestLinkFIFOBacklog(t *testing.T) {
	eng := simclock.NewEngine()
	l := NewLink(eng)
	l.Latency = 0
	var order []int
	l.Send(1_250_000, func() { order = append(order, 1) }) // 1ms
	l.Send(1_250_000, func() { order = append(order, 2) }) // +1ms
	if d := l.QueueDelay(); d != 2*time.Millisecond {
		t.Fatalf("queue delay = %v", d)
	}
	eng.Run()
	if eng.Now() != simclock.Time(2*time.Millisecond) {
		t.Fatalf("drained at %v", eng.Now())
	}
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	eng := simclock.NewEngine()
	l := NewLink(eng)
	l.BytesPerSecond = 0
	l.Latency = time.Microsecond
	var at simclock.Time
	l.Send(1<<40, func() { at = eng.Now() })
	eng.Run()
	if at != simclock.Time(time.Microsecond) {
		t.Fatalf("delivered at %v", at)
	}
}

func TestJitterOccasionallyDelays(t *testing.T) {
	eng := simclock.NewEngine()
	l := NewLink(eng)
	l.Latency = 0
	l.BytesPerSecond = 0
	l.Jitter = rng.NewStream(1)
	l.JitterProb = 0.5
	l.JitterMax = time.Millisecond
	delayed := 0
	for i := 0; i < 1000; i++ {
		sentAt := eng.Now()
		var arrived simclock.Time
		l.Send(0, func() { arrived = eng.Now() })
		eng.Run()
		if arrived.Sub(sentAt) > 0 {
			delayed++
		}
	}
	if delayed < 300 || delayed > 700 {
		t.Fatalf("jitter applied to %d/1000 messages, want ≈500", delayed)
	}
}

func TestSendPanics(t *testing.T) {
	eng := simclock.NewEngine()
	l := NewLink(eng)
	for i, fn := range []func(){
		func() { l.Send(-1, func() {}) },
		func() { l.Send(0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDuplexIndependentDirections(t *testing.T) {
	eng := simclock.NewEngine()
	d := NewDuplex(eng)
	d.AtoB.Latency = 0
	d.BtoA.Latency = 0
	// Saturate A→B; B→A must be unaffected.
	d.AtoB.Send(12_500_000, func() {}) // 10ms at 1.25GB/s
	var backAt simclock.Time
	d.BtoA.Send(0, func() { backAt = eng.Now() })
	eng.Run()
	if backAt != 0 {
		t.Fatalf("reverse direction delayed: %v", backAt)
	}
}
