// Package network simulates the cluster fabric between clients, the
// controller, and workers: directional links with propagation latency and
// finite bandwidth (the paper's testbed uses shared 2×10Gbps Ethernet).
//
// Clockwork routes inference inputs through the controller (§7), so the
// links carry real payload sizes; the §6.5 scale experiment's
// "zero-length inputs" mode is reproduced by sending zero bytes.
//
// In the request lifecycle the network appears three times: the client
// link (submission and response), the per-worker duplex links (actions
// out, results back), and the LOAD payloads implied by transfer times.
package network
