package network

import (
	"fmt"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// DefaultBandwidth is 10 Gb/s in bytes/second.
const DefaultBandwidth = 10.0 * 1000 * 1000 * 1000 / 8

// DefaultLatency is the one-way propagation delay within the cluster.
const DefaultLatency = 50 * time.Microsecond

// Link is a directional point-to-point link. Messages serialise FIFO at
// the link bandwidth, then arrive after the propagation latency.
type Link struct {
	eng *simclock.Engine

	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BytesPerSecond is the serialisation bandwidth; 0 means infinite.
	BytesPerSecond float64
	// Jitter, if non-nil, adds a random extra delay of up to JitterMax
	// with probability JitterProb per message (network spikes, §7).
	Jitter     *rng.Stream
	JitterProb float64
	JitterMax  time.Duration

	busyUntil simclock.Time
	sent      uint64
	bytesSent uint64
}

// NewLink returns a link with default cluster calibration.
func NewLink(eng *simclock.Engine) *Link {
	return &Link{eng: eng, Latency: DefaultLatency, BytesPerSecond: DefaultBandwidth}
}

// Send transmits a message of the given size and runs deliver at the
// receiver when it arrives. Zero-byte messages still pay propagation
// latency (request metadata).
func (l *Link) Send(bytes int64, deliver func()) {
	if deliver == nil {
		panic("network: nil deliver")
	}
	l.eng.Schedule(l.arrivalAt(bytes), deliver)
}

// SendRun is Send with a preallocated receiver instead of a closure —
// the allocation-free form for per-request hops whose receiver already
// exists (see simclock.Runner). Serialisation, latency and jitter are
// identical to Send.
func (l *Link) SendRun(bytes int64, r simclock.Runner) {
	if r == nil {
		panic("network: nil receiver")
	}
	l.eng.ScheduleRun(l.arrivalAt(bytes), r)
}

// arrivalAt advances the link's serialisation horizon for a message of
// the given size and returns the instant it is delivered.
func (l *Link) arrivalAt(bytes int64) simclock.Time {
	if bytes < 0 {
		panic(fmt.Sprintf("network: negative message size %d", bytes))
	}
	var ser time.Duration
	if l.BytesPerSecond > 0 {
		ser = time.Duration(float64(bytes) / l.BytesPerSecond * float64(time.Second))
	}
	start := simclock.Max(l.eng.Now(), l.busyUntil)
	l.busyUntil = start.Add(ser)
	delay := l.Latency
	if l.Jitter != nil && l.JitterProb > 0 && l.Jitter.Bernoulli(l.JitterProb) {
		delay += time.Duration(l.Jitter.Float64() * float64(l.JitterMax))
	}
	l.sent++
	l.bytesSent += uint64(bytes)
	return l.busyUntil.Add(delay)
}

// Sent returns the number of messages transmitted.
func (l *Link) Sent() uint64 { return l.sent }

// BytesSent returns the total payload bytes transmitted.
func (l *Link) BytesSent() uint64 { return l.bytesSent }

// QueueDelay returns the serialisation backlog a message sent now would
// experience before its first byte leaves.
func (l *Link) QueueDelay() time.Duration {
	now := l.eng.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil.Sub(now)
}

// Duplex is a bidirectional connection: a pair of independent links.
type Duplex struct {
	AtoB *Link
	BtoA *Link
}

// NewDuplex returns a connection with default calibration both ways.
func NewDuplex(eng *simclock.Engine) *Duplex {
	return &Duplex{AtoB: NewLink(eng), BtoA: NewLink(eng)}
}
