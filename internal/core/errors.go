package core

import "errors"

// Sentinel errors returned by the cluster/controller API. All are
// wrapped with context (model names, worker IDs, the registered policy
// list) — match with errors.Is.
var (
	// ErrUnknownModel: the request or operation names a model that is
	// not registered.
	ErrUnknownModel = errors.New("unknown model")
	// ErrDuplicateModel: RegisterModel was called twice for one name.
	ErrDuplicateModel = errors.New("model already registered")
	// ErrModelBusy: the model has in-flight actions (a LOAD or INFER),
	// so it cannot be unregistered right now.
	ErrModelBusy = errors.New("model has in-flight actions")
	// ErrUnknownPolicy: no policy with that name is registered.
	ErrUnknownPolicy = errors.New("unknown policy")
	// ErrDuplicatePolicy: RegisterPolicy was called twice for one name.
	ErrDuplicatePolicy = errors.New("policy already registered")
	// ErrNoSuchWorker: the worker ID is out of range.
	ErrNoSuchWorker = errors.New("no such worker")
	// ErrWorkerDown: the worker was already drained or failed.
	ErrWorkerDown = errors.New("worker is drained or failed")
	// ErrInvalidRequest: the submission spec is malformed (empty model
	// name, non-positive SLO, negative batch cap, …).
	ErrInvalidRequest = errors.New("invalid request")
	// ErrNoSuchShard: the shard index is out of range for the cluster.
	ErrNoSuchShard = errors.New("no such shard")
)
