package core

import (
	"sync"
	"time"

	"clockwork/internal/simclock"
	"clockwork/internal/telemetry"
	"clockwork/internal/worker"
)

// Metrics aggregates client-observed outcomes plus device utilisation —
// everything the paper's evaluation figures plot.
type Metrics struct {
	interval time.Duration

	// concurrent switches the write paths (record, the device busy
	// callbacks) onto mu. The single-engine control plane leaves it off
	// — everything runs on one goroutine and the hot path pays nothing;
	// a multi-engine cluster (one engine per shard) sets it at
	// construction. Reads are only consistent when no engine is running
	// — in live multi-engine mode, under a Live.Do barrier.
	concurrent bool
	mu         sync.Mutex

	// LatencyAll covers every request including failures (the paper's
	// CDFs include rejected requests); LatencyGood covers only
	// responses that succeeded within their SLO.
	LatencyAll  *telemetry.Histogram
	LatencyGood *telemetry.Histogram

	// Throughput counts all responses; Goodput counts only successes
	// within SLO (Fig 5/6/8).
	Throughput *telemetry.TimeSeries
	Goodput    *telemetry.TimeSeries

	// LatencySeries holds one histogram per interval for the per-minute
	// median/p99/max curves of Fig 8(b) and Fig 6(b).
	LatencySeries []*telemetry.Histogram

	// Batch tracks executed batch sizes per interval (Fig 8(c)).
	Batch *telemetry.TimeSeries

	// ColdStartThroughput counts successful cold-start responses
	// (Fig 8(e)); ColdModels counts distinct models with ≥1 cold start
	// per interval (Fig 8(d)).
	ColdStartThroughput *telemetry.TimeSeries
	coldModelSets       []map[string]bool

	// GPUUtil and PCIUtil integrate device busy time across all GPUs
	// (Fig 6(d,e)); NumGPUs normalises them to fractions.
	GPUUtil *telemetry.Utilization
	PCIUtil *telemetry.Utilization
	NumGPUs int

	Success   telemetry.Counter
	Failures  telemetry.Counter
	SLOMisses telemetry.Counter // successes that exceeded the SLO end-to-end

	// perModel and perTenant break client-observed outcomes down for
	// the control plane's ModelStats/TenantStats (lazily allocated on
	// a model/tenant's first response). lastModel/lastMC memoise the
	// most recent lookup: responses arrive in model bursts (batches
	// complete together), so the common record() skips the map hash.
	// Entries are never deleted, so the memoised pointer cannot dangle.
	perModel  map[string]*modelCounters
	perTenant map[string]*tenantCounters
	lastModel string
	lastMC    *modelCounters

	// perShard bins client-observed outcomes by the scheduler shard
	// that owned the model at completion — the balance signal the
	// sharded control plane exposes (grown lazily to the highest shard
	// index seen).
	perShard []ShardBin

	// recent* accumulate one control period's client-observed outcomes
	// for the closed-loop autoscaler: a single engine-confined consumer
	// drains and resets them each period via DrainRecent. Guarded by
	// the same lock()/unlock() gate as every other write path.
	recentCompleted  uint64
	recentViolations uint64
	recentLatency    *telemetry.Histogram
	recentMinSLO     time.Duration
}

// RecentStats is one control period's slice of the client-observed
// outcomes — the autoscaler's signal set. Violations counts failures
// plus successes over their SLO; P99 is the period's latency p99 and
// MinSLO its tightest observed objective (both zero when Completed is).
type RecentStats struct {
	Completed  uint64
	Violations uint64
	P99        time.Duration
	MinSLO     time.Duration
}

// ShardBin is one scheduler shard's slice of the client-observed
// outcome counters.
type ShardBin struct {
	Requests  uint64
	Succeeded uint64
	Failed    uint64
	// WithinSLO counts successes inside their SLO; SLOMisses counts
	// successes that exceeded it end-to-end.
	WithinSLO uint64
	SLOMisses uint64
}

// modelCounters aggregates one model's client-observed outcomes.
type modelCounters struct {
	requests, succeeded, failed uint64
	withinSLO, sloMisses        uint64
	coldStarts                  uint64
	cancelled, rejected         uint64
	timedOut, workerLost        uint64
	latency                     *telemetry.Histogram
}

// tenantCounters aggregates one tenant's client-observed outcomes.
type tenantCounters struct {
	requests, succeeded, withinSLO uint64
}

// ModelStats is the per-model slice of the metrics, exposed through the
// runtime control plane.
type ModelStats struct {
	Requests  uint64
	Succeeded uint64
	Failed    uint64
	// WithinSLO counts successes inside their SLO; SLOMisses counts
	// successes that exceeded it end-to-end.
	WithinSLO uint64
	SLOMisses uint64
	// ColdStarts counts responses whose request arrived with the model
	// not GPU-resident anywhere.
	ColdStarts uint64
	// Failure taxonomy (see Reason). WorkerLost counts requests whose
	// in-flight work died with a failed worker.
	Cancelled  uint64
	Rejected   uint64
	TimedOut   uint64
	WorkerLost uint64
	// Client-observed latency over all of the model's requests.
	P50, P99, Max time.Duration
	// GoodputMean is within-SLO responses per second of elapsed run.
	GoodputMean float64
}

// TenantStats is the per-tenant slice of the metrics.
type TenantStats struct {
	Requests  uint64
	Succeeded uint64
	WithinSLO uint64
}

func newMetrics(interval time.Duration) *Metrics {
	return &Metrics{
		interval:            interval,
		LatencyAll:          telemetry.NewHistogram(),
		LatencyGood:         telemetry.NewHistogram(),
		Throughput:          telemetry.NewTimeSeries(interval),
		Goodput:             telemetry.NewTimeSeries(interval),
		Batch:               telemetry.NewTimeSeries(interval),
		ColdStartThroughput: telemetry.NewTimeSeries(interval),
		GPUUtil:             telemetry.NewUtilization(interval),
		PCIUtil:             telemetry.NewUtilization(interval),
		perModel:            make(map[string]*modelCounters),
		perTenant:           make(map[string]*tenantCounters),
		recentLatency:       telemetry.NewHistogram(),
	}
}

// DrainRecent returns the outcomes accumulated since the previous
// drain and resets the period accumulators. Engine-side: call it from
// one consumer only, on the engine goroutine (in live multi-engine
// mode, under a Live.Do barrier — the same consistency rule every
// cross-shard read follows).
func (m *Metrics) DrainRecent() RecentStats {
	m.lock()
	defer m.unlock()
	st := RecentStats{
		Completed:  m.recentCompleted,
		Violations: m.recentViolations,
		P99:        m.recentLatency.Percentile(99),
		MinSLO:     m.recentMinSLO,
	}
	m.recentCompleted = 0
	m.recentViolations = 0
	m.recentLatency = telemetry.NewHistogram()
	m.recentMinSLO = 0
	return st
}

// Interval returns the bucket width shared by all series.
func (m *Metrics) Interval() time.Duration { return m.interval }

// setConcurrent arms the write-path mutex; call before any engine runs.
func (m *Metrics) setConcurrent() { m.concurrent = true }

func (m *Metrics) lock() {
	if m.concurrent {
		m.mu.Lock()
	}
}

func (m *Metrics) unlock() {
	if m.concurrent {
		m.mu.Unlock()
	}
}

func (m *Metrics) attachGPUs(w *worker.Worker) {
	for i := 0; i < w.NumGPUs(); i++ {
		g := w.GPU(i)
		prevDev := g.Dev.OnBusy
		g.Dev.OnBusy = func(from, to simclock.Time) {
			if prevDev != nil {
				prevDev(from, to)
			}
			m.lock()
			m.GPUUtil.AddBusy(from, to)
			m.unlock()
		}
		prevH2D := g.H2D.OnBusy
		g.H2D.OnBusy = func(from, to simclock.Time) {
			if prevH2D != nil {
				prevH2D(from, to)
			}
			m.lock()
			m.PCIUtil.AddBusy(from, to)
			m.unlock()
		}
		m.NumGPUs++
	}
}

func (m *Metrics) bucket(t simclock.Time) int {
	if t < 0 {
		return 0
	}
	return int(int64(t) / int64(m.interval))
}

func (m *Metrics) latencyHist(idx int) *telemetry.Histogram {
	for len(m.LatencySeries) <= idx {
		m.LatencySeries = append(m.LatencySeries, telemetry.NewHistogram())
	}
	return m.LatencySeries[idx]
}

func (m *Metrics) coldSet(idx int) map[string]bool {
	for len(m.coldModelSets) <= idx {
		m.coldModelSets = append(m.coldModelSets, make(map[string]bool))
	}
	return m.coldModelSets[idx]
}

// shardBin returns the (lazily grown) bin for shard i.
func (m *Metrics) shardBin(i int) *ShardBin {
	for len(m.perShard) <= i {
		m.perShard = append(m.perShard, ShardBin{})
	}
	return &m.perShard[i]
}

// ShardStats returns shard i's outcome bin (zero for shards that have
// not completed any response yet).
func (m *Metrics) ShardStats(i int) ShardBin {
	if i < 0 || i >= len(m.perShard) {
		return ShardBin{}
	}
	return m.perShard[i]
}

// record ingests one client-observed response, attributed to the
// scheduler shard owning the model at completion.
func (m *Metrics) record(now simclock.Time, shard int, resp Response, latency, slo time.Duration) {
	m.lock()
	defer m.unlock()
	idx := m.bucket(now)
	m.LatencyAll.Observe(latency)
	m.latencyHist(idx).Observe(latency)
	m.Throughput.Incr(now)
	m.recentCompleted++
	m.recentLatency.Observe(latency)
	if !resp.Success || latency > slo {
		m.recentViolations++
	}
	if slo > 0 && (m.recentMinSLO == 0 || slo < m.recentMinSLO) {
		m.recentMinSLO = slo
	}
	sb := m.shardBin(shard)
	sb.Requests++

	mc := m.lastMC
	if mc == nil || resp.Model != m.lastModel {
		mc = m.perModel[resp.Model]
		if mc == nil {
			mc = &modelCounters{latency: telemetry.NewHistogram()}
			m.perModel[resp.Model] = mc
		}
		m.lastModel, m.lastMC = resp.Model, mc
	}
	mc.requests++
	mc.latency.Observe(latency)
	if resp.ColdStart {
		mc.coldStarts++
	}
	var tc *tenantCounters
	if resp.Tenant != "" {
		tc = m.perTenant[resp.Tenant]
		if tc == nil {
			tc = &tenantCounters{}
			m.perTenant[resp.Tenant] = tc
		}
		tc.requests++
	}

	if resp.Success {
		m.Success.Incr()
		mc.succeeded++
		sb.Succeeded++
		if tc != nil {
			tc.succeeded++
		}
		if latency <= slo {
			m.LatencyGood.Observe(latency)
			m.Goodput.Incr(now)
			mc.withinSLO++
			sb.WithinSLO++
			if tc != nil {
				tc.withinSLO++
			}
		} else {
			m.SLOMisses.Incr()
			mc.sloMisses++
			sb.SLOMisses++
		}
		m.Batch.Add(now, float64(resp.Batch))
		if resp.ColdStart {
			m.ColdStartThroughput.Incr(now)
			m.coldSet(idx)[resp.Model] = true
		}
	} else {
		m.Failures.Incr()
		mc.failed++
		sb.Failed++
		switch resp.Reason {
		case ReasonCancelled, ReasonUnregistered:
			mc.cancelled++
		case ReasonTimeout:
			mc.timedOut++
		case ReasonWorkerFailed:
			mc.workerLost++
		default:
			mc.rejected++
		}
		if resp.ColdStart {
			m.coldSet(idx)[resp.Model] = true
		}
	}
}

// ModelStats returns the per-model aggregate for name; ok is false when
// the model has not produced any response yet. elapsed (the run's
// virtual duration) normalises goodput.
func (m *Metrics) ModelStats(name string, elapsed time.Duration) (ModelStats, bool) {
	mc, ok := m.perModel[name]
	if !ok {
		return ModelStats{}, false
	}
	st := ModelStats{
		Requests:   mc.requests,
		Succeeded:  mc.succeeded,
		Failed:     mc.failed,
		WithinSLO:  mc.withinSLO,
		SLOMisses:  mc.sloMisses,
		ColdStarts: mc.coldStarts,
		Cancelled:  mc.cancelled,
		Rejected:   mc.rejected,
		TimedOut:   mc.timedOut,
		WorkerLost: mc.workerLost,
		P50:        mc.latency.Percentile(50),
		P99:        mc.latency.Percentile(99),
		Max:        mc.latency.Max(),
	}
	if s := elapsed.Seconds(); s > 0 {
		st.GoodputMean = float64(mc.withinSLO) / s
	}
	return st, true
}

// TenantStats returns the per-tenant aggregate; ok is false for tenants
// that have not produced any response.
func (m *Metrics) TenantStats(tenant string) (TenantStats, bool) {
	tc, ok := m.perTenant[tenant]
	if !ok {
		return TenantStats{}, false
	}
	return TenantStats{Requests: tc.requests, Succeeded: tc.succeeded, WithinSLO: tc.withinSLO}, true
}

// ColdModels returns the number of distinct models that had at least one
// cold-start request in interval i (Fig 8(d)).
func (m *Metrics) ColdModels(i int) int {
	if i < 0 || i >= len(m.coldModelSets) {
		return 0
	}
	return len(m.coldModelSets[i])
}

// GPUUtilFraction returns the mean per-GPU busy fraction in interval i.
func (m *Metrics) GPUUtilFraction(i int) float64 {
	if m.NumGPUs == 0 {
		return 0
	}
	return float64(m.GPUUtil.BusyIn(i)) / float64(m.interval) / float64(m.NumGPUs)
}

// PCIUtilFraction returns the mean per-link busy fraction in interval i.
func (m *Metrics) PCIUtilFraction(i int) float64 {
	if m.NumGPUs == 0 {
		return 0
	}
	return float64(m.PCIUtil.BusyIn(i)) / float64(m.interval) / float64(m.NumGPUs)
}
