// Package core implements Clockwork's control plane: the centralized
// controller of the paper (§4.5, §5.3), its scheduler (Appendix B),
// and the sharded extension that partitions both for scale. All
// performance-relevant choices — admission, batching, placement, cache
// management — are made here; workers execute exactly what they are
// told.
//
// # Request lifecycle
//
// A request traverses the package in five steps (the full picture,
// including the packages on either side, is in ARCHITECTURE.md):
//
//  1. Submit. Cluster.SubmitRequest validates the spec, resolves the
//     model's owning scheduler shard, and puts the input on the
//     client network link.
//  2. Shard. On arrival the owning Controller mints a request ID
//     (from the shard's disjoint ID progression), derives the
//     internal deadline from the SLO, enqueues the request on its
//     model's queue, arms admission control's last-chance timer, and
//     hands it to the shard's Scheduler.
//  3. Schedule. The scheduler keeps every GPU executor supplied with
//     at most Lookahead of predicted work: INFER strategies picked
//     from per-GPU strategy heaps, LOADs by Appendix B demand
//     priority over the demand-ordered index (see index.go).
//  4. Execute. Actions travel to the worker, run (or get rejected if
//     their window closed), and results return to HandleResult,
//     which updates mirrors, feeds the predictor, and answers the
//     batch's requests.
//  5. Respond. The response crosses the client link back; the cluster
//     records client-observed latency into Metrics (global,
//     per-model, per-tenant and per-shard bins) and settles the
//     client's Handle.
//
// # Sharding
//
// ClusterConfig.Shards > 1 partitions the control plane into N
// controllers on the one event engine. Each shard owns a disjoint
// slice of workers (global worker ID mod N) — and therefore of GPUs —
// and a disjoint subset of models (consistent FNV hash of the name,
// mutated only by migration). Cross-shard state lives exclusively in
// the Cluster: the model→shard and worker→shard maps and the shared
// client-observed Metrics. A periodic rebalancer (rebalance.go)
// migrates models — queued requests included, losslessly — from hot
// shards to cold ones when demand skews; shard.go holds the
// extract/adopt primitives that make the move atomic on the virtual
// clock.
//
// Shards == 1 is bit-identical to the pre-shard centralized
// controller (goldens in internal/experiments enforce this), and
// determinism survives N > 1: shards share the deterministic engine,
// IDs stride so they never collide, worker RNG streams derive from
// worker IDs (not shard membership), and every rebalance decision
// breaks ties by shard index and model registration sequence.
package core
