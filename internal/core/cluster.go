package core

import (
	"fmt"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/gpu"
	"clockwork/internal/modelzoo"
	"clockwork/internal/network"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
	"clockwork/internal/tracelog"
	"clockwork/internal/worker"
)

// ClusterConfig assembles a whole serving system: workers, controller,
// network, and client-side metrics.
type ClusterConfig struct {
	Workers       int
	GPUsPerWorker int

	// Worker geometry overrides (zero = paper defaults).
	DeviceMemBytes int64
	PageCacheBytes int64

	// Noise selects the hardware timing noise model; the zero value
	// means gpu.DefaultNoise (use gpu.NoNoise for exact-schedule tests
	// by setting NoNoise=true).
	Noise   gpu.Noise
	NoNoise bool

	Seed uint64

	// Controller configuration and scheduler. A nil Scheduler selects
	// the paper's ClockworkScheduler; NewClusterWithPolicy resolves
	// schedulers by registry name instead.
	Controller Config
	Scheduler  Scheduler

	// Network shape. Client bandwidth 0 = unconstrained aggregate
	// (clients live on many machines); worker links default to 10Gbps.
	NetLatency      time.Duration
	WorkerBandwidth float64
	ClientBandwidth float64

	// ZeroLengthInputs reproduces the §6.5 scale experiment: clients
	// send zero-length inputs and workers generate inputs on arrival.
	ZeroLengthInputs bool

	// WorkerBestEffort switches workers into the baseline thread-pool
	// execution mode (concurrent EXECs); used with baseline schedulers.
	WorkerBestEffort bool

	// MetricsInterval buckets time series (default 1 minute, matching
	// the paper's plots).
	MetricsInterval time.Duration

	// Trace, if non-nil, captures the controller's full decision stream
	// (requests, actions, results, responses) for §7-style performance
	// clarity: per-request time breakdowns and action audits.
	Trace *tracelog.Log
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 1
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = time.Minute
	}
	var zero gpu.Noise
	if c.Noise == zero && !c.NoNoise {
		c.Noise = gpu.DefaultNoise
	}
	if c.NoNoise {
		c.Noise = gpu.NoNoise
	}
	if c.NetLatency <= 0 {
		c.NetLatency = network.DefaultLatency
	}
	if c.WorkerBandwidth <= 0 {
		c.WorkerBandwidth = network.DefaultBandwidth
	}
	return c
}

// Cluster is a fully wired Clockwork deployment on a single event engine.
type Cluster struct {
	Eng     *simclock.Engine
	Ctl     *Controller
	Workers []*worker.Worker
	Metrics *Metrics

	cfg        ClusterConfig
	src        *rng.Source
	clientLink *network.Duplex
}

// NewCluster builds a deployment. Register models with RegisterModel (or
// RegisterCopies), then drive load via Submit and run the engine.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	eng := simclock.NewEngine()

	sched := cfg.Scheduler
	if sched == nil {
		sched = NewClockworkScheduler()
	}
	ctl := NewController(eng, cfg.Controller, sched)

	cl := &Cluster{
		Eng:        eng,
		Ctl:        ctl,
		cfg:        cfg,
		src:        rng.NewSource(cfg.Seed),
		clientLink: network.NewDuplex(eng),
		Metrics:    newMetrics(cfg.MetricsInterval),
	}
	cl.clientLink.AtoB.Latency = cfg.NetLatency
	cl.clientLink.BtoA.Latency = cfg.NetLatency
	cl.clientLink.AtoB.BytesPerSecond = cfg.ClientBandwidth
	cl.clientLink.BtoA.BytesPerSecond = cfg.ClientBandwidth

	for i := 0; i < cfg.Workers; i++ {
		cl.addWorker()
	}
	return cl
}

// addWorker constructs one worker with the cluster's geometry, wires its
// network link and controller mirrors, and returns its ID. Worker RNG
// streams derive from the worker ID, so a worker added at runtime gets
// the same noise stream it would have had at startup.
func (cl *Cluster) addWorker() int {
	id := len(cl.Workers)
	wcfg := worker.Config{
		ID:             id,
		GPUs:           cl.cfg.GPUsPerWorker,
		DeviceMemBytes: cl.cfg.DeviceMemBytes,
		PageCacheBytes: cl.cfg.PageCacheBytes,
		Noise:          cl.cfg.Noise,
		BestEffort:     cl.cfg.WorkerBestEffort,
	}.Resolved()
	w := worker.New(cl.Eng, cl.src, wcfg)
	link := network.NewDuplex(cl.Eng)
	link.AtoB.Latency = cl.cfg.NetLatency
	link.BtoA.Latency = cl.cfg.NetLatency
	link.AtoB.BytesPerSecond = cl.cfg.WorkerBandwidth
	link.BtoA.BytesPerSecond = cl.cfg.WorkerBandwidth

	eng := cl.Eng
	wi := w
	li := link
	cl.Ctl.AddWorker(id, wcfg.GPUs, wcfg.PageCacheBytes, wcfg.PageSize,
		func(a *action.Action, payloadBytes int64) {
			if cl.cfg.ZeroLengthInputs {
				payloadBytes = 0
			}
			if cl.cfg.Trace != nil {
				cl.cfg.Trace.Append(tracelog.Event{
					At: eng.Now().Duration(), Kind: tracelog.KindAction,
					ActionID: a.ID, ActionType: a.Type.String(),
					Model: a.Model, Batch: a.Batch, RequestIDs: a.RequestIDs,
					Worker: wi.ID(), GPU: a.GPU,
					Start: a.Earliest.Duration(), End: a.Latest.Duration(),
				})
			}
			li.AtoB.Send(payloadBytes, func() { wi.Submit(a) })
		})
	w.OnResult = func(r action.Result) {
		var bytes int64
		if r.Type == action.Infer && r.Status.IsSuccess() {
			bytes = int64(len(r.RequestIDs)) * outputBytesOf(cl, r.Model)
		}
		li.BtoA.Send(bytes, func() {
			if cl.cfg.Trace != nil {
				cl.cfg.Trace.Append(tracelog.Event{
					At: eng.Now().Duration(), Kind: tracelog.KindResult,
					ActionID: r.ActionID, ActionType: r.Type.String(),
					Model: r.Model, Batch: r.Batch, RequestIDs: r.RequestIDs,
					Worker: r.WorkerID, GPU: r.GPU,
					Start: r.Start.Duration(), End: r.End.Duration(),
					Duration: r.Duration, Status: r.Status.String(),
				})
			}
			cl.Ctl.HandleResult(r)
		})
	}
	// Bring the new worker up with every model registered so far
	// (§5.1: workers pre-load all models into host RAM).
	cl.Ctl.EachModel(w.RegisterModel)
	cl.Workers = append(cl.Workers, w)
	cl.Metrics.attachGPUs(w)
	return id
}

func outputBytesOf(cl *Cluster, model string) int64 {
	if mi, ok := cl.Ctl.Model(model); ok {
		return mi.Zoo().OutputBytes()
	}
	return 0
}

// Config returns the effective cluster configuration.
func (cl *Cluster) Config() ClusterConfig { return cl.cfg }

// ---- runtime control plane ----

// AddWorker adds one worker (with the cluster's standard geometry) at
// runtime and returns its ID. The new worker starts with every
// registered model in host RAM and becomes schedulable immediately.
func (cl *Cluster) AddWorker() int { return cl.addWorker() }

// DrainWorker stops scheduling new actions on worker id; in-flight
// actions finish and their results are honoured.
func (cl *Cluster) DrainWorker(id int) error { return cl.Ctl.DrainWorker(id) }

// FailWorker abruptly fails worker id: scheduling stops, in-flight work
// is lost (its requests fail with ReasonWorkerFailed) and late results
// from the worker are dropped.
func (cl *Cluster) FailWorker(id int) error {
	if err := cl.Ctl.FailWorker(id); err != nil {
		return err
	}
	cl.Workers[id].Fail()
	return nil
}

// InjectDisturbance stalls a GPU's execution engine for d — the §4.3
// class of external slowdowns (thermal throttling, maintenance tasks)
// the controller cannot predict, promoted from the fault-injection test
// harness to a first-class API.
func (cl *Cluster) InjectDisturbance(workerID, gpuID int, d time.Duration) error {
	if workerID < 0 || workerID >= len(cl.Workers) {
		return fmt.Errorf("%w: %d (have %d)", ErrNoSuchWorker, workerID, len(cl.Workers))
	}
	w := cl.Workers[workerID]
	if gpuID < 0 || gpuID >= w.NumGPUs() {
		return fmt.Errorf("%w: worker %d has no GPU %d", ErrNoSuchWorker, workerID, gpuID)
	}
	w.GPU(gpuID).Dev.InjectDisturbance(d)
	return nil
}

// UnregisterModel removes a model instance cluster-wide. Queued requests
// fail with ReasonUnregistered; replicas are unloaded. Models with
// in-flight actions return ErrModelBusy.
func (cl *Cluster) UnregisterModel(name string) error {
	if err := cl.Ctl.UnregisterModel(name); err != nil {
		return err
	}
	for _, w := range cl.Workers {
		w.UnregisterModel(name)
	}
	return nil
}

// ModelStats returns the per-model metrics slice for name. ok is false
// when the model is unknown and has never produced a response.
func (cl *Cluster) ModelStats(name string) (ModelStats, bool) {
	st, ok := cl.Metrics.ModelStats(name, cl.Eng.Now().Duration())
	if !ok {
		if _, known := cl.Ctl.Model(name); !known {
			return ModelStats{}, false
		}
	}
	return st, true
}

// TenantStats returns the per-tenant metrics slice for tenant.
func (cl *Cluster) TenantStats(tenant string) (TenantStats, bool) {
	return cl.Metrics.TenantStats(tenant)
}

// ---- registration ----

// RegisterModel announces one model instance to the controller and every
// worker (workers pre-load all models into host RAM, §5.1).
func (cl *Cluster) RegisterModel(name string, zoo *modelzoo.Model) error {
	if err := cl.Ctl.RegisterModel(name, zoo); err != nil {
		return err
	}
	for _, w := range cl.Workers {
		w.RegisterModel(name, zoo)
	}
	return nil
}

// RegisterCopies registers n independent instances of zoo named
// "<base>#0" … "<base>#n-1" and returns their names — the paper's
// "15 separate copies of ResNet50" pattern. A name collision with an
// existing instance is ErrDuplicateModel (instances registered before
// the collision stay registered).
func (cl *Cluster) RegisterCopies(base string, zoo *modelzoo.Model, n int) ([]string, error) {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s#%d", base, i)
		if err := cl.RegisterModel(names[i], zoo); err != nil {
			return names[:i], err
		}
	}
	return names, nil
}

// ---- submission ----

// Handle tracks one submitted request from the client's side. The
// simulation is single-threaded: inspect or cancel between Run* calls.
type Handle struct {
	cl  *Cluster
	req *Request // nil until the request reaches the controller

	cancelPending bool
	done          bool
	resp          Response
	latency       time.Duration
}

// ID returns the controller-assigned request ID (0 while the request is
// still in transit to the controller).
func (h *Handle) ID() uint64 {
	if h.req == nil {
		return 0
	}
	return h.req.ID
}

// Done reports whether the request has a final outcome.
func (h *Handle) Done() bool { return h.done }

// Outcome returns the final response and client-observed latency; ok is
// false while the request is still pending.
func (h *Handle) Outcome() (Response, time.Duration, bool) {
	return h.resp, h.latency, h.done
}

// Cancel requests cancellation and reports whether it took effect. A
// still-queued request is cancelled immediately; a request still in
// transit to the controller is cancelled deterministically on arrival,
// before the scheduler can dispatch it. Only a request already handed
// to a worker cannot be clawed back (§4.2 — workers are never
// second-guessed mid-action): then Cancel reports false and the
// request runs to its normal outcome.
func (h *Handle) Cancel() bool {
	if h.done {
		return false
	}
	if h.req == nil {
		h.cancelPending = true
		return true
	}
	return h.cl.Ctl.CancelRequest(h.req)
}

// Submit issues one client request with default options. The input
// travels client→controller over the shared client link; the response
// is delivered back to the client, where latency is measured and
// recorded. onDone may be nil. Unknown models are a typed error.
func (cl *Cluster) Submit(model string, slo time.Duration, onDone func(Response, time.Duration)) error {
	_, err := cl.SubmitRequest(SubmitSpec{Model: model, SLO: slo}, onDone)
	return err
}

// SubmitRequest issues one client request with full per-request options
// and returns a client-side handle. The model must be registered at
// submission time (ErrUnknownModel otherwise); the controller re-checks
// on arrival, so a model unregistered mid-transit fails the request
// rather than corrupting controller state.
func (cl *Cluster) SubmitRequest(spec SubmitSpec, onDone func(Response, time.Duration)) (*Handle, error) {
	if spec.Model == "" {
		return nil, fmt.Errorf("%w: empty model name", ErrInvalidRequest)
	}
	if spec.SLO <= 0 {
		return nil, fmt.Errorf("%w: non-positive SLO %v", ErrInvalidRequest, spec.SLO)
	}
	if spec.MaxBatch < 0 {
		return nil, fmt.Errorf("%w: negative batch cap %d", ErrInvalidRequest, spec.MaxBatch)
	}
	sentAt := cl.Eng.Now()
	mi, ok := cl.Ctl.Model(spec.Model)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, spec.Model)
	}
	h := &Handle{cl: cl}
	inputBytes := mi.Zoo().InputBytes()
	if cl.cfg.ZeroLengthInputs {
		inputBytes = 0
	}
	cl.clientLink.AtoB.Send(inputBytes, func() {
		// A Cancel issued while the request was on the wire is applied
		// inside the controller's submission, before the scheduler can
		// dispatch — the in-transit cancel is authoritative.
		spec.preCancelled = h.cancelPending
		req := cl.Ctl.SubmitSpec(spec, func(resp Response) {
			if cl.cfg.Trace != nil {
				ok := resp.Success
				cl.cfg.Trace.Append(tracelog.Event{
					At: cl.Eng.Now().Duration(), Kind: tracelog.KindResponse,
					RequestID: resp.RequestID, Model: resp.Model,
					Success: &ok, Reason: resp.Reason.String(), Batch: resp.Batch,
				})
			}
			outBytes := mi.Zoo().OutputBytes()
			if !resp.Success {
				outBytes = 0
			}
			cl.clientLink.BtoA.Send(outBytes, func() {
				latency := cl.Eng.Now().Sub(sentAt)
				cl.Metrics.record(cl.Eng.Now(), resp, latency, spec.SLO)
				h.done = true
				h.resp = resp
				h.latency = latency
				if onDone != nil {
					onDone(resp, latency)
				}
			})
		})
		if req != nil {
			h.req = req
			if cl.cfg.Trace != nil {
				cl.cfg.Trace.Append(tracelog.Event{
					At: cl.Eng.Now().Duration(), Kind: tracelog.KindRequest,
					RequestID: req.ID, Model: req.Model, SLO: req.SLO,
				})
			}
		}
	})
	return h, nil
}

// RunFor advances the cluster by d.
func (cl *Cluster) RunFor(d time.Duration) { cl.Eng.RunFor(d) }

// RunUntil advances the cluster to instant t.
func (cl *Cluster) RunUntil(t simclock.Time) { cl.Eng.RunUntil(t) }
