package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/gpu"
	"clockwork/internal/modelzoo"
	"clockwork/internal/network"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
	"clockwork/internal/worker"
	"clockwork/trace"
)

// ClusterConfig assembles a whole serving system: workers, controller
// shards, network, and client-side metrics.
type ClusterConfig struct {
	Workers       int
	GPUsPerWorker int

	// Worker geometry overrides (zero = paper defaults).
	DeviceMemBytes int64
	PageCacheBytes int64

	// Noise selects the hardware timing noise model; the zero value
	// means gpu.DefaultNoise (use gpu.NoNoise for exact-schedule tests
	// by setting NoNoise=true).
	Noise   gpu.Noise
	NoNoise bool

	Seed uint64

	// Shards partitions the control plane into this many scheduler
	// shards (default 1 — the paper's centralized controller). Each
	// shard runs its own controller and scheduler over a disjoint slice
	// of the cluster's workers (and therefore GPUs) and a disjoint
	// subset of models, all on the shared event engine; see shard.go
	// and rebalance.go. Requires Workers >= Shards so no shard owns
	// zero GPUs.
	Shards int

	// EnginePerShard gives every shard its own event engine — and, in
	// live mode, its own pacing goroutine — so an N-shard control plane
	// can use N cores. Each shard's controller, workers and client link
	// live on that shard's engine; cross-shard interactions (submission
	// forwarding after a migration) travel through the cluster's
	// cross-shard injection hook, and whole-cluster mutations
	// (registration, migration, rebalancing) require every engine to be
	// paused (live mode: a Live.Do barrier). Simulation entry points
	// (RunFor/RunUntil) and Trace capture need the single-engine
	// control plane and are rejected. Bit-exact reproducibility is a
	// single-engine property: with EnginePerShard the cross-shard event
	// interleaving is wall-clock dependent, exactly like injection
	// timing in live mode.
	EnginePerShard bool

	// SkewBound caps how far one shard's virtual clock may run ahead of
	// a lagging sibling's in EnginePerShard mode (the conservative-PDES
	// lookahead). Zero derives it from the cross-shard interaction
	// floor: no shard can affect another in under one network latency,
	// widened so an OS scheduling quantum at high speed multipliers
	// does not throttle healthy shards. Ignored without EnginePerShard.
	SkewBound time.Duration

	// RebalanceInterval is the cross-shard rebalancer's period (default
	// 1s of virtual time; only armed when Shards > 1). RebalanceFactor
	// is the demand-skew trigger: a rebalance pass migrates models when
	// the hottest shard's demand exceeds factor × the coldest's
	// (default 1.5). MaxMigrations bounds migrations per pass
	// (default 4).
	RebalanceInterval time.Duration
	RebalanceFactor   float64
	MaxMigrations     int

	// Controller configuration and scheduler. A nil Scheduler selects
	// the paper's ClockworkScheduler; NewClusterWithPolicy resolves
	// schedulers by registry name instead. With Shards > 1 every shard
	// needs its own scheduler instance: set NewScheduler (a factory)
	// instead of Scheduler.
	Controller   Config
	Scheduler    Scheduler
	NewScheduler func() Scheduler

	// Network shape. Client bandwidth 0 = unconstrained aggregate
	// (clients live on many machines); worker links default to 10Gbps.
	NetLatency      time.Duration
	WorkerBandwidth float64
	ClientBandwidth float64

	// ZeroLengthInputs reproduces the §6.5 scale experiment: clients
	// send zero-length inputs and workers generate inputs on arrival.
	ZeroLengthInputs bool

	// WorkerBestEffort switches workers into the baseline thread-pool
	// execution mode (concurrent EXECs); used with baseline schedulers.
	WorkerBestEffort bool

	// MetricsInterval buckets time series (default 1 minute, matching
	// the paper's plots).
	MetricsInterval time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.RebalanceInterval <= 0 {
		c.RebalanceInterval = time.Second
	}
	if c.RebalanceFactor <= 1 {
		c.RebalanceFactor = 1.5
	}
	if c.MaxMigrations <= 0 {
		c.MaxMigrations = 4
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = time.Minute
	}
	var zero gpu.Noise
	if c.Noise == zero && !c.NoNoise {
		c.Noise = gpu.DefaultNoise
	}
	if c.NoNoise {
		c.Noise = gpu.NoNoise
	}
	if c.NetLatency <= 0 {
		c.NetLatency = network.DefaultLatency
	}
	if c.WorkerBandwidth <= 0 {
		c.WorkerBandwidth = network.DefaultBandwidth
	}
	return c
}

// Cluster is a fully wired Clockwork deployment on a single event
// engine. With ClusterConfig.Shards == 1 (the default) it is the
// paper's system: one centralized controller owning every GPU. With
// Shards == N the control plane is partitioned: Ctls holds one
// controller per shard, each owning a disjoint slice of workers and a
// disjoint subset of models, with submissions routed by model
// ownership and a periodic rebalancer migrating models between shards
// when demand skews (see rebalance.go).
type Cluster struct {
	// Eng is the event engine — the only engine with one scheduling
	// domain (the default), shard 0's engine with EnginePerShard.
	Eng *simclock.Engine
	// Ctl is shard 0's controller — the entire control plane when
	// Shards == 1, kept as the compatibility handle for experiment
	// harnesses that read raw controller telemetry. Sharded callers
	// iterate Ctls or use the cluster-level aggregates (Stats,
	// ShardCount, ShardOf).
	Ctl     *Controller
	Ctls    []*Controller
	Workers []*worker.Worker
	Metrics *Metrics

	cfg ClusterConfig
	src *rng.Source

	// engines holds one engine per scheduling domain: length 1 without
	// EnginePerShard, one per shard with it. clientLinks mirrors it —
	// each engine gets its own client-side duplex so submissions enter
	// and responses leave on the engine that owns them.
	engines     []*simclock.Engine
	clientLinks []*network.Duplex

	// route is the lock-free model→shard routing hint for goroutines
	// outside any engine (live admission routing). It tracks modelShard
	// but may be momentarily stale across a migration; a submission
	// landing on a stale shard is forwarded to the real owner through
	// crossInject, so staleness costs one extra network hop, never
	// correctness.
	route sync.Map

	// crossInject delivers fn onto another shard's engine at virtual
	// instant at (EnginePerShard only; the live layer installs it
	// before any engine runs). It reports false when the driver has
	// stopped.
	crossInject func(shard int, at simclock.Time, fn func()) bool

	// ---- shard bookkeeping (cluster-global; controllers only know
	// their own slice) ----

	// modelShard maps every registered model to its current owning
	// shard; the initial assignment is a consistent hash of the name,
	// mutated only by migration. modelOrder preserves cluster-global
	// registration order (worker pre-loads replay it deterministically)
	// and zoos keeps each instance's catalogue entry for routing-layer
	// byte accounting.
	modelShard map[string]int
	modelOrder []string
	zoos       map[string]*modelzoo.Model

	// workerShard maps global worker ID → owning shard (assignment is
	// id mod Shards, so runtime scale-out stripes deterministically).
	workerShard []int

	migrations uint64

	// flight is the attached flight recorder (nil = none). Per-shard
	// hooks live on each controller; the cluster holds the whole-
	// recorder handle for routing-layer events (client send instants,
	// completions, migrations). See package clockwork/trace.
	flight *trace.Recorder
}

// NewCluster builds a deployment. Register models with RegisterModel (or
// RegisterCopies), then drive load via Submit and run the engine.
// Invalid shard geometry (more shards than workers, or a single
// Scheduler instance shared across shards) panics: both are
// construction-time programming errors. NewClusterWithPolicy returns
// them as errors instead.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	if err := cfg.validateShards(); err != nil {
		panic("core: " + err.Error())
	}
	nEng := 1
	if cfg.EnginePerShard {
		nEng = cfg.Shards
	}
	engines := make([]*simclock.Engine, nEng)
	for i := range engines {
		engines[i] = simclock.NewEngine()
	}

	cl := &Cluster{
		Eng:        engines[0],
		cfg:        cfg,
		src:        rng.NewSource(cfg.Seed),
		engines:    engines,
		Metrics:    newMetrics(cfg.MetricsInterval),
		modelShard: make(map[string]int),
		zoos:       make(map[string]*modelzoo.Model),
	}
	if nEng > 1 {
		cl.Metrics.setConcurrent()
	}
	for i := 0; i < cfg.Shards; i++ {
		ccfg := cfg.Controller
		ccfg.IDStart = uint64(i)
		ccfg.IDStride = uint64(cfg.Shards)
		cl.Ctls = append(cl.Ctls, NewController(cl.engFor(i), ccfg, cl.newScheduler()))
	}
	cl.Ctl = cl.Ctls[0]
	for _, eng := range engines {
		link := network.NewDuplex(eng)
		link.AtoB.Latency = cfg.NetLatency
		link.BtoA.Latency = cfg.NetLatency
		link.AtoB.BytesPerSecond = cfg.ClientBandwidth
		link.BtoA.BytesPerSecond = cfg.ClientBandwidth
		cl.clientLinks = append(cl.clientLinks, link)
	}

	for i := 0; i < cfg.Workers; i++ {
		cl.addWorker()
	}
	// With one engine per shard there is no shared engine to carry the
	// periodic rebalance timer; the live layer drives RebalanceOnce from
	// the wall clock under a stop-the-world barrier instead.
	if cfg.Shards > 1 && !cfg.EnginePerShard {
		cl.armRebalancer()
	}
	return cl
}

// engFor returns the engine hosting shard — the shared engine without
// EnginePerShard, the shard's own otherwise.
func (cl *Cluster) engFor(shard int) *simclock.Engine {
	if len(cl.engines) == 1 {
		return cl.engines[0]
	}
	return cl.engines[shard]
}

// linkIdx maps a shard to its client-link index (0 without
// EnginePerShard: all shards share one duplex).
func (cl *Cluster) linkIdx(shard int) int {
	if len(cl.clientLinks) == 1 {
		return 0
	}
	return shard
}

func (cl *Cluster) multiEngine() bool { return len(cl.engines) > 1 }

// EnginePerShard reports whether the cluster runs one engine per shard.
func (cl *Cluster) EnginePerShard() bool { return cl.multiEngine() }

// Engines returns the cluster's engines in shard order (length 1
// without EnginePerShard). The live layer paces them.
func (cl *Cluster) Engines() []*simclock.Engine { return cl.engines }

// SetCrossShardInject installs the cross-shard delivery hook
// (EnginePerShard mode). Must be called before any engine runs.
func (cl *Cluster) SetCrossShardInject(fn func(shard int, at simclock.Time, fn func()) bool) {
	cl.crossInject = fn
}

// OwnerShardHint resolves model's owning shard from the lock-free
// routing hint — safe from any goroutine, possibly one migration stale
// (submissions forwarded cross-shard absorb the staleness). ok is false
// for unregistered models.
func (cl *Cluster) OwnerShardHint(model string) (int, bool) {
	s, ok := cl.route.Load(model)
	if !ok {
		return 0, false
	}
	return s.(int), true
}

func (c ClusterConfig) validateShards() error {
	if c.Shards > c.Workers {
		return fmt.Errorf("%d shards need at least as many workers (have %d)", c.Shards, c.Workers)
	}
	if c.Shards > 1 && c.NewScheduler == nil && c.Scheduler != nil {
		return fmt.Errorf("Shards=%d needs NewScheduler (a per-shard factory); a single Scheduler instance cannot drive multiple shards", c.Shards)
	}
	return nil
}

// SetFlightRecorder attaches a flight recorder to the cluster: every
// controller gets its shard's engine-confined recorder, and the
// routing layer reports client-side lifecycle events. Must be called
// before any engine runs (the recorder binds its per-shard state
// here). A nil recorder detaches. Tracing is a pure observer — it
// never schedules events, reads RNG streams, or mints IDs — so
// attaching one leaves every schedule bit-identical, and unlike the
// old decision-stream capture it works under EnginePerShard (each
// shard's recorder is confined to that shard's engine goroutine).
func (cl *Cluster) SetFlightRecorder(r *trace.Recorder) {
	if r != nil {
		r.Bind(len(cl.Ctls))
	}
	cl.flight = r
	for i, ctl := range cl.Ctls {
		ctl.flight = r.Shard(i)
	}
}

// FlightRecorder returns the attached recorder (nil when detached).
func (cl *Cluster) FlightRecorder() *trace.Recorder { return cl.flight }

// newScheduler mints one shard's scheduler: the factory when set, the
// single configured instance otherwise (Shards == 1 only), the paper's
// scheduler by default.
func (cl *Cluster) newScheduler() Scheduler {
	switch {
	case cl.cfg.NewScheduler != nil:
		return cl.cfg.NewScheduler()
	case cl.cfg.Scheduler != nil:
		return cl.cfg.Scheduler
	default:
		return NewClockworkScheduler()
	}
}

// shardForName is the consistent initial model→shard assignment: an
// FNV-1a hash of the instance name mod Shards, so placement is a pure
// function of (name, shard count) — independent of registration order
// and stable across runs.
func (cl *Cluster) shardForName(name string) int {
	if len(cl.Ctls) == 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum64() % uint64(len(cl.Ctls)))
}

// ctlForModel resolves the controller that currently owns model. The
// fallback shard covers names no longer (or never) registered: the
// chosen controller answers with ReasonUnregistered, so any shard is
// semantically correct — using the submission-time owner keeps the
// accounting deterministic.
func (cl *Cluster) ctlForModel(model string, fallback int) *Controller {
	if s, ok := cl.modelShard[model]; ok {
		return cl.Ctls[s]
	}
	return cl.Ctls[fallback]
}

// addWorker constructs one worker with the cluster's geometry, wires its
// network link and its owning shard's controller mirrors, and returns
// its global ID. Worker RNG streams derive from the worker ID — not the
// shard — so a given worker behaves identically whatever the shard
// count, and a worker added at runtime gets the same noise stream it
// would have had at startup.
func (cl *Cluster) addWorker() int {
	id := len(cl.Workers)
	shard := id % len(cl.Ctls)
	ctl := cl.Ctls[shard]
	wcfg := worker.Config{
		ID:             id,
		GPUs:           cl.cfg.GPUsPerWorker,
		DeviceMemBytes: cl.cfg.DeviceMemBytes,
		PageCacheBytes: cl.cfg.PageCacheBytes,
		Noise:          cl.cfg.Noise,
		BestEffort:     cl.cfg.WorkerBestEffort,
	}.Resolved()
	w := worker.New(cl.engFor(shard), cl.src, wcfg)
	link := network.NewDuplex(cl.engFor(shard))
	link.AtoB.Latency = cl.cfg.NetLatency
	link.BtoA.Latency = cl.cfg.NetLatency
	link.AtoB.BytesPerSecond = cl.cfg.WorkerBandwidth
	link.BtoA.BytesPerSecond = cl.cfg.WorkerBandwidth

	wl := &workerLink{cl: cl, ctl: ctl, w: w, li: link}
	ctl.AddWorker(id, wcfg.GPUs, wcfg.PageCacheBytes, wcfg.PageSize, wl.sendAction)
	w.OnResult = wl.sendResult
	// Bring the new worker up with every model registered so far
	// (§5.1: workers pre-load all models into host RAM — shard
	// ownership partitions scheduling, not host memory, which is what
	// makes model migration a pure control-plane operation).
	for _, name := range cl.modelOrder {
		w.RegisterModel(name, cl.zoos[name])
	}
	cl.Workers = append(cl.Workers, w)
	cl.workerShard = append(cl.workerShard, shard)
	cl.Metrics.attachGPUs(w)
	return id
}

// workerLink carries one worker's wire traffic in simclock.Runner form:
// pooled hop nodes replace the per-message delivery closures on both
// directions of the duplex link. Worker, link and controller all live
// on the same engine goroutine, so plain per-worker free lists suffice
// (no locks, no sync.Pool).
type workerLink struct {
	cl  *Cluster
	ctl *Controller
	w   *worker.Worker
	li  *network.Duplex

	freeA []*actionHop
	freeR []*resultHop
}

// actionHop is one A→B (controller→worker) dispatch in flight on the
// link. Run fires at the delivery instant.
type actionHop struct {
	wl *workerLink
	a  *action.Action
}

func (h *actionHop) Run() {
	wl, a := h.wl, h.a
	h.a = nil
	wl.freeA = append(wl.freeA, h)
	wl.w.Submit(a)
}

// resultHop is one B→A (worker→controller) result in flight.
type resultHop struct {
	wl *workerLink
	r  action.Result
}

func (h *resultHop) Run() {
	wl, r := h.wl, h.r
	h.r = action.Result{}
	wl.freeR = append(wl.freeR, h)
	wl.ctl.HandleResult(r)
}

// sendAction is the controller-side submit hook wired by addWorker.
func (wl *workerLink) sendAction(a *action.Action, payloadBytes int64) {
	if wl.cl.cfg.ZeroLengthInputs {
		payloadBytes = 0
	}
	var h *actionHop
	if n := len(wl.freeA); n > 0 {
		h, wl.freeA = wl.freeA[n-1], wl.freeA[:n-1]
	} else {
		h = &actionHop{wl: wl}
	}
	h.a = a
	wl.li.AtoB.SendRun(payloadBytes, h)
}

// sendResult is the worker's OnResult hook wired by addWorker.
func (wl *workerLink) sendResult(r action.Result) {
	var bytes int64
	if r.Type == action.Infer && r.Status.IsSuccess() {
		bytes = int64(len(r.RequestIDs)) * outputBytesOf(wl.cl, r.Model)
	}
	var h *resultHop
	if n := len(wl.freeR); n > 0 {
		h, wl.freeR = wl.freeR[n-1], wl.freeR[:n-1]
	} else {
		h = &resultHop{wl: wl}
	}
	h.r = r
	wl.li.BtoA.SendRun(bytes, h)
}

func outputBytesOf(cl *Cluster, model string) int64 {
	if zoo, ok := cl.zoos[model]; ok {
		return zoo.OutputBytes()
	}
	return 0
}

// Config returns the effective cluster configuration.
func (cl *Cluster) Config() ClusterConfig { return cl.cfg }

// ---- runtime control plane ----

// AddWorker adds one worker (with the cluster's standard geometry) at
// runtime and returns its ID. The new worker joins shard (id mod
// Shards), starts with every registered model in host RAM and becomes
// schedulable immediately.
func (cl *Cluster) AddWorker() int { return cl.addWorker() }

// DrainWorker stops scheduling new actions on worker id; in-flight
// actions finish and their results are honoured. Routed to the owning
// shard.
func (cl *Cluster) DrainWorker(id int) error {
	ctl, err := cl.ownerOfWorker(id)
	if err != nil {
		return err
	}
	return ctl.DrainWorker(id)
}

// FailWorker abruptly fails worker id: scheduling stops, in-flight work
// is lost (its requests fail with ReasonWorkerFailed) and late results
// from the worker are dropped. Routed to the owning shard.
func (cl *Cluster) FailWorker(id int) error {
	ctl, err := cl.ownerOfWorker(id)
	if err != nil {
		return err
	}
	if err := ctl.FailWorker(id); err != nil {
		return err
	}
	cl.Workers[id].Fail()
	return nil
}

// WorkerStateOf returns the lifecycle state of worker id, routed to the
// owning shard.
func (cl *Cluster) WorkerStateOf(id int) (WorkerState, error) {
	ctl, err := cl.ownerOfWorker(id)
	if err != nil {
		return WorkerActive, err
	}
	return ctl.WorkerStateOf(id)
}

// WorkerCount returns the number of workers ever added, cluster-wide;
// drained and failed workers keep their IDs.
func (cl *Cluster) WorkerCount() int { return len(cl.Workers) }

// ActiveWorkers counts workers currently in WorkerActive state —
// the denominator worker autoscaling reasons over (drained and failed
// workers hold IDs but no capacity). Engine-side read.
func (cl *Cluster) ActiveWorkers() int {
	n := 0
	for id := range cl.Workers {
		st, err := cl.Ctls[cl.workerShard[id]].WorkerStateOf(id)
		if err == nil && st == WorkerActive {
			n++
		}
	}
	return n
}

// ShardDemand is one shard's slice of the demand/capacity signal the
// closed-loop autoscaler consumes: outstanding Appendix-B demand
// (GPU-time of queued work) against enabled GPU mirrors.
type ShardDemand struct {
	Demand          time.Duration
	SchedulableGPUs int
}

// DemandSnapshot returns every shard's demand/capacity pair, indexed
// by shard. Engine-side read: with EnginePerShard it touches every
// shard's controller, so it must run under a Live.Do barrier.
func (cl *Cluster) DemandSnapshot() []ShardDemand {
	out := make([]ShardDemand, len(cl.Ctls))
	for i, ctl := range cl.Ctls {
		out[i] = ShardDemand{Demand: ctl.TotalDemand(), SchedulableGPUs: ctl.SchedulableGPUs()}
	}
	return out
}

// ownerOfWorker resolves the controller owning global worker id.
func (cl *Cluster) ownerOfWorker(id int) (*Controller, error) {
	if id < 0 || id >= len(cl.Workers) {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrNoSuchWorker, id, len(cl.Workers))
	}
	return cl.Ctls[cl.workerShard[id]], nil
}

// InjectDisturbance stalls a GPU's execution engine for d — the §4.3
// class of external slowdowns (thermal throttling, maintenance tasks)
// the controller cannot predict, promoted from the fault-injection test
// harness to a first-class API.
func (cl *Cluster) InjectDisturbance(workerID, gpuID int, d time.Duration) error {
	if workerID < 0 || workerID >= len(cl.Workers) {
		return fmt.Errorf("%w: %d (have %d)", ErrNoSuchWorker, workerID, len(cl.Workers))
	}
	w := cl.Workers[workerID]
	if gpuID < 0 || gpuID >= w.NumGPUs() {
		return fmt.Errorf("%w: worker %d has no GPU %d", ErrNoSuchWorker, workerID, gpuID)
	}
	w.GPU(gpuID).Dev.InjectDisturbance(d)
	return nil
}

// UnregisterModel removes a model instance cluster-wide. Queued requests
// fail with ReasonUnregistered; replicas are unloaded. Models with
// in-flight actions return ErrModelBusy.
func (cl *Cluster) UnregisterModel(name string) error {
	shard, ok := cl.modelShard[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if err := cl.Ctls[shard].UnregisterModel(name); err != nil {
		return err
	}
	delete(cl.modelShard, name)
	cl.route.Delete(name)
	delete(cl.zoos, name)
	for i, n := range cl.modelOrder {
		if n == name {
			cl.modelOrder = append(cl.modelOrder[:i], cl.modelOrder[i+1:]...)
			break
		}
	}
	for _, w := range cl.Workers {
		w.UnregisterModel(name)
	}
	return nil
}

// ModelNames returns the currently registered model instance names in
// cluster-global registration order.
func (cl *Cluster) ModelNames() []string {
	out := make([]string, len(cl.modelOrder))
	copy(out, cl.modelOrder)
	return out
}

// ModelCount returns the number of registered model instances — O(1),
// for callers that don't need the names.
func (cl *Cluster) ModelCount() int { return len(cl.modelOrder) }

// Stats sums controller-side outcome counters across all shards. With
// Shards == 1 it equals Ctl.Stats().
func (cl *Cluster) Stats() Stats {
	if len(cl.Ctls) == 1 {
		return cl.Ctl.Stats()
	}
	var sum Stats
	for _, ctl := range cl.Ctls {
		st := ctl.Stats()
		sum.Requests += st.Requests
		sum.Succeeded += st.Succeeded
		sum.Cancelled += st.Cancelled
		sum.Rejected += st.Rejected
		sum.ColdStart += st.ColdStart
		sum.WorkerLost += st.WorkerLost
		sum.Unregistered += st.Unregistered
		sum.ActionsInfer += st.ActionsInfer
		sum.ActionsLoad += st.ActionsLoad
		sum.ActionsUnload += st.ActionsUnload
		sum.LoadFailures += st.LoadFailures
	}
	return sum
}

// ShardCount returns the number of scheduler shards.
func (cl *Cluster) ShardCount() int { return len(cl.Ctls) }

// ShardOf returns the shard currently owning model.
func (cl *Cluster) ShardOf(model string) (int, bool) {
	s, ok := cl.modelShard[model]
	return s, ok
}

// Migrations returns the number of cross-shard model migrations
// performed so far (rebalancer plus manual MigrateModel calls).
func (cl *Cluster) Migrations() uint64 { return cl.migrations }

// ModelStats returns the per-model metrics slice for name. ok is false
// when the model is unknown and has never produced a response.
func (cl *Cluster) ModelStats(name string) (ModelStats, bool) {
	st, ok := cl.Metrics.ModelStats(name, cl.Eng.Now().Duration())
	if !ok {
		if _, known := cl.modelShard[name]; !known {
			return ModelStats{}, false
		}
	}
	return st, true
}

// TenantStats returns the per-tenant metrics slice for tenant.
func (cl *Cluster) TenantStats(tenant string) (TenantStats, bool) {
	return cl.Metrics.TenantStats(tenant)
}

// ---- registration ----

// RegisterModel announces one model instance to its owning shard's
// controller and to every worker (workers pre-load all models into host
// RAM, §5.1, regardless of shard ownership).
func (cl *Cluster) RegisterModel(name string, zoo *modelzoo.Model) error {
	if _, dup := cl.modelShard[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	shard := cl.shardForName(name)
	if err := cl.Ctls[shard].RegisterModel(name, zoo); err != nil {
		return err
	}
	cl.modelShard[name] = shard
	cl.route.Store(name, shard)
	cl.modelOrder = append(cl.modelOrder, name)
	cl.zoos[name] = zoo
	for _, w := range cl.Workers {
		w.RegisterModel(name, zoo)
	}
	return nil
}

// RegisterCopies registers n independent instances of zoo named
// "<base>#0" … "<base>#n-1" and returns their names — the paper's
// "15 separate copies of ResNet50" pattern. A name collision with an
// existing instance is ErrDuplicateModel (instances registered before
// the collision stay registered).
func (cl *Cluster) RegisterCopies(base string, zoo *modelzoo.Model, n int) ([]string, error) {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s#%d", base, i)
		if err := cl.RegisterModel(names[i], zoo); err != nil {
			return names[:i], err
		}
	}
	return names, nil
}

// ---- submission ----

// Handle tracks one submitted request from the client's side. In
// simulation mode inspect or cancel between Run* calls; in live mode
// (the engine driven by a RealtimeDriver on its own goroutine) Done,
// Outcome, ID and Wait are safe to call from any goroutine — completion
// is published through a channel, so callers block on Wait instead of
// busy-polling Done.
//
// Handles recycle through a pool (see Release): a generation counter,
// bumped on every release, lets callers that outlive their handle prove
// staleness instead of observing the recycled successor — the same
// guard simclock.Timer and Request use.
type Handle struct {
	cl *Cluster
	// doneCh is a reusable capacity-1 token channel. Completion sends
	// one token; every reader takes it and immediately puts it back
	// (baton passing), which gives close()-style broadcast without
	// minting a fresh channel per request.
	doneCh chan struct{}

	// mu guards the mutable fields below: they are written on the
	// engine goroutine and may be read from client goroutines.
	mu  sync.Mutex
	gen uint64 // recycling generation; bumped by Release
	id  uint64 // controller-assigned ID, cached (req itself recycles)
	// req/reqGen identify the controller-side request while it is
	// pending. The request object may be recycled the instant its
	// response fires, so every use goes through CancelRequestGen.
	req           *Request
	reqGen        uint64
	model         string
	cancelPending bool
	done          bool
	resp          Response
	latency       time.Duration
}

var handlePool = sync.Pool{New: func() any {
	return &Handle{doneCh: make(chan struct{}, 1)}
}}

func acquireHandle(cl *Cluster, model string) *Handle {
	h := handlePool.Get().(*Handle)
	select {
	case <-h.doneCh: // drain a leftover token, defensively
	default:
	}
	h.cl = cl
	h.model = model
	return h
}

// Gen returns the handle's recycling generation. Capture it alongside
// the pointer when retaining a handle past its Release point; a
// mismatch later proves the handle now belongs to someone else.
func (h *Handle) Gen() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// Release returns a completed handle to the pool. Call it only when no
// other goroutine will touch the handle again (all Waits returned); a
// handle that is still pending is not pooled — the in-flight completion
// will still write into it — but its generation is bumped so gen-guarded
// wrappers treat it as gone either way.
func (h *Handle) Release() {
	h.mu.Lock()
	h.gen++
	if !h.done {
		h.mu.Unlock()
		return
	}
	h.cl = nil
	h.id = 0
	h.req, h.reqGen = nil, 0
	h.model = ""
	h.cancelPending, h.done = false, false
	h.resp, h.latency = Response{}, 0
	h.mu.Unlock()
	select {
	case <-h.doneCh:
	default:
	}
	handlePool.Put(h)
}

// ID returns the controller-assigned request ID (0 while the request is
// still in transit to the controller).
func (h *Handle) ID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.id
}

// Done reports whether the request has a final outcome.
func (h *Handle) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// Outcome returns the final response and client-observed latency; ok is
// false while the request is still pending.
func (h *Handle) Outcome() (Response, time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.done {
		return Response{}, 0, false
	}
	return h.resp, h.latency, true
}

// Wait blocks until the request reaches a final outcome or ctx is
// cancelled. It is the live-mode completion primitive: something else —
// a RealtimeDriver, or test code calling Run* — must be advancing the
// engine, or Wait only returns via ctx.
func (h *Handle) Wait(ctx context.Context) (Response, time.Duration, error) {
	h.mu.Lock()
	if h.done {
		resp, lat := h.resp, h.latency
		h.mu.Unlock()
		return resp, lat, nil
	}
	h.mu.Unlock()
	select {
	case <-h.doneCh:
		// Pass the baton so any other waiter also wakes.
		h.doneCh <- struct{}{}
	case <-ctx.Done():
		return Response{}, 0, ctx.Err()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resp, h.latency, nil
}

// Cancel requests cancellation and reports whether it took effect. A
// still-queued request is cancelled immediately — routed to the shard
// that currently owns the model, so cancellation follows the request
// across migrations. A request still in transit to the controller is
// cancelled deterministically on arrival, before the scheduler can
// dispatch it. Only a request already handed to a worker cannot be
// clawed back (§4.2 — workers are never second-guessed mid-action):
// then Cancel reports false and the request runs to its normal outcome.
func (h *Handle) Cancel() bool {
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return false
	}
	if h.req == nil {
		h.cancelPending = true
		h.mu.Unlock()
		return true
	}
	req, gen, model := h.req, h.reqGen, h.model
	cl := h.cl
	h.mu.Unlock()
	// CancelRequestGen mutates controller state: like every engine-side
	// call it must run on the engine goroutine (in live mode, via
	// Live.Do/Inject). The handle lock is released first — the
	// cancellation path schedules the response event that will re-enter
	// the completion callback. The generation check makes a cancel that
	// raced the response (and the request's recycling) a no-op.
	return cl.ctlForModel(model, 0).CancelRequestGen(req, gen)
}

// Submit issues one client request with default options. The input
// travels client→controller over the shared client link; the response
// is delivered back to the client, where latency is measured and
// recorded. onDone may be nil. Unknown models are a typed error.
func (cl *Cluster) Submit(model string, slo time.Duration, onDone func(Response, time.Duration)) error {
	_, err := cl.SubmitRequest(SubmitSpec{Model: model, SLO: slo}, onDone)
	return err
}

// SubmitRequest issues one client request with full per-request options
// and returns a client-side handle. The model must be registered at
// submission time (ErrUnknownModel otherwise); the owning shard is
// resolved when the request arrives at the control plane, so a model
// migrated mid-transit lands on its new shard, and one unregistered
// mid-transit fails the request rather than corrupting controller
// state. With EnginePerShard the caller must already be on the owning
// shard's engine goroutine — route with OwnerShardHint and use
// SubmitRequestOn via a shard-targeted injection.
func (cl *Cluster) SubmitRequest(spec SubmitSpec, onDone func(Response, time.Duration)) (*Handle, error) {
	local, _ := cl.modelShard[spec.Model] // unknown models rejected below
	return cl.SubmitRequestOn(local, spec, onDone)
}

// SubmitRequestOn is SubmitRequest entered on shard local's engine: the
// input travels that shard's client link and the submission timestamp
// reads that shard's clock. If the model's owner turns out to be a
// different shard (a stale routing hint after a migration), the request
// is forwarded once over the shard interconnect at the cross-shard
// network latency.
func (cl *Cluster) SubmitRequestOn(local int, spec SubmitSpec, onDone func(Response, time.Duration)) (*Handle, error) {
	if err := cl.checkSpec(local, spec); err != nil {
		return nil, err
	}
	h := acquireHandle(cl, spec.Model)
	cl.sendSubmission(local, spec, h, onDone, nil)
	return h, nil
}

// ResponseSink receives a submission's terminal outcome — the
// interface-shaped alternative to the onDone callback, so callers that
// pool their per-request state (the serve transports) can complete
// requests without minting a closure per submission. OnResponse runs on
// the engine goroutine, exactly once per accepted submission; like every
// completion callback it must stay short and non-blocking.
type ResponseSink interface {
	OnResponse(resp Response, latency time.Duration)
}

// SubmitRequestSinkOn is the fire-and-forget form of SubmitRequestOn: no
// client-side Handle is minted (nothing to Wait on, nothing to recycle),
// and the outcome is delivered to sink instead of a callback. It is the
// zero-allocation submission path for servers that track completion
// entirely through their own pooled per-request state.
func (cl *Cluster) SubmitRequestSinkOn(local int, spec SubmitSpec, sink ResponseSink) error {
	if err := cl.checkSpec(local, spec); err != nil {
		return err
	}
	cl.sendSubmission(local, spec, nil, nil, sink)
	return nil
}

// checkSpec validates a submission before any resource is acquired.
func (cl *Cluster) checkSpec(local int, spec SubmitSpec) error {
	if spec.Model == "" {
		return fmt.Errorf("%w: empty model name", ErrInvalidRequest)
	}
	if spec.SLO <= 0 {
		return fmt.Errorf("%w: non-positive SLO %v", ErrInvalidRequest, spec.SLO)
	}
	if spec.MaxBatch < 0 {
		return fmt.Errorf("%w: negative batch cap %d", ErrInvalidRequest, spec.MaxBatch)
	}
	if local < 0 || local >= len(cl.Ctls) {
		return fmt.Errorf("%w: %d (have %d)", ErrNoSuchShard, local, len(cl.Ctls))
	}
	if _, ok := cl.modelShard[spec.Model]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, spec.Model)
	}
	return nil
}

// sendSubmission puts one validated submission on shard local's client
// link. h may be nil (the sink path).
func (cl *Cluster) sendSubmission(local int, spec SubmitSpec, h *Handle, onDone func(Response, time.Duration), sink ResponseSink) {
	zoo := cl.zoos[spec.Model]
	inputBytes := zoo.InputBytes()
	if cl.cfg.ZeroLengthInputs {
		inputBytes = 0
	}
	s := submissionPool.Get().(*submission)
	s.cl, s.spec, s.h, s.zoo = cl, spec, h, zoo
	s.local, s.sentAt, s.onDone, s.sink = local, cl.engFor(local).Now(), onDone, sink
	cl.clientLinks[cl.linkIdx(local)].AtoB.SendRun(inputBytes, s)
}

// submission carries one request across its client-side network hops.
// It is the hops' preallocated event receiver (simclock.Runner): one
// struct serves the client→controller delivery, the cross-shard
// forward, and the response→client completion, so the per-request
// serving path schedules all of them without per-event closures. It is
// also the controller-side Responder, so the outcome comes back without
// a per-request func value. Submissions recycle through submissionPool
// at the end of complete(), the last instant anything references them.
type submission struct {
	cl     *Cluster
	spec   SubmitSpec
	h      *Handle // nil on the sink (fire-and-forget) path
	zoo    *modelzoo.Model
	local  int // shard whose engine currently hosts this submission
	sentAt simclock.Time
	onDone func(Response, time.Duration)
	sink   ResponseSink

	resp  Response
	phase uint8
}

var submissionPool = sync.Pool{New: func() any { return new(submission) }}

const (
	subDeliver  uint8 = iota // next Run: arrive at the controller
	subComplete              // next Run: arrive back at the client
)

// Run implements simclock.Runner, dispatching on the submission's phase.
func (s *submission) Run() {
	if s.phase == subDeliver {
		s.deliver()
	} else {
		s.complete()
	}
}

// deliver runs at the controller side of the client link: resolve the
// owner (it may have changed while the input was on the wire), forward
// across shards if the owner lives on another engine, then submit.
func (s *submission) deliver() {
	cl := s.cl
	owner := s.local
	if o, ok := cl.modelShard[s.spec.Model]; ok {
		owner = o
	}
	if owner != s.local && cl.multiEngine() {
		// The owner lives on another engine: one hop over the shard
		// interconnect. The delivery instant is stamped on the sending
		// shard's clock; the destination clamps it forward if its own
		// clock is already past it (skew-bounded by the driver).
		if ci := cl.crossInject; ci != nil {
			at := cl.engFor(s.local).Now().Add(cl.cfg.NetLatency)
			prev := s.local
			s.local = owner
			if ci(owner, at, s.Run) {
				return
			}
			// Driver stopped mid-forward: answer on the local shard,
			// where the model is unregistered — a deterministic failure
			// rather than a cross-engine race.
			s.local = prev
		}
		owner = s.local
	}
	// A Cancel issued while the request was on the wire is applied
	// inside the controller's submission, before the scheduler can
	// dispatch — the in-transit cancel is authoritative. The sink path
	// has no handle and therefore no cancel-in-transit to apply.
	if s.h != nil {
		s.h.mu.Lock()
		s.spec.preCancelled = s.h.cancelPending
		s.h.mu.Unlock()
	}
	s.local = owner
	ctl := cl.Ctls[owner]
	req := ctl.SubmitSpecTo(s.spec, s)
	if req != nil {
		if s.h != nil {
			s.h.mu.Lock()
			s.h.id = req.ID
			s.h.req, s.h.reqGen = req, req.Gen()
			s.h.mu.Unlock()
		}
		// The controller-side Admitted hook already created the trace;
		// stamp the client-side send instant it cannot know.
		cl.flight.Shard(owner).Arrived(req.ID, s.sentAt.Duration())
	}
}

// Respond implements core.Responder: it receives the controller's
// terminal outcome and sends it back over the owning shard's client
// link.
func (s *submission) Respond(resp Response) {
	cl := s.cl
	// The responding controller is the model's current owner; follow it
	// (after a barrier-time migration the response must leave on the
	// adopting shard's link and engine).
	if o, ok := cl.modelShard[resp.Model]; ok {
		s.local = o
	}
	outBytes := s.zoo.OutputBytes()
	if !resp.Success {
		outBytes = 0
	}
	s.resp = resp
	s.phase = subComplete
	cl.clientLinks[cl.linkIdx(s.local)].BtoA.SendRun(outBytes, s)
}

// complete runs at the client side of the response hop: measure
// latency, record metrics, publish the handle.
func (s *submission) complete() {
	cl := s.cl
	h := s.h
	now := cl.engFor(s.local).Now()
	latency := now.Sub(s.sentAt)
	// Attribute the response to the shard that owned the model at
	// completion (it may have migrated since submission).
	shard := s.local
	if o, ok := cl.modelShard[s.resp.Model]; ok {
		shard = o
	}
	cl.Metrics.record(now, shard, s.resp, latency, s.spec.SLO)
	// Finalize the flight-recorder trace with the client-observed
	// outcome. The recorder shard is s.local — the engine this
	// completion runs on, which is where the trace's building state
	// lives (Move keeps it there across queued-request migrations).
	cl.flight.Shard(s.local).Completed(trace.Outcome{
		ID: s.resp.RequestID, Model: s.spec.Model, Tenant: s.spec.Tenant,
		Success: s.resp.Success, Reason: uint8(s.resp.Reason), ReasonStr: s.resp.Reason.String(),
		Batch: s.resp.Batch, ColdStart: s.resp.ColdStart,
		SLO: s.spec.SLO, Latency: latency,
	}, now.Duration())
	if h != nil {
		h.mu.Lock()
		h.done = true
		if h.id == 0 {
			// The request never reported in via deliver (pre-cancelled or
			// unregistered mid-transit): the response carries the minted ID.
			h.id = s.resp.RequestID
		}
		// The controller-side request recycles the moment its response
		// fires; drop the reference so a post-completion Cancel is a pure
		// handle-local no-op.
		h.req, h.reqGen = nil, 0
		h.resp = s.resp
		h.latency = latency
		h.mu.Unlock()
		// Publish completion before the callback so a callback that hands
		// the result to another goroutine never sees its own handle still
		// pending. The token send replaces close(): waiters baton-pass it.
		select {
		case h.doneCh <- struct{}{}:
		default:
		}
	}
	onDone, sink, resp := s.onDone, s.sink, s.resp
	*s = submission{}
	submissionPool.Put(s)
	if onDone != nil {
		onDone(resp, latency)
	}
	if sink != nil {
		sink.OnResponse(resp, latency)
	}
}

// RunFor advances the cluster by d. Panics with EnginePerShard: a
// multi-engine cluster is live-only (its engines advance together only
// under the wall-clock driver's skew protocol).
func (cl *Cluster) RunFor(d time.Duration) {
	cl.checkSimulable()
	cl.Eng.RunFor(d)
}

// RunUntil advances the cluster to instant t. Panics with
// EnginePerShard (see RunFor).
func (cl *Cluster) RunUntil(t simclock.Time) {
	cl.checkSimulable()
	cl.Eng.RunUntil(t)
}

func (cl *Cluster) checkSimulable() {
	if cl.multiEngine() {
		panic("core: RunFor/RunUntil on an EnginePerShard cluster; drive it live (StartLive)")
	}
}
