package core

import (
	"fmt"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/gpu"
	"clockwork/internal/modelzoo"
	"clockwork/internal/network"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
	"clockwork/internal/tracelog"
	"clockwork/internal/worker"
)

// ClusterConfig assembles a whole serving system: workers, controller,
// network, and client-side metrics.
type ClusterConfig struct {
	Workers       int
	GPUsPerWorker int

	// Worker geometry overrides (zero = paper defaults).
	DeviceMemBytes int64
	PageCacheBytes int64

	// Noise selects the hardware timing noise model; the zero value
	// means gpu.DefaultNoise (use gpu.NoNoise for exact-schedule tests
	// by setting NoNoise=true).
	Noise   gpu.Noise
	NoNoise bool

	Seed uint64

	// Controller configuration and scheduler. A nil Scheduler selects
	// the paper's ClockworkScheduler.
	Controller Config
	Scheduler  Scheduler

	// Network shape. Client bandwidth 0 = unconstrained aggregate
	// (clients live on many machines); worker links default to 10Gbps.
	NetLatency      time.Duration
	WorkerBandwidth float64
	ClientBandwidth float64

	// ZeroLengthInputs reproduces the §6.5 scale experiment: clients
	// send zero-length inputs and workers generate inputs on arrival.
	ZeroLengthInputs bool

	// WorkerBestEffort switches workers into the baseline thread-pool
	// execution mode (concurrent EXECs); used with baseline schedulers.
	WorkerBestEffort bool

	// MetricsInterval buckets time series (default 1 minute, matching
	// the paper's plots).
	MetricsInterval time.Duration

	// Trace, if non-nil, captures the controller's full decision stream
	// (requests, actions, results, responses) for §7-style performance
	// clarity: per-request time breakdowns and action audits.
	Trace *tracelog.Log
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.GPUsPerWorker <= 0 {
		c.GPUsPerWorker = 1
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = time.Minute
	}
	var zero gpu.Noise
	if c.Noise == zero && !c.NoNoise {
		c.Noise = gpu.DefaultNoise
	}
	if c.NoNoise {
		c.Noise = gpu.NoNoise
	}
	if c.NetLatency <= 0 {
		c.NetLatency = network.DefaultLatency
	}
	if c.WorkerBandwidth <= 0 {
		c.WorkerBandwidth = network.DefaultBandwidth
	}
	return c
}

// Cluster is a fully wired Clockwork deployment on a single event engine.
type Cluster struct {
	Eng     *simclock.Engine
	Ctl     *Controller
	Workers []*worker.Worker
	Metrics *Metrics

	cfg        ClusterConfig
	clientLink *network.Duplex
}

// NewCluster builds a deployment. Register models with RegisterModel (or
// RegisterCopies), then drive load via Submit and run the engine.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	eng := simclock.NewEngine()
	src := rng.NewSource(cfg.Seed)

	sched := cfg.Scheduler
	if sched == nil {
		sched = NewClockworkScheduler()
	}
	ctl := NewController(eng, cfg.Controller, sched)

	cl := &Cluster{
		Eng:        eng,
		Ctl:        ctl,
		cfg:        cfg,
		clientLink: network.NewDuplex(eng),
		Metrics:    newMetrics(cfg.MetricsInterval),
	}
	cl.clientLink.AtoB.Latency = cfg.NetLatency
	cl.clientLink.BtoA.Latency = cfg.NetLatency
	cl.clientLink.AtoB.BytesPerSecond = cfg.ClientBandwidth
	cl.clientLink.BtoA.BytesPerSecond = cfg.ClientBandwidth

	for i := 0; i < cfg.Workers; i++ {
		wcfg := worker.Config{
			ID:             i,
			GPUs:           cfg.GPUsPerWorker,
			DeviceMemBytes: cfg.DeviceMemBytes,
			PageCacheBytes: cfg.PageCacheBytes,
			Noise:          cfg.Noise,
			BestEffort:     cfg.WorkerBestEffort,
		}.Resolved()
		w := worker.New(eng, src, wcfg)
		link := network.NewDuplex(eng)
		link.AtoB.Latency = cfg.NetLatency
		link.BtoA.Latency = cfg.NetLatency
		link.AtoB.BytesPerSecond = cfg.WorkerBandwidth
		link.BtoA.BytesPerSecond = cfg.WorkerBandwidth

		wi := w
		li := link
		ctl.AddWorker(i, wcfg.GPUs, wcfg.PageCacheBytes, wcfg.PageSize,
			func(a *action.Action, payloadBytes int64) {
				if cl.cfg.ZeroLengthInputs {
					payloadBytes = 0
				}
				if cl.cfg.Trace != nil {
					cl.cfg.Trace.Append(tracelog.Event{
						At: eng.Now().Duration(), Kind: tracelog.KindAction,
						ActionID: a.ID, ActionType: a.Type.String(),
						Model: a.Model, Batch: a.Batch, RequestIDs: a.RequestIDs,
						Worker: wi.ID(), GPU: a.GPU,
						Start: a.Earliest.Duration(), End: a.Latest.Duration(),
					})
				}
				li.AtoB.Send(payloadBytes, func() { wi.Submit(a) })
			})
		w.OnResult = func(r action.Result) {
			var bytes int64
			if r.Type == action.Infer && r.Status.IsSuccess() {
				bytes = int64(len(r.RequestIDs)) * outputBytesOf(cl, r.Model)
			}
			li.BtoA.Send(bytes, func() {
				if cl.cfg.Trace != nil {
					cl.cfg.Trace.Append(tracelog.Event{
						At: eng.Now().Duration(), Kind: tracelog.KindResult,
						ActionID: r.ActionID, ActionType: r.Type.String(),
						Model: r.Model, Batch: r.Batch, RequestIDs: r.RequestIDs,
						Worker: r.WorkerID, GPU: r.GPU,
						Start: r.Start.Duration(), End: r.End.Duration(),
						Duration: r.Duration, Status: r.Status.String(),
					})
				}
				ctl.HandleResult(r)
			})
		}
		cl.Workers = append(cl.Workers, w)
		cl.Metrics.attachGPUs(w)
	}
	return cl
}

func outputBytesOf(cl *Cluster, model string) int64 {
	if mi, ok := cl.Ctl.Model(model); ok {
		return mi.Zoo().OutputBytes()
	}
	return 0
}

// Config returns the effective cluster configuration.
func (cl *Cluster) Config() ClusterConfig { return cl.cfg }

// RegisterModel announces one model instance to the controller and every
// worker (workers pre-load all models into host RAM, §5.1).
func (cl *Cluster) RegisterModel(name string, zoo *modelzoo.Model) {
	cl.Ctl.RegisterModel(name, zoo)
	for _, w := range cl.Workers {
		w.RegisterModel(name, zoo)
	}
}

// RegisterCopies registers n independent instances of zoo named
// "<base>#0" … "<base>#n-1" and returns their names — the paper's
// "15 separate copies of ResNet50" pattern.
func (cl *Cluster) RegisterCopies(base string, zoo *modelzoo.Model, n int) []string {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s#%d", base, i)
		cl.RegisterModel(names[i], zoo)
	}
	return names
}

// Submit issues one client request. The input travels client→controller
// over the shared client link; the response is delivered back to the
// client, where latency is measured and recorded. onDone may be nil.
func (cl *Cluster) Submit(model string, slo time.Duration, onDone func(Response, time.Duration)) {
	sentAt := cl.Eng.Now()
	mi, ok := cl.Ctl.Model(model)
	if !ok {
		panic("cluster: unregistered model " + model)
	}
	inputBytes := mi.Zoo().InputBytes()
	if cl.cfg.ZeroLengthInputs {
		inputBytes = 0
	}
	cl.clientLink.AtoB.Send(inputBytes, func() {
		req := cl.Ctl.Submit(model, slo, func(resp Response) {
			if cl.cfg.Trace != nil {
				ok := resp.Success
				cl.cfg.Trace.Append(tracelog.Event{
					At: cl.Eng.Now().Duration(), Kind: tracelog.KindResponse,
					RequestID: resp.RequestID, Model: resp.Model,
					Success: &ok, Reason: resp.Reason, Batch: resp.Batch,
				})
			}
			outBytes := mi.Zoo().OutputBytes()
			if !resp.Success {
				outBytes = 0
			}
			cl.clientLink.BtoA.Send(outBytes, func() {
				latency := cl.Eng.Now().Sub(sentAt)
				cl.Metrics.record(cl.Eng.Now(), resp, latency, slo)
				if onDone != nil {
					onDone(resp, latency)
				}
			})
		})
		if cl.cfg.Trace != nil {
			cl.cfg.Trace.Append(tracelog.Event{
				At: cl.Eng.Now().Duration(), Kind: tracelog.KindRequest,
				RequestID: req.ID, Model: req.Model, SLO: req.SLO,
			})
		}
	})
}

// RunFor advances the cluster by d.
func (cl *Cluster) RunFor(d time.Duration) { cl.Eng.RunFor(d) }

// RunUntil advances the cluster to instant t.
func (cl *Cluster) RunUntil(t simclock.Time) { cl.Eng.RunUntil(t) }
