package core

import (
	"testing"
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/internal/tracelog"
)

func TestClusterTraceCapture(t *testing.T) {
	trace := tracelog.New()
	cl := NewCluster(ClusterConfig{
		Workers: 1, GPUsPerWorker: 1, NoNoise: true,
		Trace: trace,
	})
	cl.RegisterModel("m", modelzoo.ResNet50())
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond)

	s := trace.Summary()
	if s["request"] != 1 || s["response"] != 1 {
		t.Fatalf("summary: %v", s)
	}
	// A cold start issues LOAD + INFER, each with a result.
	if s["action"] < 2 || s["result"] < 2 {
		t.Fatalf("summary: %v", s)
	}
	if s["result:success"] < 2 {
		t.Fatalf("summary: %v", s)
	}

	// The explanation must reconstruct the cold-start shape: queueing
	// (≈ the 8.3ms LOAD) dominating, then a 2.77ms exec.
	b, ok := trace.Explain(1)
	if !ok || !b.Success {
		t.Fatalf("explain: %+v ok=%v", b, ok)
	}
	if b.Exec != modelzoo.ResNet50().ExecLatency(1) {
		t.Fatalf("exec span = %v", b.Exec)
	}
	if b.Queue < 8*time.Millisecond {
		t.Fatalf("cold-start queue %v should include the weight transfer", b.Queue)
	}
	if b.Total() < b.Queue+b.Exec {
		t.Fatal("breakdown exceeds total")
	}
}

func TestClusterTraceFailureCapture(t *testing.T) {
	trace := tracelog.New()
	cl := NewCluster(ClusterConfig{
		Workers: 1, GPUsPerWorker: 1, NoNoise: true,
		Trace: trace,
	})
	cl.RegisterModel("m", modelzoo.ResNet50())
	cl.Submit("m", time.Millisecond, nil) // unmeetable
	cl.RunFor(100 * time.Millisecond)
	b, ok := trace.Explain(1)
	if !ok || b.Success || b.Reason != "cancelled" {
		t.Fatalf("explain: %+v", b)
	}
}
