package core

import (
	"testing"
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/trace"
)

// newTracedCluster builds a 1-worker cluster with a rate-1.0 flight
// recorder attached.
func newTracedCluster(t *testing.T) (*Cluster, *trace.Recorder) {
	t.Helper()
	cl := NewCluster(ClusterConfig{Workers: 1, GPUsPerWorker: 1, NoNoise: true})
	rec := trace.New(trace.Options{SampleRate: 1, Enabled: true})
	cl.SetFlightRecorder(rec)
	return cl, rec
}

func TestClusterFlightRecorderCapture(t *testing.T) {
	cl, rec := newTracedCluster(t)
	cl.RegisterModel("m", modelzoo.ResNet50())
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond)

	snap := rec.Snapshot()
	if len(snap.Requests) != 1 {
		t.Fatalf("want 1 retained trace, got %d", len(snap.Requests))
	}
	tr := snap.Requests[0]
	if !tr.Success || tr.ID != 1 || tr.Model != "m" {
		t.Fatalf("trace: %+v", tr)
	}
	// A cold start issues LOAD + INFER; both span rings must have them.
	if len(snap.Execs) != 1 || len(snap.Loads) != 1 {
		t.Fatalf("spans: %d execs, %d loads", len(snap.Execs), len(snap.Loads))
	}
	if !tr.ColdStart {
		t.Fatalf("first request must be a cold start: %+v", tr)
	}

	// The decomposition must reconstruct the cold-start shape: queueing
	// (≈ the 8.3ms LOAD) dominating, then a 2.77ms exec.
	exec, ok := (&tr).StageDur(trace.StageExec)
	if !ok || exec != modelzoo.ResNet50().ExecLatency(1) {
		t.Fatalf("exec span = %v (ok=%v)", exec, ok)
	}
	queue, ok := (&tr).StageDur(trace.StageQueue)
	if !ok || queue < 8*time.Millisecond {
		t.Fatalf("cold-start queue %v should include the weight transfer", queue)
	}
	load, ok := (&tr).StageDur(trace.StageLoad)
	if !ok || load < 8*time.Millisecond || load > queue {
		t.Fatalf("load span %v should sit inside the %v queue wait", load, queue)
	}
	if tr.Latency < queue+exec {
		t.Fatal("decomposition exceeds total latency")
	}
	if tr.PredExec <= 0 || tr.Batch != 1 || tr.Worker != 0 {
		t.Fatalf("scheduler decision not captured: %+v", tr)
	}
	if tr.Violation {
		t.Fatalf("in-SLO request flagged as violation: %+v", tr)
	}
	if snap.Stats.Building != 0 {
		t.Fatalf("building traces leaked: %+v", snap.Stats)
	}
}

func TestClusterFlightRecorderFailureCapture(t *testing.T) {
	cl, rec := newTracedCluster(t)
	cl.RegisterModel("m", modelzoo.ResNet50())
	cl.Submit("m", time.Millisecond, nil) // unmeetable
	cl.RunFor(100 * time.Millisecond)

	snap := rec.Snapshot()
	if len(snap.Requests) != 1 {
		t.Fatalf("want 1 retained trace, got %d", len(snap.Requests))
	}
	tr := snap.Requests[0]
	if tr.Success || tr.ReasonStr != "cancelled" || !tr.Violation {
		t.Fatalf("trace: %+v", tr)
	}
	// Cold model + unmeetable SLO: provenance blames the cold start.
	if tr.Cause != trace.CauseColdStart {
		t.Fatalf("cause = %v", tr.Cause)
	}
	found := false
	for _, p := range snap.Provenance {
		if p.Cause == trace.CauseColdStart.String() && p.Model == "m" && p.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("provenance table missing the cold-start cancel: %+v", snap.Provenance)
	}
}

// TestFlightRecorderPureObserver locks the determinism contract:
// attaching a recorder (at any rate) must not move a single event —
// the controller's outcome counters and the engine step count match a
// recorder-free run exactly.
func TestFlightRecorderPureObserver(t *testing.T) {
	run := func(rec *trace.Recorder) (Stats, uint64) {
		cl := NewCluster(ClusterConfig{Workers: 2, GPUsPerWorker: 2, Seed: 7})
		if rec != nil {
			cl.SetFlightRecorder(rec)
		}
		cl.RegisterModel("m", modelzoo.ResNet50())
		for i := 0; i < 50; i++ {
			cl.Eng.After(time.Duration(i)*2*time.Millisecond, func() {
				cl.Submit("m", 50*time.Millisecond, nil)
			})
		}
		cl.RunFor(500 * time.Millisecond)
		return cl.Stats(), cl.Eng.Steps()
	}
	base, baseSteps := run(nil)
	for _, rate := range []float64{0, 0.5, 1} {
		got, steps := run(trace.New(trace.Options{SampleRate: rate, Enabled: true}))
		if got != base || steps != baseSteps {
			t.Fatalf("rate %v perturbed the run: stats %+v vs %+v, steps %d vs %d",
				rate, got, base, steps, baseSteps)
		}
	}
}

func TestFlightRecorderFollowsMigration(t *testing.T) {
	cl := NewCluster(ClusterConfig{
		Workers: 2, GPUsPerWorker: 1, Shards: 2, NoNoise: true,
		NewScheduler: func() Scheduler { return NewClockworkScheduler() },
	})
	rec := trace.New(trace.Options{SampleRate: 1, Enabled: true})
	cl.SetFlightRecorder(rec)
	if err := cl.RegisterModel("m", modelzoo.ResNet50()); err != nil {
		t.Fatal(err)
	}
	from, _ := cl.ShardOf("m")
	to := 1 - from

	// Drain the owning shard's only worker so the request parks in the
	// queue with no in-flight action (a migratable state), then migrate
	// the model mid-queue.
	if err := cl.DrainWorker(from); err != nil {
		t.Fatal(err)
	}
	cl.Submit("m", 250*time.Millisecond, nil)
	cl.RunFor(5 * time.Millisecond) // request admitted and queued
	if err := cl.MigrateModel("m", to); err != nil {
		t.Fatal(err)
	}
	cl.RunFor(300 * time.Millisecond)

	snap := rec.Snapshot()
	if len(snap.Requests) != 1 {
		t.Fatalf("want 1 trace after migration, got %d", len(snap.Requests))
	}
	if snap.Requests[0].Shard != to {
		t.Fatalf("trace should finalize on adopting shard %d: %+v", to, snap.Requests[0])
	}
	if snap.Stats.Building != 0 {
		t.Fatalf("building traces leaked across migration: %+v", snap.Stats)
	}
}
