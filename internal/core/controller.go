package core

import (
	"fmt"
	"sort"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/modelzoo"
	"clockwork/internal/predictor"
	"clockwork/internal/simclock"
	"clockwork/trace"
)

// Config parameterises the controller.
type Config struct {
	// Lookahead is how far into the future the controller keeps each
	// executor scheduled (§5.3: 5ms by default).
	Lookahead time.Duration
	// ProfileWindow is the rolling measurement window per action key
	// (§5.3: the past 10 actions).
	ProfileWindow int
	// LoadHorizon scales GPU capacity when computing Appendix B load
	// priorities.
	LoadHorizon time.Duration
	// ResponseMargin is subtracted from each request's SLO to form its
	// internal deadline, covering the result's return path (output
	// transfer + network). Zero selects min(1ms, SLO/20) per request.
	ResponseMargin time.Duration
	// DisableAdmissionControl turns off Clockwork's cancel-in-advance
	// behaviour. Baseline schedulers (Clipper/INFaaS style) set this:
	// they treat the SLO as a soft goal and execute requests even after
	// their deadlines have passed.
	DisableAdmissionControl bool
	// NetworkAllowance pads predicted LOAD completion times to cover the
	// controller→worker hop, so an INFER whose window opens at a LOAD's
	// ETA never races the transfer (default 500µs).
	NetworkAllowance time.Duration

	// IDStart and IDStride partition the request/action ID spaces across
	// scheduler shards: shard i of N runs with IDStart=i, IDStride=N, so
	// every controller mints IDs from a disjoint arithmetic progression
	// and responses/traces stay globally unambiguous. The zero values
	// (start 0, stride 1) reproduce the unsharded sequence 1, 2, 3, …
	IDStart  uint64
	IDStride uint64
}

// Defaults from the paper.
const (
	DefaultLookahead   = 5 * time.Millisecond
	DefaultLoadHorizon = 100 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.Lookahead <= 0 {
		c.Lookahead = DefaultLookahead
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = predictor.DefaultWindow
	}
	if c.LoadHorizon <= 0 {
		c.LoadHorizon = DefaultLoadHorizon
	}
	if c.NetworkAllowance <= 0 {
		c.NetworkAllowance = 500 * time.Microsecond
	}
	if c.IDStride == 0 {
		c.IDStride = 1
	}
	return c
}

// Scheduler is the decision-making brain plugged into the controller
// (§5.3). The controller owns networking, state mirroring, timeouts and
// response plumbing; the scheduler decides what runs where and when.
// Schedulers plug into clusters by name through the policy registry
// (see registry.go).
//
// Retention rule: *Request objects recycle through a free list the
// moment they reach a final outcome, so a scheduler must not retain a
// *Request beyond the callback that delivered it (nor beyond the
// queues the controller itself maintains). A scheduler that needs
// request identity across callbacks must capture (r, r.Gen()) pairs and
// revalidate with CancelRequestGen-style generation checks, or copy
// the plain fields it needs — holding the bare pointer observes the
// slot's next occupant.
type Scheduler interface {
	// Attach gives the scheduler its controller before any events flow.
	Attach(c *Controller)
	// OnRequest fires after the controller has enqueued a new request.
	OnRequest(r *Request)
	// OnResult fires after the controller has updated its mirrors with
	// a worker result.
	OnResult(res action.Result)
	// OnCancel fires after the controller cancelled a queued request
	// whose SLO became unmeetable.
	OnCancel(r *Request)
}

// Stats counts controller-side outcomes.
type Stats struct {
	Requests  uint64 // total received
	Succeeded uint64
	Cancelled uint64 // rejected in advance by the controller (or client-cancelled)
	Rejected  uint64 // action cancelled by a worker (misprediction)
	ColdStart uint64 // requests whose model was not resident on arrival

	// Control-plane outcomes.
	WorkerLost   uint64 // in-flight requests lost to FailWorker
	Unregistered uint64 // queued requests failed by UnregisterModel

	ActionsInfer  uint64
	ActionsLoad   uint64
	ActionsUnload uint64
	LoadFailures  uint64 // LOAD actions rejected by workers
}

// Controller is Clockwork's centralized controller.
type Controller struct {
	eng  *simclock.Engine
	cfg  Config
	schd Scheduler

	// workers holds this controller's workers in the order they were
	// added; workerByID addresses them by their cluster-global ID (a
	// sharded control plane gives each controller a non-contiguous slice
	// of the global worker ID space).
	workers    []*workerHandle
	workerByID map[int]*workerHandle
	gpus       []*GPUMirror
	models     map[string]*ModelInfo
	// modelList holds registered models in registration order — the
	// deterministic iteration order the control plane uses where the
	// models map would introduce map-order nondeterminism.
	modelList []*ModelInfo
	nextSeq   uint64

	// activeModels is the set of models with at least one queued
	// request (Appendix B's demand tracking works over this set).
	activeModels map[*ModelInfo]bool

	// demandIdx orders active models by demand (descending) and
	// deadlineIdx by earliest queued deadline (ascending); together
	// with the per-GPU strategy heaps they replace the seed's
	// O(models) scans (see index.go). deadlineIdx is maintained only
	// when a scheduler opts in via enableDeadlineIndex.
	demandIdx     modelTreap
	deadlineIdx   modelTreap
	deadlineIdxOn bool

	// testOnInfer, when non-nil, observes every dispatched INFER with
	// the requests it carries; tests install it to audit scheduler
	// invariants at the moment of decision.
	testOnInfer func(a *action.Action, reqs []*Request)

	profile *predictor.Profile

	nextRequestID uint64
	nextActionID  uint64

	pendingInfers map[uint64]pendingInfer

	// Hot-path free lists (engine-confined; see ARCHITECTURE.md,
	// "Hot-path memory discipline"). Requests and INFER actions recycle
	// once no engine-side stage references them; client handles survive
	// recycling through the request generation guard.
	freeReqs    []*Request
	freeActs    []*action.Action
	freeBatches [][]*Request

	// Fig 9 telemetry: duration and completion-time prediction errors.
	InferDuration   *predictor.ErrorTracker
	LoadDuration    *predictor.ErrorTracker
	InferCompletion *predictor.ErrorTracker
	LoadCompletion  *predictor.ErrorTracker

	// flight is this shard's slice of the attached flight recorder
	// (nil = none; every hook is nil-safe). Set by the cluster layer
	// before any engine runs. Hooks are pure observers: they only
	// append to recorder state, never schedule events or mint IDs, so
	// an attached recorder leaves the schedule bit-identical.
	flight *trace.ShardRecorder

	stats Stats
}

// pendingInfer couples an in-flight INFER's requests with the mirror it
// was dispatched to, so FailWorker can find (and fail) exactly the work
// lost with a worker. The action rides along so a completed INFER can
// recycle its node (and ID-slice backing); an action lost with a failed
// worker is NOT recycled — the dead worker's queues may still hold it.
type pendingInfer struct {
	g    *GPUMirror
	reqs []*Request
	a    *action.Action
}

// ---- hot-path free lists ----

func (c *Controller) acquireRequest() *Request {
	if n := len(c.freeReqs); n > 0 {
		r := c.freeReqs[n-1]
		c.freeReqs = c.freeReqs[:n-1]
		return r
	}
	return new(Request)
}

// releaseRequest recycles a terminally-answered request. Callers must
// guarantee no engine-side stage still references it (not queued, not
// in pendingInfers, timer stopped). The generation bump invalidates any
// stale client handle.
func (c *Controller) releaseRequest(r *Request) {
	gen := r.gen + 1
	*r = Request{gen: gen}
	c.freeReqs = append(c.freeReqs, r)
}

func (c *Controller) acquireAction() *action.Action {
	if n := len(c.freeActs); n > 0 {
		a := c.freeActs[n-1]
		c.freeActs = c.freeActs[:n-1]
		return a
	}
	return new(action.Action)
}

// releaseAction recycles an INFER action whose result has been fully
// ingested, keeping the RequestIDs backing for the next dispatch. The
// flight recorder copies ID slices it retains (trace.ShardRecorder
// .ExecDone), so reusing the backing cannot corrupt retained spans.
func (c *Controller) releaseAction(a *action.Action) {
	ids := a.RequestIDs[:0]
	*a = action.Action{RequestIDs: ids}
	c.freeActs = append(c.freeActs, a)
}

// acquireBatch returns a request slice of length n for PopBatch; the
// backing recycles through handleInferResult/FailWorker.
func (c *Controller) acquireBatch(n int) []*Request {
	if m := len(c.freeBatches); m > 0 {
		b := c.freeBatches[m-1]
		c.freeBatches = c.freeBatches[:m-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]*Request, n)
}

func (c *Controller) releaseBatch(b []*Request) {
	for i := range b {
		b[i] = nil
	}
	c.freeBatches = append(c.freeBatches, b[:0])
}

// NewController returns a controller driving the given scheduler.
func NewController(eng *simclock.Engine, cfg Config, schd Scheduler) *Controller {
	c := &Controller{
		eng:             eng,
		cfg:             cfg.withDefaults(),
		schd:            schd,
		workerByID:      make(map[int]*workerHandle),
		models:          make(map[string]*ModelInfo),
		activeModels:    make(map[*ModelInfo]bool),
		pendingInfers:   make(map[uint64]pendingInfer),
		InferDuration:   predictor.NewErrorTracker(),
		LoadDuration:    predictor.NewErrorTracker(),
		InferCompletion: predictor.NewErrorTracker(),
		LoadCompletion:  predictor.NewErrorTracker(),
	}
	c.nextRequestID = c.cfg.IDStart
	c.nextActionID = c.cfg.IDStart
	c.demandIdx.desc = true
	c.profile = predictor.NewProfile(c.cfg.ProfileWindow)
	schd.Attach(c)
	return c
}

// Engine exposes the event engine (schedulers arm wake timers with it).
func (c *Controller) Engine() *simclock.Engine { return c.eng }

// Now returns the current instant.
func (c *Controller) Now() simclock.Time { return c.eng.Now() }

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the outcome counters.
func (c *Controller) Stats() Stats { return c.stats }

// GPUs returns all GPU mirrors across workers, including those of
// drained or failed workers (check Disabled before scheduling onto one).
func (c *Controller) GPUs() []*GPUMirror { return c.gpus }

// WorkerCount returns the number of workers ever added (drained and
// failed workers keep their IDs).
func (c *Controller) WorkerCount() int { return len(c.workers) }

// AddWorker registers a worker's mirrors and its transport hook. The
// cluster layer calls this during setup — and at runtime for control-
// plane scale-out — exchanging page-cache geometry like the startup
// handshake of §5.3. Worker IDs are cluster-global and need not be
// contiguous within one controller (a sharded control plane stripes the
// global ID space across shards), but must be unique and ascending.
func (c *Controller) AddWorker(id, gpuCount int, pageCacheBytes, pageSize int64,
	submit func(a *action.Action, payloadBytes int64)) {
	if _, dup := c.workerByID[id]; dup {
		panic(fmt.Sprintf("core: duplicate worker ID %d", id))
	}
	if n := len(c.workers); n > 0 && c.workers[n-1].id >= id {
		panic(fmt.Sprintf("core: workers must be added in ascending ID order (got %d after %d)", id, c.workers[n-1].id))
	}
	wh := &workerHandle{id: id, submit: submit}
	for i := 0; i < gpuCount; i++ {
		m := newGPUMirror(id, i, pageCacheBytes, pageSize)
		m.withWork = make(map[*ModelInfo]bool)
		wh.gpus = append(wh.gpus, m)
		c.gpus = append(c.gpus, m)
	}
	c.workers = append(c.workers, wh)
	c.workerByID[id] = wh
}

// DrainWorker takes a worker out of scheduling: no new actions are sent
// to it, in-flight actions run to completion and their results are
// still honoured. The worker's resident replicas stop counting toward
// Appendix B demand fulfilment, so the load-priority policy re-creates
// needed replicas elsewhere.
func (c *Controller) DrainWorker(id int) error {
	wh, err := c.worker(id)
	if err != nil {
		return err
	}
	if wh.draining || wh.failed {
		return fmt.Errorf("%w: worker %d", ErrWorkerDown, id)
	}
	wh.draining = true
	c.detachWorker(wh)
	return nil
}

// FailWorker simulates an abrupt worker loss (the paper's C3 class of
// external factors, promoted from the fault-injection test harness):
// scheduling stops as with DrainWorker, but in-flight work is lost —
// its requests fail immediately with ReasonWorkerFailed and any late
// results from the worker are dropped.
func (c *Controller) FailWorker(id int) error {
	wh, err := c.worker(id)
	if err != nil {
		return err
	}
	if wh.failed {
		return fmt.Errorf("%w: worker %d", ErrWorkerDown, id)
	}
	wh.failed = true
	c.detachWorker(wh)

	// Fail the in-flight INFERs dispatched to this worker, in action-ID
	// order (map iteration order must not leak into response order).
	var lost []uint64
	for aid, p := range c.pendingInfers {
		if p.g.WorkerID == id {
			lost = append(lost, aid)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, aid := range lost {
		p := c.pendingInfers[aid]
		delete(c.pendingInfers, aid)
		for _, r := range p.reqs {
			if r.state != stateInFlight {
				continue
			}
			r.state = stateDone
			c.stats.WorkerLost++
			c.respond(r, Response{
				RequestID: r.ID, Model: r.Model, Tenant: r.Tenant, Success: false,
				Reason: ReasonWorkerFailed, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
			})
		}
		// The dead worker's late results are dropped at HandleResult's
		// door, so these requests are final; the action node itself may
		// still sit in the dead worker's queues and is left to the GC.
		c.recycleBatch(p.reqs)
	}
	for _, g := range wh.gpus {
		g.inFlightInfers = make(map[string]int)
		g.loading = make(map[string]simclock.Time)
	}
	return nil
}

// worker validates a (cluster-global) worker ID against this controller.
func (c *Controller) worker(id int) (*workerHandle, error) {
	wh, ok := c.workerByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d (shard has %d workers)", ErrNoSuchWorker, id, len(c.workers))
	}
	return wh, nil
}

// OwnsWorker reports whether worker id belongs to this controller.
func (c *Controller) OwnsWorker(id int) bool {
	_, ok := c.workerByID[id]
	return ok
}

// mirror returns the mirror of (workerID, gpu); both must belong to this
// controller.
func (c *Controller) mirror(workerID, gpu int) *GPUMirror {
	return c.workerByID[workerID].gpus[gpu]
}

// detachWorker disables a worker's mirrors and retracts its replicas
// from the controller's residency and demand accounting. Models are
// visited in registration order so every index mutation is replayed
// identically across runs.
func (c *Controller) detachWorker(wh *workerHandle) {
	for _, g := range wh.gpus {
		g.disabled = true
		for _, mi := range c.modelList {
			if mi.residentOn[g] {
				delete(mi.residentOn, g)
				delete(g.withWork, mi)
				c.reindexModel(mi)
			}
		}
		g.stratQ = g.stratQ[:0]
	}
}

// WorkerState reports a worker's control-plane state.
type WorkerState uint8

// Worker lifecycle states.
const (
	WorkerActive WorkerState = iota
	WorkerDraining
	WorkerFailed
)

// String implements fmt.Stringer.
func (s WorkerState) String() string {
	switch s {
	case WorkerActive:
		return "active"
	case WorkerDraining:
		return "draining"
	case WorkerFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// WorkerStateOf returns the lifecycle state of worker id.
func (c *Controller) WorkerStateOf(id int) (WorkerState, error) {
	wh, err := c.worker(id)
	if err != nil {
		return WorkerActive, err
	}
	switch {
	case wh.failed:
		return WorkerFailed, nil
	case wh.draining:
		return WorkerDraining, nil
	default:
		return WorkerActive, nil
	}
}

// RegisterModel announces a model instance, seeding its action profiles
// from offline profiling data (§5.1). Duplicate names are an error.
func (c *Controller) RegisterModel(name string, zoo *modelzoo.Model) error {
	if zoo == nil {
		return fmt.Errorf("%w: nil model for %q", ErrInvalidRequest, name)
	}
	if name == "" {
		return fmt.Errorf("%w: empty model name", ErrInvalidRequest)
	}
	if _, dup := c.models[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	mi := &ModelInfo{name: name, zoo: zoo, owner: c, residentOn: make(map[*GPUMirror]bool), seq: c.nextSeq}
	c.nextSeq++
	c.models[name] = mi
	c.modelList = append(c.modelList, mi)
	for _, b := range modelzoo.BatchSizes {
		c.profile.Seed(predictor.Key{Op: "exec", Model: name, Batch: b}, zoo.ExecLatency(b))
	}
	c.profile.Seed(predictor.Key{Op: "load", Model: name}, zoo.Transfer())
	return nil
}

// UnregisterModel removes a model instance: its queued requests fail
// with ReasonUnregistered, its replicas are unloaded, and subsequent
// submissions return ErrUnknownModel. A model with in-flight actions
// (a LOAD or INFER somewhere in the cluster) is ErrModelBusy — run the
// engine until its work drains, then retry.
func (c *Controller) UnregisterModel(name string) error {
	mi, ok := c.models[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if c.modelBusy(name) {
		return fmt.Errorf("%w: %q", ErrModelBusy, name)
	}

	// Fail queued requests, oldest first.
	queued := append([]*Request(nil), mi.queue...)
	for _, r := range queued {
		if r.state != stateQueued {
			continue
		}
		mi.removeRequest(r)
		r.state = stateDone
		c.stats.Unregistered++
		c.respond(r, Response{
			RequestID: r.ID, Model: r.Model, Tenant: r.Tenant, Success: false,
			Reason: ReasonUnregistered, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
		})
		c.releaseRequest(r)
	}
	mi.demand = 0
	c.noteQueueMaybeEmpty(mi)

	// Evict every replica (deterministic GPU order; disabled mirrors
	// were already detached and their workers keep stale weights).
	for _, g := range c.gpus {
		if !g.disabled && mi.residentOn[g] {
			c.SendUnload(g, mi)
		}
	}

	c.reindexModel(mi) // removes mi from the ordered indexes
	delete(c.models, name)
	for i, m := range c.modelList {
		if m == mi {
			c.modelList = append(c.modelList[:i], c.modelList[i+1:]...)
			break
		}
	}
	return nil
}

// Model returns the registry entry for name.
func (c *Controller) Model(name string) (*ModelInfo, bool) {
	mi, ok := c.models[name]
	return mi, ok
}

// ModelCount returns the number of registered instances.
func (c *Controller) ModelCount() int { return len(c.models) }

// ActiveModels returns the set of models with queued requests. The
// returned map is live; schedulers must not mutate it.
func (c *Controller) ActiveModels() map[*ModelInfo]bool { return c.activeModels }

// EstimateExec predicts execution latency of (model, batch).
func (c *Controller) EstimateExec(mi *ModelInfo, batch int) time.Duration {
	return c.profile.Estimate(predictor.Key{Op: "exec", Model: mi.name, Batch: batch})
}

// EstimateLoad predicts the weight-transfer duration of model.
func (c *Controller) EstimateLoad(mi *ModelInfo) time.Duration {
	return c.profile.Estimate(predictor.Key{Op: "load", Model: mi.name})
}

// Submit accepts one client request with default options — the original
// submission path, kept for the common case.
func (c *Controller) Submit(model string, slo time.Duration, onResponse func(Response)) *Request {
	return c.SubmitSpec(SubmitSpec{Model: model, SLO: slo}, onResponse)
}

// SubmitSpec accepts one client request. The cluster layer invokes this
// when the request arrives at the controller over the network. The
// controller no longer trusts its caller to have validated the model:
// an unregistered model (e.g. unregistered while the request was in
// transit) fails the request with ReasonUnregistered rather than
// panicking, and returns nil.
func (c *Controller) SubmitSpec(spec SubmitSpec, onResponse func(Response)) *Request {
	return c.submitSpec(spec, onResponse, nil)
}

// SubmitSpecTo is SubmitSpec with a preallocated Responder instead of a
// response closure — the allocation-free submission form. The returned
// request may be recycled as soon as its terminal response fires;
// callers retaining it must capture Gen() before the response can
// arrive and check it before acting (see Handle in the cluster layer).
func (c *Controller) SubmitSpecTo(spec SubmitSpec, rsp Responder) *Request {
	return c.submitSpec(spec, nil, rsp)
}

func (c *Controller) submitSpec(spec SubmitSpec, onResponse func(Response), rsp Responder) *Request {
	now := c.eng.Now()
	mi, ok := c.models[spec.Model]
	if !ok {
		c.nextRequestID += c.cfg.IDStride
		c.stats.Requests++
		c.stats.Unregistered++
		resp := Response{
			RequestID: c.nextRequestID, Model: spec.Model, Tenant: spec.Tenant,
			Success: false, Reason: ReasonUnregistered, CompletedAt: now,
		}
		if rsp != nil {
			rsp.Respond(resp)
		} else if onResponse != nil {
			onResponse(resp)
		}
		return nil
	}
	c.nextRequestID += c.cfg.IDStride
	margin := c.cfg.ResponseMargin
	if margin <= 0 {
		margin = time.Millisecond
		if m := spec.SLO / 20; m < margin {
			margin = m
		}
	}
	r := c.acquireRequest()
	gen := r.gen
	*r = Request{
		ID:          c.nextRequestID,
		Model:       spec.Model,
		SLO:         spec.SLO,
		Priority:    spec.Priority,
		Tenant:      spec.Tenant,
		MaxBatch:    spec.MaxBatch,
		Arrival:     now,
		InputBytes:  mi.zoo.InputBytes(),
		OutputBytes: mi.zoo.OutputBytes(),
		OnResponse:  onResponse,
		responder:   rsp,
		state:       stateQueued,
		deadline:    now.Add(spec.SLO - margin),
		execEst:     c.EstimateExec(mi, 1),
		ctl:         c,
		gen:         gen,
	}
	r.coldStart = len(mi.residentOn) == 0
	if r.coldStart {
		c.stats.ColdStart++
	}
	c.stats.Requests++

	mi.enqueue(r)
	mi.demand += r.execEst
	if len(mi.queue) == 1 {
		c.activeModels[mi] = true
		for g := range mi.residentOn {
			g.withWork[mi] = true
		}
	}
	c.reindexModel(mi)
	c.flight.Admitted(r.ID, r.Model, r.Tenant, r.SLO, r.Priority, r.coldStart, len(mi.queue), now.Duration())

	// A client cancel that raced the request's network transit wins
	// deterministically: the request is answered before the scheduler
	// could dispatch it — and recycled here, so the caller gets nil
	// rather than a pointer whose generation has already moved on.
	if spec.preCancelled {
		c.cancelRequest(mi, r)
		if r.state == stateDone {
			c.releaseRequest(r)
		}
		return nil
	}

	// Cancel in advance at the last instant a batch-1 warm execution
	// could still begin (§4.1: "cancels the request before performing
	// any fruitless work"). Baselines execute late requests instead.
	if !c.cfg.DisableAdmissionControl {
		lastChance := r.deadline.Add(-r.execEst)
		r.cancelTmr = c.eng.AtRun(lastChance, r)
	}

	c.schd.OnRequest(r)
	return r
}

// CancelRequest cancels a still-queued request on the client's behalf.
// It reports whether the request was cancelled (false when it already
// completed or is in flight — in-flight work cannot be clawed back,
// §4.2).
func (c *Controller) CancelRequest(r *Request) bool {
	if r == nil || r.state != stateQueued {
		return false
	}
	mi, ok := c.models[r.Model]
	if !ok {
		return false
	}
	c.cancelRequest(mi, r)
	done := r.state == stateDone
	if done {
		c.releaseRequest(r)
	}
	return done
}

// CancelRequestGen is CancelRequest for callers holding a possibly-
// recycled reference: gen must match the generation captured when the
// request was obtained (Request.Gen). A stale handle's generation can
// never match a recycled node — releaseRequest bumps it — so the cancel
// deterministically no-ops instead of hitting the node's new occupant.
func (c *Controller) CancelRequestGen(r *Request, gen uint64) bool {
	if r == nil || r.gen != gen {
		return false
	}
	return c.CancelRequest(r)
}

// cancelRequest fails a still-queued request whose SLO is unmeetable.
func (c *Controller) cancelRequest(mi *ModelInfo, r *Request) {
	if r.state != stateQueued {
		return
	}
	if !mi.removeRequest(r) {
		return
	}
	mi.demand -= r.execEst
	c.noteQueueMaybeEmpty(mi)
	c.reindexModel(mi)
	r.state = stateDone
	c.stats.Cancelled++
	c.respond(r, Response{
		RequestID: r.ID, Model: r.Model, Tenant: r.Tenant, Success: false,
		Reason: ReasonCancelled, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
	})
	c.schd.OnCancel(r)
}

// timeoutRequest fails an in-flight request whose deadline passed before
// its result arrived (the action was rejected or its result is late).
func (c *Controller) timeoutRequest(r *Request) {
	if r.state != stateInFlight {
		return
	}
	r.state = stateDone
	c.stats.Rejected++
	c.respond(r, Response{
		RequestID: r.ID, Model: r.Model, Tenant: r.Tenant, Success: false,
		Reason: ReasonTimeout, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
	})
}

func (c *Controller) noteQueueMaybeEmpty(mi *ModelInfo) {
	if len(mi.queue) == 0 {
		delete(c.activeModels, mi)
		for g := range mi.residentOn {
			delete(g.withWork, mi)
		}
	}
}

func (c *Controller) respond(r *Request, resp Response) {
	r.cancelTmr.Stop()
	r.cancelTmr = simclock.Timer{}
	c.flight.Responded(r.ID, c.eng.Now().Duration())
	switch {
	case r.responder != nil:
		r.responder.Respond(resp)
	case r.OnResponse != nil:
		r.OnResponse(resp)
	}
}

// ---- scheduler action emission ----

// SendInfer dispatches a batch of queued requests as one INFER action on
// mirror g. The requests must have been popped from the model's queue by
// the scheduler (PopBatch); the controller handles demand bookkeeping,
// window math, mirror updates, and transport.
func (c *Controller) SendInfer(g *GPUMirror, mi *ModelInfo, batch int, reqs []*Request,
	earliest, latest simclock.Time) *action.Action {
	if len(reqs) == 0 {
		panic("core: SendInfer with no requests")
	}
	est := c.EstimateExec(mi, batch)
	if est <= 0 {
		panic("core: zero exec estimate for " + mi.name)
	}
	var inputs, outputs int64
	for _, r := range reqs {
		r.state = stateInFlight
		mi.demand -= r.execEst
		inputs += r.InputBytes
		outputs += r.OutputBytes
		// Re-arm the request's timer at its deadline: if the action is
		// rejected by the worker (a timing misprediction), the client
		// learns of the failure AT the deadline, never after — the
		// paper's failed requests "timed out at 100ms".
		r.cancelTmr.Stop()
		if !c.cfg.DisableAdmissionControl {
			r.cancelTmr = c.eng.AtRun(r.deadline, r)
		}
	}
	if mi.demand < 0 {
		mi.demand = 0
	}
	c.noteQueueMaybeEmpty(mi)

	c.nextActionID += c.cfg.IDStride
	startAt := simclock.Max(earliest, c.eng.Now())
	completion := startAt.Add(est)
	a := c.acquireAction()
	ids := a.RequestIDs[:0]
	for _, r := range reqs {
		ids = append(ids, r.ID)
	}
	*a = action.Action{
		ID:                 c.nextActionID,
		Type:               action.Infer,
		GPU:                g.GPU,
		Model:              mi.name,
		Batch:              batch,
		RequestIDs:         ids,
		Earliest:           earliest,
		Latest:             latest,
		ExpectedDuration:   est,
		ExpectedCompletion: completion,
		InputBytes:         inputs,
		OutputBytes:        outputs,
	}
	g.ExecFreeAt = completion
	g.inFlightInfers[mi.name]++
	g.Pages.Touch(mi.name)
	c.pendingInfers[a.ID] = pendingInfer{g: g, reqs: reqs, a: a}
	c.stats.ActionsInfer++
	c.reindexModel(mi)
	c.flight.Scheduled(a.RequestIDs, a.ID, g.WorkerID, g.GPU, batch,
		startAt.Duration(), est, c.eng.Now().Duration())
	if c.testOnInfer != nil {
		c.testOnInfer(a, reqs)
	}
	c.workerByID[g.WorkerID].submit(a, inputs)
	return a
}

// SendLoad dispatches a LOAD for mi on mirror g, updating the mirror's
// page and loading state. The scheduler must have ensured enough free
// pages (via SendUnload).
func (c *Controller) SendLoad(g *GPUMirror, mi *ModelInfo, earliest, latest simclock.Time) *action.Action {
	pages := mi.zoo.Pages(g.Pages.PageSize())
	if err := g.Pages.Alloc(mi.name, pages); err != nil {
		panic(fmt.Sprintf("core: SendLoad without free pages: %v", err))
	}
	est := c.EstimateLoad(mi)
	if est <= 0 {
		panic("core: zero load estimate for " + mi.name)
	}
	c.nextActionID += c.cfg.IDStride
	// The executor frees at transferEnd; the weights are *usable* for
	// INFER window math a network-allowance later, so windows opened at
	// the ETA never race the transfer's completion.
	transferEnd := simclock.Max(earliest, c.eng.Now()).Add(est)
	eta := transferEnd.Add(c.cfg.NetworkAllowance)
	a := &action.Action{
		ID:                 c.nextActionID,
		Type:               action.Load,
		GPU:                g.GPU,
		Model:              mi.name,
		Earliest:           earliest,
		Latest:             latest,
		ExpectedDuration:   est,
		ExpectedCompletion: transferEnd,
	}
	g.loading[mi.name] = eta
	g.LoadFreeAt = transferEnd
	mi.residentOn[g] = true
	if len(mi.queue) > 0 {
		g.withWork[mi] = true
	}
	c.stats.ActionsLoad++
	c.reindexModel(mi)
	c.workerByID[g.WorkerID].submit(a, 0)
	return a
}

// SendUnload dispatches an UNLOAD for mi on mirror g and updates the
// mirror immediately (UNLOAD always succeeds on the worker, §5.2).
func (c *Controller) SendUnload(g *GPUMirror, mi *ModelInfo) *action.Action {
	if err := g.Pages.Free(mi.name); err != nil {
		panic(fmt.Sprintf("core: SendUnload: %v", err))
	}
	delete(g.loading, mi.name)
	delete(mi.residentOn, g)
	delete(g.withWork, mi)
	c.nextActionID += c.cfg.IDStride
	a := &action.Action{
		ID:       c.nextActionID,
		Type:     action.Unload,
		GPU:      g.GPU,
		Model:    mi.name,
		Earliest: c.eng.Now(),
		Latest:   simclock.MaxTime,
	}
	c.stats.ActionsUnload++
	c.reindexModel(mi)
	c.workerByID[g.WorkerID].submit(a, 0)
	return a
}

// HandleResult ingests one worker result. The cluster layer invokes this
// when the result arrives at the controller over the network. Results
// from failed workers are dropped — their requests were already failed
// by FailWorker.
func (c *Controller) HandleResult(res action.Result) {
	if c.workerByID[res.WorkerID].failed {
		return
	}
	g := c.mirror(res.WorkerID, res.GPU)
	switch res.Type {
	case action.Load:
		c.handleLoadResult(g, res)
	case action.Infer:
		// The action node recycles only after the scheduler's OnResult:
		// res.RequestIDs aliases its backing, and a scheduling pass run
		// from OnResult may dispatch a fresh INFER into that backing.
		a := c.handleInferResult(g, res)
		c.schd.OnResult(res)
		if a != nil {
			c.releaseAction(a)
		}
		return
	case action.Unload:
		// Mirror already updated at send time; a rejection here means
		// the mirror diverged (counted, should not happen).
		if !res.Status.IsSuccess() {
			c.stats.LoadFailures++
		}
	}
	c.schd.OnResult(res)
}

func (c *Controller) handleLoadResult(g *GPUMirror, res action.Result) {
	mi := c.models[res.Model]
	if mi == nil {
		// The model was unregistered while its LOAD was in flight (the
		// control plane refuses that — defensive for future callers).
		delete(g.loading, res.Model)
		return
	}
	if res.Status.IsSuccess() {
		delete(g.loading, res.Model)
		c.profile.Observe(predictor.Key{Op: "load", Model: res.Model}, res.Duration)
		c.LoadDuration.Record(res.ExpectedDuration, res.Duration)
		c.LoadCompletion.Record(absTimeError(res.ExpectedCompletion, res.End))
		c.flight.LoadDone(res.Model, res.WorkerID, res.GPU, res.Start.Duration(), res.End.Duration(), true)
		// The model's readiness instant just dropped from the LOAD's
		// padded ETA to "now"; re-key its strategies.
		c.reindexModel(mi)
		return
	}
	// Rejected LOAD: roll the mirror back.
	c.stats.LoadFailures++
	c.flight.LoadDone(res.Model, res.WorkerID, res.GPU, res.Start.Duration(), res.End.Duration(), false)
	delete(g.loading, res.Model)
	if g.Pages.Has(res.Model) {
		if err := g.Pages.Free(res.Model); err == nil {
			delete(mi.residentOn, g)
			delete(g.withWork, mi)
		}
	}
	c.reindexModel(mi)
}

// handleInferResult answers the action's requests and returns the
// action node for recycling (nil when it must be left to the GC).
func (c *Controller) handleInferResult(g *GPUMirror, res action.Result) *action.Action {
	p := c.pendingInfers[res.ActionID]
	reqs := p.reqs
	delete(c.pendingInfers, res.ActionID)
	mi := c.models[res.Model]
	if n := g.inFlightInfers[res.Model]; n <= 1 {
		delete(g.inFlightInfers, res.Model)
	} else {
		g.inFlightInfers[res.Model] = n - 1
	}
	if mi == nil {
		return p.a // unregistered mid-flight; requests were already answered
	}
	if res.Status.IsSuccess() {
		c.profile.Observe(predictor.Key{Op: "exec", Model: res.Model, Batch: res.Batch}, res.Duration)
		c.InferDuration.Record(res.ExpectedDuration, res.Duration)
		c.InferCompletion.Record(absTimeError(res.ExpectedCompletion, res.End))
		c.flight.ExecDone(res.RequestIDs, res.ActionID, res.Model, res.WorkerID, res.GPU,
			res.Batch, res.Start.Duration(), res.End.Duration())
		// The observation may have moved this model's execution
		// estimates, which re-keys its strategies everywhere.
		c.reindexModel(mi)
		for _, r := range reqs {
			if r.state != stateInFlight {
				continue // already timed out at its deadline
			}
			r.state = stateDone
			c.stats.Succeeded++
			c.respond(r, Response{
				RequestID: r.ID, Model: r.Model, Tenant: r.Tenant, Success: true,
				Batch: res.Batch, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
			})
		}
		c.recycleBatch(reqs)
		return p.a
	}
	// The worker cancelled the action; fail its requests (§4.2: no
	// best-effort remediation). Requests whose deadline already passed
	// were answered by their timeout timer.
	for _, r := range reqs {
		if r.state != stateInFlight {
			continue
		}
		r.state = stateDone
		c.stats.Rejected++
		c.respond(r, Response{
			RequestID: r.ID, Model: r.Model, Tenant: r.Tenant, Success: false,
			Reason: ReasonRejected, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
		})
	}
	// Deliberately do NOT rewind g.ExecFreeAt for the phantom work: the
	// executor dequeues by earliest timestamp, so pulling the horizon
	// back under already-committed actions would let the scheduler slot
	// new work ahead of them and push them past their own windows — a
	// self-sustaining reject cascade. A slightly conservative horizon
	// merely costs an idle gap that elapses on its own.
	c.recycleBatch(reqs)
	return p.a
}

// recycleBatch recycles every request of a fully-ingested INFER result
// (every entry is terminally answered by now — responded above, or
// earlier by its deadline timer or FailWorker's claw-back missing this
// batch) plus the batch slice itself.
func (c *Controller) recycleBatch(reqs []*Request) {
	for _, r := range reqs {
		c.releaseRequest(r)
	}
	c.releaseBatch(reqs)
}

// absTimeError converts predicted/actual instants into the duration pair
// the error trackers expect.
func absTimeError(predicted, actual simclock.Time) (time.Duration, time.Duration) {
	// Express both as durations from a common origin so Record sees the
	// signed difference.
	return time.Duration(predicted), time.Duration(actual)
}
