package core

import (
	"fmt"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/modelzoo"
	"clockwork/internal/predictor"
	"clockwork/internal/simclock"
)

// Config parameterises the controller.
type Config struct {
	// Lookahead is how far into the future the controller keeps each
	// executor scheduled (§5.3: 5ms by default).
	Lookahead time.Duration
	// ProfileWindow is the rolling measurement window per action key
	// (§5.3: the past 10 actions).
	ProfileWindow int
	// LoadHorizon scales GPU capacity when computing Appendix B load
	// priorities.
	LoadHorizon time.Duration
	// ResponseMargin is subtracted from each request's SLO to form its
	// internal deadline, covering the result's return path (output
	// transfer + network). Zero selects min(1ms, SLO/20) per request.
	ResponseMargin time.Duration
	// DisableAdmissionControl turns off Clockwork's cancel-in-advance
	// behaviour. Baseline schedulers (Clipper/INFaaS style) set this:
	// they treat the SLO as a soft goal and execute requests even after
	// their deadlines have passed.
	DisableAdmissionControl bool
	// NetworkAllowance pads predicted LOAD completion times to cover the
	// controller→worker hop, so an INFER whose window opens at a LOAD's
	// ETA never races the transfer (default 500µs).
	NetworkAllowance time.Duration
}

// Defaults from the paper.
const (
	DefaultLookahead   = 5 * time.Millisecond
	DefaultLoadHorizon = 100 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.Lookahead <= 0 {
		c.Lookahead = DefaultLookahead
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = predictor.DefaultWindow
	}
	if c.LoadHorizon <= 0 {
		c.LoadHorizon = DefaultLoadHorizon
	}
	if c.NetworkAllowance <= 0 {
		c.NetworkAllowance = 500 * time.Microsecond
	}
	return c
}

// Scheduler is the decision-making brain plugged into the controller
// (§5.3). The controller owns networking, state mirroring, timeouts and
// response plumbing; the scheduler decides what runs where and when.
type Scheduler interface {
	// Attach gives the scheduler its controller before any events flow.
	Attach(c *Controller)
	// OnRequest fires after the controller has enqueued a new request.
	OnRequest(r *Request)
	// OnResult fires after the controller has updated its mirrors with
	// a worker result.
	OnResult(res action.Result)
	// OnCancel fires after the controller cancelled a queued request
	// whose SLO became unmeetable.
	OnCancel(r *Request)
}

// Stats counts controller-side outcomes.
type Stats struct {
	Requests  uint64 // total received
	Succeeded uint64
	Cancelled uint64 // rejected in advance by the controller
	Rejected  uint64 // action cancelled by a worker (misprediction)
	ColdStart uint64 // requests whose model was not resident on arrival

	ActionsInfer  uint64
	ActionsLoad   uint64
	ActionsUnload uint64
	LoadFailures  uint64 // LOAD actions rejected by workers
}

// Controller is Clockwork's centralized controller.
type Controller struct {
	eng  *simclock.Engine
	cfg  Config
	schd Scheduler

	workers []*workerHandle
	gpus    []*GPUMirror
	models  map[string]*ModelInfo

	// activeModels is the set of models with at least one queued
	// request (Appendix B's demand tracking works over this set).
	activeModels map[*ModelInfo]bool

	// demandIdx orders active models by demand (descending) and
	// deadlineIdx by earliest queued deadline (ascending); together
	// with the per-GPU strategy heaps they replace the seed's
	// O(models) scans (see index.go). deadlineIdx is maintained only
	// when a scheduler opts in via enableDeadlineIndex.
	demandIdx     modelTreap
	deadlineIdx   modelTreap
	deadlineIdxOn bool

	// testOnInfer, when non-nil, observes every dispatched INFER with
	// the requests it carries; tests install it to audit scheduler
	// invariants at the moment of decision.
	testOnInfer func(a *action.Action, reqs []*Request)

	profile *predictor.Profile

	nextRequestID uint64
	nextActionID  uint64

	pendingInfers map[uint64][]*Request

	// Fig 9 telemetry: duration and completion-time prediction errors.
	InferDuration   *predictor.ErrorTracker
	LoadDuration    *predictor.ErrorTracker
	InferCompletion *predictor.ErrorTracker
	LoadCompletion  *predictor.ErrorTracker

	stats Stats
}

// NewController returns a controller driving the given scheduler.
func NewController(eng *simclock.Engine, cfg Config, schd Scheduler) *Controller {
	c := &Controller{
		eng:             eng,
		cfg:             cfg.withDefaults(),
		schd:            schd,
		models:          make(map[string]*ModelInfo),
		activeModels:    make(map[*ModelInfo]bool),
		pendingInfers:   make(map[uint64][]*Request),
		InferDuration:   predictor.NewErrorTracker(),
		LoadDuration:    predictor.NewErrorTracker(),
		InferCompletion: predictor.NewErrorTracker(),
		LoadCompletion:  predictor.NewErrorTracker(),
	}
	c.demandIdx.desc = true
	c.profile = predictor.NewProfile(c.cfg.ProfileWindow)
	schd.Attach(c)
	return c
}

// Engine exposes the event engine (schedulers arm wake timers with it).
func (c *Controller) Engine() *simclock.Engine { return c.eng }

// Now returns the current instant.
func (c *Controller) Now() simclock.Time { return c.eng.Now() }

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the outcome counters.
func (c *Controller) Stats() Stats { return c.stats }

// GPUs returns all GPU mirrors across workers.
func (c *Controller) GPUs() []*GPUMirror { return c.gpus }

// AddWorker registers a worker's mirrors and its transport hook. The
// cluster layer calls this during setup, exchanging page-cache geometry
// like the startup handshake of §5.3.
func (c *Controller) AddWorker(id, gpuCount int, pageCacheBytes, pageSize int64,
	submit func(a *action.Action, payloadBytes int64)) {
	wh := &workerHandle{id: id, submit: submit}
	for i := 0; i < gpuCount; i++ {
		m := newGPUMirror(id, i, pageCacheBytes, pageSize)
		m.withWork = make(map[*ModelInfo]bool)
		wh.gpus = append(wh.gpus, m)
		c.gpus = append(c.gpus, m)
	}
	if id != len(c.workers) {
		panic(fmt.Sprintf("core: workers must be added in ID order (got %d, want %d)", id, len(c.workers)))
	}
	c.workers = append(c.workers, wh)
}

// RegisterModel announces a model instance, seeding its action profiles
// from offline profiling data (§5.1).
func (c *Controller) RegisterModel(name string, zoo *modelzoo.Model) {
	if zoo == nil {
		panic("core: nil model")
	}
	if _, dup := c.models[name]; dup {
		panic("core: duplicate model " + name)
	}
	mi := &ModelInfo{name: name, zoo: zoo, residentOn: make(map[*GPUMirror]bool), seq: uint64(len(c.models))}
	c.models[name] = mi
	for _, b := range modelzoo.BatchSizes {
		c.profile.Seed(predictor.Key{Op: "exec", Model: name, Batch: b}, zoo.ExecLatency(b))
	}
	c.profile.Seed(predictor.Key{Op: "load", Model: name}, zoo.Transfer())
}

// Model returns the registry entry for name.
func (c *Controller) Model(name string) (*ModelInfo, bool) {
	mi, ok := c.models[name]
	return mi, ok
}

// ModelCount returns the number of registered instances.
func (c *Controller) ModelCount() int { return len(c.models) }

// ActiveModels returns the set of models with queued requests. The
// returned map is live; schedulers must not mutate it.
func (c *Controller) ActiveModels() map[*ModelInfo]bool { return c.activeModels }

// EstimateExec predicts execution latency of (model, batch).
func (c *Controller) EstimateExec(mi *ModelInfo, batch int) time.Duration {
	return c.profile.Estimate(predictor.Key{Op: "exec", Model: mi.name, Batch: batch})
}

// EstimateLoad predicts the weight-transfer duration of model.
func (c *Controller) EstimateLoad(mi *ModelInfo) time.Duration {
	return c.profile.Estimate(predictor.Key{Op: "load", Model: mi.name})
}

// Submit accepts one client request. The cluster layer invokes this when
// the request arrives at the controller over the network.
func (c *Controller) Submit(model string, slo time.Duration, onResponse func(Response)) *Request {
	mi, ok := c.models[model]
	if !ok {
		panic("core: request for unregistered model " + model)
	}
	c.nextRequestID++
	now := c.eng.Now()
	margin := c.cfg.ResponseMargin
	if margin <= 0 {
		margin = time.Millisecond
		if m := slo / 20; m < margin {
			margin = m
		}
	}
	r := &Request{
		ID:          c.nextRequestID,
		Model:       model,
		SLO:         slo,
		Arrival:     now,
		InputBytes:  mi.zoo.InputBytes(),
		OutputBytes: mi.zoo.OutputBytes(),
		OnResponse:  onResponse,
		deadline:    now.Add(slo - margin),
		execEst:     c.EstimateExec(mi, 1),
	}
	r.coldStart = len(mi.residentOn) == 0
	if r.coldStart {
		c.stats.ColdStart++
	}
	c.stats.Requests++

	mi.queue = append(mi.queue, r)
	mi.demand += r.execEst
	if len(mi.queue) == 1 {
		c.activeModels[mi] = true
		for g := range mi.residentOn {
			g.withWork[mi] = true
		}
	}
	c.reindexModel(mi)

	// Cancel in advance at the last instant a batch-1 warm execution
	// could still begin (§4.1: "cancels the request before performing
	// any fruitless work"). Baselines execute late requests instead.
	if !c.cfg.DisableAdmissionControl {
		lastChance := r.deadline.Add(-r.execEst)
		r.cancelTmr = c.eng.At(lastChance, func() { c.cancelRequest(mi, r) })
	}

	c.schd.OnRequest(r)
	return r
}

// cancelRequest fails a still-queued request whose SLO is unmeetable.
func (c *Controller) cancelRequest(mi *ModelInfo, r *Request) {
	if r.state != stateQueued {
		return
	}
	if !mi.removeRequest(r) {
		return
	}
	mi.demand -= r.execEst
	c.noteQueueMaybeEmpty(mi)
	c.reindexModel(mi)
	r.state = stateDone
	c.stats.Cancelled++
	c.respond(r, Response{
		RequestID: r.ID, Model: r.Model, Success: false,
		Reason: "cancelled", ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
	})
	c.schd.OnCancel(r)
}

// timeoutRequest fails an in-flight request whose deadline passed before
// its result arrived (the action was rejected or its result is late).
func (c *Controller) timeoutRequest(r *Request) {
	if r.state != stateInFlight {
		return
	}
	r.state = stateDone
	c.stats.Rejected++
	c.respond(r, Response{
		RequestID: r.ID, Model: r.Model, Success: false,
		Reason: "timeout", ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
	})
}

func (c *Controller) noteQueueMaybeEmpty(mi *ModelInfo) {
	if len(mi.queue) == 0 {
		delete(c.activeModels, mi)
		for g := range mi.residentOn {
			delete(g.withWork, mi)
		}
	}
}

func (c *Controller) respond(r *Request, resp Response) {
	if r.cancelTmr != nil {
		r.cancelTmr.Stop()
		r.cancelTmr = nil
	}
	if r.OnResponse != nil {
		r.OnResponse(resp)
	}
}

// ---- scheduler action emission ----

// SendInfer dispatches a batch of queued requests as one INFER action on
// mirror g. The requests must have been popped from the model's queue by
// the scheduler (PopBatch); the controller handles demand bookkeeping,
// window math, mirror updates, and transport.
func (c *Controller) SendInfer(g *GPUMirror, mi *ModelInfo, batch int, reqs []*Request,
	earliest, latest simclock.Time) *action.Action {
	if len(reqs) == 0 {
		panic("core: SendInfer with no requests")
	}
	est := c.EstimateExec(mi, batch)
	if est <= 0 {
		panic("core: zero exec estimate for " + mi.name)
	}
	var inputs, outputs int64
	for _, r := range reqs {
		r.state = stateInFlight
		mi.demand -= r.execEst
		inputs += r.InputBytes
		outputs += r.OutputBytes
		// Re-arm the request's timer at its deadline: if the action is
		// rejected by the worker (a timing misprediction), the client
		// learns of the failure AT the deadline, never after — the
		// paper's failed requests "timed out at 100ms".
		if r.cancelTmr != nil {
			r.cancelTmr.Stop()
			r.cancelTmr = nil
		}
		if !c.cfg.DisableAdmissionControl {
			req := r
			r.cancelTmr = c.eng.At(r.deadline, func() { c.timeoutRequest(req) })
		}
	}
	if mi.demand < 0 {
		mi.demand = 0
	}
	c.noteQueueMaybeEmpty(mi)

	c.nextActionID++
	completion := simclock.Max(earliest, c.eng.Now()).Add(est)
	a := &action.Action{
		ID:                 c.nextActionID,
		Type:               action.Infer,
		GPU:                g.GPU,
		Model:              mi.name,
		Batch:              batch,
		RequestIDs:         requestIDs(reqs),
		Earliest:           earliest,
		Latest:             latest,
		ExpectedDuration:   est,
		ExpectedCompletion: completion,
		InputBytes:         inputs,
		OutputBytes:        outputs,
	}
	g.ExecFreeAt = completion
	g.inFlightInfers[mi.name]++
	g.Pages.Touch(mi.name)
	c.pendingInfers[a.ID] = reqs
	c.stats.ActionsInfer++
	c.reindexModel(mi)
	if c.testOnInfer != nil {
		c.testOnInfer(a, reqs)
	}
	c.workers[g.WorkerID].submit(a, inputs)
	return a
}

// SendLoad dispatches a LOAD for mi on mirror g, updating the mirror's
// page and loading state. The scheduler must have ensured enough free
// pages (via SendUnload).
func (c *Controller) SendLoad(g *GPUMirror, mi *ModelInfo, earliest, latest simclock.Time) *action.Action {
	pages := mi.zoo.Pages(g.Pages.PageSize())
	if err := g.Pages.Alloc(mi.name, pages); err != nil {
		panic(fmt.Sprintf("core: SendLoad without free pages: %v", err))
	}
	est := c.EstimateLoad(mi)
	if est <= 0 {
		panic("core: zero load estimate for " + mi.name)
	}
	c.nextActionID++
	// The executor frees at transferEnd; the weights are *usable* for
	// INFER window math a network-allowance later, so windows opened at
	// the ETA never race the transfer's completion.
	transferEnd := simclock.Max(earliest, c.eng.Now()).Add(est)
	eta := transferEnd.Add(c.cfg.NetworkAllowance)
	a := &action.Action{
		ID:                 c.nextActionID,
		Type:               action.Load,
		GPU:                g.GPU,
		Model:              mi.name,
		Earliest:           earliest,
		Latest:             latest,
		ExpectedDuration:   est,
		ExpectedCompletion: transferEnd,
	}
	g.loading[mi.name] = eta
	g.LoadFreeAt = transferEnd
	mi.residentOn[g] = true
	if len(mi.queue) > 0 {
		g.withWork[mi] = true
	}
	c.stats.ActionsLoad++
	c.reindexModel(mi)
	c.workers[g.WorkerID].submit(a, 0)
	return a
}

// SendUnload dispatches an UNLOAD for mi on mirror g and updates the
// mirror immediately (UNLOAD always succeeds on the worker, §5.2).
func (c *Controller) SendUnload(g *GPUMirror, mi *ModelInfo) *action.Action {
	if err := g.Pages.Free(mi.name); err != nil {
		panic(fmt.Sprintf("core: SendUnload: %v", err))
	}
	delete(g.loading, mi.name)
	delete(mi.residentOn, g)
	delete(g.withWork, mi)
	c.nextActionID++
	a := &action.Action{
		ID:       c.nextActionID,
		Type:     action.Unload,
		GPU:      g.GPU,
		Model:    mi.name,
		Earliest: c.eng.Now(),
		Latest:   simclock.MaxTime,
	}
	c.stats.ActionsUnload++
	c.reindexModel(mi)
	c.workers[g.WorkerID].submit(a, 0)
	return a
}

func requestIDs(reqs []*Request) []uint64 {
	ids := make([]uint64, len(reqs))
	for i, r := range reqs {
		ids[i] = r.ID
	}
	return ids
}

// HandleResult ingests one worker result. The cluster layer invokes this
// when the result arrives at the controller over the network.
func (c *Controller) HandleResult(res action.Result) {
	g := c.workers[res.WorkerID].gpus[res.GPU]
	switch res.Type {
	case action.Load:
		c.handleLoadResult(g, res)
	case action.Infer:
		c.handleInferResult(g, res)
	case action.Unload:
		// Mirror already updated at send time; a rejection here means
		// the mirror diverged (counted, should not happen).
		if !res.Status.IsSuccess() {
			c.stats.LoadFailures++
		}
	}
	c.schd.OnResult(res)
}

func (c *Controller) handleLoadResult(g *GPUMirror, res action.Result) {
	mi := c.models[res.Model]
	if res.Status.IsSuccess() {
		delete(g.loading, res.Model)
		c.profile.Observe(predictor.Key{Op: "load", Model: res.Model}, res.Duration)
		c.LoadDuration.Record(res.ExpectedDuration, res.Duration)
		c.LoadCompletion.Record(absTimeError(res.ExpectedCompletion, res.End))
		// The model's readiness instant just dropped from the LOAD's
		// padded ETA to "now"; re-key its strategies.
		c.reindexModel(mi)
		return
	}
	// Rejected LOAD: roll the mirror back.
	c.stats.LoadFailures++
	delete(g.loading, res.Model)
	if g.Pages.Has(res.Model) {
		if err := g.Pages.Free(res.Model); err == nil {
			delete(mi.residentOn, g)
			delete(g.withWork, mi)
		}
	}
	c.reindexModel(mi)
}

func (c *Controller) handleInferResult(g *GPUMirror, res action.Result) {
	reqs := c.pendingInfers[res.ActionID]
	delete(c.pendingInfers, res.ActionID)
	mi := c.models[res.Model]
	if n := g.inFlightInfers[res.Model]; n <= 1 {
		delete(g.inFlightInfers, res.Model)
	} else {
		g.inFlightInfers[res.Model] = n - 1
	}
	if res.Status.IsSuccess() {
		c.profile.Observe(predictor.Key{Op: "exec", Model: res.Model, Batch: res.Batch}, res.Duration)
		c.InferDuration.Record(res.ExpectedDuration, res.Duration)
		c.InferCompletion.Record(absTimeError(res.ExpectedCompletion, res.End))
		// The observation may have moved this model's execution
		// estimates, which re-keys its strategies everywhere.
		c.reindexModel(mi)
		for _, r := range reqs {
			if r.state != stateInFlight {
				continue // already timed out at its deadline
			}
			r.state = stateDone
			c.stats.Succeeded++
			c.respond(r, Response{
				RequestID: r.ID, Model: r.Model, Success: true,
				Batch: res.Batch, ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
			})
		}
		return
	}
	// The worker cancelled the action; fail its requests (§4.2: no
	// best-effort remediation). Requests whose deadline already passed
	// were answered by their timeout timer.
	for _, r := range reqs {
		if r.state != stateInFlight {
			continue
		}
		r.state = stateDone
		c.stats.Rejected++
		c.respond(r, Response{
			RequestID: r.ID, Model: r.Model, Success: false,
			Reason: "rejected", ColdStart: r.coldStart, CompletedAt: c.eng.Now(),
		})
	}
	// Deliberately do NOT rewind g.ExecFreeAt for the phantom work: the
	// executor dequeues by earliest timestamp, so pulling the horizon
	// back under already-committed actions would let the scheduler slot
	// new work ahead of them and push them past their own windows — a
	// self-sustaining reject cascade. A slightly conservative horizon
	// merely costs an idle gap that elapses on its own.
}

// absTimeError converts predicted/actual instants into the duration pair
// the error trackers expect.
func absTimeError(predicted, actual simclock.Time) (time.Duration, time.Duration) {
	// Express both as durations from a common origin so Record sees the
	// signed difference.
	return time.Duration(predicted), time.Duration(actual)
}
