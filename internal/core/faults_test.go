package core

import (
	"testing"
	"time"

	"clockwork/internal/gpu"
	"clockwork/internal/modelzoo"
)

// These tests exercise C3 (§4.3): external factors the controller cannot
// predict. The system's contract is: affected actions fail fast, workers
// get straight back on schedule, and successful responses never violate
// their SLOs.

func TestDisturbanceDoesNotViolateSLOs(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	const slo = 30 * time.Millisecond
	violations, failures, successes := 0, 0, 0
	var loop func(i int)
	loop = func(i int) {
		if i >= 400 {
			return
		}
		cl.Submit("m", slo, func(r Response, l time.Duration) {
			switch {
			case r.Success && l > slo:
				violations++
			case r.Success:
				successes++
			default:
				failures++
			}
		})
		// Every 50th request, hit the GPU with a 20ms external stall
		// (thermal event) right before the work lands.
		if i%50 == 0 {
			cl.InjectDisturbance(0, 0, 20*time.Millisecond)
		}
		cl.Eng.After(4*time.Millisecond, func() { loop(i + 1) })
	}
	loop(0)
	cl.RunFor(3 * time.Second)

	if successes == 0 {
		t.Fatal("nothing succeeded")
	}
	if violations != 0 {
		t.Fatalf("%d successful responses violated their SLO despite disturbances", violations)
	}
	// The disturbances must actually have caused some fallout —
	// otherwise this test is vacuous.
	if failures == 0 {
		t.Fatal("disturbances caused no failures; injection broken?")
	}
	// But the blast radius must be bounded: at 250 r/s (ρ≈0.4) each
	// 20ms stall drains in ~35ms, touching ~10 requests; 8 stalls must
	// not take down half the run.
	if failures > 150 {
		t.Fatalf("%d failures — disturbance cascaded", failures)
	}
}

func TestRecoveryAfterDisturbanceBurst(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	// Warm up.
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond)

	// A big one-shot stall while traffic flows.
	cl.InjectDisturbance(0, 0, 50*time.Millisecond)

	okAfter := 0
	var loop func(i int)
	loop = func(i int) {
		if i >= 100 {
			return
		}
		cl.Submit("m", 50*time.Millisecond, func(r Response, l time.Duration) {
			// Count successes in the tail half, after recovery.
			if r.Success && i >= 50 {
				okAfter++
			}
		})
		cl.Eng.After(3*time.Millisecond, func() { loop(i + 1) })
	}
	loop(0)
	cl.RunFor(2 * time.Second)

	if okAfter < 40 {
		t.Fatalf("only %d/50 post-recovery successes — worker did not get back on schedule", okAfter)
	}
}

func TestNoisyHardwareStillMeetsSLOs(t *testing.T) {
	// With the calibrated noise model (not NoNoise), rolling p99-style
	// profiles must keep successful responses within SLO.
	cl := NewCluster(ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		Noise: gpu.DefaultNoise,
		Seed:  3,
	})
	cl.RegisterModel("m", modelzoo.ResNet50())
	const slo = 25 * time.Millisecond
	violations, ok := 0, 0
	var loop func(i int)
	loop = func(i int) {
		if i >= 2000 {
			return
		}
		cl.Submit("m", slo, func(r Response, l time.Duration) {
			if r.Success {
				ok++
				if l > slo {
					violations++
				}
			}
		})
		cl.Eng.After(2500*time.Microsecond, func() { loop(i + 1) })
	}
	loop(0)
	cl.RunFor(8 * time.Second)

	if ok < 1900 {
		t.Fatalf("only %d/2000 succeeded under noise", ok)
	}
	if violations != 0 {
		t.Fatalf("%d successes violated the SLO under noise", violations)
	}
}

func TestJitteredNetworkKeepsServing(t *testing.T) {
	cl := NewCluster(ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		NoNoise:    true,
		Seed:       5,
		NetLatency: 200 * time.Microsecond,
	})
	cl.RegisterModel("m", modelzoo.ResNet50())
	ok := 0
	for i := 0; i < 50; i++ {
		cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				ok++
			}
		})
		cl.RunFor(10 * time.Millisecond)
	}
	cl.RunFor(time.Second)
	if ok != 50 {
		t.Fatalf("served %d/50 with 200µs links", ok)
	}
}
