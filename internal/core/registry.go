package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PolicySpec describes one pluggable serving policy: a scheduler
// factory plus the cluster-level switches the policy requires. The
// paper's system and its two baselines differ in exactly these three
// dimensions (§6.1): who decides, whether admission control runs, and
// whether workers execute best-effort.
type PolicySpec struct {
	// New returns a fresh scheduler instance. Factories must not share
	// state between instances; every cluster gets its own scheduler.
	New func() Scheduler
	// DisableAdmissionControl turns off cancel-in-advance for clusters
	// running this policy (baselines treat the SLO as a soft goal).
	DisableAdmissionControl bool
	// WorkerBestEffort switches workers into the baseline thread-pool
	// execution mode (concurrent EXECs, Fig 2b's latency variability).
	WorkerBestEffort bool
	// Description is a one-line summary for listings.
	Description string
}

// The policy registry. Policies self-register from init functions
// (internal/baseline registers "clipper" and "infaas"); external
// schedulers plug in through the public clockwork.RegisterPolicy
// wrapper without touching New.
var (
	policyMu sync.RWMutex
	policies = make(map[string]PolicySpec)
)

// RegisterPolicy adds a named policy to the registry. Names are
// case-sensitive and must be unique; the factory must be non-nil.
func RegisterPolicy(name string, spec PolicySpec) error {
	if name == "" {
		return fmt.Errorf("%w: empty policy name", ErrInvalidRequest)
	}
	if spec.New == nil {
		return fmt.Errorf("%w: policy %q has a nil factory", ErrInvalidRequest, name)
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policies[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicatePolicy, name)
	}
	policies[name] = spec
	return nil
}

// MustRegisterPolicy is RegisterPolicy for init-time use; it panics on
// error (a duplicate registration at init time is a programming bug).
func MustRegisterPolicy(name string, spec PolicySpec) {
	if err := RegisterPolicy(name, spec); err != nil {
		panic("core: " + err.Error())
	}
}

// LookupPolicy returns the registered spec for name.
func LookupPolicy(name string) (PolicySpec, bool) {
	policyMu.RLock()
	defer policyMu.RUnlock()
	spec, ok := policies[name]
	return spec, ok
}

// Policies returns the registered policy names, sorted.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policies))
	for name := range policies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultPolicy is the policy an empty name resolves to.
const DefaultPolicy = "clockwork"

// ResolvePolicy maps a policy name ("" = DefaultPolicy) to its spec,
// with a descriptive error listing the alternatives on a miss.
func ResolvePolicy(name string) (PolicySpec, error) {
	if name == "" {
		name = DefaultPolicy
	}
	spec, ok := LookupPolicy(name)
	if !ok {
		return PolicySpec{}, fmt.Errorf("%w: %q (registered policies: %s)",
			ErrUnknownPolicy, name, strings.Join(Policies(), ", "))
	}
	return spec, nil
}

// NewClusterWithPolicy builds a cluster running the named policy: the
// registry supplies the scheduler factory (one instance per shard) and
// flips the policy's cluster-level switches on cfg. An empty name
// selects the paper's scheduler.
func NewClusterWithPolicy(policy string, cfg ClusterConfig) (*Cluster, error) {
	spec, err := ResolvePolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg.Scheduler = nil
	cfg.NewScheduler = spec.New
	if spec.DisableAdmissionControl {
		cfg.Controller.DisableAdmissionControl = true
	}
	if spec.WorkerBestEffort {
		cfg.WorkerBestEffort = true
	}
	if err := cfg.withDefaults().validateShards(); err != nil {
		return nil, err
	}
	return NewCluster(cfg), nil
}

func init() {
	MustRegisterPolicy(DefaultPolicy, PolicySpec{
		New:         func() Scheduler { return NewClockworkScheduler() },
		Description: "the paper's scheduler (§5.3, Appendix B): deadline-aware batching, demand-priority loads, admission control",
	})
	MustRegisterPolicy("clockwork-oldest-load", PolicySpec{
		New: func() Scheduler {
			s := NewClockworkScheduler()
			s.LoadSelection = LoadOldestFirst
			return s
		},
		Description: "ablation: Clockwork with naive oldest-deadline-first LOAD selection instead of Appendix B priorities",
	})
}
