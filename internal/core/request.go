// Package core implements Clockwork's central controller (§4.5, §5.3)
// and its scheduler (Appendix B). All performance-relevant choices —
// admission, batching, placement, cache management — are made here;
// workers execute exactly what they are told.
package core

import (
	"fmt"
	"time"

	"clockwork/internal/simclock"
)

// Request is one client inference request as the controller sees it.
type Request struct {
	ID      uint64
	Model   string
	SLO     time.Duration
	Arrival simclock.Time // at the controller

	InputBytes  int64
	OutputBytes int64

	// OnResponse is invoked exactly once with the outcome. The cluster
	// layer wires it back over the client's network link.
	OnResponse func(Response)

	// ---- scheduler-internal state ----
	state     requestState
	deadline  simclock.Time
	coldStart bool
	execEst   time.Duration // batch-1 estimate at arrival (demand accounting)
	cancelTmr *simclock.Timer
}

// Deadline returns the instant the response stops being useful.
func (r *Request) Deadline() simclock.Time { return r.deadline }

type requestState uint8

const (
	stateQueued requestState = iota
	stateInFlight
	stateDone
)

// Response is the terminal outcome of a request.
type Response struct {
	RequestID uint64
	Model     string
	Success   bool
	// Reason is empty on success; otherwise one of "cancelled" (the
	// controller determined the SLO could not be met and rejected the
	// request in advance), "rejected" (a worker cancelled the action),
	// or "timeout".
	Reason string
	// Batch is the batch size the request executed in (success only).
	Batch int
	// ColdStart reports whether the model was not GPU-resident anywhere
	// when the request arrived.
	ColdStart bool
	// CompletedAt is the controller-side completion instant.
	CompletedAt simclock.Time
}

// String implements fmt.Stringer.
func (r Response) String() string {
	if r.Success {
		return fmt.Sprintf("response{#%d %s ok b%d}", r.RequestID, r.Model, r.Batch)
	}
	return fmt.Sprintf("response{#%d %s failed:%s}", r.RequestID, r.Model, r.Reason)
}
