package core

import (
	"fmt"
	"time"

	"clockwork/internal/simclock"
	"clockwork/trace"
)

// Reason classifies why a request did not succeed. It replaces the
// magic strings the first API shipped with ("cancelled"/"rejected"/
// "timeout"); String() still renders those exact words so trace logs
// and printed output stay stable.
type Reason uint8

// Failure reasons, in escalating order of how late the failure surfaced.
const (
	// ReasonNone means the request succeeded.
	ReasonNone Reason = iota
	// ReasonCancelled: the controller determined in advance that the SLO
	// could not be met (admission control, §4.1), or the client cancelled
	// the request while it was still queued.
	ReasonCancelled
	// ReasonRejected: a worker could not honour the action's timing
	// window (a misprediction) and cancelled it.
	ReasonRejected
	// ReasonTimeout: the request's deadline passed while its action was
	// in flight; the client learns of the failure at the deadline.
	ReasonTimeout
	// ReasonWorkerFailed: the worker executing the request was failed via
	// the control plane; its in-flight work is lost.
	ReasonWorkerFailed
	// ReasonUnregistered: the target model was not registered (or was
	// unregistered while the request was in transit or queued).
	ReasonUnregistered
)

// The flight recorder mirrors the Reason codes so clockwork/trace
// stays importable without the engine; these constant pairs fail to
// compile (unsigned-constant overflow) if the enums ever diverge.
const (
	_ = uint8(ReasonNone) - trace.ReasonNone
	_ = trace.ReasonNone - uint8(ReasonNone)
	_ = uint8(ReasonCancelled) - trace.ReasonCancelled
	_ = trace.ReasonCancelled - uint8(ReasonCancelled)
	_ = uint8(ReasonRejected) - trace.ReasonRejected
	_ = trace.ReasonRejected - uint8(ReasonRejected)
	_ = uint8(ReasonTimeout) - trace.ReasonTimeout
	_ = trace.ReasonTimeout - uint8(ReasonTimeout)
	_ = uint8(ReasonWorkerFailed) - trace.ReasonWorkerFailed
	_ = trace.ReasonWorkerFailed - uint8(ReasonWorkerFailed)
	_ = uint8(ReasonUnregistered) - trace.ReasonUnregistered
	_ = trace.ReasonUnregistered - uint8(ReasonUnregistered)
)

// String implements fmt.Stringer. ReasonNone renders as the empty
// string, matching the old convention of "Reason is empty on success".
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return ""
	case ReasonCancelled:
		return "cancelled"
	case ReasonRejected:
		return "rejected"
	case ReasonTimeout:
		return "timeout"
	case ReasonWorkerFailed:
		return "worker-failed"
	case ReasonUnregistered:
		return "unregistered"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// SubmitSpec carries everything a caller may say about one inference
// request. Model and SLO are required; the rest default to zero values
// that reproduce the original Submit(model, slo) behaviour exactly.
type SubmitSpec struct {
	// Model is the registered instance name the request targets.
	Model string
	// SLO is the end-to-end latency objective; the controller derives
	// the request's internal deadline from it.
	SLO time.Duration
	// Priority orders requests within a model's queue: higher-priority
	// requests are served before lower-priority ones, FIFO within a
	// priority level. The default 0 preserves pure FIFO.
	Priority int
	// Tenant labels the request for per-tenant accounting. Optional.
	Tenant string
	// MaxBatch, if > 0, caps the batch size this request may execute
	// in (e.g. 1 forces solo execution for latency experiments).
	MaxBatch int

	// preCancelled marks a request the client cancelled while it was
	// still in transit to the controller: it is accounted and answered
	// (ReasonCancelled) on arrival, before the scheduler ever sees it.
	// Set by the cluster layer via Handle.Cancel.
	preCancelled bool
}

// Request is one client inference request as the controller sees it.
type Request struct {
	ID      uint64
	Model   string
	SLO     time.Duration
	Arrival simclock.Time // at the controller

	// Priority, Tenant and MaxBatch mirror the SubmitSpec fields.
	Priority int
	Tenant   string
	MaxBatch int

	InputBytes  int64
	OutputBytes int64

	// OnResponse is invoked exactly once with the outcome. The cluster
	// layer wires it back over the client's network link. responder is
	// the allocation-free alternative: a preallocated receiver checked
	// first (see Responder).
	OnResponse func(Response)
	responder  Responder

	// ---- scheduler-internal state ----
	state     requestState
	deadline  simclock.Time
	coldStart bool
	execEst   time.Duration // batch-1 estimate at arrival (demand accounting)
	// ctl is the controller currently owning the request (retargeted on
	// migration); cancelTmr is the armed admission/deadline timer. Both
	// serve Run below.
	ctl       *Controller
	cancelTmr simclock.Timer
	// gen guards recycling (mirroring simclock.Timer's generation
	// guard): releaseRequest bumps it, so a stale external reference —
	// a client Handle that outlived its request — can prove staleness
	// with CancelRequestGen instead of acting on the recycled successor.
	gen uint64
}

// Responder receives a request's terminal outcome — the closure-free
// alternative to OnResponse. A pooled per-submission struct implements
// it, so the response path carries no per-request func value.
type Responder interface {
	Respond(Response)
}

// Gen returns the request's recycling generation. Capture it alongside
// the pointer when retaining a request past the submitting call; pass
// both to CancelRequestGen.
func (r *Request) Gen() uint64 { return r.gen }

// Run implements simclock.Runner: the request doubles as its own timer
// event. While queued the armed timer is the §4.1 admission cancel
// (fired at the last instant a batch-1 warm execution could still meet
// the deadline); once in flight it is the deadline timeout. Dispatching
// on state here lets both timers share one preallocated receiver — the
// request itself — so the per-request hot path arms timers without
// allocating a closure per arm.
func (r *Request) Run() {
	c := r.ctl
	if c == nil {
		return
	}
	switch r.state {
	case stateQueued:
		if mi, ok := c.models[r.Model]; ok {
			c.cancelRequest(mi, r)
			if r.state == stateDone {
				// The timer was the last engine-side reference; client
				// handles hold a generation and survive the recycle.
				c.releaseRequest(r)
			}
		}
	case stateInFlight:
		// Answered at the deadline, but the in-flight action still lists
		// this request in pendingInfers — its result (or FailWorker)
		// recycles it.
		c.timeoutRequest(r)
	}
}

// Deadline returns the instant the response stops being useful.
func (r *Request) Deadline() simclock.Time { return r.deadline }

type requestState uint8

// stateFree is deliberately the zero value: a recycled Request in the
// free list (or a freshly zeroed one) matches no lifecycle check, so a
// stale CancelRequest on a recycled object is a structural no-op.
const (
	stateFree requestState = iota
	stateQueued
	stateInFlight
	stateDone
)

// Response is the terminal outcome of a request.
type Response struct {
	RequestID uint64
	Model     string
	Tenant    string
	Success   bool
	// Reason is ReasonNone on success; see the Reason constants for the
	// failure taxonomy.
	Reason Reason
	// Batch is the batch size the request executed in (success only).
	Batch int
	// ColdStart reports whether the model was not GPU-resident anywhere
	// when the request arrived.
	ColdStart bool
	// CompletedAt is the controller-side completion instant.
	CompletedAt simclock.Time
}

// String implements fmt.Stringer.
func (r Response) String() string {
	if r.Success {
		return fmt.Sprintf("response{#%d %s ok b%d}", r.RequestID, r.Model, r.Batch)
	}
	return fmt.Sprintf("response{#%d %s failed:%s}", r.RequestID, r.Model, r.Reason)
}
