package core

import (
	"fmt"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/memory"
	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// GPUMirror is the controller's model of one worker GPU (§5.3 "managing
// worker state"): which models hold pages, which are mid-LOAD and when
// they land, and when each executor will next be free. Actions have
// deterministic latency by design, so this mirror stays accurate without
// per-action acknowledgements.
type GPUMirror struct {
	WorkerID int
	GPU      int

	// Pages mirrors the worker's PageCache (same deterministic type).
	Pages *memory.PageCache

	// loading maps model → predicted LOAD completion instant.
	loading map[string]simclock.Time

	// ExecFreeAt and LoadFreeAt are the predicted instants the INFER and
	// LOAD executors drain their submitted work.
	ExecFreeAt simclock.Time
	LoadFreeAt simclock.Time

	// inFlightInfers counts submitted-but-unresolved INFER actions per
	// model, so eviction never targets a model that is about to execute.
	inFlightInfers map[string]int

	// withWork indexes the models resident (or loading) on this GPU
	// that currently have queued requests — the scheduler's candidate
	// set for the next INFER.
	withWork map[*ModelInfo]bool

	// stratQ is the strategy heap for this GPU: one lazily re-keyed
	// entry per model with work, ordered by required start time (see
	// index.go). Maintained by Controller.reindexModel.
	stratQ stratHeap

	// allocDemand is ℓ_g, the incrementally maintained sum of active
	// models' per-replica demand shares on this GPU (Appendix B).
	allocDemand time.Duration

	// disabled marks the GPU unschedulable: its worker is draining or
	// failed (control plane). Schedulers must skip disabled mirrors.
	disabled bool
}

func newGPUMirror(workerID, gpu int, pageCacheBytes, pageSize int64) *GPUMirror {
	return &GPUMirror{
		WorkerID:       workerID,
		GPU:            gpu,
		Pages:          memory.NewPageCache(pageCacheBytes, pageSize),
		loading:        make(map[string]simclock.Time),
		inFlightInfers: make(map[string]int),
		withWork:       make(map[*ModelInfo]bool),
	}
}

// Resident reports whether the controller believes model's weights are
// (or will momentarily be) on this GPU, and when they become usable
// (MinTime when already usable).
func (g *GPUMirror) Resident(model string) (readyAt simclock.Time, ok bool) {
	if eta, loading := g.loading[model]; loading {
		return eta, true
	}
	if g.Pages.Has(model) {
		return simclock.MinTime, true
	}
	return 0, false
}

// Disabled reports whether this GPU's worker was drained or failed;
// disabled mirrors must not receive new actions.
func (g *GPUMirror) Disabled() bool { return g.disabled }

// IsLoading reports whether a LOAD for model is in flight.
func (g *GPUMirror) IsLoading(model string) bool {
	_, ok := g.loading[model]
	return ok
}

// InFlight returns the number of unresolved INFER actions for model.
func (g *GPUMirror) InFlight(model string) int { return g.inFlightInfers[model] }

// ModelsWithWork returns the live candidate set of models on this GPU
// with queued requests. Callers must not mutate it.
func (g *GPUMirror) ModelsWithWork() map[*ModelInfo]bool { return g.withWork }

// OutstandingExecWork returns predicted time until the INFER executor
// drains, from instant now.
func (g *GPUMirror) OutstandingExecWork(now simclock.Time) time.Duration {
	if g.ExecFreeAt <= now {
		return 0
	}
	return g.ExecFreeAt.Sub(now)
}

// OutstandingLoadWork returns predicted time until the LOAD executor
// drains, from instant now.
func (g *GPUMirror) OutstandingLoadWork(now simclock.Time) time.Duration {
	if g.LoadFreeAt <= now {
		return 0
	}
	return g.LoadFreeAt.Sub(now)
}

// String implements fmt.Stringer.
func (g *GPUMirror) String() string {
	return fmt.Sprintf("mirror{w%d.g%d %v loading=%d}", g.WorkerID, g.GPU, g.Pages, len(g.loading))
}

// workerHandle couples a worker's mirrors with its transport hook.
type workerHandle struct {
	id   int
	gpus []*GPUMirror
	// draining: no new actions, in-flight work completes normally.
	// failed: no new actions AND late results are dropped.
	draining bool
	failed   bool
	// submit delivers an action to the worker over the simulated
	// network, carrying payloadBytes of data (inference inputs are
	// routed through the controller, §7); installed by the cluster
	// layer.
	submit func(a *action.Action, payloadBytes int64)
}

// ModelInfo is the controller-side registry entry for one model
// instance: its zoo profile, queued requests, and Appendix B demand
// accounting. Schedulers read it through the exported accessors; only
// the controller mutates it.
type ModelInfo struct {
	name string
	zoo  *modelzoo.Model
	// owner is the controller this entry is registered with (rebound on
	// migration adoption); PopBatch draws batch slices from its pool.
	owner *Controller

	// queue holds queued requests ordered by (priority desc, arrival):
	// with the default priority 0 everywhere this is plain FIFO
	// (deadline order for same-SLO clients).
	queue []*Request

	// capped counts queued requests carrying a positive MaxBatch, so
	// the batch-cap check is free on the (common) uncapped path.
	capped int

	// demand is Appendix B's d_m: summed batch-1 execution estimates of
	// queued requests.
	demand time.Duration

	// residentOn tracks which GPU mirrors hold (or are loading) this
	// model.
	residentOn map[*GPUMirror]bool

	// ---- index bookkeeping (see index.go) ----

	// seq is the registration order, used as the deterministic
	// tie-break in every index.
	seq uint64
	// stamp is bumped by Controller.reindexModel on every event that
	// can change this model's strategies; strategy-heap entries carry
	// the stamp they were pushed with and are stale when it differs.
	stamp uint64
	// loadShare and sharedOn record the demand-share contribution this
	// model currently makes to each GPU's allocDemand, so reindexModel
	// can retract it exactly before applying the new share.
	loadShare time.Duration
	sharedOn  []*GPUMirror
	// demandNode/deadlineNode are this model's handles in the
	// controller's ordered indexes.
	demandNode   *treapNode
	deadlineNode *treapNode
}

// Name returns the model instance name.
func (mi *ModelInfo) Name() string { return mi.name }

// Zoo returns the underlying catalogue model.
func (mi *ModelInfo) Zoo() *modelzoo.Model { return mi.zoo }

// QueuedCount returns the number of queued requests.
func (mi *ModelInfo) QueuedCount() int { return len(mi.queue) }

// Demand returns Appendix B's d_m.
func (mi *ModelInfo) Demand() time.Duration { return mi.demand }

// ResidentOn returns the live set of mirrors holding this model.
// Callers must not mutate it.
func (mi *ModelInfo) ResidentOn() map[*GPUMirror]bool { return mi.residentOn }

// PeekOldest returns the oldest queued request without removing it, or
// nil when the queue is empty.
func (mi *ModelInfo) PeekOldest() *Request {
	if len(mi.queue) == 0 {
		return nil
	}
	return mi.queue[0]
}

// MinDeadline returns the earliest deadline among queued requests
// (MaxTime when empty).
func (mi *ModelInfo) MinDeadline() simclock.Time {
	if len(mi.queue) == 0 {
		return simclock.MaxTime
	}
	min := mi.queue[0].deadline
	for _, r := range mi.queue[1:] {
		if r.deadline < min {
			min = r.deadline
		}
	}
	return min
}

// MaxDeadline returns the latest deadline among queued requests
// (MinTime when empty).
func (mi *ModelInfo) MaxDeadline() simclock.Time {
	if len(mi.queue) == 0 {
		return simclock.MinTime
	}
	max := mi.queue[0].deadline
	for _, r := range mi.queue[1:] {
		if r.deadline > max {
			max = r.deadline
		}
	}
	return max
}

// MinDeadlineOfOldest returns the earliest deadline among the n oldest
// queued requests — the deadline a batch of size n must meet.
func (mi *ModelInfo) MinDeadlineOfOldest(n int) simclock.Time {
	if n > len(mi.queue) {
		n = len(mi.queue)
	}
	if n == 0 {
		return simclock.MaxTime
	}
	min := mi.queue[0].deadline
	for _, r := range mi.queue[1:n] {
		if r.deadline < min {
			min = r.deadline
		}
	}
	return min
}

// enqueue inserts r into the queue: before any queued request of
// strictly lower priority, after everything of equal or higher priority
// (stable FIFO within a level). With the default priority 0 everywhere
// the scan terminates immediately and this is a plain append.
func (mi *ModelInfo) enqueue(r *Request) {
	if r.MaxBatch > 0 {
		mi.capped++
	}
	i := len(mi.queue)
	for i > 0 && mi.queue[i-1].Priority < r.Priority {
		i--
	}
	if i == len(mi.queue) {
		mi.queue = append(mi.queue, r)
		return
	}
	mi.queue = append(mi.queue, nil)
	copy(mi.queue[i+1:], mi.queue[i:])
	mi.queue[i] = r
}

// CapBatch returns the largest batch size ≤ n that respects the
// MaxBatch caps of the requests that would form it (the oldest
// CapBatch(n) queued requests). With no capped requests queued it
// returns n unchanged at zero cost.
func (mi *ModelInfo) CapBatch(n int) int {
	if mi.capped == 0 {
		return n
	}
	if n > len(mi.queue) {
		n = len(mi.queue)
	}
	for n > 1 {
		min := n
		for _, r := range mi.queue[:n] {
			if r.MaxBatch > 0 && r.MaxBatch < min {
				min = r.MaxBatch
			}
		}
		if min >= n {
			return n
		}
		n = min // a smaller batch has a (possibly smaller) cap; re-check
	}
	return n
}

// PopBatch removes and returns up to n queued requests in queue order.
// Schedulers call this immediately before SendInfer. The returned slice
// is pool-backed: it is reclaimed (with its requests) when the batch's
// action resolves, so callers must not retain it past SendInfer.
func (mi *ModelInfo) PopBatch(n int) []*Request {
	if n > len(mi.queue) {
		n = len(mi.queue)
	}
	var out []*Request
	if mi.owner != nil {
		out = mi.owner.acquireBatch(n)
	} else {
		out = make([]*Request, n) // standalone ModelInfo (tests)
	}
	copy(out, mi.queue[:n])
	for _, r := range out {
		if r.MaxBatch > 0 {
			mi.capped--
		}
	}
	remaining := len(mi.queue) - n
	copy(mi.queue, mi.queue[n:])
	for i := remaining; i < len(mi.queue); i++ {
		mi.queue[i] = nil
	}
	mi.queue = mi.queue[:remaining]
	return out
}

// removeRequest deletes r from the queue (used on cancellation).
func (mi *ModelInfo) removeRequest(r *Request) bool {
	for i, q := range mi.queue {
		if q == r {
			if r.MaxBatch > 0 {
				mi.capped--
			}
			copy(mi.queue[i:], mi.queue[i+1:])
			mi.queue[len(mi.queue)-1] = nil
			mi.queue = mi.queue[:len(mi.queue)-1]
			return true
		}
	}
	return false
}
