package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// randomWorkload drives a cluster with a randomized open-loop workload:
// nModels models with Zipf-skewed popularity, exponential inter-arrival
// gaps, and SLOs drawn from a small menu, for the given span.
func randomWorkload(cl *Cluster, seed uint64, nModels int, rate float64, span time.Duration) {
	names, _ := cl.RegisterCopies("m", modelzoo.ResNet50(), nModels)
	stream := rng.NewSource(seed).Stream("index-test")
	zipf := stream.Zipf(1.2, len(names))
	slos := []time.Duration{
		15 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond,
	}
	stop := simclock.Time(span)
	var arrival func()
	arrival = func() {
		gap := time.Duration(stream.Exp(1.0/rate) * float64(time.Second))
		cl.Eng.After(gap, func() {
			if cl.Eng.Now() >= stop {
				return
			}
			cl.Submit(names[zipf.Draw()], slos[stream.Intn(len(slos))], nil)
			arrival()
		})
	}
	arrival()
}

// TestSchedulerNeverDispatchesLateInfer asserts the paper's core
// guarantee at the moment of decision: the Clockwork scheduler never
// dispatches an INFER whose estimated completion misses the deadline of
// any request in the batch (§4.1 — workers do no fruitless work).
func TestSchedulerNeverDispatchesLateInfer(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			cl := NewCluster(ClusterConfig{
				Workers: 1, GPUsPerWorker: 2, Seed: seed,
				// Small cache forces load/unload churn under deadline
				// pressure, the hardest regime for the invariant.
				PageCacheBytes: 12 * 7 * 16 * 1024 * 1024,
			})
			dispatched := 0
			cl.Ctl.testOnInfer = func(a *action.Action, reqs []*Request) {
				dispatched++
				for _, r := range reqs {
					if a.ExpectedCompletion > r.deadline {
						t.Fatalf("INFER %d (%s b%d) predicted to complete at %v, after request %d's deadline %v",
							a.ID, a.Model, a.Batch, a.ExpectedCompletion, r.ID, r.deadline)
					}
				}
			}
			randomWorkload(cl, seed, 24, 800, 3*time.Second)
			cl.RunFor(4 * time.Second)
			if dispatched == 0 {
				t.Fatal("workload dispatched no INFERs; invariant never exercised")
			}
		})
	}
}

// TestIndexedSelectionMatchesLinear replays randomized workloads and, at
// every engine step, compares the index-based strategy/load/victim
// selection against the seed's linear scans on identical state. Key
// equality (required start, priority) is asserted rather than pointer
// identity because the linear scans break exact ties by Go map order.
func TestIndexedSelectionMatchesLinear(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			s := NewClockworkScheduler()
			cl := NewCluster(ClusterConfig{
				Workers: 1, GPUsPerWorker: 2, Seed: seed, Scheduler: s,
				PageCacheBytes: 10 * 7 * 16 * 1024 * 1024,
			})
			randomWorkload(cl, seed, 16, 600, 2*time.Second)
			stop := simclock.Time(3 * time.Second)
			steps, compared := 0, 0
			for cl.Eng.Now() < stop && cl.Eng.Step() {
				steps++
				if steps%7 != 0 {
					continue
				}
				compared++
				now := cl.Eng.Now()
				for _, g := range cl.Ctl.GPUs() {
					compareSelections(t, cl, s, g, now)
				}
			}
			if compared == 0 {
				t.Fatal("no comparison points")
			}
		})
	}
}

func compareSelections(t *testing.T, cl *Cluster, s *ClockworkScheduler, g *GPUMirror, now simclock.Time) {
	t.Helper()

	// Strategy selection: identical required start; identical batch and
	// earliest when the same model wins.
	mi1, b1, e1, rs1 := s.bestStrategy(g, now)
	mi2, b2, e2, rs2 := s.bestStrategyLinear(g, now)
	if (mi1 == nil) != (mi2 == nil) {
		t.Fatalf("t=%v: indexed strategy %v vs linear %v", now, name(mi1), name(mi2))
	}
	if mi1 != nil {
		if rs1 != rs2 {
			t.Fatalf("t=%v: required start %v (indexed %s) vs %v (linear %s)", now, rs1, name(mi1), rs2, name(mi2))
		}
		if mi1 == mi2 && (b1 != b2 || e1 != e2) {
			t.Fatalf("t=%v: same model %s but batch/earliest diverge: (%d,%v) vs (%d,%v)",
				now, name(mi1), b1, e1, b2, e2)
		}
	}

	// Load selection: identical priority under the exact linear
	// computation (also cross-checks ℓ_g maintenance below).
	l1 := s.bestLoad(g, now)
	l2 := s.bestLoadLinear(g, now)
	if (l1 == nil) != (l2 == nil) {
		t.Fatalf("t=%v: indexed load %v vs linear %v", now, name(l1), name(l2))
	}
	if l1 != nil {
		cfg := cl.Ctl.Config()
		p1 := s.loadPriority(cfg, l1)
		p2 := s.loadPriority(cfg, l2)
		if p1 != p2 {
			t.Fatalf("t=%v: load priority %v (%s) vs %v (%s)", now, p1, name(l1), p2, name(l2))
		}
	}

	// Incremental ℓ_g must equal a from-scratch rebuild.
	rebuilt := make(map[*GPUMirror]time.Duration)
	for mi := range cl.Ctl.ActiveModels() {
		n := len(mi.residentOn)
		if n == 0 || mi.demand <= 0 {
			continue
		}
		share := mi.demand / time.Duration(n)
		for g2 := range mi.residentOn {
			rebuilt[g2] += share
		}
	}
	for _, g2 := range cl.Ctl.GPUs() {
		if g2.allocDemand != rebuilt[g2] {
			t.Fatalf("t=%v: allocDemand[w%d.g%d] = %v, rebuild = %v",
				now, g2.WorkerID, g2.GPU, g2.allocDemand, rebuilt[g2])
		}
	}

	// Victim selection is fully deterministic (LRU order): identical.
	v1 := s.nextVictim(g)
	v2 := s.nextVictimLinear(g)
	if v1 != v2 {
		t.Fatalf("t=%v: victim %v vs %v", now, name(v1), name(v2))
	}
}

func name(mi *ModelInfo) string {
	if mi == nil {
		return "<none>"
	}
	return mi.name
}

// TestOldestFirstIndexMatchesLinear covers the ablation load policy's
// deadline index.
func TestOldestFirstIndexMatchesLinear(t *testing.T) {
	s := NewClockworkScheduler()
	s.LoadSelection = LoadOldestFirst
	cl := NewCluster(ClusterConfig{
		Workers: 1, GPUsPerWorker: 1, Seed: 11, Scheduler: s,
		PageCacheBytes: 6 * 7 * 16 * 1024 * 1024,
	})
	randomWorkload(cl, 11, 16, 500, 2*time.Second)
	stop := simclock.Time(3 * time.Second)
	steps := 0
	for cl.Eng.Now() < stop && cl.Eng.Step() {
		steps++
		if steps%11 != 0 {
			continue
		}
		now := cl.Eng.Now()
		for _, g := range cl.Ctl.GPUs() {
			o1 := s.bestLoadOldest(g, now)
			o2 := s.bestLoadOldestLinear(g, now)
			if (o1 == nil) != (o2 == nil) {
				t.Fatalf("t=%v: indexed oldest %v vs linear %v", now, name(o1), name(o2))
			}
			if o1 != nil && o1.MinDeadline() != o2.MinDeadline() {
				t.Fatalf("t=%v: oldest deadline %v (%s) vs %v (%s)",
					now, o1.MinDeadline(), name(o1), o2.MinDeadline(), name(o2))
			}
		}
	}
}

// TestModelTreapOrdering exercises the treap directly under random
// insert/re-key/remove churn against a sorted reference.
func TestModelTreapOrdering(t *testing.T) {
	for _, desc := range []bool{true, false} {
		tr := &modelTreap{desc: desc}
		stream := rng.NewStream(99)
		models := make([]*ModelInfo, 64)
		keys := make(map[*ModelInfo]int64)
		for i := range models {
			models[i] = &ModelInfo{name: fmt.Sprintf("m%d", i), seq: uint64(i)}
		}
		slot := func(mi *ModelInfo) **treapNode { return &mi.demandNode }
		for op := 0; op < 5000; op++ {
			mi := models[stream.Intn(len(models))]
			switch stream.Intn(3) {
			case 0, 1: // insert or re-key
				k := int64(stream.Intn(40)) // narrow range to force ties
				tr.update(mi, slot(mi), k)
				keys[mi] = k
			case 2:
				tr.remove(slot(mi))
				delete(keys, mi)
			}
		}
		if tr.Len() != len(keys) {
			t.Fatalf("treap size %d, want %d", tr.Len(), len(keys))
		}
		type kv struct {
			mi  *ModelInfo
			key int64
		}
		want := make([]kv, 0, len(keys))
		for mi, k := range keys {
			want = append(want, kv{mi, k})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				if desc {
					return want[i].key > want[j].key
				}
				return want[i].key < want[j].key
			}
			return want[i].mi.seq < want[j].mi.seq
		})
		got := make([]kv, 0, len(keys))
		tr.Scan(func(mi *ModelInfo) bool {
			got = append(got, kv{mi, keys[mi]})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("scan visited %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].mi != want[i].mi {
				t.Fatalf("desc=%v: position %d: got %s(key %d), want %s(key %d)",
					desc, i, got[i].mi.name, got[i].key, want[i].mi.name, want[i].key)
			}
		}
		// Early exit stops the walk.
		visited := 0
		tr.Scan(func(*ModelInfo) bool { visited++; return visited < 3 })
		if visited != 3 && tr.Len() >= 3 {
			t.Fatalf("early exit visited %d", visited)
		}
	}
}
