package core

import (
	"fmt"
	"time"

	"clockwork/internal/predictor"
)

// This file is the control-plane state export/import surface the
// durable journal rides (see the top-level journal package). A snapshot
// must capture what cannot be re-derived from the model catalogue: the
// measured profile windows (the §5.3 rolling estimators) and each
// model's current shard. Everything travels through the same registry
// the migration machinery (ExtractModel/AdoptModel) uses, so a restored
// controller is indistinguishable from one that learned the profile
// live.

// ProfileEntry is one action key's measured window for a model:
// Op "exec" with a batch size, or Op "load" (Batch 0). Window is
// oldest-first, so replaying it through the profile's Observe
// reconstructs the estimator exactly.
type ProfileEntry struct {
	Op     string
	Batch  int
	Window []time.Duration
}

// ExportProfile returns model's measured profile windows in
// deterministic (Op, Batch) order. Models with no measurements yet
// export an empty slice — their estimators are fully re-derivable from
// the catalogue seed at registration.
func (c *Controller) ExportProfile(model string) []ProfileEntry {
	var out []ProfileEntry
	for _, k := range c.profile.Keys() {
		if k.Model != model {
			continue
		}
		w := c.profile.ExportKey(k)
		if len(w) == 0 {
			continue
		}
		out = append(out, ProfileEntry{Op: k.Op, Batch: k.Batch, Window: w})
	}
	return out
}

// ImportProfile replays measured windows into model's estimators, on
// top of the catalogue seeds RegisterModel installed. Call it after
// registration; unknown models are ignored (the entries carry their
// own keys, and observing for an unregistered model would create
// orphan estimators).
func (c *Controller) ImportProfile(model string, entries []ProfileEntry) {
	if _, ok := c.models[model]; !ok {
		return
	}
	for _, e := range entries {
		for _, d := range e.Window {
			c.profile.Observe(predictor.Key{Op: e.Op, Model: model, Batch: e.Batch}, d)
		}
	}
}

// ExportProfile routes the export to model's owning shard.
func (cl *Cluster) ExportProfile(model string) ([]ProfileEntry, error) {
	shard, ok := cl.modelShard[model]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	return cl.Ctls[shard].ExportProfile(model), nil
}

// ImportProfile routes the import to model's owning shard.
func (cl *Cluster) ImportProfile(model string, entries []ProfileEntry) error {
	shard, ok := cl.modelShard[model]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	cl.Ctls[shard].ImportProfile(model, entries)
	return nil
}

// ZooNameOf returns the catalogue name behind a registered instance —
// what a snapshot stores so recovery can re-register the instance from
// the embedded catalogue. ok is false for unknown instances.
func (cl *Cluster) ZooNameOf(instance string) (string, bool) {
	zoo, ok := cl.zoos[instance]
	if !ok {
		return "", false
	}
	return zoo.Name, true
}
