package core

import (
	"testing"
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// schedCluster builds a 1-worker cluster with the Clockwork scheduler
// exposed for direct inspection.
func schedCluster(t *testing.T, pageCacheModels int) (*Cluster, *ClockworkScheduler) {
	t.Helper()
	s := NewClockworkScheduler()
	cfg := ClusterConfig{Workers: 1, GPUsPerWorker: 1, NoNoise: true, Scheduler: s}
	if pageCacheModels > 0 {
		cfg.PageCacheBytes = int64(pageCacheModels) * 7 * 16 * 1024 * 1024
	}
	return NewCluster(cfg), s
}

func TestBestStrategyPrefersLargestFeasibleBatch(t *testing.T) {
	cl, s := schedCluster(t, 0)
	cl.RegisterModel("m", modelzoo.ResNet50())
	// Warm the model and let the system drain.
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(200 * time.Millisecond)

	// Pile up 16 requests while the executor is busy with a decoy so
	// the batch decision happens in one pass.
	mi, _ := cl.Ctl.Model("m")
	g := cl.Ctl.GPUs()[0]
	// Queue 16 requests "manually": submit them all at one instant.
	var batches []int
	for i := 0; i < 16; i++ {
		cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				batches = append(batches, r.Batch)
			}
		})
	}
	cl.RunFor(300 * time.Millisecond)
	_ = mi
	_ = g
	_ = s
	if len(batches) != 16 {
		t.Fatalf("served %d/16", len(batches))
	}
	max := 0
	for _, b := range batches {
		if b > max {
			max = b
		}
	}
	if max < 8 {
		t.Fatalf("largest batch %d; expected aggressive batching of a 16-burst", max)
	}
}

func TestSchedulerRespectsUncompiledBatchSizes(t *testing.T) {
	// Queue lengths that are not compiled batch sizes must round down
	// to a compiled size, never up.
	cl, _ := schedCluster(t, 0)
	cl.RegisterModel("m", modelzoo.ResNet50())
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(200 * time.Millisecond)

	var batches []int
	for i := 0; i < 7; i++ { // 7 → batches of 4+2+1 or similar
		cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				batches = append(batches, r.Batch)
			}
		})
	}
	cl.RunFor(300 * time.Millisecond)
	for _, b := range batches {
		switch b {
		case 1, 2, 4, 8, 16:
		default:
			t.Fatalf("uncompiled batch size %d executed", b)
		}
	}
}

func TestLoadPriorityPrefersHighDemand(t *testing.T) {
	// Two cold models, one with much more demand: the priority policy
	// must load the high-demand model first.
	cl, _ := schedCluster(t, 0)
	cl.RegisterModel("hot", modelzoo.ResNet50())
	cl.RegisterModel("cool", modelzoo.ResNet50())

	// Submit demand at one instant before the scheduler can react:
	// 1 request for cool (submitted first!), then 8 for hot.
	cl.Submit("cool", 100*time.Millisecond, nil)
	for i := 0; i < 8; i++ {
		cl.Submit("hot", 100*time.Millisecond, nil)
	}
	// Find which LOAD went first.
	var firstLoad string
	for _, w := range cl.Workers {
		_ = w
	}
	// Run one event at a time until a load begins (mirror has loading).
	g := cl.Ctl.GPUs()[0]
	for firstLoad == "" && cl.Eng.Step() {
		for _, name := range []string{"hot", "cool"} {
			if g.IsLoading(name) {
				firstLoad = name
				break
			}
		}
	}
	// Both submissions happen at t=0 and scheduling reacts per request:
	// after the cool request, cool is the only active model and gets a
	// LOAD slot; but once hot's demand arrives, hot must win the NEXT
	// load decision. Accept either "hot first" or "cool first then hot
	// immediately", but hot must be loading before cool finishes.
	cl.RunFor(5 * time.Millisecond)
	if !g.IsLoading("hot") && !g.Pages.Has("hot") {
		t.Fatal("high-demand model not prioritised for loading")
	}
}

func TestNextVictimSkipsLoadingAndInFlight(t *testing.T) {
	cl, s := schedCluster(t, 0)
	cl.RegisterModel("a", modelzoo.ResNet50())
	cl.RegisterModel("b", modelzoo.ResNet50())
	cl.Submit("a", 100*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond) // a resident, idle

	g := cl.Ctl.GPUs()[0]
	if v := s.nextVictim(g); v == nil || v.Name() != "a" {
		t.Fatalf("victim = %v, want a", v)
	}
	// Mark a as having an in-flight INFER: no victim available.
	g.inFlightInfers["a"] = 1
	if v := s.nextVictim(g); v != nil {
		t.Fatalf("victim = %v, want none (in-flight)", v.Name())
	}
	delete(g.inFlightInfers, "a")
}

func TestLoadOldestFirstPolicy(t *testing.T) {
	s := NewClockworkScheduler()
	s.LoadSelection = LoadOldestFirst
	cl := NewCluster(ClusterConfig{Workers: 1, GPUsPerWorker: 1, NoNoise: true, Scheduler: s})
	cl.RegisterModel("m", modelzoo.ResNet50())
	ok := false
	cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) { ok = r.Success })
	cl.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("oldest-first policy failed to serve")
	}
}

func TestMirrorResidentStates(t *testing.T) {
	g := newGPUMirror(0, 0, 100*16*1024*1024, 16*1024*1024)
	if _, ok := g.Resident("x"); ok {
		t.Fatal("empty mirror should not report resident")
	}
	if err := g.Pages.Alloc("x", 3); err != nil {
		t.Fatal(err)
	}
	if ready, ok := g.Resident("x"); !ok || ready != simclock.MinTime {
		t.Fatal("allocated model should be immediately resident")
	}
	g.loading["x"] = simclock.Time(5 * time.Millisecond)
	if ready, ok := g.Resident("x"); !ok || ready != simclock.Time(5*time.Millisecond) {
		t.Fatal("loading model should report its ETA")
	}
	if !g.IsLoading("x") {
		t.Fatal("IsLoading wrong")
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
}

func TestMirrorOutstandingWork(t *testing.T) {
	g := newGPUMirror(0, 0, 16*1024*1024, 16*1024*1024)
	now := simclock.Time(10 * time.Millisecond)
	if g.OutstandingExecWork(now) != 0 || g.OutstandingLoadWork(now) != 0 {
		t.Fatal("fresh mirror should have no outstanding work")
	}
	g.ExecFreeAt = now.Add(3 * time.Millisecond)
	g.LoadFreeAt = now.Add(7 * time.Millisecond)
	if g.OutstandingExecWork(now) != 3*time.Millisecond {
		t.Fatal("exec work wrong")
	}
	if g.OutstandingLoadWork(now) != 7*time.Millisecond {
		t.Fatal("load work wrong")
	}
}

func TestModelInfoDeadlines(t *testing.T) {
	mi := &ModelInfo{name: "m", zoo: modelzoo.ResNet50(), residentOn: map[*GPUMirror]bool{}}
	if mi.MinDeadline() != simclock.MaxTime || mi.MaxDeadline() != simclock.MinTime {
		t.Fatal("empty queue deadline sentinels wrong")
	}
	if mi.MinDeadlineOfOldest(4) != simclock.MaxTime {
		t.Fatal("empty MinDeadlineOfOldest wrong")
	}
	if mi.PeekOldest() != nil {
		t.Fatal("PeekOldest of empty queue")
	}
	mi.queue = []*Request{
		{ID: 1, deadline: simclock.Time(30)},
		{ID: 2, deadline: simclock.Time(10)},
		{ID: 3, deadline: simclock.Time(20)},
	}
	if mi.MinDeadline() != simclock.Time(10) || mi.MaxDeadline() != simclock.Time(30) {
		t.Fatal("min/max deadlines wrong")
	}
	if mi.MinDeadlineOfOldest(1) != simclock.Time(30) {
		t.Fatal("oldest-1 deadline wrong")
	}
	if mi.MinDeadlineOfOldest(2) != simclock.Time(10) {
		t.Fatal("oldest-2 deadline wrong")
	}
	if mi.PeekOldest().ID != 1 {
		t.Fatal("PeekOldest wrong")
	}
	batch := mi.PopBatch(2)
	if len(batch) != 2 || batch[0].ID != 1 || batch[1].ID != 2 {
		t.Fatalf("PopBatch wrong: %v", batch)
	}
	if mi.QueuedCount() != 1 {
		t.Fatal("queue not drained")
	}
	if !mi.removeRequest(mi.queue[0]) {
		t.Fatal("removeRequest failed")
	}
	if mi.removeRequest(&Request{}) {
		t.Fatal("removing absent request should fail")
	}
}

func TestRequestResponseStrings(t *testing.T) {
	ok := Response{RequestID: 1, Model: "m", Success: true, Batch: 4}
	if ok.String() == "" {
		t.Fatal("empty")
	}
	bad := Response{RequestID: 2, Model: "m", Reason: ReasonCancelled}
	if bad.String() == "" {
		t.Fatal("empty")
	}
}
