package core

import "testing"

// TestAllocRatchetSchedulerPass pins the decision path: one strategy
// pick plus one load pick against 100 active models must not allocate.
// The indexed scheduler reads heaps and treaps maintained incrementally
// by controller events; a pass that starts allocating means someone
// re-introduced per-decision garbage (slice rebuilds, closure captures)
// into the hottest loop in the controller.
func TestAllocRatchetSchedulerPass(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation ratchet skipped in -short")
	}
	s, g, now := benchState(100, 100, 4)
	pass := func() {
		s.bestStrategy(g, now)
		s.bestLoad(g, now)
	}
	pass() // warm any lazily-built index state
	const ceiling = 0.5
	if avg := testing.AllocsPerRun(500, pass); avg > ceiling {
		t.Fatalf("scheduler pass allocates %.2f objects/op, ratchet ceiling is %.2f", avg, ceiling)
	}
}
