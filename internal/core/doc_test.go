package core

import (
	"testing"
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// Regression tests for subtle scheduling behaviours discovered during
// the reproduction (each was a real bug at some point).

// The scheduler must not pull ExecFreeAt back when an action is
// rejected: doing so lets new work jump ahead of already-queued actions
// and triggers a self-sustaining reject cascade (see controller.go).
func TestNoRejectCascadeUnderChurn(t *testing.T) {
	cl := testCluster(t, ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		PageCacheBytes: 20 * 7 * 16 * 1024 * 1024, // 20 ResNet50s
	})
	names, _ := cl.RegisterCopies("m", modelzoo.ResNet50(), 60)
	// Skewless round-robin over 60 models on a 20-model cache: constant
	// cold-start churn.
	i := 0
	var loop func(n int)
	loop = func(n int) {
		if n >= 2000 {
			return
		}
		cl.Submit(names[i%len(names)], 100*time.Millisecond, nil)
		i++
		cl.Eng.After(2*time.Millisecond, func() { loop(n + 1) })
	}
	loop(0)
	cl.RunFor(6 * time.Second)

	st := cl.Ctl.Stats()
	// Worker-side rejections (timing mispredictions) must stay a small
	// fraction of requests — the paper sees 4,511 in 140M; cascades
	// show up here as tens of percent.
	if frac := float64(st.Rejected) / float64(st.Requests); frac > 0.05 {
		t.Fatalf("%.1f%% of requests rejected by workers — cascade", 100*frac)
	}
	if st.Succeeded == 0 {
		t.Fatal("nothing succeeded")
	}
}

// An INFER whose window opens at a LOAD's predicted completion must not
// race the transfer: the ETA includes a network allowance.
func TestInferNeverRacesLoadETA(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())
	notLoaded := 0
	for i := 0; i < 50; i++ {
		// Cold start each round: force eviction by unloading via a
		// second model… simpler: fresh cluster per-iteration would be
		// slow; instead rely on the first cold start being scheduled
		// against the load ETA.
		cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) {
			if !r.Success && r.Reason == ReasonRejected {
				notLoaded++
			}
		})
		cl.RunFor(50 * time.Millisecond)
	}
	if notLoaded != 0 {
		t.Fatalf("%d requests rejected racing their LOAD", notLoaded)
	}
}

// Cancelled requests must release their queue slots and demand so the
// load-priority accounting never goes negative or leaks.
func TestDemandAccountingUnderCancellation(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())
	for i := 0; i < 200; i++ {
		cl.Submit("m", time.Millisecond, nil) // all unmeetable
	}
	cl.RunFor(time.Second)
	mi, _ := cl.Ctl.Model("m")
	if mi.QueuedCount() != 0 {
		t.Fatalf("queue leaked %d requests", mi.QueuedCount())
	}
	if mi.Demand() != 0 {
		t.Fatalf("demand leaked %v", mi.Demand())
	}
	if len(cl.Ctl.ActiveModels()) != 0 {
		t.Fatal("active set leaked")
	}
	if simclock.Time(0) != 0 { // keep simclock import honest
		t.Fatal("unreachable")
	}
}
