package core

import (
	"time"

	"clockwork/internal/action"
	"clockwork/internal/simclock"
)

// ClockworkScheduler is the paper's scheduler (§5.3, Appendix B):
//
//   - INFER: a single conceptual queue of strategies ordered by required
//     start time (deadline − estimated batch execution). Each pass keeps
//     every INFER executor supplied with at most Lookahead (5ms) of
//     work, choosing the most urgent (model, batch) pair whose largest
//     feasible batch fits its oldest request's deadline — larger batches
//     have earlier required start times and therefore win.
//   - LOAD: each LOAD executor is likewise kept Lookahead-full. Models
//     are ranked by load priority p_m = d_m − Σ_g a_{m,g}·capacity/ℓ_g
//     (unfulfilled demand); the highest positive-priority non-resident
//     model is loaded, evicting least-recently-used models as needed.
//   - Admission: the controller cancels requests in advance when their
//     SLO is provably unmeetable (Controller.Submit's last-chance timer),
//     so workers never burn cycles on fruitless work.
type ClockworkScheduler struct {
	c     *Controller
	wakes map[*GPUMirror]*gpuWake

	// LoadSelection switches between Appendix B's priority policy
	// (default) and the naive ablation policy. Set before first use.
	LoadSelection LoadPolicy
}

// gpuWake is the preallocated re-evaluation event for one GPU: armWake
// re-arms its embedded timer in Runner form, so the scheduler's wake
// path — hit on every pass over a saturated executor — never allocates
// a timer closure. One gpuWake lives per (scheduler, GPU) pair.
type gpuWake struct {
	s   *ClockworkScheduler
	g   *GPUMirror
	tmr simclock.Timer
}

// Run implements simclock.Runner.
func (w *gpuWake) Run() { w.s.scheduleGPU(w.g) }

// LoadPolicy selects how the scheduler chooses LOAD targets.
type LoadPolicy uint8

// Load policies: the paper's demand-priority policy, and a naive
// oldest-deadline-first policy kept as an ablation baseline.
const (
	LoadByPriority LoadPolicy = iota
	LoadOldestFirst
)

// NewClockworkScheduler returns the paper's scheduler.
func NewClockworkScheduler() *ClockworkScheduler {
	return &ClockworkScheduler{wakes: make(map[*GPUMirror]*gpuWake)}
}

// Attach implements Scheduler.
func (s *ClockworkScheduler) Attach(c *Controller) {
	s.c = c
	if s.LoadSelection == LoadOldestFirst {
		// The ablation policy selects by earliest queued deadline; have
		// the controller keep the deadline-ordered index for it.
		c.enableDeadlineIndex()
	}
}

// OnRequest implements Scheduler: new demand may enable an INFER on any
// GPU holding the model, or justify a LOAD anywhere. GPUs are visited
// in controller order — iterating the residency map directly would make
// the visitation order (and, for multi-resident models, the dispatch)
// depend on Go's per-run map ordering.
func (s *ClockworkScheduler) OnRequest(r *Request) {
	mi, _ := s.c.Model(r.Model)
	resident := mi.ResidentOn()
	for _, g := range s.c.GPUs() {
		if resident[g] {
			s.scheduleGPU(g)
			continue
		}
		// Cold or under-replicated demand: consider loads everywhere.
		// (O(1) per saturated GPU thanks to the lookahead early-exit.)
		s.scheduleLoads(g)
		s.armWake(g)
	}
}

// OnResult implements Scheduler: a result frees mirror capacity
// (completed LOAD) or signals drift; re-evaluate that GPU.
func (s *ClockworkScheduler) OnResult(res action.Result) {
	g := s.c.mirror(res.WorkerID, res.GPU)
	s.scheduleGPU(g)
}

// OnCancel implements Scheduler: cancelled demand never helps; no-op.
func (s *ClockworkScheduler) OnCancel(*Request) {}

func (s *ClockworkScheduler) scheduleGPU(g *GPUMirror) {
	s.scheduleInfers(g)
	s.scheduleLoads(g)
	s.armWake(g)
}

// scheduleInfers keeps g's INFER executor supplied with ≤ Lookahead of
// predicted work.
func (s *ClockworkScheduler) scheduleInfers(g *GPUMirror) {
	if g.disabled {
		return
	}
	cfg := s.c.Config()
	for {
		now := s.c.Now()
		if g.OutstandingExecWork(now) >= cfg.Lookahead {
			return
		}
		mi, batch, earliest, requiredStart := s.bestStrategy(g, now)
		if mi == nil {
			return
		}
		reqs := mi.PopBatch(batch)
		latest := requiredStart
		if latest < earliest {
			latest = earliest // guarded by feasibility; keep window sane
		}
		s.c.SendInfer(g, mi, batch, reqs, earliest, latest)
	}
}

// bestStrategy picks the most urgent feasible (model, batch) for g:
// among models with queued work resident on g, the largest batch that
// meets its oldest request's deadline, preferring the earliest required
// start time (Appendix B's strategy-queue order).
//
// It reads g's strategy heap instead of scanning every model with work.
// The heap's stored keys are lower bounds on each entry's current
// required start (see stratEntry), so popping proceeds: stale entries
// (stamp mismatch) are dropped, entries whose model has become
// infeasible are dropped (within a stamp epoch infeasibility is
// permanent — the start bound only grows — and every event that could
// restore feasibility bumps the stamp and pushes a fresh entry), and
// entries whose recomputed key grew are pushed back re-keyed. The first
// entry whose recomputed key equals its stored key is the global
// minimum, because every other stored key is a lower bound.
func (s *ClockworkScheduler) bestStrategy(g *GPUMirror, now simclock.Time) (best *ModelInfo, batch int, earliest, requiredStart simclock.Time) {
	for len(g.stratQ) > 0 {
		e := g.stratQ[0]
		mi := e.mi
		if e.stamp != mi.stamp || !g.withWork[mi] {
			g.stratQ.popTop()
			continue
		}
		b, start, rs := s.c.inferCandidate(g, mi, now)
		if b == 0 {
			g.stratQ.popTop() // infeasible until the next stamp bump
			continue
		}
		if rs != e.key {
			g.stratQ[0].key = rs
			g.stratQ.fixTop()
			continue
		}
		return mi, b, start, rs
	}
	return nil, 0, 0, simclock.MaxTime
}

// bestStrategyLinear is the seed's O(models-with-work) scan, kept as the
// reference implementation: property tests assert the indexed path picks
// an identical (model, batch) on identical state, and benchmarks measure
// the gap.
func (s *ClockworkScheduler) bestStrategyLinear(g *GPUMirror, now simclock.Time) (best *ModelInfo, batch int, earliest, requiredStart simclock.Time) {
	requiredStart = simclock.MaxTime
	for mi := range g.ModelsWithWork() {
		b, start, rs := s.c.inferCandidate(g, mi, now)
		if b == 0 {
			continue
		}
		if rs < requiredStart {
			best, batch, earliest, requiredStart = mi, b, start, rs
		}
	}
	return best, batch, earliest, requiredStart
}

// scheduleLoads keeps g's LOAD executor supplied with ≤ Lookahead of
// predicted transfer work, choosing models by Appendix B load priority.
func (s *ClockworkScheduler) scheduleLoads(g *GPUMirror) {
	if g.disabled {
		return
	}
	cfg := s.c.Config()
	for {
		now := s.c.Now()
		if g.OutstandingLoadWork(now) >= cfg.Lookahead {
			return
		}
		best := s.bestLoad(g, now)
		if best == nil {
			return
		}
		if !s.evictFor(g, best) {
			return // cannot free enough pages right now
		}
		earliest := simclock.Max(now, g.LoadFreeAt)
		latest := earliest.Add(cfg.Lookahead)
		s.c.SendLoad(g, best, earliest, latest)
	}
}

// bestLoad returns the non-resident model with the highest positive load
// priority whose LOAD would still be useful, or nil.
//
// It descends the controller's demand-ordered index instead of scanning
// every active model: a model's priority p_m = d_m − Σ fulfilled is
// bounded above by its demand d_m, so once the next model's demand
// cannot exceed the best exact priority found, no later model can win
// and the descent stops. ℓ_g comes from the incrementally maintained
// per-GPU allocated demand rather than a per-call rebuild.
func (s *ClockworkScheduler) bestLoad(g *GPUMirror, now simclock.Time) *ModelInfo {
	cfg := s.c.Config()
	if len(s.c.activeModels) == 0 {
		return nil
	}
	if s.LoadSelection == LoadOldestFirst {
		return s.bestLoadOldest(g, now)
	}
	var best *ModelInfo
	var bestP time.Duration
	s.c.demandIdx.Scan(func(mi *ModelInfo) bool {
		if mi.demand <= 0 {
			return false // demand-descending: nothing below can qualify
		}
		if best != nil && mi.demand <= bestP {
			return false // upper bound: p_m ≤ d_m cannot beat bestP
		}
		if _, resident := g.Resident(mi.name); resident {
			return true
		}
		if p := s.loadPriority(cfg, mi); p > 0 && (best == nil || p > bestP) {
			best, bestP = mi, p
		}
		return true
	})
	return best
}

// loadPriority computes Appendix B's p_m = d_m − Σ_g a_{m,g} ·
// capacity_g / ℓ_g from the incrementally maintained per-GPU loads.
//
// No "will the load land before the current deadlines" filter: demand
// is a *rate* signal. Under a tight SLO every queued request may expire
// before the transfer lands, yet sustained demand means the load pays
// off for the arrivals right behind them — filtering here deadlocks
// cold models forever.
func (s *ClockworkScheduler) loadPriority(cfg Config, mi *ModelInfo) time.Duration {
	p := mi.demand
	if n := len(mi.residentOn); n > 0 {
		share := mi.demand / time.Duration(n)
		for g2 := range mi.residentOn {
			l := g2.allocDemand
			if l <= 0 {
				l = time.Nanosecond
			}
			fulfilled := time.Duration(float64(share) * float64(cfg.LoadHorizon) / float64(l))
			p -= fulfilled
		}
	}
	return p
}

// bestLoadLinear is the seed's O(active models) scan with a per-call
// ℓ_g rebuild, kept as the reference implementation for property tests
// and benchmarks.
func (s *ClockworkScheduler) bestLoadLinear(g *GPUMirror, now simclock.Time) *ModelInfo {
	cfg := s.c.Config()
	active := s.c.ActiveModels()
	if len(active) == 0 {
		return nil
	}
	if s.LoadSelection == LoadOldestFirst {
		return s.bestLoadOldestLinear(g, now)
	}
	// ℓ_g: per-GPU allocated demand (Appendix B), over active models.
	loads := make(map[*GPUMirror]time.Duration, len(s.c.GPUs()))
	for mi := range active {
		n := len(mi.residentOn)
		if n == 0 || mi.demand <= 0 {
			continue
		}
		share := mi.demand / time.Duration(n)
		for g2 := range mi.residentOn {
			loads[g2] += share
		}
	}
	var best *ModelInfo
	var bestP time.Duration
	for mi := range active {
		if mi.demand <= 0 {
			continue
		}
		if _, resident := g.Resident(mi.name); resident {
			continue
		}
		// p_m = d_m − Σ_g a_{m,g} · capacity_g / ℓ_g.
		p := mi.demand
		if n := len(mi.residentOn); n > 0 {
			share := mi.demand / time.Duration(n)
			for g2 := range mi.residentOn {
				l := loads[g2]
				if l <= 0 {
					l = time.Nanosecond
				}
				fulfilled := time.Duration(float64(share) * float64(cfg.LoadHorizon) / float64(l))
				p -= fulfilled
			}
		}
		if p <= 0 {
			continue
		}
		if best == nil || p > bestP {
			best, bestP = mi, p
		}
	}
	return best
}

// bestLoadOldest is the ablation load policy: load the not-yet-resident
// model whose oldest queued request has the earliest deadline, ignoring
// demand volume and existing replicas. It ascends the deadline-ordered
// index, so the first model passing the residency and usefulness filters
// is the answer; the linear scan remains as a fallback when the index
// was not enabled (a scheduler whose LoadSelection changed after Attach).
func (s *ClockworkScheduler) bestLoadOldest(g *GPUMirror, now simclock.Time) *ModelInfo {
	if !s.c.deadlineIdxOn {
		return s.bestLoadOldestLinear(g, now)
	}
	var best *ModelInfo
	s.c.deadlineIdx.Scan(func(mi *ModelInfo) bool {
		if _, resident := g.Resident(mi.name); resident {
			return true
		}
		eta := simclock.Max(now, g.LoadFreeAt).Add(s.c.EstimateLoad(mi))
		if eta.Add(s.c.EstimateExec(mi, 1)) > mi.MaxDeadline() {
			return true
		}
		best = mi
		return false // deadline-ascending: first hit is the earliest
	})
	return best
}

// bestLoadOldestLinear is the seed's scan for the ablation policy.
func (s *ClockworkScheduler) bestLoadOldestLinear(g *GPUMirror, now simclock.Time) *ModelInfo {
	var best *ModelInfo
	bestDeadline := simclock.MaxTime
	for mi := range s.c.ActiveModels() {
		if _, resident := g.Resident(mi.name); resident {
			continue
		}
		eta := simclock.Max(now, g.LoadFreeAt).Add(s.c.EstimateLoad(mi))
		if eta.Add(s.c.EstimateExec(mi, 1)) > mi.MaxDeadline() {
			continue
		}
		if dl := mi.MinDeadline(); dl < bestDeadline {
			bestDeadline = dl
			best = mi
		}
	}
	return best
}

// evictFor frees pages for mi on g using LRU (§5.3: UNLOAD selection is
// least-recently-used), skipping models that are loading or have
// in-flight INFERs. Reports whether enough pages are now free.
func (s *ClockworkScheduler) evictFor(g *GPUMirror, mi *ModelInfo) bool {
	need := mi.zoo.Pages(g.Pages.PageSize())
	if need > g.Pages.TotalPages() {
		return false
	}
	for g.Pages.FreePages() < need {
		victim := s.nextVictim(g)
		if victim == nil {
			return false
		}
		s.c.SendUnload(g, victim)
	}
	return true
}

// nextVictim returns the least-recently-used evictable model on g,
// walking the page cache's LRU list in place instead of materialising
// every resident key per eviction.
func (s *ClockworkScheduler) nextVictim(g *GPUMirror) *ModelInfo {
	var victim *ModelInfo
	g.Pages.ScanLRU(func(name string) bool {
		if g.IsLoading(name) || g.InFlight(name) > 0 {
			return true
		}
		if mi, ok := s.c.Model(name); ok {
			victim = mi
			return false
		}
		return true
	})
	return victim
}

// nextVictimLinear is the seed's materialise-and-scan implementation,
// kept as the reference for property tests.
func (s *ClockworkScheduler) nextVictimLinear(g *GPUMirror) *ModelInfo {
	keys := g.Pages.Keys() // MRU first
	for i := len(keys) - 1; i >= 0; i-- {
		name := keys[i]
		if g.IsLoading(name) || g.InFlight(name) > 0 {
			continue
		}
		if mi, ok := s.c.Model(name); ok {
			return mi
		}
	}
	return nil
}

// armWake schedules a re-evaluation for when g's saturated executors
// drop below the lookahead threshold again.
func (s *ClockworkScheduler) armWake(g *GPUMirror) {
	if g.disabled {
		return
	}
	cfg := s.c.Config()
	now := s.c.Now()
	wake := simclock.MaxTime
	if len(g.withWork) > 0 && g.OutstandingExecWork(now) >= cfg.Lookahead {
		wake = simclock.Min(wake, g.ExecFreeAt.Add(-cfg.Lookahead))
	}
	if len(s.c.activeModels) > 0 && g.OutstandingLoadWork(now) >= cfg.Lookahead {
		wake = simclock.Min(wake, g.LoadFreeAt.Add(-cfg.Lookahead))
	}
	if wake == simclock.MaxTime {
		return
	}
	// Never arm at or before the current instant: this pass already saw
	// the present state, and a same-instant wake would loop forever.
	if wake <= now {
		wake = now.Add(time.Nanosecond)
	}
	w := s.wakes[g]
	if w == nil {
		w = &gpuWake{s: s, g: g}
		s.wakes[g] = w
	}
	if w.tmr.Pending() && w.tmr.When() <= wake {
		return // an adequate wake is already armed
	}
	w.tmr.Stop()
	w.tmr = s.c.Engine().AtRun(wake, w)
}
