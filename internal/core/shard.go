package core

import (
	"fmt"
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// This file holds the controller-side primitives of the sharded control
// plane. A sharded cluster runs N controllers ("shards") on one event
// engine; each shard owns a disjoint slice of the cluster's GPUs and a
// disjoint subset of its models, so every scheduling pass touches only
// 1/N of the state. The cluster layer (cluster.go) routes submissions
// and control-plane calls to the owning shard and periodically
// rebalances model ownership when per-shard demand skews; the
// primitives below make that migration lossless: a model moves between
// controllers with its queued requests intact — no request is lost,
// duplicated, or answered twice.

// modelBusy reports whether name has an in-flight action whose result
// will still be honoured — a LOAD or INFER on a non-failed worker
// (draining workers keep their promises; failed workers' in-flight
// requests were already answered and their results are dropped).
func (c *Controller) modelBusy(name string) bool {
	for _, g := range c.gpus {
		if c.workerByID[g.WorkerID].failed {
			continue
		}
		if g.IsLoading(name) || g.InFlight(name) > 0 {
			return true
		}
	}
	return false
}

// TotalDemand sums Appendix B demand (d_m) over this shard's active
// models — the skew signal the cross-shard rebalancer compares.
func (c *Controller) TotalDemand() time.Duration {
	var d time.Duration
	for mi := range c.activeModels {
		d += mi.demand
	}
	return d
}

// SchedulableGPUs counts this shard's enabled mirrors — the capacity
// signal that keeps the rebalancer from migrating models onto a shard
// whose workers are all drained or failed.
func (c *Controller) SchedulableGPUs() int {
	n := 0
	for _, g := range c.gpus {
		if !g.disabled {
			n++
		}
	}
	return n
}

// HottestMigratable returns the highest-demand active model that can
// migrate right now (no in-flight LOAD/INFER) with demand strictly
// below maxDemand, descending the demand-ordered index. Selection is
// deterministic: demand order with registration-sequence tie-breaks.
func (c *Controller) HottestMigratable(maxDemand time.Duration) (name string, demand time.Duration, ok bool) {
	c.demandIdx.Scan(func(mi *ModelInfo) bool {
		if mi.demand <= 0 {
			return false // demand-descending: nothing below qualifies
		}
		if mi.demand >= maxDemand || c.modelBusy(mi.name) {
			return true
		}
		name, demand, ok = mi.name, mi.demand, true
		return false
	})
	return name, demand, ok
}

// ExtractModel detaches a model from this controller for migration to a
// sibling shard: its queued requests are removed without being
// answered (they travel with the model), admission timers are
// disarmed, GPU replicas are unloaded, and the registry entry is
// dropped. A model with in-flight actions is ErrModelBusy — the
// rebalancer skips it this cycle and retries later.
func (c *Controller) ExtractModel(name string) (*modelzoo.Model, []*Request, error) {
	mi, ok := c.models[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if c.modelBusy(name) {
		return nil, nil, fmt.Errorf("%w: %q", ErrModelBusy, name)
	}

	// The queue empties without responses: ownership of the requests
	// transfers to the adopting shard. Timers armed by this shard must
	// not fire on requests it no longer owns.
	reqs := append([]*Request(nil), mi.queue...)
	for _, r := range reqs {
		r.cancelTmr.Stop()
		r.cancelTmr = simclock.Timer{}
	}
	for i := range mi.queue {
		mi.queue[i] = nil
	}
	mi.queue = mi.queue[:0]
	mi.capped = 0
	mi.demand = 0
	c.noteQueueMaybeEmpty(mi)

	// Evict every replica in deterministic GPU order; mirrors of
	// drained/failed workers were already detached from residency, but
	// drop any residue defensively.
	for _, g := range c.gpus {
		if !g.disabled && mi.residentOn[g] {
			c.SendUnload(g, mi)
		}
	}
	for g := range mi.residentOn {
		delete(g.withWork, mi)
		delete(mi.residentOn, g)
	}

	c.reindexModel(mi)
	delete(c.models, name)
	for i, m := range c.modelList {
		if m == mi {
			c.modelList = append(c.modelList[:i], c.modelList[i+1:]...)
			break
		}
	}
	return mi.zoo, reqs, nil
}

// AdoptModel completes a migration: it registers the model on this
// controller and re-enqueues the requests extracted from the previous
// owner, preserving their IDs, deadlines, priorities and arrival
// order. Execution estimates restart from the model's offline profile
// (the learned rolling window stays with the old shard, exactly as if
// the model had been re-registered on a fresh controller); admission
// timers re-arm against the new estimates, so a request whose
// last-chance instant already passed is cancelled promptly rather than
// lost.
func (c *Controller) AdoptModel(name string, zoo *modelzoo.Model, reqs []*Request) error {
	if err := c.RegisterModel(name, zoo); err != nil {
		return err
	}
	mi := c.models[name]
	for _, r := range reqs {
		if r.state != stateQueued {
			continue // answered before the migration was decided
		}
		r.ctl = c // the request's armed timers now dispatch here
		r.execEst = c.EstimateExec(mi, 1)
		mi.enqueue(r)
		mi.demand += r.execEst
	}
	if len(mi.queue) > 0 {
		c.activeModels[mi] = true
	}
	c.reindexModel(mi)
	for _, r := range reqs {
		if r.state != stateQueued {
			continue
		}
		if !c.cfg.DisableAdmissionControl {
			r.cancelTmr = c.eng.AtRun(r.deadline.Add(-r.execEst), r)
		}
		c.schd.OnRequest(r)
	}
	return nil
}
