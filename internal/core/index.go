package core

import (
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// This file holds the scheduler's hot-path indexes. The paper's
// scheduler conceptually maintains "a single queue of strategies ordered
// by required start time" and a load-priority order over models
// (Appendix B); the seed implementation recomputed both orders by
// scanning every active model on every pass, which is O(models) per GPU
// per pass and collapses at Fig 8 scale. The controller now maintains:
//
//   - per-GPU strategy heaps: for every model with queued work on a GPU,
//     one entry keyed by the required start time of its best feasible
//     (model, batch) strategy. Entries are invalidated by a per-model
//     stamp that the controller bumps on every event that can change a
//     strategy (queue mutation, estimate observation, residency change),
//     and lazily re-keyed on pop, so a scheduling decision is O(log n)
//     amortised instead of O(models-with-work).
//   - a demand-ordered treap over active models: since a model's load
//     priority p_m is bounded above by its demand d_m, descending the
//     treap in demand order lets bestLoad stop as soon as the next
//     model's demand cannot beat the best exact priority found
//     (branch-and-bound), while per-GPU allocated demand ℓ_g is
//     maintained incrementally instead of being rebuilt per call.
//   - a deadline-ordered treap (enabled only for the LoadOldestFirst
//     ablation policy) over active models keyed by earliest queued
//     deadline.
//
// Determinism: all index orders break ties by model registration
// sequence, which makes selection deterministic where the seed's map
// iteration made equal-key choices depend on Go's map order.

// ---- per-model invalidation ----

// reindexModel re-synchronises every index with mi's current state. The
// controller calls it after any mutation that can affect scheduling:
// request enqueue, batch pop, cancellation, estimate observation, and
// residency changes. Cost: O(replicas + log models).
func (c *Controller) reindexModel(mi *ModelInfo) {
	mi.stamp++

	// ℓ_g maintenance: retract mi's previous per-GPU allocated-demand
	// contribution and apply the current one (Appendix B computes
	// ℓ_g = Σ_m a_{m,g} with a_{m,g} = d_m / |replicas(m)| over active
	// models; shares use the same integer division as the seed's scan).
	for _, g := range mi.sharedOn {
		g.allocDemand -= mi.loadShare
	}
	mi.sharedOn = mi.sharedOn[:0]
	mi.loadShare = 0
	active := c.activeModels[mi]
	if active && mi.demand > 0 && len(mi.residentOn) > 0 {
		mi.loadShare = mi.demand / time.Duration(len(mi.residentOn))
		for g := range mi.residentOn {
			g.allocDemand += mi.loadShare
			mi.sharedOn = append(mi.sharedOn, g)
		}
	}

	// Demand index membership: exactly the active models.
	if active {
		c.demandIdx.update(mi, &mi.demandNode, int64(mi.demand))
	} else {
		c.demandIdx.remove(&mi.demandNode)
	}

	// Deadline index (ablation load policy only).
	if c.deadlineIdxOn {
		if active {
			c.deadlineIdx.update(mi, &mi.deadlineNode, int64(mi.MinDeadline()))
		} else {
			c.deadlineIdx.remove(&mi.deadlineNode)
		}
	}

	// Strategy entries: one fresh entry per GPU where mi has work. Old
	// entries for mi (previous stamps) become garbage and are discarded
	// lazily when popped, or swept by compaction.
	if mi.QueuedCount() > 0 {
		now := c.eng.Now()
		for g := range mi.residentOn {
			if !g.withWork[mi] {
				continue
			}
			batch, _, rs := c.inferCandidate(g, mi, now)
			if batch == 0 {
				continue // infeasible until the next stamp bump
			}
			g.pushStrategy(stratEntry{mi: mi, key: rs, stamp: mi.stamp})
		}
	}
}

// inferCandidate picks mi's best feasible (batch, earliest, requiredStart)
// strategy on g at instant now: the largest compiled batch not exceeding
// the queue whose execution estimate still meets the oldest request's
// deadline — exactly the seed scheduler's per-model inner loop, factored
// out so the indexed and linear selection paths share it.
func (c *Controller) inferCandidate(g *GPUMirror, mi *ModelInfo, now simclock.Time) (batch int, earliest, requiredStart simclock.Time) {
	readyAt, ok := g.Resident(mi.name)
	if !ok || mi.QueuedCount() == 0 {
		return 0, 0, simclock.MaxTime
	}
	start := simclock.Max(now, g.ExecFreeAt)
	start = simclock.Max(start, readyAt)
	for _, b := range descBatches {
		if b > mi.QueuedCount() {
			continue
		}
		if mi.capped > 0 && mi.CapBatch(b) < b {
			continue // a request in this batch caps it below b
		}
		est := c.EstimateExec(mi, b)
		deadline := mi.MinDeadlineOfOldest(b)
		if start.Add(est) > deadline {
			continue // batch too slow for its oldest request
		}
		return b, start, deadline.Add(-est)
	}
	return 0, 0, simclock.MaxTime
}

// descBatches holds the compiled batch sizes, largest first.
var descBatches = func() []int {
	n := len(modelzoo.BatchSizes)
	desc := make([]int, n)
	for i, b := range modelzoo.BatchSizes {
		desc[n-1-i] = b
	}
	return desc
}()

// enableDeadlineIndex turns on MinDeadline-ordered indexing of active
// models; the LoadOldestFirst ablation policy opts in at Attach time so
// the default path never pays the O(queue) MinDeadline recomputation.
func (c *Controller) enableDeadlineIndex() { c.deadlineIdxOn = true }

// ---- per-GPU strategy heap ----

// stratEntry is one model's candidate strategy on one GPU. key is the
// strategy's required start time as computed when the entry was pushed;
// required start only grows between stamp bumps (estimates and deadlines
// are fixed within a stamp epoch and the start lower bound max(now,
// ExecFreeAt, readyAt) is monotone — the one event that lowers it, LOAD
// completion, bumps the stamp), so a stored key is always a lower bound
// on the entry's current required start. That makes the classic lazy
// re-keying heap exact: pop the minimum, recompute, and either the key
// is unchanged (global minimum found) or the entry is pushed back with
// its larger key.
type stratEntry struct {
	mi    *ModelInfo
	key   simclock.Time
	stamp uint64
}

// stratHeap orders entries by (required start, model registration
// sequence) — deterministic where the seed's map scan was not. It is a
// hand-rolled binary heap rather than container/heap: the stdlib
// interface passes elements as `any`, which boxes the three-word
// stratEntry on every Push/Pop — two heap allocations per scheduler
// decision that this hot path cannot afford.
type stratHeap []stratEntry

func (h stratHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].mi.seq < h[j].mi.seq
}

func (h stratHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h stratHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// push adds e, restoring heap order.
func (h *stratHeap) push(e stratEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// popTop removes the minimum entry (index 0).
func (h *stratHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	old[n] = stratEntry{}
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
}

// fixTop restores order after the top entry's key was rewritten in
// place (lazy re-keying only ever grows keys, so sift down suffices).
func (h stratHeap) fixTop() { h.down(0) }

// reinit heapifies after a bulk rewrite (compaction).
func (h stratHeap) reinit() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// pushStrategy adds a fresh entry, compacting the heap first when stale
// entries (stamp-mismatched leftovers of earlier pushes) dominate. At
// most one entry per model carries the current stamp, so live entries
// are bounded by |withWork|.
func (g *GPUMirror) pushStrategy(e stratEntry) {
	if len(g.stratQ) > 64 && len(g.stratQ) > 4*(len(g.withWork)+1) {
		g.compactStrategies()
	}
	g.stratQ.push(e)
}

// compactStrategies rebuilds the heap keeping only current-stamp entries.
func (g *GPUMirror) compactStrategies() {
	live := g.stratQ[:0]
	for _, e := range g.stratQ {
		if e.stamp == e.mi.stamp {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(g.stratQ); i++ {
		g.stratQ[i] = stratEntry{}
	}
	g.stratQ = live
	g.stratQ.reinit()
}

// ---- ordered model index (treap) ----

// modelTreap is a balanced ordered index over models, keyed by an int64
// with model registration sequence as tie-break. Node priorities are a
// deterministic hash of the sequence, so the tree shape — and therefore
// iteration order and timing — is identical across runs.
type modelTreap struct {
	root *treapNode
	size int
	// desc iterates keys high-to-low when true (demand order); low-to-
	// high otherwise (deadline order).
	desc bool
	// free recycles detached nodes: every demand change re-keys a model
	// (remove + insert), which would otherwise allocate a node per
	// queue mutation.
	free []*treapNode
}

type treapNode struct {
	mi   *ModelInfo
	key  int64
	prio uint64
	l, r *treapNode
}

func (t *modelTreap) less(a, b *treapNode) bool {
	if a.key != b.key {
		if t.desc {
			return a.key > b.key
		}
		return a.key < b.key
	}
	return a.mi.seq < b.mi.seq
}

// update inserts mi (or re-keys it) so the index reflects newKey.
// *slot is the per-model node handle owned by this index.
func (t *modelTreap) update(mi *ModelInfo, slot **treapNode, newKey int64) {
	if n := *slot; n != nil {
		if n.key == newKey {
			return
		}
		t.remove(slot)
	}
	var n *treapNode
	if m := len(t.free); m > 0 {
		n, t.free = t.free[m-1], t.free[:m-1]
		*n = treapNode{mi: mi, key: newKey, prio: splitmix64(mi.seq)}
	} else {
		n = &treapNode{mi: mi, key: newKey, prio: splitmix64(mi.seq)}
	}
	*slot = n
	t.root = t.insert(t.root, n)
	t.size++
}

// remove detaches the node held in *slot, if any, and recycles it.
func (t *modelTreap) remove(slot **treapNode) {
	n := *slot
	if n == nil {
		return
	}
	t.root = t.delete(t.root, n)
	*n = treapNode{}
	t.free = append(t.free, n)
	*slot = nil
	t.size--
}

func (t *modelTreap) insert(root, n *treapNode) *treapNode {
	if root == nil {
		return n
	}
	if t.less(n, root) {
		root.l = t.insert(root.l, n)
		if root.l.prio < root.prio {
			root = rotateRight(root)
		}
	} else {
		root.r = t.insert(root.r, n)
		if root.r.prio < root.prio {
			root = rotateLeft(root)
		}
	}
	return root
}

func (t *modelTreap) delete(root, n *treapNode) *treapNode {
	if root == nil {
		return nil
	}
	if root == n {
		return t.merge(root.l, root.r)
	}
	if t.less(n, root) {
		root.l = t.delete(root.l, n)
	} else {
		root.r = t.delete(root.r, n)
	}
	return root
}

func (t *modelTreap) merge(l, r *treapNode) *treapNode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio < r.prio {
		l.r = t.merge(l.r, r)
		return l
	}
	r.l = t.merge(l, r.l)
	return r
}

func rotateRight(n *treapNode) *treapNode {
	l := n.l
	n.l = l.r
	l.r = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.r
	n.r = r.l
	r.l = n
	return r
}

// Len returns the number of indexed models.
func (t *modelTreap) Len() int { return t.size }

// Scan visits models in index order (descending key for demand order,
// ascending for deadline order) until cb returns false.
func (t *modelTreap) Scan(cb func(mi *ModelInfo) bool) {
	t.walk(t.root, cb)
}

func (t *modelTreap) walk(n *treapNode, cb func(mi *ModelInfo) bool) bool {
	if n == nil {
		return true
	}
	if !t.walk(n.l, cb) {
		return false
	}
	if !cb(n.mi) {
		return false
	}
	return t.walk(n.r, cb)
}

// splitmix64 is the standard 64-bit mixer; used for deterministic treap
// priorities derived from model registration order.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
