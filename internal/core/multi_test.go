package core

import (
	"errors"
	"testing"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// Multi-GPU and multi-worker routing behaviours.

func TestMultiGPUWorkerRoutesActions(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 2})
	cl.RegisterModel("a", modelzoo.ResNet50())
	cl.RegisterModel("b", modelzoo.ResNet50())

	// Saturating demand on both models should end with each resident
	// somewhere, and both GPUs should have seen work.
	done := 0
	var loop func(i int)
	loop = func(i int) {
		if i >= 500 {
			return
		}
		cl.Submit("a", 20*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				done++
			}
		})
		cl.Submit("b", 20*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				done++
			}
		})
		cl.Eng.After(2*time.Millisecond, func() { loop(i + 1) })
	}
	loop(0)
	cl.RunFor(3 * time.Second)

	if done < 800 {
		t.Fatalf("only %d/1000 served on a 2-GPU worker", done)
	}
	g0 := cl.Workers[0].GPU(0)
	g1 := cl.Workers[0].GPU(1)
	if g0.Dev.ExecCount() == 0 || g1.Dev.ExecCount() == 0 {
		t.Fatalf("work not spread: gpu0=%d gpu1=%d execs", g0.Dev.ExecCount(), g1.Dev.ExecCount())
	}
}

func TestManyModelsManyWorkers(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 3, GPUsPerWorker: 1})
	names, _ := cl.RegisterCopies("resnet18_v2", modelzoo.MustByName("resnet18_v2"), 24)
	served := map[string]int{}
	for round := 0; round < 3; round++ {
		for _, n := range names {
			model := n
			cl.Submit(model, 100*time.Millisecond, func(r Response, _ time.Duration) {
				if r.Success {
					served[model]++
				}
			})
		}
		cl.RunFor(500 * time.Millisecond)
	}
	for _, n := range names {
		if served[n] != 3 {
			t.Fatalf("model %s served %d/3", n, served[n])
		}
	}
	// The 24 models should be spread across the 3 workers' GPUs.
	busyGPUs := 0
	for _, w := range cl.Workers {
		if w.GPU(0).Dev.ExecCount() > 0 {
			busyGPUs++
		}
	}
	if busyGPUs < 2 {
		t.Fatalf("only %d/3 workers did any work", busyGPUs)
	}
}

func TestResponseMarginDefaultScalesWithSLO(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())
	// A 4ms SLO (margin = SLO/20 = 200µs) is serviceable warm:
	// exec 2.77ms + IO leaves ~1ms of scheduling headroom.
	cl.Submit("m", 100*time.Millisecond, nil) // warm the model
	cl.RunFor(100 * time.Millisecond)
	ok := false
	var lat time.Duration
	cl.Submit("m", 4*time.Millisecond, func(r Response, l time.Duration) { ok, lat = r.Success, l })
	cl.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("4ms SLO should be serviceable warm")
	}
	if lat > 4*time.Millisecond {
		t.Fatalf("latency %v exceeded the 4ms SLO", lat)
	}
}

func TestExplicitResponseMargin(t *testing.T) {
	cl := NewCluster(ClusterConfig{
		Workers: 1, GPUsPerWorker: 1, NoNoise: true,
		Controller: Config{ResponseMargin: 5 * time.Millisecond},
	})
	cl.RegisterModel("m", modelzoo.ResNet50())
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond)
	// With a 5ms margin, an 8ms SLO leaves a 3ms budget — marginally
	// above the 2.77ms execution but below exec + transport, so the
	// request must fail (cancelled in advance, or rejected when the
	// action misses its now-unmeetable window).
	var resp Response
	cl.Submit("m", 8*time.Millisecond, func(r Response, _ time.Duration) { resp = r })
	cl.RunFor(100 * time.Millisecond)
	if resp.Success {
		t.Fatalf("want failure under fat margin, got %+v", resp)
	}
	// And the margin must not break a comfortably feasible SLO.
	ok := false
	cl.Submit("m", 50*time.Millisecond, func(r Response, _ time.Duration) { ok = r.Success })
	cl.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("50ms SLO should succeed with a 5ms margin")
	}
}

func TestControllerAddWorkerOutOfOrderPanics(t *testing.T) {
	// Worker IDs are cluster-global and may be non-contiguous within one
	// controller (shard striping), but must still arrive ascending and
	// unique.
	eng := simclock.NewEngine()
	c := NewController(eng, Config{}, NewClockworkScheduler())
	c.AddWorker(3, 1, 1<<30, 1<<24, func(a *action.Action, _ int64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddWorker(1, 1, 1<<30, 1<<24, func(a *action.Action, _ int64) {})
}

func TestControllerAddWorkerDuplicateIDPanics(t *testing.T) {
	eng := simclock.NewEngine()
	c := NewController(eng, Config{}, NewClockworkScheduler())
	c.AddWorker(0, 1, 1<<30, 1<<24, func(a *action.Action, _ int64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddWorker(0, 1, 1<<30, 1<<24, func(a *action.Action, _ int64) {})
}

func TestControllerRegisterDuplicateError(t *testing.T) {
	eng := simclock.NewEngine()
	c := NewController(eng, Config{}, NewClockworkScheduler())
	if err := c.RegisterModel("m", modelzoo.ResNet50()); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterModel("m", modelzoo.ResNet50()); !errors.Is(err, ErrDuplicateModel) {
		t.Fatalf("want ErrDuplicateModel, got %v", err)
	}
}

func TestControllerRegisterNilError(t *testing.T) {
	eng := simclock.NewEngine()
	c := NewController(eng, Config{}, NewClockworkScheduler())
	if err := c.RegisterModel("m", nil); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("want ErrInvalidRequest, got %v", err)
	}
}

func TestSendInferWithNoRequestsPanics(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())
	mi, _ := cl.Ctl.Model("m")
	g := cl.Ctl.GPUs()[0]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cl.Ctl.SendInfer(g, mi, 1, nil, 0, 0)
}
