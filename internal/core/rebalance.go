package core

import (
	"fmt"
	"time"
)

// This file is the cross-shard rebalancer. Consistent hashing spreads
// model *names* evenly across shards, but demand follows a heavy tail:
// a handful of hot models can concentrate most of the queued work on
// one shard while its siblings idle. The rebalancer runs periodically
// on the virtual clock (Shards > 1 only) and migrates whole models —
// queued requests included — from the hottest shard to the coldest
// until the skew drops below the configured factor.
//
// Every step is deterministic: shard demand sums are integer
// nanosecond totals, hot/cold selection breaks ties by lowest shard
// index, and the migrated model is chosen by descending the hot
// shard's demand-ordered index (registration-sequence tie-breaks), so
// two runs with equal seeds migrate the same models at the same
// instants.

// RebalanceOnce runs one rebalance pass immediately and returns the
// number of models migrated. The periodic rebalancer calls this every
// RebalanceInterval; tests and operators may call it directly (it is a
// no-op with one shard).
func (cl *Cluster) RebalanceOnce() int {
	if len(cl.Ctls) < 2 {
		return 0
	}
	moved := 0
	for moved < cl.cfg.MaxMigrations {
		hot, cold := cl.demandExtremes()
		if hot == cold {
			break
		}
		hotD := cl.Ctls[hot].TotalDemand()
		coldD := cl.Ctls[cold].TotalDemand()
		if float64(hotD) <= cl.cfg.RebalanceFactor*float64(coldD) {
			break // within tolerance
		}
		// Only migrate a model that strictly narrows the gap: moving
		// more demand than (hot−cold) would overshoot and ping-pong the
		// model between the two shards on alternating passes.
		name, _, ok := cl.Ctls[hot].HottestMigratable(hotD - coldD)
		if !ok {
			break // everything hot is in flight; retry next pass
		}
		if err := cl.MigrateModel(name, cold); err != nil {
			break
		}
		moved++
	}
	return moved
}

// demandExtremes returns the indexes of the hottest shard and of the
// coldest shard by total active demand, breaking ties toward the lower
// index. Shards without a single schedulable GPU (every worker drained
// or failed) are excluded as cold candidates: migrating demand onto
// dead capacity would strand the model's queue until admission control
// times it out. With no eligible target, cold == hot and the caller
// stops.
func (cl *Cluster) demandExtremes() (hot, cold int) {
	hotD, coldD := time.Duration(-1), time.Duration(-1)
	cold = -1
	for i, ctl := range cl.Ctls {
		d := ctl.TotalDemand()
		if hotD < 0 || d > hotD {
			hot, hotD = i, d
		}
		if ctl.SchedulableGPUs() == 0 {
			continue
		}
		if coldD < 0 || d < coldD {
			cold, coldD = i, d
		}
	}
	if cold < 0 {
		cold = hot
	}
	return hot, cold
}

// MigrateModel moves model ownership to shard toShard, carrying its
// queued requests across losslessly (no request is dropped, duplicated
// or answered twice) and unloading its GPU replicas from the old
// shard; the new shard's load-priority policy re-creates replicas as
// demand warrants. A model with in-flight actions is ErrModelBusy —
// run the clock and retry (the periodic rebalancer does exactly that).
func (cl *Cluster) MigrateModel(name string, toShard int) error {
	if toShard < 0 || toShard >= len(cl.Ctls) {
		return fmt.Errorf("%w: %d (have %d)", ErrNoSuchShard, toShard, len(cl.Ctls))
	}
	from, ok := cl.modelShard[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if from == toShard {
		return nil
	}
	zoo, reqs, err := cl.Ctls[from].ExtractModel(name)
	if err != nil {
		return err
	}
	// Re-point ownership before adoption so anything resolving the
	// owner from inside adoption (scheduler callbacks, cancels) sees
	// the new shard.
	cl.modelShard[name] = toShard
	cl.route.Store(name, toShard)
	cl.migrations++
	// Building flight-recorder traces follow their queued requests to
	// the adopting shard's recorder (migration already holds the
	// all-engines barrier this cross-shard write needs).
	if cl.flight != nil && len(reqs) > 0 {
		ids := make([]uint64, len(reqs))
		for i, r := range reqs {
			ids[i] = r.ID
		}
		cl.flight.Move(from, toShard, ids)
	}
	if err := cl.Ctls[toShard].AdoptModel(name, zoo, reqs); err != nil {
		// Adoption can only fail on a duplicate name within the target
		// controller, which the cluster-global registry rules out; a
		// failure here means control-plane state corruption.
		panic("core: MigrateModel adoption failed: " + err.Error())
	}
	return nil
}

// armRebalancer starts the periodic rebalance loop on the virtual
// clock. The loop re-arms itself after every pass, so the cadence is
// exactly RebalanceInterval regardless of how long each pass's
// migrations take in virtual time (they are instantaneous: migration
// is a control-plane operation, §5.1 — weights are already in every
// worker's host RAM).
func (cl *Cluster) armRebalancer() {
	var tick func()
	tick = func() {
		cl.RebalanceOnce()
		cl.Eng.After(cl.cfg.RebalanceInterval, tick)
	}
	cl.Eng.After(cl.cfg.RebalanceInterval, tick)
}
