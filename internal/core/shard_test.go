package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"clockwork/internal/modelzoo"
)

// newShardedCluster builds a Shards=N cluster with one ResNet50 copy
// per model name, using exact timing so tests are schedule-stable.
func newShardedCluster(t *testing.T, shards, workers, models int) (*Cluster, []string) {
	t.Helper()
	cl := NewCluster(ClusterConfig{
		Workers:       workers,
		GPUsPerWorker: 1,
		Shards:        shards,
		NewScheduler:  func() Scheduler { return NewClockworkScheduler() },
		NoNoise:       true,
		Seed:          1,
	})
	names := make([]string, models)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		if err := cl.RegisterModel(names[i], modelzoo.ResNet50()); err != nil {
			t.Fatal(err)
		}
	}
	return cl, names
}

// TestShardedClusterServes covers the tentpole end to end: a Shards=4
// cluster must answer every request exactly once, mint globally unique
// request IDs across shards, spread model ownership, and attribute
// per-shard metrics bins that sum to the totals.
func TestShardedClusterServes(t *testing.T) {
	const shards, workers, models, perModel = 4, 8, 16, 6
	cl, names := newShardedCluster(t, shards, workers, models)

	owned := make(map[int]int)
	for _, n := range names {
		s, ok := cl.ShardOf(n)
		if !ok {
			t.Fatalf("ShardOf(%q) unknown", n)
		}
		owned[s]++
	}
	if len(owned) < 2 {
		t.Fatalf("consistent hashing put all %d models on one shard: %v", models, owned)
	}

	responses := 0
	ids := make(map[uint64]bool)
	var handles []*Handle
	for round := 0; round < perModel; round++ {
		for _, n := range names {
			h, err := cl.SubmitRequest(SubmitSpec{Model: n, SLO: 250 * time.Millisecond},
				func(Response, time.Duration) { responses++ })
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		cl.RunFor(40 * time.Millisecond)
	}
	cl.RunFor(time.Second)

	total := models * perModel
	if responses != total {
		t.Fatalf("responses = %d, want %d", responses, total)
	}
	for _, h := range handles {
		if !h.Done() {
			t.Fatal("handle not done after drain")
		}
		if h.ID() == 0 {
			t.Fatal("request never reached a controller")
		}
		if ids[h.ID()] {
			t.Fatalf("duplicate request ID %d across shards", h.ID())
		}
		ids[h.ID()] = true
	}

	st := cl.Stats()
	if st.Requests != uint64(total) {
		t.Fatalf("aggregated stats.Requests = %d, want %d", st.Requests, total)
	}
	var binSum uint64
	for i := 0; i < cl.ShardCount(); i++ {
		binSum += cl.Metrics.ShardStats(i).Requests
	}
	if binSum != uint64(total) {
		t.Fatalf("per-shard bins sum to %d, want %d", binSum, total)
	}
}

// TestMigrationLosslessProperty is the rebalance safety property: under
// continuous load with migrations repeatedly forced between every
// engine slice, no request is lost (every submission gets a response)
// and none is duplicated (no handle's callback fires twice), and the
// cluster's aggregate accounting stays exact.
func TestMigrationLosslessProperty(t *testing.T) {
	const shards, workers, models = 4, 8, 12
	cl, names := newShardedCluster(t, shards, workers, models)

	perRequest := make(map[*Handle]int)
	var handles []*Handle
	submitted := 0
	submit := func(n string, slo time.Duration) {
		var h *Handle
		h2, err := cl.SubmitRequest(SubmitSpec{Model: n, SLO: slo}, func(Response, time.Duration) {
			perRequest[h]++
		})
		if err != nil {
			t.Fatal(err)
		}
		h = h2
		perRequest[h] = 0
		handles = append(handles, h)
		submitted++
	}

	for round := 0; round < 30; round++ {
		// A mix of comfortable and tight SLOs so migrations interleave
		// with successes, admission cancels and timeouts.
		for i, n := range names {
			slo := 200 * time.Millisecond
			if i%3 == 0 {
				slo = 8 * time.Millisecond
			}
			submit(n, slo)
		}
		// Force migrations aggressively: rotate every model one shard
		// forward (in-flight ones refuse with ErrModelBusy — that's
		// part of the property), then let the periodic rebalancer add
		// its own moves.
		for i, n := range names {
			to := (i + round) % shards
			if err := cl.MigrateModel(n, to); err != nil && !errors.Is(err, ErrModelBusy) {
				t.Fatalf("MigrateModel(%q, %d): %v", n, to, err)
			}
		}
		cl.RebalanceOnce()
		cl.RunFor(25 * time.Millisecond)
	}
	cl.RunFor(2 * time.Second) // drain

	for h, nCalls := range perRequest {
		if nCalls != 1 {
			t.Fatalf("request %d answered %d times (resp=%v)", h.ID(), nCalls, h.resp)
		}
		if !h.Done() {
			t.Fatalf("request %d has no outcome", h.ID())
		}
	}
	st := cl.Stats()
	if st.Requests != uint64(submitted) {
		t.Fatalf("stats.Requests = %d, want %d", st.Requests, submitted)
	}
	answered := st.Succeeded + st.Cancelled + st.Rejected + st.WorkerLost + st.Unregistered
	if answered != uint64(submitted) {
		t.Fatalf("outcome counters sum to %d, want %d (%+v)", answered, submitted, st)
	}
	if cl.Migrations() == 0 {
		t.Fatal("property test performed no migrations — not exercising the rebalance path")
	}
}

// TestShardedDeterminism: equal seeds must give byte-identical outcome
// streams on a sharded cluster, including the rebalancer's migrations.
func TestShardedDeterminism(t *testing.T) {
	run := func() (string, uint64) {
		cl := NewCluster(ClusterConfig{
			Workers:           4,
			GPUsPerWorker:     1,
			Shards:            2,
			NewScheduler:      func() Scheduler { return NewClockworkScheduler() },
			Seed:              7,
			RebalanceInterval: 20 * time.Millisecond,
			// Tight tolerance so the periodic rebalancer actually fires.
			RebalanceFactor: 1.01,
		})
		names := make([]string, 8)
		for i := range names {
			names[i] = fmt.Sprintf("d%d", i)
			if err := cl.RegisterModel(names[i], modelzoo.ResNet50()); err != nil {
				t.Fatal(err)
			}
		}
		var log string
		for round := 0; round < 20; round++ {
			// Skew the load: shard demand concentrates on few models, so
			// the rebalancer has real work.
			for i := 0; i < 6; i++ {
				n := names[i%2]
				if round%2 == 1 {
					n = names[2+i%3]
				}
				cl.Submit(n, 100*time.Millisecond, func(r Response, l time.Duration) {
					log += fmt.Sprintf("%d:%s:%v:%v\n", r.RequestID, r.Model, r.Success, l)
				})
			}
			cl.RunFor(10 * time.Millisecond)
		}
		cl.RunFor(time.Second)
		return log, cl.Migrations()
	}
	log1, mig1 := run()
	log2, mig2 := run()
	if log1 != log2 {
		t.Fatal("sharded outcome streams diverged across equal-seed runs")
	}
	if mig1 != mig2 {
		t.Fatalf("migration counts diverged: %d vs %d", mig1, mig2)
	}
}

// TestRebalancerMovesSkewedDemand drives all load at models owned by
// one shard and checks the periodic rebalancer migrates some of them
// toward the idle shards.
func TestRebalancerMovesSkewedDemand(t *testing.T) {
	cl := NewCluster(ClusterConfig{
		Workers:           4,
		GPUsPerWorker:     1,
		Shards:            2,
		NewScheduler:      func() Scheduler { return NewClockworkScheduler() },
		NoNoise:           true,
		Seed:              1,
		RebalanceInterval: 10 * time.Millisecond,
	})
	names := make([]string, 10)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		if err := cl.RegisterModel(names[i], modelzoo.ResNet50()); err != nil {
			t.Fatal(err)
		}
	}
	target, _ := cl.ShardOf(names[0])
	var hot []string
	for _, n := range names {
		if s, _ := cl.ShardOf(n); s == target {
			hot = append(hot, n)
		}
	}
	if len(hot) < 2 {
		t.Skipf("hash placed %d models on shard %d; need ≥2", len(hot), target)
	}
	// Keep the owning shard's queues deep so the periodic ticks see a
	// one-sided demand distribution.
	for round := 0; round < 30; round++ {
		for _, n := range hot {
			for i := 0; i < 20; i++ {
				cl.Submit(n, 2*time.Second, nil)
			}
		}
		cl.RunFor(10 * time.Millisecond)
	}
	if cl.Migrations() == 0 {
		t.Fatal("rebalancer never migrated despite one-sided demand")
	}
	moved := 0
	for _, n := range hot {
		if s, _ := cl.ShardOf(n); s != target {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no hot model moved off the overloaded shard")
	}
}

// TestRebalancerSkipsDeadShards: a shard whose workers are all drained
// has no schedulable capacity, so the rebalancer must never choose it
// as a migration target — and must evacuate the stranded models of a
// dead shard toward live ones.
func TestRebalancerSkipsDeadShards(t *testing.T) {
	cl := NewCluster(ClusterConfig{
		Workers:           4,
		GPUsPerWorker:     1,
		Shards:            2,
		NewScheduler:      func() Scheduler { return NewClockworkScheduler() },
		NoNoise:           true,
		Seed:              1,
		RebalanceInterval: 10 * time.Millisecond,
	})
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		if err := cl.RegisterModel(names[i], modelzoo.ResNet50()); err != nil {
			t.Fatal(err)
		}
	}

	// Kill shard 1's capacity (workers 1 and 3 stripe onto it).
	if err := cl.DrainWorker(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.DrainWorker(3); err != nil {
		t.Fatal(err)
	}

	// Deep one-sided demand on shard 0's models: without the capacity
	// check this is exactly the skew that would push models onto the
	// dead shard 1.
	var shard0 []string
	for _, n := range names {
		if s, _ := cl.ShardOf(n); s == 0 {
			shard0 = append(shard0, n)
		}
	}
	for round := 0; round < 30; round++ {
		for _, n := range shard0 {
			for i := 0; i < 20; i++ {
				cl.Submit(n, 2*time.Second, nil)
			}
		}
		cl.RunFor(10 * time.Millisecond)
	}
	for _, n := range shard0 {
		if s, _ := cl.ShardOf(n); s != 0 {
			t.Fatalf("model %s migrated onto the dead shard", n)
		}
	}

	// The reverse direction is the automatic failover: queued demand
	// stranded on the dead shard must migrate toward live capacity.
	// Let shard 0's backlog drain first so the skew points at shard 1.
	cl.RunFor(5 * time.Second)
	var shard1 []string
	for _, n := range names {
		if s, _ := cl.ShardOf(n); s == 1 {
			shard1 = append(shard1, n)
		}
	}
	if len(shard1) == 0 {
		t.Skip("hash placed no model on shard 1")
	}
	for _, n := range shard1 {
		for i := 0; i < 20; i++ {
			cl.Submit(n, 2*time.Second, nil)
		}
	}
	cl.RunFor(100 * time.Millisecond)
	evacuated := 0
	for _, n := range shard1 {
		if s, _ := cl.ShardOf(n); s == 0 {
			evacuated++
		}
	}
	if evacuated == 0 {
		t.Fatal("rebalancer left every stranded model on the dead shard")
	}
}

// TestShardGeometryValidation: more shards than workers (a shard with
// zero GPUs could never serve its models) and a shared scheduler
// instance across shards are construction-time errors.
func TestShardGeometryValidation(t *testing.T) {
	if _, err := NewClusterWithPolicy("", ClusterConfig{Workers: 2, Shards: 4}); err == nil {
		t.Fatal("want error for Shards > Workers")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("want panic for single Scheduler instance with Shards > 1")
			}
		}()
		NewCluster(ClusterConfig{
			Workers: 4, Shards: 2,
			Scheduler: NewClockworkScheduler(),
		})
	}()
}

// TestShardedControlPlaneRouting: worker lifecycle and model retirement
// must route to the owning shard on a sharded cluster.
func TestShardedControlPlaneRouting(t *testing.T) {
	cl, names := newShardedCluster(t, 2, 4, 4)

	// Workers stripe across shards by id mod Shards.
	if err := cl.DrainWorker(1); err != nil {
		t.Fatal(err)
	}
	if st, err := cl.WorkerStateOf(1); err != nil || st != WorkerDraining {
		t.Fatalf("WorkerStateOf(1) = %v, %v", st, err)
	}
	if err := cl.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	if st, _ := cl.WorkerStateOf(2); st != WorkerFailed {
		t.Fatalf("worker 2 state = %v, want failed", st)
	}
	if err := cl.DrainWorker(99); !errors.Is(err, ErrNoSuchWorker) {
		t.Fatalf("want ErrNoSuchWorker, got %v", err)
	}

	// Unregister routes to the owner and scrubs cluster bookkeeping.
	if err := cl.UnregisterModel(names[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := cl.ShardOf(names[0]); ok {
		t.Fatal("unregistered model still owned")
	}
	if err := cl.Submit(names[0], time.Second, nil); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel after unregister, got %v", err)
	}
	// And the remaining models still serve.
	okResp := false
	cl.Submit(names[1], time.Second, func(r Response, _ time.Duration) { okResp = r.Success })
	cl.RunFor(2 * time.Second)
	if !okResp {
		t.Fatal("surviving model failed to serve after control-plane churn")
	}
}

// TestMigrateCarriesQueuedCancel: a request that migrates while queued
// can still be cancelled through its handle (routing follows the
// model), and a cancelled/migrated request is answered exactly once.
// The setup is the natural operational story for manual migration:
// the owning shard's only worker is drained, stranding the queued
// request, and migration hands the model to a shard with capacity.
func TestMigrateCarriesQueuedCancel(t *testing.T) {
	cl, names := newShardedCluster(t, 2, 2, 4)
	victim := names[0]
	from, _ := cl.ShardOf(victim)
	// Worker IDs stripe by id mod Shards, so worker `from` is the
	// owning shard's only worker; draining it strands the model's
	// queue with no schedulable GPU (and no in-flight actions, so the
	// model stays migratable).
	if err := cl.DrainWorker(from); err != nil {
		t.Fatal(err)
	}
	calls := 0
	var resp Response
	h, err := cl.SubmitRequest(SubmitSpec{Model: victim, SLO: time.Minute},
		func(r Response, _ time.Duration) { calls++; resp = r })
	if err != nil {
		t.Fatal(err)
	}
	cl.RunFor(10 * time.Millisecond) // arrives; queued, unservable
	if h.Done() {
		t.Fatal("request answered with the owning shard drained")
	}
	to := (from + 1) % 2
	if err := cl.MigrateModel(victim, to); err != nil {
		t.Fatal(err)
	}
	if s, _ := cl.ShardOf(victim); s != to {
		t.Fatalf("owner = %d, want %d", s, to)
	}
	if h.Done() {
		t.Fatal("queued request answered by migration itself")
	}
	if !h.Cancel() {
		t.Fatal("post-migration cancel did not take effect")
	}
	cl.RunFor(time.Second)
	if calls != 1 {
		t.Fatalf("request answered %d times", calls)
	}
	if resp.Success || resp.Reason != ReasonCancelled {
		t.Fatalf("want cancelled outcome, got %+v", resp)
	}

	// The migrated model now serves on its new shard.
	served := false
	cl.Submit(victim, time.Second, func(r Response, _ time.Duration) { served = r.Success })
	cl.RunFor(2 * time.Second)
	if !served {
		t.Fatal("migrated model failed to serve on its new shard")
	}
}
