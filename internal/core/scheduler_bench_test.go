package core

import (
	"fmt"
	"testing"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// nopSched lets benchmarks build controller state without a scheduler
// reacting to it.
type nopSched struct{}

func (nopSched) Attach(*Controller)     {}
func (nopSched) OnRequest(*Request)     {}
func (nopSched) OnResult(action.Result) {}
func (nopSched) OnCancel(*Request)      {}

// benchState builds a controller with nModels active models (reqsPer
// queued requests each), the first `resident` of them GPU-resident, and
// a Clockwork scheduler attached for direct decision calls.
func benchState(nModels, resident, reqsPer int) (*ClockworkScheduler, *GPUMirror, simclock.Time) {
	eng := simclock.NewEngine()
	ctl := NewController(eng, Config{}, nopSched{})
	zoo := modelzoo.ResNet50()
	pageSize := int64(16 * 1024 * 1024)
	cacheBytes := int64(resident+8) * int64(zoo.Pages(pageSize)) * pageSize
	ctl.AddWorker(0, 1, cacheBytes, pageSize, func(*action.Action, int64) {})
	g := ctl.GPUs()[0]

	names := make([]string, nModels)
	for i := range names {
		names[i] = fmt.Sprintf("bench-m%d", i)
		ctl.RegisterModel(names[i], zoo)
	}
	now := eng.Now()
	for i := 0; i < resident; i++ {
		mi, _ := ctl.Model(names[i])
		a := ctl.SendLoad(g, mi, now, now.Add(time.Second))
		ctl.HandleResult(action.Result{
			ActionID: a.ID, Type: action.Load, Status: action.Success,
			WorkerID: 0, GPU: 0, Model: names[i],
			Duration:           a.ExpectedDuration,
			ExpectedDuration:   a.ExpectedDuration,
			ExpectedCompletion: a.ExpectedCompletion,
			Start:              a.Earliest, End: a.ExpectedCompletion,
		})
	}
	for _, n := range names {
		for j := 0; j < reqsPer; j++ {
			ctl.Submit(n, 100*time.Millisecond, nil)
		}
	}
	s := NewClockworkScheduler()
	s.Attach(ctl)
	return s, g, eng.Now()
}

// BenchmarkSchedulerPass measures one scheduling decision — the strategy
// pick plus the load pick for one GPU — against the number of active
// models, for the indexed hot path and the seed's linear scans. The
// linear load scan rebuilds ℓ_g over every active model per call, which
// is the term that collapses at Fig 8 scale (thousands of models).
func BenchmarkSchedulerPass(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		resident := 100
		if n < resident {
			resident = n
		}
		b.Run(fmt.Sprintf("indexed-%d", n), func(b *testing.B) {
			s, g, now := benchState(n, resident, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.bestStrategy(g, now)
				s.bestLoad(g, now)
			}
		})
		b.Run(fmt.Sprintf("linear-%d", n), func(b *testing.B) {
			s, g, now := benchState(n, resident, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.bestStrategyLinear(g, now)
				s.bestLoadLinear(g, now)
			}
		})
	}
}

// BenchmarkReindexModel measures the incremental index-maintenance cost
// paid per controller event (the price of the fast pass).
func BenchmarkReindexModel(b *testing.B) {
	s, g, _ := benchState(1000, 100, 4)
	_ = g
	mi, _ := s.c.Model("bench-m50")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.c.reindexModel(mi)
	}
}
