package core

import (
	"errors"
	"testing"
	"time"

	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

func testCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	cfg.NoNoise = true
	cl := NewCluster(cfg)
	return cl
}

func TestSingleRequestColdStart(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	var resp Response
	var lat time.Duration
	cl.Submit("m", 100*time.Millisecond, func(r Response, l time.Duration) { resp, lat = r, l })
	cl.RunFor(200 * time.Millisecond)

	if !resp.Success {
		t.Fatalf("request failed: %v", resp)
	}
	if !resp.ColdStart {
		t.Fatal("first request must be a cold start")
	}
	// Cold start: input + LOAD (8.33ms) + EXEC (2.77ms) + output +
	// network hops; the paper's round trip is ~12ms for this path.
	if lat < 11*time.Millisecond || lat > 16*time.Millisecond {
		t.Fatalf("cold-start latency = %v, want ≈11–16ms", lat)
	}
}

func TestSecondRequestIsWarm(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	var lats []time.Duration
	var colds []bool
	submit := func() {
		cl.Submit("m", 100*time.Millisecond, func(r Response, l time.Duration) {
			lats = append(lats, l)
			colds = append(colds, r.ColdStart)
		})
	}
	submit()
	cl.RunFor(100 * time.Millisecond)
	submit()
	cl.RunFor(100 * time.Millisecond)

	if len(lats) != 2 {
		t.Fatalf("got %d responses", len(lats))
	}
	if colds[1] {
		t.Fatal("second request should be warm")
	}
	if lats[1] >= lats[0] {
		t.Fatalf("warm latency %v should beat cold %v", lats[1], lats[0])
	}
	// Warm: exec 2.77ms + IO/network ≈ 3–5ms.
	if lats[1] > 6*time.Millisecond {
		t.Fatalf("warm latency = %v, want < 6ms", lats[1])
	}
}

func TestUnmeetableSLOCancelledInAdvance(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	var resp Response
	got := false
	// 1ms SLO < batch-1 exec (2.77ms): provably unmeetable.
	cl.Submit("m", time.Millisecond, func(r Response, _ time.Duration) { resp, got = r, true })
	cl.RunFor(50 * time.Millisecond)

	if !got {
		t.Fatal("no response")
	}
	if resp.Success || resp.Reason != ReasonCancelled {
		t.Fatalf("want cancelled, got %v", resp)
	}
	st := cl.Ctl.Stats()
	if st.Cancelled != 1 || st.ActionsInfer != 0 {
		t.Fatalf("stats: %+v — no fruitless work should be scheduled", st)
	}
}

func TestBatchingUnderBurst(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	// Warm the model.
	cl.Submit("m", 100*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond)

	// A burst of 16 simultaneous requests with latitude to batch.
	batches := make(map[int]int)
	for i := 0; i < 16; i++ {
		cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				batches[r.Batch]++
			}
		})
	}
	cl.RunFor(200 * time.Millisecond)

	total := 0
	sawBatch := false
	for b, n := range batches {
		total += n
		if b > 1 {
			sawBatch = true
		}
	}
	if total != 16 {
		t.Fatalf("only %d/16 succeeded (batches: %v)", total, batches)
	}
	if !sawBatch {
		t.Fatalf("no batching under a 16-wide burst: %v", batches)
	}
}

func TestAllSuccessesMeetSLO(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	const slo = 50 * time.Millisecond
	violations := 0
	responses := 0
	var submitLoop func(i int)
	submitLoop = func(i int) {
		if i >= 500 {
			return
		}
		cl.Submit("m", slo, func(r Response, l time.Duration) {
			responses++
			if r.Success && l > slo {
				violations++
			}
		})
		cl.Eng.After(2*time.Millisecond, func() { submitLoop(i + 1) })
	}
	submitLoop(0)
	cl.RunFor(5 * time.Second)

	if responses != 500 {
		t.Fatalf("responses = %d", responses)
	}
	if violations != 0 {
		t.Fatalf("%d successful responses exceeded the SLO", violations)
	}
	// Under this modest load (500 r/s worth of capacity at batch 1),
	// nearly everything should succeed.
	st := cl.Ctl.Stats()
	if st.Succeeded < 490 {
		t.Fatalf("succeeded = %d/500 (stats %+v)", st.Succeeded, st)
	}
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	// Page cache fits one ResNet50 (7 pages); two models alternate.
	cl := testCluster(t, ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		PageCacheBytes: 7 * 16 * 1024 * 1024,
	})
	cl.RegisterModel("a", modelzoo.ResNet50())
	cl.RegisterModel("b", modelzoo.ResNet50())

	okA, okB := 0, 0
	for i := 0; i < 4; i++ {
		model, cnt := "a", &okA
		if i%2 == 1 {
			model, cnt = "b", &okB
		}
		cl.Submit(model, 100*time.Millisecond, func(r Response, _ time.Duration) {
			if r.Success {
				*cnt++
			}
		})
		cl.RunFor(100 * time.Millisecond)
	}
	if okA != 2 || okB != 2 {
		t.Fatalf("okA=%d okB=%d (want 2,2)", okA, okB)
	}
	st := cl.Ctl.Stats()
	if st.ActionsUnload < 3 {
		t.Fatalf("expected ≥3 UNLOADs under pressure, got %d", st.ActionsUnload)
	}
	if st.LoadFailures != 0 {
		t.Fatalf("mirror diverged: %d load failures", st.LoadFailures)
	}
}

func TestMirrorMatchesWorkerAtQuiescence(t *testing.T) {
	cl := testCluster(t, ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		PageCacheBytes: 20 * 16 * 1024 * 1024,
	})
	names, _ := cl.RegisterCopies("resnet18_v2", modelzoo.MustByName("resnet18_v2"), 8)
	for round := 0; round < 5; round++ {
		for _, n := range names {
			cl.Submit(n, 100*time.Millisecond, nil)
		}
		cl.RunFor(300 * time.Millisecond)
	}
	cl.RunFor(time.Second)

	mirror := cl.Ctl.GPUs()[0]
	real := cl.Workers[0].GPU(0).Pages
	if mirror.Pages.UsedPages() != real.UsedPages() {
		t.Fatalf("mirror used=%d, worker used=%d", mirror.Pages.UsedPages(), real.UsedPages())
	}
	for _, k := range mirror.Pages.Keys() {
		if !real.Has(k) {
			t.Fatalf("mirror thinks %q resident; worker disagrees", k)
		}
	}
	for _, k := range real.Keys() {
		if !mirror.Pages.Has(k) {
			t.Fatalf("worker holds %q; mirror disagrees", k)
		}
	}
}

func TestLoadBalanceAcrossWorkers(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 2, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())

	// Saturating demand on one model should eventually replicate it.
	done := 0
	var loop func()
	loop = func() {
		for i := 0; i < 8; i++ {
			cl.Submit("m", 20*time.Millisecond, func(r Response, _ time.Duration) {
				if r.Success {
					done++
				}
			})
		}
		if cl.Eng.Now() < simclock.Time(2*time.Second) {
			cl.Eng.After(2*time.Millisecond, loop)
		}
	}
	loop()
	cl.RunFor(3 * time.Second)

	mi, _ := cl.Ctl.Model("m")
	if len(mi.ResidentOn()) < 2 {
		t.Fatalf("model should be replicated to both GPUs under saturation, resident on %d", len(mi.ResidentOn()))
	}
	if done == 0 {
		t.Fatal("nothing succeeded")
	}
}

func TestPredictionErrorsAreTiny(t *testing.T) {
	// With the default noise model, Fig 9 shows p99 INFER prediction
	// error ≈ 250µs; without noise, errors should be ≈0 once profiles
	// have real measurements.
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())
	for i := 0; i < 50; i++ {
		cl.Submit("m", 100*time.Millisecond, nil)
		cl.RunFor(20 * time.Millisecond)
	}
	if cl.Ctl.InferDuration.Count() < 50 {
		t.Fatalf("tracked %d infer predictions", cl.Ctl.InferDuration.Count())
	}
	if over := cl.Ctl.InferDuration.Over.Max(); over > time.Millisecond {
		t.Fatalf("overprediction max %v without noise", over)
	}
	if under := cl.Ctl.InferDuration.Under.Max(); under > time.Millisecond {
		t.Fatalf("underprediction max %v without noise", under)
	}
}

func TestStatsConservation(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	cl.RegisterModel("m", modelzoo.ResNet50())
	for i := 0; i < 100; i++ {
		slo := 50 * time.Millisecond
		if i%10 == 0 {
			slo = time.Millisecond // unmeetable
		}
		cl.Submit("m", slo, nil)
		cl.RunFor(5 * time.Millisecond)
	}
	cl.RunFor(time.Second)
	st := cl.Ctl.Stats()
	if st.Requests != 100 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Succeeded+st.Cancelled+st.Rejected != st.Requests {
		t.Fatalf("outcomes don't sum: %+v", st)
	}
	if st.Cancelled < 10 {
		t.Fatalf("cancelled = %d, want ≥10", st.Cancelled)
	}
}

func TestMetricsRecorded(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1, MetricsInterval: time.Second})
	cl.RegisterModel("m", modelzoo.ResNet50())
	for i := 0; i < 10; i++ {
		cl.Submit("m", 100*time.Millisecond, nil)
		cl.RunFor(10 * time.Millisecond)
	}
	cl.RunFor(time.Second)
	m := cl.Metrics
	if m.LatencyAll.Count() != 10 {
		t.Fatalf("latency count = %d", m.LatencyAll.Count())
	}
	if m.Goodput.TotalCount() != 10 {
		t.Fatalf("goodput = %v", m.Goodput.TotalCount())
	}
	if m.GPUUtilFraction(0) <= 0 {
		t.Fatal("GPU utilisation not recorded")
	}
	if m.PCIUtilFraction(0) <= 0 {
		t.Fatal("PCIe utilisation not recorded")
	}
	if m.ColdModels(0) != 1 {
		t.Fatalf("cold models = %d, want 1", m.ColdModels(0))
	}
	if m.Success.Value() != 10 || m.Failures.Value() != 0 {
		t.Fatal("success/failure counters wrong")
	}
}

func TestZeroLengthInputsMode(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1, ZeroLengthInputs: true})
	cl.RegisterModel("m", modelzoo.ResNet50())
	ok := false
	cl.Submit("m", 100*time.Millisecond, func(r Response, _ time.Duration) { ok = r.Success })
	cl.RunFor(100 * time.Millisecond)
	if !ok {
		t.Fatal("zero-length input request failed")
	}
}

func TestRegisterCopiesNames(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	names, _ := cl.RegisterCopies("googlenet", modelzoo.MustByName("googlenet"), 3)
	if len(names) != 3 || names[0] != "googlenet#0" || names[2] != "googlenet#2" {
		t.Fatalf("names = %v", names)
	}
	if cl.Ctl.ModelCount() != 3 {
		t.Fatal("controller registry wrong")
	}
	if cl.Workers[0].ModelCount() != 3 {
		t.Fatal("worker registry wrong")
	}
}

func TestSubmitUnknownModelTypedError(t *testing.T) {
	cl := testCluster(t, ClusterConfig{Workers: 1, GPUsPerWorker: 1})
	if err := cl.Submit("ghost", time.Second, nil); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
}
