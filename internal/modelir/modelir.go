package modelir

import (
	"fmt"
)

// Graph is an abstract DNN: an input shape and a sequence of layers
// (DNNs have no data-dependent control flow — §2 — so a linear sequence
// with explicit shapes is faithful for cost purposes).
type Graph struct {
	Name string
	// Input is the per-sample input tensor shape (channels, height,
	// width) — batch is added at compile time.
	Input Shape
	// Layers execute in order.
	Layers []Layer
}

// Shape is a (channels, height, width) tensor shape. Fully-connected
// activations use (features, 1, 1).
type Shape struct {
	C, H, W int
}

// Elems returns the element count.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

func (s Shape) valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Layer is one operator. Implementations compute their output shape,
// parameter count, and FLOPs per sample.
type Layer interface {
	// Name identifies the operator type.
	Name() string
	// OutShape returns the output shape for the given input shape, or
	// an error if the shapes are incompatible.
	OutShape(in Shape) (Shape, error)
	// Params returns the number of learned parameters.
	Params(in Shape) int64
	// FLOPs returns multiply-accumulate operations per sample.
	FLOPs(in Shape) int64
}

// Conv2D is a 2D convolution with square kernels and "same" padding.
type Conv2D struct {
	OutChannels int
	Kernel      int
	Stride      int
}

// Name implements Layer.
func (l Conv2D) Name() string { return "conv2d" }

// OutShape implements Layer.
func (l Conv2D) OutShape(in Shape) (Shape, error) {
	if l.OutChannels <= 0 || l.Kernel <= 0 {
		return Shape{}, fmt.Errorf("modelir: conv2d needs positive channels/kernel, got %+v", l)
	}
	stride := l.Stride
	if stride <= 0 {
		stride = 1
	}
	out := Shape{C: l.OutChannels, H: (in.H + stride - 1) / stride, W: (in.W + stride - 1) / stride}
	if !out.valid() {
		return Shape{}, fmt.Errorf("modelir: conv2d degenerate output %v from input %v", out, in)
	}
	return out, nil
}

// Params implements Layer.
func (l Conv2D) Params(in Shape) int64 {
	return int64(l.OutChannels)*int64(in.C)*int64(l.Kernel)*int64(l.Kernel) + int64(l.OutChannels)
}

// FLOPs implements Layer.
func (l Conv2D) FLOPs(in Shape) int64 {
	out, err := l.OutShape(in)
	if err != nil {
		return 0
	}
	perOutput := int64(in.C) * int64(l.Kernel) * int64(l.Kernel)
	return out.Elems() * perOutput
}

// Pool2D is max/avg pooling (cost-equivalent for our purposes).
type Pool2D struct {
	Window int
}

// Name implements Layer.
func (l Pool2D) Name() string { return "pool2d" }

// OutShape implements Layer.
func (l Pool2D) OutShape(in Shape) (Shape, error) {
	if l.Window <= 1 {
		return Shape{}, fmt.Errorf("modelir: pool2d needs window > 1, got %d", l.Window)
	}
	out := Shape{C: in.C, H: in.H / l.Window, W: in.W / l.Window}
	if !out.valid() {
		return Shape{}, fmt.Errorf("modelir: pool2d window %d too large for input %v", l.Window, in)
	}
	return out, nil
}

// Params implements Layer.
func (l Pool2D) Params(Shape) int64 { return 0 }

// FLOPs implements Layer.
func (l Pool2D) FLOPs(in Shape) int64 { return in.Elems() }

// Activation is an elementwise nonlinearity (ReLU etc.).
type Activation struct{}

// Name implements Layer.
func (Activation) Name() string { return "activation" }

// OutShape implements Layer.
func (Activation) OutShape(in Shape) (Shape, error) { return in, nil }

// Params implements Layer.
func (Activation) Params(Shape) int64 { return 0 }

// FLOPs implements Layer.
func (Activation) FLOPs(in Shape) int64 { return in.Elems() }

// Dense is a fully connected layer over the flattened input.
type Dense struct {
	Out int
}

// Name implements Layer.
func (l Dense) Name() string { return "dense" }

// OutShape implements Layer.
func (l Dense) OutShape(in Shape) (Shape, error) {
	if l.Out <= 0 {
		return Shape{}, fmt.Errorf("modelir: dense needs positive width, got %d", l.Out)
	}
	return Shape{C: l.Out, H: 1, W: 1}, nil
}

// Params implements Layer.
func (l Dense) Params(in Shape) int64 { return in.Elems()*int64(l.Out) + int64(l.Out) }

// FLOPs implements Layer.
func (l Dense) FLOPs(in Shape) int64 { return in.Elems() * int64(l.Out) }

// GlobalPool collapses spatial dimensions.
type GlobalPool struct{}

// Name implements Layer.
func (GlobalPool) Name() string { return "globalpool" }

// OutShape implements Layer.
func (GlobalPool) OutShape(in Shape) (Shape, error) { return Shape{C: in.C, H: 1, W: 1}, nil }

// Params implements Layer.
func (GlobalPool) Params(Shape) int64 { return 0 }

// FLOPs implements Layer.
func (GlobalPool) FLOPs(in Shape) int64 { return in.Elems() }

// Check validates the graph: every layer must accept its predecessor's
// output shape. It returns the output shape.
func (g *Graph) Check() (Shape, error) {
	if g.Name == "" {
		return Shape{}, fmt.Errorf("modelir: graph needs a name")
	}
	if !g.Input.valid() {
		return Shape{}, fmt.Errorf("modelir: invalid input shape %v", g.Input)
	}
	if len(g.Layers) == 0 {
		return Shape{}, fmt.Errorf("modelir: graph %q has no layers", g.Name)
	}
	shape := g.Input
	for i, l := range g.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return Shape{}, fmt.Errorf("modelir: %q layer %d (%s): %w", g.Name, i, l.Name(), err)
		}
		shape = out
	}
	return shape, nil
}

// TotalParams sums learned parameters across layers.
func (g *Graph) TotalParams() (int64, error) {
	if _, err := g.Check(); err != nil {
		return 0, err
	}
	var total int64
	shape := g.Input
	for _, l := range g.Layers {
		total += l.Params(shape)
		shape, _ = l.OutShape(shape)
	}
	return total, nil
}

// TotalFLOPs sums per-sample multiply-accumulates across layers.
func (g *Graph) TotalFLOPs() (int64, error) {
	if _, err := g.Check(); err != nil {
		return 0, err
	}
	var total int64
	shape := g.Input
	for _, l := range g.Layers {
		total += l.FLOPs(shape)
		shape, _ = l.OutShape(shape)
	}
	return total, nil
}

// WorkspaceBytes returns the peak intermediate-activation footprint
// (input + output of the widest layer, float32) — the §5.1 memory
// metadata that sizes the runtime workspace.
func (g *Graph) WorkspaceBytes(batch int) (int64, error) {
	if _, err := g.Check(); err != nil {
		return 0, err
	}
	if batch < 1 {
		return 0, fmt.Errorf("modelir: batch %d < 1", batch)
	}
	peak := int64(0)
	shape := g.Input
	for _, l := range g.Layers {
		out, _ := l.OutShape(shape)
		if need := (shape.Elems() + out.Elems()) * 4; need > peak {
			peak = need
		}
		shape = out
	}
	return peak * int64(batch), nil
}
