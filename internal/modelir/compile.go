package modelir

import (
	"fmt"
	"math"
	"sort"

	"clockwork/internal/modelzoo"
)

// Calibration converts graph statistics into execution-time estimates.
// The zero value is unusable; use DefaultCalibration (fit against the
// measured Appendix A corpus) or Calibrate against a custom corpus.
type Calibration struct {
	// SecondsPerFLOP is the effective per-MAC cost at batch 1 —
	// far above the GPU's peak rate because small batches underutilise
	// the device.
	SecondsPerFLOP float64
	// BatchEfficiency(b) scales per-sample cost at batch size b
	// relative to batch 1 (≤ 1; larger batches amortise better).
	BatchEfficiency map[int]float64
	// BytesPerSecond prices the host→GPU weight transfer.
	BytesPerSecond float64
	// LaunchOverhead is the fixed per-inference kernel launch cost.
	LaunchOverhead float64 // seconds
}

// DefaultCalibration is fit against the embedded Appendix A corpus at
// package init.
var DefaultCalibration = calibrateFromZoo()

// flopsOfZooModel approximates a catalogue model's per-sample MACs from
// its parameter count: for the CNNs in the corpus, FLOPs ≈ params ×
// spatial reuse; the reuse factor is folded into SecondsPerFLOP by the
// fit, so using params directly keeps the calibration self-consistent.
func flopsOfZooModel(m *modelzoo.Model) float64 {
	return m.WeightsMB * 1024 * 1024 / 4 // float32 params
}

func calibrateFromZoo() Calibration {
	models := modelzoo.All()
	// Fit SecondsPerFLOP as the median of exec(B1)/params.
	ratios := make([]float64, 0, len(models))
	for _, m := range models {
		ratios = append(ratios, m.ExecMs[0]/1000/flopsOfZooModel(m))
	}
	sort.Float64s(ratios)
	perFLOP := ratios[len(ratios)/2]

	// Fit batch efficiency as the median of exec(Bk)/(k·exec(B1)).
	eff := map[int]float64{1: 1.0}
	for i, b := range modelzoo.BatchSizes {
		if b == 1 {
			continue
		}
		es := make([]float64, 0, len(models))
		for _, m := range models {
			es = append(es, m.ExecMs[i]/(float64(b)*m.ExecMs[0]))
		}
		sort.Float64s(es)
		eff[b] = es[len(es)/2]
	}

	// Fit transfer bandwidth as the median of weights/transfer.
	bws := make([]float64, 0, len(models))
	for _, m := range models {
		bws = append(bws, m.WeightsMB*1024*1024/(m.TransferMs/1000))
	}
	sort.Float64s(bws)

	return Calibration{
		SecondsPerFLOP:  perFLOP,
		BatchEfficiency: eff,
		BytesPerSecond:  bws[len(bws)/2],
		LaunchOverhead:  50e-6,
	}
}

// efficiencyAt interpolates batch efficiency for arbitrary batch sizes.
func (c Calibration) efficiencyAt(batch int) float64 {
	if e, ok := c.BatchEfficiency[batch]; ok {
		return e
	}
	// Interpolate in log-batch space between compiled points.
	lo, hi := 1, modelzoo.MaxBatch
	for _, b := range modelzoo.BatchSizes {
		if b < batch && b > lo {
			lo = b
		}
		if b > batch && b < hi {
			hi = b
		}
	}
	if batch >= modelzoo.MaxBatch {
		return c.BatchEfficiency[modelzoo.MaxBatch]
	}
	el, eh := c.BatchEfficiency[lo], c.BatchEfficiency[hi]
	frac := (math.Log(float64(batch)) - math.Log(float64(lo))) /
		(math.Log(float64(hi)) - math.Log(float64(lo)))
	return el + frac*(eh-el)
}

// Compile lowers a graph into a servable model: the §5.1 postprocessing
// step that produces the weights blob size, per-batch kernels (here:
// per-batch execution profiles), memory metadata, and profiling seed.
func Compile(g *Graph, cal Calibration) (*modelzoo.Model, error) {
	out, err := g.Check()
	if err != nil {
		return nil, err
	}
	params, err := g.TotalParams()
	if err != nil {
		return nil, err
	}
	if params <= 0 {
		return nil, fmt.Errorf("modelir: %q has no parameters; nothing to serve", g.Name)
	}
	if cal.SecondsPerFLOP <= 0 || cal.BytesPerSecond <= 0 {
		return nil, fmt.Errorf("modelir: invalid calibration %+v", cal)
	}

	weightsBytes := float64(params) * 4 // float32
	m := &modelzoo.Model{
		Name:       g.Name,
		Family:     "custom",
		InputKB:    float64(g.Input.Elems()) * 4 / 1024,
		OutputKB:   float64(out.Elems()) * 4 / 1024,
		WeightsMB:  weightsBytes / 1024 / 1024,
		TransferMs: weightsBytes / cal.BytesPerSecond * 1000,
	}
	// Profile the kernels per compiled batch size. The calibrated
	// per-FLOP rate was fit on params (see flopsOfZooModel), so the
	// estimate uses params for corpus consistency.
	base := float64(params)*cal.SecondsPerFLOP + cal.LaunchOverhead
	for i, b := range modelzoo.BatchSizes {
		m.ExecMs[i] = base * float64(b) * cal.efficiencyAt(b) * 1000
	}
	return m, nil
}

// MustCompile is Compile that panics on error, for declarative setup.
func MustCompile(g *Graph, cal Calibration) *modelzoo.Model {
	m, err := Compile(g, cal)
	if err != nil {
		panic(err)
	}
	return m
}
