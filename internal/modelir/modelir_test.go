package modelir

import (
	"math"
	"testing"
	"testing/quick"

	"clockwork/internal/modelzoo"
)

// tinyCNN is a small but legal network used across tests.
func tinyCNN() *Graph {
	return &Graph{
		Name:  "tiny-cnn",
		Input: Shape{C: 3, H: 224, W: 224},
		Layers: []Layer{
			Conv2D{OutChannels: 64, Kernel: 7, Stride: 2},
			Activation{},
			Pool2D{Window: 2},
			Conv2D{OutChannels: 128, Kernel: 3},
			Activation{},
			GlobalPool{},
			Dense{Out: 1000},
		},
	}
}

func TestGraphCheckValid(t *testing.T) {
	out, err := tinyCNN().Check()
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 1000, H: 1, W: 1}) {
		t.Fatalf("output shape = %v", out)
	}
}

func TestGraphCheckRejectsBadGraphs(t *testing.T) {
	cases := map[string]*Graph{
		"no name":     {Input: Shape{3, 8, 8}, Layers: []Layer{Activation{}}},
		"bad input":   {Name: "x", Input: Shape{0, 8, 8}, Layers: []Layer{Activation{}}},
		"no layers":   {Name: "x", Input: Shape{3, 8, 8}},
		"bad conv":    {Name: "x", Input: Shape{3, 8, 8}, Layers: []Layer{Conv2D{}}},
		"pool window": {Name: "x", Input: Shape{3, 8, 8}, Layers: []Layer{Pool2D{Window: 1}}},
		"pool large":  {Name: "x", Input: Shape{3, 8, 8}, Layers: []Layer{Pool2D{Window: 16}}},
		"bad dense":   {Name: "x", Input: Shape{3, 8, 8}, Layers: []Layer{Dense{}}},
	}
	for name, g := range cases {
		if _, err := g.Check(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{C: 3, H: 4, W: 5}
	if s.Elems() != 60 {
		t.Fatal("Elems wrong")
	}
	if s.String() != "3x4x5" {
		t.Fatalf("String: %q", s.String())
	}
}

func TestLayerAccounting(t *testing.T) {
	in := Shape{C: 3, H: 32, W: 32}
	conv := Conv2D{OutChannels: 8, Kernel: 3}
	if p := conv.Params(in); p != 3*8*9+8 {
		t.Fatalf("conv params = %d", p)
	}
	out, _ := conv.OutShape(in)
	if out != (Shape{C: 8, H: 32, W: 32}) {
		t.Fatalf("conv out = %v", out)
	}
	if f := conv.FLOPs(in); f != out.Elems()*3*9 {
		t.Fatalf("conv flops = %d", f)
	}
	dense := Dense{Out: 10}
	if p := dense.Params(in); p != 3*32*32*10+10 {
		t.Fatalf("dense params = %d", p)
	}
	if (Activation{}).Params(in) != 0 || (GlobalPool{}).Params(in) != 0 || (Pool2D{Window: 2}).Params(in) != 0 {
		t.Fatal("parameterless layers report params")
	}
	for _, l := range []Layer{Conv2D{OutChannels: 1, Kernel: 1}, Pool2D{Window: 2}, Activation{}, Dense{Out: 1}, GlobalPool{}} {
		if l.Name() == "" {
			t.Fatal("unnamed layer")
		}
	}
}

func TestTotalsAndWorkspace(t *testing.T) {
	g := tinyCNN()
	params, err := g.TotalParams()
	if err != nil || params <= 0 {
		t.Fatalf("params=%d err=%v", params, err)
	}
	flops, err := g.TotalFLOPs()
	if err != nil || flops <= params {
		t.Fatalf("flops=%d (should exceed params for a CNN)", flops)
	}
	ws1, err := g.WorkspaceBytes(1)
	if err != nil || ws1 <= 0 {
		t.Fatalf("ws=%d err=%v", ws1, err)
	}
	ws4, _ := g.WorkspaceBytes(4)
	if ws4 != 4*ws1 {
		t.Fatal("workspace must scale with batch")
	}
	if _, err := g.WorkspaceBytes(0); err == nil {
		t.Fatal("batch 0 should error")
	}
	bad := &Graph{}
	if _, err := bad.TotalParams(); err == nil {
		t.Fatal("invalid graph should error")
	}
	if _, err := bad.TotalFLOPs(); err == nil {
		t.Fatal("invalid graph should error")
	}
	if _, err := bad.WorkspaceBytes(1); err == nil {
		t.Fatal("invalid graph should error")
	}
}

func TestCompileProducesServableModel(t *testing.T) {
	m, err := Compile(tinyCNN(), DefaultCalibration)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "tiny-cnn" || m.Family != "custom" {
		t.Fatalf("identity wrong: %+v", m)
	}
	if m.WeightsMB <= 0 || m.TransferMs <= 0 {
		t.Fatal("no weights/transfer")
	}
	// Latencies must be positive, increasing in batch, with per-sample
	// amortisation.
	prev := 0.0
	for i, b := range modelzoo.BatchSizes {
		if m.ExecMs[i] <= prev {
			t.Fatalf("batch %d latency %v not increasing", b, m.ExecMs[i])
		}
		perSample := m.ExecMs[i] / float64(b)
		if b > 1 && perSample >= m.ExecMs[0] {
			t.Fatalf("batch %d per-sample %v ≥ batch-1 %v: no amortisation", b, perSample, m.ExecMs[0])
		}
		prev = m.ExecMs[i]
	}
	// And the model plugs into the zoo-facing API.
	if m.Pages(16*1024*1024) <= 0 {
		t.Fatal("pages")
	}
	if m.ExecLatency(3) <= m.ExecLatency(1) {
		t.Fatal("interpolation broken for compiled model")
	}
}

func TestCompileCalibrationSanity(t *testing.T) {
	// Compiling a graph with ResNet50-like parameter volume should give
	// latencies within ~3× of the real ResNet50 row — the calibration
	// is a median fit over a heterogeneous corpus, not a per-model
	// oracle.
	g := &Graph{
		Name:  "resnet50-like",
		Input: Shape{C: 3, H: 224, W: 224},
		Layers: []Layer{
			Conv2D{OutChannels: 64, Kernel: 7, Stride: 2},
			GlobalPool{},
			Dense{Out: 390_000}, // pad params to ≈25.6M total
		},
	}
	params, _ := g.TotalParams()
	real := modelzoo.ResNet50()
	realParams := int64(real.WeightsMB * 1024 * 1024 / 4)
	if ratio := float64(params) / float64(realParams); ratio < 0.5 || ratio > 2 {
		t.Skipf("param construction off (%.2fx); adjust the pad", ratio)
	}
	m := MustCompile(g, DefaultCalibration)
	if r := m.ExecMs[0] / real.ExecMs[0]; r < 1.0/3 || r > 3 {
		t.Fatalf("batch-1 estimate %.2fms vs real %.2fms (%.1fx) — calibration off", m.ExecMs[0], real.ExecMs[0], r)
	}
	if r := m.TransferMs / real.TransferMs; r < 0.5 || r > 2 {
		t.Fatalf("transfer estimate %.2fms vs real %.2fms", m.TransferMs, real.TransferMs)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(&Graph{}, DefaultCalibration); err == nil {
		t.Fatal("invalid graph should fail")
	}
	noParams := &Graph{Name: "x", Input: Shape{3, 8, 8}, Layers: []Layer{Activation{}}}
	if _, err := Compile(noParams, DefaultCalibration); err == nil {
		t.Fatal("parameterless graph should fail")
	}
	if _, err := Compile(tinyCNN(), Calibration{}); err == nil {
		t.Fatal("zero calibration should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic")
		}
	}()
	MustCompile(&Graph{}, DefaultCalibration)
}

func TestDefaultCalibrationFit(t *testing.T) {
	c := DefaultCalibration
	if c.SecondsPerFLOP <= 0 || c.BytesPerSecond <= 0 {
		t.Fatalf("calibration: %+v", c)
	}
	// Bandwidth should be near the Appendix A implied ~12.3 GB/s.
	gbps := c.BytesPerSecond / 1024 / 1024 / 1024
	if gbps < 11 || gbps > 14 {
		t.Fatalf("calibrated bandwidth %.1f GB/s", gbps)
	}
	// Batch efficiency must be ≤ 1 and non-increasing-ish.
	for b, e := range c.BatchEfficiency {
		if e <= 0 || e > 1.001 {
			t.Fatalf("efficiency[%d] = %v", b, e)
		}
	}
	if c.BatchEfficiency[16] >= c.BatchEfficiency[2] {
		t.Fatal("larger batches should amortise better")
	}
}

// Property: efficiency interpolation stays within the fitted envelope
// for all batch sizes 1..16.
func TestEfficiencyInterpolationProperty(t *testing.T) {
	c := DefaultCalibration
	min, max := math.Inf(1), math.Inf(-1)
	for _, e := range c.BatchEfficiency {
		min = math.Min(min, e)
		max = math.Max(max, e)
	}
	f := func(raw uint8) bool {
		b := int(raw%16) + 1
		e := c.efficiencyAt(b)
		return e >= min-1e-9 && e <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: compiled latency scales monotonically with parameter volume.
func TestCompileMonotoneInSizeProperty(t *testing.T) {
	f := func(raw uint8) bool {
		width := int(raw%64)*1000 + 1000
		small := &Graph{Name: "s", Input: Shape{64, 1, 1}, Layers: []Layer{Dense{Out: width}}}
		large := &Graph{Name: "l", Input: Shape{64, 1, 1}, Layers: []Layer{Dense{Out: width * 2}}}
		ms, err1 := Compile(small, DefaultCalibration)
		ml, err2 := Compile(large, DefaultCalibration)
		if err1 != nil || err2 != nil {
			return false
		}
		return ml.ExecMs[0] > ms.ExecMs[0] && ml.WeightsMB > ms.WeightsMB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
