// Package modelir implements the model front-end of §5.1: users hand
// Clockwork an abstract model definition (the role ONNX/NNEF play in the
// paper — the "narrow waist" of the ML stack), and Clockwork compiles it
// into the artifacts its runtime needs:
//
//   - Weights: the parameter blob size (drives LOAD cost and paging).
//   - Kernels: one per layer and batch size (drives EXEC cost).
//   - Memory metadata: the workspace high-water mark, pre-computed so
//     the runtime never allocates during execution.
//   - Profiling data: a seed execution-time estimate per batch size,
//     derived from layer FLOPs and calibrated against the measured
//     Appendix A corpus.
//
// The resulting modelzoo.Model is indistinguishable to the serving stack
// from a catalogue entry, so custom architectures can ride the same
// scheduler, cache, and predictor machinery.
package modelir
