package memory

import (
	"fmt"
	"testing"
	"testing/quick"
)

func newCache(pages int) *PageCache {
	return NewPageCache(int64(pages)*DefaultPageSize, DefaultPageSize)
}

func TestPageCacheBasics(t *testing.T) {
	c := newCache(10)
	if c.TotalPages() != 10 || c.FreePages() != 10 || c.UsedPages() != 0 {
		t.Fatal("fresh cache wrong")
	}
	if c.PageSize() != DefaultPageSize {
		t.Fatal("page size wrong")
	}
	if err := c.Alloc("a", 7); err != nil {
		t.Fatal(err)
	}
	if c.FreePages() != 3 || c.UsedPages() != 7 || !c.Has("a") || c.PagesOf("a") != 7 {
		t.Fatal("post-alloc state wrong")
	}
	if err := c.Free("a"); err != nil {
		t.Fatal(err)
	}
	if c.FreePages() != 10 || c.Has("a") || c.PagesOf("a") != 0 {
		t.Fatal("post-free state wrong")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPageCacheAllocFailures(t *testing.T) {
	c := newCache(10)
	if err := c.Alloc("a", 0); err == nil {
		t.Fatal("zero pages should fail")
	}
	if err := c.Alloc("a", -1); err == nil {
		t.Fatal("negative pages should fail")
	}
	if err := c.Alloc("a", 11); err == nil {
		t.Fatal("oversized alloc should fail")
	}
	if err := c.Alloc("a", 6); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc("a", 1); err == nil {
		t.Fatal("double alloc should fail")
	}
	if err := c.Alloc("b", 5); err == nil {
		t.Fatal("alloc beyond free should fail")
	}
	// Failure must not change state.
	if c.FreePages() != 4 {
		t.Fatalf("free pages = %d after failed allocs", c.FreePages())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPageCacheFreeFailures(t *testing.T) {
	c := newCache(4)
	if err := c.Free("ghost"); err == nil {
		t.Fatal("free of absent key should fail")
	}
	mustAlloc(t, c, "a", 2)
	if err := c.Pin("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Free("a"); err == nil {
		t.Fatal("free of pinned key should fail")
	}
	if err := c.Unpin("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Free("a"); err != nil {
		t.Fatal(err)
	}
}

func TestPinSemantics(t *testing.T) {
	c := newCache(4)
	if err := c.Pin("ghost"); err == nil {
		t.Fatal("pin of absent key should fail")
	}
	if err := c.Unpin("ghost"); err == nil {
		t.Fatal("unpin of absent key should fail")
	}
	mustAlloc(t, c, "a", 1)
	if err := c.Unpin("a"); err == nil {
		t.Fatal("unpin of unpinned key should fail")
	}
	_ = c.Pin("a")
	_ = c.Pin("a")
	if c.Pinned("a") != 2 {
		t.Fatalf("pin count = %d", c.Pinned("a"))
	}
	_ = c.Unpin("a")
	if c.Pinned("a") != 1 {
		t.Fatal("nested pins broken")
	}
	if c.Pinned("ghost") != 0 {
		t.Fatal("absent key pin count should be 0")
	}
}

func TestLRUVictimOrder(t *testing.T) {
	c := newCache(10)
	mustAlloc(t, c, "a", 1)
	mustAlloc(t, c, "b", 1)
	mustAlloc(t, c, "c", 1)
	// LRU order: a oldest.
	if v, ok := c.LRUVictim(); !ok || v != "a" {
		t.Fatalf("victim = %q", v)
	}
	c.Touch("a") // now b is oldest
	if v, ok := c.LRUVictim(); !ok || v != "b" {
		t.Fatalf("victim = %q", v)
	}
	_ = c.Pin("b") // pinned entries are skipped
	if v, ok := c.LRUVictim(); !ok || v != "c" {
		t.Fatalf("victim = %q", v)
	}
	_ = c.Pin("c")
	_ = c.Pin("a")
	if _, ok := c.LRUVictim(); ok {
		t.Fatal("all pinned: no victim expected")
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := newCache(10)
	mustAlloc(t, c, "a", 1)
	mustAlloc(t, c, "b", 1)
	c.Touch("a")
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestTouchAbsentKeyIsNoop(t *testing.T) {
	c := newCache(2)
	c.Touch("ghost") // must not panic
}

func TestPageCachePanicsOnBadConstruction(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPageCache(100, 0) },
		func() { NewPageCache(-1, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStringNonEmpty(t *testing.T) {
	if newCache(2).String() == "" {
		t.Fatal("empty string")
	}
}

func mustAlloc(t *testing.T, c *PageCache, key string, pages int) {
	t.Helper()
	if err := c.Alloc(key, pages); err != nil {
		t.Fatal(err)
	}
}

// Property: under arbitrary alloc/free/touch/pin sequences the cache
// never violates its invariants, and free pages always equals capacity
// minus the sum of live allocations.
func TestPageCacheInvariantsProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Pages uint8
	}
	f := func(ops []op) bool {
		c := newCache(32)
		live := map[string]int{}
		pins := map[string]int{}
		for _, o := range ops {
			key := fmt.Sprintf("m%d", o.Key%8)
			switch o.Kind % 5 {
			case 0: // alloc
				pages := int(o.Pages%10) + 1
				err := c.Alloc(key, pages)
				if _, exists := live[key]; exists {
					if err == nil {
						return false // double alloc must fail
					}
				} else if pages <= c.TotalPages()-sum(live) {
					if err != nil {
						return false // should have succeeded
					}
					live[key] = pages
				} else if err == nil {
					return false // over-capacity must fail
				}
			case 1: // free
				err := c.Free(key)
				if _, exists := live[key]; exists && pins[key] == 0 {
					if err != nil {
						return false
					}
					delete(live, key)
				} else if err == nil {
					return false
				}
			case 2: // touch
				c.Touch(key)
			case 3: // pin
				if err := c.Pin(key); err == nil {
					pins[key]++
				}
			case 4: // unpin
				if err := c.Unpin(key); err == nil {
					pins[key]--
				}
			}
			if err := c.CheckInvariants(); err != nil {
				return false
			}
			if c.FreePages() != c.TotalPages()-sum(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
