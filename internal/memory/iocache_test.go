package memory

import (
	"testing"
	"testing/quick"
)

func TestIOCacheBasics(t *testing.T) {
	c := NewIOCache(1000)
	if c.Capacity() != 1000 || c.Used() != 0 || c.Outstanding() != 0 {
		t.Fatal("fresh cache wrong")
	}
	if err := c.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc(500); err == nil {
		t.Fatal("over-capacity alloc should fail")
	}
	if c.Used() != 600 || c.Outstanding() != 1 {
		t.Fatal("failed alloc changed state")
	}
	if err := c.Free(600); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 0 || c.Outstanding() != 0 {
		t.Fatal("free did not restore state")
	}
}

func TestIOCacheErrors(t *testing.T) {
	c := NewIOCache(100)
	if err := c.Alloc(-1); err == nil {
		t.Fatal("negative alloc should fail")
	}
	if err := c.Free(-1); err == nil {
		t.Fatal("negative free should fail")
	}
	if err := c.Free(1); err == nil {
		t.Fatal("free beyond used should fail")
	}
	if err := c.Alloc(0); err != nil {
		t.Fatal("zero alloc should succeed")
	}
}

func TestIOCachePanicsOnNegativeCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIOCache(-1)
}

// Property: used never exceeds capacity and never goes negative under
// arbitrary alloc/free interleavings.
func TestIOCacheBoundsProperty(t *testing.T) {
	f := func(ops []int16) bool {
		c := NewIOCache(10_000)
		var outstanding []int64
		for _, o := range ops {
			if o >= 0 {
				n := int64(o)
				if err := c.Alloc(n); err == nil {
					outstanding = append(outstanding, n)
				}
			} else if len(outstanding) > 0 {
				n := outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
				if err := c.Free(n); err != nil {
					return false
				}
			}
			if c.Used() < 0 || c.Used() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkspaceExclusive(t *testing.T) {
	w := NewWorkspace(DefaultWorkspaceBytes)
	if w.Capacity() != DefaultWorkspaceBytes {
		t.Fatal("capacity wrong")
	}
	if _, held := w.Held(); held {
		t.Fatal("fresh workspace should be free")
	}
	if err := w.Acquire("exec-1"); err != nil {
		t.Fatal(err)
	}
	if holder, held := w.Held(); !held || holder != "exec-1" {
		t.Fatal("holder wrong")
	}
	if err := w.Acquire("exec-2"); err == nil {
		t.Fatal("double acquire must fail — one EXEC at a time")
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(); err == nil {
		t.Fatal("double release must fail")
	}
}

func TestWorkspacePanicsOnNegativeCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorkspace(-5)
}
