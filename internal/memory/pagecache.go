package memory

import (
	"container/list"
	"fmt"
)

// DefaultPageSize is the paper's page size (16 MB).
const DefaultPageSize = 16 * 1024 * 1024

// DefaultWorkspaceBytes is the transient execution workspace (512 MB).
const DefaultWorkspaceBytes = 512 * 1024 * 1024

// DefaultIOCacheBytes is the input/output staging area (512 MB).
const DefaultIOCacheBytes = 512 * 1024 * 1024

// PageCache allocates fixed-size pages to named models with LRU
// bookkeeping. It is deterministic: identical operation sequences produce
// identical states, which the controller relies on to mirror workers.
type PageCache struct {
	pageSize   int64
	totalPages int
	freePages  int
	entries    map[string]*cacheEntry
	lru        *list.List // front = most recently used
}

type cacheEntry struct {
	key    string
	pages  int
	pinned int
	elem   *list.Element
}

// NewPageCache returns a cache of capacityBytes split into pageSize pages.
func NewPageCache(capacityBytes, pageSize int64) *PageCache {
	if pageSize <= 0 {
		panic("memory: non-positive page size")
	}
	if capacityBytes < 0 {
		panic("memory: negative capacity")
	}
	total := int(capacityBytes / pageSize)
	return &PageCache{
		pageSize:   pageSize,
		totalPages: total,
		freePages:  total,
		entries:    make(map[string]*cacheEntry),
		lru:        list.New(),
	}
}

// PageSize returns the page size in bytes.
func (c *PageCache) PageSize() int64 { return c.pageSize }

// TotalPages returns the cache capacity in pages.
func (c *PageCache) TotalPages() int { return c.totalPages }

// FreePages returns the number of unallocated pages.
func (c *PageCache) FreePages() int { return c.freePages }

// UsedPages returns the number of allocated pages.
func (c *PageCache) UsedPages() int { return c.totalPages - c.freePages }

// Len returns the number of resident entries.
func (c *PageCache) Len() int { return len(c.entries) }

// Has reports whether key holds pages.
func (c *PageCache) Has(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// PagesOf returns the pages held by key (0 if absent).
func (c *PageCache) PagesOf(key string) int {
	if e, ok := c.entries[key]; ok {
		return e.pages
	}
	return 0
}

// Alloc reserves pages for key. It fails (without side effects) if key is
// already resident, pages is non-positive, or there are not enough free
// pages — mirroring LOAD's "abort if no pages" semantics (§5.2).
func (c *PageCache) Alloc(key string, pages int) error {
	if pages <= 0 {
		return fmt.Errorf("memory: alloc %q: non-positive page count %d", key, pages)
	}
	if _, exists := c.entries[key]; exists {
		return fmt.Errorf("memory: alloc %q: already resident", key)
	}
	if pages > c.freePages {
		return fmt.Errorf("memory: alloc %q: need %d pages, %d free", key, pages, c.freePages)
	}
	e := &cacheEntry{key: key, pages: pages}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.freePages -= pages
	return nil
}

// Free releases key's pages (UNLOAD). Freeing an absent key is an error;
// freeing a pinned key is an error because the model is executing.
func (c *PageCache) Free(key string) error {
	e, ok := c.entries[key]
	if !ok {
		return fmt.Errorf("memory: free %q: not resident", key)
	}
	if e.pinned > 0 {
		return fmt.Errorf("memory: free %q: pinned %d times", key, e.pinned)
	}
	c.lru.Remove(e.elem)
	delete(c.entries, key)
	c.freePages += e.pages
	return nil
}

// Touch marks key as most recently used. Absent keys are ignored.
func (c *PageCache) Touch(key string) {
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
	}
}

// Pin prevents key from being freed or evicted while in use (e.g. during
// EXEC). Pins nest.
func (c *PageCache) Pin(key string) error {
	e, ok := c.entries[key]
	if !ok {
		return fmt.Errorf("memory: pin %q: not resident", key)
	}
	e.pinned++
	return nil
}

// Unpin releases one pin.
func (c *PageCache) Unpin(key string) error {
	e, ok := c.entries[key]
	if !ok {
		return fmt.Errorf("memory: unpin %q: not resident", key)
	}
	if e.pinned == 0 {
		return fmt.Errorf("memory: unpin %q: not pinned", key)
	}
	e.pinned--
	return nil
}

// Pinned returns key's pin count.
func (c *PageCache) Pinned(key string) int {
	if e, ok := c.entries[key]; ok {
		return e.pinned
	}
	return 0
}

// LRUVictim returns the least-recently-used unpinned entry, if any.
func (c *PageCache) LRUVictim() (string, bool) {
	for elem := c.lru.Back(); elem != nil; elem = elem.Prev() {
		e := elem.Value.(*cacheEntry)
		if e.pinned == 0 {
			return e.key, true
		}
	}
	return "", false
}

// ScanLRU visits resident keys from least- to most-recently-used until
// f returns false — eviction selection without materialising the whole
// key list.
func (c *PageCache) ScanLRU(f func(key string) bool) {
	for elem := c.lru.Back(); elem != nil; elem = elem.Prev() {
		if !f(elem.Value.(*cacheEntry).key) {
			return
		}
	}
}

// Keys returns resident keys in most-recently-used-first order.
func (c *PageCache) Keys() []string {
	out := make([]string, 0, len(c.entries))
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		out = append(out, elem.Value.(*cacheEntry).key)
	}
	return out
}

// CheckInvariants validates internal consistency; tests call it after
// operation sequences.
func (c *PageCache) CheckInvariants() error {
	if c.freePages < 0 || c.freePages > c.totalPages {
		return fmt.Errorf("memory: free pages %d out of [0,%d]", c.freePages, c.totalPages)
	}
	sum := 0
	n := 0
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		e := elem.Value.(*cacheEntry)
		if c.entries[e.key] != e {
			return fmt.Errorf("memory: lru/map mismatch for %q", e.key)
		}
		sum += e.pages
		n++
	}
	if n != len(c.entries) {
		return fmt.Errorf("memory: lru has %d entries, map has %d", n, len(c.entries))
	}
	if sum != c.totalPages-c.freePages {
		return fmt.Errorf("memory: allocated pages %d != total-free %d", sum, c.totalPages-c.freePages)
	}
	return nil
}

// String summarises occupancy.
func (c *PageCache) String() string {
	return fmt.Sprintf("pagecache{%d/%d pages used, %d models}", c.UsedPages(), c.totalPages, len(c.entries))
}
