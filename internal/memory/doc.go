// Package memory implements Clockwork's pre-allocated GPU memory
// management (§5.2): a PageCache of fixed 16MB pages holding model
// weights, an IOCache for transient inference inputs/outputs, and a
// Workspace for intermediate results.
//
// Paging is what makes the memory state *predictable and summarisable*:
// there is no external fragmentation, so the controller can mirror a
// worker's entire memory state as "which models hold pages + free page
// count". The same PageCache type therefore backs both the worker's real
// allocator and the controller's mirror.
//
// In the request lifecycle the page cache decides cold starts: a
// request for a model without pages on any GPU needs a LOAD before its
// INFER, and eviction (LRU over page holders) is what the scheduler
// trades against load priority.
package memory
