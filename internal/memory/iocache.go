package memory

import "fmt"

// IOCache tracks the transient device memory holding inference inputs
// before execution and outputs after execution (§5.2). Allocations are
// short-lived and byte-granular; the paper sizes it at 512MB, far more
// than in-flight IO ever needs, so allocation failures indicate a
// scheduling bug rather than genuine pressure.
type IOCache struct {
	capacity int64
	used     int64
	allocs   int
}

// NewIOCache returns an IO staging area of the given capacity.
func NewIOCache(capacityBytes int64) *IOCache {
	if capacityBytes < 0 {
		panic("memory: negative IO cache capacity")
	}
	return &IOCache{capacity: capacityBytes}
}

// Alloc reserves n bytes, failing (without side effects) on exhaustion.
func (c *IOCache) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("memory: io alloc of negative size %d", n)
	}
	if c.used+n > c.capacity {
		return fmt.Errorf("memory: io cache exhausted (%d used + %d > %d)", c.used, n, c.capacity)
	}
	c.used += n
	c.allocs++
	return nil
}

// Free releases n bytes.
func (c *IOCache) Free(n int64) error {
	if n < 0 {
		return fmt.Errorf("memory: io free of negative size %d", n)
	}
	if n > c.used {
		return fmt.Errorf("memory: io free of %d exceeds used %d", n, c.used)
	}
	c.used -= n
	c.allocs--
	return nil
}

// Used returns the bytes currently reserved.
func (c *IOCache) Used() int64 { return c.used }

// Capacity returns the total capacity.
func (c *IOCache) Capacity() int64 { return c.capacity }

// Outstanding returns the number of live allocations.
func (c *IOCache) Outstanding() int { return c.allocs }

// Workspace models the 512MB intermediate-results arena. Because
// Clockwork executes models one at a time, at most one holder exists;
// double-acquisition is a scheduling bug and returns an error.
type Workspace struct {
	capacity int64
	holder   string
	held     bool
}

// NewWorkspace returns a workspace of the given capacity.
func NewWorkspace(capacityBytes int64) *Workspace {
	if capacityBytes < 0 {
		panic("memory: negative workspace capacity")
	}
	return &Workspace{capacity: capacityBytes}
}

// Acquire claims the workspace for the named user.
func (w *Workspace) Acquire(user string) error {
	if w.held {
		return fmt.Errorf("memory: workspace held by %q, wanted by %q", w.holder, user)
	}
	w.held = true
	w.holder = user
	return nil
}

// Release frees the workspace.
func (w *Workspace) Release() error {
	if !w.held {
		return fmt.Errorf("memory: workspace release while free")
	}
	w.held = false
	w.holder = ""
	return nil
}

// Held reports whether the workspace is claimed, and by whom.
func (w *Workspace) Held() (string, bool) { return w.holder, w.held }

// Capacity returns the workspace size.
func (w *Workspace) Capacity() int64 { return w.capacity }
