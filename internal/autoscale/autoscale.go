// Package autoscale is the closed-loop policy of the serving plane: it
// turns the signals the system already exposes (violation rate, p99
// headroom, admission sheds, per-shard demand) into the decisions the
// control plane already knows how to actuate (resize the admission
// window, add or drain workers, rebalance shards). The controller is a
// pure state machine — Evaluate consumes one control period's signals
// and returns one Decision, with no clock reads and no randomness — so
// a decision made inside an injected closure is deterministic at its
// virtual instant, journalable as a single record, and bit-for-bit
// reproducible under replay. See ARCHITECTURE.md, "Closed-loop
// control".
package autoscale

import (
	"fmt"
	"time"
)

// Config bounds and paces the control loop. The zero value of every
// field selects the documented default; WithDefaults resolves them.
type Config struct {
	// Period is the control interval: signals are accumulated over one
	// period and Evaluate runs once at its end (default 1s of virtual
	// time).
	Period time.Duration

	// MinWindow/MaxWindow bound the admission window (MaxInFlight).
	// Defaults 8 and 4096. The window never leaves [MinWindow,
	// MaxWindow]: the loop cannot admit-collapse to zero or grow
	// unbounded.
	MinWindow int
	MaxWindow int

	// MinWorkers/MaxWorkers bound the active (non-drained, non-failed)
	// worker count. Defaults: MinWorkers 1, MaxWorkers 0 (no scaling —
	// the window loop alone runs). Worker scaling only engages when
	// MaxWorkers > MinWorkers.
	MinWorkers int
	MaxWorkers int

	// HighViolation is the violation-rate high watermark: at or above
	// it the window shrinks multiplicatively (default 0.01). The rate
	// here is engine-observed — violations among admitted requests;
	// sheds feed the reopen path instead (see Evaluate).
	HighViolation float64
	// LowViolation is the low watermark: growth is only considered at
	// or below it (default HighViolation/10).
	LowViolation float64

	// HeadroomFactor gates window growth on latency headroom: the
	// period's p99 must sit below HeadroomFactor × the period's
	// representative SLO (default 0.8). The bar must stay reachable
	// for the slowest model in the mix — a batch-8 ResNet whose bare
	// execution sits at 60% of the SLO can never show a p99 under half
	// of it, and a gate it cannot pass pins the window shut forever.
	HeadroomFactor float64

	// ShrinkFactor is the multiplicative window decrease on a high
	// period (default 0.5). GrowStep is the additive increase per
	// sustained low period (default max(1, window/8), resolved per
	// decision when zero).
	ShrinkFactor float64
	GrowStep     int

	// GrowSustain is the hysteresis on growth: that many consecutive
	// low periods must pass before the window grows (default 2).
	// Shrinking acts immediately — the asymmetry protects the SLO.
	GrowSustain int

	// DemandHigh/DemandLow are per-GPU demand watermarks, as fractions
	// of one demand horizon of aggregate GPU time (defaults 0.75 and
	// 0.20). The horizon is the shorter of the control period and the
	// period's observed SLO: the scheduler proactively cancels work it
	// cannot serve by its deadline, so outstanding demand saturates
	// near SLO×GPUs no matter how overloaded the system is — a
	// period-long horizon would never see the high watermark. A shard
	// set whose demand exceeds DemandHigh×GPUs×horizon is
	// overcommitted, one under DemandLow×GPUs×horizon is idle.
	DemandHigh float64
	DemandLow  float64

	// WorkerSustain is the hysteresis on worker scaling: demand must
	// stay past a watermark for that many consecutive periods before a
	// worker is added or drained (default 3). Cooldown is the number of
	// periods after any worker action during which no further worker
	// action fires (default WorkerSustain), letting the last action's
	// effect reach the signals before the next is judged.
	WorkerSustain int
	Cooldown      int
}

// WithDefaults resolves every zero field to its documented default.
func (c Config) WithDefaults() Config {
	if c.Period <= 0 {
		c.Period = time.Second
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 8
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 4096
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < 0 {
		c.MaxWorkers = 0
	}
	if c.HighViolation <= 0 {
		c.HighViolation = 0.01
	}
	if c.LowViolation <= 0 {
		c.LowViolation = c.HighViolation / 10
	}
	if c.HeadroomFactor <= 0 {
		c.HeadroomFactor = 0.8
	}
	if c.ShrinkFactor <= 0 || c.ShrinkFactor >= 1 {
		c.ShrinkFactor = 0.5
	}
	if c.GrowSustain <= 0 {
		c.GrowSustain = 2
	}
	if c.DemandHigh <= 0 {
		c.DemandHigh = 0.75
	}
	if c.DemandLow <= 0 {
		c.DemandLow = 0.20
	}
	if c.WorkerSustain <= 0 {
		c.WorkerSustain = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.WorkerSustain
	}
	return c
}

// Signals is one control period's observed state, gathered at a single
// virtual instant (inside an injected closure or under a barrier).
type Signals struct {
	// Completed is the number of responses delivered this period;
	// Violations of them failed or exceeded their SLO. Shed counts
	// admission-window rejections this period (they never reached the
	// engine, so Completed excludes them).
	Completed  uint64
	Violations uint64
	Shed       uint64

	// P99 is the period's client-observed p99 latency; SLO is the
	// period's representative (minimum observed) objective. Both zero
	// when Completed is 0.
	P99 time.Duration
	SLO time.Duration

	// Demand is the outstanding Appendix-B demand summed across shards
	// (GPU-time of queued work); SchedulableGPUs counts enabled GPU
	// mirrors across shards.
	Demand          time.Duration
	SchedulableGPUs int

	// ActiveWorkers counts non-drained, non-failed workers. Window is
	// the admission window in force during the period (0 = unlimited).
	ActiveWorkers int
	Window        int
}

// ViolationRate is the fraction of this period's admission-seeking
// requests that missed their objective, counting sheds as violations —
// the end-to-end reporting rate. Evaluate deliberately does not use
// it: the window loop reasons over the engine-observed rate alone and
// treats sheds as reopen pressure (see Evaluate).
func (s Signals) ViolationRate() float64 {
	total := s.Completed + s.Shed
	if total == 0 {
		return 0
	}
	return float64(s.Violations+s.Shed) / float64(total)
}

// Decision is one evaluation's actuation plan. The zero Decision (with
// Window echoing the input) means "hold everything".
type Decision struct {
	// Window is the admission window to run the next period with. It
	// always carries a concrete value (never 0-meaning-unlimited):
	// compare against the current window to see whether it moved.
	Window int
	// AddWorkers asks for that many AddWorker calls; DrainWorker asks
	// for one active worker to be drained (the actuator picks which —
	// by convention the highest-ID active worker, so the choice is
	// deterministic). At most one of the two is set.
	AddWorkers  int
	DrainWorker bool
	// Rebalance asks for one cross-shard rebalance pass, set whenever
	// worker membership changed.
	Rebalance bool
	// Reason is a short human-readable cause ("shrink: violations
	// 3.1%", "add worker: demand 91%"), surfaced by the admin plane.
	Reason string
}

// Moved reports whether the decision changes anything.
func (d Decision) Moved(curWindow int) bool {
	return d.Window != curWindow || d.AddWorkers > 0 || d.DrainWorker || d.Rebalance
}

// Controller is the closed-loop decision engine. Not safe for
// concurrent use: evaluate it from one goroutine (the engine goroutine
// it is injected on).
type Controller struct {
	cfg Config

	lowStreak  int // consecutive low-violation periods (window growth gate)
	highStreak int // consecutive high-demand periods (worker add gate)
	idleStreak int // consecutive low-demand periods (worker drain gate)
	cooldown   int // periods left before the next worker action may fire
}

// New returns a controller with cfg's zero fields defaulted.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.WithDefaults()}
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Evaluate consumes one period's signals and returns the actuation
// plan. Pure except for the controller's own hysteresis state.
func (c *Controller) Evaluate(s Signals) Decision {
	d := Decision{Window: c.clampWindow(s.Window)}

	// ---- admission window (AIMD with asymmetric hysteresis) ----
	//
	// The window reasons over the engine-observed rate — violations
	// among requests that were admitted. Sheds are deliberately NOT in
	// it: a period that sheds while the admitted work runs with p99
	// headroom means the window is the bottleneck, not capacity, and
	// the right move is to grow, fast. Folding sheds into the shrink
	// signal deadlocks the loop: a pinched window sheds, the sheds
	// read as violations, the window never reopens — and the pinch
	// also starves the queue, so the demand signal below never asks
	// for workers either.
	rate := 0.0
	if s.Completed > 0 {
		rate = float64(s.Violations) / float64(s.Completed)
	}
	switch {
	case s.Completed > 0 && rate >= c.cfg.HighViolation:
		// Shrink immediately: every period above the watermark is SLO
		// damage already done.
		c.lowStreak = 0
		nw := c.clampWindow(int(float64(d.Window) * c.cfg.ShrinkFactor))
		if nw < d.Window {
			d.Window = nw
			d.Reason = fmt.Sprintf("shrink window: violation rate %.2f%%", 100*rate)
		}
	case rate <= c.cfg.LowViolation && c.headroomIdle(s):
		// Grow only after GrowSustain consecutive quiet periods, and
		// only when the p99 shows real headroom — a quiet period at a
		// saturated p99 is luck, not capacity.
		c.lowStreak++
		if c.lowStreak >= c.cfg.GrowSustain {
			step := c.cfg.GrowStep
			if step <= 0 {
				step = d.Window / 8
				if step < 1 {
					step = 1
				}
			}
			if s.Shed > 0 && d.Window > step {
				// Healthy engine + sheds: the window itself is what is
				// violating SLOs. Additive growth would bleed sheds for
				// many periods; double instead (the multiplicative
				// half of AIMD runs in reverse here).
				step = d.Window
			}
			nw := c.clampWindow(d.Window + step)
			if nw > d.Window {
				d.Window = nw
				if s.Shed > 0 {
					d.Reason = fmt.Sprintf("reopen window: %d shed with p99 %v under %.0f%% of SLO", s.Shed, s.P99, 100*c.cfg.HeadroomFactor)
				} else {
					d.Reason = fmt.Sprintf("grow window: violation rate %.2f%%, p99 %v under %.0f%% of SLO", 100*rate, s.P99, 100*c.cfg.HeadroomFactor)
				}
			}
			c.lowStreak = 0
		}
	default:
		c.lowStreak = 0
	}

	// ---- worker scaling (sustained demand watermarks) ----
	if c.cfg.MaxWorkers <= c.cfg.MinWorkers {
		return d
	}
	if c.cooldown > 0 {
		c.cooldown--
		return d
	}
	// Queued demand is the leading pressure signal, but the engine
	// violation rate joins it: under real overload the scheduler keeps
	// its queue short by cancelling past-deadline work (and a pinched
	// window keeps it short by shedding), so demand alone can read
	// deceptively low exactly when capacity is most needed. Sheds
	// without deep p99 headroom join it too — that is the state the
	// reopen path above refuses to touch (growing the window would only
	// convert sheds into violations), so unmet demand at the door with
	// a loaded engine is exactly "capacity is the bottleneck".
	util := c.demandUtil(s)
	shedFrac := 0.0
	if s.Completed+s.Shed > 0 {
		shedFrac = float64(s.Shed) / float64(s.Completed+s.Shed)
	}
	pressure := util >= c.cfg.DemandHigh ||
		(s.Completed > 0 && rate >= c.cfg.HighViolation) ||
		(shedFrac >= c.cfg.HighViolation && !c.headroomIdle(s))
	switch {
	case pressure && s.ActiveWorkers < c.cfg.MaxWorkers:
		c.idleStreak = 0
		c.highStreak++
		if c.highStreak >= c.cfg.WorkerSustain {
			d.AddWorkers = 1
			d.Rebalance = true
			d.Reason = appendReason(d.Reason, fmt.Sprintf("add worker: demand %.0f%% of capacity over %d periods", 100*util, c.highStreak))
			c.highStreak = 0
			c.cooldown = c.cfg.Cooldown
		}
	case util <= c.cfg.DemandLow && s.ActiveWorkers > c.cfg.MinWorkers && rate <= c.cfg.LowViolation && s.Shed == 0:
		// A shedding period never drains: low demand under a pinched
		// window is starvation, not idleness.
		c.highStreak = 0
		c.idleStreak++
		if c.idleStreak >= c.cfg.WorkerSustain {
			d.DrainWorker = true
			d.Rebalance = true
			d.Reason = appendReason(d.Reason, fmt.Sprintf("drain worker: demand %.0f%% of capacity over %d periods", 100*util, c.idleStreak))
			c.idleStreak = 0
			c.cooldown = c.cfg.Cooldown
		}
	default:
		c.highStreak = 0
		c.idleStreak = 0
	}
	return d
}

// headroomIdle reports whether the period's p99 shows growth headroom.
// An idle period (nothing completed) has headroom only if nothing was
// shed either — all-shed periods must not feed growth.
func (c *Controller) headroomIdle(s Signals) bool {
	if s.Completed == 0 {
		return s.Shed == 0
	}
	if s.SLO <= 0 {
		return false
	}
	return float64(s.P99) < c.cfg.HeadroomFactor*float64(s.SLO)
}

// demandUtil normalises outstanding demand to fractions of one demand
// horizon (min(Period, SLO)) of aggregate GPU time — see the
// DemandHigh doc for why the SLO bounds the horizon.
func (c *Controller) demandUtil(s Signals) float64 {
	if s.SchedulableGPUs <= 0 {
		return 0
	}
	horizon := c.cfg.Period
	if s.SLO > 0 && s.SLO < horizon {
		horizon = s.SLO
	}
	capacity := float64(horizon) * float64(s.SchedulableGPUs)
	return float64(s.Demand) / capacity
}

func (c *Controller) clampWindow(w int) int {
	if w < c.cfg.MinWindow {
		return c.cfg.MinWindow
	}
	if w > c.cfg.MaxWindow {
		return c.cfg.MaxWindow
	}
	return w
}

func appendReason(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}
