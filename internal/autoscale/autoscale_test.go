package autoscale

import (
	"testing"
	"time"
)

func sig(completed, viol, shed uint64, p99, slo time.Duration, window int) Signals {
	return Signals{Completed: completed, Violations: viol, Shed: shed, P99: p99, SLO: slo, Window: window}
}

func TestWindowShrinksImmediatelyOnViolations(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256})
	d := c.Evaluate(sig(1000, 100, 0, 90*time.Millisecond, 100*time.Millisecond, 128))
	if d.Window != 64 {
		t.Fatalf("want multiplicative shrink 128→64, got %d (%s)", d.Window, d.Reason)
	}
	// A second hot period keeps halving, down to the floor.
	for i := 0; i < 10; i++ {
		d = c.Evaluate(sig(1000, 100, 0, 90*time.Millisecond, 100*time.Millisecond, d.Window))
	}
	if d.Window != 4 {
		t.Fatalf("window must clamp at MinWindow=4, got %d", d.Window)
	}
}

func TestShedWithHeadroomReopensWindow(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256})
	// 10% of arrivals shed at the door while the admitted work runs
	// with deep p99 headroom: the window is the bottleneck, and after
	// the growth hysteresis (default GrowSustain 2) it must reopen
	// multiplicatively, not creep additively.
	pinched := sig(900, 0, 100, 20*time.Millisecond, 100*time.Millisecond, 64)
	if d := c.Evaluate(pinched); d.Window != 64 {
		t.Fatalf("first shed period must hold (hysteresis), got %d", d.Window)
	}
	if d := c.Evaluate(pinched); d.Window != 128 {
		t.Fatalf("sustained sheds with headroom must double 64→128, got %d (%s)", d.Window, d.Reason)
	}
}

func TestShedWithoutHeadroomDoesNotGrow(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256, GrowSustain: 1})
	// Sheds while the admitted work sits at 90% of SLO: capacity is
	// the bottleneck, growing the window would only add violations.
	hot := sig(900, 0, 100, 90*time.Millisecond, 100*time.Millisecond, 64)
	for i := 0; i < 5; i++ {
		if d := c.Evaluate(hot); d.Window > 64 {
			t.Fatalf("sheds without p99 headroom must not grow the window, got %d", d.Window)
		}
	}
}

func TestWindowGrowsOnlyAfterSustainedHeadroom(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256, GrowSustain: 2, GrowStep: 8})
	quiet := sig(1000, 0, 0, 20*time.Millisecond, 100*time.Millisecond, 64)
	if d := c.Evaluate(quiet); d.Window != 64 {
		t.Fatalf("first quiet period must hold (hysteresis), got %d", d.Window)
	}
	if d := c.Evaluate(quiet); d.Window != 72 {
		t.Fatalf("second quiet period must grow 64→72, got %d", d.Window)
	}
}

func TestNoGrowthWithoutP99Headroom(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256, GrowSustain: 1})
	// Quiet on violations but p99 at 90% of SLO: saturated, not idle.
	hot := sig(1000, 0, 0, 90*time.Millisecond, 100*time.Millisecond, 64)
	for i := 0; i < 5; i++ {
		if d := c.Evaluate(hot); d.Window != 64 {
			t.Fatalf("no growth without p99 headroom, got %d", d.Window)
		}
	}
}

func TestHotPeriodResetsGrowthStreak(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256, GrowSustain: 2, GrowStep: 8, HighViolation: 0.05})
	quiet := sig(1000, 0, 0, 20*time.Millisecond, 100*time.Millisecond, 64)
	c.Evaluate(quiet)
	// Mid-watermark period (neither high nor low): streak resets.
	c.Evaluate(sig(1000, 20, 0, 50*time.Millisecond, 100*time.Millisecond, 64))
	if d := c.Evaluate(quiet); d.Window != 64 {
		t.Fatalf("growth streak must reset after a non-quiet period, got %d", d.Window)
	}
}

func TestWorkerScalingSustainAndCooldown(t *testing.T) {
	cfg := Config{
		MinWindow: 4, MaxWindow: 256,
		MinWorkers: 2, MaxWorkers: 8,
		WorkerSustain: 2, Cooldown: 2, Period: time.Second,
	}
	c := New(cfg)
	hot := Signals{
		Completed: 100, P99: 90 * time.Millisecond, SLO: 100 * time.Millisecond,
		Demand: 3200 * time.Millisecond, SchedulableGPUs: 4, // 80% of one period
		ActiveWorkers: 4, Window: 64,
	}
	if d := c.Evaluate(hot); d.AddWorkers != 0 {
		t.Fatalf("first hot period must not add (sustain=2): %+v", d)
	}
	d := c.Evaluate(hot)
	if d.AddWorkers != 1 || !d.Rebalance {
		t.Fatalf("second hot period must add one worker and rebalance: %+v", d)
	}
	// Cooldown: the next two hot periods must not act.
	for i := 0; i < 2; i++ {
		if d := c.Evaluate(hot); d.AddWorkers != 0 || d.DrainWorker {
			t.Fatalf("cooldown period %d must hold: %+v", i, d)
		}
	}
}

func TestWorkerDrainOnSustainedIdle(t *testing.T) {
	c := New(Config{
		MinWindow: 4, MaxWindow: 256,
		MinWorkers: 2, MaxWorkers: 8,
		WorkerSustain: 2, Period: time.Second,
	})
	idle := Signals{
		Completed: 100, P99: 10 * time.Millisecond, SLO: 100 * time.Millisecond,
		Demand: 100 * time.Millisecond, SchedulableGPUs: 8, // ~1% of capacity
		ActiveWorkers: 4, Window: 64,
	}
	c.Evaluate(idle)
	d := c.Evaluate(idle)
	if !d.DrainWorker || !d.Rebalance {
		t.Fatalf("sustained idle must drain one worker and rebalance: %+v", d)
	}
	// At the floor, never drain below MinWorkers.
	c2 := New(Config{MinWorkers: 2, MaxWorkers: 8, WorkerSustain: 1, Period: time.Second})
	atFloor := idle
	atFloor.ActiveWorkers = 2
	for i := 0; i < 3; i++ {
		if d := c2.Evaluate(atFloor); d.DrainWorker {
			t.Fatalf("must not drain below MinWorkers: %+v", d)
		}
	}
}

func TestNoWorkerScalingWhenDisabled(t *testing.T) {
	// MaxWorkers unset: window loop only.
	c := New(Config{MinWindow: 4, MaxWindow: 256})
	hot := Signals{
		Completed: 100, Demand: time.Hour, SchedulableGPUs: 1,
		ActiveWorkers: 1, Window: 64,
	}
	for i := 0; i < 5; i++ {
		if d := c.Evaluate(hot); d.AddWorkers != 0 || d.DrainWorker {
			t.Fatalf("worker scaling disabled, got %+v", d)
		}
	}
}

func TestIdleAllShedPeriodNeverGrows(t *testing.T) {
	c := New(Config{MinWindow: 4, MaxWindow: 256, GrowSustain: 1})
	// Everything shed, nothing completed: with no admitted work there
	// is no p99 evidence either way, so the degenerate period must
	// hold the window — neither grow (no headroom proof) nor shrink
	// (no engine violations).
	d := c.Evaluate(sig(0, 0, 50, 0, 0, 64))
	if d.Window != 64 {
		t.Fatalf("all-shed period must hold the window, got %d", d.Window)
	}
}

func TestDeterministicSequence(t *testing.T) {
	// Equal signal sequences through equal configs give equal decisions.
	mk := func() []Decision {
		c := New(Config{MinWindow: 4, MaxWindow: 256, MinWorkers: 1, MaxWorkers: 4, WorkerSustain: 2, Period: time.Second})
		var out []Decision
		w := 64
		for i := 0; i < 50; i++ {
			s := Signals{
				Completed: uint64(100 + i), Violations: uint64(i % 7), Shed: uint64(i % 3),
				P99: time.Duration(i%90) * time.Millisecond, SLO: 100 * time.Millisecond,
				Demand: time.Duration(i%5) * 300 * time.Millisecond, SchedulableGPUs: 2,
				ActiveWorkers: 2, Window: w,
			}
			d := c.Evaluate(s)
			w = d.Window
			out = append(out, d)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
