package simclock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealtimeDriverRunsEvents(t *testing.T) {
	e := NewEngine()
	var fired atomic.Int32
	e.After(time.Microsecond, func() { fired.Add(1) })
	e.After(2*time.Microsecond, func() { fired.Add(1) })

	d := NewRealtimeDriver(e, 1000) // fast
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()

	deadline := time.After(2 * time.Second)
	for fired.Load() != 2 {
		select {
		case <-deadline:
			t.Fatal("events did not fire in time")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
}

func TestRealtimeDriverInject(t *testing.T) {
	e := NewEngine()
	d := NewRealtimeDriver(e, 0) // 0 → treated as 1.0
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()

	var hit atomic.Bool
	d.Inject(func() { hit.Store(true) })

	deadline := time.After(2 * time.Second)
	for !hit.Load() {
		select {
		case <-deadline:
			t.Fatal("injected event never ran")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done

	// Injection after close must not panic and must be ignored.
	d.Inject(func() { t.Error("ran after close") })
	time.Sleep(10 * time.Millisecond)
}
