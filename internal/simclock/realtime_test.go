package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealtimeDriverRunsEvents(t *testing.T) {
	e := NewEngine()
	var fired atomic.Int32
	e.After(time.Microsecond, func() { fired.Add(1) })
	e.After(2*time.Microsecond, func() { fired.Add(1) })

	d := NewRealtimeDriver(e, 1000) // fast
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()

	deadline := time.After(2 * time.Second)
	for fired.Load() != 2 {
		select {
		case <-deadline:
			t.Fatal("events did not fire in time")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
}

func TestRealtimeDriverInject(t *testing.T) {
	e := NewEngine()
	d := NewRealtimeDriver(e, 0) // 0 → treated as 1.0
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()

	var hit atomic.Bool
	d.Inject(func() { hit.Store(true) })

	deadline := time.After(2 * time.Second)
	for !hit.Load() {
		select {
		case <-deadline:
			t.Fatal("injected event never ran")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done

	// Injection after close must not panic and must be ignored.
	d.Inject(func() { t.Error("ran after close") })
	time.Sleep(10 * time.Millisecond)
}

// TestRealtimeDriverPacingBounds checks the speed multiplier's pacing
// contract: a span of virtual time can never elapse in less wall time
// than span/speed. (No tight upper bound — a loaded CI machine may run
// arbitrarily late; late is allowed, early is a pacing bug.)
func TestRealtimeDriverPacingBounds(t *testing.T) {
	for _, speed := range []float64{1, 10, 100} {
		e := NewEngine()
		const events = 10
		span := 200 * time.Millisecond * time.Duration(speed) // virtual
		var fired atomic.Int32
		for i := 1; i <= events; i++ {
			e.After(span*time.Duration(i)/events, func() { fired.Add(1) })
		}
		d := NewRealtimeDriver(e, speed)
		stop := make(chan struct{})
		done := make(chan struct{})
		start := time.Now()
		go func() { d.Run(stop); close(done) }()

		deadline := time.After(30 * time.Second)
		for fired.Load() != events {
			select {
			case <-deadline:
				t.Fatalf("speed %g: only %d/%d events fired", speed, fired.Load(), events)
			default:
				time.Sleep(time.Millisecond)
			}
		}
		elapsed := time.Since(start)
		close(stop)
		<-done
		if minWall := time.Duration(float64(span) / speed); elapsed < minWall {
			t.Errorf("speed %g: %v of virtual time elapsed in %v wall — faster than the %v floor",
				speed, span, elapsed, minWall)
		}
	}
}

// TestRealtimeDriverInjectAfterStop checks that Inject against a
// stopped driver neither panics nor mutates the engine.
func TestRealtimeDriverInjectAfterStop(t *testing.T) {
	e := NewEngine()
	d := NewRealtimeDriver(e, 1000)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()
	close(stop)
	<-done

	queued := e.Len()
	for i := 0; i < 100; i++ {
		if d.Inject(func() { t.Error("injected fn ran after close") }) {
			t.Fatal("Inject reported accepted after close")
		}
	}
	if e.Len() != queued {
		t.Errorf("Inject after close queued events: %d -> %d", queued, e.Len())
	}
	// InjectOrAbort must resolve to the abort hook, synchronously here.
	aborted := false
	d.InjectOrAbort(func() { t.Error("injected fn ran after close") }, func() { aborted = true })
	if !aborted {
		t.Fatal("InjectOrAbort after close did not run the abort hook")
	}
}

// TestRealtimeDriverInjectFromCallback checks Inject's reentrancy
// contract: an event callback may inject follow-up work (the serving
// plane's resubmit-on-result pattern) without deadlocking the driver.
func TestRealtimeDriverInjectFromCallback(t *testing.T) {
	e := NewEngine()
	d := NewRealtimeDriver(e, 1000)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()

	var depth atomic.Int32
	finished := make(chan struct{})
	var chain func()
	chain = func() {
		if depth.Add(1) == 5 {
			close(finished)
			return
		}
		d.Inject(chain)
	}
	d.Inject(chain)
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatalf("chained injection stalled at depth %d", depth.Load())
	}
	close(stop)
	<-done
}

// TestRealtimeDriverIdleReanchor checks that virtual time keeps
// tracking the wall clock across idle gaps: work injected after an
// idle period lands at the wall-implied instant, and follow-up timers
// it arms are paced — not executed as an "overdue" burst.
func TestRealtimeDriverIdleReanchor(t *testing.T) {
	const speed = 100.0
	e := NewEngine()
	d := NewRealtimeDriver(e, speed)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()
	defer func() { close(stop); <-done }()

	idle := 100 * time.Millisecond
	time.Sleep(idle) // engine has no events: clock must still advance

	injected := make(chan Time, 1)
	fired := make(chan struct{})
	var injectedWall time.Time
	d.Inject(func() {
		injectedWall = time.Now()
		injected <- e.Now()
		e.After(time.Second, func() { close(fired) }) // 1s virtual = 10ms wall
	})
	at := <-injected
	// The idle gap was ~100ms wall = ~10s virtual; anything well past
	// the frozen epoch proves re-anchoring (generous lower bound for
	// slow CI).
	if at < Time(float64(idle/2)*speed) {
		t.Fatalf("injection landed at %v virtual; clock did not track the %v idle gap", at, idle)
	}
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("follow-up timer never fired")
	}
	if wall := time.Since(injectedWall); wall < time.Second/speed {
		t.Fatalf("1s virtual timer fired after %v wall — faster than the %v pacing floor",
			wall, time.Second/time.Duration(speed))
	}
}

// TestRealtimeDriverConcurrentInjectStress hammers Inject from many
// goroutines while the driver runs, and overlaps the stop with the
// tail of the injections — the -race workout for the serving plane's
// hot path.
func TestRealtimeDriverConcurrentInjectStress(t *testing.T) {
	e := NewEngine()
	d := NewRealtimeDriver(e, 1e6) // virtual time nearly free
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { d.Run(stop); close(done) }()

	const (
		goroutines = 16
		perG       = 500
	)
	var executed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Inject(func() { executed.Add(1) })
			}
		}()
	}
	wg.Wait()

	deadline := time.After(30 * time.Second)
	for executed.Load() != goroutines*perG {
		select {
		case <-deadline:
			t.Fatalf("executed %d/%d injected events", executed.Load(), goroutines*perG)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Overlap a second wave of injections with the stop: none may
	// panic, and the driver must still shut down.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Inject(func() {})
			}
		}()
	}
	close(stop)
	wg.Wait()
	<-done
}
