package simclock

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// MultiDriver paces N engines — one per control-plane shard — against a
// single shared wall-clock origin, each on its own goroutine, so an
// N-shard system uses N cores instead of serialising every shard's
// events through one RealtimeDriver. Each engine keeps its
// single-goroutine determinism: only its own pacer goroutine ever
// touches it, and cross-engine work arrives exclusively through the
// same staged-injection mechanism RealtimeDriver uses.
//
// # Skew protocol (conservative lookahead)
//
// Wall pacing already keeps healthy engines loosely synchronised: no
// pacer advances its clock beyond the wall-implied virtual instant. The
// protocol below additionally bounds how far an engine may run AHEAD of
// a struggling sibling — the classic conservative PDES rule, with the
// lookahead derived from the cross-shard interaction floor (no shard
// can affect another in less than one network latency):
//
//   - every pacer publishes its engine's virtual clock atomically after
//     each step;
//   - no pacer advances its clock beyond min(other clocks) + lookahead;
//   - a pacer blocked with nothing due is "parked" and deemed current
//     with the wall clock, so idle shards never throttle busy ones;
//   - the bound gates only clock ADVANCEMENT — events at or before the
//     current instant (injections, barrier rendezvous) always execute,
//     which is what makes the stop-the-world Barrier deadlock-free
//     even when a shard is throttled.
//
// A throttled pacer still advances its clock up to the bound, so two
// mutually-throttled shards ratchet each other forward lookahead by
// lookahead instead of deadlocking.
//
// Determinism boundary: each engine's execution remains deterministic
// given its own event sequence, but the interleaving ACROSS engines is
// wall-clock dependent — exactly the nondeterminism live serving
// already has at the injection boundary. Bit-exact reproducibility is a
// single-engine property; the skew bound limits cross-shard clock
// divergence so latency accounting stays comparable across shards.
type MultiDriver struct {
	speed     float64
	lookahead time.Duration

	start        time.Time
	virtualStart Time
	// originMu guards the wall↔virtual correlation above for readers
	// (Origin) racing Run's entry; the pacers themselves only read the
	// fields after Run set them.
	originMu  sync.Mutex
	originSet bool

	shards []*shardPacer

	done chan struct{} // closed when Run returns (every pacer exited)

	barMu sync.Mutex // serialises barriers
}

// ErrStopped reports that a driver stopped before it could run the
// submitted work.
var ErrStopped = errors.New("simclock: driver stopped")

// skewPoll bounds how long a throttled pacer waits before re-reading
// its siblings' clocks.
const skewPoll = 500 * time.Microsecond

// shardPacer runs one engine against the shared origin. Mirrors
// RealtimeDriver's loop, plus the skew gate and the published clock.
type shardPacer struct {
	d   *MultiDriver
	idx int
	eng *Engine

	mu      sync.Mutex // guards pending and closed, never held during Step
	pending []pendingInjection
	spare   []pendingInjection // drained buffer, swapped back by takePending
	closed  bool
	wake    chan struct{}

	clock  atomic.Int64 // published virtual clock (ns)
	parked atomic.Bool  // blocked, caught up to the wall: deemed wall-current
}

// pendingInjection is one staged cross-goroutine event, in closure form
// (fn/abort) or the allocation-free Runner form (r/ab). at <= the
// engine's current instant (including the zero Time) means "as soon as
// possible". abort (or ab.Abort), if set, runs when the driver stops
// before the work could reach the engine; exactly one of run/abort ever
// happens.
type pendingInjection struct {
	at    Time
	fn    func()
	r     Runner
	abort func()
	ab    Aborter
}

// NewMultiDriver wraps engines, one pacer each. speed is the shared
// virtual-vs-wall multiplier (≤ 0 means 1.0). lookahead is the skew
// bound in virtual time (≤ 0 means no bound beyond wall pacing); the
// cluster layer derives it from the network-latency floor, widened so
// an OS scheduling quantum at high speed multipliers does not throttle
// healthy shards (see clockwork.StartLive).
func NewMultiDriver(engines []*Engine, speed float64, lookahead time.Duration) *MultiDriver {
	if len(engines) == 0 {
		panic("simclock: NewMultiDriver with no engines")
	}
	if speed <= 0 {
		speed = 1.0
	}
	m := &MultiDriver{
		speed:     speed,
		lookahead: lookahead,
		done:      make(chan struct{}),
	}
	for i, eng := range engines {
		m.shards = append(m.shards, &shardPacer{
			d:    m,
			idx:  i,
			eng:  eng,
			wake: make(chan struct{}, 1),
		})
	}
	return m
}

// Shards returns the number of engines driven.
func (m *MultiDriver) Shards() int { return len(m.shards) }

// Lookahead returns the skew bound in virtual time (0 = unbounded).
func (m *MultiDriver) Lookahead() time.Duration { return m.lookahead }

// ShardClock returns shard i's last published virtual clock — an
// observability read, racy by one event against the running pacer.
func (m *MultiDriver) ShardClock(i int) Time {
	return Time(m.shards[i].clock.Load())
}

// Run starts one pacer goroutine per engine and blocks until stop is
// closed and every pacer has exited. Engines are assumed to share a
// common virtual instant at entry (a freshly built cluster: all at 0);
// the common origin is the latest of their clocks. Run must be called
// at most once.
func (m *MultiDriver) Run(stop <-chan struct{}) {
	var vs Time
	for _, p := range m.shards {
		if n := p.eng.Now(); n > vs {
			vs = n
		}
		p.clock.Store(int64(p.eng.Now()))
	}
	m.originMu.Lock()
	m.start = time.Now()
	m.virtualStart = vs
	m.originSet = true
	m.originMu.Unlock()
	var wg sync.WaitGroup
	for _, p := range m.shards {
		wg.Add(1)
		go func(p *shardPacer) {
			defer wg.Done()
			p.run(stop)
		}(p)
	}
	wg.Wait()
	close(m.done)
}

// Origin returns the shared wall instant and virtual instant at which
// Run started pacing (the clock correlation every shard shares). ok is
// false until Run has started.
func (m *MultiDriver) Origin() (wall time.Time, virtual Time, ok bool) {
	m.originMu.Lock()
	defer m.originMu.Unlock()
	return m.start, m.virtualStart, m.originSet
}

// wallVirtual maps the current wall instant to shared virtual time.
func (m *MultiDriver) wallVirtual() Time {
	return m.virtualStart.Add(time.Duration(float64(time.Since(m.start)) * m.speed))
}

// wallAt maps a virtual instant back to the wall instant it is due.
func (m *MultiDriver) wallAt(v Time) time.Time {
	return m.start.Add(time.Duration(float64(v-m.virtualStart) / m.speed))
}

// floorBound returns the highest virtual instant shard self may advance
// to: min over the other shards' effective clocks, plus the lookahead.
// A parked sibling's effective clock is the wall-implied instant (it
// will not run anything earlier), so sleepers never hold the fleet
// back. MaxTime means unbounded (single shard, or no lookahead).
func (m *MultiDriver) floorBound(self int, wv Time) Time {
	if len(m.shards) == 1 || m.lookahead <= 0 {
		return MaxTime
	}
	floor := MaxTime
	for i, s := range m.shards {
		if i == self {
			continue
		}
		c := Time(s.clock.Load())
		if s.parked.Load() && wv > c {
			c = wv
		}
		if c < floor {
			floor = c
		}
	}
	if floor == MaxTime {
		return MaxTime
	}
	return floor.Add(m.lookahead)
}

// Inject schedules fn onto shard's engine at its then-current instant,
// from any goroutine. It reports whether the driver accepted fn; false
// means the driver has stopped and fn will never run.
func (m *MultiDriver) Inject(shard int, fn func()) bool {
	return m.shards[shard].inject(pendingInjection{fn: fn})
}

// InjectOrAbort is Inject with a guaranteed disposition: fn runs on the
// shard's engine, or abort is called (possibly synchronously, possibly
// from the stopping driver) — exactly one of the two, so resources
// staked on fn's execution cannot leak across a stop.
func (m *MultiDriver) InjectOrAbort(shard int, fn, abort func()) {
	if !m.shards[shard].inject(pendingInjection{fn: fn, abort: abort}) {
		abort()
	}
}

// InjectRun is Inject in the allocation-free Runner form (see
// RealtimeDriver.InjectRun).
func (m *MultiDriver) InjectRun(shard int, r Runner) bool {
	return m.shards[shard].inject(pendingInjection{r: r})
}

// InjectRunOrAbort is InjectOrAbort in Runner form: exactly one of
// r.Run() or ab.Abort() happens. r and ab may be the same object.
func (m *MultiDriver) InjectRunOrAbort(shard int, r Runner, ab Aborter) {
	if !m.shards[shard].inject(pendingInjection{r: r, ab: ab}) {
		ab.Abort()
	}
}

// Handoff schedules fn onto shard's engine at virtual instant at (or
// the engine's current instant, whichever is later) — the cross-shard
// delivery primitive. The sending shard stamps at = its own now plus
// the cross-shard network latency; the clamp absorbs any residual
// skew, which the lookahead bounds.
func (m *MultiDriver) Handoff(shard int, at Time, fn func()) bool {
	return m.shards[shard].inject(pendingInjection{at: at, fn: fn})
}

// Barrier pauses every shard at a rendezvous and runs fn exclusively —
// the stop-the-world primitive for cross-shard mutations (model
// migration, registration, consistent metric snapshots). fn runs on
// the caller's goroutine while every engine goroutine is blocked at
// its rendezvous, so fn may touch any shard's state. Returns
// ErrStopped (without running fn) if the driver stops first.
//
// Deadlock-freedom: the rendezvous is an injection, and injections
// execute at the current instant regardless of the skew gate, so even
// a throttled shard reaches its rendezvous promptly.
func (m *MultiDriver) Barrier(fn func()) error {
	m.barMu.Lock()
	defer m.barMu.Unlock()
	var arrive sync.WaitGroup
	arrive.Add(len(m.shards))
	release := make(chan struct{})
	ok := true
	for _, p := range m.shards {
		if !p.inject(pendingInjection{
			fn:    func() { arrive.Done(); <-release },
			abort: arrive.Done,
		}) {
			arrive.Done()
			ok = false
		}
	}
	arrived := make(chan struct{})
	go func() {
		arrive.Wait()
		close(arrived)
	}()
	var err error
	select {
	case <-arrived:
		if ok {
			fn()
		} else {
			err = ErrStopped
		}
	case <-m.done:
		// At least one pacer exited before its rendezvous; its abort
		// hook has fired (or will), so arrive converges. Do not run fn:
		// the surviving engines are no longer all paused.
		err = ErrStopped
	}
	close(release)
	<-arrived
	return err
}

// ---- pacer ----

func (p *shardPacer) inject(inj pendingInjection) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.pending = append(p.pending, inj)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return true
}

// takePending transfers the staged injections, preserving inject order.
// The two staging buffers ping-pong (see RealtimeDriver.takePending):
// only run's goroutine consumes the returned slice, and it finishes
// before calling takePending again.
func (p *shardPacer) takePending() []pendingInjection {
	p.mu.Lock()
	defer p.mu.Unlock()
	pend := p.pending
	p.pending = p.spare[:0]
	p.spare = pend
	return pend
}

func (p *shardPacer) close() {
	p.mu.Lock()
	p.closed = true
	dropped := p.pending
	p.pending = nil
	p.mu.Unlock()
	for _, inj := range dropped {
		switch {
		case inj.ab != nil:
			inj.ab.Abort()
		case inj.abort != nil:
			inj.abort()
		}
	}
}

func (p *shardPacer) publish() {
	p.clock.Store(int64(p.eng.Now()))
}

// run is the pacing loop: RealtimeDriver's idle-advance / transfer /
// sleep-until-due cycle, with the skew gate capping every clock
// advancement at the sibling floor plus lookahead.
func (p *shardPacer) run(stop <-chan struct{}) {
	m := p.d
	for {
		// A dense workload keeps events perpetually overdue, so the loop
		// may never reach a blocking select — poll stop here so shutdown
		// is prompt regardless of load.
		select {
		case <-stop:
			p.close()
			return
		default:
		}
		wv := m.wallVirtual()
		bound := m.floorBound(p.idx, wv)
		// Idle-advance toward the wall-implied instant (never beyond
		// the skew bound) so injections land where a wall observer
		// expects.
		target := wv
		if bound < target {
			target = bound
		}
		if p.eng.NextEventAt() > target && target > p.eng.Now() {
			p.eng.RunUntil(target)
			p.publish()
		}
		pend := p.takePending()
		for i := range pend {
			at := pend[i].at
			if at < p.eng.Now() {
				at = p.eng.Now()
			}
			if pend[i].r != nil {
				p.eng.ScheduleRun(at, pend[i].r)
			} else {
				p.eng.Schedule(at, pend[i].fn)
			}
			pend[i] = pendingInjection{} // buffer is recycled; drop refs
		}
		next := p.eng.NextEventAt()

		if next == MaxTime {
			// Nothing due, nothing queued: sleep until injected work
			// arrives. The shard is wall-current for skew purposes.
			p.parked.Store(true)
			select {
			case <-stop:
				p.parked.Store(false)
				p.close()
				return
			case <-p.wake:
				p.parked.Store(false)
				continue
			}
		}

		if next > bound && next > p.eng.Now() {
			// Conservative stall: a sibling lags more than the
			// lookahead behind this shard's next event. Only clock
			// ADVANCEMENT is gated — an event at or before the current
			// instant (an injection, a barrier rendezvous) falls
			// through and executes — and the clock has already
			// ratcheted up to the bound above, so mutual stalls
			// leapfrog forward rather than deadlock.
			select {
			case <-stop:
				p.close()
				return
			case <-p.wake:
			case <-time.After(skewPoll):
			}
			continue
		}

		due := m.wallAt(next)
		if delay := time.Until(due); delay > 0 {
			// Sleeping until the due instant: deemed wall-current only
			// when the clock actually reached the wall (a shard capped
			// at the skew bound must not overstate its floor).
			caughtUp := p.eng.Now() >= wv
			if caughtUp {
				p.parked.Store(true)
			}
			timer := time.NewTimer(delay)
			select {
			case <-stop:
				timer.Stop()
				p.parked.Store(false)
				p.close()
				return
			case <-p.wake:
				timer.Stop()
				p.parked.Store(false)
				continue
			case <-timer.C:
				p.parked.Store(false)
			}
		}
		p.eng.Step()
		p.publish()
	}
}
