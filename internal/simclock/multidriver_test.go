package simclock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startMulti(t *testing.T, n int, speed float64, lookahead time.Duration) (*MultiDriver, []*Engine, func()) {
	t.Helper()
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = NewEngine()
	}
	m := NewMultiDriver(engines, speed, lookahead)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Run(stop)
		close(done)
	}()
	var once sync.Once
	return m, engines, func() {
		once.Do(func() { close(stop) })
		<-done
	}
}

// TestMultiInjectRoutesToShard: injections run on the engine they were
// addressed to.
func TestMultiInjectRoutesToShard(t *testing.T) {
	m, engines, stopFn := startMulti(t, 3, 1000, 0)
	defer stopFn()
	var wg sync.WaitGroup
	var ran [3]atomic.Bool
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		if !m.Inject(i, func() {
			// The engine is only ever touched by its own pacer: a Now()
			// read here proves we are on shard i's goroutine.
			_ = engines[i].Now()
			ran[i].Store(true)
			wg.Done()
		}) {
			t.Fatalf("Inject(%d) refused while running", i)
		}
	}
	waitDone(t, &wg, 5*time.Second)
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("shard %d injection did not run", i)
		}
	}
}

// TestMultiInjectAfterStop: a stopped driver refuses injections and
// fires abort hooks for refused and stranded work.
func TestMultiInjectAfterStop(t *testing.T) {
	m, _, stopFn := startMulti(t, 2, 1000, 0)
	stopFn()
	if m.Inject(0, func() { t.Error("ran after stop") }) {
		t.Fatal("Inject accepted after stop")
	}
	aborted := false
	m.InjectOrAbort(1, func() { t.Error("ran after stop") }, func() { aborted = true })
	if !aborted {
		t.Fatal("InjectOrAbort did not abort after stop")
	}
}

// TestMultiBarrier: Barrier runs fn while every pacer is blocked at its
// rendezvous, and returns ErrStopped after the driver stops.
func TestMultiBarrier(t *testing.T) {
	m, engines, stopFn := startMulti(t, 4, 2000, 0)
	// Keep every shard busy with self-rescheduling work so the barrier
	// has to interrupt live engines, not idle ones.
	for i := range engines {
		i := i
		var tick func()
		tick = func() { engines[i].After(100*time.Microsecond, tick) }
		m.Inject(i, tick)
	}
	for round := 0; round < 10; round++ {
		ran := false
		if err := m.Barrier(func() {
			// With all four engines paused, reading all clocks is safe.
			for i := range engines {
				_ = engines[i].Now()
			}
			ran = true
		}); err != nil || !ran {
			t.Fatalf("round %d: Barrier err=%v ran=%v", round, err, ran)
		}
	}
	stopFn()
	if err := m.Barrier(func() { t.Error("barrier fn ran after stop") }); !errors.Is(err, ErrStopped) {
		t.Fatalf("Barrier after stop = %v, want ErrStopped", err)
	}
}

// TestMultiBarrierDuringStop: a barrier issued concurrently with stop
// must converge (run or ErrStopped), never hang.
func TestMultiBarrierDuringStop(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m, _, stopFn := startMulti(t, 3, 1000, 0)
		got := make(chan error, 1)
		go func() { got <- m.Barrier(func() {}) }()
		stopFn()
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("Barrier hung across a concurrent stop")
		}
	}
}

// TestMultiHandoffClamped: cross-shard handoffs land at the stamped
// instant or the destination's current instant, whichever is later.
func TestMultiHandoffClamped(t *testing.T) {
	m, engines, stopFn := startMulti(t, 2, 10000, 0)
	defer stopFn()
	var wg sync.WaitGroup
	wg.Add(1)
	var src, dst Time
	m.Inject(0, func() {
		src = engines[0].Now()
		at := src.Add(50 * time.Microsecond)
		if !m.Handoff(1, at, func() {
			dst = engines[1].Now()
			wg.Done()
		}) {
			t.Error("Handoff refused while running")
			wg.Done()
		}
	})
	waitDone(t, &wg, 5*time.Second)
	if dst < src.Add(50*time.Microsecond) && dst < engines[1].Now() {
		t.Fatalf("handoff delivered early: src=%v dst=%v", src, dst)
	}
}

// TestMultiSkewBound: while one shard is wedged inside a long event
// (its clock frozen, not parked), a sibling with runnable work must not
// advance more than the lookahead past it.
func TestMultiSkewBound(t *testing.T) {
	const lookahead = 2 * time.Millisecond
	const speed = 100.0
	m, engines, stopFn := startMulti(t, 2, speed, lookahead)
	defer stopFn()

	wedged := make(chan struct{})
	releaseWedge := make(chan struct{})
	m.Inject(0, func() {
		close(wedged)
		<-releaseWedge // freeze shard 0's clock mid-event
	})
	<-wedged
	frozen := m.ShardClock(0)

	// Shard 1: dense self-rescheduling work that would race far ahead
	// of the wall if unthrottled, and far past shard 0 without the
	// bound (the wall alone allows speed×elapsed of divergence).
	var tick func()
	tick = func() { engines[1].After(10*time.Microsecond, tick) }
	m.Inject(1, tick)

	time.Sleep(100 * time.Millisecond) // wall headroom ≈ 10s of virtual time
	ahead := m.ShardClock(1) - frozen
	close(releaseWedge)
	// Allowed: lookahead plus one pending event's worth of slop.
	if slack := lookahead + time.Millisecond; time.Duration(ahead) > slack {
		t.Fatalf("shard 1 ran %v ahead of the wedged shard 0, want <= %v", time.Duration(ahead), slack)
	}
}

// TestMultiIdleShardDoesNotThrottle: a parked (idle) shard is deemed
// wall-current, so a busy sibling keeps pace with the wall clock.
func TestMultiIdleShardDoesNotThrottle(t *testing.T) {
	const speed = 1000.0
	m, engines, stopFn := startMulti(t, 2, speed, time.Millisecond)
	defer stopFn()
	// Shard 0 stays empty (parked). Shard 1 runs dense work.
	var tick func()
	tick = func() { engines[1].After(500*time.Microsecond, tick) }
	m.Inject(1, tick)
	time.Sleep(50 * time.Millisecond)
	// At speed 1000, 50ms wall ≈ 50s virtual. The busy shard must have
	// advanced far beyond the 1ms lookahead — i.e. the idle sibling did
	// not hold it back.
	if got := time.Duration(m.ShardClock(1)); got < time.Second {
		t.Fatalf("busy shard at %v after 50ms wall at speed %v: idle sibling throttled it", got, speed)
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out waiting for injected work")
	}
}
