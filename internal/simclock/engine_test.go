package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var epoch Time
	if got := epoch.Add(3 * time.Millisecond); got != Time(3*time.Millisecond) {
		t.Fatalf("Add: got %v", got)
	}
	a := Time(5 * time.Second)
	b := Time(2 * time.Second)
	if d := a.Sub(b); d != 3*time.Second {
		t.Fatalf("Sub: got %v", d)
	}
	if !b.Before(a) || !a.After(b) {
		t.Fatal("Before/After inconsistent")
	}
	if a.Seconds() != 5.0 {
		t.Fatalf("Seconds: got %v", a.Seconds())
	}
	if Time(90*time.Second).Minutes() != 1.5 {
		t.Fatal("Minutes wrong")
	}
	if Max(a, b) != a || Min(a, b) != b {
		t.Fatal("Max/Min wrong")
	}
	if s := Time(-time.Second).String(); s != "-1s" {
		t.Fatalf("negative String: got %q", s)
	}
}

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(Time(30), func() { order = append(order, 3) })
	e.At(Time(10), func() { order = append(order, 1) })
	e.At(Time(20), func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != Time(30) {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(Time(5), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: order[%d]=%d", i, v)
		}
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var firedAt Time
	e.At(Time(100), func() {
		e.At(Time(50), func() { firedAt = e.Now() }) // in the past
	})
	e.Run()
	if firedAt != Time(100) {
		t.Fatalf("past event fired at %v, want clamped to 100", firedAt)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(Time(10), func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should succeed")
	}
	if tm.Stop() {
		t.Fatal("second Stop should fail")
	}
	if tm.Pending() {
		t.Fatal("stopped timer still pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Steps() != 0 {
		t.Fatalf("cancelled event counted as step: %d", e.Steps())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(Time(1), func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Time(10), func() { count++ })
	e.At(Time(20), func() { count++ })
	e.At(Time(30), func() { count++ })
	e.RunUntil(Time(20))
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Now() != Time(20) {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	e.RunFor(15 * time.Nanosecond)
	if count != 3 || e.Now() != Time(35) {
		t.Fatalf("after RunFor: count=%d now=%v", count, e.Now())
	}
}

func TestRunUntilEmptyQueueStillAdvances(t *testing.T) {
	e := NewEngine()
	e.RunUntil(Time(time.Hour))
	if e.Now() != Time(time.Hour) {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(Time(1), func() { count++; e.Stop() })
	e.At(Time(2), func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt)", count)
	}
	// A second Run resumes.
	e.Run()
	if count != 2 {
		t.Fatalf("resume: count = %d", count)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(Time(time.Millisecond), func() {
		e.After(2*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(3*time.Millisecond) {
		t.Fatalf("After fired at %v", at)
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if e.NextEventAt() != MaxTime {
		t.Fatal("empty queue should report MaxTime")
	}
	tm := e.At(Time(42), func() {})
	if e.NextEventAt() != Time(42) {
		t.Fatal("wrong next event")
	}
	tm.Stop()
	if e.NextEventAt() != MaxTime {
		t.Fatal("cancelled event should not be reported")
	}
}

func TestAtNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil fn")
		}
	}()
	NewEngine().At(Time(0), nil)
}

// Property: any set of scheduled instants fires in nondecreasing time
// order, with ties broken by scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []int16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, v := range raw {
			at := Time(int64(v) + 32768) // nonnegative
			i := i
			e.At(at, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		}) {
			return false
		}
		// And each event fired at its scheduled time.
		for _, r := range fired {
			if Time(int64(raw[r.seq])+32768) != r.at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never goes backwards during any run.
func TestClockMonotoneProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	e := NewEngine()
	last := Time(0)
	violations := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		if depth > 3 {
			return
		}
		e.After(time.Duration(rnd.Intn(1000)), func() {
			if e.Now() < last {
				violations++
			}
			last = e.Now()
			if rnd.Intn(3) == 0 {
				schedule(depth + 1)
			}
		})
	}
	for i := 0; i < 500; i++ {
		schedule(0)
	}
	e.Run()
	if violations != 0 {
		t.Fatalf("%d clock regressions", violations)
	}
}

func TestEngineStringer(t *testing.T) {
	e := NewEngine()
	e.At(Time(1), func() {})
	if s := e.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// TestTimerStaleAfterRecycle guards the event-pool generation check: a
// Timer whose event node has fired and been recycled into a NEW event
// must keep reporting fired semantics (Stop false, not Pending), never
// alias the new event.
func TestTimerStaleAfterRecycle(t *testing.T) {
	eng := NewEngine()
	stale := eng.At(Time(10), func() {})
	if got := stale.When(); got != Time(10) {
		t.Fatalf("pending When() = %v, want 10", got)
	}
	eng.Run() // fires and recycles the node
	// Schedule enough new events to guarantee the recycled node is
	// back in use.
	fired := 0
	for i := 0; i < 8; i++ {
		eng.At(Time(20+i), func() { fired++ })
	}
	if stale.Pending() {
		t.Fatal("fired timer reports Pending after node recycling")
	}
	if stale.Stop() {
		t.Fatal("fired timer Stop() returned true after node recycling")
	}
	// The recycled node now holds an unrelated event at an unrelated
	// instant: the stale handle must not report it as its own.
	if got := stale.When(); got != 0 {
		t.Fatalf("stale Timer.When() = %v after node recycling, want 0", got)
	}
	eng.Run()
	if fired != 8 {
		t.Fatalf("stale Timer.Stop cancelled a recycled event: fired=%d, want 8", fired)
	}
}

// TestTimerWhenLifecycle: When reports the scheduled instant only while
// the timer is pending — 0 after firing and after Stop.
func TestTimerWhenLifecycle(t *testing.T) {
	eng := NewEngine()
	tm := eng.At(Time(7), func() {})
	if got := tm.When(); got != Time(7) {
		t.Fatalf("When() = %v, want 7", got)
	}
	tm.Stop()
	if got := tm.When(); got != 0 {
		t.Fatalf("When() after Stop = %v, want 0", got)
	}
	fired := eng.At(Time(9), func() {})
	eng.Run()
	if got := fired.When(); got != 0 {
		t.Fatalf("When() after firing = %v, want 0", got)
	}
}

// testRunner records Run invocations for the closure-free event form.
type testRunner struct {
	order *[]int
	tag   int
}

func (r *testRunner) Run() { *r.order = append(*r.order, r.tag) }

// TestRunnerEventsInterleave: ScheduleRun/AtRun events order identically
// to closure events — the representation must not affect (at, seq)
// ordering.
func TestRunnerEventsInterleave(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(Time(5), func() { order = append(order, 1) })
	eng.ScheduleRun(Time(5), &testRunner{order: &order, tag: 2})
	eng.AtRun(Time(5), &testRunner{order: &order, tag: 3})
	eng.ScheduleRun(Time(3), &testRunner{order: &order, tag: 0})
	eng.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v, want [0 1 2 3]", order)
		}
	}
}

// TestAtRunValueTimer: the value Timer from AtRun stops its event, and
// the zero Timer is inert.
func TestAtRunValueTimer(t *testing.T) {
	eng := NewEngine()
	var order []int
	tm := eng.AtRun(Time(5), &testRunner{order: &order, tag: 99})
	if !tm.Pending() || tm.When() != Time(5) {
		t.Fatalf("value timer not pending at 5: pending=%v when=%v", tm.Pending(), tm.When())
	}
	if !tm.Stop() {
		t.Fatal("value timer Stop() = false while pending")
	}
	var zero Timer
	if zero.Pending() || zero.Stop() || zero.When() != 0 {
		t.Fatal("zero Timer is not inert")
	}
	eng.Run()
	if len(order) != 0 {
		t.Fatalf("stopped Runner event still ran: %v", order)
	}
}

// TestScheduleMatchesAt: the handle-free Schedule entry point must
// order identically to At.
func TestScheduleMatchesAt(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(Time(5), func() { order = append(order, 1) })
	eng.At(Time(5), func() { order = append(order, 2) })
	eng.Schedule(Time(3), func() { order = append(order, 0) })
	eng.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v, want [0 1 2]", order)
		}
	}
}
