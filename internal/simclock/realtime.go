package simclock

import (
	"sync"
	"time"
)

// RealtimeDriver paces an Engine against the wall clock so that a system
// built for simulation can also serve live traffic (demos, examples).
// External goroutines inject work with Inject; the driver serialises all
// event execution on its own goroutine, so engine users still never need
// locks.
type RealtimeDriver struct {
	eng   *Engine
	speed float64

	mu     sync.Mutex
	wake   chan struct{}
	closed bool
}

// NewRealtimeDriver wraps eng. speed scales virtual time against wall
// time: 1.0 is real time, 10.0 runs ten times faster than the wall clock.
// Speeds ≤ 0 are treated as 1.0.
func NewRealtimeDriver(eng *Engine, speed float64) *RealtimeDriver {
	if speed <= 0 {
		speed = 1.0
	}
	return &RealtimeDriver{eng: eng, speed: speed, wake: make(chan struct{}, 1)}
}

// Inject schedules fn onto the engine from any goroutine. It runs at the
// engine's current instant (i.e. "as soon as possible").
func (d *RealtimeDriver) Inject(fn func()) {
	d.mu.Lock()
	if !d.closed {
		d.eng.At(d.eng.Now(), fn)
	}
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Run executes events, sleeping between them so virtual time tracks wall
// time. It returns when stop is closed. Run must be called from exactly
// one goroutine.
func (d *RealtimeDriver) Run(stop <-chan struct{}) {
	start := time.Now()
	virtualStart := d.eng.Now()
	for {
		d.mu.Lock()
		next := d.eng.NextEventAt()
		d.mu.Unlock()

		if next == MaxTime {
			select {
			case <-stop:
				d.close()
				return
			case <-d.wake:
				continue
			}
		}

		// Wall-clock instant at which `next` is due.
		due := start.Add(time.Duration(float64(next-virtualStart) / d.speed))
		delay := time.Until(due)
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-stop:
				timer.Stop()
				d.close()
				return
			case <-d.wake:
				timer.Stop()
				continue
			case <-timer.C:
			}
		}

		d.mu.Lock()
		d.eng.Step()
		d.mu.Unlock()
	}
}

func (d *RealtimeDriver) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}
