package simclock

import (
	"sync"
	"time"
)

// RealtimeDriver paces an Engine against the wall clock so that a system
// built for simulation can also serve live traffic. External goroutines
// inject work with Inject; the driver serialises all event execution on
// its own goroutine, so engine users still never need locks.
//
// Injections are staged in a side buffer and transferred onto the engine
// between steps: the engine itself is touched only by the Run goroutine,
// and Inject never blocks on event execution — which makes Inject safe
// to call even from inside an event callback (the injected fn runs on a
// later loop turn at the then-current instant).
type RealtimeDriver struct {
	eng   *Engine
	speed float64

	mu      sync.Mutex // guards pending and closed, never held during Step
	pending []func()
	closed  bool
	wake    chan struct{}
}

// NewRealtimeDriver wraps eng. speed scales virtual time against wall
// time: 1.0 is real time, 10.0 runs ten times faster than the wall clock.
// Speeds ≤ 0 are treated as 1.0.
func NewRealtimeDriver(eng *Engine, speed float64) *RealtimeDriver {
	if speed <= 0 {
		speed = 1.0
	}
	return &RealtimeDriver{eng: eng, speed: speed, wake: make(chan struct{}, 1)}
}

// Inject schedules fn onto the engine from any goroutine — including the
// engine goroutine itself, from inside an event callback. It runs at the
// engine's then-current instant (i.e. "as soon as possible"). After the
// driver stops, Inject is a safe no-op.
func (d *RealtimeDriver) Inject(fn func()) {
	d.mu.Lock()
	if !d.closed {
		d.pending = append(d.pending, fn)
	}
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// takePending transfers the staged injections, preserving Inject order.
func (d *RealtimeDriver) takePending() []func() {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.pending
	d.pending = nil
	return p
}

// Run executes events, sleeping between them so virtual time tracks wall
// time. It returns when stop is closed; staged injections that have not
// reached the engine by then are dropped. Run must be called from exactly
// one goroutine.
func (d *RealtimeDriver) Run(stop <-chan struct{}) {
	start := time.Now()
	virtualStart := d.eng.Now()
	for {
		// Keep the virtual clock tracking the wall clock across idle
		// gaps: when nothing is due before the wall-implied instant,
		// advance the clock to it, so injections land at the instant a
		// wall observer expects — not at whatever instant the last event
		// froze the engine. (Without this, work injected after an idle
		// period is "overdue" and executes unpaced, voiding the speed
		// contract.)
		wv := virtualStart.Add(time.Duration(float64(time.Since(start)) * d.speed))
		if d.eng.NextEventAt() > wv && wv > d.eng.Now() {
			d.eng.RunUntil(wv)
		}
		for _, fn := range d.takePending() {
			d.eng.Schedule(d.eng.Now(), fn)
		}
		next := d.eng.NextEventAt()

		if next == MaxTime {
			select {
			case <-stop:
				d.close()
				return
			case <-d.wake:
				continue
			}
		}

		// Wall-clock instant at which `next` is due.
		due := start.Add(time.Duration(float64(next-virtualStart) / d.speed))
		delay := time.Until(due)
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-stop:
				timer.Stop()
				d.close()
				return
			case <-d.wake:
				timer.Stop()
				continue
			case <-timer.C:
			}
		}

		d.eng.Step()
	}
}

func (d *RealtimeDriver) close() {
	d.mu.Lock()
	d.closed = true
	d.pending = nil
	d.mu.Unlock()
}
