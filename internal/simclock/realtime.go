package simclock

import (
	"sync"
	"time"
)

// RealtimeDriver paces an Engine against the wall clock so that a system
// built for simulation can also serve live traffic. External goroutines
// inject work with Inject; the driver serialises all event execution on
// its own goroutine, so engine users still never need locks.
//
// Injections are staged in a side buffer and transferred onto the engine
// between steps: the engine itself is touched only by the Run goroutine,
// and Inject never blocks on event execution — which makes Inject safe
// to call even from inside an event callback (the injected fn runs on a
// later loop turn at the then-current instant).
type RealtimeDriver struct {
	eng   *Engine
	speed float64

	mu      sync.Mutex // guards pending and closed, never held during Step
	pending []pendingFn
	spare   []pendingFn // drained buffer, swapped back in by takePending
	closed  bool
	wake    chan struct{}

	// originMu guards the wall↔virtual correlation captured at Run entry,
	// which observability readers (the flight recorder's trace export)
	// use to translate virtual timestamps back to wall instants.
	originMu      sync.Mutex
	originWall    time.Time
	originVirtual Time
	originSet     bool
}

// pendingFn is one staged injection, in either closure form (fn/abort)
// or the allocation-free Runner form (r/ab). abort (or ab.Abort), if
// set, is called when the driver stops before the work could reach the
// engine — the hook callers holding resources against its execution
// (admission slots, pooled buffers) use to reclaim them. Exactly one of
// run/abort ever happens.
type pendingFn struct {
	fn    func()
	r     Runner
	abort func()
	ab    Aborter
}

// NewRealtimeDriver wraps eng. speed scales virtual time against wall
// time: 1.0 is real time, 10.0 runs ten times faster than the wall clock.
// Speeds ≤ 0 are treated as 1.0.
func NewRealtimeDriver(eng *Engine, speed float64) *RealtimeDriver {
	if speed <= 0 {
		speed = 1.0
	}
	return &RealtimeDriver{eng: eng, speed: speed, wake: make(chan struct{}, 1)}
}

// Inject schedules fn onto the engine from any goroutine — including the
// engine goroutine itself, from inside an event callback. It runs at the
// engine's then-current instant (i.e. "as soon as possible"). It reports
// whether the driver accepted fn: false means the driver has stopped and
// fn will never run, so a caller holding resources against fn's
// execution (admission slots, pooled buffers) must reclaim them itself.
func (d *RealtimeDriver) Inject(fn func()) bool {
	return d.inject(pendingFn{fn: fn})
}

// InjectOrAbort is Inject with a guaranteed disposition: fn runs on the
// engine, or — if the driver has stopped, or stops before fn can reach
// the engine — abort is called instead (possibly synchronously, possibly
// later from the stopping driver's goroutine). Exactly one of the two
// runs; Inject's boolean cannot make that promise, because a stop can
// race the staged closure out of existence after Inject returned true.
func (d *RealtimeDriver) InjectOrAbort(fn, abort func()) {
	if !d.inject(pendingFn{fn: fn, abort: abort}) {
		abort()
	}
}

// InjectRun is Inject in the allocation-free Runner form: r.Run()
// executes on the engine goroutine at its then-current instant. The
// staging buffer is recycled, so a pooled Runner makes the whole
// injection path allocation-free in steady state.
func (d *RealtimeDriver) InjectRun(r Runner) bool {
	return d.inject(pendingFn{r: r})
}

// InjectRunOrAbort is InjectOrAbort in Runner form: exactly one of
// r.Run() (on the engine) or ab.Abort() (on the caller or the stopping
// driver) happens. r and ab may be the same object.
func (d *RealtimeDriver) InjectRunOrAbort(r Runner, ab Aborter) {
	if !d.inject(pendingFn{r: r, ab: ab}) {
		ab.Abort()
	}
}

func (d *RealtimeDriver) inject(p pendingFn) bool {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false
	}
	d.pending = append(d.pending, p)
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
	return true
}

// takePending transfers the staged injections, preserving Inject order.
// The two staging buffers ping-pong: the drained one returned here is
// handed back as the next append target, so steady-state injection does
// not grow or reallocate either slice. Only Run's goroutine consumes
// the returned slice, and it finishes before calling takePending again.
func (d *RealtimeDriver) takePending() []pendingFn {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.pending
	d.pending = d.spare[:0]
	d.spare = p
	return p
}

// Run executes events, sleeping between them so virtual time tracks wall
// time. It returns when stop is closed; staged injections that have not
// reached the engine by then are dropped. Run must be called from exactly
// one goroutine.
func (d *RealtimeDriver) Run(stop <-chan struct{}) {
	start := time.Now()
	virtualStart := d.eng.Now()
	d.originMu.Lock()
	d.originWall, d.originVirtual, d.originSet = start, virtualStart, true
	d.originMu.Unlock()
	for {
		// A dense workload keeps events perpetually overdue, so the loop
		// may never reach a blocking select — poll stop here so shutdown
		// is prompt regardless of load.
		select {
		case <-stop:
			d.close()
			return
		default:
		}
		// Keep the virtual clock tracking the wall clock across idle
		// gaps: when nothing is due before the wall-implied instant,
		// advance the clock to it, so injections land at the instant a
		// wall observer expects — not at whatever instant the last event
		// froze the engine. (Without this, work injected after an idle
		// period is "overdue" and executes unpaced, voiding the speed
		// contract.)
		wv := virtualStart.Add(time.Duration(float64(time.Since(start)) * d.speed))
		if d.eng.NextEventAt() > wv && wv > d.eng.Now() {
			d.eng.RunUntil(wv)
		}
		pend := d.takePending()
		for i := range pend {
			if pend[i].r != nil {
				d.eng.ScheduleRun(d.eng.Now(), pend[i].r)
			} else {
				d.eng.Schedule(d.eng.Now(), pend[i].fn)
			}
			pend[i] = pendingFn{} // the buffer is recycled; drop refs now
		}
		next := d.eng.NextEventAt()

		if next == MaxTime {
			select {
			case <-stop:
				d.close()
				return
			case <-d.wake:
				continue
			}
		}

		// Wall-clock instant at which `next` is due.
		due := start.Add(time.Duration(float64(next-virtualStart) / d.speed))
		delay := time.Until(due)
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-stop:
				timer.Stop()
				d.close()
				return
			case <-d.wake:
				timer.Stop()
				continue
			case <-timer.C:
			}
		}

		d.eng.Step()
	}
}

// Origin returns the wall instant and virtual instant at which Run
// started pacing, correlating the two clocks: virtual instant v maps to
// wall + (v-virtual)/speed. ok is false until Run has started.
func (d *RealtimeDriver) Origin() (wall time.Time, virtual Time, ok bool) {
	d.originMu.Lock()
	defer d.originMu.Unlock()
	return d.originWall, d.originVirtual, d.originSet
}

func (d *RealtimeDriver) close() {
	d.mu.Lock()
	d.closed = true
	dropped := d.pending
	d.pending = nil
	d.mu.Unlock()
	// Staged injections that never reached the engine are dropped; those
	// that posted an abort hook get told, so no resource staked on an
	// injected closure can leak across a stop.
	for _, p := range dropped {
		switch {
		case p.ab != nil:
			p.ab.Abort()
		case p.abort != nil:
			p.abort()
		}
	}
}
