package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a deterministic discrete-event executor. Events scheduled for
// the same instant fire in scheduling order (FIFO), which makes whole-system
// runs reproducible. Engine is not safe for concurrent use; the entire
// simulated system runs on one goroutine. Use RealtimeDriver to bridge a
// live process onto an Engine.
type Engine struct {
	now     Time
	seq     uint64
	fseq    uint64
	pq      eventHeap
	stepped uint64
	stopped bool
	// free recycles event nodes: the serving hot path schedules a dozen
	// events per request, and pooling them (plus the handle-free
	// Schedule entry point) keeps steady-state scheduling off the heap.
	free []*event
}

// frontSeqBase splits the sequence space: ordinary events draw sequence
// numbers from [frontSeqBase, ...) while ScheduleFront draws from
// [0, frontSeqBase), so a front event always wins the FIFO tie-break
// against every already-queued event at the same instant. Relative
// order within each class is unchanged, so existing runs are
// bit-identical.
const frontSeqBase = uint64(1) << 63

// Timer is a handle to a scheduled event that can be cancelled. The
// generation field guards against event-node recycling: a Timer whose
// event has been reused reports !Pending / Stop()==false, exactly as a
// fired timer does.
type Timer struct {
	ev  *event
	gen uint32
}

// Stop cancels the timer. It returns false if the event already fired or
// was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil
	t.ev.r = nil
	return true
}

// Pending reports whether the event is still scheduled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && !t.ev.fired
}

// When returns the instant the timer is scheduled for, or the zero Time
// once the timer is no longer pending — fired, stopped, or its pooled
// event node recycled for an unrelated event. (Without the generation
// guard a stale handle would report the *reused* node's instant.)
func (t *Timer) When() Time {
	if !t.Pending() {
		return 0
	}
	return t.ev.at
}

// Runner is the closure-free event representation: a preallocated
// receiver whose Run method is the event body. The serving hot path
// schedules a dozen events per request; giving recurring events (cancel
// timers, network hops) a permanent receiver instead of a fresh closure
// removes their per-event allocations.
type Runner interface {
	Run()
}

// Aborter is the closure-free counterpart of an injection's abort hook:
// when a live driver stops before a staged Runner reaches its engine,
// Abort is called instead of Run (see RealtimeDriver.InjectRunOrAbort).
// A pooled per-request struct typically implements both.
type Aborter interface {
	Abort()
}

type event struct {
	at        Time
	seq       uint64
	gen       uint32
	fn        func()
	r         Runner // event body when fn is nil
	index     int
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// NewEngine returns an engine whose clock reads the epoch (Time 0).
func NewEngine() *Engine {
	return &Engine{seq: frontSeqBase}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the total number of events processed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// Len returns the number of queued events. Cancelled events still occupy
// the queue until popped, so Len is an upper bound on live events.
func (e *Engine) Len() int { return len(e.pq) }

// At schedules fn to run at instant t. Scheduling in the past (or at the
// current instant) is allowed and fires on the next step, preserving FIFO
// order among same-instant events. It panics on a nil fn, since a nil
// event is always a bug in the caller. Callers that never Stop the
// returned timer should prefer Schedule, which allocates no handle.
func (e *Engine) At(t Time, fn func()) *Timer {
	ev := e.schedule(t, fn)
	return &Timer{ev: ev, gen: ev.gen}
}

// Schedule is At without the cancellation handle — the hot-path form
// for fire-and-forget events (network deliveries, executor wakeups,
// injected closures), which reuses pooled event nodes and allocates
// nothing beyond fn itself.
func (e *Engine) Schedule(t Time, fn func()) {
	e.schedule(t, fn)
}

// ScheduleFront schedules fn at instant t ahead of every event already
// queued for that instant (normal scheduling is FIFO among same-instant
// events; front scheduling wins those ties). It exists for deterministic
// replay: a journaled injection must re-enter the engine before the
// same-instant internal events that were scheduled between the original
// injection's transfer and its execution — those executed after it in
// the recorded run, and front scheduling restores that order. Ordinary
// code should use Schedule.
func (e *Engine) ScheduleFront(t Time, fn func()) {
	if fn == nil {
		panic("simclock: schedule with nil fn")
	}
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.r = t, e.fseq, fn, nil
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{at: t, seq: e.fseq, fn: fn}
	}
	e.fseq++
	heap.Push(&e.pq, ev)
}

// ScheduleRun is Schedule with a preallocated Runner instead of a
// closure: the fully allocation-free scheduling form for recurring
// per-request events. Ordering is identical to Schedule — the event
// representation does not affect the (instant, sequence) key.
func (e *Engine) ScheduleRun(t Time, r Runner) {
	e.scheduleEv(t, nil, r)
}

// AtRun is At with a preallocated Runner, returning the Timer by value
// so cancellable hot-path events (admission-control timers) need no
// handle allocation either. The zero Timer is valid: Stop and Pending
// report false, When reports 0.
func (e *Engine) AtRun(t Time, r Runner) Timer {
	ev := e.scheduleEv(t, nil, r)
	return Timer{ev: ev, gen: ev.gen}
}

func (e *Engine) schedule(t Time, fn func()) *event {
	if fn == nil {
		panic("simclock: schedule with nil fn")
	}
	return e.scheduleEv(t, fn, nil)
}

func (e *Engine) scheduleEv(t Time, fn func(), r Runner) *event {
	if fn == nil && r == nil {
		panic("simclock: schedule with nil event body")
	}
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.r = t, e.seq, fn, r
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn, r: r}
	}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// recycle returns a popped event node to the free list, invalidating
// any Timer handle still pointing at it via the generation bump.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.r = nil
	if len(e.free) < 4096 {
		e.free = append(e.free, ev)
	}
}

// After schedules fn to run d after the current instant. Negative d is
// clamped to "now".
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now.Add(d), fn)
}

// Step processes the single earliest event. It returns false if the queue
// is empty. Cancelled events are skipped (and not counted as a step).
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fired = true
		fn, r := ev.fn, ev.r
		e.recycle(ev)
		e.stepped++
		if fn != nil {
			fn()
		} else {
			r.Run()
		}
		return true
	}
	return false
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes all events scheduled at or before t, then advances
// the clock to exactly t. It stops early if Stop is called.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next := e.peek()
		if next == nil || next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the clock by d, processing every event due in that span.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// Stop makes the current Run/RunUntil return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *event {
	for len(e.pq) > 0 {
		if e.pq[0].cancelled {
			e.recycle(heap.Pop(&e.pq).(*event))
			continue
		}
		return e.pq[0]
	}
	return nil
}

// NextEventAt returns the instant of the next live event, or MaxTime if
// the queue is empty.
func (e *Engine) NextEventAt() Time {
	ev := e.peek()
	if ev == nil {
		return MaxTime
	}
	return ev.at
}

// String summarises engine state for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("simclock.Engine{now=%v queued=%d stepped=%d}", e.now, len(e.pq), e.stepped)
}
