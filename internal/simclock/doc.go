// Package simclock provides virtual time and a deterministic
// discrete-event engine. Everything in this repository that "takes time"
// — GPU kernel execution, PCIe transfers, network hops, workload
// inter-arrival gaps — is expressed as events on this engine, so an
// 8-hour serving experiment replays in seconds and (given a fixed RNG
// seed) produces byte-identical results. Measured latencies can never be
// polluted by Go GC pauses or host scheduling, which is exactly the
// hazard the reproduction notes call out for a Go port of Clockwork.
package simclock
