package simclock

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since the start of
// the experiment. The zero Time is the experiment epoch.
type Time int64

// Common durations re-exported for call-site brevity.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
)

// Add returns t shifted forward by d (backward if d is negative).
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as a floating-point number of seconds since epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Minutes returns t as a floating-point number of minutes since epoch.
func (t Time) Minutes() float64 { return float64(t) / float64(time.Minute) }

// Duration converts the instant to the duration elapsed since epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as an elapsed duration, e.g. "1m3.25s".
func (t Time) String() string {
	if t < 0 {
		return fmt.Sprintf("-%v", time.Duration(-t))
	}
	return time.Duration(t).String()
}

// MaxTime is the largest representable instant; used as "never".
const MaxTime = Time(1<<63 - 1)

// MinTime is the smallest representable instant.
const MinTime = Time(-1 << 63)

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
