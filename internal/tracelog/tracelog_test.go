package tracelog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleLog() *Log {
	l := New()
	ok := true
	l.Append(Event{At: 1 * time.Millisecond, Kind: KindRequest, RequestID: 7, Model: "m", SLO: 100 * time.Millisecond})
	l.Append(Event{At: 2 * time.Millisecond, Kind: KindAction, ActionID: 1, ActionType: "LOAD", Model: "m"})
	l.Append(Event{At: 10 * time.Millisecond, Kind: KindResult, ActionID: 1, ActionType: "LOAD", Model: "m", Status: "success"})
	l.Append(Event{At: 10 * time.Millisecond, Kind: KindAction, ActionID: 2, ActionType: "INFER", Model: "m", Batch: 1, RequestIDs: []uint64{7}})
	l.Append(Event{
		At: 14 * time.Millisecond, Kind: KindResult, ActionID: 2, ActionType: "INFER",
		Model: "m", Batch: 1, RequestIDs: []uint64{7},
		Start: 11 * time.Millisecond, End: 13 * time.Millisecond,
		Duration: 2 * time.Millisecond, Status: "success",
	})
	l.Append(Event{At: 15 * time.Millisecond, Kind: KindResponse, RequestID: 7, Model: "m", Success: &ok, Batch: 1})
	return l
}

func TestExplainBreakdown(t *testing.T) {
	l := sampleLog()
	b, ok := l.Explain(7)
	if !ok {
		t.Fatal("request not found")
	}
	if !b.Success || b.Model != "m" {
		t.Fatalf("breakdown: %+v", b)
	}
	if b.Total() != 14*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
	if b.Queue != 10*time.Millisecond { // arrival 1ms → exec start 11ms
		t.Fatalf("queue = %v", b.Queue)
	}
	if b.Exec != 2*time.Millisecond {
		t.Fatalf("exec = %v", b.Exec)
	}
	if b.Deliver != 2*time.Millisecond { // exec end 13ms → response 15ms
		t.Fatalf("deliver = %v", b.Deliver)
	}
	if s := b.String(); !strings.Contains(s, "queue") || !strings.Contains(s, "exec") {
		t.Fatalf("explanation: %q", s)
	}
}

func TestExplainMissingRequest(t *testing.T) {
	if _, ok := sampleLog().Explain(99); ok {
		t.Fatal("phantom request explained")
	}
}

func TestExplainFailedRequest(t *testing.T) {
	l := New()
	failed := false
	l.Append(Event{At: time.Millisecond, Kind: KindRequest, RequestID: 3, Model: "m"})
	l.Append(Event{At: 5 * time.Millisecond, Kind: KindResponse, RequestID: 3, Model: "m", Success: &failed, Reason: "cancelled"})
	b, ok := l.Explain(3)
	if !ok || b.Success {
		t.Fatalf("breakdown: %+v", b)
	}
	if !strings.Contains(b.String(), "failed:cancelled") {
		t.Fatalf("explanation: %q", b.String())
	}
}

func TestRoundTripJSONL(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != l.Len() {
		t.Fatalf("%d lines for %d events", lines, l.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), l.Len())
	}
	// And the reconstructed log explains identically.
	a, _ := l.Explain(7)
	b, _ := back.Explain(7)
	if a != b {
		t.Fatalf("explanations diverge: %+v vs %+v", a, b)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSummary(t *testing.T) {
	s := sampleLog().Summary()
	if s["request"] != 1 || s["action"] != 2 || s["result"] != 2 || s["response"] != 1 {
		t.Fatalf("summary: %v", s)
	}
	if s["result:success"] != 2 {
		t.Fatalf("status counts: %v", s)
	}
}

func TestEventsAccessor(t *testing.T) {
	l := sampleLog()
	if len(l.Events()) != l.Len() {
		t.Fatal("Events length mismatch")
	}
}
