// Package tracelog implements the paper's "performance clarity" benefit
// (§7): because every performance-relevant decision flows through the
// controller, the controller is a single point of explanation. This
// package captures that decision stream — requests, actions, results,
// responses — as structured events, serialises it as JSONL, and answers
// "where did this request's time go?" with a queue/load/execute/deliver
// breakdown.
package tracelog
