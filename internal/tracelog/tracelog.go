package tracelog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Kind labels an event.
type Kind string

// Event kinds.
const (
	KindRequest  Kind = "request"  // client request arrived at controller
	KindAction   Kind = "action"   // controller issued an action
	KindResult   Kind = "result"   // worker result arrived at controller
	KindResponse Kind = "response" // controller responded to the client
)

// Event is one entry of the controller's decision stream. Times are
// virtual-clock offsets from the experiment epoch.
type Event struct {
	At   time.Duration `json:"t"`
	Kind Kind          `json:"kind"`

	// Request/response fields.
	RequestID uint64        `json:"req,omitempty"`
	Model     string        `json:"model,omitempty"`
	SLO       time.Duration `json:"slo,omitempty"`
	Success   *bool         `json:"ok,omitempty"`
	Reason    string        `json:"reason,omitempty"`

	// Action/result fields.
	ActionID   uint64        `json:"action,omitempty"`
	ActionType string        `json:"type,omitempty"`
	Batch      int           `json:"batch,omitempty"`
	RequestIDs []uint64      `json:"reqs,omitempty"`
	Worker     int           `json:"worker,omitempty"`
	GPU        int           `json:"gpu,omitempty"`
	Start      time.Duration `json:"start,omitempty"`
	End        time.Duration `json:"end,omitempty"`
	Duration   time.Duration `json:"dur,omitempty"`
	Status     string        `json:"status,omitempty"`
}

// Log is an in-memory event capture. It is single-goroutine like the
// rest of the simulator.
type Log struct {
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append records an event.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Len returns the number of captured events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the captured events; callers must not mutate.
func (l *Log) Events() []Event { return l.events }

// WriteTo serialises the log as JSON Lines.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// Read parses a JSONL stream back into a log.
func Read(r io.Reader) (*Log, error) {
	l := New()
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return l, nil
		} else if err != nil {
			return nil, fmt.Errorf("tracelog: %w", err)
		}
		l.Append(e)
	}
}

// Breakdown explains one request's end-to-end time in the stages the
// paper reasons about: controller queueing, weight loading (cold starts
// only), execution, and delivery (output copy + network + response).
type Breakdown struct {
	RequestID uint64
	Model     string
	Success   bool
	Reason    string

	Arrival  time.Duration
	Complete time.Duration

	// Queue is arrival → EXEC start (includes any LOAD wait).
	Queue time.Duration
	// Exec is the on-GPU execution span.
	Exec time.Duration
	// Deliver is EXEC end → client response.
	Deliver time.Duration
	// Batch is the batch size the request executed in.
	Batch int
}

// Total returns the end-to-end latency.
func (b Breakdown) Total() time.Duration { return b.Complete - b.Arrival }

// String implements fmt.Stringer.
func (b Breakdown) String() string {
	if !b.Success {
		return fmt.Sprintf("req %d (%s): failed:%s after %v", b.RequestID, b.Model, b.Reason, b.Total())
	}
	return fmt.Sprintf("req %d (%s): %v total = queue %v + exec %v (b%d) + deliver %v",
		b.RequestID, b.Model, b.Total(), b.Queue, b.Exec, b.Batch, b.Deliver)
}

// Explain reconstructs a request's timeline from the log. It returns
// false if the request never appears.
func (l *Log) Explain(requestID uint64) (Breakdown, bool) {
	var b Breakdown
	found := false
	var execStart, execEnd time.Duration
	for _, e := range l.events {
		switch e.Kind {
		case KindRequest:
			if e.RequestID == requestID {
				b.RequestID = requestID
				b.Model = e.Model
				b.Arrival = e.At
				found = true
			}
		case KindResult:
			if e.Status == "success" && e.ActionType == "INFER" && containsID(e.RequestIDs, requestID) {
				execStart, execEnd = e.Start, e.End
				b.Batch = e.Batch
			}
		case KindResponse:
			if e.RequestID == requestID {
				b.Complete = e.At
				if e.Success != nil {
					b.Success = *e.Success
				}
				b.Reason = e.Reason
			}
		}
	}
	if !found {
		return Breakdown{}, false
	}
	if b.Success && execEnd > 0 {
		b.Queue = execStart - b.Arrival
		b.Exec = execEnd - execStart
		b.Deliver = b.Complete - execEnd
	}
	return b, true
}

// Summary aggregates the log: events per kind and per action status.
func (l *Log) Summary() map[string]int {
	out := make(map[string]int)
	for _, e := range l.events {
		out[string(e.Kind)]++
		if e.Kind == KindResult && e.Status != "" {
			out["result:"+e.Status]++
		}
	}
	return out
}

func containsID(ids []uint64, id uint64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
