// Package action defines the command vocabulary between Clockwork's
// controller and its workers (§4.2, §4.4): LOAD, UNLOAD and INFER
// actions, each carrying an [earliest, latest] execution window, and the
// results workers report back.
//
// Actions replace RPCs: they either communicate a state change or a task
// with an exact time budget. A worker that cannot start an action inside
// its window rejects it instead of executing late — best-effort
// remediation is deliberately absent so mispredictions never cascade.
//
// In the request lifecycle (ARCHITECTURE.md), actions sit between the
// control plane and the data plane: a scheduler decision becomes an
// Action, travels controller→worker over the simulated network, and
// comes back as a Result that updates the controller's mirrors.
package action
