package action

import (
	"fmt"
	"time"

	"clockwork/internal/simclock"
)

// Type enumerates the worker actions.
type Type uint8

// The three action types of §4.4.
const (
	Load Type = iota
	Unload
	Infer
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Load:
		return "LOAD"
	case Unload:
		return "UNLOAD"
	case Infer:
		return "INFER"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Action is one controller→worker command.
type Action struct {
	ID    uint64
	Type  Type
	GPU   int    // worker-local GPU index
	Model string // model instance name
	Batch int    // INFER only: batch size

	// RequestIDs are the client requests satisfied by an INFER.
	RequestIDs []uint64

	// Earliest and Latest bound when the action may *begin* executing.
	// An action whose Latest has passed before it can start is rejected
	// and never executed (§4.4).
	Earliest simclock.Time
	Latest   simclock.Time

	// ExpectedDuration is the controller's prediction, echoed back for
	// prediction-error telemetry (Fig 9).
	ExpectedDuration time.Duration
	// ExpectedCompletion is the controller's predicted completion
	// instant, for completion-error telemetry (Fig 9, bottom).
	ExpectedCompletion simclock.Time

	// InputBytes/OutputBytes size the INFER IO transfers.
	InputBytes  int64
	OutputBytes int64
}

// WindowContains reports whether the action may begin at instant t.
func (a *Action) WindowContains(t simclock.Time) bool {
	return t >= a.Earliest && t <= a.Latest
}

// String implements fmt.Stringer.
func (a *Action) String() string {
	switch a.Type {
	case Infer:
		return fmt.Sprintf("INFER#%d{%s b%d gpu%d [%v,%v]}", a.ID, a.Model, a.Batch, a.GPU, a.Earliest, a.Latest)
	default:
		return fmt.Sprintf("%v#%d{%s gpu%d [%v,%v]}", a.Type, a.ID, a.Model, a.GPU, a.Earliest, a.Latest)
	}
}

// Status is the outcome of an action.
type Status uint8

// Action outcomes. Everything except Success is an error code; workers
// never attempt best-effort remediation (§4.2).
const (
	Success Status = iota
	// RejectedLate: the action's latest start time passed before the
	// executor could begin it.
	RejectedLate
	// RejectedNoPages: a LOAD found insufficient free pages.
	RejectedNoPages
	// RejectedNotLoaded: an INFER's model weights were not resident.
	RejectedNotLoaded
	// RejectedAlreadyLoaded: a LOAD for an already-resident model.
	RejectedAlreadyLoaded
	// RejectedNotResident: an UNLOAD for a model without pages.
	RejectedNotResident
	// RejectedBusy: an UNLOAD for a model currently executing.
	RejectedBusy
	// RejectedIO: the IOCache could not stage inputs/outputs.
	RejectedIO
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case RejectedLate:
		return "rejected:late"
	case RejectedNoPages:
		return "rejected:no-pages"
	case RejectedNotLoaded:
		return "rejected:not-loaded"
	case RejectedAlreadyLoaded:
		return "rejected:already-loaded"
	case RejectedNotResident:
		return "rejected:not-resident"
	case RejectedBusy:
		return "rejected:busy"
	case RejectedIO:
		return "rejected:io"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// IsSuccess reports whether the action executed.
func (s Status) IsSuccess() bool { return s == Success }

// Result is one worker→controller report (§5.2): whether the action
// succeeded, its timing, and the measured on-device duration.
type Result struct {
	ActionID   uint64
	Type       Type
	Status     Status
	WorkerID   int
	GPU        int
	Model      string
	Batch      int
	RequestIDs []uint64

	// Start and End bound the action's execution on the worker
	// (zero for rejected actions).
	Start simclock.Time
	End   simclock.Time

	// Duration is the measured on-device time of the asynchronous work
	// (GPU execution for INFER, PCIe transfer for LOAD).
	Duration time.Duration

	// Echoes of the controller's predictions, for Fig 9 telemetry.
	ExpectedDuration   time.Duration
	ExpectedCompletion simclock.Time
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("result{%v#%d %s %v dur=%v}", r.Type, r.ActionID, r.Model, r.Status, r.Duration)
}
