package action

import (
	"strings"
	"testing"
	"time"

	"clockwork/internal/simclock"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{Load: "LOAD", Unload: "UNLOAD", Infer: "INFER", Type(99): "Type(99)"}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%d: got %q want %q", ty, ty.String(), want)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	all := []Status{Success, RejectedLate, RejectedNoPages, RejectedNotLoaded,
		RejectedAlreadyLoaded, RejectedNotResident, RejectedBusy, RejectedIO}
	seen := map[string]bool{}
	for _, s := range all {
		str := s.String()
		if str == "" || seen[str] {
			t.Fatalf("status %d: bad or duplicate string %q", s, str)
		}
		seen[str] = true
	}
	if Status(200).String() != "Status(200)" {
		t.Fatal("unknown status string wrong")
	}
	if !Success.IsSuccess() {
		t.Fatal("Success must be success")
	}
	for _, s := range all[1:] {
		if s.IsSuccess() {
			t.Fatalf("%v must not be success", s)
		}
	}
}

func TestWindowContains(t *testing.T) {
	a := &Action{Earliest: simclock.Time(10), Latest: simclock.Time(20)}
	for _, tc := range []struct {
		t    simclock.Time
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {20, true}, {21, false},
	} {
		if got := a.WindowContains(tc.t); got != tc.want {
			t.Errorf("WindowContains(%v) = %v", tc.t, got)
		}
	}
}

func TestActionString(t *testing.T) {
	inf := &Action{ID: 7, Type: Infer, Model: "resnet50", Batch: 4, GPU: 1}
	if s := inf.String(); !strings.Contains(s, "INFER#7") || !strings.Contains(s, "b4") {
		t.Fatalf("infer string: %q", s)
	}
	ld := &Action{ID: 8, Type: Load, Model: "resnet50"}
	if s := ld.String(); !strings.Contains(s, "LOAD#8") {
		t.Fatalf("load string: %q", s)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ActionID: 3, Type: Load, Status: RejectedNoPages, Model: "m", Duration: time.Millisecond}
	if s := r.String(); !strings.Contains(s, "rejected:no-pages") {
		t.Fatalf("result string: %q", s)
	}
}
