// Package modelzoo embeds the model catalogue of the Clockwork paper
// (Appendix A, Table 1): 64 pre-trained DNNs from the ONNX and GluonCV
// model zoos, compiled with TVM 0.7 for an NVIDIA Tesla v100, with their
// input/output sizes, weight sizes, host→GPU transfer times, and GPU
// execution latencies at batch sizes 1, 2, 4, 8 and 16.
//
// For the simulator these numbers ARE the models: scheduling decisions in
// Clockwork depend only on per-(model, batch) execution time, weight
// size, and IO size, all of which Table 1 supplies.
package modelzoo
