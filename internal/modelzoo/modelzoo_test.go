package modelzoo

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCatalogueSize(t *testing.T) {
	if Count() != 64 {
		t.Fatalf("catalogue has %d models, want 64 (Table 1 rows)", Count())
	}
	if len(All()) != Count() {
		t.Fatal("All() length mismatch")
	}
}

func TestByName(t *testing.T) {
	m, ok := ByName("resnet50_v1b")
	if !ok || m.Name != "resnet50_v1b" {
		t.Fatal("lookup failed")
	}
	if _, ok := ByName("not-a-model"); ok {
		t.Fatal("phantom model found")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustByName("nope")
}

func TestResNet50MatchesPaperNumbers(t *testing.T) {
	m := ResNet50()
	// §4.4: transfer ≈8.3ms, execution ≈2.9ms (we use the v1b row:
	// 8.33ms / 2.77ms).
	if m.TransferMs < 8.0 || m.TransferMs > 8.6 {
		t.Fatalf("transfer %vms out of the paper's ≈8.3ms range", m.TransferMs)
	}
	if m.ExecMs[0] < 2.5 || m.ExecMs[0] > 3.0 {
		t.Fatalf("batch-1 exec %vms out of the paper's ≈2.9ms range", m.ExecMs[0])
	}
}

func TestExecLatencyExactPoints(t *testing.T) {
	m := MustByName("googlenet")
	wants := map[int]float64{1: 1.54, 2: 1.94, 4: 2.69, 8: 4.19, 16: 7.11}
	for b, ms := range wants {
		if got := m.ExecLatency(b); got != time.Duration(ms*float64(time.Millisecond)) {
			t.Errorf("batch %d: got %v want %vms", b, got, ms)
		}
	}
}

func TestExecLatencyInterpolation(t *testing.T) {
	m := MustByName("googlenet")
	// batch 3 between 2 (1.94) and 4 (2.69) → 2.315ms.
	got := m.ExecLatency(3)
	want := time.Duration(2.315 * float64(time.Millisecond))
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("batch 3: got %v want ≈%v", got, want)
	}
	// batch 12 between 8 (4.19) and 16 (7.11) → 4.19+0.5*2.92=5.65ms.
	got = m.ExecLatency(12)
	want = time.Duration(5.65 * float64(time.Millisecond))
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("batch 12: got %v want ≈%v", got, want)
	}
}

func TestExecLatencyExtrapolation(t *testing.T) {
	m := MustByName("googlenet")
	// Above 16 the marginal cost of the 8→16 segment applies.
	b32 := m.ExecLatency(32)
	b16 := m.ExecLatency(16)
	if b32 <= b16 {
		t.Fatal("extrapolation must increase latency")
	}
	perReq := (b32 - b16) / 16
	seg := (m.ExecLatency(16) - m.ExecLatency(8)) / 8
	if perReq != seg {
		t.Fatalf("marginal cost %v != segment slope %v", perReq, seg)
	}
}

func TestExecLatencyPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ResNet50().ExecLatency(0)
}

func TestPages(t *testing.T) {
	m := ResNet50() // 102.1 MB
	const pageSize = 16 * 1024 * 1024
	if got := m.Pages(pageSize); got != 7 { // ceil(102.1/16) = 7
		t.Fatalf("pages = %d, want 7", got)
	}
	tiny := MustByName("mobile_pose_mobilenetv3") // 19.0 MB → 2 pages
	if got := tiny.Pages(pageSize); got != 2 {
		t.Fatalf("pages = %d, want 2", got)
	}
}

func TestPagesPanicsOnBadPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ResNet50().Pages(0)
}

func TestByteAccessors(t *testing.T) {
	m := ResNet50()
	if m.InputBytes() != 602*1024 {
		t.Fatalf("input bytes = %d", m.InputBytes())
	}
	if m.OutputBytes() != 4*1024 {
		t.Fatalf("output bytes = %d", m.OutputBytes())
	}
	weightsMB := m.WeightsMB
	wantWeights := int64(weightsMB * 1024 * 1024)
	if m.WeightsBytes() != wantWeights {
		t.Fatalf("weights bytes = %d", m.WeightsBytes())
	}
	if m.Transfer() != time.Duration(8.33*float64(time.Millisecond)) {
		t.Fatalf("transfer = %v", m.Transfer())
	}
}

func TestBestBatchFor(t *testing.T) {
	m := ResNet50() // B1=2.77 B2=3.95 B4=5.88 B8=9.78 B16=16.58
	if b, ok := m.BestBatchFor(10 * time.Millisecond); !ok || b != 8 {
		t.Fatalf("got %d,%v want 8,true", b, ok)
	}
	if b, ok := m.BestBatchFor(3 * time.Millisecond); !ok || b != 1 {
		t.Fatalf("got %d,%v want 1,true", b, ok)
	}
	if _, ok := m.BestBatchFor(time.Millisecond); ok {
		t.Fatal("nothing should fit 1ms")
	}
}

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 13 {
		t.Fatalf("got %d families, want 13: %v", len(fams), fams)
	}
	resnets := ByFamily("ResNet")
	if len(resnets) != 22 {
		t.Fatalf("ResNet family has %d rows, want 22", len(resnets))
	}
	if len(ByFamily("nonexistent")) != 0 {
		t.Fatal("phantom family")
	}
}

func TestThroughputAt(t *testing.T) {
	m := ResNet50()
	t1 := m.ThroughputAt(1)
	t16 := m.ThroughputAt(16)
	if t16 <= t1 {
		t.Fatalf("batch-16 throughput (%v) should exceed batch-1 (%v)", t16, t1)
	}
	// batch 1 at 2.77ms → ≈361 r/s.
	if t1 < 350 || t1 > 375 {
		t.Fatalf("batch-1 throughput = %v, want ≈361", t1)
	}
}

// Property (paper's batching premise): for every model, execution latency
// is monotone increasing in batch size, while per-request latency is
// (almost) monotone non-increasing — batching buys throughput. The real
// Table 1 contains two rows (mobile_pose_mobilenetv3 at B16, resnest50 at
// B8) where per-request latency creeps up by <5%, so the property allows
// that much slack.
func TestBatchingMonotoneProperty(t *testing.T) {
	for _, m := range All() {
		prevLat := time.Duration(0)
		prevPerReq := float64(1 << 62)
		for _, b := range BatchSizes {
			lat := m.ExecLatency(b)
			if lat <= prevLat {
				t.Errorf("%s: latency not increasing at batch %d (%v ≤ %v)", m.Name, b, lat, prevLat)
			}
			perReq := float64(lat) / float64(b)
			if perReq > prevPerReq*1.05 {
				t.Errorf("%s: per-request latency increased >5%% at batch %d", m.Name, b)
			}
			prevLat, prevPerReq = lat, perReq
		}
	}
}

// Property: interpolation is monotone for arbitrary batch sizes in [1,64].
func TestInterpolationMonotoneProperty(t *testing.T) {
	f := func(idx uint8, rawA, rawB uint8) bool {
		m := All()[int(idx)%Count()]
		a := int(rawA%64) + 1
		b := int(rawB%64) + 1
		if a > b {
			a, b = b, a
		}
		return m.ExecLatency(a) <= m.ExecLatency(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// All catalogue rows must be sane: positive sizes and latencies,
// transfer time roughly proportional to weight size (shared PCIe link).
func TestCatalogueSanity(t *testing.T) {
	for _, m := range All() {
		if m.Name == "" || m.Family == "" {
			t.Fatalf("unnamed row: %+v", m)
		}
		if m.WeightsMB <= 0 || m.TransferMs <= 0 || m.InputKB <= 0 || m.OutputKB <= 0 {
			t.Fatalf("%s: non-positive size", m.Name)
		}
		for i, v := range m.ExecMs {
			if v <= 0 {
				t.Fatalf("%s: non-positive exec at index %d", m.Name, i)
			}
		}
		// Effective PCIe bandwidth per row should be ≈12.3 GB/s ± 15%.
		gbps := m.WeightsMB / 1024 / (m.TransferMs / 1000)
		if gbps < 10 || gbps > 14 {
			t.Errorf("%s: implied PCIe bandwidth %.1f GB/s out of range", m.Name, gbps)
		}
	}
}

func TestStringer(t *testing.T) {
	if ResNet50().String() == "" {
		t.Fatal("empty String")
	}
}
