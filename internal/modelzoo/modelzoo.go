package modelzoo

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// BatchSizes are the batch sizes Clockwork compiles kernels for (§5.1).
var BatchSizes = []int{1, 2, 4, 8, 16}

// MaxBatch is the largest compiled batch size.
const MaxBatch = 16

// Model describes one catalogue entry. All latencies are as profiled on
// a Tesla v100; the simulated GPU replays them with a small noise model.
type Model struct {
	Name       string
	Family     string
	InputKB    float64    // per-request input tensor size
	OutputKB   float64    // per-request output tensor size
	WeightsMB  float64    // weights blob size
	TransferMs float64    // host→GPU weights transfer time
	ExecMs     [5]float64 // batch 1, 2, 4, 8, 16 execution latency
}

// WeightsBytes returns the weights blob size in bytes.
func (m *Model) WeightsBytes() int64 { return int64(m.WeightsMB * 1024 * 1024) }

// InputBytes returns the per-request input size in bytes.
func (m *Model) InputBytes() int64 { return int64(m.InputKB * 1024) }

// OutputBytes returns the per-request output size in bytes.
func (m *Model) OutputBytes() int64 { return int64(m.OutputKB * 1024) }

// Transfer returns the profiled host→GPU weights transfer duration.
func (m *Model) Transfer() time.Duration {
	return time.Duration(m.TransferMs * float64(time.Millisecond))
}

// Pages returns the number of fixed-size cache pages the weights occupy.
func (m *Model) Pages(pageSize int64) int {
	if pageSize <= 0 {
		panic("modelzoo: non-positive page size")
	}
	return int((m.WeightsBytes() + pageSize - 1) / pageSize)
}

// ExecLatency returns the GPU execution latency for the given batch size.
// Exact for the compiled sizes {1,2,4,8,16}; linear interpolation in batch
// size between compiled points; linear extrapolation (using the 8→16
// marginal cost) above 16. Panics on batch < 1.
func (m *Model) ExecLatency(batch int) time.Duration {
	ms := m.execMs(batch)
	return time.Duration(ms * float64(time.Millisecond))
}

func (m *Model) execMs(batch int) float64 {
	if batch < 1 {
		panic(fmt.Sprintf("modelzoo: ExecLatency batch %d < 1", batch))
	}
	switch batch {
	case 1:
		return m.ExecMs[0]
	case 2:
		return m.ExecMs[1]
	case 4:
		return m.ExecMs[2]
	case 8:
		return m.ExecMs[3]
	case 16:
		return m.ExecMs[4]
	}
	if batch > MaxBatch {
		slope := (m.ExecMs[4] - m.ExecMs[3]) / 8
		return m.ExecMs[4] + slope*float64(batch-16)
	}
	// Interpolate between the nearest compiled sizes.
	lowerIdx := 0
	for i, b := range BatchSizes {
		if b <= batch {
			lowerIdx = i
		}
	}
	lo, hi := BatchSizes[lowerIdx], BatchSizes[lowerIdx+1]
	frac := float64(batch-lo) / float64(hi-lo)
	return m.ExecMs[lowerIdx] + frac*(m.ExecMs[lowerIdx+1]-m.ExecMs[lowerIdx])
}

// ThroughputAt returns requests/second achieved when running back-to-back
// batches of the given size.
func (m *Model) ThroughputAt(batch int) float64 {
	lat := m.ExecLatency(batch).Seconds()
	if lat <= 0 {
		return math.Inf(1)
	}
	return float64(batch) / lat
}

// BestBatchFor returns the largest compiled batch size whose execution
// latency fits within budget, and true; or 0, false if even batch 1 does
// not fit.
func (m *Model) BestBatchFor(budget time.Duration) (int, bool) {
	best := 0
	for _, b := range BatchSizes {
		if m.ExecLatency(b) <= budget {
			best = b
		}
	}
	return best, best > 0
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("%s{weights=%.1fMB b1=%.2fms}", m.Name, m.WeightsMB, m.ExecMs[0])
}

var byName map[string]*Model

func init() {
	byName = make(map[string]*Model, len(catalogue))
	for i := range catalogue {
		m := &catalogue[i]
		if _, dup := byName[m.Name]; dup {
			panic("modelzoo: duplicate model " + m.Name)
		}
		byName[m.Name] = m
	}
}

// All returns the full catalogue, ordered as in the paper's Table 1.
// Callers must not mutate the returned models.
func All() []*Model {
	out := make([]*Model, len(catalogue))
	for i := range catalogue {
		out[i] = &catalogue[i]
	}
	return out
}

// Count returns the catalogue size.
func Count() int { return len(catalogue) }

// ByName looks a model up by name.
func ByName(name string) (*Model, bool) {
	m, ok := byName[name]
	return m, ok
}

// MustByName is ByName that panics on unknown names; for experiment setup.
func MustByName(name string) *Model {
	m, ok := byName[name]
	if !ok {
		panic("modelzoo: unknown model " + name)
	}
	return m
}

// ResNet50 returns the paper's de-facto comparison model (§6.1 uses
// ResNet50 with ≈2.9ms batch-1 execution and ≈8.3ms weight transfer;
// resnet50_v1b matches those figures).
func ResNet50() *Model { return MustByName("resnet50_v1b") }

// Families returns the distinct family names, sorted.
func Families() []string {
	seen := map[string]bool{}
	var out []string
	for i := range catalogue {
		f := catalogue[i].Family
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// ByFamily returns all models in a family, in catalogue order.
func ByFamily(family string) []*Model {
	var out []*Model
	for i := range catalogue {
		if catalogue[i].Family == family {
			out = append(out, &catalogue[i])
		}
	}
	return out
}
