package workload

import (
	"math"
	"time"

	"clockwork/internal/rng"
)

// This file synthesizes time-varying open-loop load: an Envelope
// shapes a base Poisson rate over the run (the diurnal cycles and
// flash crowds the closed-loop autoscaler is judged against), and
// ArrivalSchedule materialises the resulting non-homogeneous process
// deterministically by Lewis–Shedler thinning, so every experiment
// cell can replay the identical arrival instants.

// Envelope is a time-varying rate multiplier: the instantaneous
// arrival rate at elapsed time t is base × env(t). Multipliers must be
// non-negative.
type Envelope func(at time.Duration) float64

// Diurnal returns one sinusoidal day stretched over period: the
// multiplier starts at trough, peaks at peak mid-period, and returns.
// sharpness (≥ 1) raises the sinusoid to a power, narrowing the peak —
// a sharpness-1 day is half busy, a sharpness-4 day has a short rush
// hour over a long quiet baseline.
func Diurnal(period time.Duration, trough, peak float64, sharpness int) Envelope {
	if period <= 0 {
		panic("workload: non-positive diurnal period")
	}
	if sharpness < 1 {
		sharpness = 1
	}
	return func(at time.Duration) float64 {
		phase := (1 - math.Cos(2*math.Pi*float64(at)/float64(period))) / 2
		return trough + (peak-trough)*math.Pow(phase, float64(sharpness))
	}
}

// Spike is one flash-crowd event: the multiplier ramps linearly from
// the envelope's base to Mult over Ramp, holds for Hold, and ramps
// back down over Ramp.
type Spike struct {
	Start time.Duration
	Ramp  time.Duration
	Hold  time.Duration
	Mult  float64
}

// FlashCrowd returns a flat base multiplier punctuated by spikes.
// Overlapping spikes take the maximum.
func FlashCrowd(base float64, spikes ...Spike) Envelope {
	return func(at time.Duration) float64 {
		m := base
		for _, sp := range spikes {
			if at < sp.Start || at >= sp.Start+2*sp.Ramp+sp.Hold {
				continue
			}
			v := sp.Mult
			switch rel := at - sp.Start; {
			case rel < sp.Ramp:
				v = base + (sp.Mult-base)*float64(rel)/float64(sp.Ramp)
			case rel >= sp.Ramp+sp.Hold:
				down := rel - sp.Ramp - sp.Hold
				v = sp.Mult - (sp.Mult-base)*float64(down)/float64(sp.Ramp)
			}
			if v > m {
				m = v
			}
		}
		return m
	}
}

// ArrivalSchedule materialises the arrival instants of a
// non-homogeneous Poisson process with rate base × env(t) over
// [0, horizon), by thinning a homogeneous base × ceiling process
// (Lewis–Shedler). ceiling must dominate the envelope everywhere —
// an envelope value above it is a bug in the caller and panics.
// Equal (stream state, parameters) give identical schedules.
func ArrivalSchedule(stream *rng.Stream, base, ceiling float64, env Envelope, horizon time.Duration) []time.Duration {
	if base <= 0 || ceiling <= 0 {
		panic("workload: non-positive arrival rate")
	}
	var out []time.Duration
	maxRate := base * ceiling
	t := 0.0
	hz := horizon.Seconds()
	for {
		t += stream.Exp(1 / maxRate)
		if t >= hz {
			return out
		}
		at := time.Duration(t * float64(time.Second))
		m := env(at)
		if m > ceiling {
			panic("workload: envelope exceeds its thinning ceiling")
		}
		if stream.Float64()*ceiling < m {
			out = append(out, at)
		}
	}
}
