// Package workload generates the load patterns of the paper's
// evaluation: closed-loop clients (§6.1, §6.4), open-loop Poisson
// clients (§6.3), and a synthetic Microsoft-Azure-Functions-like trace
// (§6.5) with heavy, cold, bursty and periodic function workloads.
//
// Workload generators sit at the very top of the lifecycle: they draw
// arrival gaps and model choices from named rng streams and push
// requests into a cluster, pacing themselves on the virtual clock.
package workload
