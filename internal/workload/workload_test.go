package workload

import (
	"math"
	"testing"
	"time"

	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

func newCluster() *core.Cluster {
	return core.NewCluster(core.ClusterConfig{Workers: 1, GPUsPerWorker: 1, NoNoise: true})
}

func TestClosedLoopMaintainsConcurrency(t *testing.T) {
	cl := newCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	c := NewClosedLoop(cl, "m", 100*time.Millisecond, 4)
	c.StopAt(simclock.Time(2 * time.Second))
	c.Start()
	cl.RunFor(3 * time.Second)

	if c.Sent() < 100 {
		t.Fatalf("sent only %d requests in 2s", c.Sent())
	}
	if c.Succeeded() == 0 {
		t.Fatal("nothing succeeded")
	}
	// Warm ResNet50 at batch ≤4: exec ≤5.88ms → roughly
	// 4/0.006 ≈ 600+ r/s; closed loop with 4 outstanding should get
	// at least a few hundred per second.
	if rate := float64(c.Sent()) / 2; rate < 300 {
		t.Fatalf("closed-loop rate %.0f r/s too low", rate)
	}
}

func TestClosedLoopPanicsOnBadConcurrency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClosedLoop(newCluster(), "m", time.Second, 0)
}

func TestOpenLoopRate(t *testing.T) {
	cl := newCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	c := NewOpenLoop(cl, rng.NewStream(1), "m", 100*time.Millisecond, 200)
	c.StopAt(simclock.Time(10 * time.Second))
	c.Start()
	cl.RunFor(11 * time.Second)

	rate := float64(c.Sent()) / 10
	if math.Abs(rate-200) > 20 {
		t.Fatalf("open-loop rate = %.0f r/s, want ≈200", rate)
	}
	if c.Succeeded() < c.Sent()*95/100 {
		t.Fatalf("only %d/%d within SLO", c.Succeeded(), c.Sent())
	}
}

func TestOpenLoopPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOpenLoop(newCluster(), rng.NewStream(1), "m", time.Second, 0)
}

func TestMAFTraceShape(t *testing.T) {
	s := rng.NewSource(7).Stream("maf")
	tr := SynthesizeMAF(s, MAFConfig{Functions: 2000, Minutes: 120})
	if len(tr.Functions) != 2000 || tr.Minutes != 120 {
		t.Fatal("dimensions wrong")
	}
	counts := tr.KindCounts()
	if counts[KindHeavy] == 0 || counts[KindCold] == 0 || counts[KindBursty] == 0 || counts[KindPeriodic] == 0 {
		t.Fatalf("missing function classes: %v", counts)
	}
	// Cold functions dominate by count.
	if counts[KindCold] < 1000 {
		t.Fatalf("cold functions = %d, want majority", counts[KindCold])
	}
	// Heavy functions dominate by volume despite being ~1% by count.
	var heavyVol, totalVol float64
	for i := range tr.Functions {
		v := tr.Functions[i].Total()
		totalVol += v
		if tr.Functions[i].Kind == KindHeavy {
			heavyVol += v
		}
	}
	if heavyVol/totalVol < 0.3 {
		t.Fatalf("heavy functions carry %.0f%% of volume, want ≥30%%", 100*heavyVol/totalVol)
	}
	if tr.TotalRate() <= 0 {
		t.Fatal("zero total rate")
	}
}

func TestMAFTraceIsDeterministic(t *testing.T) {
	a := SynthesizeMAF(rng.NewSource(7).Stream("maf"), MAFConfig{Functions: 100, Minutes: 30})
	b := SynthesizeMAF(rng.NewSource(7).Stream("maf"), MAFConfig{Functions: 100, Minutes: 30})
	for i := range a.Functions {
		for m := range a.Functions[i].MinuteRates {
			if a.Functions[i].MinuteRates[m] != b.Functions[i].MinuteRates[m] {
				t.Fatalf("traces diverge at function %d minute %d", i, m)
			}
		}
	}
}

func TestMAFPeriodicSpikes(t *testing.T) {
	s := rng.NewSource(7).Stream("maf")
	tr := SynthesizeMAF(s, MAFConfig{Functions: 3000, Minutes: 180})
	// Aggregate rate at minutes ≡ 0..2 (mod 60) should exceed mid-hour
	// minutes because periodic functions align near the hour top.
	var spikeSum, baseSum float64
	spikeN, baseN := 0, 0
	for m := 0; m < tr.Minutes; m++ {
		if m%60 <= 2 {
			spikeSum += tr.RateAtMinute(m)
			spikeN++
		} else if m%15 > 3 { // avoid 15-minute spikes in the base
			baseSum += tr.RateAtMinute(m)
			baseN++
		}
	}
	if spikeSum/float64(spikeN) <= baseSum/float64(baseN) {
		t.Fatal("no hourly spike structure in the aggregate trace")
	}
}

func TestMAFRateScale(t *testing.T) {
	a := SynthesizeMAF(rng.NewSource(7).Stream("maf"), MAFConfig{Functions: 200, Minutes: 30})
	b := SynthesizeMAF(rng.NewSource(7).Stream("maf"), MAFConfig{Functions: 200, Minutes: 30, RateScale: 1.5})
	ra, rb := a.TotalRate(), b.TotalRate()
	if math.Abs(rb/ra-1.5) > 1e-9 {
		t.Fatalf("rate scale: %v vs %v (ratio %v)", ra, rb, rb/ra)
	}
}

func TestFunctionKindStrings(t *testing.T) {
	for _, k := range []FunctionKind{KindHeavy, KindCold, KindBursty, KindPeriodic} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if FunctionKind(42).String() != "FunctionKind(42)" {
		t.Fatal("unknown kind string")
	}
}

func TestReplayerDrivesCluster(t *testing.T) {
	cl := newCluster()
	names, _ := cl.RegisterCopies("resnet18_v2", modelzoo.MustByName("resnet18_v2"), 4)
	s := rng.NewSource(7)
	tr := SynthesizeMAF(s.Stream("trace"), MAFConfig{Functions: 20, Minutes: 3})
	rp := NewReplayer(cl, s.Stream("replay"), tr, names, 100*time.Millisecond)
	rp.Start()
	cl.RunFor(4 * time.Minute)

	if rp.Sent() == 0 {
		t.Fatal("replayer sent nothing")
	}
	st := cl.Ctl.Stats()
	if st.Requests != rp.Sent() {
		t.Fatalf("controller saw %d, replayer sent %d", st.Requests, rp.Sent())
	}
	if st.Succeeded == 0 {
		t.Fatal("nothing succeeded")
	}
}

func TestReplayerPanicsWithoutModels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplayer(newCluster(), rng.NewStream(1), &Trace{}, nil, time.Second)
}
