package workload

import (
	"time"

	"clockwork/internal/core"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// ClosedLoopClient maintains a fixed number of outstanding requests to
// one model: each response immediately triggers the next request
// (§6.1 runs 16 such clients per model).
type ClosedLoopClient struct {
	cl          *core.Cluster
	model       string
	slo         time.Duration
	concurrency int
	stopAt      simclock.Time

	sent      uint64
	succeeded uint64
}

// NewClosedLoop returns a closed-loop client; Start begins submission.
func NewClosedLoop(cl *core.Cluster, model string, slo time.Duration, concurrency int) *ClosedLoopClient {
	if concurrency <= 0 {
		panic("workload: non-positive concurrency")
	}
	return &ClosedLoopClient{cl: cl, model: model, slo: slo, concurrency: concurrency, stopAt: simclock.MaxTime}
}

// StopAt sets the instant after which completed requests are not
// re-issued. Must be called before Start.
func (c *ClosedLoopClient) StopAt(t simclock.Time) { c.stopAt = t }

// SetSLO changes the SLO used for subsequent requests (the §6.3 SLO
// sweep raises it mid-run).
func (c *ClosedLoopClient) SetSLO(slo time.Duration) { c.slo = slo }

// Start issues the initial window of requests.
func (c *ClosedLoopClient) Start() {
	for i := 0; i < c.concurrency; i++ {
		c.submit()
	}
}

func (c *ClosedLoopClient) submit() {
	if c.cl.Eng.Now() >= c.stopAt {
		return
	}
	c.sent++
	c.cl.Submit(c.model, c.slo, func(r core.Response, l time.Duration) {
		if r.Success && l <= c.slo {
			c.succeeded++
		}
		c.submit()
	})
}

// Sent returns the number of requests issued.
func (c *ClosedLoopClient) Sent() uint64 { return c.sent }

// Succeeded returns the number of responses within SLO.
func (c *ClosedLoopClient) Succeeded() uint64 { return c.succeeded }

// OpenLoopClient submits requests with Poisson (exponential inter-
// arrival) timing at a configurable rate, independent of responses
// (§6.3 uses one per model).
type OpenLoopClient struct {
	cl     *core.Cluster
	model  string
	slo    time.Duration
	rate   float64 // requests/second
	stream *rng.Stream
	stopAt simclock.Time

	sent      uint64
	succeeded uint64
}

// NewOpenLoop returns an open-loop Poisson client.
func NewOpenLoop(cl *core.Cluster, stream *rng.Stream, model string, slo time.Duration, rate float64) *OpenLoopClient {
	if rate <= 0 {
		panic("workload: non-positive rate")
	}
	return &OpenLoopClient{cl: cl, model: model, slo: slo, rate: rate, stream: stream, stopAt: simclock.MaxTime}
}

// StopAt bounds the submission window. Must be called before Start.
func (c *OpenLoopClient) StopAt(t simclock.Time) { c.stopAt = t }

// SetSLO changes the SLO used for subsequent requests.
func (c *OpenLoopClient) SetSLO(slo time.Duration) { c.slo = slo }

// Start schedules the first arrival.
func (c *OpenLoopClient) Start() { c.scheduleNext() }

func (c *OpenLoopClient) scheduleNext() {
	gap := time.Duration(c.stream.Exp(1.0/c.rate) * float64(time.Second))
	c.cl.Eng.After(gap, func() {
		if c.cl.Eng.Now() >= c.stopAt {
			return
		}
		c.sent++
		c.cl.Submit(c.model, c.slo, func(r core.Response, l time.Duration) {
			if r.Success && l <= c.slo {
				c.succeeded++
			}
		})
		c.scheduleNext()
	})
}

// Sent returns the number of requests issued.
func (c *OpenLoopClient) Sent() uint64 { return c.sent }

// Succeeded returns the number of responses within SLO.
func (c *OpenLoopClient) Succeeded() uint64 { return c.succeeded }
