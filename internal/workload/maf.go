package workload

import (
	"fmt"
	"math"
	"time"

	"clockwork/internal/core"
	"clockwork/internal/rng"
)

// FunctionKind classifies a synthetic serverless function workload,
// mirroring the behaviour classes Shahrad et al. [51] report in the
// Microsoft Azure Functions (MAF) trace that §6.5 replays.
type FunctionKind uint8

// The four behaviour classes of the MAF trace.
const (
	// KindHeavy: sustained high-rate invocations with a slow diurnal
	// swell — a small fraction of functions carrying most invocations.
	KindHeavy FunctionKind = iota
	// KindCold: very low utilisation; minutes to hours between calls.
	KindCold
	// KindBursty: on/off behaviour; quiet stretches then active bursts.
	KindBursty
	// KindPeriodic: cron-like spikes every 60 (or 15) minutes — the
	// source of Fig 8's hourly latency spikes.
	KindPeriodic
)

// String implements fmt.Stringer.
func (k FunctionKind) String() string {
	switch k {
	case KindHeavy:
		return "heavy"
	case KindCold:
		return "cold"
	case KindBursty:
		return "bursty"
	case KindPeriodic:
		return "periodic"
	default:
		return fmt.Sprintf("FunctionKind(%d)", uint8(k))
	}
}

// FunctionTrace is one function's invocation counts per minute.
type FunctionTrace struct {
	ID          int
	Kind        FunctionKind
	MinuteRates []float64 // expected invocations per minute
}

// Total returns the expected total invocations of the function.
func (f *FunctionTrace) Total() float64 {
	var s float64
	for _, r := range f.MinuteRates {
		s += r
	}
	return s
}

// Trace is a set of function workloads over a common duration.
type Trace struct {
	Minutes   int
	Functions []FunctionTrace
}

// TotalRate returns the trace-wide mean request rate in requests/second.
func (t *Trace) TotalRate() float64 {
	var s float64
	for i := range t.Functions {
		s += t.Functions[i].Total()
	}
	return s / (float64(t.Minutes) * 60)
}

// RateAtMinute returns the expected requests/second during minute m.
func (t *Trace) RateAtMinute(m int) float64 {
	var s float64
	for i := range t.Functions {
		if m < len(t.Functions[i].MinuteRates) {
			s += t.Functions[i].MinuteRates[m]
		}
	}
	return s / 60
}

// KindCounts returns how many functions fall in each class.
func (t *Trace) KindCounts() map[FunctionKind]int {
	out := make(map[FunctionKind]int)
	for i := range t.Functions {
		out[t.Functions[i].Kind]++
	}
	return out
}

// MAFConfig tunes trace synthesis. The defaults approximate the
// published MAF shape: ~1% heavy functions carrying most load, ~64%
// nearly idle, ~20% bursty, ~15% periodic (split between hourly and
// 15-minute periods).
type MAFConfig struct {
	Functions int
	Minutes   int
	// RateScale multiplies every function's rate (the §6.5 experiment
	// replays the trace "scaled up 1.5×").
	RateScale float64

	FracHeavy    float64
	FracBursty   float64
	FracPeriodic float64
	// The remainder is cold.
}

func (c MAFConfig) withDefaults() MAFConfig {
	if c.Functions <= 0 {
		c.Functions = 1000
	}
	if c.Minutes <= 0 {
		c.Minutes = 60
	}
	if c.RateScale <= 0 {
		c.RateScale = 1
	}
	if c.FracHeavy <= 0 {
		c.FracHeavy = 0.01
	}
	if c.FracBursty <= 0 {
		c.FracBursty = 0.20
	}
	if c.FracPeriodic <= 0 {
		c.FracPeriodic = 0.15
	}
	return c
}

// SynthesizeMAF generates a deterministic MAF-like trace.
func SynthesizeMAF(stream *rng.Stream, cfg MAFConfig) *Trace {
	cfg = cfg.withDefaults()
	tr := &Trace{Minutes: cfg.Minutes}
	for i := 0; i < cfg.Functions; i++ {
		f := FunctionTrace{ID: i, MinuteRates: make([]float64, cfg.Minutes)}
		u := stream.Float64()
		switch {
		case u < cfg.FracHeavy:
			f.Kind = KindHeavy
			synthHeavy(stream, &f, cfg)
		case u < cfg.FracHeavy+cfg.FracBursty:
			f.Kind = KindBursty
			synthBursty(stream, &f, cfg)
		case u < cfg.FracHeavy+cfg.FracBursty+cfg.FracPeriodic:
			f.Kind = KindPeriodic
			synthPeriodic(stream, &f, cfg)
		default:
			f.Kind = KindCold
			synthCold(stream, &f, cfg)
		}
		tr.Functions = append(tr.Functions, f)
	}
	return tr
}

func synthHeavy(s *rng.Stream, f *FunctionTrace, cfg MAFConfig) {
	// Base rate lognormal around ~300 invocations/min with a diurnal
	// sinusoid (period 24h, so over shorter traces it is a slow drift).
	base := s.LogNormal(math.Log(300), 0.8)
	phase := s.Float64() * 2 * math.Pi
	for m := range f.MinuteRates {
		diurnal := 1 + 0.3*math.Sin(2*math.Pi*float64(m)/(24*60)+phase)
		f.MinuteRates[m] = base * diurnal * cfg.RateScale
	}
}

func synthCold(s *rng.Stream, f *FunctionTrace, cfg MAFConfig) {
	// Expected gap between invocations: minutes to hours.
	rate := s.LogNormal(math.Log(0.05), 1.2) // invocations/min
	for m := range f.MinuteRates {
		f.MinuteRates[m] = rate * cfg.RateScale
	}
}

func synthBursty(s *rng.Stream, f *FunctionTrace, cfg MAFConfig) {
	// Two-state on/off process: mean off 30min, mean on 5min.
	on := s.Bernoulli(5.0 / 35.0)
	burstRate := s.LogNormal(math.Log(20), 1.0)
	for m := range f.MinuteRates {
		if on {
			f.MinuteRates[m] = burstRate * cfg.RateScale
			if s.Bernoulli(1.0 / 5.0) {
				on = false
			}
		} else {
			f.MinuteRates[m] = 0.01 * cfg.RateScale
			if s.Bernoulli(1.0 / 30.0) {
				on = true
			}
		}
	}
}

func synthPeriodic(s *rng.Stream, f *FunctionTrace, cfg MAFConfig) {
	// Hourly (2/3 of periodic functions) or 15-minute (1/3) spikes of
	// one minute, aligned to the period (the MAF paper observes strong
	// alignment, which is what makes Fig 8's spikes visible).
	period := 60
	if s.Bernoulli(1.0 / 3.0) {
		period = 15
	}
	offset := s.Intn(3) // most cron jobs fire at the top of the period
	spike := s.LogNormal(math.Log(60), 0.8)
	base := 0.02
	for m := range f.MinuteRates {
		if m%period == offset {
			f.MinuteRates[m] = spike * cfg.RateScale
		} else {
			f.MinuteRates[m] = base * cfg.RateScale
		}
	}
}

// Replayer drives a Trace against a cluster, mapping functions onto
// model instances round-robin (§6.5 replays "four or five function
// workloads for each model instance").
type Replayer struct {
	cl     *core.Cluster
	trace  *Trace
	models []string
	slo    time.Duration
	stream *rng.Stream

	sent uint64
}

// NewReplayer binds a trace to a cluster and model set.
func NewReplayer(cl *core.Cluster, stream *rng.Stream, trace *Trace, models []string, slo time.Duration) *Replayer {
	if len(models) == 0 {
		panic("workload: replayer needs models")
	}
	return &Replayer{cl: cl, trace: trace, models: models, slo: slo, stream: stream}
}

// Sent returns the number of requests issued so far.
func (rp *Replayer) Sent() uint64 { return rp.sent }

// Start schedules the whole replay: for each minute and function, a
// Poisson-distributed number of arrivals lands uniformly within the
// minute, targeted at the function's model instance. Minutes chain
// lazily so the event heap holds at most one minute of arrivals.
func (rp *Replayer) Start() {
	rp.cl.Eng.After(0, func() { rp.scheduleMinuteBody(0) })
}

func (rp *Replayer) scheduleMinuteBody(m int) {
	if m >= rp.trace.Minutes {
		return
	}
	for i := range rp.trace.Functions {
		f := &rp.trace.Functions[i]
		rate := f.MinuteRates[m]
		if rate <= 0 {
			continue
		}
		n := rp.stream.Poisson(rate)
		model := rp.models[f.ID%len(rp.models)]
		for k := 0; k < n; k++ {
			at := time.Duration(rp.stream.Float64() * float64(time.Minute))
			rp.cl.Eng.After(at, func() {
				rp.sent++
				rp.cl.Submit(model, rp.slo, nil)
			})
		}
	}
	rp.cl.Eng.After(time.Minute, func() { rp.scheduleMinuteBody(m + 1) })
}
