// Package baseline implements the reactive, best-effort model serving
// policies Clockwork is compared against in §6.1: a Clipper-like system
// and an INFaaS-like system. Both run on the same simulated substrate as
// Clockwork so that Fig 5 isolates the effect of the *policy*:
//
//   - Neither performs admission control: the SLO is a soft, reactive
//     target and requests execute even after their deadline has passed.
//   - Placement is static/reactive rather than globally planned.
//   - Batching adapts by feedback (AIMD / reactive variant selection)
//     rather than by deadline arithmetic.
//
// The Clipper baseline additionally executes kernels concurrently
// (thread-pool per model container), inheriting the hardware scheduler's
// latency variability (Fig 2b) — configure its cluster with
// WorkerBestEffort: true.
//
// Both register themselves in the policy registry (names "clipper" and
// "infaas") from init, so clockwork.New(Config{Policy: ...}) — and any
// shard of a partitioned control plane — can run them without this
// package being imported explicitly anywhere else.
package baseline
