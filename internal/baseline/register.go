package baseline

import "clockwork/internal/core"

// The baselines self-register with the policy registry, so the public
// API (and anything else resolving policies by name) picks them up
// without hard-wiring baseline constructors into New.
func init() {
	core.MustRegisterPolicy("clipper", core.PolicySpec{
		New:                     func() core.Scheduler { return NewClipper() },
		DisableAdmissionControl: true,
		WorkerBestEffort:        true,
		Description:             "Clipper-like baseline [11]: per-model containers, AIMD batching, static placement, concurrent EXECs",
	})
	core.MustRegisterPolicy("infaas", core.PolicySpec{
		New:                     func() core.Scheduler { return NewINFaaS() },
		DisableAdmissionControl: true,
		Description:             "INFaaS-like baseline [48]: profiled variant selection, reactive replica scaling, FIFO dispatch",
	})
}

// enabledGPUs returns the schedulable (non-drained, non-failed) GPU
// mirrors, preserving controller order.
func enabledGPUs(c *core.Controller) []*core.GPUMirror {
	all := c.GPUs()
	for i, g := range all {
		if g.Disabled() {
			// Rare path: copy-on-filter only once a GPU is disabled.
			live := make([]*core.GPUMirror, 0, len(all)-1)
			live = append(live, all[:i]...)
			for _, g2 := range all[i+1:] {
				if !g2.Disabled() {
					live = append(live, g2)
				}
			}
			return live
		}
	}
	return all
}
