package baseline

import (
	"time"

	"clockwork/internal/action"
	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// INFaaS approximates INFaaS's model-less serving [48]: per-model
// "variant" selection (here: batch size whose profiled latency fits
// within half the SLO), reactive replica scaling when a model's queue
// grows, and work-conserving FIFO dispatch. Like Clipper it treats the
// SLO as a coarse reactive goal: no admission control, no deadline
// arithmetic, no proactive loading.
type INFaaS struct {
	c *core.Controller

	placement map[string][]*core.GPUMirror // replicas, in placement order
	nextGPU   int
	sloOf     map[string]time.Duration
	// outstanding counts in-flight INFER actions per GPU; dispatch keeps
	// each GPU's pipeline shallow but busy.
	outstanding map[*core.GPUMirror]int
	lastScale   map[string]simclock.Time
}

// Reactive knobs.
const (
	infaasPipelineDepth = 2
	// infaasScaleQueue is the queue length that triggers adding a
	// replica, and infaasScaleCooldown rate-limits scaling decisions —
	// the reactive lag that hurts INFaaS at tight SLOs.
	infaasScaleQueue    = 32
	infaasScaleCooldown = 2 * time.Second
)

// NewINFaaS returns the INFaaS-like scheduler.
func NewINFaaS() *INFaaS {
	return &INFaaS{
		placement:   make(map[string][]*core.GPUMirror),
		sloOf:       make(map[string]time.Duration),
		outstanding: make(map[*core.GPUMirror]int),
		lastScale:   make(map[string]simclock.Time),
	}
}

// Attach implements core.Scheduler.
func (s *INFaaS) Attach(c *core.Controller) { s.c = c }

// OnCancel implements core.Scheduler.
func (s *INFaaS) OnCancel(*core.Request) {}

// OnRequest implements core.Scheduler.
func (s *INFaaS) OnRequest(r *core.Request) {
	s.sloOf[r.Model] = r.SLO
	mi, _ := s.c.Model(r.Model)
	replicas := s.replicasOf(mi)
	s.maybeScale(mi)
	for _, g := range replicas {
		s.pump(g)
	}
}

// OnResult implements core.Scheduler.
func (s *INFaaS) OnResult(res action.Result) {
	g := s.c.GPUs()[0]
	for _, cand := range s.c.GPUs() {
		if cand.WorkerID == res.WorkerID && cand.GPU == res.GPU {
			g = cand
			break
		}
	}
	if res.Type == action.Infer && s.outstanding[g] > 0 {
		s.outstanding[g]--
	}
	s.pump(g)
}

// replicasOf returns (creating on first use) the model's replica set.
// Replicas on drained or failed GPUs are dropped; a model left with no
// live replica is re-placed on a schedulable GPU.
func (s *INFaaS) replicasOf(mi *core.ModelInfo) []*core.GPUMirror {
	if rs, ok := s.placement[mi.Name()]; ok {
		live := rs
		for _, g := range rs {
			if g.Disabled() {
				live = nil
				for _, g2 := range rs {
					if !g2.Disabled() {
						live = append(live, g2)
					}
				}
				break
			}
		}
		if len(live) > 0 {
			s.placement[mi.Name()] = live
			return live
		}
		delete(s.placement, mi.Name())
	}
	gpus := enabledGPUs(s.c)
	if len(gpus) == 0 {
		return nil
	}
	g := gpus[s.nextGPU%len(gpus)]
	s.nextGPU++
	s.placement[mi.Name()] = []*core.GPUMirror{g}
	s.ensureLoaded(g, mi)
	return s.placement[mi.Name()]
}

// maybeScale adds a replica when the queue has grown past the reactive
// threshold — with a cooldown, so bursts are chased rather than planned.
func (s *INFaaS) maybeScale(mi *core.ModelInfo) {
	if mi.QueuedCount() < infaasScaleQueue {
		return
	}
	now := s.c.Now()
	if last, ok := s.lastScale[mi.Name()]; ok && now.Sub(last) < infaasScaleCooldown {
		return
	}
	gpus := s.c.GPUs()
	if len(s.placement[mi.Name()]) >= len(gpus) {
		return
	}
	// Pick the GPU with the fewest outstanding actions not already
	// hosting the model.
	var best *core.GPUMirror
	for _, g := range gpus {
		if g.Disabled() {
			continue
		}
		if _, resident := g.Resident(mi.Name()); resident {
			continue
		}
		if best == nil || s.outstanding[g] < s.outstanding[best] {
			best = g
		}
	}
	if best == nil {
		return
	}
	s.lastScale[mi.Name()] = now
	s.placement[mi.Name()] = append(s.placement[mi.Name()], best)
	s.ensureLoaded(best, mi)
}

func (s *INFaaS) ensureLoaded(g *core.GPUMirror, mi *core.ModelInfo) {
	if _, resident := g.Resident(mi.Name()); resident {
		return
	}
	if !evictFor(s.c, g, mi) {
		return
	}
	s.c.SendLoad(g, mi, s.c.Now(), simclock.MaxTime)
}

// variantBatch picks the batch size whose profiled execution latency
// fits in half the SLO — INFaaS's variant selection, computed from
// profiles rather than live deadlines.
func (s *INFaaS) variantBatch(mi *core.ModelInfo) int {
	slo := s.sloOf[mi.Name()]
	if slo <= 0 {
		return modelzoo.MaxBatch
	}
	best := 1
	for _, b := range modelzoo.BatchSizes {
		if s.c.EstimateExec(mi, b) <= slo/2 {
			best = b
		}
	}
	return best
}

// pump dispatches FIFO work to g while its pipeline has room.
func (s *INFaaS) pump(g *core.GPUMirror) {
	if g.Disabled() {
		return
	}
	for s.outstanding[g] < infaasPipelineDepth {
		// Oldest-arrival-first across the models placed on g, with
		// request ID as the tie-break: closed-loop clients routinely
		// submit at the same instant, and without the tie-break this
		// pick depended on Go map iteration order — the one source of
		// run-to-run nondeterminism the determinism harness found.
		var pick *core.ModelInfo
		var pickReady simclock.Time
		var pickID uint64
		var oldest simclock.Time = simclock.MaxTime
		for mi := range g.ModelsWithWork() {
			r := mi.PeekOldest()
			if r == nil {
				continue
			}
			readyAt, resident := g.Resident(mi.Name())
			if !resident {
				continue
			}
			if r.Arrival < oldest || (r.Arrival == oldest && (pick == nil || r.ID < pickID)) {
				oldest = r.Arrival
				pick = mi
				pickReady = readyAt
				pickID = r.ID
			}
		}
		if pick == nil {
			return
		}
		batch := s.variantBatch(pick)
		if batch > pick.QueuedCount() {
			batch = compiledBatchAtMost(pick.QueuedCount())
		}
		// Per-request batch caps bound the batch further.
		batch = compiledBatchAtMost(pick.CapBatch(batch))
		reqs := pick.PopBatch(batch)
		// The window opens when the (possibly in-flight) LOAD lands.
		earliest := simclock.Max(s.c.Now(), pickReady)
		s.c.SendInfer(g, pick, batch, reqs, earliest, simclock.MaxTime)
		s.outstanding[g]++
	}
}
