package baseline

import (
	"time"

	"clockwork/internal/action"
	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
	"clockwork/internal/simclock"
)

// Clipper approximates Clipper's serving layer [11]: per-model containers
// with their own queues and adaptive (AIMD) batch sizing that treats the
// SLO as an average latency target, placed statically round-robin, with
// lazy model loading.
type Clipper struct {
	c *core.Controller

	placement map[string]*core.GPUMirror
	nextGPU   int
	state     map[string]*clipperModel
}

type clipperModel struct {
	maxBatch    float64 // AIMD-adapted batch limit
	lastSLO     time.Duration
	outstanding int // in-flight INFER actions for this model
}

// NewClipper returns the Clipper-like scheduler.
func NewClipper() *Clipper {
	return &Clipper{
		placement: make(map[string]*core.GPUMirror),
		state:     make(map[string]*clipperModel),
	}
}

// Attach implements core.Scheduler.
func (s *Clipper) Attach(c *core.Controller) { s.c = c }

// OnCancel implements core.Scheduler (admission control is disabled for
// baselines, so this never fires).
func (s *Clipper) OnCancel(*core.Request) {}

func (s *Clipper) modelState(name string) *clipperModel {
	st, ok := s.state[name]
	if !ok {
		st = &clipperModel{maxBatch: 1}
		s.state[name] = st
	}
	return st
}

// place statically assigns a model to a GPU round-robin on first use,
// re-placing it when its GPU has been drained or failed. Returns nil
// when no schedulable GPU remains.
func (s *Clipper) place(model string) *core.GPUMirror {
	if g, ok := s.placement[model]; ok && !g.Disabled() {
		return g
	}
	gpus := enabledGPUs(s.c)
	if len(gpus) == 0 {
		return nil
	}
	g := gpus[s.nextGPU%len(gpus)]
	s.nextGPU++
	s.placement[model] = g
	return g
}

// OnRequest implements core.Scheduler.
func (s *Clipper) OnRequest(r *core.Request) {
	mi, _ := s.c.Model(r.Model)
	st := s.modelState(r.Model)
	st.lastSLO = r.SLO
	g := s.place(r.Model)
	if g == nil {
		return
	}
	s.ensureLoaded(g, mi)
	s.pump(g, mi, st)
}

// OnResult implements core.Scheduler.
func (s *Clipper) OnResult(res action.Result) {
	mi, ok := s.c.Model(res.Model)
	if !ok {
		return
	}
	st := s.modelState(res.Model)
	if res.Type == action.Infer {
		if st.outstanding > 0 {
			st.outstanding--
		}
		if res.Status.IsSuccess() && st.lastSLO > 0 {
			// AIMD: Clipper grows batch while the measured batch
			// latency stays under the target, and backs off
			// multiplicatively when it overshoots.
			if res.Duration > st.lastSLO*8/10 {
				st.maxBatch *= 0.8
				if st.maxBatch < 1 {
					st.maxBatch = 1
				}
			} else if st.maxBatch < modelzoo.MaxBatch {
				st.maxBatch += 0.25
			}
		}
	}
	g := s.place(res.Model)
	if g == nil {
		return
	}
	s.pump(g, mi, st)
}

// ensureLoaded lazily loads the model, evicting LRU victims if required
// (a reactive cold start: the first requests wait out the transfer).
func (s *Clipper) ensureLoaded(g *core.GPUMirror, mi *core.ModelInfo) {
	if _, resident := g.Resident(mi.Name()); resident {
		return
	}
	if !evictFor(s.c, g, mi) {
		return // cannot make room; requests will wait for a retry
	}
	now := s.c.Now()
	s.c.SendLoad(g, mi, now, simclock.MaxTime)
}

// pump keeps one batch in flight per model container.
func (s *Clipper) pump(g *core.GPUMirror, mi *core.ModelInfo, st *clipperModel) {
	for st.outstanding < 1 && mi.QueuedCount() > 0 {
		readyAt, resident := g.Resident(mi.Name())
		if !resident {
			s.ensureLoaded(g, mi)
			if readyAt, resident = g.Resident(mi.Name()); !resident {
				return
			}
		}
		batch := compiledBatchAtMost(int(st.maxBatch))
		if batch > mi.QueuedCount() {
			batch = compiledBatchAtMost(mi.QueuedCount())
		}
		// Per-request batch caps bound the batch further.
		batch = compiledBatchAtMost(mi.CapBatch(batch))
		reqs := mi.PopBatch(batch)
		// The window opens when the (possibly in-flight) LOAD lands.
		earliest := simclock.Max(s.c.Now(), readyAt)
		s.c.SendInfer(g, mi, batch, reqs, earliest, simclock.MaxTime)
		st.outstanding++
	}
}

// compiledBatchAtMost returns the largest compiled batch size ≤ n (≥ 1).
func compiledBatchAtMost(n int) int {
	best := 1
	for _, b := range modelzoo.BatchSizes {
		if b <= n {
			best = b
		}
	}
	return best
}

// evictFor frees pages for mi on g by unloading LRU victims; shared by
// both baselines.
func evictFor(c *core.Controller, g *core.GPUMirror, mi *core.ModelInfo) bool {
	need := mi.Zoo().Pages(g.Pages.PageSize())
	if need > g.Pages.TotalPages() {
		return false
	}
	for g.Pages.FreePages() < need {
		victim := ""
		keys := g.Pages.Keys()
		for i := len(keys) - 1; i >= 0; i-- {
			name := keys[i]
			if g.IsLoading(name) || g.InFlight(name) > 0 {
				continue
			}
			victim = name
			break
		}
		if victim == "" {
			return false
		}
		vmi, ok := c.Model(victim)
		if !ok {
			return false
		}
		c.SendUnload(g, vmi)
	}
	return true
}
