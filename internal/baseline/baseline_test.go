package baseline

import (
	"testing"
	"time"

	"clockwork/internal/core"
	"clockwork/internal/modelzoo"
)

func clipperCluster() *core.Cluster {
	return core.NewCluster(core.ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		Scheduler:        NewClipper(),
		WorkerBestEffort: true,
		Controller:       core.Config{DisableAdmissionControl: true},
		NoNoise:          true,
	})
}

func infaasCluster() *core.Cluster {
	return core.NewCluster(core.ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		Scheduler:  NewINFaaS(),
		Controller: core.Config{DisableAdmissionControl: true},
		NoNoise:    true,
	})
}

func TestClipperServesRequests(t *testing.T) {
	cl := clipperCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	ok := 0
	for i := 0; i < 20; i++ {
		cl.Submit("m", 100*time.Millisecond, func(r core.Response, _ time.Duration) {
			if r.Success {
				ok++
			}
		})
		cl.RunFor(10 * time.Millisecond)
	}
	cl.RunFor(time.Second)
	if ok != 20 {
		t.Fatalf("served %d/20", ok)
	}
}

func TestClipperNeverCancels(t *testing.T) {
	cl := clipperCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	late, ok := 0, 0
	// An unmeetable SLO: Clockwork would cancel; Clipper executes late.
	for i := 0; i < 10; i++ {
		cl.Submit("m", time.Millisecond, func(r core.Response, l time.Duration) {
			if r.Success {
				ok++
				if l > time.Millisecond {
					late++
				}
			}
		})
	}
	cl.RunFor(2 * time.Second)
	if ok != 10 {
		t.Fatalf("served %d/10", ok)
	}
	if late != 10 {
		t.Fatalf("expected all 10 to be served late, got %d", late)
	}
	if cl.Ctl.Stats().Cancelled != 0 {
		t.Fatal("baselines must not cancel in advance")
	}
}

func TestClipperBatchesUnderLoad(t *testing.T) {
	cl := clipperCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	// Closed-loop-ish sustained pressure grows the AIMD batch over time.
	sawBatch := false
	var loop func(i int)
	loop = func(i int) {
		if i > 4000 {
			return
		}
		for j := 0; j < 4; j++ {
			cl.Submit("m", 500*time.Millisecond, func(r core.Response, _ time.Duration) {
				if r.Success && r.Batch > 1 {
					sawBatch = true
				}
			})
		}
		cl.Eng.After(2*time.Millisecond, func() { loop(i + 1) })
	}
	loop(0)
	cl.RunFor(3 * time.Second)
	if !sawBatch {
		t.Fatal("AIMD batching never exceeded batch 1 under sustained load")
	}
}

func TestClipperStaticPlacement(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{
		Workers: 2, GPUsPerWorker: 1,
		Scheduler:        NewClipper(),
		WorkerBestEffort: true,
		Controller:       core.Config{DisableAdmissionControl: true},
		NoNoise:          true,
	})
	cl.RegisterModel("a", modelzoo.ResNet50())
	cl.RegisterModel("b", modelzoo.ResNet50())
	cl.Submit("a", 100*time.Millisecond, nil)
	cl.Submit("b", 100*time.Millisecond, nil)
	cl.RunFor(500 * time.Millisecond)
	// Round-robin: the two models land on different GPUs.
	miA, _ := cl.Ctl.Model("a")
	miB, _ := cl.Ctl.Model("b")
	for g := range miA.ResidentOn() {
		if miB.ResidentOn()[g] {
			t.Fatal("round-robin placement put both models on one GPU")
		}
	}
}

func TestINFaaSServesRequests(t *testing.T) {
	cl := infaasCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	ok := 0
	for i := 0; i < 20; i++ {
		cl.Submit("m", 100*time.Millisecond, func(r core.Response, _ time.Duration) {
			if r.Success {
				ok++
			}
		})
		cl.RunFor(10 * time.Millisecond)
	}
	cl.RunFor(time.Second)
	if ok != 20 {
		t.Fatalf("served %d/20", ok)
	}
}

func TestINFaaSVariantSelectionRespectsSLO(t *testing.T) {
	cl := infaasCluster()
	cl.RegisterModel("m", modelzoo.ResNet50())
	// Generous SLO: expect large batches under a burst.
	batches := map[int]int{}
	// Warm first.
	cl.Submit("m", 500*time.Millisecond, nil)
	cl.RunFor(100 * time.Millisecond)
	for i := 0; i < 32; i++ {
		cl.Submit("m", 500*time.Millisecond, func(r core.Response, _ time.Duration) {
			if r.Success {
				batches[r.Batch]++
			}
		})
	}
	cl.RunFor(time.Second)
	sawLarge := false
	for b := range batches {
		if b >= 8 {
			sawLarge = true
		}
	}
	if !sawLarge {
		t.Fatalf("expected large batches with a 500ms SLO: %v", batches)
	}

	// Tight SLO: variant selection caps batch so exec fits SLO/2.
	cl2 := infaasCluster()
	cl2.RegisterModel("m", modelzoo.ResNet50())
	cl2.Submit("m", 10*time.Millisecond, nil)
	cl2.RunFor(100 * time.Millisecond)
	batches2 := map[int]int{}
	for i := 0; i < 32; i++ {
		cl2.Submit("m", 10*time.Millisecond, func(r core.Response, _ time.Duration) {
			if r.Success {
				batches2[r.Batch]++
			}
		})
	}
	cl2.RunFor(time.Second)
	for b := range batches2 {
		// 10ms SLO → exec must fit 5ms → batch ≤ 2 for ResNet50
		// (B2=3.95ms, B4=5.88ms).
		if b > 2 {
			t.Fatalf("batch %d violates variant selection for 10ms SLO: %v", b, batches2)
		}
	}
}

func TestINFaaSReactiveScaling(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{
		Workers: 2, GPUsPerWorker: 1,
		Scheduler:  NewINFaaS(),
		Controller: core.Config{DisableAdmissionControl: true},
		NoNoise:    true,
	})
	cl.RegisterModel("m", modelzoo.ResNet50())
	// Overload one model far past the scale threshold.
	var loop func(i int)
	loop = func(i int) {
		if i > 3000 {
			return
		}
		for j := 0; j < 3; j++ {
			cl.Submit("m", time.Second, nil)
		}
		cl.Eng.After(time.Millisecond, func() { loop(i + 1) })
	}
	loop(0)
	cl.RunFor(5 * time.Second)
	mi, _ := cl.Ctl.Model("m")
	if len(mi.ResidentOn()) < 2 {
		t.Fatalf("INFaaS should have scaled to a second replica, resident on %d", len(mi.ResidentOn()))
	}
}

func TestCompiledBatchAtMost(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 7: 4, 8: 8, 15: 8, 16: 16, 100: 16, 0: 1}
	for n, want := range cases {
		if got := compiledBatchAtMost(n); got != want {
			t.Errorf("compiledBatchAtMost(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBaselineEvictionUnderPressure(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{
		Workers: 1, GPUsPerWorker: 1,
		Scheduler:      NewClipper(),
		Controller:     core.Config{DisableAdmissionControl: true},
		NoNoise:        true,
		PageCacheBytes: 7 * 16 * 1024 * 1024, // one ResNet50
	})
	cl.RegisterModel("a", modelzoo.ResNet50())
	cl.RegisterModel("b", modelzoo.ResNet50())
	okA, okB := 0, 0
	for i := 0; i < 4; i++ {
		model, cnt := "a", &okA
		if i%2 == 1 {
			model, cnt = "b", &okB
		}
		cl.Submit(model, time.Second, func(r core.Response, _ time.Duration) {
			if r.Success {
				*cnt++
			}
		})
		cl.RunFor(500 * time.Millisecond)
	}
	if okA != 2 || okB != 2 {
		t.Fatalf("okA=%d okB=%d", okA, okB)
	}
	if cl.Ctl.Stats().ActionsUnload == 0 {
		t.Fatal("expected evictions")
	}
}
