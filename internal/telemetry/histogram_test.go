package telemetry

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be zero")
	}
	if h.String() != "hist{empty}" {
		t.Fatalf("String: %q", h.String())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if mean := h.Mean(); mean < 1900*time.Microsecond || mean > 2100*time.Microsecond {
		t.Fatalf("mean=%v", mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Millisecond},
		{0.9, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if rel > 0.05 {
			t.Errorf("q=%v: got %v want ≈%v (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	if h.Quantile(0) != time.Millisecond {
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
	if h.Quantile(1) != time.Second {
		t.Fatalf("q1 = %v", h.Quantile(1))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("negative observation should clamp to 0")
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Nanosecond) // below floor
	h.Observe(100 * time.Hour) // beyond top decade
	if h.Count() != 2 {
		t.Fatal("observations lost")
	}
	if h.Quantile(1) != 100*time.Hour {
		t.Fatal("max not exact")
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if f := h.FractionBelow(50 * time.Millisecond); math.Abs(f-0.5) > 0.02 {
		t.Fatalf("FractionBelow(50ms) = %v", f)
	}
	if f := h.FractionBelow(time.Second); f != 1.0 {
		t.Fatalf("FractionBelow(1s) = %v", f)
	}
	if f := h.FractionBelow(time.Microsecond); f != 0 {
		t.Fatalf("FractionBelow(1µs) = %v", f)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != 2 || a.Min() != time.Millisecond || a.Max() != 3*time.Millisecond {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestHistogramCDFDefaults(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	points := h.CDF()
	if len(points) != len(StandardPercentiles) {
		t.Fatalf("points=%d", len(points))
	}
	if FormatCDF(points) == "" {
		t.Fatal("empty FormatCDF")
	}
}

// Property: quantiles are monotone non-decreasing in q and bounded by
// [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v%10_000_000) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: counts are conserved through merge.
func TestHistogramMergeConservesCountProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		ha, hb := NewHistogram(), NewHistogram()
		for _, v := range a {
			ha.Observe(time.Duration(v) * time.Microsecond)
		}
		for _, v := range b {
			hb.Observe(time.Duration(v) * time.Microsecond)
		}
		ha.Merge(hb)
		return ha.Count() == uint64(len(a)+len(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMatchesQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Percentile(99) != h.Quantile(0.99) {
		t.Fatal("Percentile/Quantile mismatch")
	}
}
