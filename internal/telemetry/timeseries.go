package telemetry

import (
	"fmt"
	"time"

	"clockwork/internal/simclock"
)

// TimeSeries accumulates (sum, count) per fixed-width interval of virtual
// time. It backs the paper's per-minute plots: goodput, throughput, mean
// batch size, cold-start counts.
type TimeSeries struct {
	interval time.Duration
	sums     []float64
	counts   []uint64
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		panic("telemetry: non-positive interval")
	}
	return &TimeSeries{interval: interval}
}

// Interval returns the bucket width.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

func (ts *TimeSeries) grow(idx int) {
	for len(ts.sums) <= idx {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
}

func (ts *TimeSeries) index(t simclock.Time) int {
	if t < 0 {
		return 0
	}
	return int(int64(t) / int64(ts.interval))
}

// Add records value v at instant t.
func (ts *TimeSeries) Add(t simclock.Time, v float64) {
	idx := ts.index(t)
	ts.grow(idx)
	ts.sums[idx] += v
	ts.counts[idx]++
}

// Incr records an occurrence (value 1) at instant t.
func (ts *TimeSeries) Incr(t simclock.Time) { ts.Add(t, 1) }

// Buckets returns the number of buckets touched so far.
func (ts *TimeSeries) Buckets() int { return len(ts.sums) }

// Sum returns the accumulated value of bucket i (0 beyond the end).
func (ts *TimeSeries) Sum(i int) float64 {
	if i < 0 || i >= len(ts.sums) {
		return 0
	}
	return ts.sums[i]
}

// Count returns the number of samples in bucket i.
func (ts *TimeSeries) Count(i int) uint64 {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return ts.counts[i]
}

// Mean returns the mean sample value of bucket i, or 0 if empty.
func (ts *TimeSeries) Mean(i int) float64 {
	if i < 0 || i >= len(ts.sums) || ts.counts[i] == 0 {
		return 0
	}
	return ts.sums[i] / float64(ts.counts[i])
}

// Rate returns bucket i's sum divided by the bucket width in seconds —
// e.g. requests/second when each Add contributes 1.
func (ts *TimeSeries) Rate(i int) float64 {
	return ts.Sum(i) / ts.interval.Seconds()
}

// TotalSum returns the sum over all buckets.
func (ts *TimeSeries) TotalSum() float64 {
	var s float64
	for _, v := range ts.sums {
		s += v
	}
	return s
}

// TotalCount returns the count over all buckets.
func (ts *TimeSeries) TotalCount() uint64 {
	var c uint64
	for _, v := range ts.counts {
		c += v
	}
	return c
}

// BucketStart returns the start instant of bucket i.
func (ts *TimeSeries) BucketStart(i int) simclock.Time {
	return simclock.Time(int64(i) * int64(ts.interval))
}

// String summarises the series.
func (ts *TimeSeries) String() string {
	return fmt.Sprintf("timeseries{interval=%v buckets=%d total=%.1f}",
		ts.interval, len(ts.sums), ts.TotalSum())
}

// Utilization integrates busy time per interval, producing the paper's
// GPU-utilisation and PCIe-utilisation curves. Busy spans may overlap
// bucket boundaries; they are split proportionally.
type Utilization struct {
	interval time.Duration
	busy     []time.Duration
}

// NewUtilization returns a utilisation integrator with the given bucket
// width.
func NewUtilization(interval time.Duration) *Utilization {
	if interval <= 0 {
		panic("telemetry: non-positive interval")
	}
	return &Utilization{interval: interval}
}

// AddBusy records that the tracked resource was busy during [from, to).
// Inverted spans are ignored.
func (u *Utilization) AddBusy(from, to simclock.Time) {
	if to <= from {
		return
	}
	if from < 0 {
		from = 0
	}
	iv := int64(u.interval)
	for from < to {
		idx := int(int64(from) / iv)
		bucketEnd := simclock.Time((int64(idx) + 1) * iv)
		end := simclock.Min(to, bucketEnd)
		for len(u.busy) <= idx {
			u.busy = append(u.busy, 0)
		}
		u.busy[idx] += end.Sub(from)
		from = end
	}
}

// Buckets returns the number of buckets touched.
func (u *Utilization) Buckets() int { return len(u.busy) }

// Fraction returns bucket i's busy fraction in [0,1].
func (u *Utilization) Fraction(i int) float64 {
	if i < 0 || i >= len(u.busy) {
		return 0
	}
	f := float64(u.busy[i]) / float64(u.interval)
	if f > 1 {
		f = 1
	}
	return f
}

// BusyIn returns the integrated busy time within bucket i. Unlike
// Fraction it does not clamp, so multiple overlapping resources (e.g. 12
// GPUs feeding one aggregate) can be normalised by the caller.
func (u *Utilization) BusyIn(i int) time.Duration {
	if i < 0 || i >= len(u.busy) {
		return 0
	}
	return u.busy[i]
}

// TotalBusy returns the integrated busy time.
func (u *Utilization) TotalBusy() time.Duration {
	var t time.Duration
	for _, b := range u.busy {
		t += b
	}
	return t
}

// Counter is a simple monotonic counter.
type Counter struct{ n uint64 }

// Incr adds one.
func (c *Counter) Incr() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }
