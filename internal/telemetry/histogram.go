package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram accumulates durations in logarithmically spaced buckets
// covering 100ns .. ~1000s with 100 buckets per decade (≈2.3% relative
// resolution), which is ample for reproducing the paper's tail plots.
type Histogram struct {
	count   uint64
	sum     float64 // nanoseconds (converted to seconds at the Sum accessor)
	min     time.Duration
	max     time.Duration
	buckets []uint64
	// Memo of the last bucketed value: simulator durations are heavily
	// quantized (constant network hops, table-driven exec times), so
	// consecutive observations repeat and the log10 can be skipped.
	// The zero value is valid: bucketIndex(0) == 0.
	lastD   time.Duration
	lastIdx int
}

const (
	histMinNanos     = 100.0 // 100ns floor
	bucketsPerDecade = 100
	histDecades      = 11 // 100ns → 10^13 ns ≈ 2.8h
	histBuckets      = bucketsPerDecade*histDecades + 1
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, buckets: make([]uint64, histBuckets)}
}

func bucketIndex(d time.Duration) int {
	ns := float64(d)
	if ns < histMinNanos {
		return 0
	}
	idx := int(math.Log10(ns/histMinNanos) * bucketsPerDecade)
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

func bucketLower(idx int) time.Duration {
	return time.Duration(histMinNanos * math.Pow(10, float64(idx)/bucketsPerDecade))
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += float64(d)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if d != h.lastD {
		h.lastD = d
		h.lastIdx = bucketIndex(d)
	}
	h.buckets[h.lastIdx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations in seconds — the value a
// Prometheus histogram's _sum series exports.
func (h *Histogram) Sum() float64 { return h.sum / float64(time.Second) }

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the value at quantile q in [0,1]. The answer is exact
// at q=0 and q=1 and otherwise accurate to the bucket resolution
// (≈2.3% relative error). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			// Geometric interpolation within the bucket.
			lo := float64(bucketLower(i))
			hi := float64(bucketLower(i + 1))
			frac := (target - cum) / float64(c)
			v := time.Duration(lo * math.Pow(hi/lo, frac))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Percentile is Quantile with q expressed in percent (e.g. 99.99).
func (h *Histogram) Percentile(p float64) time.Duration {
	return h.Quantile(p / 100)
}

// FractionBelow returns the fraction of observations ≤ d.
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	idx := bucketIndex(d)
	var cum uint64
	for i := 0; i < idx; i++ {
		cum += h.buckets[i]
	}
	// Assume uniform occupancy within the boundary bucket.
	lo, hi := bucketLower(idx), bucketLower(idx+1)
	frac := 1.0
	if hi > lo {
		frac = float64(d-lo) / float64(hi-lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
	}
	cum += uint64(frac * float64(h.buckets[idx]))
	return float64(cum) / float64(h.count)
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// CDFPoint is one (latency, percentile) pair for plotting.
type CDFPoint struct {
	Percentile float64
	Value      time.Duration
}

// StandardPercentiles are the tail percentiles the paper plots.
var StandardPercentiles = []float64{0, 50, 90, 99, 99.9, 99.99, 99.999, 99.9999, 100}

// CDF evaluates the histogram at the given percentiles (defaulting to
// StandardPercentiles when ps is empty).
func (h *Histogram) CDF(ps ...float64) []CDFPoint {
	if len(ps) == 0 {
		ps = StandardPercentiles
	}
	out := make([]CDFPoint, 0, len(ps))
	for _, p := range ps {
		out = append(out, CDFPoint{Percentile: p, Value: h.Percentile(p)})
	}
	return out
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "hist{empty}"
	}
	return fmt.Sprintf("hist{n=%d p50=%v p99=%v p99.99=%v max=%v}",
		h.count, h.Percentile(50), h.Percentile(99), h.Percentile(99.99), h.max)
}

// FormatCDF renders percentile→value rows as an aligned table.
func FormatCDF(points []CDFPoint) string {
	var b strings.Builder
	for _, p := range points {
		fmt.Fprintf(&b, "%9.4f%%  %v\n", p.Percentile, p.Value)
	}
	return b.String()
}

// SortDurations is a small helper for tests and exact-quantile checks.
func SortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
