// Package telemetry provides the measurement primitives used by every
// experiment: high-dynamic-range latency histograms (the paper's CDFs run
// from the median out to the 99.9999th percentile), bucketed time series
// (goodput / batch size over the run), and busy-time integrators (GPU and
// PCIe utilisation).
package telemetry
