package telemetry

// Edge cases the flight-recorder aggregates lean on: quantiles when the
// cumulative count lands exactly on a bucket boundary, merges involving
// empty and partial histograms (the per-shard → cluster merge), the
// _sum export, and time-series / utilisation behaviour at exact bucket
// boundaries and across gaps.

import (
	"math"
	"testing"
	"time"

	"clockwork/internal/simclock"
)

func TestHistogramSum(t *testing.T) {
	h := NewHistogram()
	if h.Sum() != 0 {
		t.Fatalf("empty Sum = %v", h.Sum())
	}
	h.Observe(250 * time.Millisecond)
	h.Observe(750 * time.Millisecond)
	if math.Abs(h.Sum()-1.0) > 1e-12 {
		t.Fatalf("Sum = %v, want 1.0s", h.Sum())
	}
	h.Observe(-time.Second) // clamped to zero: count moves, sum does not
	if h.Count() != 3 || math.Abs(h.Sum()-1.0) > 1e-12 {
		t.Fatalf("after clamped observe: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramQuantileAtBucketBoundary(t *testing.T) {
	// Two observations in distinct buckets: q=0.5 makes the target land
	// exactly on the first bucket's cumulative count (next == target),
	// which must resolve inside the first bucket — not overshoot into
	// the second.
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(100 * time.Millisecond)
	if q := h.Quantile(0.5); q > 2*time.Millisecond {
		t.Fatalf("p50 of {1ms, 100ms} = %v; boundary target must stay in the low bucket", q)
	}
	// Quantiles interpolate geometrically but must never escape the
	// observed range.
	for _, q := range []float64{0.001, 0.25, 0.5, 0.75, 0.999} {
		v := h.Quantile(q)
		if v < time.Millisecond || v > 100*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v outside [min, max]", q, v)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 5*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want exactly the one observation", q, v)
		}
	}
}

func TestHistogramMergeEmptyCases(t *testing.T) {
	// empty.Merge(empty): still reads as empty.
	a, b := NewHistogram(), NewHistogram()
	a.Merge(b)
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Fatalf("empty∪empty not empty: %v", a)
	}
	// empty.Merge(partial): the receiver must adopt the source's min
	// (the empty sentinel min must not survive the merge).
	c := NewHistogram()
	c.Observe(3 * time.Millisecond)
	c.Observe(9 * time.Millisecond)
	a.Merge(c)
	if a.Count() != 2 || a.Min() != 3*time.Millisecond || a.Max() != 9*time.Millisecond {
		t.Fatalf("empty∪partial: count=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	if math.Abs(a.Sum()-c.Sum()) > 1e-12 {
		t.Fatalf("merge dropped sum: %v vs %v", a.Sum(), c.Sum())
	}
	// partial.Merge(empty): a no-op.
	before := a.Quantile(0.5)
	a.Merge(NewHistogram())
	a.Merge(nil)
	if a.Count() != 2 || a.Quantile(0.5) != before {
		t.Fatalf("partial∪empty changed the histogram")
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	lo, hi := NewHistogram(), NewHistogram()
	for i := 0; i < 10; i++ {
		lo.Observe(time.Millisecond)
		hi.Observe(time.Second)
	}
	lo.Merge(hi)
	if lo.Count() != 20 || lo.Min() != time.Millisecond || lo.Max() != time.Second {
		t.Fatalf("merged: count=%d min=%v max=%v", lo.Count(), lo.Min(), lo.Max())
	}
	// Exactly half the mass is at 1ms: p25 must sit low, p75 high.
	if p := lo.Quantile(0.25); p > 2*time.Millisecond {
		t.Fatalf("p25 of bimodal merge = %v, want in the low cluster", p)
	}
	if p := lo.Quantile(0.75); p < 500*time.Millisecond {
		t.Fatalf("p75 of bimodal merge = %v, want in the high cluster", p)
	}
}

func TestHistogramFractionBelowEdges(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if f := h.FractionBelow(time.Second); f != 1 {
		t.Fatalf("FractionBelow(1s) = %v, want 1", f)
	}
	if f := h.FractionBelow(time.Millisecond); f != 0 {
		t.Fatalf("FractionBelow(1ms) = %v, want 0", f)
	}
	if f := h.FractionBelow(0); f != 0 {
		t.Fatalf("FractionBelow(0) = %v, want 0", f)
	}
}

func TestTimeSeriesExactBoundary(t *testing.T) {
	ts := NewTimeSeries(time.Minute)
	ts.Incr(0)
	ts.Incr(simclock.Time(time.Minute) - 1) // last instant of bucket 0
	ts.Incr(simclock.Time(time.Minute))     // first instant of bucket 1
	if ts.Count(0) != 2 || ts.Count(1) != 1 {
		t.Fatalf("boundary instant landed wrong: bucket0=%d bucket1=%d", ts.Count(0), ts.Count(1))
	}
}

func TestTimeSeriesSparseGap(t *testing.T) {
	ts := NewTimeSeries(time.Minute)
	ts.Add(0, 2)
	ts.Add(simclock.Time(5*time.Minute)+simclock.Time(time.Second), 3)
	if ts.Buckets() != 6 {
		t.Fatalf("Buckets = %d, want 6 (gap buckets materialised)", ts.Buckets())
	}
	for i := 1; i <= 4; i++ {
		if ts.Sum(i) != 0 || ts.Count(i) != 0 || ts.Mean(i) != 0 || ts.Rate(i) != 0 {
			t.Fatalf("gap bucket %d not empty", i)
		}
	}
	if ts.TotalSum() != 5 || ts.TotalCount() != 2 {
		t.Fatalf("totals across gap: sum=%v count=%d", ts.TotalSum(), ts.TotalCount())
	}
	if ts.Rate(5) != 3.0/60.0 {
		t.Fatalf("Rate(5) = %v", ts.Rate(5))
	}
}

func TestUtilizationExactBucketSpan(t *testing.T) {
	u := NewUtilization(time.Minute)
	// A span exactly covering bucket 1 must not leak into 0 or 2.
	u.AddBusy(simclock.Time(time.Minute), simclock.Time(2*time.Minute))
	if u.Fraction(0) != 0 || u.Fraction(1) != 1 || u.Fraction(2) != 0 {
		t.Fatalf("fractions: %v %v %v", u.Fraction(0), u.Fraction(1), u.Fraction(2))
	}
	if u.BusyIn(1) != time.Minute {
		t.Fatalf("BusyIn(1) = %v", u.BusyIn(1))
	}
}

func TestUtilizationOverlappingResourcesUnclamped(t *testing.T) {
	// Two GPUs busy through the same bucket: Fraction clamps at 1, but
	// BusyIn keeps the raw integral so the caller can normalise by the
	// resource count.
	u := NewUtilization(time.Minute)
	u.AddBusy(0, simclock.Time(time.Minute))
	u.AddBusy(0, simclock.Time(time.Minute))
	if u.Fraction(0) != 1 {
		t.Fatalf("Fraction(0) = %v, want clamped 1", u.Fraction(0))
	}
	if u.BusyIn(0) != 2*time.Minute {
		t.Fatalf("BusyIn(0) = %v, want the unclamped 2m", u.BusyIn(0))
	}
	if u.TotalBusy() != 2*time.Minute {
		t.Fatalf("TotalBusy = %v", u.TotalBusy())
	}
}
