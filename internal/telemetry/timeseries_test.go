package telemetry

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"clockwork/internal/simclock"
)

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(simclock.Time(0), 2)
	ts.Add(simclock.Time(500*time.Millisecond), 3)
	ts.Incr(simclock.Time(1500 * time.Millisecond))
	if ts.Buckets() != 2 {
		t.Fatalf("buckets=%d", ts.Buckets())
	}
	if ts.Sum(0) != 5 || ts.Count(0) != 2 {
		t.Fatalf("bucket0: sum=%v count=%v", ts.Sum(0), ts.Count(0))
	}
	if ts.Mean(0) != 2.5 {
		t.Fatalf("mean=%v", ts.Mean(0))
	}
	if ts.Rate(0) != 5 {
		t.Fatalf("rate=%v", ts.Rate(0))
	}
	if ts.Sum(1) != 1 {
		t.Fatalf("bucket1 sum=%v", ts.Sum(1))
	}
	if ts.TotalSum() != 6 || ts.TotalCount() != 3 {
		t.Fatal("totals wrong")
	}
	if ts.BucketStart(1) != simclock.Time(time.Second) {
		t.Fatal("BucketStart wrong")
	}
	if ts.Interval() != time.Second {
		t.Fatal("Interval wrong")
	}
	if ts.String() == "" {
		t.Fatal("String empty")
	}
}

func TestTimeSeriesOutOfRangeReads(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if ts.Sum(-1) != 0 || ts.Sum(5) != 0 || ts.Count(9) != 0 || ts.Mean(3) != 0 || ts.Rate(7) != 0 {
		t.Fatal("out-of-range reads should be zero")
	}
}

func TestTimeSeriesNegativeTimeClamps(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(simclock.Time(-5), 1)
	if ts.Sum(0) != 1 {
		t.Fatal("negative time should land in bucket 0")
	}
}

func TestTimeSeriesPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeSeries(0)
}

func TestUtilizationSingleBucket(t *testing.T) {
	u := NewUtilization(time.Second)
	u.AddBusy(simclock.Time(100*time.Millisecond), simclock.Time(600*time.Millisecond))
	if f := u.Fraction(0); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("fraction=%v", f)
	}
}

func TestUtilizationSpansBuckets(t *testing.T) {
	u := NewUtilization(time.Second)
	u.AddBusy(simclock.Time(500*time.Millisecond), simclock.Time(2500*time.Millisecond))
	if f := u.Fraction(0); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("bucket0=%v", f)
	}
	if f := u.Fraction(1); math.Abs(f-1.0) > 1e-9 {
		t.Fatalf("bucket1=%v", f)
	}
	if f := u.Fraction(2); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("bucket2=%v", f)
	}
	if u.TotalBusy() != 2*time.Second {
		t.Fatalf("TotalBusy=%v", u.TotalBusy())
	}
}

func TestUtilizationIgnoresInvertedAndEmptySpans(t *testing.T) {
	u := NewUtilization(time.Second)
	u.AddBusy(simclock.Time(5), simclock.Time(5))
	u.AddBusy(simclock.Time(10), simclock.Time(5))
	if u.Buckets() != 0 {
		t.Fatal("inverted spans should be ignored")
	}
}

func TestUtilizationNegativeStartClamped(t *testing.T) {
	u := NewUtilization(time.Second)
	u.AddBusy(simclock.Time(-int64(time.Second)), simclock.Time(time.Second/2))
	if f := u.Fraction(0); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("fraction=%v", f)
	}
}

func TestUtilizationFractionCapped(t *testing.T) {
	u := NewUtilization(time.Second)
	// Two overlapping busy claims (e.g. two executors) can exceed 1;
	// Fraction clamps for plotting.
	u.AddBusy(simclock.Time(0), simclock.Time(time.Second))
	u.AddBusy(simclock.Time(0), simclock.Time(time.Second))
	if f := u.Fraction(0); f != 1.0 {
		t.Fatalf("fraction=%v", f)
	}
}

func TestUtilizationPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUtilization(-time.Second)
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Incr()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter=%d", c.Value())
	}
}

// Property: total busy time is conserved regardless of how a span crosses
// bucket boundaries.
func TestUtilizationConservationProperty(t *testing.T) {
	f := func(startMs uint16, durMs uint16) bool {
		u := NewUtilization(time.Second)
		from := simclock.Time(time.Duration(startMs) * time.Millisecond)
		to := from.Add(time.Duration(durMs) * time.Millisecond)
		u.AddBusy(from, to)
		return u.TotalBusy() == to.Sub(from) || (durMs == 0 && u.TotalBusy() == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortDurations(t *testing.T) {
	ds := []time.Duration{3, 1, 2}
	SortDurations(ds)
	if ds[0] != 1 || ds[1] != 2 || ds[2] != 3 {
		t.Fatalf("sorted: %v", ds)
	}
}
