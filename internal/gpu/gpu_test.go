package gpu

import (
	"testing"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

func newTestDevice(noise Noise) (*simclock.Engine, *Device) {
	eng := simclock.NewEngine()
	return eng, NewDevice(eng, rng.NewStream(1), noise)
}

func TestSerialExecNoNoiseIsExact(t *testing.T) {
	eng, d := newTestDevice(NoNoise)
	var got time.Duration
	var at simclock.Time
	d.Exec(2900*time.Microsecond, func(actual time.Duration) {
		got = actual
		at = eng.Now()
	})
	if !d.Busy() {
		t.Fatal("device should be busy")
	}
	eng.Run()
	if got != 2900*time.Microsecond {
		t.Fatalf("actual = %v", got)
	}
	if at != simclock.Time(2900*time.Microsecond) {
		t.Fatalf("completed at %v", at)
	}
	if d.Busy() {
		t.Fatal("device should be idle after completion")
	}
	if d.ExecCount() != 1 {
		t.Fatalf("exec count = %d", d.ExecCount())
	}
}

func TestSerialExecOverlapPanics(t *testing.T) {
	_, d := newTestDevice(NoNoise)
	d.Exec(time.Millisecond, func(time.Duration) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping Exec")
		}
	}()
	d.Exec(time.Millisecond, func(time.Duration) {})
}

func TestSerialExecBadDurationPanics(t *testing.T) {
	_, d := newTestDevice(NoNoise)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Exec(0, func(time.Duration) {})
}

func TestSerialExecNoiseIsTiny(t *testing.T) {
	eng, d := newTestDevice(DefaultNoise)
	base := 2897 * time.Microsecond
	var durations []time.Duration
	var run func()
	run = func() {
		d.Exec(base, func(actual time.Duration) {
			durations = append(durations, actual)
			if len(durations) < 20000 {
				run()
			}
		})
	}
	run()
	eng.Run()

	var max time.Duration
	for _, v := range durations {
		if v < base {
			t.Fatalf("noise made execution faster than base: %v < %v", v, base)
		}
		if v > max {
			max = v
		}
	}
	// p100 over 20k draws should stay within ~1.1% of base
	// (spikes are capped at +1%).
	if float64(max) > float64(base)*1.011 {
		t.Fatalf("max %v exceeds +1.1%% envelope of %v", max, base)
	}
}

func TestInjectDisturbanceDelaysNextExec(t *testing.T) {
	eng, d := newTestDevice(NoNoise)
	d.InjectDisturbance(5 * time.Millisecond)
	d.InjectDisturbance(-time.Second) // ignored
	var got time.Duration
	d.Exec(time.Millisecond, func(actual time.Duration) { got = actual })
	eng.Run()
	if got != 6*time.Millisecond {
		t.Fatalf("actual = %v, want 6ms", got)
	}
	// Disturbance is one-shot.
	d.Exec(time.Millisecond, func(actual time.Duration) { got = actual })
	eng.Run()
	if got != time.Millisecond {
		t.Fatalf("second exec = %v, want 1ms", got)
	}
}

func TestDeviceOnBusyReportsSpans(t *testing.T) {
	eng, d := newTestDevice(NoNoise)
	var spans []time.Duration
	d.OnBusy = func(from, to simclock.Time) { spans = append(spans, to.Sub(from)) }
	d.Exec(time.Millisecond, func(time.Duration) {})
	eng.Run()
	if len(spans) != 1 || spans[0] != time.Millisecond {
		t.Fatalf("spans = %v", spans)
	}
}

func TestConcurrentThroughputGain(t *testing.T) {
	// Closed-loop load at concurrency 16 vs 1: Fig 2b shows up to ~25%
	// more throughput for concurrent execution.
	throughput := func(conc int) float64 {
		eng, d := newTestDevice(NoNoise)
		base := 2900 * time.Microsecond
		completed := 0
		horizon := simclock.Time(30 * time.Second)
		var submit func()
		submit = func() {
			d.Submit(base, func(time.Duration) {
				completed++
				if eng.Now() < horizon {
					submit()
				}
			})
		}
		for i := 0; i < conc; i++ {
			submit()
		}
		eng.RunUntil(horizon)
		return float64(completed) / 30.0
	}
	t1 := throughput(1)
	t16 := throughput(16)
	gain := t16/t1 - 1
	if gain < 0.10 || gain > 0.35 {
		t.Fatalf("concurrency-16 throughput gain = %.1f%%, want ≈25%%", gain*100)
	}
}

func TestConcurrentLatencyVariability(t *testing.T) {
	// Fig 2b: at concurrency 16, latency becomes wildly variable —
	// orders of magnitude above the serial latency.
	eng, d := newTestDevice(NoNoise)
	base := 2900 * time.Microsecond
	var latencies []time.Duration
	horizon := simclock.Time(30 * time.Second)
	var submit func()
	submit = func() {
		d.Submit(base, func(actual time.Duration) {
			latencies = append(latencies, actual)
			if eng.Now() < horizon {
				submit()
			}
		})
	}
	for i := 0; i < 16; i++ {
		submit()
	}
	eng.RunUntil(horizon)

	var max, sum time.Duration
	for _, l := range latencies {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / time.Duration(len(latencies))
	if mean < 10*base {
		t.Fatalf("mean concurrent latency %v should be ≫ serial %v", mean, base)
	}
	if max < 15*base {
		t.Fatalf("max concurrent latency %v should be ≫ serial %v", max, base)
	}
	// Fig 2b's claim is about *variability*: serial spread is sub-µs
	// (Fig 2a), concurrent spread is tens of ms — far beyond 100×.
	if spread := max - base; spread < 100*100*time.Microsecond {
		t.Fatalf("latency spread %v should exceed 100× the serial spread", spread)
	}
}

func TestConcurrentDeviceDrains(t *testing.T) {
	eng, d := newTestDevice(NoNoise)
	done := 0
	for i := 0; i < 5; i++ {
		d.Submit(time.Millisecond, func(time.Duration) { done++ })
	}
	if d.ActiveKernels() != 5 {
		t.Fatalf("active = %d", d.ActiveKernels())
	}
	eng.Run()
	if done != 5 || d.ActiveKernels() != 0 {
		t.Fatalf("done=%d active=%d", done, d.ActiveKernels())
	}
}

func TestSubmitBadDurationPanics(t *testing.T) {
	_, d := newTestDevice(NoNoise)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Submit(-time.Second, func(time.Duration) {})
}

func TestSpeedupShape(t *testing.T) {
	if speedup(1) != 1.0 {
		t.Fatal("speedup(1) must be 1")
	}
	if speedup(16) != 1.25 {
		t.Fatalf("speedup(16) = %v, want 1.25", speedup(16))
	}
	if speedup(100) != 1.25 {
		t.Fatal("speedup must cap at 16")
	}
	prev := 0.0
	for k := 1; k <= 16; k++ {
		s := speedup(k)
		if s < prev {
			t.Fatal("speedup must be monotone")
		}
		prev = s
	}
}

func TestNoiseSampleAlwaysAtLeastOne(t *testing.T) {
	s := rng.NewStream(3)
	n := Noise{Sigma: 0.01, SpikeProb: 0.1, SpikeMax: 0.5}
	for i := 0; i < 10000; i++ {
		if f := n.Sample(s); f < 1.0 {
			t.Fatalf("noise factor %v < 1", f)
		}
	}
}

func TestNoNoiseIsIdentity(t *testing.T) {
	s := rng.NewStream(3)
	if NoNoise.Apply(time.Second, s) != time.Second {
		t.Fatal("NoNoise must not change durations")
	}
}
