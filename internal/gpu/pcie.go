package gpu

import (
	"fmt"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// Link is a simulated PCIe direction (host→device or device→host). It is
// a FIFO resource: transfers serialise, so a large LOAD ahead of a small
// INPUT delays the input — which is exactly why Clockwork's controller
// tracks a per-worker transfer timeline.
//
// The profiled per-model weight-transfer durations from the zoo are used
// verbatim (the table is ground truth); ad-hoc transfers (inputs/outputs)
// are priced by bytes at the link's calibrated bandwidth.
type Link struct {
	eng    *simclock.Engine
	stream *rng.Stream
	noise  Noise

	// BytesPerSecond is the effective bandwidth for byte-priced
	// transfers; calibrated to the Appendix A table (≈12.3 GB/s).
	BytesPerSecond float64
	// PerTransferOverhead is the fixed setup cost of a DMA transfer.
	PerTransferOverhead time.Duration

	busyUntil simclock.Time
	count     uint64

	// OnBusy, if set, receives every busy span (for PCIe utilisation).
	OnBusy func(from, to simclock.Time)

	freeEv []*transferEv // recycled Runner-form completion nodes
}

// DefaultBandwidth is the effective PCIe bandwidth implied by Table 1
// (weights MB / transfer ms ≈ 12.3 GB/s).
const DefaultBandwidth = 12.3 * 1024 * 1024 * 1024

// DefaultOverhead is the fixed per-transfer DMA setup cost. Small
// transfers (inputs ≈600kB) land in the paper's "10s of microseconds".
const DefaultOverhead = 10 * time.Microsecond

// NewLink returns a link with default calibration.
func NewLink(eng *simclock.Engine, stream *rng.Stream, noise Noise) *Link {
	return &Link{
		eng:                 eng,
		stream:              stream,
		noise:               noise,
		BytesPerSecond:      DefaultBandwidth,
		PerTransferOverhead: DefaultOverhead,
	}
}

// BusyUntil returns the instant the link drains its current queue.
func (l *Link) BusyUntil() simclock.Time { return l.busyUntil }

// Count returns the number of transfers enqueued so far.
func (l *Link) Count() uint64 { return l.count }

// DurationForBytes prices a transfer of n bytes.
func (l *Link) DurationForBytes(n int64) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("gpu: negative transfer size %d", n))
	}
	return l.PerTransferOverhead + time.Duration(float64(n)/l.BytesPerSecond*float64(time.Second))
}

// Transfer enqueues a transfer with a known base duration (e.g. a model's
// profiled weight-transfer time). done receives the instants the transfer
// actually occupied the link and the on-link duration.
func (l *Link) Transfer(base time.Duration, done func(start, end simclock.Time, actual time.Duration)) {
	if base <= 0 {
		panic(fmt.Sprintf("gpu: non-positive transfer duration %v", base))
	}
	actual := l.noise.Apply(base, l.stream)
	start := simclock.Max(l.eng.Now(), l.busyUntil)
	end := start.Add(actual)
	l.busyUntil = end
	l.count++
	l.eng.Schedule(end, func() {
		if l.OnBusy != nil {
			l.OnBusy(start, end)
		}
		done(start, end, actual)
	})
}

// TransferBytes enqueues a transfer priced by size.
func (l *Link) TransferBytes(n int64, done func(start, end simclock.Time, actual time.Duration)) {
	l.Transfer(l.DurationForBytes(n), done)
}

// TransferRunner receives a Runner-form transfer completion — the
// allocation-free alternative to Transfer's done closure.
type TransferRunner interface {
	TransferDone(start, end simclock.Time, actual time.Duration)
}

// transferEv is one queued transfer's completion event. Several may be
// in flight on a FIFO link at once, so the nodes pool per link rather
// than living in Link fields. Engine-confined: no locks.
type transferEv struct {
	l      *Link
	start  simclock.Time
	end    simclock.Time
	actual time.Duration
	r      TransferRunner
}

func (t *transferEv) Run() {
	l, start, end, actual, r := t.l, t.start, t.end, t.actual, t.r
	t.r = nil
	l.freeEv = append(l.freeEv, t)
	if l.OnBusy != nil {
		l.OnBusy(start, end)
	}
	r.TransferDone(start, end, actual)
}

// TransferRun is Transfer in allocation-free Runner form: the completion
// event node is recycled through the link's free list.
func (l *Link) TransferRun(base time.Duration, r TransferRunner) {
	if base <= 0 {
		panic(fmt.Sprintf("gpu: non-positive transfer duration %v", base))
	}
	actual := l.noise.Apply(base, l.stream)
	start := simclock.Max(l.eng.Now(), l.busyUntil)
	end := start.Add(actual)
	l.busyUntil = end
	l.count++
	var t *transferEv
	if n := len(l.freeEv); n > 0 {
		t, l.freeEv = l.freeEv[n-1], l.freeEv[:n-1]
	} else {
		t = &transferEv{l: l}
	}
	t.start, t.end, t.actual, t.r = start, end, actual, r
	l.eng.ScheduleRun(end, t)
}

// TransferBytesRun is TransferBytes in Runner form.
func (l *Link) TransferBytesRun(n int64, r TransferRunner) {
	l.TransferRun(l.DurationForBytes(n), r)
}

// QueueDelay returns how long a transfer submitted now would wait before
// starting.
func (l *Link) QueueDelay() time.Duration {
	now := l.eng.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil.Sub(now)
}
