package gpu

import (
	"fmt"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// Device is a simulated GPU execution engine.
//
// In serial mode (Clockwork's mode, §4.4/C2) exactly one kernel may run
// at a time; attempting to overlap panics, because Clockwork's worker
// guarantees one-at-a-time EXEC and an overlap is a bug in the caller.
//
// In concurrent mode (the baseline/Fig 2b mode) any number of kernels may
// be submitted; the device multiplexes them with random-quantum processor
// sharing, gaining up to ConcurrencySpeedup aggregate throughput but
// introducing large, unpredictable per-kernel slowdowns — the behaviour
// the paper attributes to the proprietary hardware scheduler.
type Device struct {
	eng    *simclock.Engine
	stream *rng.Stream
	noise  Noise

	// Serial-mode state. Exactly one execution is ever in flight, so
	// the Runner-form completion context (ExecRun) lives right here and
	// the Device itself is the completion event's Runner.
	busy       bool
	busyUntil  simclock.Time
	execStart  simclock.Time
	execActual time.Duration
	execR      ExecRunner

	// Concurrent-mode state.
	active       []*kernel
	quantum      time.Duration
	quantumTimer *simclock.Timer

	// One-shot fault injection: added to the next serial execution.
	pendingDisturbance time.Duration

	// OnBusy, if set, is called with every span during which the device
	// executed work (for utilisation telemetry).
	OnBusy func(from, to simclock.Time)

	execCount uint64
}

// ConcurrencySpeedup is the maximum aggregate throughput gain from
// concurrent kernel execution (Fig 2b measures ≈25%).
const ConcurrencySpeedup = 0.25

// DefaultQuantum is the scheduling quantum of the concurrent-mode
// hardware scheduler model.
const DefaultQuantum = 100 * time.Microsecond

type kernel struct {
	remaining time.Duration
	elapsed   func() time.Duration // wall time so far, for the callback
	started   simclock.Time
	done      func(actual time.Duration)
}

// NewDevice returns a device attached to eng, drawing noise from stream.
func NewDevice(eng *simclock.Engine, stream *rng.Stream, noise Noise) *Device {
	return &Device{eng: eng, stream: stream, noise: noise, quantum: DefaultQuantum}
}

// Busy reports whether a serial execution is in flight.
func (d *Device) Busy() bool { return d.busy }

// BusyUntil returns when the current serial execution finishes
// (zero time if idle).
func (d *Device) BusyUntil() simclock.Time { return d.busyUntil }

// ExecCount returns the number of completed executions (both modes).
func (d *Device) ExecCount() uint64 { return d.execCount }

// InjectDisturbance adds a one-shot delay to the next serial execution,
// modelling an external factor (C3). Used by fault-injection tests.
func (d *Device) InjectDisturbance(extra time.Duration) {
	if extra > 0 {
		d.pendingDisturbance += extra
	}
}

// Exec runs one kernel in serial mode. base is the profiled execution
// latency (from the model zoo); the actual duration includes sampled
// noise and any injected disturbance, and is reported to done. Exec
// panics if a serial execution is already in flight — Clockwork workers
// must never overlap EXECs.
func (d *Device) Exec(base time.Duration, done func(actual time.Duration)) {
	if d.busy {
		panic("gpu: overlapping serial Exec — worker must run one EXEC at a time")
	}
	if base <= 0 {
		panic(fmt.Sprintf("gpu: non-positive exec duration %v", base))
	}
	actual := d.noise.Apply(base, d.stream) + d.pendingDisturbance
	d.pendingDisturbance = 0
	start := d.eng.Now()
	d.busy = true
	d.busyUntil = start.Add(actual)
	d.eng.Schedule(d.busyUntil, func() {
		d.busy = false
		d.execCount++
		if d.OnBusy != nil {
			d.OnBusy(start, d.eng.Now())
		}
		done(actual)
	})
}

// ExecRunner receives a Runner-form serial-exec completion — the
// allocation-free alternative to Exec's done closure.
type ExecRunner interface {
	ExecDone(actual time.Duration)
}

// ExecRun is Exec in allocation-free Runner form. Serial mode only:
// the single in-flight execution's context is held in Device fields.
func (d *Device) ExecRun(base time.Duration, r ExecRunner) {
	if d.busy {
		panic("gpu: overlapping serial Exec — worker must run one EXEC at a time")
	}
	if base <= 0 {
		panic(fmt.Sprintf("gpu: non-positive exec duration %v", base))
	}
	actual := d.noise.Apply(base, d.stream) + d.pendingDisturbance
	d.pendingDisturbance = 0
	start := d.eng.Now()
	d.busy = true
	d.busyUntil = start.Add(actual)
	d.execStart, d.execActual, d.execR = start, actual, r
	d.eng.ScheduleRun(d.busyUntil, d)
}

// Run completes the in-flight serial execution — the Device is its own
// completion event for ExecRun. Not for external use.
func (d *Device) Run() {
	r := d.execR
	d.execR = nil
	d.busy = false
	d.execCount++
	if d.OnBusy != nil {
		d.OnBusy(d.execStart, d.eng.Now())
	}
	r.ExecDone(d.execActual)
}

// Submit runs one kernel in concurrent mode. Any number of kernels may be
// outstanding; they share the device under the random-quantum model.
func (d *Device) Submit(base time.Duration, done func(actual time.Duration)) {
	if base <= 0 {
		panic(fmt.Sprintf("gpu: non-positive exec duration %v", base))
	}
	k := &kernel{
		remaining: d.noise.Apply(base, d.stream),
		started:   d.eng.Now(),
		done:      done,
	}
	d.active = append(d.active, k)
	d.scheduleQuantum()
}

// ActiveKernels returns the number of concurrent kernels in flight.
func (d *Device) ActiveKernels() int { return len(d.active) }

// speedup returns the aggregate service-rate multiplier for k concurrent
// kernels: 1.0 at k=1 rising to 1+ConcurrencySpeedup as k→16.
func speedup(k int) float64 {
	if k <= 1 {
		return 1.0
	}
	if k > 16 {
		k = 16
	}
	return 1.0 + ConcurrencySpeedup*float64(k-1)/15.0
}

// scheduleQuantum arms the next scheduling quantum if one is not already
// pending; idempotence keeps exactly one quantum loop alive no matter how
// completion callbacks interleave with resubmission.
func (d *Device) scheduleQuantum() {
	if d.quantumTimer != nil {
		return
	}
	d.quantumTimer = d.eng.After(d.quantum, d.runQuantum)
}

func (d *Device) runQuantum() {
	d.quantumTimer = nil
	if len(d.active) == 0 {
		return
	}
	// The hardware scheduler grants the quantum to one kernel chosen
	// uniformly at random; the effective work done is scaled up by the
	// concurrency speedup (concurrent kernels overlap memory stalls).
	idx := 0
	if len(d.active) > 1 {
		idx = d.stream.Intn(len(d.active))
	}
	k := d.active[idx]
	credit := time.Duration(float64(d.quantum) * speedup(len(d.active)))
	k.remaining -= credit
	if d.OnBusy != nil {
		d.OnBusy(d.eng.Now().Add(-d.quantum), d.eng.Now())
	}
	if k.remaining <= 0 {
		d.active[idx] = d.active[len(d.active)-1]
		d.active = d.active[:len(d.active)-1]
		d.execCount++
		k.done(d.eng.Now().Sub(k.started))
	}
	if len(d.active) > 0 {
		d.scheduleQuantum()
	}
}
