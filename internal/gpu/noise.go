package gpu

import (
	"time"

	"clockwork/internal/rng"
)

// Noise is a multiplicative execution-time noise model. A sampled factor
// f ≥ 1 scales a base duration: actual = base × f.
//
// The half-normal component models clock/DVFS jitter; the spike component
// models rare external factors (thermal events, ECC scrubs) that the
// paper observes as one-off multi-millisecond outliers.
type Noise struct {
	Sigma     float64 // scale of the half-normal jitter (relative)
	SpikeProb float64 // probability of an external-factor spike
	SpikeMax  float64 // max relative magnitude of a spike
}

// DefaultNoise reproduces Fig 2a: p99.99 within 0.03% of median, with
// ~1-in-50k spikes reaching up to +1%.
var DefaultNoise = Noise{Sigma: 0.0001, SpikeProb: 2e-5, SpikeMax: 0.01}

// NoNoise disables all jitter (useful for exact-schedule tests).
var NoNoise = Noise{}

// Sample draws a multiplicative factor ≥ 1.
func (n Noise) Sample(s *rng.Stream) float64 {
	f := 1.0
	if n.Sigma > 0 {
		g := s.Normal(0, n.Sigma)
		if g < 0 {
			g = -g
		}
		f += g
	}
	if n.SpikeProb > 0 && s.Bernoulli(n.SpikeProb) {
		f += s.Float64() * n.SpikeMax
	}
	return f
}

// Apply scales d by a sampled factor.
func (n Noise) Apply(d time.Duration, s *rng.Stream) time.Duration {
	return time.Duration(float64(d) * n.Sample(s))
}
