package gpu

import (
	"math"
	"testing"
	"time"

	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

func newTestLink() (*simclock.Engine, *Link) {
	eng := simclock.NewEngine()
	return eng, NewLink(eng, rng.NewStream(1), NoNoise)
}

func TestLinkTransferCompletes(t *testing.T) {
	eng, l := newTestLink()
	var gotStart, gotEnd simclock.Time
	l.Transfer(8330*time.Microsecond, func(start, end simclock.Time, actual time.Duration) {
		gotStart, gotEnd = start, end
		if actual != 8330*time.Microsecond {
			t.Fatalf("actual = %v", actual)
		}
	})
	eng.Run()
	if gotStart != 0 || gotEnd != simclock.Time(8330*time.Microsecond) {
		t.Fatalf("span = [%v, %v]", gotStart, gotEnd)
	}
}

func TestLinkIsFIFO(t *testing.T) {
	eng, l := newTestLink()
	var order []int
	l.Transfer(10*time.Millisecond, func(_, _ simclock.Time, _ time.Duration) { order = append(order, 1) })
	l.Transfer(time.Millisecond, func(_, _ simclock.Time, _ time.Duration) { order = append(order, 2) })
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	// The second transfer queued behind the first.
	if eng.Now() != simclock.Time(11*time.Millisecond) {
		t.Fatalf("drained at %v, want 11ms", eng.Now())
	}
}

func TestLinkQueueDelay(t *testing.T) {
	eng, l := newTestLink()
	if l.QueueDelay() != 0 {
		t.Fatal("idle link should have zero queue delay")
	}
	l.Transfer(5*time.Millisecond, func(_, _ simclock.Time, _ time.Duration) {})
	if l.QueueDelay() != 5*time.Millisecond {
		t.Fatalf("queue delay = %v", l.QueueDelay())
	}
	eng.Run()
	if l.QueueDelay() != 0 {
		t.Fatal("drained link should have zero queue delay")
	}
	if l.Count() != 1 {
		t.Fatalf("count = %d", l.Count())
	}
}

func TestDurationForBytesCalibration(t *testing.T) {
	_, l := newTestLink()
	// A ResNet50-sized blob (102.1 MB) should take ≈8.3ms at the
	// calibrated bandwidth.
	mb := 102.1
	bytes := int64(mb * 1024 * 1024)
	got := l.DurationForBytes(bytes).Seconds() * 1000
	if math.Abs(got-8.3) > 0.35 {
		t.Fatalf("102.1MB transfer priced at %.2fms, want ≈8.3ms", got)
	}
	// A 602kB input should be "10s of microseconds".
	in := l.DurationForBytes(602 * 1024)
	if in < 10*time.Microsecond || in > 200*time.Microsecond {
		t.Fatalf("input transfer = %v, want 10s of µs", in)
	}
}

func TestDurationForBytesNegativePanics(t *testing.T) {
	_, l := newTestLink()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.DurationForBytes(-1)
}

func TestTransferBadDurationPanics(t *testing.T) {
	_, l := newTestLink()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Transfer(0, func(_, _ simclock.Time, _ time.Duration) {})
}

func TestTransferBytes(t *testing.T) {
	eng, l := newTestLink()
	fired := false
	l.TransferBytes(1024*1024, func(start, end simclock.Time, actual time.Duration) {
		fired = true
		if actual <= 0 {
			t.Fatal("non-positive actual")
		}
	})
	eng.Run()
	if !fired {
		t.Fatal("callback not fired")
	}
}

func TestLinkOnBusy(t *testing.T) {
	eng, l := newTestLink()
	var total time.Duration
	l.OnBusy = func(from, to simclock.Time) { total += to.Sub(from) }
	l.Transfer(3*time.Millisecond, func(_, _ simclock.Time, _ time.Duration) {})
	l.Transfer(2*time.Millisecond, func(_, _ simclock.Time, _ time.Duration) {})
	eng.Run()
	if total != 5*time.Millisecond {
		t.Fatalf("busy total = %v", total)
	}
}
