// Package gpu simulates the worker-side hardware that Clockwork runs on:
// a GPU execution engine and the PCIe links between host and device.
//
// The simulation is calibrated against the paper's measurements:
//
//   - Fig 2a: an isolated DNN inference is near-deterministic — the
//     99.99th percentile latency is within 0.03% of the median. The
//     default Noise model reproduces that spread, plus the paper's
//     extremely rare multi-millisecond external-factor spikes (§6.5).
//   - Fig 2b: running kernels concurrently buys up to ~25% throughput but
//     costs ~100× latency variability, because the hardware scheduler
//     multiplexes kernels in undocumented ways. The concurrent path
//     models this as random-quantum processor sharing.
//
// In the request lifecycle this is the bottom layer: INFER and LOAD
// actions end here as busy time on a device or link, with noise drawn
// from per-device rng streams derived from the worker ID.
package gpu
