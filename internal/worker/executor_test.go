package worker

import (
	"testing"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/simclock"
)

func newBench(eng *simclock.Engine) (*executor, *[]uint64, *[]uint64) {
	var started, rejected []uint64
	x := newExecutor(eng, "test",
		func(a *action.Action, done func()) {
			started = append(started, a.ID)
			eng.After(time.Millisecond, done) // pretend 1ms of work
		},
		func(a *action.Action) { rejected = append(rejected, a.ID) })
	return x, &started, &rejected
}

func act(id uint64, earliest, latest simclock.Time) *action.Action {
	return &action.Action{ID: id, Type: action.Infer, Earliest: earliest, Latest: latest}
}

func TestExecutorRunsInEarliestOrder(t *testing.T) {
	eng := simclock.NewEngine()
	x, started, _ := newBench(eng)
	x.enqueue(act(1, simclock.Time(3*time.Millisecond), simclock.MaxTime))
	x.enqueue(act(2, simclock.Time(time.Millisecond), simclock.MaxTime))
	x.enqueue(act(3, simclock.Time(2*time.Millisecond), simclock.MaxTime))
	eng.Run()
	want := []uint64{2, 3, 1}
	for i, id := range *started {
		if id != want[i] {
			t.Fatalf("order = %v, want %v", *started, want)
		}
	}
}

func TestExecutorWaitsForEarliest(t *testing.T) {
	eng := simclock.NewEngine()
	var startedAt simclock.Time
	x := newExecutor(eng, "t",
		func(a *action.Action, done func()) { startedAt = eng.Now(); done() },
		func(a *action.Action) {})
	x.enqueue(act(1, simclock.Time(7*time.Millisecond), simclock.MaxTime))
	eng.Run()
	if startedAt != simclock.Time(7*time.Millisecond) {
		t.Fatalf("started at %v", startedAt)
	}
}

func TestExecutorRejectsExpiredWindow(t *testing.T) {
	eng := simclock.NewEngine()
	x, started, rejected := newBench(eng)
	eng.At(simclock.Time(10*time.Millisecond), func() {
		x.enqueue(act(1, 0, simclock.Time(5*time.Millisecond))) // expired
		x.enqueue(act(2, 0, simclock.MaxTime))
	})
	eng.Run()
	if len(*rejected) != 1 || (*rejected)[0] != 1 {
		t.Fatalf("rejected = %v", *rejected)
	}
	if len(*started) != 1 || (*started)[0] != 2 {
		t.Fatalf("started = %v", *started)
	}
}

func TestExecutorBoundaryInclusive(t *testing.T) {
	eng := simclock.NewEngine()
	x, started, rejected := newBench(eng)
	// latest == now is still allowed to begin (window is inclusive).
	eng.At(simclock.Time(5*time.Millisecond), func() {
		x.enqueue(act(1, 0, simclock.Time(5*time.Millisecond)))
	})
	eng.Run()
	if len(*started) != 1 || len(*rejected) != 0 {
		t.Fatalf("started=%v rejected=%v", *started, *rejected)
	}
}

func TestExecutorSerialises(t *testing.T) {
	eng := simclock.NewEngine()
	var running int
	var maxRunning int
	x := newExecutor(eng, "t",
		func(a *action.Action, done func()) {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			eng.After(time.Millisecond, func() { running--; done() })
		},
		func(a *action.Action) {})
	for i := uint64(1); i <= 10; i++ {
		x.enqueue(act(i, 0, simclock.MaxTime))
	}
	eng.Run()
	if maxRunning != 1 {
		t.Fatalf("max concurrent = %d, executor must serialise", maxRunning)
	}
}

func TestExecutorEarlierArrivalPreempts(t *testing.T) {
	eng := simclock.NewEngine()
	x, started, _ := newBench(eng)
	// First enqueue an action far in the future; then a nearer one must
	// run first even though it arrived second.
	x.enqueue(act(1, simclock.Time(50*time.Millisecond), simclock.MaxTime))
	eng.At(simclock.Time(time.Millisecond), func() {
		x.enqueue(act(2, simclock.Time(2*time.Millisecond), simclock.MaxTime))
	})
	eng.Run()
	if (*started)[0] != 2 {
		t.Fatalf("order = %v", *started)
	}
}

func TestExecutorIdleAndPending(t *testing.T) {
	eng := simclock.NewEngine()
	x, _, _ := newBench(eng)
	if !x.idle() || x.pending() != 0 {
		t.Fatal("fresh executor should be idle")
	}
	x.enqueue(act(1, simclock.Time(time.Millisecond), simclock.MaxTime))
	if x.idle() || x.pending() != 1 {
		t.Fatal("queued executor should not be idle")
	}
	eng.Run()
	if !x.idle() || x.pending() != 0 {
		t.Fatal("drained executor should be idle")
	}
}

func TestExecutorTieBreaksByID(t *testing.T) {
	eng := simclock.NewEngine()
	x, started, _ := newBench(eng)
	at := simclock.Time(time.Millisecond)
	x.enqueue(act(9, at, simclock.MaxTime))
	x.enqueue(act(3, at, simclock.MaxTime))
	x.enqueue(act(5, at, simclock.MaxTime))
	eng.Run()
	want := []uint64{3, 5, 9}
	for i, id := range *started {
		if id != want[i] {
			t.Fatalf("order = %v, want %v", *started, want)
		}
	}
}
