package worker

import (
	"container/heap"

	"clockwork/internal/action"
	"clockwork/internal/simclock"
)

// executor serialises actions of one type on one GPU. It dequeues by
// earliest timestamp, sleeps until the window opens, and rejects actions
// whose latest start time has passed (§5.2 "Actions").
type executor struct {
	eng  *simclock.Engine
	name string
	pq   actionHeap
	busy bool
	wake simclock.Timer

	// start begins executing a; it must eventually call done exactly
	// once, at which point the executor proceeds to the next action.
	start func(a *action.Action, done func())
	// done is the one preallocated completion hook passed to every
	// start call — per-action closures here would put an allocation on
	// every EXEC.
	done func()
	// reject disposes of an action whose window closed before it
	// could begin.
	reject func(a *action.Action)
}

func newExecutor(eng *simclock.Engine, name string,
	start func(*action.Action, func()), reject func(*action.Action)) *executor {
	x := &executor{eng: eng, name: name, start: start, reject: reject}
	x.done = func() {
		x.busy = false
		x.maybeStart()
	}
	return x
}

// Run re-evaluates the schedule when the wake timer fires — the
// executor is its own closure-free wake event.
func (x *executor) Run() { x.maybeStart() }

// enqueue adds an action and re-evaluates the schedule.
func (x *executor) enqueue(a *action.Action) {
	heap.Push(&x.pq, a)
	x.maybeStart()
}

// pending returns the number of queued (not yet started) actions.
func (x *executor) pending() int { return x.pq.Len() }

// idle reports whether the executor has neither running nor queued work.
func (x *executor) idle() bool { return !x.busy && x.pq.Len() == 0 }

func (x *executor) maybeStart() {
	if x.busy {
		return
	}
	for x.pq.Len() > 0 {
		next := x.pq[0]
		now := x.eng.Now()
		if now < next.Earliest {
			// Sleep until the window opens; a newly enqueued
			// earlier action re-evaluates via enqueue().
			if !x.wake.Pending() || x.wake.When() > next.Earliest {
				x.wake.Stop()
				x.wake = x.eng.AtRun(next.Earliest, x)
			}
			return
		}
		a := heap.Pop(&x.pq).(*action.Action)
		if now > a.Latest {
			// Too late to begin: cancel and move on, letting the
			// worker get back on schedule (§4.4).
			x.reject(a)
			continue
		}
		x.busy = true
		x.start(a, x.done)
		return
	}
}

// actionHeap orders actions by (earliest, ID) so equal-earliest actions
// run in controller submission order.
type actionHeap []*action.Action

func (h actionHeap) Len() int { return len(h) }
func (h actionHeap) Less(i, j int) bool {
	if h[i].Earliest != h[j].Earliest {
		return h[i].Earliest < h[j].Earliest
	}
	return h[i].ID < h[j].ID
}
func (h actionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *actionHeap) Push(x any)   { *h = append(*h, x.(*action.Action)) }
func (h *actionHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return a
}
