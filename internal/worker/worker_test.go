package worker

import (
	"testing"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/gpu"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

const testModel = "resnet50_v1b#0"

func newTestWorker(t *testing.T) (*simclock.Engine, *Worker, *[]action.Result) {
	t.Helper()
	eng := simclock.NewEngine()
	w := New(eng, rng.NewSource(1), Config{ID: 0, GPUs: 1, Noise: gpu.NoNoise})
	w.RegisterModel(testModel, modelzoo.ResNet50())
	var results []action.Result
	w.OnResult = func(r action.Result) { results = append(results, r) }
	return eng, w, &results
}

func loadAction(id uint64) *action.Action {
	return &action.Action{
		ID: id, Type: action.Load, Model: testModel,
		Earliest: 0, Latest: simclock.MaxTime,
	}
}

func inferAction(id uint64, earliest, latest simclock.Time) *action.Action {
	m := modelzoo.ResNet50()
	return &action.Action{
		ID: id, Type: action.Infer, Model: testModel, Batch: 1,
		RequestIDs: []uint64{id},
		Earliest:   earliest, Latest: latest,
		InputBytes: m.InputBytes(), OutputBytes: m.OutputBytes(),
	}
}

func TestLoadThenInfer(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	// The controller schedules the INFER's window to open at the LOAD's
	// predicted completion (8.33ms transfer); mimic that here.
	w.Submit(inferAction(2, simclock.Time(9*time.Millisecond), simclock.MaxTime))
	eng.Run()

	if len(*results) != 2 {
		t.Fatalf("got %d results", len(*results))
	}
	load, infer := (*results)[0], (*results)[1]
	if load.Type != action.Load || !load.Status.IsSuccess() {
		t.Fatalf("load result: %v", &load)
	}
	// LOAD duration is the profiled transfer time (8.33ms, no noise).
	if load.Duration != modelzoo.ResNet50().Transfer() {
		t.Fatalf("load duration = %v", load.Duration)
	}
	if infer.Type != action.Infer || !infer.Status.IsSuccess() {
		t.Fatalf("infer result: %v", &infer)
	}
	if infer.Duration != modelzoo.ResNet50().ExecLatency(1) {
		t.Fatalf("exec duration = %v", infer.Duration)
	}
	// EXEC begins only after the LOAD's transfer completes (weights not
	// ready before), so exec start ≥ load end.
	if infer.Start < load.End {
		t.Fatalf("exec started at %v before load finished at %v", infer.Start, load.End)
	}
	st := w.Stats()
	if st.LoadsOK != 1 || st.InfersOK != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInferWithoutLoadRejected(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(inferAction(1, 0, simclock.MaxTime))
	eng.Run()
	if len(*results) != 1 || (*results)[0].Status != action.RejectedNotLoaded {
		t.Fatalf("results: %v", *results)
	}
	// IO must have been released.
	if w.GPU(0).IO.Used() != 0 {
		t.Fatalf("leaked IO: %d bytes", w.GPU(0).IO.Used())
	}
	if w.Stats().InfersRejected != 1 {
		t.Fatal("stats")
	}
}

func TestInferLateWindowRejected(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run() // model is loaded, clock has advanced past transfer (8.33ms)

	late := inferAction(2, 0, simclock.Time(time.Millisecond)) // latest long past
	w.Submit(late)
	eng.Run()
	last := (*results)[len(*results)-1]
	if last.Status != action.RejectedLate {
		t.Fatalf("status = %v", last.Status)
	}
	if w.GPU(0).IO.Used() != 0 {
		t.Fatal("IO leak after late rejection")
	}
}

func TestInferWaitsForEarliest(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run()

	start := eng.Now().Add(10 * time.Millisecond)
	w.Submit(inferAction(2, start, simclock.MaxTime))
	eng.Run()
	infer := (*results)[1]
	if infer.Start != start {
		t.Fatalf("exec started at %v, want exactly %v", infer.Start, start)
	}
}

func TestExecOneAtATime(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run()

	w.Submit(inferAction(2, 0, simclock.MaxTime))
	w.Submit(inferAction(3, 0, simclock.MaxTime))
	eng.Run()

	a, b := (*results)[1], (*results)[2]
	if !a.Status.IsSuccess() || !b.Status.IsSuccess() {
		t.Fatalf("statuses: %v %v", a.Status, b.Status)
	}
	// Executions must not overlap.
	if b.Start < a.End && a.Start < b.End {
		if !(b.Start >= a.End || a.Start >= b.End) {
			t.Fatalf("EXECs overlap: [%v,%v] and [%v,%v]", a.Start, a.End, b.Start, b.End)
		}
	}
}

func TestLoadNoPagesRejected(t *testing.T) {
	eng := simclock.NewEngine()
	// Page cache fits exactly one ResNet50 (7 pages).
	w := New(eng, rng.NewSource(1), Config{
		ID: 0, GPUs: 1, Noise: gpu.NoNoise,
		PageCacheBytes: 7 * 16 * 1024 * 1024,
	})
	w.RegisterModel("a", modelzoo.ResNet50())
	w.RegisterModel("b", modelzoo.ResNet50())
	var results []action.Result
	w.OnResult = func(r action.Result) { results = append(results, r) }

	w.Submit(&action.Action{ID: 1, Type: action.Load, Model: "a", Latest: simclock.MaxTime})
	w.Submit(&action.Action{ID: 2, Type: action.Load, Model: "b", Latest: simclock.MaxTime})
	eng.Run()
	if results[0].Status != action.Success {
		t.Fatalf("first load: %v", results[0].Status)
	}
	if results[1].Status != action.RejectedNoPages {
		t.Fatalf("second load: %v", results[1].Status)
	}
}

func TestLoadAlreadyLoadedRejected(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run()
	w.Submit(loadAction(2))
	eng.Run()
	if (*results)[1].Status != action.RejectedAlreadyLoaded {
		t.Fatalf("status = %v", (*results)[1].Status)
	}
}

func TestLoadUnknownModelRejected(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(&action.Action{ID: 1, Type: action.Load, Model: "ghost", Latest: simclock.MaxTime})
	eng.Run()
	if (*results)[0].Status != action.RejectedNotLoaded {
		t.Fatalf("status = %v", (*results)[0].Status)
	}
}

func TestUnloadSemantics(t *testing.T) {
	eng, w, results := newTestWorker(t)
	// Unload of non-resident model fails.
	w.Submit(&action.Action{ID: 1, Type: action.Unload, Model: testModel})
	eng.Run()
	if (*results)[0].Status != action.RejectedNotResident {
		t.Fatalf("status = %v", (*results)[0].Status)
	}
	// Load, then unload succeeds immediately.
	w.Submit(loadAction(2))
	eng.Run()
	w.Submit(&action.Action{ID: 3, Type: action.Unload, Model: testModel})
	eng.Run()
	last := (*results)[len(*results)-1]
	if !last.Status.IsSuccess() {
		t.Fatalf("unload: %v", last.Status)
	}
	if w.GPU(0).Pages.Has(testModel) {
		t.Fatal("pages not freed")
	}
	// A subsequent INFER must now be rejected.
	w.Submit(inferAction(4, eng.Now(), simclock.MaxTime))
	eng.Run()
	if got := (*results)[len(*results)-1].Status; got != action.RejectedNotLoaded {
		t.Fatalf("infer after unload: %v", got)
	}
}

func TestUnloadWhileExecutingRejected(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run()
	w.Submit(inferAction(2, 0, simclock.MaxTime))
	// Step until the EXEC has begun (device busy), then try to unload.
	for !w.GPU(0).Dev.Busy() && eng.Step() {
	}
	if !w.GPU(0).Dev.Busy() {
		t.Fatal("never started executing")
	}
	w.Submit(&action.Action{ID: 3, Type: action.Unload, Model: testModel})
	eng.Run()
	var unload *action.Result
	for i := range *results {
		if (*results)[i].ActionID == 3 {
			unload = &(*results)[i]
		}
	}
	if unload == nil || unload.Status != action.RejectedBusy {
		t.Fatalf("unload result: %v", unload)
	}
	// The infer still completes.
	if w.Stats().InfersOK != 1 {
		t.Fatal("infer did not complete")
	}
}

func TestBatchedInferDuration(t *testing.T) {
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run()
	a := inferAction(2, 0, simclock.MaxTime)
	a.Batch = 16
	a.RequestIDs = []uint64{10, 11, 12}
	w.Submit(a)
	eng.Run()
	infer := (*results)[1]
	if infer.Duration != modelzoo.ResNet50().ExecLatency(16) {
		t.Fatalf("batch-16 duration = %v", infer.Duration)
	}
	if len(infer.RequestIDs) != 3 {
		t.Fatal("request IDs not propagated")
	}
}

func TestSubmitBadGPUPanics(t *testing.T) {
	_, w, _ := newTestWorker(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Submit(&action.Action{ID: 1, Type: action.Load, Model: testModel, GPU: 5})
}

func TestRegisterNilModelPanics(t *testing.T) {
	_, w, _ := newTestWorker(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.RegisterModel("x", nil)
}

func TestWorkerAccessors(t *testing.T) {
	_, w, _ := newTestWorker(t)
	if w.ID() != 0 || w.NumGPUs() != 1 {
		t.Fatal("accessors wrong")
	}
	if !w.HasModel(testModel) || w.HasModel("ghost") {
		t.Fatal("HasModel wrong")
	}
	if w.ModelCount() != 1 {
		t.Fatal("ModelCount wrong")
	}
	if w.PageCapacity(0) <= 0 {
		t.Fatal("PageCapacity wrong")
	}
}

func TestDefaultConfigCapacity(t *testing.T) {
	eng := simclock.NewEngine()
	w := New(eng, rng.NewSource(1), Config{ID: 3})
	if w.NumGPUs() != DefaultGPUs {
		t.Fatalf("gpus = %d", w.NumGPUs())
	}
	// 32GB − 512MB − 512MB = 31GB → 1984 pages of 16MB.
	if got := w.PageCapacity(0); got != 1984 {
		t.Fatalf("page capacity = %d, want 1984", got)
	}
}

func TestOutputOverlapsNextExec(t *testing.T) {
	// §4.4: the previous request's output copy may coincide with the
	// next request's execution — GPU must go idle at exec end, not at
	// result delivery.
	eng, w, results := newTestWorker(t)
	w.Submit(loadAction(1))
	eng.Run()
	w.Submit(inferAction(2, 0, simclock.MaxTime))
	w.Submit(inferAction(3, 0, simclock.MaxTime))
	eng.Run()
	a, b := (*results)[1], (*results)[2]
	// Second exec starts exactly when the first ends (no output gap).
	if b.Start != a.End {
		t.Fatalf("second exec at %v, first ended %v — output stalled the GPU", b.Start, a.End)
	}
}
