// Package worker implements Clockwork's predictable DNN worker (§4.4,
// §5.2). A worker owns one or more GPUs; for each GPU it runs a dedicated
// executor per action type that dequeues actions chronologically by
// earliest start time, waits until the window opens, rejects actions
// whose window has closed, and otherwise executes exactly as instructed —
// no work-conserving improvisation, so the controller's predictions stay
// valid even when something slips.
//
// In the request lifecycle workers are the data plane: they never make
// policy. Model weights for every registered model sit in host RAM
// (§5.1), which is also what lets a sharded control plane migrate a
// model between scheduler shards without touching workers.
package worker
