package worker

import (
	"fmt"
	"time"

	"clockwork/internal/action"
	"clockwork/internal/gpu"
	"clockwork/internal/memory"
	"clockwork/internal/modelzoo"
	"clockwork/internal/rng"
	"clockwork/internal/simclock"
)

// Config parameterises a worker. Zero-valued fields take the paper's
// defaults (2×32GB v100 GPUs, 16MB pages, 512MB IOCache and Workspace).
type Config struct {
	ID             int
	GPUs           int
	DeviceMemBytes int64 // total GPU memory per device
	PageSize       int64
	IOCacheBytes   int64
	WorkspaceBytes int64
	// PageCacheBytes, if > 0, overrides the derived page cache size
	// (device memory minus IOCache and Workspace).
	PageCacheBytes int64
	Noise          gpu.Noise

	// BestEffort switches the worker into the baseline mode the paper
	// compares against (§6.1): EXECs are submitted to the GPU
	// concurrently (thread-pool style) instead of one at a time, and
	// the workspace one-at-a-time invariant is waived. Used by the
	// Clipper-like baseline; Clockwork itself never sets this.
	BestEffort bool
}

// Default hardware parameters (Tesla v100, §6 testbed).
const (
	DefaultGPUs           = 2
	DefaultDeviceMemBytes = 32 * 1024 * 1024 * 1024
)

// Resolved fills unset fields with the paper's defaults and derives the
// page cache size. The cluster layer uses it to configure the
// controller's mirrors with exactly the worker's geometry.
func (c Config) Resolved() Config {
	if c.GPUs <= 0 {
		c.GPUs = DefaultGPUs
	}
	if c.DeviceMemBytes <= 0 {
		c.DeviceMemBytes = DefaultDeviceMemBytes
	}
	if c.PageSize <= 0 {
		c.PageSize = memory.DefaultPageSize
	}
	if c.IOCacheBytes <= 0 {
		c.IOCacheBytes = memory.DefaultIOCacheBytes
	}
	if c.WorkspaceBytes <= 0 {
		c.WorkspaceBytes = memory.DefaultWorkspaceBytes
	}
	if c.PageCacheBytes <= 0 {
		c.PageCacheBytes = c.DeviceMemBytes - c.IOCacheBytes - c.WorkspaceBytes
	}
	return c
}

// Worker is a predictable Clockwork worker process. All models are
// pre-loaded into host RAM (RegisterModel); GPU memory is managed as a
// page cache under exclusive controller direction.
type Worker struct {
	cfg    Config
	eng    *simclock.Engine
	gpus   []*GPU
	models map[string]*modelzoo.Model

	// OnResult receives every action result; the cluster layer wires it
	// to the controller's network link.
	OnResult func(action.Result)

	inferStates map[uint64]*inferState
	freeStates  []*inferState // recycled inferState nodes (engine-confined)
	stats       Stats
	failed      bool
}

// Stats counts worker-side action outcomes.
type Stats struct {
	LoadsOK, LoadsRejected     uint64
	InfersOK, InfersRejected   uint64
	UnloadsOK, UnloadsRejected uint64
}

// GPU bundles the per-device execution resources.
type GPU struct {
	Index int
	Dev   *gpu.Device
	// H2D carries weight transfers (LOAD); InputH2D carries inference
	// inputs on a separate DMA engine (v100s have multiple copy
	// engines, and Clockwork issues LOAD and INFER work on distinct
	// CUDA streams precisely so they do not queue behind each other —
	// §5.2: "each executor is bottlenecked by a different resource").
	H2D      *gpu.Link
	InputH2D *gpu.Link
	D2H      *gpu.Link // device→host: outputs
	Pages    *memory.PageCache
	IO       *memory.IOCache
	WS       *memory.Workspace

	loadExec  *executor
	inferExec *executor

	// ready marks models whose weights finished transferring; pages may
	// be allocated before the transfer completes, and an EXEC that
	// arrives in that gap is rejected rather than stalled.
	ready map[string]bool
}

// New constructs a worker on eng. Random streams derive from src so every
// worker/GPU pair has independent deterministic noise.
func New(eng *simclock.Engine, src *rng.Source, cfg Config) *Worker {
	cfg = cfg.Resolved()
	w := &Worker{
		cfg:         cfg,
		eng:         eng,
		models:      make(map[string]*modelzoo.Model),
		inferStates: make(map[uint64]*inferState),
	}
	for i := 0; i < cfg.GPUs; i++ {
		g := &GPU{
			Index:    i,
			Dev:      gpu.NewDevice(eng, src.Stream(fmt.Sprintf("w%d.g%d.exec", cfg.ID, i)), cfg.Noise),
			H2D:      gpu.NewLink(eng, src.Stream(fmt.Sprintf("w%d.g%d.h2d", cfg.ID, i)), cfg.Noise),
			InputH2D: gpu.NewLink(eng, src.Stream(fmt.Sprintf("w%d.g%d.in", cfg.ID, i)), cfg.Noise),
			D2H:      gpu.NewLink(eng, src.Stream(fmt.Sprintf("w%d.g%d.d2h", cfg.ID, i)), cfg.Noise),
			Pages:    memory.NewPageCache(cfg.PageCacheBytes, cfg.PageSize),
			IO:       memory.NewIOCache(cfg.IOCacheBytes),
			WS:       memory.NewWorkspace(cfg.WorkspaceBytes),
			ready:    make(map[string]bool),
		}
		gi := g
		g.loadExec = newExecutor(eng, fmt.Sprintf("w%d.g%d.load", cfg.ID, i),
			func(a *action.Action, done func()) { w.runLoad(gi, a, done) },
			func(a *action.Action) { w.rejectAction(gi, a, action.RejectedLate) })
		g.inferExec = newExecutor(eng, fmt.Sprintf("w%d.g%d.infer", cfg.ID, i),
			func(a *action.Action, done func()) { w.runExec(gi, a, done) },
			func(a *action.Action) { w.rejectInfer(gi, a, action.RejectedLate) })
		w.gpus = append(w.gpus, g)
	}
	return w
}

// ID returns the worker's cluster-wide identifier.
func (w *Worker) ID() int { return w.cfg.ID }

// NumGPUs returns the number of devices.
func (w *Worker) NumGPUs() int { return len(w.gpus) }

// GPU returns device i for telemetry wiring.
func (w *Worker) GPU(i int) *GPU { return w.gpus[i] }

// Stats returns a copy of the outcome counters.
func (w *Worker) Stats() Stats { return w.stats }

// RegisterModel places a model instance in host RAM under the given
// instance name (workers pre-load all models from disk on startup, §5.1).
func (w *Worker) RegisterModel(name string, m *modelzoo.Model) {
	if m == nil {
		panic("worker: nil model")
	}
	w.models[name] = m
}

// UnregisterModel drops a model instance from host RAM (the control
// plane's UnregisterModel; GPU pages are reclaimed by UNLOAD actions).
func (w *Worker) UnregisterModel(name string) {
	delete(w.models, name)
}

// Fail marks the worker failed: subsequently delivered actions are
// dropped on the floor, simulating a crashed worker process. Results of
// work already in progress may still be emitted; the controller drops
// them.
func (w *Worker) Fail() { w.failed = true }

// HasModel reports whether the instance name is registered.
func (w *Worker) HasModel(name string) bool {
	_, ok := w.models[name]
	return ok
}

// ModelCount returns the number of registered instances.
func (w *Worker) ModelCount() int { return len(w.models) }

// PageCapacity returns the page cache size (pages) of GPU i.
func (w *Worker) PageCapacity(i int) int { return w.gpus[i].Pages.TotalPages() }

// Submit delivers one action from the controller.
func (w *Worker) Submit(a *action.Action) {
	if w.failed {
		return
	}
	if a.GPU < 0 || a.GPU >= len(w.gpus) {
		panic(fmt.Sprintf("worker %d: action %v targets GPU %d of %d", w.cfg.ID, a, a.GPU, len(w.gpus)))
	}
	g := w.gpus[a.GPU]
	switch a.Type {
	case action.Load:
		g.loadExec.enqueue(a)
	case action.Unload:
		// UNLOAD only updates metadata and runs immediately (§5.2).
		w.runUnload(g, a)
	case action.Infer:
		w.admitInfer(g, a)
	default:
		panic(fmt.Sprintf("worker: unknown action type %v", a.Type))
	}
}

// emit fills the common result fields and hands the result to OnResult.
func (w *Worker) emit(g *GPU, a *action.Action, st action.Status, start, end simclock.Time, dur time.Duration) {
	r := action.Result{
		ActionID:           a.ID,
		Type:               a.Type,
		Status:             st,
		WorkerID:           w.cfg.ID,
		GPU:                g.Index,
		Model:              a.Model,
		Batch:              a.Batch,
		RequestIDs:         a.RequestIDs,
		Start:              start,
		End:                end,
		Duration:           dur,
		ExpectedDuration:   a.ExpectedDuration,
		ExpectedCompletion: a.ExpectedCompletion,
	}
	switch {
	case a.Type == action.Load && st.IsSuccess():
		w.stats.LoadsOK++
	case a.Type == action.Load:
		w.stats.LoadsRejected++
	case a.Type == action.Infer && st.IsSuccess():
		w.stats.InfersOK++
	case a.Type == action.Infer:
		w.stats.InfersRejected++
	case a.Type == action.Unload && st.IsSuccess():
		w.stats.UnloadsOK++
	case a.Type == action.Unload:
		w.stats.UnloadsRejected++
	}
	if w.OnResult != nil {
		w.OnResult(r)
	}
}

func (w *Worker) rejectAction(g *GPU, a *action.Action, st action.Status) {
	w.emit(g, a, st, 0, 0, 0)
}

// ---- LOAD ----

func (w *Worker) runLoad(g *GPU, a *action.Action, done func()) {
	m, ok := w.models[a.Model]
	if !ok {
		w.rejectAction(g, a, action.RejectedNotLoaded)
		done()
		return
	}
	if g.Pages.Has(a.Model) {
		w.rejectAction(g, a, action.RejectedAlreadyLoaded)
		done()
		return
	}
	pages := m.Pages(g.Pages.PageSize())
	if err := g.Pages.Alloc(a.Model, pages); err != nil {
		w.rejectAction(g, a, action.RejectedNoPages)
		done()
		return
	}
	start := w.eng.Now()
	g.H2D.Transfer(m.Transfer(), func(tStart, tEnd simclock.Time, actual time.Duration) {
		g.ready[a.Model] = true
		g.Pages.Touch(a.Model)
		w.emit(g, a, action.Success, start, tEnd, actual)
		done()
	})
}

// ---- UNLOAD ----

func (w *Worker) runUnload(g *GPU, a *action.Action) {
	if !g.Pages.Has(a.Model) {
		w.rejectAction(g, a, action.RejectedNotResident)
		return
	}
	if g.Pages.Pinned(a.Model) > 0 {
		w.rejectAction(g, a, action.RejectedBusy)
		return
	}
	if err := g.Pages.Free(a.Model); err != nil {
		w.rejectAction(g, a, action.RejectedBusy)
		return
	}
	delete(g.ready, a.Model)
	now := w.eng.Now()
	w.emit(g, a, action.Success, now, now, 0)
}

// ---- INFER: INPUT / EXEC / OUTPUT ----

// inferState carries one INFER action across its asynchronous stages
// (INPUT copy, EXEC, OUTPUT copy) as a single pooled receiver: it is
// the gpu.TransferRunner for both copies and the gpu.ExecRunner for
// the kernel, so the whole pipeline schedules without a closure. States
// recycle through a per-worker free list (engine-confined, no locks);
// release happens only when no stage still holds a reference — on
// OUTPUT completion, or, for an action rejected while its INPUT copy
// was in flight, when that copy lands.
type inferState struct {
	w       *Worker
	g       *GPU
	a       *action.Action
	done    func() // executor slot release (preallocated per executor)
	ioBytes int64

	inputDone    bool
	inputPending bool // INPUT copy in flight; gates recycling on reject
	waiting      bool // window-approved EXEC stalled on the INPUT copy
	rejected     bool
	output       bool // OUTPUT copy in flight (distinguishes TransferDone calls)

	execStart  simclock.Time
	execEnd    simclock.Time
	execActual time.Duration
}

func (w *Worker) acquireInferState() *inferState {
	if n := len(w.freeStates); n > 0 {
		st := w.freeStates[n-1]
		w.freeStates = w.freeStates[:n-1]
		return st
	}
	return new(inferState)
}

func (w *Worker) releaseInferState(st *inferState) {
	*st = inferState{}
	w.freeStates = append(w.freeStates, st)
}

// TransferDone receives both copy completions: the INPUT stage while
// output is false, the OUTPUT stage after ExecDone flipped it. The two
// never overlap for one action — input completes before EXEC starts,
// output starts after it ends.
func (st *inferState) TransferDone(_, _ simclock.Time, _ time.Duration) {
	w, g, a := st.w, st.g, st.a
	if st.output {
		// OUTPUT landed: release IO, report, recycle.
		delete(w.inferStates, a.ID)
		if err := g.IO.Free(st.ioBytes); err != nil {
			panic(fmt.Sprintf("worker: io free: %v", err))
		}
		start, end, actual := st.execStart, st.execEnd, st.execActual
		w.releaseInferState(st)
		w.emit(g, a, action.Success, start, end, actual)
		return
	}
	st.inputPending = false
	if st.rejected {
		w.releaseInferState(st)
		return
	}
	st.inputDone = true
	if st.waiting {
		st.waiting = false
		w.execNow(st)
	}
}

// admitInfer performs the INPUT stage immediately on receipt (§5.2):
// reserve IO memory, start the input copy, enqueue the EXEC stage.
func (w *Worker) admitInfer(g *GPU, a *action.Action) {
	if _, ok := w.models[a.Model]; !ok {
		w.rejectAction(g, a, action.RejectedNotLoaded)
		return
	}
	ioBytes := a.InputBytes + a.OutputBytes
	if err := g.IO.Alloc(ioBytes); err != nil {
		w.rejectAction(g, a, action.RejectedIO)
		return
	}
	st := w.acquireInferState()
	st.w, st.g, st.a = w, g, a
	st.ioBytes = ioBytes
	st.inputPending = true
	w.inferStates[a.ID] = st
	g.InputH2D.TransferBytesRun(a.InputBytes, st)
	g.inferExec.enqueue(a)
}

// rejectInfer cleans up the INPUT-stage resources of a cancelled INFER.
func (w *Worker) rejectInfer(g *GPU, a *action.Action, status action.Status) {
	if st, ok := w.inferStates[a.ID]; ok {
		st.rejected = true
		delete(w.inferStates, a.ID)
		if err := g.IO.Free(st.ioBytes); err != nil {
			panic(fmt.Sprintf("worker: io free: %v", err))
		}
		if !st.inputPending {
			// No stage holds a reference any more; with the copy still
			// in flight, its TransferDone recycles instead.
			w.releaseInferState(st)
		}
	}
	w.rejectAction(g, a, status)
}

// runExec is the EXEC stage: the only stage that occupies the GPU, run
// strictly one at a time.
func (w *Worker) runExec(g *GPU, a *action.Action, done func()) {
	st, ok := w.inferStates[a.ID]
	if !ok {
		w.rejectAction(g, a, action.RejectedIO)
		done()
		return
	}
	if !g.Pages.Has(a.Model) {
		w.rejectInfer(g, a, action.RejectedNotLoaded)
		done()
		return
	}
	if !g.ready[a.Model] {
		// Pages allocated but the LOAD transfer has not landed: this is
		// an error, not something to ride out (§4.2). Stalling here
		// would hold the executor hostage and cascade lateness into
		// unrelated requests; the controller's earliest ≥ load-ETA
		// scheduling makes this a rare misprediction.
		w.rejectInfer(g, a, action.RejectedNotLoaded)
		done()
		return
	}
	st.done = done
	if !st.inputDone {
		// Stall until the (tiny) input copy lands; the window was
		// already validated when the executor picked this action.
		st.waiting = true
		return
	}
	w.execNow(st)
}

func (w *Worker) execNow(st *inferState) {
	g, a, done := st.g, st.a, st.done
	if err := g.Pages.Pin(a.Model); err != nil {
		w.rejectInfer(g, a, action.RejectedNotLoaded)
		done()
		return
	}
	if !w.cfg.BestEffort {
		if err := g.WS.Acquire("infer"); err != nil {
			panic(fmt.Sprintf("worker: workspace, action %d: %v (one-at-a-time EXEC violated)", a.ID, err))
		}
	}
	g.Pages.Touch(a.Model)
	st.execStart = w.eng.Now()
	m := w.models[a.Model]
	if w.cfg.BestEffort {
		// Baseline mode: hand the kernel to the hardware scheduler and
		// immediately accept the next action — the thread-pool design
		// whose tail behaviour Fig 2b quantifies. ExecDone skips the
		// slot release for this mode.
		g.Dev.Submit(m.ExecLatency(a.Batch), st.ExecDone)
		done()
		return
	}
	g.Dev.ExecRun(m.ExecLatency(a.Batch), st)
}

// ExecDone receives the kernel completion: release the workspace and
// pin, start the OUTPUT copy, and (in serial mode) free the executor —
// the GPU is free as soon as EXEC ends; OUTPUT overlaps the next EXEC
// (§4.4 "steps may coincide").
func (st *inferState) ExecDone(actual time.Duration) {
	w, g, a := st.w, st.g, st.a
	st.execEnd = w.eng.Now()
	st.execActual = actual
	if !w.cfg.BestEffort {
		if err := g.WS.Release(); err != nil {
			panic(fmt.Sprintf("worker: workspace release: %v", err))
		}
	}
	if err := g.Pages.Unpin(a.Model); err != nil {
		panic(fmt.Sprintf("worker: unpin: %v", err))
	}
	st.output = true
	g.D2H.TransferBytesRun(a.OutputBytes, st)
	if !w.cfg.BestEffort {
		st.done()
	}
}
