// Package experiments is the public face of the paper-reproduction
// experiment harness: every table and figure of the evaluation (§6) as
// a typed, parameterisable, deterministic experiment. It re-exports the
// internal harness so commands and external tooling can drive the full
// catalogue through a stable import path ("clockwork/experiments")
// without reaching into clockwork/internal.
//
// Each experiment has a Config with paper-faithful defaults plus
// Scale/Duration knobs, and returns a typed result whose String()
// prints the same rows/series the paper reports. Independent sweep
// cells fan out across cores; output order (and content, for equal
// seeds) is identical to a serial run.
package experiments

import (
	"clockwork/internal/experiments"
)

// System names accepted by the comparison experiments (policy registry
// names; see clockwork.Policies).
const (
	SystemClockwork = experiments.SystemClockwork
	SystemClipper   = experiments.SystemClipper
	SystemINFaaS    = experiments.SystemINFaaS
)

// Systems lists the three systems of Fig 5.
var Systems = experiments.Systems

// Configs and results, per figure.
type (
	// Fig2aConfig / Fig2aResult: isolated serial inference latency.
	Fig2aConfig = experiments.Fig2aConfig
	Fig2aResult = experiments.Fig2aResult
	// Fig2bConfig / Fig2bResult: concurrent-execution tail blow-up.
	Fig2bConfig = experiments.Fig2bConfig
	Fig2bResult = experiments.Fig2bResult
	// Fig5Config / Fig5Result: the three-system goodput/latency sweep.
	Fig5Config = experiments.Fig5Config
	Fig5Result = experiments.Fig5Result
	// Fig6Config / Fig6Result: thousands of models on one worker.
	Fig6Config = experiments.Fig6Config
	Fig6Result = experiments.Fig6Result
	// Fig7Config / Fig7Result: how low can the SLO go.
	Fig7Config = experiments.Fig7Config
	Fig7Result = experiments.Fig7Result
	// Fig7IsoConfig / Fig7IsoResult: LS/BC isolation.
	Fig7IsoConfig = experiments.Fig7IsoConfig
	Fig7IsoResult = experiments.Fig7IsoResult
	// Fig8Config / Fig8Result: the MAF trace replay.
	Fig8Config = experiments.Fig8Config
	Fig8Result = experiments.Fig8Result
	// Fig9Result: controller prediction-error telemetry.
	Fig9Result = experiments.Fig9Result
	// SLOScaleConfig / SLOScaleResult: the §6.5 tighter-SLOs-at-scale
	// table.
	SLOScaleConfig = experiments.SLOScaleConfig
	SLOScaleResult = experiments.SLOScaleResult
	// ScaleConfig / ScaleResult: the control-plane scale scenario — the
	// same ≥1M-request, ≥16k-model workload replayed over 1/4/16
	// scheduler shards.
	ScaleConfig = experiments.ScaleConfig
	ScaleResult = experiments.ScaleResult
	// AutoscaleConfig / AutoscaleResult / AutoscaleCell: the closed-loop
	// autoscaling sweep — every static {workers, admission window}
	// configuration vs the closed control loop under diurnal or
	// flash-crowd load.
	AutoscaleConfig = experiments.AutoscaleConfig
	AutoscaleResult = experiments.AutoscaleResult
	AutoscaleCell   = experiments.AutoscaleCell
	// AblationResult / PagingResult: DESIGN.md ablations.
	AblationResult = experiments.AblationResult
	PagingResult   = experiments.PagingResult
)

// Runners, per figure.
var (
	RunFig2a              = experiments.RunFig2a
	RunFig2b              = experiments.RunFig2b
	RunFig5               = experiments.RunFig5
	RunFig6               = experiments.RunFig6
	RunFig7               = experiments.RunFig7
	RunFig7Isolation      = experiments.RunFig7Isolation
	RunFig8               = experiments.RunFig8
	RunFig9               = experiments.RunFig9
	RunSLOScale           = experiments.RunSLOScale
	RunScale              = experiments.RunScale
	RunAutoscale          = experiments.RunAutoscale
	RunAblationLookahead  = experiments.RunAblationLookahead
	RunAblationPredictor  = experiments.RunAblationPredictor
	RunAblationLoadPolicy = experiments.RunAblationLoadPolicy
	RunAblationPaging     = experiments.RunAblationPaging
)

// CLIFlags carries command-line knobs into the catalogue; zero values
// select each experiment's defaults.
type CLIFlags = experiments.CLIFlags

// CLIExperiments lists the names Render accepts, in "all" render order.
var CLIExperiments = experiments.CLIExperiments

// Render produces one experiment's full printed output ("all" runs the
// whole catalogue concurrently and prints in catalogue order). Equal
// flags give byte-identical output.
var Render = experiments.Render
