package clockwork

import (
	"fmt"
	"time"

	"clockwork/internal/core"
)

// This file is the runtime control plane: live reconfiguration of a
// serving System. The paper's controller already owns every
// performance-relevant choice (§4.5); these entry points let operators
// change the facts the controller plans over — worker membership, the
// model registry — without rebuilding the system, and observe the
// per-model consequences.

// AddWorker adds one worker machine (with the system's standard GPU
// geometry) at runtime and returns its ID. The worker starts with every
// registered model pre-loaded in host RAM (§5.1) and is schedulable
// immediately; the load-priority policy migrates hot models onto it as
// demand warrants.
func (s *System) AddWorker() int { return s.cluster.AddWorker() }

// DrainWorker takes worker id out of scheduling: no new actions are
// sent to it, in-flight actions finish and their results are honoured.
// Its resident model replicas stop counting toward demand fulfilment,
// so needed replicas are re-created elsewhere. Draining an already
// drained or failed worker returns ErrWorkerDown.
func (s *System) DrainWorker(id int) error { return s.cluster.DrainWorker(id) }

// FailWorker simulates an abrupt worker loss: scheduling stops as with
// DrainWorker, but in-flight work is lost — its requests fail
// immediately with ReasonWorkerFailed and late results from the worker
// are dropped. This promotes the fault-injection previously buried in
// the test harness to a first-class API.
func (s *System) FailWorker(id int) error { return s.cluster.FailWorker(id) }

// WorkerState reports a worker's lifecycle state.
type WorkerState = core.WorkerState

// Worker lifecycle states.
const (
	WorkerActive   = core.WorkerActive
	WorkerDraining = core.WorkerDraining
	WorkerFailed   = core.WorkerFailed
)

// WorkerStateOf returns the lifecycle state of worker id, routed to the
// shard that owns the worker.
func (s *System) WorkerStateOf(id int) (WorkerState, error) {
	return s.cluster.WorkerStateOf(id)
}

// Workers returns the number of workers ever added, across all shards;
// drained and failed workers keep their IDs.
func (s *System) Workers() int { return s.cluster.WorkerCount() }

// ActiveWorkers counts workers currently in WorkerActive state — the
// capacity denominator worker autoscaling reasons over. Engine-side
// read (in live mode call it from an injected closure or Live.Do).
func (s *System) ActiveWorkers() int { return s.cluster.ActiveWorkers() }

// ---- closed-loop signals ----

// RecentStats is one control period's slice of the client-observed
// outcomes — what the closed-loop autoscaler evaluates each period.
type RecentStats = core.RecentStats

// DrainRecentStats returns the client-observed outcomes accumulated
// since the previous drain and resets the period accumulators. It is
// the autoscaler's signal tap: exactly one consumer should call it, on
// the engine goroutine (under Live.Do with EnginePerShard).
func (s *System) DrainRecentStats() RecentStats {
	return s.cluster.Metrics.DrainRecent()
}

// ShardDemand is one shard's outstanding demand against its enabled
// GPU capacity.
type ShardDemand = core.ShardDemand

// DemandSnapshot returns every shard's demand/capacity pair, indexed
// by shard. Engine-side read; with EnginePerShard it must run under a
// Live.Do barrier (it touches every shard's controller).
func (s *System) DemandSnapshot() []ShardDemand {
	return s.cluster.DemandSnapshot()
}

// ---- sharded control plane ----

// ShardCount returns the number of scheduler shards (1 unless
// Config.Shards partitioned the control plane).
func (s *System) ShardCount() int { return s.cluster.ShardCount() }

// ShardOf reports which shard currently owns model — its consistent
// initial placement, or wherever the rebalancer moved it since.
func (s *System) ShardOf(model string) (int, bool) { return s.cluster.ShardOf(model) }

// OwnerShard resolves model's owning shard from the lock-free routing
// hint — safe from any goroutine, even while live engines are running
// (unlike ShardOf, which reads the engine-side registry and needs the
// engine quiescent). The hint may be one migration stale; a submission
// routed to a stale shard is forwarded to the real owner, costing one
// extra network hop, never correctness. ok is false for unregistered
// models.
func (s *System) OwnerShard(model string) (int, bool) {
	return s.cluster.OwnerShardHint(model)
}

// Migrations returns the number of cross-shard model migrations so far
// (periodic rebalancer plus manual MigrateModel calls). Always 0 with
// one shard.
func (s *System) Migrations() uint64 { return s.cluster.Migrations() }

// MigrateModel moves a model (and its queued requests, losslessly) to
// the given shard — the manual override of the periodic rebalancer. A
// model with in-flight actions returns ErrModelBusy; run the clock and
// retry.
func (s *System) MigrateModel(model string, shard int) error {
	return s.cluster.MigrateModel(model, shard)
}

// Rebalance runs one cross-shard rebalance pass immediately (in
// addition to the periodic ones) and returns the number of models
// migrated. A no-op with one shard.
func (s *System) Rebalance() int { return s.cluster.RebalanceOnce() }

// ShardStats is one shard's slice of the client-observed outcome
// counters.
type ShardStats = core.ShardBin

// ShardStats returns shard i's outcome counters (responses are
// attributed to the shard owning the model at completion).
func (s *System) ShardStats(i int) (ShardStats, error) {
	if i < 0 || i >= s.cluster.ShardCount() {
		return ShardStats{}, fmt.Errorf("%w: %d (have %d)", ErrNoSuchShard, i, s.cluster.ShardCount())
	}
	return s.cluster.Metrics.ShardStats(i), nil
}

// InjectDisturbance stalls one GPU's execution engine for d — the §4.3
// class of external slowdowns (thermal throttling, maintenance daemons)
// that the controller cannot predict. The system's contract under
// disturbance: affected actions fail fast, the worker gets straight
// back on schedule, and successful responses never violate their SLOs.
func (s *System) InjectDisturbance(workerID, gpuID int, d time.Duration) error {
	return s.cluster.InjectDisturbance(workerID, gpuID, d)
}

// UnregisterModel retires a model instance: queued requests fail with
// ReasonUnregistered, GPU replicas are unloaded, and subsequent
// submissions return ErrUnknownModel. A model with in-flight actions
// returns ErrModelBusy — run the clock until its work drains and retry.
func (s *System) UnregisterModel(name string) error {
	return s.cluster.UnregisterModel(name)
}

// ModelStats is the per-model slice of the system's metrics: outcome
// counters, the failure taxonomy, latency percentiles and mean goodput.
type ModelStats = core.ModelStats

// ModelStats returns per-model counters for a registered model; ok is
// false for names that are neither registered nor ever served.
func (s *System) ModelStats(name string) (ModelStats, bool) {
	return s.cluster.ModelStats(name)
}

// TenantStats aggregates outcomes across all requests labelled with one
// Tenant value.
type TenantStats = core.TenantStats

// TenantStats returns per-tenant counters; ok is false for tenants that
// have not produced any response yet.
func (s *System) TenantStats(tenant string) (TenantStats, bool) {
	return s.cluster.TenantStats(tenant)
}
