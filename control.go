package clockwork

import (
	"time"

	"clockwork/internal/core"
)

// This file is the runtime control plane: live reconfiguration of a
// serving System. The paper's controller already owns every
// performance-relevant choice (§4.5); these entry points let operators
// change the facts the controller plans over — worker membership, the
// model registry — without rebuilding the system, and observe the
// per-model consequences.

// AddWorker adds one worker machine (with the system's standard GPU
// geometry) at runtime and returns its ID. The worker starts with every
// registered model pre-loaded in host RAM (§5.1) and is schedulable
// immediately; the load-priority policy migrates hot models onto it as
// demand warrants.
func (s *System) AddWorker() int { return s.cluster.AddWorker() }

// DrainWorker takes worker id out of scheduling: no new actions are
// sent to it, in-flight actions finish and their results are honoured.
// Its resident model replicas stop counting toward demand fulfilment,
// so needed replicas are re-created elsewhere. Draining an already
// drained or failed worker returns ErrWorkerDown.
func (s *System) DrainWorker(id int) error { return s.cluster.DrainWorker(id) }

// FailWorker simulates an abrupt worker loss: scheduling stops as with
// DrainWorker, but in-flight work is lost — its requests fail
// immediately with ReasonWorkerFailed and late results from the worker
// are dropped. This promotes the fault-injection previously buried in
// the test harness to a first-class API.
func (s *System) FailWorker(id int) error { return s.cluster.FailWorker(id) }

// WorkerState reports a worker's lifecycle state.
type WorkerState = core.WorkerState

// Worker lifecycle states.
const (
	WorkerActive   = core.WorkerActive
	WorkerDraining = core.WorkerDraining
	WorkerFailed   = core.WorkerFailed
)

// WorkerStateOf returns the lifecycle state of worker id.
func (s *System) WorkerStateOf(id int) (WorkerState, error) {
	return s.cluster.Ctl.WorkerStateOf(id)
}

// Workers returns the number of workers ever added; drained and failed
// workers keep their IDs.
func (s *System) Workers() int { return s.cluster.Ctl.WorkerCount() }

// InjectDisturbance stalls one GPU's execution engine for d — the §4.3
// class of external slowdowns (thermal throttling, maintenance daemons)
// that the controller cannot predict. The system's contract under
// disturbance: affected actions fail fast, the worker gets straight
// back on schedule, and successful responses never violate their SLOs.
func (s *System) InjectDisturbance(workerID, gpuID int, d time.Duration) error {
	return s.cluster.InjectDisturbance(workerID, gpuID, d)
}

// UnregisterModel retires a model instance: queued requests fail with
// ReasonUnregistered, GPU replicas are unloaded, and subsequent
// submissions return ErrUnknownModel. A model with in-flight actions
// returns ErrModelBusy — run the clock until its work drains and retry.
func (s *System) UnregisterModel(name string) error {
	return s.cluster.UnregisterModel(name)
}

// ModelStats is the per-model slice of the system's metrics: outcome
// counters, the failure taxonomy, latency percentiles and mean goodput.
type ModelStats = core.ModelStats

// ModelStats returns per-model counters for a registered model; ok is
// false for names that are neither registered nor ever served.
func (s *System) ModelStats(name string) (ModelStats, bool) {
	return s.cluster.ModelStats(name)
}

// TenantStats aggregates outcomes across all requests labelled with one
// Tenant value.
type TenantStats = core.TenantStats

// TenantStats returns per-tenant counters; ok is false for tenants that
// have not produced any response yet.
func (s *System) TenantStats(tenant string) (TenantStats, bool) {
	return s.cluster.TenantStats(tenant)
}
