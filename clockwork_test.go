package clockwork

import (
	"testing"
	"time"
)

func TestPublicAPIServing(t *testing.T) {
	sys := New(Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 1})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	var got Result
	sys.Submit("m", 100*time.Millisecond, func(r Result) { got = r })
	sys.RunFor(100 * time.Millisecond)
	if !got.Success || !got.ColdStart {
		t.Fatalf("result: %+v", got)
	}
	if got.Latency <= 0 {
		t.Fatal("no latency measured")
	}
	s := sys.Summary()
	if s.Requests != 1 || s.Succeeded != 1 || s.ColdStarts != 1 {
		t.Fatalf("summary: %+v", s)
	}
	if s.GoodputMean <= 0 {
		t.Fatal("no goodput")
	}
	if sys.LatencyPercentile(50) != got.Latency {
		t.Fatal("percentile mismatch for single request")
	}
	if sys.Now() < 100*time.Millisecond {
		t.Fatal("virtual time did not advance")
	}
	if sys.Cluster() == nil {
		t.Fatal("cluster accessor nil")
	}
}

func TestPublicAPIUnknownModel(t *testing.T) {
	sys := New(Config{})
	if err := sys.RegisterModel("m", "not-a-model"); err == nil {
		t.Fatal("expected error for unknown zoo model")
	}
	if _, err := sys.RegisterCopies("m", "not-a-model", 3); err == nil {
		t.Fatal("expected error for unknown zoo model")
	}
}

func TestPublicAPICopies(t *testing.T) {
	sys := New(Config{ExactTiming: true})
	names, err := sys.RegisterCopies("x", "googlenet", 3)
	if err != nil || len(names) != 3 {
		t.Fatalf("copies: %v %v", names, err)
	}
	done := 0
	for _, n := range names {
		sys.Submit(n, 100*time.Millisecond, func(r Result) {
			if r.Success {
				done++
			}
		})
	}
	sys.RunFor(time.Second)
	if done != 3 {
		t.Fatalf("served %d/3", done)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, p := range []Policy{PolicyClockwork, PolicyClipper, PolicyINFaaS} {
		sys := New(Config{Policy: p, ExactTiming: true})
		if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
			t.Fatal(err)
		}
		ok := false
		sys.Submit("m", 500*time.Millisecond, func(r Result) { ok = r.Success })
		sys.RunFor(time.Second)
		if !ok {
			t.Fatalf("policy %s failed to serve", p)
		}
	}
}

func TestPublicAPIUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Policy: "magic"})
}

func TestPublicAPIAfterHook(t *testing.T) {
	sys := New(Config{ExactTiming: true})
	fired := false
	sys.After(10*time.Millisecond, func() { fired = true })
	sys.RunFor(20 * time.Millisecond)
	if !fired {
		t.Fatal("After hook did not fire")
	}
}

func TestZooAccessors(t *testing.T) {
	names := ZooModels()
	if len(names) != 64 {
		t.Fatalf("zoo size = %d", len(names))
	}
	spec, ok := ZooInfo("resnet50_v1b")
	if !ok || spec.WeightsMB != 102.1 || spec.Family != "ResNet" {
		t.Fatalf("spec: %+v", spec)
	}
	if _, ok := ZooInfo("ghost"); ok {
		t.Fatal("phantom zoo entry")
	}
}

func TestRegisterCustomModel(t *testing.T) {
	sys := New(Config{ExactTiming: true})
	g := &Graph{
		Name:  "my-custom-net",
		Input: TensorShape{C: 3, H: 64, W: 64},
		Layers: []ModelLayer{
			Conv2D{OutChannels: 32, Kernel: 3},
			Activation{},
			GlobalPool{},
			Dense{Out: 10},
		},
	}
	if err := sys.RegisterCustomModel(g); err != nil {
		t.Fatal(err)
	}
	ok := false
	sys.Submit("my-custom-net", 100*time.Millisecond, func(r Result) { ok = r.Success })
	sys.RunFor(time.Second)
	if !ok {
		t.Fatal("custom model failed to serve")
	}
	// Invalid graphs are rejected with an error, not a panic.
	if err := sys.RegisterCustomModel(&Graph{Name: "bad"}); err == nil {
		t.Fatal("expected error for invalid graph")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		sys := New(Config{Seed: 99})
		if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			sys.Submit("m", 100*time.Millisecond, nil)
			sys.RunFor(5 * time.Millisecond)
		}
		sys.RunFor(time.Second)
		s := sys.Summary()
		return s.Succeeded, s.Max
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", n1, m1, n2, m2)
	}
}
