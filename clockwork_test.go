package clockwork

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func newSys(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIServing(t *testing.T) {
	sys := newSys(t, Config{Workers: 1, GPUsPerWorker: 1, ExactTiming: true, Seed: 1})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := sys.Submit("m", 100*time.Millisecond, func(r Result) { got = r }); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(100 * time.Millisecond)
	if !got.Success || !got.ColdStart {
		t.Fatalf("result: %+v", got)
	}
	if got.Reason != ReasonNone {
		t.Fatalf("success must carry ReasonNone, got %v", got.Reason)
	}
	if got.Model != "m" || got.RequestID == 0 {
		t.Fatalf("result lacks model/id: %+v", got)
	}
	if got.Latency <= 0 {
		t.Fatal("no latency measured")
	}
	s := sys.Summary()
	if s.Requests != 1 || s.Succeeded != 1 || s.ColdStarts != 1 {
		t.Fatalf("summary: %+v", s)
	}
	if s.GoodputMean <= 0 {
		t.Fatal("no goodput")
	}
	if sys.LatencyPercentile(50) != got.Latency {
		t.Fatal("percentile mismatch for single request")
	}
	if sys.Now() < 100*time.Millisecond {
		t.Fatal("virtual time did not advance")
	}
	if sys.Cluster() == nil {
		t.Fatal("cluster accessor nil")
	}
}

func TestPublicAPIUnknownModel(t *testing.T) {
	sys := newSys(t, Config{})
	if err := sys.RegisterModel("m", "not-a-model"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	if _, err := sys.RegisterCopies("m", "not-a-model", 3); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	sys := newSys(t, Config{ExactTiming: true})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	// Unregistered model names are a typed error, not a silent accept.
	if err := sys.Submit("ghost", time.Second, nil); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	if _, err := sys.SubmitRequest(Request{Model: "m"}, nil); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("zero SLO: want ErrInvalidRequest, got %v", err)
	}
	if _, err := sys.SubmitRequest(Request{Model: "", SLO: time.Second}, nil); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("empty model: want ErrInvalidRequest, got %v", err)
	}
	if _, err := sys.SubmitRequest(Request{Model: "m", SLO: time.Second, MaxBatchSize: -1}, nil); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("negative cap: want ErrInvalidRequest, got %v", err)
	}
}

func TestDuplicateModelRegistration(t *testing.T) {
	sys := newSys(t, Config{})
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModel("m", "googlenet"); !errors.Is(err, ErrDuplicateModel) {
		t.Fatalf("want ErrDuplicateModel, got %v", err)
	}
}

func TestPublicAPICopies(t *testing.T) {
	sys := newSys(t, Config{ExactTiming: true})
	names, err := sys.RegisterCopies("x", "googlenet", 3)
	if err != nil || len(names) != 3 {
		t.Fatalf("copies: %v %v", names, err)
	}
	done := 0
	for _, n := range names {
		sys.Submit(n, 100*time.Millisecond, func(r Result) {
			if r.Success {
				done++
			}
		})
	}
	sys.RunFor(time.Second)
	if done != 3 {
		t.Fatalf("served %d/3", done)
	}
}

func TestPublicAPIUnknownPolicyError(t *testing.T) {
	_, err := New(Config{Policy: "magic"})
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("want ErrUnknownPolicy, got %v", err)
	}
	// The error must name the alternatives.
	for _, p := range []string{"clockwork", "clipper", "infaas"} {
		if !strings.Contains(err.Error(), p) {
			t.Fatalf("error %q does not list policy %q", err, p)
		}
	}
}

func TestPublicAPIAfterHook(t *testing.T) {
	sys := newSys(t, Config{ExactTiming: true})
	fired := false
	sys.After(10*time.Millisecond, func() { fired = true })
	sys.RunFor(20 * time.Millisecond)
	if !fired {
		t.Fatal("After hook did not fire")
	}
}

func TestRunUntil(t *testing.T) {
	sys := newSys(t, Config{ExactTiming: true})
	sys.RunUntil(30 * time.Millisecond)
	if sys.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v", sys.Now())
	}
	sys.RunUntil(10 * time.Millisecond) // past instant: no-op
	if sys.Now() != 30*time.Millisecond {
		t.Fatalf("RunUntil went backwards: %v", sys.Now())
	}
}

func TestZooAccessors(t *testing.T) {
	names := ZooModels()
	if len(names) != 64 {
		t.Fatalf("zoo size = %d", len(names))
	}
	spec, ok := ZooInfo("resnet50_v1b")
	if !ok || spec.WeightsMB != 102.1 || spec.Family != "ResNet" {
		t.Fatalf("spec: %+v", spec)
	}
	if _, ok := ZooInfo("ghost"); ok {
		t.Fatal("phantom zoo entry")
	}
	if len(ZooFamilies()) == 0 {
		t.Fatal("no families")
	}
	if got := ZooSpecs(""); len(got) != len(names) {
		t.Fatalf("ZooSpecs(all) = %d", len(got))
	}
	resnets := ZooSpecs("ResNet")
	if len(resnets) == 0 || len(resnets) >= len(names) {
		t.Fatalf("ZooSpecs(ResNet) = %d", len(resnets))
	}
	for _, s := range resnets {
		if s.Family != "ResNet" {
			t.Fatalf("family filter leaked %+v", s)
		}
	}
}

func TestRegisterCustomModel(t *testing.T) {
	sys := newSys(t, Config{ExactTiming: true})
	g := &Graph{
		Name:  "my-custom-net",
		Input: TensorShape{C: 3, H: 64, W: 64},
		Layers: []ModelLayer{
			Conv2D{OutChannels: 32, Kernel: 3},
			Activation{},
			GlobalPool{},
			Dense{Out: 10},
		},
	}
	if err := sys.RegisterCustomModel(g); err != nil {
		t.Fatal(err)
	}
	ok := false
	sys.Submit("my-custom-net", 100*time.Millisecond, func(r Result) { ok = r.Success })
	sys.RunFor(time.Second)
	if !ok {
		t.Fatal("custom model failed to serve")
	}
	// Invalid graphs are rejected with an error, not a panic.
	if err := sys.RegisterCustomModel(&Graph{Name: "bad"}); err == nil {
		t.Fatal("expected error for invalid graph")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		sys := newSys(t, Config{Seed: 99})
		if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			sys.Submit("m", 100*time.Millisecond, nil)
			sys.RunFor(5 * time.Millisecond)
		}
		sys.RunFor(time.Second)
		s := sys.Summary()
		return s.Succeeded, s.Max
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", n1, m1, n2, m2)
	}
}
