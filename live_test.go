package clockwork_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"clockwork"
)

func newLiveSystem(t *testing.T, speed float64) (*clockwork.System, *clockwork.Live) {
	t.Helper()
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	live := sys.StartLive(speed)
	t.Cleanup(live.Stop)
	return sys, live
}

// TestLiveHandleWait is the completion-notification contract: a client
// goroutine submits through the live driver and blocks on Wait instead
// of busy-polling Done.
func TestLiveHandleWait(t *testing.T) {
	sys, live := newLiveSystem(t, 1000)

	var h clockwork.Handle
	var err error
	if doErr := live.Do(func() {
		h, err = sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	}); doErr != nil {
		t.Fatal(doErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !res.Success || res.Latency <= 0 {
		t.Fatalf("Wait result: %+v", res)
	}
	if !h.Done() {
		t.Fatal("Done must be true after Wait returns")
	}
	if res2, ok := h.Outcome(); !ok || res2 != res {
		t.Fatalf("Outcome after Wait: %+v, %v", res2, ok)
	}
}

// TestLiveHandleWaitCtxCancel: a cancelled ctx abandons the wait, not
// the request.
func TestLiveHandleWaitCtxCancel(t *testing.T) {
	sys, live := newLiveSystem(t, 1) // real time: the request outlives the ctx

	var h clockwork.Handle
	var err error
	if doErr := live.Do(func() {
		h, err = sys.SubmitRequest(clockwork.Request{Model: "m", SLO: 2 * time.Second}, nil)
	}); doErr != nil {
		t.Fatal(doErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := h.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait with cancelled ctx: %v", werr)
	}
	// The request still completes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if res, werr := h.Wait(ctx2); werr != nil || !res.Success {
		t.Fatalf("request abandoned with the ctx: %+v, %v", res, werr)
	}
}

// TestLiveOnResult: the per-request callback fires on the engine
// goroutine, once, before any Wait returns.
func TestLiveOnResult(t *testing.T) {
	sys, live := newLiveSystem(t, 1000)

	var mu sync.Mutex
	got := make([]clockwork.Result, 0, 2)
	fromCallback := make(chan clockwork.Result, 1)
	var h clockwork.Handle
	var err error
	if doErr := live.Do(func() {
		h, err = sys.SubmitRequest(clockwork.Request{
			Model: "m",
			SLO:   time.Second,
			OnResult: func(r clockwork.Result) {
				mu.Lock()
				got = append(got, r)
				mu.Unlock()
				fromCallback <- r
			},
		}, func(r clockwork.Result) {
			// onDone fires after OnResult.
			mu.Lock()
			got = append(got, r)
			mu.Unlock()
		})
	}); doErr != nil {
		t.Fatal(doErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case cb := <-fromCallback:
		if cb != res {
			t.Fatalf("OnResult saw %+v, Wait saw %+v", cb, res)
		}
	case <-ctx.Done():
		t.Fatal("OnResult never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("callbacks fired %d times, want 2 (OnResult then onDone)", len(got))
	}
}

// TestLiveDoAfterStop: Do against a stopped driver reports
// ErrLiveStopped instead of deadlocking.
func TestLiveDoAfterStop(t *testing.T) {
	sys, err := clockwork.New(clockwork.Config{})
	if err != nil {
		t.Fatal(err)
	}
	live := sys.StartLive(1000)
	live.Stop()
	if doErr := live.Do(func() {}); !errors.Is(doErr, clockwork.ErrLiveStopped) {
		t.Fatalf("Do after Stop: %v, want ErrLiveStopped", doErr)
	}
	live.Stop() // idempotent
}

// TestSimWaitStillWorks: Wait also composes with the virtual clock —
// a goroutine advancing the clock releases a waiting goroutine.
func TestSimWaitStillWorks(t *testing.T) {
	sys, err := clockwork.New(clockwork.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	h, err := sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if res, werr := h.Wait(ctx); werr != nil || !res.Success {
			t.Errorf("Wait: %+v, %v", res, werr)
		}
	}()
	sys.RunFor(time.Second)
	<-done
}
