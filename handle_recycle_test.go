package clockwork_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"clockwork"
)

// newSimSystem builds a single-worker simulation system with model "m"
// registered — the deterministic harness for handle-recycling tests.
func newSimSystem(t *testing.T) *clockwork.System {
	t.Helper()
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModel("m", "resnet50_v1b"); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestHandleStaleAfterRelease is the gen-guard contract (the Handle
// analogue of simclock's TestTimerStaleAfterRecycle): every method on a
// copy that outlived its Release is a deterministic no-op, even though
// the underlying slot may already belong to another request.
func TestHandleStaleAfterRelease(t *testing.T) {
	sys := newSimSystem(t)

	h, err := sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunFor(time.Second)
	if !h.Done() {
		t.Fatal("request did not complete within a simulated second")
	}
	stale := h // copy survives the Release below
	h.Release()

	// Re-occupy the slot: the next submission typically reuses it, so a
	// buggy stale copy would observe the successor's state.
	h2, err := sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}

	if stale.Done() {
		t.Error("stale.Done() = true, want false")
	}
	if stale.ID() != 0 {
		t.Errorf("stale.ID() = %d, want 0", stale.ID())
	}
	if _, ok := stale.Outcome(); ok {
		t.Error("stale.Outcome() ok = true, want false")
	}
	if stale.Cancel() {
		t.Error("stale.Cancel() = true, want false")
	}
	if _, werr := stale.Wait(context.Background()); !errors.Is(werr, clockwork.ErrHandleReleased) {
		t.Errorf("stale.Wait() = %v, want ErrHandleReleased", werr)
	}
	stale.Release() // double release: no-op, must not corrupt h2's slot

	sys.RunFor(time.Second)
	if res, ok := h2.Outcome(); !ok || !res.Success {
		t.Fatalf("successor request corrupted by stale handle: %+v, %v", res, ok)
	}
	h2.Release()
}

// TestHandleZeroValue: the zero Handle behaves exactly like a released
// one — callers may use it as a sentinel without nil checks.
func TestHandleZeroValue(t *testing.T) {
	var h clockwork.Handle
	if h.Done() || h.Cancel() || h.ID() != 0 {
		t.Error("zero Handle must report not-done, not-cancellable, ID 0")
	}
	if _, ok := h.Outcome(); ok {
		t.Error("zero Handle Outcome ok = true")
	}
	if _, err := h.Wait(context.Background()); !errors.Is(err, clockwork.ErrHandleReleased) {
		t.Errorf("zero Handle Wait = %v, want ErrHandleReleased", err)
	}
	h.Release() // no-op
}

// TestHandleReleaseBeforeCompletion: releasing a still-pending handle
// bumps the generation immediately (methods no-op from then on) but the
// request itself runs to its normal outcome — Release abandons the
// observation, not the work.
func TestHandleReleaseBeforeCompletion(t *testing.T) {
	sys := newSimSystem(t)

	var got []clockwork.Result
	h, err := sys.SubmitRequest(clockwork.Request{
		Model: "m", SLO: time.Second,
		OnResult: func(r clockwork.Result) { got = append(got, r) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Release() // before any Run: the request is still in flight
	if h.Done() {
		t.Error("released handle reports Done")
	}
	sys.RunFor(time.Second)
	if len(got) != 1 || !got[0].Success {
		t.Fatalf("OnResult after early Release: %+v, want one success", got)
	}
	if _, ok := h.Outcome(); ok {
		t.Error("released handle exposes an outcome")
	}
}

// countingSink records deliveries for the fire-and-forget path.
type countingSink struct {
	mu  sync.Mutex
	got []clockwork.Result
}

func (c *countingSink) OnResult(r clockwork.Result) {
	c.mu.Lock()
	c.got = append(c.got, r)
	c.mu.Unlock()
}

// TestSubmitRequestSink: the handle-free submission path delivers the
// outcome to the sink exactly once, with the same fields a Handle would
// observe.
func TestSubmitRequestSink(t *testing.T) {
	sys := newSimSystem(t)

	sink := &countingSink{}
	if err := sys.SubmitRequestSink(0, clockwork.Request{Model: "m", SLO: time.Second}, sink); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(time.Second)
	if len(sink.got) != 1 {
		t.Fatalf("sink fired %d times, want exactly 1", len(sink.got))
	}
	res := sink.got[0]
	if !res.Success || res.Model != "m" || res.Latency <= 0 || res.RequestID == 0 {
		t.Fatalf("sink result: %+v", res)
	}
}

// TestSubmitRequestSinkErrors: submission errors surface synchronously
// (typed), the sink never fires for them, and combining OnResult with a
// sink is rejected — the sink IS the completion callback.
func TestSubmitRequestSinkErrors(t *testing.T) {
	sys := newSimSystem(t)

	sink := &countingSink{}
	err := sys.SubmitRequestSink(0, clockwork.Request{
		Model: "m", SLO: time.Second,
		OnResult: func(clockwork.Result) {},
	}, sink)
	if !errors.Is(err, clockwork.ErrInvalidRequest) {
		t.Fatalf("OnResult+sink: %v, want ErrInvalidRequest", err)
	}
	if err := sys.SubmitRequestSink(0, clockwork.Request{Model: "nope", SLO: time.Second}, sink); !errors.Is(err, clockwork.ErrUnknownModel) {
		t.Fatalf("unknown model: %v, want ErrUnknownModel", err)
	}
	sys.RunFor(time.Second)
	if len(sink.got) != 0 {
		t.Fatalf("sink fired %d times on failed submissions, want 0", len(sink.got))
	}
}

// TestHandleRecycleStress hammers the handle free list from 16 client
// goroutines — submit, wait, cancel, release, and stale-copy probes all
// interleaving against a hot pool. Run under -race this is the
// regression net for the generation guard: a missing guard shows up as
// a data race or a cross-request observation, both fatal here.
func TestHandleRecycleStress(t *testing.T) {
	sys, live := newLiveSystem(t, 1000)

	const goroutines = 16
	iters := 40
	if testing.Short() {
		iters = 8
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var h clockwork.Handle
				var err error
				if doErr := live.Do(func() {
					h, err = sys.SubmitRequest(clockwork.Request{Model: "m", SLO: time.Second}, nil)
				}); doErr != nil {
					t.Errorf("g%d: Do: %v", g, doErr)
					return
				}
				if err != nil {
					t.Errorf("g%d: SubmitRequest: %v", g, err)
					return
				}
				switch (g + i) % 4 {
				case 0: // wait, release, then probe a stale copy
					stale := h
					if _, werr := h.Wait(ctx); werr != nil {
						t.Errorf("g%d: Wait: %v", g, werr)
						return
					}
					h.Release()
					if stale.Done() || stale.Cancel() || stale.ID() != 0 {
						t.Errorf("g%d: stale copy observed live state", g)
						return
					}
					if _, werr := stale.Wait(ctx); !errors.Is(werr, clockwork.ErrHandleReleased) {
						t.Errorf("g%d: stale Wait: %v", g, werr)
						return
					}
				case 1: // cancel on the engine goroutine, then wait out the outcome
					if doErr := live.Do(func() { h.Cancel() }); doErr != nil {
						t.Errorf("g%d: Do(Cancel): %v", g, doErr)
						return
					}
					if _, werr := h.Wait(ctx); werr != nil {
						t.Errorf("g%d: Wait after Cancel: %v", g, werr)
						return
					}
					h.Release()
				case 2: // release immediately: the in-flight request completes unobserved
					h.Release()
					h.Release() // double release is a no-op
				case 3: // wait without cancelling, double-release at the end
					if _, werr := h.Wait(ctx); werr != nil {
						t.Errorf("g%d: Wait: %v", g, werr)
						return
					}
					if !h.Done() {
						t.Errorf("g%d: Done false after Wait", g)
						return
					}
					h.Release()
					h.Release()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSinkStress drives the fire-and-forget path from 16 goroutines
// against the pooled sink adapters; every submission must deliver
// exactly once (counted), with no lost or duplicated outcomes.
func TestSinkStress(t *testing.T) {
	sys, live := newLiveSystem(t, 1000)

	const goroutines = 16
	iters := 40
	if testing.Short() {
		iters = 8
	}
	var delivered sync.WaitGroup
	var submitted int64
	var mu sync.Mutex

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				delivered.Add(1)
				ok := false
				if doErr := live.Do(func() {
					if err := sys.SubmitRequestSink(0, clockwork.Request{Model: "m", SLO: time.Second}, sinkFunc(func(clockwork.Result) {
						delivered.Done()
					})); err == nil {
						ok = true
					}
				}); doErr != nil {
					t.Errorf("Do: %v", doErr)
				}
				if !ok {
					delivered.Done() // submission refused: no outcome coming
					continue
				}
				mu.Lock()
				submitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	done := make(chan struct{})
	go func() { delivered.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("sink outcomes never all arrived (lost delivery)")
	}
	if submitted == 0 {
		t.Fatal("no submission succeeded")
	}
}

// sinkFunc adapts a func to ResultSink for tests.
type sinkFunc func(clockwork.Result)

func (f sinkFunc) OnResult(r clockwork.Result) { f(r) }
