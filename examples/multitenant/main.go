// Multitenant: a latency-sensitive (LS) service shares the cluster with
// aggressive batch (BC) tenants — §6.4's isolation property. The LS
// tenant keeps meeting its 25ms SLO while the batch tenants soak up the
// remaining capacity.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"clockwork"
)

func main() {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, GPUsPerWorker: 1, Seed: 7})
	if err != nil {
		panic(err)
	}
	mustRegister(sys, "ls", "resnet50_v1b")
	mustRegister(sys, "bc-a", "resnet50_v1b")
	mustRegister(sys, "bc-b", "resnet50_v1b")

	const (
		lsSLO  = 25 * time.Millisecond
		bcSLO  = 30 * time.Second // effectively no deadline
		lsRate = 200.0            // r/s
		runFor = 30 * time.Second
	)

	var lsSent, lsOK, bcDone int
	rnd := rand.New(rand.NewSource(1))

	// LS tenant: open-loop Poisson arrivals at 200 r/s.
	var lsArrival func()
	lsArrival = func() {
		gap := time.Duration(rnd.ExpFloat64() / lsRate * float64(time.Second))
		sys.After(gap, func() {
			if sys.Now() >= runFor {
				return
			}
			lsSent++
			// The LS tenant labels its requests for per-tenant
			// accounting and runs at elevated priority.
			sys.SubmitRequest(clockwork.Request{
				Model: "ls", SLO: lsSLO, Tenant: "latency-sensitive", Priority: 1,
			}, func(r clockwork.Result) {
				if r.Success && r.Latency <= lsSLO {
					lsOK++
				}
			})
			lsArrival()
		})
	}
	lsArrival()

	// BC tenants: closed loop, 16 outstanding each, no real deadline.
	for _, model := range []string{"bc-a", "bc-b"} {
		model := model
		var inFlight func()
		inFlight = func() {
			if sys.Now() >= runFor {
				return
			}
			sys.SubmitRequest(clockwork.Request{
				Model: model, SLO: bcSLO, Tenant: "batch",
			}, func(r clockwork.Result) {
				if r.Success {
					bcDone++
				}
				inFlight()
			})
		}
		for i := 0; i < 16; i++ {
			inFlight()
		}
	}

	sys.RunFor(runFor + time.Second)

	fmt.Printf("LS: %d/%d within %v (%.2f%% satisfaction)\n",
		lsOK, lsSent, lsSLO, 100*float64(lsOK)/float64(lsSent))
	fmt.Printf("BC: %d requests completed (%.0f r/s of background throughput)\n",
		bcDone, float64(bcDone)/runFor.Seconds())
	fmt.Printf("cluster p99=%v max=%v\n", sys.LatencyPercentile(99), sys.Summary().Max)
	for _, tenant := range []string{"latency-sensitive", "batch"} {
		if ts, ok := sys.TenantStats(tenant); ok {
			fmt.Printf("tenant %-17s %6d requests, %6d within SLO\n",
				tenant+":", ts.Requests, ts.WithinSLO)
		}
	}
}

func mustRegister(sys *clockwork.System, name, zoo string) {
	if err := sys.RegisterModel(name, zoo); err != nil {
		panic(err)
	}
}
