// Azure-replay: a miniature of §6.5 — hundreds of models with wildly
// different workload shapes (sustained, cold, bursty, periodic) share a
// small cluster, and Clockwork keeps goodput ≈ throughput with bounded
// tails throughout.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"clockwork"
)

const (
	minutes  = 8
	slo      = 100 * time.Millisecond
	copies   = 2 // instances per zoo variety
	fnPerMod = 4 // function workloads per model instance
)

func main() {
	sys, err := clockwork.New(clockwork.Config{
		Workers: 2, GPUsPerWorker: 1, Seed: 11,
		MetricsInterval: time.Minute,
	})
	if err != nil {
		panic(err)
	}

	// Register a couple of instances of every catalogue model.
	var models []string
	for _, zoo := range clockwork.ZooModels() {
		names, err := sys.RegisterCopies(zoo, zoo, copies)
		if err != nil {
			panic(err)
		}
		models = append(models, names...)
	}
	fmt.Printf("registered %d model instances from %d zoo varieties\n",
		len(models), len(clockwork.ZooModels()))

	rnd := rand.New(rand.NewSource(3))
	perMinute := make([]int, minutes)
	okPerMinute := make([]int, minutes)

	// Each model gets a few function workloads with distinct shapes.
	for _, model := range models {
		model := model
		for f := 0; f < fnPerMod; f++ {
			rate := functionRate(rnd) // invocations/minute by class
			for m := 0; m < minutes; m++ {
				m := m
				n := poisson(rnd, rate(m))
				for k := 0; k < n; k++ {
					at := time.Duration(m)*time.Minute +
						time.Duration(rnd.Float64()*float64(time.Minute))
					sys.After(at, func() {
						perMinute[m]++
						sys.Submit(model, slo, func(r clockwork.Result) {
							if r.Success && r.Latency <= slo {
								okPerMinute[m]++
							}
						})
					})
				}
			}
		}
	}

	sys.RunFor(minutes*time.Minute + time.Second)

	fmt.Println("\nminute  sent  within-SLO")
	for m := 0; m < minutes; m++ {
		fmt.Printf("%6d  %4d  %10d\n", m, perMinute[m], okPerMinute[m])
	}
	s := sys.Summary()
	fmt.Printf("\ntotal=%d ok=%d cancelled=%d coldstarts=%d\n",
		s.Requests, s.Succeeded, s.Cancelled, s.ColdStarts)
	fmt.Printf("p50=%v p99=%v p99.99=%v max=%v\n", s.P50, s.P99, s.P9999, s.Max)
}

// functionRate picks a workload class and returns its invocations/minute
// as a function of the minute index.
func functionRate(rnd *rand.Rand) func(minute int) float64 {
	switch v := rnd.Float64(); {
	case v < 0.02: // heavy sustained
		base := 20 + 40*rnd.Float64()
		return func(int) float64 { return base }
	case v < 0.20: // bursty: active half the time
		base := 5 + 10*rnd.Float64()
		on := rnd.Intn(2) == 0
		return func(m int) float64 {
			if (m/2)%2 == 0 == on {
				return base
			}
			return 0.05
		}
	case v < 0.35: // periodic spike every 4 minutes
		spike := 20 + 20*rnd.Float64()
		off := rnd.Intn(4)
		return func(m int) float64 {
			if m%4 == off {
				return spike
			}
			return 0.05
		}
	default: // cold
		return func(int) float64 { return 0.2 * rnd.Float64() }
	}
}

// poisson draws a Poisson-distributed count by Knuth inversion.
func poisson(rnd *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rnd.Float64()
		if p <= limit {
			return k
		}
		k++
		if k > 10_000 {
			return k
		}
	}
}
