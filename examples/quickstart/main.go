// Quickstart: serve a ResNet50 with a 100ms SLO and watch the cold
// start, warm latency, and admission control in action.
package main

import (
	"fmt"
	"time"

	"clockwork"
)

func main() {
	sys := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1, Seed: 1})
	if err := sys.RegisterModel("demo", "resnet50_v1b"); err != nil {
		panic(err)
	}

	report := func(tag string) func(clockwork.Result) {
		return func(r clockwork.Result) {
			status := "ok"
			if !r.Success {
				status = "failed:" + r.Reason
			}
			fmt.Printf("%-22s %-14s latency=%-12v batch=%d cold=%v\n",
				tag, status, r.Latency, r.Batch, r.ColdStart)
		}
	}

	// 1. The first request is a cold start: the controller schedules a
	// LOAD (≈8.3ms weight transfer) before the INFER (≈2.8ms).
	sys.Submit("demo", 100*time.Millisecond, report("cold start"))
	sys.RunFor(50 * time.Millisecond)

	// 2. Warm requests skip the transfer.
	sys.Submit("demo", 100*time.Millisecond, report("warm"))
	sys.RunFor(50 * time.Millisecond)

	// 3. A burst of eight: Clockwork batches them (larger batch sizes
	// have earlier required start times, so batching wins).
	for i := 0; i < 8; i++ {
		sys.Submit("demo", 100*time.Millisecond, report(fmt.Sprintf("burst[%d]", i)))
	}
	sys.RunFor(100 * time.Millisecond)

	// 4. An unmeetable SLO (1ms < the 2.8ms execution time) is rejected
	// in advance — no GPU cycles are wasted on it.
	sys.Submit("demo", time.Millisecond, report("unmeetable SLO"))
	sys.RunFor(50 * time.Millisecond)

	s := sys.Summary()
	fmt.Printf("\nsummary: %d requests, %d ok, %d cancelled, p50=%v p99=%v max=%v\n",
		s.Requests, s.Succeeded, s.Cancelled, s.P50, s.P99, s.Max)
}
