// Quickstart: serve a ResNet50 with a 100ms SLO and watch the cold
// start, warm latency, batching, admission control, and the runtime
// control plane in action — all through the public API.
package main

import (
	"fmt"
	"time"

	"clockwork"
)

func main() {
	sys, err := clockwork.New(clockwork.Config{Workers: 1, GPUsPerWorker: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := sys.RegisterModel("demo", "resnet50_v1b"); err != nil {
		panic(err)
	}

	report := func(tag string) func(clockwork.Result) {
		return func(r clockwork.Result) {
			status := "ok"
			if !r.Success {
				status = "failed:" + r.Reason.String()
			}
			fmt.Printf("%-22s %-14s latency=%-12v batch=%d cold=%v\n",
				tag, status, r.Latency, r.Batch, r.ColdStart)
		}
	}
	submit := func(req clockwork.Request, tag string) {
		if _, err := sys.SubmitRequest(req, report(tag)); err != nil {
			panic(err)
		}
	}

	// 1. The first request is a cold start: the controller schedules a
	// LOAD (≈8.3ms weight transfer) before the INFER (≈2.8ms).
	submit(clockwork.Request{Model: "demo", SLO: 100 * time.Millisecond}, "cold start")
	sys.RunFor(50 * time.Millisecond)

	// 2. Warm requests skip the transfer.
	submit(clockwork.Request{Model: "demo", SLO: 100 * time.Millisecond}, "warm")
	sys.RunFor(50 * time.Millisecond)

	// 3. A burst of eight: Clockwork batches them (larger batch sizes
	// have earlier required start times, so batching wins).
	for i := 0; i < 8; i++ {
		submit(clockwork.Request{Model: "demo", SLO: 100 * time.Millisecond},
			fmt.Sprintf("burst[%d]", i))
	}
	sys.RunFor(100 * time.Millisecond)

	// 4. The same burst with a per-request batch cap: MaxBatchSize 1
	// forces solo execution of each request.
	for i := 0; i < 4; i++ {
		submit(clockwork.Request{Model: "demo", SLO: 100 * time.Millisecond, MaxBatchSize: 1},
			fmt.Sprintf("capped[%d]", i))
	}
	sys.RunFor(100 * time.Millisecond)

	// 5. An unmeetable SLO (1ms < the 2.8ms execution time) is rejected
	// in advance — no GPU cycles are wasted on it. Result.Reason is a
	// typed enum, not a string.
	if _, err := sys.SubmitRequest(clockwork.Request{Model: "demo", SLO: time.Millisecond},
		func(r clockwork.Result) {
			fmt.Printf("%-22s reason=%v (== ReasonCancelled: %v)\n",
				"unmeetable SLO", r.Reason, r.Reason == clockwork.ReasonCancelled)
		}); err != nil {
		panic(err)
	}
	sys.RunFor(50 * time.Millisecond)

	// 6. Submissions are validated: unknown models are a typed error.
	if _, err := sys.SubmitRequest(clockwork.Request{Model: "ghost", SLO: time.Second}, nil); err != nil {
		fmt.Printf("%-22s %v\n", "unknown model", err)
	}

	s := sys.Summary()
	fmt.Printf("\nsummary: %d requests, %d ok, %d cancelled, p50=%v p99=%v max=%v\n",
		s.Requests, s.Succeeded, s.Cancelled, s.P50, s.P99, s.Max)
	if ms, ok := sys.ModelStats("demo"); ok {
		fmt.Printf("model demo: %d requests, %d within SLO, %d cold starts, p99=%v\n",
			ms.Requests, ms.WithinSLO, ms.ColdStarts, ms.P99)
	}
}
