// SLO sweep: how low can the SLO go before requests stop fitting? A
// miniature of §6.3 — open-loop Poisson load on a handful of ResNet50
// instances while the SLO multiplier sweeps upward from 1× the batch-1
// execution latency.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"clockwork"
)

func main() {
	const (
		models    = 4
		totalRate = 400.0 // r/s across all models
		epoch     = 5 * time.Second
	)
	multipliers := []float64{1.0, 1.5, 2.2, 3.4, 5.1, 7.6, 11.4, 17.1, 25.6, 38.4}

	sys, err := clockwork.New(clockwork.Config{Workers: 2, GPUsPerWorker: 1, Seed: 5})
	if err != nil {
		panic(err)
	}
	names, err := sys.RegisterCopies("sweep", "resnet50_v1b", models)
	if err != nil {
		panic(err)
	}

	spec, _ := clockwork.ZooInfo("resnet50_v1b")
	base := time.Duration(spec.ExecMs[0] * float64(time.Millisecond))
	end := time.Duration(len(multipliers)) * epoch

	type ctr struct{ sent, ok int }
	epochs := make([]ctr, len(multipliers))
	epochOf := func(t time.Duration) int {
		e := int(t / epoch)
		if e >= len(multipliers) {
			return -1
		}
		return e
	}

	rnd := rand.New(rand.NewSource(9))
	perModel := totalRate / models
	for _, name := range names {
		name := name
		var arrival func()
		arrival = func() {
			gap := time.Duration(rnd.ExpFloat64() / perModel * float64(time.Second))
			sys.After(gap, func() {
				now := sys.Now()
				if now >= end {
					return
				}
				if e := epochOf(now); e >= 0 {
					slo := time.Duration(float64(base) * multipliers[e])
					epochs[e].sent++
					sys.Submit(name, slo, func(r clockwork.Result) {
						if r.Success && r.Latency <= slo {
							epochs[e].ok++
						}
					})
				}
				arrival()
			})
		}
		arrival()
	}

	sys.RunFor(end + time.Second)

	fmt.Printf("SLO sweep: %d models, %.0f r/s total, base exec %v\n\n", models, totalRate, base)
	fmt.Println("multiplier  SLO        satisfaction")
	for e, m := range multipliers {
		sat := 0.0
		if epochs[e].sent > 0 {
			sat = float64(epochs[e].ok) / float64(epochs[e].sent)
		}
		fmt.Printf("%9.1f  %-9v  %.3f\n", m, time.Duration(float64(base)*m).Round(100*time.Microsecond), sat)
	}
}
