// Example liveserve: the serving plane end to end in one process. It
// boots a clockworkd-style server on a loopback port at 200× wall
// speed, registers models over HTTP, drives a short closed-loop load
// through the typed client, prints the report, and drains cleanly —
// the same lifecycle `clockworkd` + `clockwork-loadgen` run as two
// processes.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"clockwork"
	"clockwork/serve"
)

func main() {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, GPUsPerWorker: 2})
	if err != nil {
		log.Fatal(err)
	}

	srv := serve.New(sys, serve.Options{Speed: 200})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("serving on %s at %gx wall speed\n", ln.Addr(), srv.Live().Speed())

	ctx := context.Background()
	client := serve.NewClient(ln.Addr().String(), nil)
	if err := client.WaitReady(ctx); err != nil {
		log.Fatal(err)
	}
	names, err := client.RegisterCopies(ctx, "resnet", "resnet50_v1b", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d instances\n", len(names))

	// One hand-rolled request through the typed client…
	res, err := client.Infer(ctx, clockwork.Request{Model: names[0], SLO: 500 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first inference: success=%v cold_start=%v virtual latency=%v\n",
		res.Success, res.ColdStart, res.Latency.Round(time.Microsecond))

	// …then a second of closed-loop load.
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		Client:      client,
		SLO:         500 * time.Millisecond,
		Concurrency: 8,
		Duration:    time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())

	shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
