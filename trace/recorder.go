package trace

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"clockwork/internal/telemetry"
)

// Options parameterises a Recorder. The zero value selects the
// defaults: 1% sampling, 2048-trace rings, 256 retained violations.
type Options struct {
	// SampleRate is the head-based sampling probability in [0, 1].
	// Negative means "unset" (→ 0.01); 0 is a real rate (aggregate
	// layers and violation retention still run, the completed ring
	// stays empty).
	SampleRate float64
	// Enabled starts the recorder recording. When false, hooks return
	// immediately and only the admission-shed counter advances; the
	// admin plane can enable recording at runtime.
	Enabled bool
	// RingSize bounds the per-shard completed-trace ring (and the exec
	// and load span rings). Default 2048.
	RingSize int
	// ViolationRingSize bounds the always-retained per-shard ring of
	// SLO-violating traces. Default 256.
	ViolationRingSize int
}

func (o Options) withDefaults() Options {
	if o.SampleRate < 0 {
		o.SampleRate = 0.01
	}
	if o.SampleRate > 1 {
		o.SampleRate = 1
	}
	if o.RingSize <= 0 {
		o.RingSize = 2048
	}
	if o.ViolationRingSize <= 0 {
		o.ViolationRingSize = 256
	}
	return o
}

// DefaultSampleRate is the daemon's default head-based sampling rate.
const DefaultSampleRate = 0.01

// sampleAll is the threshold sentinel for rate >= 1: every request is
// sampled, with no hash comparison (so rate 1.0 is exact, not 1-2⁻⁶⁴).
const sampleAll = ^uint64(0)

// Recorder is the cluster-wide flight recorder: one ShardRecorder per
// scheduler shard (engine-confined, lock-free) plus the cross-shard
// controls (enabled flag, sample rate, shed counter) as atomics so the
// admin plane can flip them from any goroutine without touching engine
// state.
type Recorder struct {
	opts Options

	enabled atomic.Bool
	// threshold is the sampling cut: sample iff splitmix64(id) <
	// threshold, with sampleAll meaning "every request". rateBits
	// mirrors the rate as float bits for exact read-back.
	threshold atomic.Uint64
	rateBits  atomic.Uint64

	// shed counts requests shed by the serving layer's admission
	// control — they never reach the control plane, so the serving
	// layer reports them here (off-engine, hence atomic).
	shed atomic.Uint64

	shards []*ShardRecorder
}

// New returns a Recorder with the given options. Bind (or the cluster
// attach path, which calls it) fixes the shard count before use.
func New(o Options) *Recorder {
	r := &Recorder{opts: o.withDefaults()}
	r.SetSampleRate(r.opts.SampleRate)
	r.enabled.Store(r.opts.Enabled)
	return r
}

// Bind sizes the recorder to n scheduler shards. It is called by the
// cluster attach path before any engine runs; calling it twice with a
// different n panics (the recorder's rings are per-shard state).
func (r *Recorder) Bind(n int) {
	if r.shards != nil {
		if len(r.shards) != n {
			panic("trace: Recorder bound twice with different shard counts")
		}
		return
	}
	r.shards = make([]*ShardRecorder, n)
	for i := range r.shards {
		r.shards[i] = newShardRecorder(r, i)
	}
}

// Shard returns shard i's recorder (nil-safe on a nil Recorder, so
// unattached call sites cost one branch).
func (r *Recorder) Shard(i int) *ShardRecorder {
	if r == nil {
		return nil
	}
	return r.shards[i]
}

// Shards returns the bound shard count.
func (r *Recorder) Shards() int { return len(r.shards) }

// SetEnabled flips recording on or off. Safe from any goroutine:
// recording is a pure observer, so a mid-flight flip changes what is
// captured, never what the scheduler does.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SetSampleRate sets the head-based sampling probability, clamped to
// [0, 1]. Safe from any goroutine.
func (r *Recorder) SetSampleRate(rate float64) {
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	}
	if rate >= 1 {
		r.rateBits.Store(math.Float64bits(1))
		r.threshold.Store(sampleAll)
		return
	}
	r.rateBits.Store(math.Float64bits(rate))
	// rate < 1 ⇒ rate·2⁶⁴ < 2⁶⁴, representable exactly enough: the
	// float product carries 53 significant bits, matching the sampling
	// resolution anywhere below 1.
	r.threshold.Store(uint64(rate * math.Exp2(64)))
}

// SampleRate returns the current sampling probability.
func (r *Recorder) SampleRate() float64 {
	return math.Float64frombits(r.rateBits.Load())
}

// sampled is the deterministic head-based sampling decision for a
// request ID at the current rate.
func (r *Recorder) sampled(id uint64) bool {
	th := r.threshold.Load()
	return th == sampleAll || splitmix64(id) < th
}

// RecordShed counts one admission-layer shed (the request never reached
// the control plane). Safe from any goroutine.
func (r *Recorder) RecordShed() {
	if r != nil {
		r.shed.Add(1)
	}
}

// ShedCount returns the number of admission sheds recorded.
func (r *Recorder) ShedCount() uint64 { return r.shed.Load() }

// Move transfers the in-flight building state of the given request IDs
// from one shard's recorder to another's, following a model migration.
// Must run with both engines stopped (the migration itself already
// requires that barrier).
func (r *Recorder) Move(from, to int, ids []uint64) {
	if r == nil || from == to {
		return
	}
	src, dst := r.shards[from], r.shards[to]
	for _, id := range ids {
		if t, ok := src.building[id]; ok {
			delete(src.building, id)
			t.Shard = to
			dst.building[id] = t
		}
	}
}

// ---- per-shard engine-confined state ----

// ShardRecorder is one scheduler shard's slice of the flight recorder.
// All methods except those documented otherwise must run on the shard's
// engine goroutine; none of them allocate engine events, so attaching a
// recorder never perturbs the schedule. All hook methods are nil-safe.
type ShardRecorder struct {
	rec   *Recorder
	shard int

	// building holds traces of requests still in flight, keyed by
	// request ID. Entries are created at admission and removed at
	// client-side completion (or migrated by Move).
	building map[uint64]*RequestTrace

	// completed retains sampled finalized traces; violations retains
	// every SLO-violating trace regardless of sampling.
	completed  ring[*RequestTrace]
	violations ring[*RequestTrace]
	execs      ring[ExecSpan]
	loads      ring[LoadSpan]

	// lastLoad remembers each model's most recent completed weight
	// transfer, for attributing cold-start load spans to requests.
	lastLoad map[string]LoadSpan

	// free recycles finalized traces that no ring retained — at low
	// sample rates that is nearly every request, making the recorder's
	// steady-state allocation cost ~zero instead of one RequestTrace
	// per request. Safe because Snapshot copies traces by value:
	// nothing outside the shard ever holds one of these pointers.
	free []*RequestTrace

	agg shardAgg
}

// shardAgg is the per-shard aggregate layer, merged at scrape time
// under a stopped-world view.
type shardAgg struct {
	stage   [numStages]*telemetry.Histogram
	predErr *telemetry.Histogram
	prov    map[provKey]uint64

	started     uint64 // building entries created
	finalized   uint64 // traces completed
	sampledKept uint64 // finalized traces retained in the completed ring
	violations  uint64 // finalized traces that violated (failed or over SLO)
	synthesized uint64 // traces reconstructed at completion
}

type provKey struct {
	cause  Cause
	model  string
	tenant string
}

func newShardRecorder(r *Recorder, shard int) *ShardRecorder {
	s := &ShardRecorder{
		rec:        r,
		shard:      shard,
		building:   make(map[uint64]*RequestTrace),
		completed:  newRing[*RequestTrace](r.opts.RingSize),
		violations: newRing[*RequestTrace](r.opts.ViolationRingSize),
		execs:      newRing[ExecSpan](r.opts.RingSize),
		loads:      newRing[LoadSpan](r.opts.RingSize),
		lastLoad:   make(map[string]LoadSpan),
	}
	for i := range s.agg.stage {
		s.agg.stage[i] = telemetry.NewHistogram()
	}
	s.agg.predErr = telemetry.NewHistogram()
	s.agg.prov = make(map[provKey]uint64)
	return s
}

func (s *ShardRecorder) on() bool { return s != nil && s.rec.enabled.Load() }

// Admitted records a request's controller-side admission: identity, SLO
// class, cold-start flag, and queue position. Creates the building
// entry every later hook enriches.
func (s *ShardRecorder) Admitted(id uint64, model, tenant string, slo time.Duration, priority int, cold bool, queueDepth int, now time.Duration) {
	if !s.on() {
		return
	}
	s.agg.started++
	t := s.newTrace()
	*t = RequestTrace{
		ID: id, Model: model, Tenant: tenant, Shard: s.shard,
		SLO: slo, Priority: priority,
		Sampled:   s.rec.sampled(id),
		ColdStart: cold, QueueDepth: queueDepth,
		AdmittedAt: now,
	}
	s.building[id] = t
}

// newTrace pops a recycled trace or allocates a fresh one.
func (s *ShardRecorder) newTrace() *RequestTrace {
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free = s.free[:n-1]
		return t
	}
	return new(RequestTrace)
}

// Arrived stamps the client-side send instant (the request's first
// lifecycle event, known to the routing layer rather than the
// controller).
func (s *ShardRecorder) Arrived(id uint64, sentAt time.Duration) {
	if !s.on() {
		return
	}
	if t, ok := s.building[id]; ok {
		t.ClientSend = sentAt
	}
}

// Scheduled records the scheduler's dispatch decision for every request
// in an INFER action: target worker/GPU, batch size, predicted window
// start and predicted execution duration.
func (s *ShardRecorder) Scheduled(ids []uint64, actionID uint64, worker, gpu, batch int, predStart, predExec, now time.Duration) {
	if !s.on() {
		return
	}
	for _, id := range ids {
		t, ok := s.building[id]
		if !ok {
			continue
		}
		t.SchedAt = now
		t.ActionID = actionID
		t.Worker, t.GPU, t.Batch = worker, gpu, batch
		t.PredStart, t.PredExec = predStart, predExec
	}
}

// ExecDone records a successful INFER's measured on-GPU execution span
// for its requests, and appends the span to the per-GPU track ring.
func (s *ShardRecorder) ExecDone(ids []uint64, actionID uint64, model string, worker, gpu, batch int, start, end time.Duration) {
	if !s.on() {
		return
	}
	for _, id := range ids {
		if t, ok := s.building[id]; ok {
			t.ExecStart, t.ExecEnd = start, end
		}
	}
	// Copy the ID list: the caller's slice is the action's backing
	// array, which the controller recycles for the next dispatch.
	s.execs.push(ExecSpan{
		ActionID: actionID, Model: model, Shard: s.shard,
		Worker: worker, GPU: gpu, Batch: batch,
		Start: start, End: end, Requests: append([]uint64(nil), ids...),
	})
}

// LoadDone records a completed LOAD action's weight transfer. Finalize
// attributes it to cold-start requests that queued across it.
func (s *ShardRecorder) LoadDone(model string, worker, gpu int, start, end time.Duration, ok bool) {
	if !s.on() {
		return
	}
	span := LoadSpan{Model: model, Shard: s.shard, Worker: worker, GPU: gpu, Start: start, End: end, OK: ok}
	s.loads.push(span)
	if ok {
		s.lastLoad[model] = span
	}
}

// Responded stamps the controller-side response instant.
func (s *ShardRecorder) Responded(id uint64, now time.Duration) {
	if !s.on() {
		return
	}
	if t, ok := s.building[id]; ok {
		t.RespondedAt = now
	}
}

// Outcome is a request's terminal result as the client observed it,
// handed to Completed by the routing layer.
type Outcome struct {
	ID        uint64
	Model     string
	Tenant    string
	Success   bool
	Reason    uint8
	ReasonStr string
	Batch     int
	ColdStart bool
	SLO       time.Duration
	// Latency is the client-observed end-to-end latency.
	Latency time.Duration
}

// Completed finalizes a request's trace at client-side completion:
// computes the stage decomposition, attributes the provenance cause,
// feeds the aggregate layer, and retains the trace per the sampling
// and violation-retention rules. A request admitted while the recorder
// was off (or never admitted at all, e.g. unregistered models) gets a
// synthesized minimal trace so provenance still counts it.
func (s *ShardRecorder) Completed(o Outcome, now time.Duration) {
	if !s.on() {
		return
	}
	t, ok := s.building[o.ID]
	if ok {
		delete(s.building, o.ID)
	} else {
		t = s.newTrace()
		*t = RequestTrace{
			ID: o.ID, Model: o.Model, Tenant: o.Tenant, Shard: s.shard,
			SLO: o.SLO, Sampled: s.rec.sampled(o.ID), Synthesized: true,
		}
		s.agg.synthesized++
	}
	t.Success, t.Reason, t.ReasonStr = o.Success, o.Reason, o.ReasonStr
	t.ColdStart = t.ColdStart || o.ColdStart
	if o.Batch > 0 {
		t.Batch = o.Batch
	}
	t.Latency = o.Latency
	t.DoneAt = now
	t.Violation = !o.Success || o.Latency > o.SLO
	// Attribute the cold-start load span: the model's most recent
	// completed transfer, if it overlapped this request's queue wait.
	if t.ColdStart && t.AdmittedAt > 0 {
		if span, ok := s.lastLoad[t.Model]; ok && span.End >= t.AdmittedAt && (t.ExecStart == 0 || span.Start < t.ExecStart) {
			t.LoadStart, t.LoadEnd = span.Start, span.End
		}
	}
	t.Cause = t.attributeCause()

	// Aggregate layer — full population, not just sampled traces.
	s.agg.finalized++
	for _, st := range Stages {
		if d, ok := t.StageDur(st); ok {
			s.agg.stage[st].Observe(d)
		}
	}
	if t.PredExec > 0 && t.ExecEnd > t.ExecStart {
		err := (t.ExecEnd - t.ExecStart) - t.PredExec
		if err < 0 {
			err = -err
		}
		s.agg.predErr.Observe(err)
	}
	if t.Violation {
		s.agg.violations++
		s.agg.prov[provKey{t.Cause, t.Model, t.Tenant}]++
	}

	// Retention — or recycling, when no ring keeps the trace (the
	// common case at low sample rates). The free list is bounded by
	// the in-flight population: it only grows when a request admitted
	// with a fresh allocation finalizes unretained.
	if t.Sampled {
		s.agg.sampledKept++
	}
	switch {
	case t.Violation && t.Sampled:
		s.violations.push(t)
		s.completed.push(t)
	case t.Violation:
		s.violations.push(t)
	case t.Sampled:
		s.completed.push(t)
	default:
		s.free = append(s.free, t)
	}
}

// Building returns the number of in-flight building entries (tests and
// leak checks; engine-side read).
func (s *ShardRecorder) Building() int { return len(s.building) }

// ---- bounded rings ----

type ring[T any] struct {
	buf []T
	n   uint64 // total pushed
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, 0, capacity)}
}

func (r *ring[T]) push(v T) {
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = v
	}
	r.n++
}

// items returns the retained elements oldest-first.
func (r *ring[T]) items() []T {
	out := make([]T, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) || cap(r.buf) == 0 {
		return append(out, r.buf...)
	}
	start := r.n % uint64(cap(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(start+uint64(i))%uint64(len(r.buf))])
	}
	return out
}

// ---- stopped-world reads ----

// ProvenanceCount is one (cause, model, tenant) cell of the SLO-miss
// provenance table.
type ProvenanceCount struct {
	Cause  string `json:"cause"`
	Model  string `json:"model"`
	Tenant string `json:"tenant"`
	Count  uint64 `json:"count"`
}

// Stats summarises recorder volume.
type Stats struct {
	Started     uint64 `json:"started"`
	Finalized   uint64 `json:"finalized"`
	SampledKept uint64 `json:"sampled_kept"`
	Violations  uint64 `json:"violations"`
	Synthesized uint64 `json:"synthesized"`
	Building    uint64 `json:"building"`
	Shed        uint64 `json:"shed"`
}

// Aggregate is the recorder's merged aggregate layer: per-stage latency
// decomposition histograms, the predicted-vs-actual execution error
// histogram, and the provenance table.
type Aggregate struct {
	Stage   map[Stage]*telemetry.Histogram
	PredErr *telemetry.Histogram
	// Provenance is sorted by (cause, model, tenant) for deterministic
	// emission order.
	Provenance []ProvenanceCount
	Stats      Stats
}

// Aggregate merges every shard's aggregate layer. Must run with all
// engines stopped (Live.Do in live mode; quiescence in simulation).
func (r *Recorder) Aggregate() Aggregate {
	a := Aggregate{Stage: make(map[Stage]*telemetry.Histogram), PredErr: telemetry.NewHistogram()}
	for _, st := range Stages {
		a.Stage[st] = telemetry.NewHistogram()
	}
	prov := make(map[provKey]uint64)
	for _, s := range r.shards {
		for _, st := range Stages {
			a.Stage[st].Merge(s.agg.stage[st])
		}
		a.PredErr.Merge(s.agg.predErr)
		for k, v := range s.agg.prov {
			prov[k] += v
		}
		a.Stats.Started += s.agg.started
		a.Stats.Finalized += s.agg.finalized
		a.Stats.SampledKept += s.agg.sampledKept
		a.Stats.Violations += s.agg.violations
		a.Stats.Synthesized += s.agg.synthesized
		a.Stats.Building += uint64(len(s.building))
	}
	a.Stats.Shed = r.shed.Load()
	a.Provenance = sortProvenance(prov)
	return a
}

func sortProvenance(prov map[provKey]uint64) []ProvenanceCount {
	out := make([]ProvenanceCount, 0, len(prov))
	for k, v := range prov {
		out = append(out, ProvenanceCount{Cause: k.cause.String(), Model: k.model, Tenant: k.tenant, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cause != out[j].Cause {
			return out[i].Cause < out[j].Cause
		}
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// Snapshot is a stopped-world copy of the recorder's retained traces
// and aggregates, plus the wall↔virtual correlation metadata the caller
// stamps in (the recorder itself never reads wall clocks).
type Snapshot struct {
	// VirtualNow is the engine instant of the snapshot (shard 0's clock
	// in multi-engine mode); WallOrigin/Speed correlate virtual offsets
	// with wall time: wall = WallOrigin + (virtual-VirtualOrigin)/Speed.
	VirtualNow    time.Duration `json:"virtual_now"`
	WallOrigin    time.Time     `json:"wall_origin,omitempty"`
	VirtualOrigin time.Duration `json:"virtual_origin,omitempty"`
	Speed         float64       `json:"speed,omitempty"`

	Enabled    bool    `json:"enabled"`
	SampleRate float64 `json:"sample_rate"`

	// Requests holds retained traces (sampled ∪ violations, deduped),
	// ordered by admission instant then ID.
	Requests []RequestTrace `json:"requests"`
	Execs    []ExecSpan     `json:"execs"`
	Loads    []LoadSpan     `json:"loads"`

	Provenance []ProvenanceCount `json:"provenance"`
	Stats      Stats             `json:"stats"`
}

// Snapshot copies the retained traces and aggregates. Must run with all
// engines stopped, like Aggregate.
func (r *Recorder) Snapshot() *Snapshot {
	snap := &Snapshot{Enabled: r.enabled.Load(), SampleRate: r.SampleRate()}
	seen := make(map[uint64]bool)
	for _, s := range r.shards {
		for _, t := range s.completed.items() {
			if !seen[t.ID] {
				seen[t.ID] = true
				snap.Requests = append(snap.Requests, *t)
			}
		}
		for _, t := range s.violations.items() {
			if !seen[t.ID] {
				seen[t.ID] = true
				snap.Requests = append(snap.Requests, *t)
			}
		}
		snap.Execs = append(snap.Execs, s.execs.items()...)
		snap.Loads = append(snap.Loads, s.loads.items()...)
	}
	sort.Slice(snap.Requests, func(i, j int) bool {
		a, b := &snap.Requests[i], &snap.Requests[j]
		if a.AdmittedAt != b.AdmittedAt {
			return a.AdmittedAt < b.AdmittedAt
		}
		return a.ID < b.ID
	})
	sort.Slice(snap.Execs, func(i, j int) bool {
		a, b := &snap.Execs[i], &snap.Execs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ActionID < b.ActionID
	})
	sort.Slice(snap.Loads, func(i, j int) bool {
		a, b := &snap.Loads[i], &snap.Loads[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Model < b.Model
	})
	agg := r.Aggregate()
	snap.Provenance = agg.Provenance
	snap.Stats = agg.Stats
	return snap
}
