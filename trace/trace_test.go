package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func msd(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// record runs one request's full lifecycle through shard s.
func record(s *ShardRecorder, id uint64, o Outcome, cold bool) {
	s.Admitted(id, o.Model, o.Tenant, o.SLO, 0, cold, 1, msd(10))
	s.Arrived(id, msd(9))
	if o.Success {
		s.Scheduled([]uint64{id}, id+1000, 0, 0, o.Batch, msd(12), msd(3), msd(11))
		s.ExecDone([]uint64{id}, id+1000, o.Model, 0, 0, o.Batch, msd(12), msd(15))
	}
	done := msd(9) + o.Latency
	s.Responded(id, done-time.Millisecond)
	s.Completed(o, done)
}

func TestSamplingDeterministic(t *testing.T) {
	r := New(Options{SampleRate: 0.25, Enabled: true})
	r.Bind(1)
	first := make(map[uint64]bool)
	n := 0
	for id := uint64(1); id <= 4000; id++ {
		first[id] = r.sampled(id)
		if first[id] {
			n++
		}
	}
	// A pure function of the ID: identical on re-evaluation.
	for id := uint64(1); id <= 4000; id++ {
		if r.sampled(id) != first[id] {
			t.Fatalf("sampling decision for %d changed between calls", id)
		}
	}
	// Rate plausibility: 25% ± a generous band.
	if n < 700 || n > 1300 {
		t.Fatalf("sampled %d of 4000 at rate 0.25", n)
	}
	r.SetSampleRate(1)
	for id := uint64(1); id <= 100; id++ {
		if !r.sampled(id) {
			t.Fatalf("rate 1.0 must sample every ID (missed %d)", id)
		}
	}
	r.SetSampleRate(0)
	for id := uint64(1); id <= 100; id++ {
		if r.sampled(id) {
			t.Fatalf("rate 0 must sample nothing (sampled %d)", id)
		}
	}
}

func TestLifecycleStagesAndCause(t *testing.T) {
	r := New(Options{SampleRate: 1, Enabled: true})
	r.Bind(1)
	s := r.Shard(0)
	record(s, 7, Outcome{ID: 7, Model: "m", Tenant: "a", Success: true, Batch: 2, SLO: msd(100), Latency: msd(9)}, false)

	snap := r.Snapshot()
	if len(snap.Requests) != 1 {
		t.Fatalf("want 1 retained trace, got %d", len(snap.Requests))
	}
	tr := snap.Requests[0]
	if tr.Violation || tr.Cause != CauseNone {
		t.Fatalf("in-SLO success must not be a violation: %+v", tr)
	}
	checks := []struct {
		st   Stage
		want time.Duration
	}{
		{StageAdmit, msd(1)},   // 9→10
		{StageQueue, msd(2)},   // 10→12
		{StageExec, msd(3)},    // 12→15
		{StageDeliver, msd(3)}, // 15→18 (done = 9+9)
	}
	for _, c := range checks {
		got, ok := (&tr).StageDur(c.st)
		if !ok || got != c.want {
			t.Fatalf("stage %v = %v (ok=%v), want %v", c.st, got, ok, c.want)
		}
	}
	if _, ok := (&tr).StageDur(StageLoad); ok {
		t.Fatalf("warm request must have no load stage")
	}
	if s.Building() != 0 {
		t.Fatalf("building map must drain, has %d", s.Building())
	}
}

func TestViolationRetainedAtRateZero(t *testing.T) {
	r := New(Options{SampleRate: 0, Enabled: true})
	r.Bind(1)
	s := r.Shard(0)
	// A success inside SLO at rate 0: dropped entirely.
	record(s, 1, Outcome{ID: 1, Model: "m", Success: true, Batch: 1, SLO: msd(100), Latency: msd(9)}, false)
	// A cancel: retained in the violation ring regardless of rate.
	record(s, 2, Outcome{ID: 2, Model: "m", Success: false, Reason: ReasonCancelled, ReasonStr: "cancelled", SLO: msd(100), Latency: msd(100)}, false)
	snap := r.Snapshot()
	if len(snap.Requests) != 1 || snap.Requests[0].ID != 2 {
		t.Fatalf("want exactly the violating trace retained, got %+v", snap.Requests)
	}
	if !snap.Requests[0].Violation {
		t.Fatalf("cancel must be a violation")
	}
	if snap.Stats.Finalized != 2 || snap.Stats.Violations != 1 {
		t.Fatalf("stats: %+v", snap.Stats)
	}
}

func TestCauseAttribution(t *testing.T) {
	cases := []struct {
		name string
		tr   RequestTrace
		want Cause
	}{
		{"worker loss", RequestTrace{Violation: true, Reason: ReasonWorkerFailed}, CauseWorkerLoss},
		{"reject is mispredict", RequestTrace{Violation: true, Reason: ReasonRejected}, CauseMispredict},
		{"timeout is mispredict", RequestTrace{Violation: true, Reason: ReasonTimeout}, CauseMispredict},
		{"warm cancel is queueing", RequestTrace{Violation: true, Reason: ReasonCancelled}, CauseQueueing},
		{"cold cancel is cold start", RequestTrace{Violation: true, Reason: ReasonCancelled, ColdStart: true}, CauseColdStart},
		{"cold slow success", RequestTrace{Violation: true, Success: true, ColdStart: true}, CauseColdStart},
		{"overrun success is mispredict", RequestTrace{Violation: true, Success: true,
			PredExec: msd(2), ExecStart: msd(10), ExecEnd: msd(20)}, CauseMispredict},
		{"slow-but-predicted success is queueing", RequestTrace{Violation: true, Success: true,
			PredExec: msd(10), ExecStart: msd(10), ExecEnd: msd(21)}, CauseQueueing},
		{"in-SLO success", RequestTrace{Success: true}, CauseNone},
	}
	for _, c := range cases {
		if got := c.tr.attributeCause(); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestColdStartLoadAttribution(t *testing.T) {
	r := New(Options{SampleRate: 1, Enabled: true})
	r.Bind(1)
	s := r.Shard(0)
	s.Admitted(5, "m", "", msd(100), 0, true, 1, msd(10))
	s.Arrived(5, msd(9))
	s.LoadDone("m", 0, 0, msd(11), msd(19), true)
	s.Scheduled([]uint64{5}, 1005, 0, 0, 1, msd(20), msd(3), msd(12))
	s.ExecDone([]uint64{5}, 1005, "m", 0, 0, 1, msd(20), msd(23))
	s.Responded(5, msd(24))
	s.Completed(Outcome{ID: 5, Model: "m", Success: true, Batch: 1, ColdStart: true, SLO: msd(100), Latency: msd(16)}, msd(25))
	snap := r.Snapshot()
	tr := snap.Requests[0]
	if tr.LoadStart != msd(11) || tr.LoadEnd != msd(19) {
		t.Fatalf("load span not attributed: %+v", tr)
	}
	if d, ok := (&tr).StageDur(StageLoad); !ok || d != msd(8) {
		t.Fatalf("load stage = %v ok=%v, want 8ms", d, ok)
	}
}

func TestSynthesizedTrace(t *testing.T) {
	r := New(Options{SampleRate: 1, Enabled: true})
	r.Bind(1)
	s := r.Shard(0)
	// Completion with no admission (e.g. unregistered model).
	s.Completed(Outcome{ID: 9, Model: "ghost", Success: false, Reason: ReasonUnregistered,
		ReasonStr: "unregistered", SLO: msd(50), Latency: msd(1)}, msd(2))
	snap := r.Snapshot()
	if len(snap.Requests) != 1 || !snap.Requests[0].Synthesized {
		t.Fatalf("want one synthesized trace, got %+v", snap.Requests)
	}
	if snap.Stats.Synthesized != 1 {
		t.Fatalf("stats: %+v", snap.Stats)
	}
}

func TestMoveFollowsMigration(t *testing.T) {
	r := New(Options{SampleRate: 1, Enabled: true})
	r.Bind(2)
	s0, s1 := r.Shard(0), r.Shard(1)
	s0.Admitted(3, "m", "", msd(100), 0, false, 1, msd(10))
	r.Move(0, 1, []uint64{3})
	if s0.Building() != 0 || s1.Building() != 1 {
		t.Fatalf("building after move: shard0=%d shard1=%d", s0.Building(), s1.Building())
	}
	s1.Responded(3, msd(20))
	s1.Completed(Outcome{ID: 3, Model: "m", Success: false, Reason: ReasonCancelled, ReasonStr: "cancelled", SLO: msd(100), Latency: msd(12)}, msd(21))
	snap := r.Snapshot()
	if len(snap.Requests) != 1 || snap.Requests[0].Shard != 1 {
		t.Fatalf("moved trace must finalize on shard 1: %+v", snap.Requests)
	}
}

func TestRingWrap(t *testing.T) {
	rg := newRing[int](3)
	for i := 1; i <= 5; i++ {
		rg.push(i)
	}
	got := rg.items()
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ring items %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring items %v, want %v", got, want)
		}
	}
	empty := newRing[int](0)
	empty.push(1)
	if len(empty.items()) != 0 {
		t.Fatalf("zero-cap ring must drop")
	}
}

func TestDisabledRecorderIsInert(t *testing.T) {
	r := New(Options{SampleRate: 1})
	r.Bind(1)
	s := r.Shard(0)
	record(s, 1, Outcome{ID: 1, Model: "m", Success: true, Batch: 1, SLO: msd(10), Latency: msd(1)}, false)
	if snap := r.Snapshot(); len(snap.Requests) != 0 || snap.Stats.Finalized != 0 {
		t.Fatalf("disabled recorder recorded: %+v", snap)
	}
	// Nil shard recorders (recorder never attached) must be callable.
	var nilShard *ShardRecorder
	nilShard.Admitted(1, "m", "", msd(10), 0, false, 1, 0)
	nilShard.Completed(Outcome{ID: 1}, 0)
	var nilRec *Recorder
	nilRec.RecordShed()
	if nilRec.Shard(0) != nil {
		t.Fatalf("nil recorder must hand out nil shards")
	}
}

func TestPerfettoExport(t *testing.T) {
	r := New(Options{SampleRate: 1, Enabled: true})
	r.Bind(1)
	s := r.Shard(0)
	record(s, 1, Outcome{ID: 1, Model: "m", Tenant: "t", Success: true, Batch: 2, SLO: msd(100), Latency: msd(9)}, false)
	record(s, 2, Outcome{ID: 2, Model: "m", Success: false, Reason: ReasonTimeout, ReasonStr: "timeout", SLO: msd(5), Latency: msd(5)}, false)
	snap := r.Snapshot()
	snap.VirtualNow = msd(100)
	snap.Speed = 1

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, snap); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var reqSpans, stageSpans, violations, execSpans int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Args["kind"] == "request":
			reqSpans++
		case e.Ph == "X" && e.Args["kind"] == "stage":
			stageSpans++
		case e.Ph == "X" && e.Args["kind"] == "exec":
			execSpans++
		case e.Ph == "i" && e.Args["kind"] == "violation":
			violations++
		}
	}
	if reqSpans != 2 || execSpans != 1 || violations != 1 || stageSpans == 0 {
		t.Fatalf("spans: req=%d stage=%d exec=%d violation=%d", reqSpans, stageSpans, execSpans, violations)
	}
	// Nesting: every stage span lies within its request's parent span.
	type span struct{ ts, end float64 }
	parents := make(map[int]span)
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Args["kind"] == "request" {
			parents[e.Tid] = span{e.Ts, e.Ts + e.Dur}
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Args["kind"] == "stage" {
			p, ok := parents[e.Tid]
			if !ok || e.Ts < p.ts-1e-9 || e.Ts+e.Dur > p.end+1e-9 {
				t.Fatalf("stage %q [%v,%v] not nested in parent %v", e.Name, e.Ts, e.Ts+e.Dur, p)
			}
		}
	}
}

func TestAggregateProvenanceAndPredErr(t *testing.T) {
	r := New(Options{SampleRate: 1, Enabled: true})
	r.Bind(2)
	record(r.Shard(0), 1, Outcome{ID: 1, Model: "a", Tenant: "t1", Success: false, Reason: ReasonCancelled, ReasonStr: "cancelled", SLO: msd(10), Latency: msd(10)}, false)
	record(r.Shard(1), 2, Outcome{ID: 2, Model: "b", Tenant: "t2", Success: false, Reason: ReasonWorkerFailed, ReasonStr: "worker-failed", SLO: msd(10), Latency: msd(4)}, false)
	record(r.Shard(0), 3, Outcome{ID: 3, Model: "a", Tenant: "t1", Success: true, Batch: 1, SLO: msd(100), Latency: msd(9)}, false)
	agg := r.Aggregate()
	if agg.Stats.Finalized != 3 || agg.Stats.Violations != 2 {
		t.Fatalf("stats: %+v", agg.Stats)
	}
	want := map[string]uint64{"queueing/a/t1": 1, "worker_loss/b/t2": 1}
	for _, p := range agg.Provenance {
		k := p.Cause + "/" + p.Model + "/" + p.Tenant
		if want[k] != p.Count {
			t.Fatalf("provenance %v unexpected (table %+v)", p, agg.Provenance)
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("provenance missing %v", want)
	}
	// Successful traced request recorded |actual−predicted| = 0ms.
	if agg.PredErr.Count() != 1 {
		t.Fatalf("pred-error count = %d", agg.PredErr.Count())
	}
	if agg.Stage[StageExec].Count() != 1 || agg.Stage[StageQueue].Count() != 3 {
		t.Fatalf("stage counts: exec=%d queue=%d", agg.Stage[StageExec].Count(), agg.Stage[StageQueue].Count())
	}
}
