package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Perfetto/Chrome trace-event export. The dump is the standard JSON
// object form — {"traceEvents": [...], "displayTimeUnit": "ms"} — that
// ui.perfetto.dev and chrome://tracing open directly:
//
//   - pid 1 holds the GPU executor tracks, one thread per (worker, GPU),
//     with INFER and LOAD complete ("X") spans.
//   - pid 1000+shard holds shard's request tracks, one thread per
//     retained request, with the request's end-to-end span and its
//     nested stage spans (admit/queue/load/exec/deliver).
//   - SLO violations additionally emit an instant ("i") event named
//     after the attributed cause.
//
// Timestamps are virtual microseconds from the engine epoch; the
// otherData block carries the wall↔virtual correlation (wall origin,
// speed) so a reader can place the trace in wall time.

const gpuPid = 1

// requestPid maps a shard to its Perfetto process ID.
func requestPid(shard int) int { return 1000 + shard }

func gpuTid(worker, gpu int) int { return worker*256 + gpu }

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WritePerfetto renders the snapshot as Chrome trace-event JSON.
func WritePerfetto(w io.Writer, snap *Snapshot) error {
	events := make([]map[string]any, 0, 8*len(snap.Requests)+len(snap.Execs)+len(snap.Loads)+16)
	meta := func(pid, tid int, kind, name string) {
		args := map[string]any{"name": name}
		ev := map[string]any{"name": kind, "ph": "M", "pid": pid, "args": args}
		if kind == "thread_name" {
			ev["tid"] = tid
		}
		events = append(events, ev)
	}

	meta(gpuPid, 0, "process_name", "gpu executors")
	seenGPU := make(map[int]bool)
	seenShard := make(map[int]bool)
	gpuThread := func(shard, worker, gpu int) {
		tid := gpuTid(worker, gpu)
		if !seenGPU[tid] {
			seenGPU[tid] = true
			meta(gpuPid, tid, "thread_name", fmt.Sprintf("W%d GPU%d", worker, gpu))
		}
		if !seenShard[shard] {
			seenShard[shard] = true
			meta(requestPid(shard), 0, "process_name", fmt.Sprintf("shard %d requests", shard))
		}
	}

	for _, e := range snap.Execs {
		gpuThread(e.Shard, e.Worker, e.GPU)
		events = append(events, map[string]any{
			"name": fmt.Sprintf("INFER %s b%d", e.Model, e.Batch),
			"ph":   "X", "ts": usec(e.Start), "dur": usec(e.End - e.Start),
			"pid": gpuPid, "tid": gpuTid(e.Worker, e.GPU),
			"args": map[string]any{"kind": "exec", "action": e.ActionID, "model": e.Model,
				"batch": e.Batch, "shard": e.Shard, "requests": e.Requests},
		})
	}
	for _, l := range snap.Loads {
		gpuThread(l.Shard, l.Worker, l.GPU)
		events = append(events, map[string]any{
			"name": "LOAD " + l.Model,
			"ph":   "X", "ts": usec(l.Start), "dur": usec(l.End - l.Start),
			"pid": gpuPid, "tid": gpuTid(l.Worker, l.GPU),
			"args": map[string]any{"kind": "load", "model": l.Model, "shard": l.Shard, "ok": l.OK},
		})
	}

	for i := range snap.Requests {
		appendRequestEvents(&events, &snap.Requests[i], seenShard, meta)
	}

	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"clockwork":         "flight-recorder",
			"virtual_now_us":    usec(snap.VirtualNow),
			"wall_origin":       snap.WallOrigin,
			"virtual_origin_us": usec(snap.VirtualOrigin),
			"speed":             snap.Speed,
			"sample_rate":       snap.SampleRate,
			"stats":             snap.Stats,
			"provenance":        snap.Provenance,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// appendRequestEvents emits one request's track: the end-to-end parent
// span, nested stage spans, and a violation instant when attributed.
func appendRequestEvents(events *[]map[string]any, t *RequestTrace, seenShard map[int]bool, meta func(pid, tid int, kind, name string)) {
	pid, tid := requestPid(t.Shard), int(t.ID)
	if !seenShard[t.Shard] {
		seenShard[t.Shard] = true
		meta(pid, 0, "process_name", fmt.Sprintf("shard %d requests", t.Shard))
	}
	start := t.ClientSend
	if start == 0 {
		start = t.AdmittedAt
	}
	end := t.DoneAt
	if end < start {
		end = start
	}
	name := fmt.Sprintf("req %d %s", t.ID, t.Model)
	args := map[string]any{
		"kind": "request", "id": t.ID, "model": t.Model, "tenant": t.Tenant,
		"shard": t.Shard, "slo_ms": ms(t.SLO), "latency_ms": ms(t.Latency),
		"success": t.Success, "reason": t.ReasonStr,
		"violation": t.Violation, "cause": t.Cause.String(),
		"cold_start": t.ColdStart, "sampled": t.Sampled, "queue_depth": t.QueueDepth,
		"worker": t.Worker, "gpu": t.GPU, "batch": t.Batch, "action": t.ActionID,
		"pred_exec_ms": ms(t.PredExec), "actual_exec_ms": ms(t.ExecEnd - t.ExecStart),
	}
	if t.Synthesized {
		args["synthesized"] = true
	}
	*events = append(*events, map[string]any{
		"name": name, "ph": "X", "ts": usec(start), "dur": usec(end - start),
		"pid": pid, "tid": tid, "args": args,
	})
	stage := func(st Stage, from, to time.Duration) {
		if to <= from || from == 0 {
			return
		}
		*events = append(*events, map[string]any{
			"name": st.String(), "ph": "X", "ts": usec(from), "dur": usec(to - from),
			"pid": pid, "tid": tid, "args": map[string]any{"kind": "stage", "stage": st.String(), "id": t.ID},
		})
	}
	if t.ClientSend > 0 {
		stage(StageAdmit, t.ClientSend, t.AdmittedAt)
	}
	switch {
	case t.ExecStart > 0:
		stage(StageQueue, t.AdmittedAt, t.ExecStart)
	case t.RespondedAt > 0:
		stage(StageQueue, t.AdmittedAt, t.RespondedAt)
	}
	stage(StageLoad, t.LoadStart, t.LoadEnd)
	stage(StageExec, t.ExecStart, t.ExecEnd)
	switch {
	case t.ExecEnd > 0:
		stage(StageDeliver, t.ExecEnd, t.DoneAt)
	case t.RespondedAt > 0:
		stage(StageDeliver, t.RespondedAt, t.DoneAt)
	}
	if t.Violation {
		*events = append(*events, map[string]any{
			"name": "violation:" + t.Cause.String(), "ph": "i", "ts": usec(end),
			"pid": pid, "tid": tid, "s": "t",
			"args": map[string]any{"kind": "violation", "id": t.ID, "cause": t.Cause.String()},
		})
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
