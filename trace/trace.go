// Package trace is Clockwork's deterministic flight recorder: an
// engine-side span recorder that captures every sampled request's full
// lifecycle with virtual timestamps — admitted, scheduled (chosen GPU,
// batch, predicted execution), cold-start load, execution start/end
// (predicted vs actual), network hops, final outcome — into per-shard
// bounded ring buffers.
//
// Three properties make it a *flight recorder* rather than a logger:
//
//   - Deterministic sampling. The keep/drop decision is a pure function
//     of (request ID, sample rate) — a splitmix64 hash of the ID against
//     a rate threshold — so the same requests are sampled across
//     -multicore runs and journal replays, and toggling tracing can
//     never perturb scheduling (hooks only append to recorder state;
//     they never schedule events, read RNG streams, or mint IDs).
//   - Violation retention. The last N SLO-violating traces are always
//     retained regardless of the sample rate, so a postmortem has the
//     requests that matter even at rate 0.
//   - Provenance. Every violation, cancel, and shed is attributed to a
//     cause — queueing, cold start, mispredict, admission shed, worker
//     loss — and counted per model and per tenant.
//
// The recorder is attached before any engine runs (System.
// AttachFlightRecorder) and read only under a stopped-world view (a
// Live.Do barrier in live mode, quiescence in simulation), which is
// what lets the per-shard state go lock-free on the engine hot path.
package trace

import (
	"fmt"
	"time"
)

// Cause attributes an SLO violation (or outright failure) to the stage
// of the serving pipeline that spent the budget.
type Cause uint8

// The provenance taxonomy. Every violation/cancel/shed maps to exactly
// one cause; CauseNone marks successful in-SLO requests.
const (
	// CauseNone: the request succeeded within its SLO.
	CauseNone Cause = iota
	// CauseQueueing: the request waited behind other work (warm model,
	// accurate predictions — capacity, not mechanism, was the problem).
	CauseQueueing
	// CauseColdStart: the model was not GPU-resident on arrival and the
	// weight transfer consumed the budget.
	CauseColdStart
	// CauseMispredict: the controller's timing prediction was wrong —
	// the worker rejected the action's window, the deadline passed in
	// flight, or actual execution overran the predicted duration.
	CauseMispredict
	// CauseAdmissionShed: the serving layer shed the request before it
	// reached the control plane (admission overload control).
	CauseAdmissionShed
	// CauseWorkerLoss: the worker executing the request failed.
	CauseWorkerLoss
)

// String implements fmt.Stringer with stable snake_case labels (these
// are Prometheus label values and Perfetto args).
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseQueueing:
		return "queueing"
	case CauseColdStart:
		return "cold_start"
	case CauseMispredict:
		return "mispredict"
	case CauseAdmissionShed:
		return "admission_shed"
	case CauseWorkerLoss:
		return "worker_loss"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Causes lists the taxonomy in declaration order (metrics emission
// iterates it for deterministic output).
var Causes = []Cause{CauseNone, CauseQueueing, CauseColdStart, CauseMispredict, CauseAdmissionShed, CauseWorkerLoss}

// Failure-reason codes, mirroring internal/core's Reason constants so
// the recorder can classify outcomes without importing the engine
// (internal/core imports this package, not the reverse). A compile-time
// assertion in internal/core pins the two enums together.
const (
	ReasonNone uint8 = iota
	ReasonCancelled
	ReasonRejected
	ReasonTimeout
	ReasonWorkerFailed
	ReasonUnregistered
)

// Stage indexes the latency decomposition of one request.
type Stage uint8

// The stages every request's end-to-end latency decomposes into:
// admit + queue + exec + deliver spans the client-observed latency
// exactly; load is the overlapping cold-start weight transfer (a
// sub-interval of queue, reported separately).
const (
	// StageAdmit: client send → controller admission (input transfer +
	// client→controller network).
	StageAdmit Stage = iota
	// StageQueue: admission → execution start (scheduler queueing,
	// including any cold-start load wait).
	StageQueue
	// StageLoad: the cold-start weight transfer overlapping the queue
	// wait (cold requests only; a sub-interval of StageQueue).
	StageLoad
	// StageExec: on-GPU execution.
	StageExec
	// StageDeliver: execution end → client receipt (output transfer +
	// result and response network hops).
	StageDeliver

	numStages
)

// String implements fmt.Stringer with stable metric label values.
func (s Stage) String() string {
	switch s {
	case StageAdmit:
		return "admit"
	case StageQueue:
		return "queue"
	case StageLoad:
		return "load"
	case StageExec:
		return "exec"
	case StageDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Stages lists the decomposition in pipeline order.
var Stages = []Stage{StageAdmit, StageQueue, StageLoad, StageExec, StageDeliver}

// RequestTrace is one request's recorded lifecycle. All instants are
// virtual-clock offsets from the engine epoch; the zero value means the
// event never happened (e.g. ExecStart stays 0 for a request cancelled
// in queue).
type RequestTrace struct {
	ID     uint64 `json:"id"`
	Model  string `json:"model"`
	Tenant string `json:"tenant,omitempty"`
	Shard  int    `json:"shard"`

	SLO      time.Duration `json:"slo"`
	Priority int           `json:"priority,omitempty"`

	// Sampled reports the head-based sampling decision for this request
	// (a pure function of ID and sample rate). Unsampled violations
	// still appear in dumps via the violation ring.
	Sampled bool `json:"sampled"`
	// ColdStart reports whether the model had no GPU-resident replica
	// when the request arrived.
	ColdStart bool `json:"cold_start,omitempty"`
	// QueueDepth is the model's queue length immediately after this
	// request was enqueued (its position, 1-based).
	QueueDepth int `json:"queue_depth,omitempty"`

	// ---- lifecycle instants (virtual offsets; 0 = not reached) ----

	// ClientSend is the instant the client handed the request to its
	// network link.
	ClientSend time.Duration `json:"client_send"`
	// AdmittedAt is the controller-side admission instant.
	AdmittedAt time.Duration `json:"admitted"`
	// SchedAt is the instant the scheduler dispatched the INFER action
	// carrying this request.
	SchedAt time.Duration `json:"sched_at,omitempty"`
	// PredStart/PredExec are the scheduler's predictions at dispatch:
	// the action window's opening instant and the expected execution
	// duration.
	PredStart time.Duration `json:"pred_start,omitempty"`
	PredExec  time.Duration `json:"pred_exec,omitempty"`
	// LoadStart/LoadEnd bound the cold-start weight transfer attributed
	// to this request (cold requests whose model loaded while they
	// queued; zero otherwise).
	LoadStart time.Duration `json:"load_start,omitempty"`
	LoadEnd   time.Duration `json:"load_end,omitempty"`
	// ExecStart/ExecEnd bound the measured on-GPU execution.
	ExecStart time.Duration `json:"exec_start,omitempty"`
	ExecEnd   time.Duration `json:"exec_end,omitempty"`
	// RespondedAt is the controller-side response instant.
	RespondedAt time.Duration `json:"responded,omitempty"`
	// DoneAt is the client-side completion instant.
	DoneAt time.Duration `json:"done"`

	// ---- scheduler decision ----

	ActionID uint64 `json:"action,omitempty"`
	Worker   int    `json:"worker,omitempty"`
	GPU      int    `json:"gpu,omitempty"`
	Batch    int    `json:"batch,omitempty"`

	// ---- outcome ----

	// Latency is the client-observed end-to-end latency.
	Latency time.Duration `json:"latency"`
	Success bool          `json:"success"`
	// Reason is the failure-reason code (Reason* constants); ReasonStr
	// its stable string form ("" on success).
	Reason    uint8  `json:"reason,omitempty"`
	ReasonStr string `json:"reason_str,omitempty"`
	// Violation reports failure OR success over SLO.
	Violation bool `json:"violation,omitempty"`
	// Cause is the provenance attribution (CauseNone unless Violation).
	Cause Cause `json:"cause,omitempty"`
	// Synthesized marks a trace reconstructed at completion time because
	// the admission-side events were not captured (e.g. the model was
	// unregistered, or tracing was enabled mid-flight).
	Synthesized bool `json:"synthesized,omitempty"`
}

// StageDur returns the trace's duration in stage s, and whether the
// stage is defined for this trace (e.g. StageExec is undefined for a
// request cancelled in queue).
func (t *RequestTrace) StageDur(s Stage) (time.Duration, bool) {
	switch s {
	case StageAdmit:
		if t.AdmittedAt > 0 && t.ClientSend > 0 {
			return t.AdmittedAt - t.ClientSend, true
		}
	case StageQueue:
		if t.AdmittedAt > 0 {
			if t.ExecStart > 0 {
				return t.ExecStart - t.AdmittedAt, true
			}
			// Never executed: the whole controller residence is queueing.
			if t.RespondedAt > 0 {
				return t.RespondedAt - t.AdmittedAt, true
			}
		}
	case StageLoad:
		if t.LoadEnd > t.LoadStart {
			return t.LoadEnd - t.LoadStart, true
		}
	case StageExec:
		if t.ExecEnd > 0 && t.ExecStart > 0 {
			return t.ExecEnd - t.ExecStart, true
		}
	case StageDeliver:
		if t.DoneAt > 0 {
			if t.ExecEnd > 0 {
				return t.DoneAt - t.ExecEnd, true
			}
			if t.RespondedAt > 0 {
				return t.DoneAt - t.RespondedAt, true
			}
		}
	}
	return 0, false
}

// attributeCause classifies the trace per the provenance taxonomy.
// Called at finalization, after outcome and timeline are complete.
func (t *RequestTrace) attributeCause() Cause {
	if !t.Violation {
		return CauseNone
	}
	if !t.Success {
		switch t.Reason {
		case ReasonWorkerFailed:
			return CauseWorkerLoss
		case ReasonRejected, ReasonTimeout:
			// The worker refused the predicted window, or the deadline
			// passed with the action in flight — prediction error.
			return CauseMispredict
		default: // cancelled in advance, or unregistered mid-transit
			if t.ColdStart {
				return CauseColdStart
			}
			return CauseQueueing
		}
	}
	// Succeeded but over SLO: find the stage that ate the budget.
	if t.ColdStart {
		return CauseColdStart
	}
	if actual := t.ExecEnd - t.ExecStart; t.PredExec > 0 && t.ExecEnd > 0 {
		slack := t.PredExec / 2
		if slack < time.Millisecond {
			slack = time.Millisecond
		}
		if actual > t.PredExec+slack {
			return CauseMispredict
		}
	}
	return CauseQueueing
}

// ExecSpan is one successful INFER action's on-GPU execution, recorded
// for the Perfetto per-GPU tracks.
type ExecSpan struct {
	ActionID uint64        `json:"action"`
	Model    string        `json:"model"`
	Shard    int           `json:"shard"`
	Worker   int           `json:"worker"`
	GPU      int           `json:"gpu"`
	Batch    int           `json:"batch"`
	Start    time.Duration `json:"start"`
	End      time.Duration `json:"end"`
	Requests []uint64      `json:"requests,omitempty"`
}

// LoadSpan is one completed LOAD action's weight transfer.
type LoadSpan struct {
	Model  string        `json:"model"`
	Shard  int           `json:"shard"`
	Worker int           `json:"worker"`
	GPU    int           `json:"gpu"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	OK     bool          `json:"ok"`
}

// splitmix64 is the sampling hash: a full-period mixer over the request
// ID. Chosen for determinism and statelessness — the decision for a
// given (ID, rate) is identical in every shard layout, live run, and
// replay.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
