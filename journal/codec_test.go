package journal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"clockwork"
)

// sampleState builds a representative State covering every field class:
// a non-default config, learned profiles, and mixed worker lifecycles.
func sampleState() *State {
	return &State{
		Config: clockwork.Config{
			Workers:       3,
			GPUsPerWorker: 2,
			Shards:        2,
			SkewBound:     5 * time.Millisecond,
			Policy:        clockwork.PolicyClockwork,
			Seed:          99,
		},
		Speed:         250,
		MaxInFlight:   64,
		PriorRequests: 1234,
		PriorAcked:    1200,
		Models: []ModelState{
			{Instance: "resnet", Zoo: "resnet50_v1b", Shard: 0},
			{Instance: "dense#1", Zoo: "densenet161", Shard: 1, Profile: []clockwork.ProfileEntry{
				{Op: "infer", Batch: 4, Window: []time.Duration{time.Millisecond, 2 * time.Millisecond}},
				{Op: "load", Batch: 1, Window: []time.Duration{8 * time.Millisecond}},
			}},
		},
		Workers: []uint8{workerActive, workerDraining, workerFailed},
		Step:    42,
		VT:      17 * time.Second,
	}
}

// sampleRecords covers every record type with non-default field values.
func sampleRecords() []Record {
	return []Record{
		{Type: recGenesis, Seq: 0, Step: 0, VT: 0, State: sampleState()},
		{Type: recInfer, Seq: 1, Step: 7, VT: 3 * time.Millisecond, Shard: 1, Corr: 11,
			Model: "resnet", SLO: 250 * time.Millisecond, Priority: -2, Tenant: "acme", MaxBatch: 8},
		{Type: recAck, Seq: 2, Step: 19, VT: 9 * time.Millisecond, Corr: 11, RequestID: 5,
			Success: true, Reason: 0, Latency: 6 * time.Millisecond, Batch: 4, ColdStart: true},
		{Type: recAck, Seq: 3, Step: 20, VT: 10 * time.Millisecond, Corr: 12, RequestID: 6,
			Success: false, Reason: 3, Latency: -1},
		{Type: recRegister, Seq: 4, Step: 21, VT: 11 * time.Millisecond,
			Instance: "dense", Zoo: "densenet161", Copies: 4},
		{Type: recAddWorker, Seq: 5, Step: 22, VT: 12 * time.Millisecond},
		{Type: recDrainWorker, Seq: 6, Step: 23, VT: 13 * time.Millisecond, WorkerID: 2},
		{Type: recFailWorker, Seq: 7, Step: 24, VT: 14 * time.Millisecond, WorkerID: 1},
		{Type: recRebalance, Seq: 8, Step: 25, VT: 15 * time.Millisecond},
		{Type: recNoop, Seq: 9, Step: 26, VT: 16 * time.Millisecond},
		{Type: recSnapshot, Seq: 10, Step: 27, VT: 17 * time.Millisecond},
		{Type: recAutoscale, Seq: 11, Step: 28, VT: 18 * time.Millisecond,
			Window: 48, AddWorkers: 1, WorkerID: -1, Rebal: true},
		{Type: recAutoscale, Seq: 12, Step: 29, VT: 19 * time.Millisecond,
			Window: 8, WorkerID: 2},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		payload := appendRecord(nil, &want)
		var got Record
		if err := decodeRecord(payload, &got); err != nil {
			t.Fatalf("type %d: decode: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("type %d: round trip mismatch:\n got  %+v\n want %+v", want.Type, got, want)
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var stream []byte
	for i := range recs {
		stream = appendFrame(stream, appendRecord(nil, &recs[i]))
	}
	off := 0
	for i := range recs {
		payload, next, err := readFrame(stream, off)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got Record
		if err := decodeRecord(payload, &got); err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if got.Seq != recs[i].Seq || got.Type != recs[i].Type {
			t.Fatalf("frame %d: got (type %d, seq %d), want (type %d, seq %d)",
				i, got.Type, got.Seq, recs[i].Type, recs[i].Seq)
		}
		off = next
	}
	if off != len(stream) {
		t.Fatalf("decoded %d of %d bytes", off, len(stream))
	}
}

// TestTornFrame checks that truncating a frame stream at EVERY byte
// offset either yields a clean shorter prefix or ErrTornFrame — never a
// corruption error, never a panic, never a record that was not written.
func TestTornFrame(t *testing.T) {
	recs := sampleRecords()
	var stream []byte
	frameEnds := []int{}
	for i := range recs {
		stream = appendFrame(stream, appendRecord(nil, &recs[i]))
		frameEnds = append(frameEnds, len(stream))
	}
	for cut := 0; cut < len(stream); cut++ {
		data := stream[:cut]
		off, decoded := 0, 0
		for off < len(data) {
			payload, next, err := readFrame(data, off)
			if err != nil {
				if !errors.Is(err, ErrTornFrame) {
					t.Fatalf("cut %d: unexpected error class %v", cut, err)
				}
				break
			}
			var r Record
			if err := decodeRecord(payload, &r); err != nil {
				t.Fatalf("cut %d: intact frame failed decode: %v", cut, err)
			}
			decoded++
			off = next
		}
		// The decodable prefix must be exactly the frames wholly inside
		// the cut.
		whole := 0
		for _, end := range frameEnds {
			if end <= cut {
				whole++
			}
		}
		if decoded != whole {
			t.Fatalf("cut %d: decoded %d frames, want %d", cut, decoded, whole)
		}
	}
}

// TestCorruptFrame flips one byte inside a frame's payload and checks
// the checksum rejects it with ErrCorruptFrame.
func TestCorruptFrame(t *testing.T) {
	rec := sampleRecords()[1]
	stream := appendFrame(nil, appendRecord(nil, &rec))
	for i := frameHeaderSize; i < len(stream); i++ {
		data := bytes.Clone(stream)
		data[i] ^= 0x40
		_, _, err := readFrame(data, 0)
		if err == nil || !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at %d: got %v, want ErrCorruptFrame", i, err)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	rec := sampleRecords()[9] // recNoop: empty body
	payload := appendRecord(nil, &rec)
	payload = append(payload, 0xAB)
	var got Record
	if err := decodeRecord(payload, &got); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing byte: got %v, want ErrCorruptFrame", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [frameHeaderSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0xFF
	_, _, err := readFrame(hdr[:], 0)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversized length: got %v, want ErrCorruptFrame", err)
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		in    string
		epoch int
		n     uint64
		kind  string
		ok    bool
	}{
		{"epoch-000002-seg-000000000100.wal", 2, 100, "seg", true},
		{"epoch-000000-snap-000000000042.snap", 0, 42, "snap", true},
		{"epoch-000000-snap-000000000042.snap.tmp", 0, 0, "", false},
		{"epoch-xx-seg-000000000000.wal", 0, 0, "", false},
		{"seg-000000000000.wal", 0, 0, "", false},
		{"epoch-000001-seg-abc.wal", 0, 0, "", false},
	}
	for _, c := range cases {
		e, n, k, ok := parseName(c.in)
		if e != c.epoch || n != c.n || k != c.kind || ok != c.ok {
			t.Errorf("parseName(%q) = (%d, %d, %q, %v), want (%d, %d, %q, %v)",
				c.in, e, n, k, ok, c.epoch, c.n, c.kind, c.ok)
		}
	}
}
