// Package journal is the durable control plane: a snapshot of
// control-plane state plus an append-only log of every externally-
// sourced injection, giving a live clockwork daemon crash recovery and
// whole-system deterministic record/replay.
//
// The design leans on the serving plane's single determinism boundary
// (see ARCHITECTURE.md, "Serving plane"): everything below Live.Inject
// is the same deterministic event machinery the simulations run, so a
// single-engine live system is a pure function of (seed, the sequence
// of injected operations, each operation's virtual instant and engine
// step position). The Recorder captures exactly that triple for every
// injection the serve layer performs — inference submissions,
// registrations, worker ops, and even read-only scrapes (as no-op
// records, because reads consume engine steps too and replay must
// consume them identically) — plus an acknowledgement record per
// completed request, appended on the engine turn before the response
// can reach the client.
//
// Three consumers read the log back:
//
//   - Recovery (Load + Rebuild): restore the latest snapshot — or the
//     genesis state — and re-apply the control-plane mutations recorded
//     after it, so a daemon bounce loses no registered model and no
//     acknowledged request.
//   - Deterministic replay (ReplayEpoch, cmd/clockwork-replay): rebuild
//     the genesis system and re-execute every recorded injection at its
//     recorded step and instant through the simulator. The replayed
//     completion stream hashes identically to the recorded one, turning
//     any production incident into a reproducible regression test.
//   - Observability (Recorder.Status): segment/byte/fsync-lag gauges
//     for the admin plane and /metrics.
//
// On disk a journal directory holds numbered epochs — one per daemon
// generation, because recovery rebuilds a fresh engine whose step
// counter restarts, which resets the replay alignment. Each epoch is a
// chain of segmented write-ahead files of length-prefixed CRC32C
// frames (rotated at a size bound, prunable back to the latest
// snapshot) plus snapshot files. Every append reaches the kernel in
// one write(2), so a SIGKILL — the crash mode a process can cause —
// never tears a frame; the configurable fsync policy only governs
// machine-crash durability, and the reader truncates a torn tail back
// to the last whole frame either way.
package journal
