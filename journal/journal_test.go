// Package journal_test exercises the durable control plane end to end:
// a live serve.Server records a journal, then the journal is read back
// for deterministic replay (hash match) and crash recovery (state
// rebuild). It lives in an external test package so it can import
// serve, which itself imports journal.
package journal_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clockwork"
	"clockwork/journal"
	"clockwork/serve"
	"clockwork/trace"
)

// jserver bundles a journaled live server and its front doors.
type jserver struct {
	dir    string
	sys    *clockwork.System
	rec    *journal.Recorder
	srv    *serve.Server
	ts     *httptest.Server
	client *serve.Client
}

// startJournaled boots a fresh system recording to dir behind an
// httptest listener. Fsync defaults to never: these tests exercise
// record/replay semantics, not storage durability.
func startJournaled(t *testing.T, dir string, cfg clockwork.Config, jopts journal.Options) *jserver {
	t.Helper()
	if jopts.Fsync == journal.FsyncInterval && jopts.FsyncEvery == 0 {
		jopts.Fsync = journal.FsyncNever
	}
	if jopts.Speed == 0 {
		jopts.Speed = 2000
	}
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec, err := journal.Create(dir, sys, cfg, jopts)
	if err != nil {
		t.Fatalf("journal.Create: %v", err)
	}
	srv := serve.New(sys, serve.Options{Speed: jopts.Speed, MaxInFlight: jopts.MaxInFlight, Journal: rec})
	ts := httptest.NewServer(srv.Handler())
	js := &jserver{dir: dir, sys: sys, rec: rec, srv: srv, ts: ts, client: serve.NewClient(ts.URL, nil)}
	t.Cleanup(func() { js.shutdown(t) })
	return js
}

// shutdown closes the listener and drains; idempotent, and it closes
// the recorder (the server owns its lifecycle).
func (js *jserver) shutdown(t *testing.T) {
	t.Helper()
	js.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := js.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// postSnapshot drives POST /v1/admin/snapshot and decodes the reply.
func (js *jserver) postSnapshot(t *testing.T) serve.SnapshotResponse {
	t.Helper()
	resp, err := http.Post(js.ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatalf("POST snapshot: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST snapshot: status %d: %s", resp.StatusCode, body)
	}
	var sr serve.SnapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("snapshot response: %v", err)
	}
	return sr
}

// driveMixedTraffic submits n inferences (some concurrent), a control-
// plane mutation per kind, and a few read scrapes — the full record
// vocabulary.
func driveMixedTraffic(t *testing.T, js *jserver, n int) {
	t.Helper()
	ctx := context.Background()
	if err := js.client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil && !errors.Is(err, clockwork.ErrDuplicateModel) {
		t.Fatalf("RegisterModel: %v", err)
	}
	if _, err := js.client.RegisterCopies(ctx, "dense", "densenet161", 2); err != nil && !errors.Is(err, clockwork.ErrDuplicateModel) {
		t.Fatalf("RegisterCopies: %v", err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := "resnet"
			if i%3 == 0 {
				model = "dense#" + fmt.Sprint(i%2)
			}
			if _, err := js.client.Infer(ctx, clockwork.Request{
				Model: model, SLO: 500 * time.Millisecond, Tenant: "t" + fmt.Sprint(i%4),
			}); err != nil {
				t.Errorf("Infer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// A submission that fails at intake (unknown model) records an
	// infer with no ack — replay must tolerate it.
	if _, err := js.client.Infer(ctx, clockwork.Request{Model: "nope", SLO: time.Second}); err == nil {
		t.Fatal("Infer on unknown model should fail")
	}

	id, err := js.client.AddWorker(ctx)
	if err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	if err := js.client.DrainWorker(ctx, id); err != nil {
		t.Fatalf("DrainWorker: %v", err)
	}
	if _, err := js.client.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if _, err := js.client.Stats(ctx); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if _, err := js.client.Models(ctx); err != nil {
		t.Fatalf("Models: %v", err)
	}
}

// TestRecordReplayHTTP is the headline acceptance check: a live run
// over HTTP — concurrent inference, registrations, worker ops, scrapes
// and a mid-run snapshot — replays bit-identically from its journal.
func TestRecordReplayHTTP(t *testing.T) {
	dir := t.TempDir()
	js := startJournaled(t, dir,
		clockwork.Config{Workers: 2, GPUsPerWorker: 1, Shards: 2, Seed: 7},
		journal.Options{MaxInFlight: 64})

	driveMixedTraffic(t, js, 40)
	sr := js.postSnapshot(t)
	if sr.Models != 3 || sr.Seq == 0 || sr.Path == "" {
		t.Fatalf("snapshot response: %+v", sr)
	}
	driveMixedTraffic(t, js, 20) // more traffic after the snapshot (duplicate registrations fail; fine)
	js.shutdown(t)

	ep, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ep.Epoch != 0 || ep.Truncated || ep.Genesis == nil {
		t.Fatalf("epoch shape: epoch=%d truncated=%v genesis=%v (%s)",
			ep.Epoch, ep.Truncated, ep.Genesis != nil, ep.TruncatedNote)
	}
	if ep.Snapshot == nil || ep.SnapshotSeq != sr.Seq {
		t.Fatalf("snapshot: got seq %d (present=%v), want %d", ep.SnapshotSeq, ep.Snapshot != nil, sr.Seq)
	}

	res, err := journal.ReplayEpoch(ep)
	if err != nil {
		t.Fatalf("ReplayEpoch: %v", err)
	}
	if res.RecordedAcks < 60 {
		t.Fatalf("recorded only %d acks, want >= 60", res.RecordedAcks)
	}
	if !res.Match {
		t.Fatalf("replay mismatch:\n recorded %s (%d acks)\n replayed %s (%d acks)",
			res.RecordedHash, res.RecordedAcks, res.ReplayedHash, res.ReplayedAcks)
	}
	if res.Requests < 60 {
		t.Fatalf("replayed only %d requests", res.Requests)
	}
}

// TestRecordReplayStream drives the binary stream transport — batched
// submission included, so several recInfer records share one engine
// step — and checks the replay regroups and matches.
func TestRecordReplayStream(t *testing.T) {
	dir := t.TempDir()
	cfg := clockwork.Config{Workers: 2, GPUsPerWorker: 1, Seed: 11}
	sys, err := clockwork.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec, err := journal.Create(dir, sys, cfg, journal.Options{Fsync: journal.FsyncNever, Speed: 2000})
	if err != nil {
		t.Fatalf("journal.Create: %v", err)
	}
	srv := serve.New(sys, serve.Options{Speed: 2000, Journal: rec})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(hln) }()
	streamDone := make(chan error, 1)
	go func() { streamDone <- srv.ServeStream(sln) }()
	client := serve.NewClient(hln.Addr().String(), nil)
	ctx := context.Background()
	if err := client.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if err := client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	sc, err := serve.DialStream(sln.Addr().String(), serve.StreamOptions{Conns: 2})
	if err != nil {
		t.Fatalf("DialStream: %v", err)
	}

	if _, err := sc.Models(ctx); err != nil {
		t.Fatalf("stream Models: %v", err)
	}
	// Two coalesced batches plus interleaved singles.
	for round := 0; round < 2; round++ {
		reqs := make([]clockwork.Request, 24)
		for i := range reqs {
			reqs[i] = clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}
		}
		outs, err := sc.SubmitBatch(ctx, reqs)
		if err != nil {
			t.Fatalf("SubmitBatch: %v", err)
		}
		if len(outs) != len(reqs) {
			t.Fatalf("SubmitBatch returned %d outcomes, want %d", len(outs), len(reqs))
		}
		for i := 0; i < 4; i++ {
			if _, err := sc.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
				t.Fatalf("stream Infer: %v", err)
			}
		}
	}
	sc.Close()
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-streamDone; err != nil {
		t.Fatalf("ServeStream: %v", err)
	}

	ep, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := journal.ReplayEpoch(ep)
	if err != nil {
		t.Fatalf("ReplayEpoch: %v", err)
	}
	if res.RecordedAcks != 56 || !res.Match {
		t.Fatalf("stream replay: acks=%d match=%v\n recorded %s\n replayed %s",
			res.RecordedAcks, res.Match, res.RecordedHash, res.ReplayedHash)
	}
}

// TestRecoveryAcrossEpochs is the restart path clockworkd takes:
// rebuild from the journal, serve a new epoch on the rebuilt system,
// and check both accounting carry-over and the new epoch's replay.
func TestRecoveryAcrossEpochs(t *testing.T) {
	dir := t.TempDir()
	cfg := clockwork.Config{Workers: 2, GPUsPerWorker: 1, Shards: 2, Seed: 5}
	js := startJournaled(t, dir, cfg, journal.Options{})
	driveMixedTraffic(t, js, 30)
	js.shutdown(t)

	ep, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sys2, carry, rep, err := ep.Rebuild()
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if rep.Models != 3 {
		t.Fatalf("recovered %d models, want 3", rep.Models)
	}
	if rep.Workers != 3 { // 2 configured + 1 added
		t.Fatalf("recovered %d workers, want 3", rep.Workers)
	}
	// The unknown-model submission is the one recorded infer without an
	// ack — every client that got a 200 is accounted.
	if rep.Unacked != 1 {
		t.Fatalf("clean shutdown left %d unacked requests, want 1 (the failed submission)", rep.Unacked)
	}
	if rep.EpochAcked != 30 || rep.TotalAcked != 30 {
		t.Fatalf("acked accounting: epoch=%d total=%d, want 30/30", rep.EpochAcked, rep.TotalAcked)
	}
	models := sys2.Models()
	if len(models) != 3 || models[0] != "resnet" {
		t.Fatalf("rebuilt registry = %v", models)
	}
	if st, err := sys2.WorkerStateOf(2); err != nil || st != clockwork.WorkerDraining {
		t.Fatalf("worker 2 state = %v, %v; want draining", st, err)
	}

	// Epoch 1: serve on the rebuilt system, exactly as clockworkd does.
	rec2, err := journal.Create(dir, sys2, carry.Config, journal.Options{
		Fsync: journal.FsyncNever, Speed: carry.Speed, MaxInFlight: carry.MaxInFlight,
		PriorRequests: carry.PriorRequests, PriorAcked: carry.PriorAcked,
	})
	if err != nil {
		t.Fatalf("Create epoch 1: %v", err)
	}
	if rec2.Epoch() != 1 {
		t.Fatalf("second epoch = %d, want 1", rec2.Epoch())
	}
	srv2 := serve.New(sys2, serve.Options{Speed: carry.Speed, Journal: rec2})
	ts2 := httptest.NewServer(srv2.Handler())
	client2 := serve.NewClient(ts2.URL, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if res, err := client2.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil || !res.Success {
			t.Fatalf("epoch-1 Infer: %+v, %v", res, err)
		}
	}
	ts2.Close()
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown epoch 1: %v", err)
	}

	ep1, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load epoch 1: %v", err)
	}
	if ep1.Epoch != 1 {
		t.Fatalf("latest epoch = %d, want 1", ep1.Epoch)
	}
	res, err := journal.ReplayEpoch(ep1)
	if err != nil {
		t.Fatalf("ReplayEpoch(1): %v", err)
	}
	if !res.Match || res.RecordedAcks != 10 {
		t.Fatalf("epoch-1 replay: match=%v acks=%d", res.Match, res.RecordedAcks)
	}
	_, _, rep1, err := ep1.Rebuild()
	if err != nil {
		t.Fatalf("Rebuild epoch 1: %v", err)
	}
	if rep1.TotalAcked != 40 || rep1.TotalRequests < 40 {
		t.Fatalf("lifetime accounting: %d acked / %d requests, want 40 acked", rep1.TotalAcked, rep1.TotalRequests)
	}
}

// TestTornTailRecovery truncates a recorded segment at every interesting
// offset: Load must never fail past the genesis frame, must never
// invent records, and must keep the ack-implies-infer prefix property
// (an ack's submission record is always journaled before it).
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	js := startJournaled(t, dir, clockwork.Config{Workers: 1, GPUsPerWorker: 1, Seed: 3}, journal.Options{})
	ctx := context.Background()
	if err := js.client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := js.client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
			t.Fatalf("Infer: %v", err)
		}
	}
	js.shutdown(t)

	segs, err := filepath.Glob(filepath.Join(dir, "epoch-000000-seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v; want exactly one", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Walk the frame headers to learn every frame boundary: a cut at a
	// boundary is a clean shorter log, anywhere else is a torn tail.
	boundary := map[int]bool{0: true}
	for off := 0; off < len(data); {
		off += int(binary.LittleEndian.Uint32(data[off:off+4])) + 8
		boundary[off] = true
	}
	genesisEnd := int(binary.LittleEndian.Uint32(data[0:4])) + 8
	full, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load full: %v", err)
	}
	if full.Truncated {
		t.Fatalf("clean journal reports truncation: %s", full.TruncatedNote)
	}

	checkPrefix := func(t *testing.T, cut int) {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatalf("write cut copy: %v", err)
		}
		ep, err := journal.LoadEpoch(cdir, 0)
		if err != nil {
			t.Fatalf("cut %d: Load: %v", cut, err)
		}
		if wantTrunc := !boundary[cut]; ep.Truncated != wantTrunc {
			t.Fatalf("cut %d: Truncated = %v, want %v (%s)", cut, ep.Truncated, wantTrunc, ep.TruncatedNote)
		}
		// Ack ⊆ infer: a flushed ack implies its infer was flushed
		// first, at any cut point.
		// (The decoded chain is a strict prefix of the full chain.)
		infers := map[uint64]bool{}
		for _, rec := range replayableCorrs(ep) {
			infers[rec] = true
		}
		for _, corr := range ackedCorrs(ep) {
			if !infers[corr] {
				t.Fatalf("cut %d: ack for corr %d without its infer", cut, corr)
			}
		}
		if _, _, _, err := ep.Rebuild(); err != nil {
			t.Fatalf("cut %d: Rebuild: %v", cut, err)
		}
		if res, err := journal.ReplayEpoch(ep); err != nil {
			t.Fatalf("cut %d: ReplayEpoch: %v", cut, err)
		} else if !res.Match {
			t.Fatalf("cut %d: truncated prefix did not replay: %s vs %s", cut, res.RecordedHash, res.ReplayedHash)
		}
	}
	// Every frame boundary region near the tail plus a spread of
	// mid-frame cuts across the body.
	for cut := genesisEnd; cut <= len(data); cut += 1 + (len(data)-genesisEnd)/97 {
		checkPrefix(t, cut)
	}
	checkPrefix(t, len(data))

	// A flipped byte mid-chain is reported as truncation at that frame,
	// keeping the prefix.
	t.Run("corrupt", func(t *testing.T) {
		cdir := t.TempDir()
		mangled := bytes.Clone(data)
		mangled[genesisEnd+(len(data)-genesisEnd)/2] ^= 0x01
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0])), mangled, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		ep, err := journal.LoadEpoch(cdir, 0)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if !ep.Truncated || !strings.Contains(ep.TruncatedNote, "corrupt") {
			t.Fatalf("corruption not flagged: truncated=%v note=%q", ep.Truncated, ep.TruncatedNote)
		}
		if _, _, _, err := ep.Rebuild(); err != nil {
			t.Fatalf("Rebuild: %v", err)
		}
	})
}

// TestSnapshotPruning checks RetainToSnapshot: segments behind the
// snapshot are deleted, recovery pivots to the snapshot, and
// deterministic replay honestly refuses (the genesis chain is gone).
func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	js := startJournaled(t, dir, clockwork.Config{Workers: 1, GPUsPerWorker: 1, Seed: 13},
		journal.Options{MaxSegmentBytes: 2048, Retain: journal.RetainToSnapshot})
	ctx := context.Background()
	if err := js.client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, err := js.client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
			t.Fatalf("Infer: %v", err)
		}
	}
	sr := js.postSnapshot(t)
	if sr.PrunedSegments < 1 {
		t.Fatalf("snapshot pruned %d segments, want >= 1 (segment rotation too coarse?)", sr.PrunedSegments)
	}
	js.shutdown(t)

	ep, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ep.Genesis != nil {
		t.Fatal("genesis survived pruning; RetainToSnapshot should have dropped it")
	}
	if ep.Snapshot == nil {
		t.Fatal("no snapshot after pruning")
	}
	if _, err := journal.ReplayEpoch(ep); err == nil {
		t.Fatal("ReplayEpoch should refuse a pruned chain")
	}
	sys2, _, rep, err := ep.Rebuild()
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if !rep.UsedSnapshot {
		t.Fatal("Rebuild did not pivot to the snapshot")
	}
	if models := sys2.Models(); len(models) != 1 || models[0] != "resnet" {
		t.Fatalf("rebuilt registry = %v", models)
	}
}

// TestAdminJournalPlane covers the observability satellite: the status
// endpoint, the metrics gauges, and the 404s without a journal.
func TestAdminJournalPlane(t *testing.T) {
	t.Run("without-journal", func(t *testing.T) {
		sys, err := clockwork.New(clockwork.Config{})
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(sys, serve.Options{Speed: 1000})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		resp, err := http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
		if err != nil || resp.StatusCode != http.StatusNotFound {
			t.Fatalf("snapshot without journal: %v, %v", resp.Status, err)
		}
		resp.Body.Close()
		resp, err = http.Get(ts.URL + "/v1/admin/journal")
		if err != nil || resp.StatusCode != http.StatusNotFound {
			t.Fatalf("journal status without journal: %v, %v", resp.Status, err)
		}
		resp.Body.Close()
	})

	dir := t.TempDir()
	js := startJournaled(t, dir, clockwork.Config{Workers: 1, GPUsPerWorker: 1}, journal.Options{})
	ctx := context.Background()
	if err := js.client.RegisterModel(ctx, "resnet", "resnet50_v1b"); err != nil {
		t.Fatalf("RegisterModel: %v", err)
	}
	if _, err := js.client.Infer(ctx, clockwork.Request{Model: "resnet", SLO: 500 * time.Millisecond}); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	js.postSnapshot(t)

	resp, err := http.Get(js.ts.URL + "/v1/admin/journal")
	if err != nil {
		t.Fatalf("GET journal: %v", err)
	}
	var st serve.JournalStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode journal status: %v", err)
	}
	resp.Body.Close()
	if st.Dir != dir || st.Epoch != 0 || st.Segments < 1 {
		t.Fatalf("journal status: %+v", st)
	}
	// genesis + register + infer + ack + snapshot marker (scrapes of
	// /v1/admin/journal itself append nothing — lock-free status reads).
	if st.Records < 5 || st.Infers != 1 || st.Acks != 1 || st.Snapshots != 1 {
		t.Fatalf("journal counters: %+v", st)
	}
	if st.LastSnapshotSeq == 0 || st.LastSnapshotAge < 0 {
		t.Fatalf("snapshot status: %+v", st)
	}
	if st.Failed || st.Fsync != "never" {
		t.Fatalf("journal health: %+v", st)
	}

	resp, err = http.Get(js.ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"clockwork_journal_records_total",
		"clockwork_journal_infers_total 1",
		"clockwork_journal_snapshots_total 1",
		"clockwork_journal_epoch 0",
		"clockwork_journal_failed 0",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}
}

// TestCreateRejectsMultiEngine: journaling is a single-engine property.
func TestCreateRejectsMultiEngine(t *testing.T) {
	sys, err := clockwork.New(clockwork.Config{Workers: 2, Shards: 2, EnginePerShard: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Create(t.TempDir(), sys, clockwork.Config{Workers: 2, Shards: 2, EnginePerShard: true}, journal.Options{}); err == nil {
		t.Fatal("Create accepted a multi-engine system")
	}
}

// replayableCorrs / ackedCorrs pull correlation IDs out of a loaded
// epoch's record list.
func replayableCorrs(ep *journal.EpochData) []uint64 {
	var out []uint64
	for i := range ep.Records {
		if r := &ep.Records[i]; r.IsInfer() {
			out = append(out, r.Corr)
		}
	}
	return out
}

func ackedCorrs(ep *journal.EpochData) []uint64 {
	var out []uint64
	for i := range ep.Records {
		if r := &ep.Records[i]; r.IsAck() {
			out = append(out, r.Corr)
		}
	}
	return out
}

// TestReplayTraced is the post-hoc tracing acceptance check: a
// journaled epoch replayed with the flight recorder at sample rate 1.0
// still hashes MATCH (tracing is a pure observer), and the recorder's
// per-request traces agree one-for-one with the recorded ack stream —
// same IDs, same outcomes, same latencies.
func TestReplayTraced(t *testing.T) {
	dir := t.TempDir()
	js := startJournaled(t, dir,
		clockwork.Config{Workers: 2, GPUsPerWorker: 1, Shards: 2, Seed: 11},
		journal.Options{MaxInFlight: 64})
	driveMixedTraffic(t, js, 30)
	js.shutdown(t)

	ep, err := journal.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	plain, err := journal.ReplayEpoch(ep)
	if err != nil {
		t.Fatalf("ReplayEpoch: %v", err)
	}
	flight := trace.New(trace.Options{SampleRate: 1, Enabled: true})
	traced, err := journal.ReplayEpochTraced(ep, flight)
	if err != nil {
		t.Fatalf("ReplayEpochTraced: %v", err)
	}
	if !traced.Match {
		t.Fatalf("traced replay mismatch:\n recorded %s\n replayed %s", traced.RecordedHash, traced.ReplayedHash)
	}
	if traced.ReplayedHash != plain.ReplayedHash {
		t.Fatalf("tracing perturbed the replay: %s vs %s", traced.ReplayedHash, plain.ReplayedHash)
	}

	// Every recorded ack must have a matching trace: same outcome, same
	// latency, finalized by the recorder.
	snap := flight.Snapshot()
	byID := make(map[uint64]int)
	for i := range snap.Requests {
		byID[snap.Requests[i].ID] = i
	}
	acks := 0
	for i := range ep.Records {
		rec := &ep.Records[i]
		if !rec.IsAck() {
			continue
		}
		acks++
		j, ok := byID[rec.RequestID]
		if !ok {
			t.Fatalf("ack for request %d has no trace", rec.RequestID)
		}
		tr := &snap.Requests[j]
		if tr.Success != rec.Success || tr.Latency != rec.Latency {
			t.Fatalf("trace %d diverges from recorded ack: trace{success=%v latency=%v} ack{success=%v latency=%v}",
				rec.RequestID, tr.Success, tr.Latency, rec.Success, rec.Latency)
		}
	}
	if acks == 0 {
		t.Fatal("no acks recorded")
	}
	if got := int(flight.Aggregate().Stats.Finalized); got < acks {
		t.Fatalf("recorder finalized %d traces, recorded %d acks", got, acks)
	}
}
