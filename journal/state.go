package journal

import (
	"fmt"

	"clockwork"
)

// captureInto refreshes the live portions of st — the model registry
// with placements and learned profiles, and worker lifecycle states —
// from sys. Engine-side: with a live driver pacing, call it only from
// inside an injected closure (Recorder.Snapshot does). The static
// portions (Config, Speed, MaxInFlight, Prior*) are the caller's.
func captureInto(sys *clockwork.System, st *State) error {
	models := sys.Models() // registration order — deterministic, and what BuildSystem re-registers in
	st.Models = st.Models[:0]
	for _, name := range models {
		zoo, ok := sys.ZooOf(name)
		if !ok {
			return fmt.Errorf("journal: model %q has no catalogue name (custom models cannot be journaled)", name)
		}
		shard, ok := sys.ShardOf(name)
		if !ok {
			return fmt.Errorf("journal: model %q has no owning shard", name)
		}
		prof, err := sys.ExportModelProfile(name)
		if err != nil {
			return err
		}
		st.Models = append(st.Models, ModelState{Instance: name, Zoo: zoo, Shard: shard, Profile: prof})
	}
	n := sys.Workers()
	st.Workers = st.Workers[:0]
	for id := 0; id < n; id++ {
		ws, err := sys.WorkerStateOf(id)
		if err != nil {
			return err
		}
		switch ws {
		case clockwork.WorkerDraining:
			st.Workers = append(st.Workers, workerDraining)
		case clockwork.WorkerFailed:
			st.Workers = append(st.Workers, workerFailed)
		default:
			st.Workers = append(st.Workers, workerActive)
		}
	}
	st.Step = sys.EngineSteps()
	st.VT = sys.Now()
	return nil
}

// BuildSystem constructs a System whose control plane matches st: the
// recorded configuration, the registry re-registered in recorded order
// with recorded placements and profile windows, and workers restored to
// their lifecycle states. The procedure is deterministic — recovery and
// deterministic replay both run it, which is what makes a recovered
// epoch's genesis a valid replay base.
func BuildSystem(st *State) (*clockwork.System, error) {
	if st == nil {
		return nil, fmt.Errorf("journal: nil state")
	}
	if st.Config.EnginePerShard {
		return nil, fmt.Errorf("journal: state claims EnginePerShard; journaling is single-engine")
	}
	sys, err := clockwork.New(st.Config)
	if err != nil {
		return nil, err
	}
	for _, m := range st.Models {
		if err := sys.RegisterModel(m.Instance, m.Zoo); err != nil {
			return nil, fmt.Errorf("journal: restore %q: %w", m.Instance, err)
		}
	}
	// Placements next: profile import routes through the owning shard,
	// and migration itself is only legal while the model has no queued
	// work — true here by construction.
	for _, m := range st.Models {
		if cur, _ := sys.ShardOf(m.Instance); cur != m.Shard {
			if err := sys.MigrateModel(m.Instance, m.Shard); err != nil {
				return nil, fmt.Errorf("journal: restore placement of %q: %w", m.Instance, err)
			}
		}
	}
	for _, m := range st.Models {
		if len(m.Profile) == 0 {
			continue
		}
		if err := sys.ImportModelProfile(m.Instance, m.Profile); err != nil {
			return nil, fmt.Errorf("journal: restore profile of %q: %w", m.Instance, err)
		}
	}
	for id := sys.Workers(); id < len(st.Workers); id++ {
		sys.AddWorker()
	}
	for id, ws := range st.Workers {
		var err error
		switch ws {
		case workerDraining:
			err = sys.DrainWorker(id)
		case workerFailed:
			err = sys.FailWorker(id)
		}
		if err != nil {
			return nil, fmt.Errorf("journal: restore worker %d state: %w", id, err)
		}
	}
	return sys, nil
}
