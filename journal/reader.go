package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// parseName decodes "epoch-%06d-seg-%012d.wal" / "epoch-%06d-snap-
// %012d.snap" file names. kind is "seg" or "snap"; ok is false for
// anything else (including the writer's .tmp staging files).
func parseName(name string) (epoch int, n uint64, kind string, ok bool) {
	rest, found := strings.CutPrefix(name, "epoch-")
	if !found {
		return 0, 0, "", false
	}
	epochStr, rest, found := strings.Cut(rest, "-")
	if !found {
		return 0, 0, "", false
	}
	e, err := strconv.Atoi(epochStr)
	if err != nil {
		return 0, 0, "", false
	}
	switch {
	case strings.HasPrefix(rest, "seg-") && strings.HasSuffix(rest, ".wal"):
		kind = "seg"
		rest = strings.TrimSuffix(strings.TrimPrefix(rest, "seg-"), ".wal")
	case strings.HasPrefix(rest, "snap-") && strings.HasSuffix(rest, ".snap"):
		kind = "snap"
		rest = strings.TrimSuffix(strings.TrimPrefix(rest, "snap-"), ".snap")
	default:
		return 0, 0, "", false
	}
	v, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, 0, "", false
	}
	return e, v, kind, true
}

// EpochData is one epoch read back from disk: the genesis state, every
// decodable record in sequence order, and the latest usable snapshot.
type EpochData struct {
	Dir   string
	Epoch int

	// Genesis is the state the epoch's step/seq chain is relative to.
	// Nil when the genesis segment was pruned (RetainToSnapshot) —
	// recovery then requires Snapshot, and deterministic replay is
	// unavailable.
	Genesis *State

	// Records holds every decoded record in seq order, including the
	// genesis record when present.
	Records []Record

	// Snapshot is the newest snapshot whose file decoded cleanly (nil
	// when none was taken); SnapshotSeq is the first record seq NOT
	// covered by it.
	Snapshot    *State
	SnapshotSeq uint64

	// Truncated reports that the record chain ended at a torn or
	// corrupt frame — the expected shape after a crash — with the
	// already-decoded prefix kept. TruncatedNote says where.
	Truncated     bool
	TruncatedNote string

	SegmentCount int
	Bytes        int64
}

// LatestEpoch scans dir for journal files and returns the highest epoch
// number present; ok is false for an empty or absent directory.
func LatestEpoch(dir string) (epoch int, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	best := -1
	for _, e := range ents {
		if ep, _, _, ok := parseName(e.Name()); ok && ep > best {
			best = ep
		}
	}
	if best < 0 {
		return 0, false, nil
	}
	return best, true, nil
}

// Load reads the latest epoch in dir back into memory. It returns an
// error only for unreadable files or a chain that is broken before its
// tail; a torn tail (the normal crash shape) is reported via
// EpochData.Truncated, not an error.
func Load(dir string) (*EpochData, error) {
	epoch, ok, err := LatestEpoch(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("journal: no epochs in %s", dir)
	}
	return LoadEpoch(dir, epoch)
}

// LoadEpoch reads one specific epoch.
func LoadEpoch(dir string, epoch int) (*EpochData, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segStarts []uint64
	var snapSeqs []uint64
	for _, e := range ents {
		ep, n, kind, ok := parseName(e.Name())
		if !ok || ep != epoch {
			continue
		}
		switch kind {
		case "seg":
			segStarts = append(segStarts, n)
		case "snap":
			snapSeqs = append(snapSeqs, n)
		}
	}
	if len(segStarts) == 0 {
		return nil, fmt.Errorf("journal: epoch %d has no segments in %s", epoch, dir)
	}
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	ed := &EpochData{Dir: dir, Epoch: epoch, SegmentCount: len(segStarts)}

	// Decode the segment chain. Segments must be seq-contiguous; a
	// record chain stops at the first torn or corrupt frame and ignores
	// anything after it (a torn frame mid-chain with live segments
	// after it means real corruption, so flag it loudly in the note).
	nextSeq := segStarts[0]
	var rec Record
scan:
	for i, start := range segStarts {
		if start != nextSeq {
			ed.Truncated = true
			ed.TruncatedNote = fmt.Sprintf("segment gap: have records up to seq %d, next segment starts at %d", nextSeq, start)
			break
		}
		path := filepath.Join(dir, fmt.Sprintf(segPattern, epoch, start))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		ed.Bytes += int64(len(data))
		off := 0
		for off < len(data) {
			payload, next, err := readFrame(data, off)
			if err != nil {
				ed.Truncated = true
				ed.TruncatedNote = fmt.Sprintf("%s at %s offset %d", err, filepath.Base(path), off)
				if i < len(segStarts)-1 {
					ed.TruncatedNote += " (mid-chain: later segments ignored)"
				}
				break scan
			}
			if err := decodeRecord(payload, &rec); err != nil {
				ed.Truncated = true
				ed.TruncatedNote = fmt.Sprintf("%s at %s offset %d", err, filepath.Base(path), off)
				break scan
			}
			if rec.Seq != nextSeq {
				ed.Truncated = true
				ed.TruncatedNote = fmt.Sprintf("seq discontinuity at %s offset %d: got %d, want %d", filepath.Base(path), off, rec.Seq, nextSeq)
				break scan
			}
			ed.Records = append(ed.Records, rec)
			nextSeq++
			off = next
		}
	}

	if len(ed.Records) > 0 && ed.Records[0].Seq == 0 {
		if ed.Records[0].Type != recGenesis || ed.Records[0].State == nil {
			return nil, fmt.Errorf("journal: epoch %d record 0 is not a genesis record", epoch)
		}
		ed.Genesis = ed.Records[0].State
	}

	// Latest usable snapshot: the newest snap file that decodes (each
	// is CRC-framed and was fsynced before its marker was appended, so
	// a file that decodes is trustworthy even when the record chain
	// tore earlier — the snapshot then recovers strictly more than the
	// chain alone).
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		seq := snapSeqs[i]
		st, err := readSnapshotFile(filepath.Join(dir, fmt.Sprintf(snapPattern, epoch, seq)))
		if err != nil {
			continue
		}
		ed.Snapshot = st
		ed.SnapshotSeq = seq
		break
	}

	if ed.Genesis == nil && ed.Snapshot == nil {
		return nil, fmt.Errorf("journal: epoch %d has neither a readable genesis nor a snapshot (%s)", epoch, ed.TruncatedNote)
	}
	return ed, nil
}

func readSnapshotFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, _, err := readFrame(data, 0)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := decodeRecord(payload, &rec); err != nil {
		return nil, err
	}
	if rec.Type != recGenesis || rec.State == nil {
		return nil, fmt.Errorf("journal: snapshot file %s does not hold a state record", filepath.Base(path))
	}
	return rec.State, nil
}
