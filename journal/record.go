package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"clockwork"
)

// Wire format. Every journal entry is one frame:
//
//	u32le  payload length
//	u32le  CRC32-C of the payload
//	bytes  payload
//
// and every payload is one record:
//
//	u8      type
//	uvarint seq   — position in the epoch's append order, genesis = 0
//	uvarint step  — engine step the operation executed as (see
//	                System.EngineSteps; 0 for records stamped off-engine)
//	varint  vt    — virtual instant, nanoseconds
//	bytes   body  — per-type fields, below
//
// The frame grammar matches the serve/stream transport's (length prefix
// bounded by a max size, varint-encoded fields, strings as uvarint
// length + bytes), with a CRC added because a file on disk — unlike a
// TCP stream — can be torn mid-frame by a crash.

// Record types.
const (
	// recGenesis opens an epoch: the full control-plane state the rest
	// of the epoch is relative to. The same payload shape is written to
	// standalone snapshot files.
	recGenesis byte = 1
	// recInfer is one externally-submitted inference request. A batch
	// injected in one engine turn records one recInfer per request, all
	// sharing the step stamp.
	recInfer byte = 2
	// recAck is the acknowledged outcome of a recInfer, appended on the
	// engine turn the completion callback ran — before the response
	// could reach the client.
	recAck byte = 3
	// recRegister is a model registration (Copies == 0: RegisterModel;
	// Copies > 0: RegisterCopies).
	recRegister byte = 4
	// recAddWorker / recDrainWorker / recFailWorker / recRebalance are
	// the operator control-plane mutations.
	recAddWorker   byte = 5
	recDrainWorker byte = 6
	recFailWorker  byte = 7
	recRebalance   byte = 8
	// recNoop marks an injected closure with no engine-visible effect —
	// a stats/metrics/model-list scrape. It still consumed an engine
	// step, so replay must consume one identically.
	recNoop byte = 9
	// recSnapshot marks that a snapshot file (named for this record's
	// seq) was durably written before this record was appended.
	recSnapshot byte = 10
	// recAutoscale is one closed-loop autoscaler decision that moved
	// something: the admission window to run with, worker additions, a
	// drain target, a rebalance pass. The decision — not the signals it
	// was derived from — is what replay re-applies, so a recorded run
	// reproduces bit-for-bit however the wall clock paced the control
	// loop. A tick that moved nothing records recNoop instead (the
	// evaluation still consumed an engine step).
	recAutoscale byte = 11
)

// MaxRecordSize bounds one frame's payload, mirroring the stream
// transport's frame bound. A genesis carrying a large registry is the
// only record that approaches it.
const MaxRecordSize = 1 << 20

// frameHeaderSize is the length + CRC prefix.
const frameHeaderSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTornFrame means the bytes end mid-frame — the
// expected shape of a crashed tail; ErrCorruptFrame means a whole frame
// failed its checksum or grammar.
var (
	ErrTornFrame    = errors.New("journal: torn frame at end of segment")
	ErrCorruptFrame = errors.New("journal: corrupt frame")
)

// Record is the decoded form of one journal entry. It is a tagged
// union: Type selects which of the per-type field groups is meaningful.
type Record struct {
	Type byte
	Seq  uint64
	Step uint64
	VT   time.Duration

	// recInfer
	Shard    int
	Corr     uint64
	Model    string
	SLO      time.Duration
	Priority int
	Tenant   string
	MaxBatch int

	// recAck (Corr identifies the recInfer it answers)
	RequestID uint64
	Success   bool
	Reason    uint8
	Latency   time.Duration
	Batch     int
	ColdStart bool

	// recRegister
	Instance string
	Zoo      string
	Copies   int

	// recDrainWorker / recFailWorker; recAutoscale reuses it as the
	// drain target (-1 = no drain in that decision).
	WorkerID int

	// recAutoscale
	Window     int
	AddWorkers int
	Rebal      bool

	// recGenesis
	State *State
}

// IsInfer and IsAck classify a record for external consumers (tests,
// tooling reading EpochData.Records) without exporting the whole type
// enumeration.
func (r *Record) IsInfer() bool { return r.Type == recInfer }
func (r *Record) IsAck() bool   { return r.Type == recAck }

// ---- encoding ----

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendRecord encodes r as a bare payload (no frame header).
func appendRecord(b []byte, r *Record) []byte {
	b = append(b, r.Type)
	b = appendUvarint(b, r.Seq)
	b = appendUvarint(b, r.Step)
	b = appendVarint(b, int64(r.VT))
	switch r.Type {
	case recGenesis:
		b = appendState(b, r.State)
	case recInfer:
		b = appendUvarint(b, uint64(r.Shard))
		b = appendUvarint(b, r.Corr)
		b = appendString(b, r.Model)
		b = appendVarint(b, int64(r.SLO))
		b = appendVarint(b, int64(r.Priority))
		b = appendString(b, r.Tenant)
		b = appendVarint(b, int64(r.MaxBatch))
	case recAck:
		b = appendUvarint(b, r.Corr)
		b = appendUvarint(b, r.RequestID)
		b = appendBool(b, r.Success)
		b = append(b, r.Reason)
		b = appendVarint(b, int64(r.Latency))
		b = appendVarint(b, int64(r.Batch))
		b = appendBool(b, r.ColdStart)
	case recRegister:
		b = appendString(b, r.Instance)
		b = appendString(b, r.Zoo)
		b = appendUvarint(b, uint64(r.Copies))
	case recDrainWorker, recFailWorker:
		b = appendUvarint(b, uint64(r.WorkerID))
	case recAutoscale:
		b = appendVarint(b, int64(r.Window))
		b = appendUvarint(b, uint64(r.AddWorkers))
		b = appendVarint(b, int64(r.WorkerID))
		b = appendBool(b, r.Rebal)
	case recAddWorker, recRebalance, recNoop, recSnapshot:
		// no body
	default:
		panic(fmt.Sprintf("journal: encode of unknown record type %d", r.Type))
	}
	return b
}

// appendFrame wraps an encoded payload in the length + CRC header.
func appendFrame(b, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// ---- decoding ----

// cursor mirrors the stream transport's decode idiom: reads poison the
// cursor on underflow instead of forcing an error check per field.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) fail() {
	c.bad = true
	c.off = len(c.b)
}

func (c *cursor) u8() byte {
	if c.bad || c.off >= len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.bad {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.bad {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) str() string {
	n := c.uvarint()
	if c.bad || n > uint64(len(c.b)-c.off) {
		c.fail()
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

func (c *cursor) bool() bool { return c.u8() != 0 }

// decodeRecord parses one payload into r.
func decodeRecord(payload []byte, r *Record) error {
	c := &cursor{b: payload}
	*r = Record{}
	r.Type = c.u8()
	r.Seq = c.uvarint()
	r.Step = c.uvarint()
	r.VT = time.Duration(c.varint())
	switch r.Type {
	case recGenesis:
		st, err := decodeState(c)
		if err != nil {
			return err
		}
		r.State = st
	case recInfer:
		r.Shard = int(c.uvarint())
		r.Corr = c.uvarint()
		r.Model = c.str()
		r.SLO = time.Duration(c.varint())
		r.Priority = int(c.varint())
		r.Tenant = c.str()
		r.MaxBatch = int(c.varint())
	case recAck:
		r.Corr = c.uvarint()
		r.RequestID = c.uvarint()
		r.Success = c.bool()
		r.Reason = c.u8()
		r.Latency = time.Duration(c.varint())
		r.Batch = int(c.varint())
		r.ColdStart = c.bool()
	case recRegister:
		r.Instance = c.str()
		r.Zoo = c.str()
		r.Copies = int(c.uvarint())
	case recDrainWorker, recFailWorker:
		r.WorkerID = int(c.uvarint())
	case recAutoscale:
		r.Window = int(c.varint())
		r.AddWorkers = int(c.uvarint())
		r.WorkerID = int(c.varint())
		r.Rebal = c.bool()
	case recAddWorker, recRebalance, recNoop, recSnapshot:
		// no body
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrCorruptFrame, r.Type)
	}
	if c.bad {
		return fmt.Errorf("%w: truncated record body (type %d)", ErrCorruptFrame, r.Type)
	}
	if c.off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes after record (type %d)", ErrCorruptFrame, len(payload)-c.off, r.Type)
	}
	return nil
}

// readFrame parses the frame starting at off in data and returns its
// payload and the offset of the next frame. ErrTornFrame means data
// ends mid-frame (the normal crashed-tail shape); ErrCorruptFrame means
// the header or checksum is invalid.
func readFrame(data []byte, off int) (payload []byte, next int, err error) {
	if len(data)-off < frameHeaderSize {
		return nil, off, ErrTornFrame
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	if n > MaxRecordSize {
		return nil, off, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorruptFrame, n, MaxRecordSize)
	}
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	body := data[off+frameHeaderSize:]
	if uint32(len(body)) < n {
		return nil, off, ErrTornFrame
	}
	payload = body[:n]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, off, fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
	}
	return payload, off + frameHeaderSize + int(n), nil
}

// ---- state (genesis / snapshot payload body) ----

// stateVersion guards the state encoding; bump on layout change.
const stateVersion = 1

// ModelState is one registered instance in a snapshot.
type ModelState struct {
	// Instance is the registered name; Zoo the catalogue model it was
	// created from (re-registration re-derives weights and seeds).
	Instance string
	Zoo      string
	// Shard is the owning scheduler shard at capture time.
	Shard int
	// Profile carries the measured estimator windows (may be empty).
	Profile []clockwork.ProfileEntry
}

// State is the full control-plane state an epoch is relative to: the
// system configuration, the serving options, the model registry with
// placements and learned profiles, and worker lifecycle states. It is
// everything needed to rebuild a System that schedules exactly like the
// captured one.
type State struct {
	Config      clockwork.Config
	Speed       float64
	MaxInFlight int

	// PriorRequests/PriorAcked carry cumulative request accounting
	// across epochs, so recovery can report lifetime totals.
	PriorRequests uint64
	PriorAcked    uint64

	Models  []ModelState
	Workers []uint8 // index = worker ID; values are the worker* constants below

	// Step and VT stamp when the capture ran (informational; a rebuilt
	// engine restarts from zero — that is why recovery opens a new
	// epoch).
	Step uint64
	VT   time.Duration
}

// Worker lifecycle encoding in State.Workers.
const (
	workerActive   uint8 = 0
	workerDraining uint8 = 1
	workerFailed   uint8 = 2
)

func appendState(b []byte, st *State) []byte {
	b = append(b, stateVersion)
	cfg := st.Config
	b = appendUvarint(b, uint64(cfg.Workers))
	b = appendUvarint(b, uint64(cfg.GPUsPerWorker))
	b = appendUvarint(b, uint64(cfg.Shards))
	b = appendVarint(b, int64(cfg.RebalanceInterval))
	b = appendVarint(b, int64(cfg.SkewBound))
	b = appendString(b, string(cfg.Policy))
	b = appendUvarint(b, cfg.Seed)
	b = appendVarint(b, int64(cfg.Lookahead))
	b = appendVarint(b, int64(cfg.ProfileWindow))
	b = appendVarint(b, cfg.PageCacheBytes)
	b = appendBool(b, cfg.ExactTiming)
	b = appendVarint(b, int64(cfg.MetricsInterval))
	b = appendBool(b, cfg.ZeroLengthInputs)

	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.Speed))
	b = appendVarint(b, int64(st.MaxInFlight))
	b = appendUvarint(b, st.PriorRequests)
	b = appendUvarint(b, st.PriorAcked)

	b = appendUvarint(b, uint64(len(st.Models)))
	for _, m := range st.Models {
		b = appendString(b, m.Instance)
		b = appendString(b, m.Zoo)
		b = appendUvarint(b, uint64(m.Shard))
		b = appendUvarint(b, uint64(len(m.Profile)))
		for _, p := range m.Profile {
			b = appendString(b, p.Op)
			b = appendVarint(b, int64(p.Batch))
			b = appendUvarint(b, uint64(len(p.Window)))
			for _, d := range p.Window {
				b = appendVarint(b, int64(d))
			}
		}
	}
	b = appendUvarint(b, uint64(len(st.Workers)))
	b = append(b, st.Workers...)
	b = appendUvarint(b, st.Step)
	b = appendVarint(b, int64(st.VT))
	return b
}

func decodeState(c *cursor) (*State, error) {
	if v := c.u8(); v != stateVersion {
		if c.bad {
			return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
		}
		return nil, fmt.Errorf("%w: unknown state version %d", ErrCorruptFrame, v)
	}
	st := &State{}
	st.Config.Workers = int(c.uvarint())
	st.Config.GPUsPerWorker = int(c.uvarint())
	st.Config.Shards = int(c.uvarint())
	st.Config.RebalanceInterval = time.Duration(c.varint())
	st.Config.SkewBound = time.Duration(c.varint())
	st.Config.Policy = clockwork.Policy(c.str())
	st.Config.Seed = c.uvarint()
	st.Config.Lookahead = time.Duration(c.varint())
	st.Config.ProfileWindow = int(c.varint())
	st.Config.PageCacheBytes = c.varint()
	st.Config.ExactTiming = c.bool()
	st.Config.MetricsInterval = time.Duration(c.varint())
	st.Config.ZeroLengthInputs = c.bool()

	if c.bad || len(c.b)-c.off < 8 {
		return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
	}
	st.Speed = math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	st.MaxInFlight = int(c.varint())
	st.PriorRequests = c.uvarint()
	st.PriorAcked = c.uvarint()

	nm := c.uvarint()
	if c.bad || nm > MaxRecordSize {
		return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
	}
	st.Models = make([]ModelState, 0, nm)
	for i := uint64(0); i < nm && !c.bad; i++ {
		var m ModelState
		m.Instance = c.str()
		m.Zoo = c.str()
		m.Shard = int(c.uvarint())
		np := c.uvarint()
		if c.bad || np > MaxRecordSize {
			return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
		}
		for j := uint64(0); j < np && !c.bad; j++ {
			var p clockwork.ProfileEntry
			p.Op = c.str()
			p.Batch = int(c.varint())
			nw := c.uvarint()
			if c.bad || nw > MaxRecordSize {
				return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
			}
			for k := uint64(0); k < nw && !c.bad; k++ {
				p.Window = append(p.Window, time.Duration(c.varint()))
			}
			m.Profile = append(m.Profile, p)
		}
		st.Models = append(st.Models, m)
	}
	nw := c.uvarint()
	if c.bad || nw > uint64(len(c.b)-c.off) {
		return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
	}
	st.Workers = append(st.Workers, c.b[c.off:c.off+int(nw)]...)
	c.off += int(nw)
	st.Step = c.uvarint()
	st.VT = time.Duration(c.varint())
	if c.bad {
		return nil, fmt.Errorf("%w: truncated state", ErrCorruptFrame)
	}
	return st, nil
}
